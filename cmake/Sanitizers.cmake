# Sanitizer wiring for FATS.
#
# FATS_SANITIZE is a semicolon-separated list of sanitizers applied to every
# target in the build:
#
#   cmake -B build-asan -S . -DFATS_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DFATS_SANITIZE=thread
#
# Supported values: address, undefined, thread, leak.  `thread` cannot be
# combined with `address` or `leak` (the runtimes conflict); it is wired now
# so the future parallel trainer can be raced under TSan from day one.
# UBSan runs with -fno-sanitize-recover so any UB aborts the test instead of
# merely logging, which is what tier-1 verification needs.

set(FATS_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: address;undefined;thread;leak")

function(fats_enable_sanitizers)
  if(NOT FATS_SANITIZE)
    return()
  endif()

  set(_known address undefined thread leak)
  set(_flags "")
  foreach(_san IN LISTS FATS_SANITIZE)
    if(NOT _san IN_LIST _known)
      message(FATAL_ERROR
        "FATS_SANITIZE: unknown sanitizer '${_san}' (supported: ${_known})")
    endif()
    list(APPEND _flags "-fsanitize=${_san}")
  endforeach()

  if("thread" IN_LIST FATS_SANITIZE AND
     ("address" IN_LIST FATS_SANITIZE OR "leak" IN_LIST FATS_SANITIZE))
    message(FATAL_ERROR
      "FATS_SANITIZE: 'thread' cannot be combined with 'address' or 'leak'")
  endif()

  # Usable stack traces and hard failure on UB.
  list(APPEND _flags -fno-omit-frame-pointer)
  if("undefined" IN_LIST FATS_SANITIZE)
    list(APPEND _flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_flags})
  add_link_options(${_flags})
  message(STATUS "FATS: sanitizers enabled: ${FATS_SANITIZE}")
endfunction()
