// Append-only, CRC-framed journal files.
//
// The journal is the durable half of the crash-exactness contract
// (DESIGN.md §7.3): training appends a record per committed event, and
// because every random draw is a pure function of its Philox stream key,
// replaying the journal's committed prefix and re-executing the tail
// reproduces the in-memory state bit for bit.
//
// File layout:
//
//   "FATSJRN1"  8-byte magic
//   u32         format version (1)
//   repeated records:
//     u32       payload length
//     u32       CRC-32 of the payload (polynomial 0xEDB88320)
//     bytes     payload
//
// All integers little-endian. A record is valid only if its full payload is
// present and the CRC matches; ScanJournal stops at the first invalid frame
// and reports everything before it, so a write torn by a crash (detected by
// the CRC, or by a length running past EOF) costs exactly the uncommitted
// tail, never the file.
//
// Durability discipline: Append pushes each frame to the OS with fflush
// (surviving process death); Sync additionally fsyncs to the device
// (surviving power loss). Callers choose the cadence — the training session
// syncs at round boundaries by default. Segment creation goes through a
// sibling `<path>.tmp` + rename so a torn header can never occupy the
// journal path; SweepOrphanTmp removes the `.tmp` a crash may strand.
//
// Async mode (SyncMode::kAsync, DESIGN.md §7.6): Append frames records into
// an in-memory batch instead of the FILE*, and a dedicated WriterThread
// flushes swapped-out batches in the background — double buffering, so the
// appending thread never blocks on file I/O except at a Sync() barrier. The
// commit point moves from "fflush returned" to "the batch holding the
// record was flushed": a crash loses at most the buffered tail, which is
// indistinguishable from crashing before those Appends ever ran, so
// replay-from-committed-prefix recovery stays bitwise exact. Sync() is the
// round-boundary barrier: swap + drain the writer + fsync. Two failpoint
// sites cover the new crash windows — `journal.swap_buffer` (after appends
// landed in the active buffer, before it is handed to the writer) and
// `journal.async_flush` (batch swapped out, not yet written).
//
// This module performs the raw file writes for the durable path and is the
// one place in src/{core,fl,io} sanctioned to do so (the `raw-io` lint rule
// enforces that elsewhere).

#ifndef FATS_IO_JOURNAL_H_
#define FATS_IO_JOURNAL_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fats {

/// Result of validating a journal file.
struct JournalScan {
  /// Payloads of every complete, CRC-valid record, in file order.
  std::vector<std::string> records;
  /// Byte offsets just past each record in `records` (parallel vector).
  /// valid through the header when `records` is empty.
  std::vector<int64_t> record_ends;
  /// Offset just past the last complete record (>= header size).
  int64_t valid_bytes = 0;
  /// True if trailing bytes after `valid_bytes` were discarded (torn or
  /// corrupt frame).
  bool torn_tail = false;
  /// Human-readable reason for the discarded tail, empty when clean.
  std::string tail_detail;
};

/// Reads and validates `path`. Fails only when the file cannot be opened or
/// its header is not a journal header; torn/corrupt tails are reported via
/// the scan, not as errors.
Result<JournalScan> ScanJournal(const std::string& path);

class JournalWriter {
 public:
  enum class SyncMode {
    kNone,         // fflush per record only; callers Sync() explicitly
    kEveryAppend,  // fsync after every record
    kAsync,        // double-buffered batches on a writer thread; Sync() is
                   // the swap + drain + fsync barrier (see header comment)
  };

  /// Creates a fresh, empty journal at `path` (header only), replacing any
  /// existing file, via tmp+rename with an fsync before the rename.
  static Status Create(const std::string& path);

  /// Opens `path` for appending after `valid_bytes` (from ScanJournal),
  /// truncating any torn tail beyond it first.
  static Result<std::unique_ptr<JournalWriter>> OpenForAppend(
      const std::string& path, int64_t valid_bytes, SyncMode mode);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one framed record and hands it to the OS (fflush), or — in
  /// async mode — to the in-memory batch (handed to the writer thread once
  /// the batch fills or at the next Sync). The first failure latches into
  /// status() and makes all later calls no-ops.
  Status Append(std::string_view payload);

  /// fsyncs the file to the device. In async mode this is the durability
  /// barrier: hands the active batch to the writer, waits for every batch
  /// to reach the FILE*, then fsyncs.
  Status Sync();

  /// Flushes, syncs, and closes; in async mode also joins the writer
  /// thread, so no background thread outlives a closed writer (fork-safety
  /// for the crash matrix). Safe to call twice.
  Status Close();

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::FILE* file, std::string path, SyncMode mode)
      : file_(file), path_(std::move(path)), mode_(mode) {}

  // Hands the active batch to the writer thread (async mode). Waits for any
  // in-flight flush first, so at most two batches exist: the one being
  // appended to and the one being written.
  Status SwapAndFlush();
  // Runs on the writer thread: writes `flushing_` to the FILE* and fflushes.
  void FlushBatchOnWriter();

  std::FILE* file_ = nullptr;
  std::string path_;
  SyncMode mode_;
  Status status_;

  // Async double buffer (kAsync only). `active_` belongs to the appending
  // thread; `flushing_` belongs to the writer thread while `flush_pending_`
  // is true and is untouched by the appender in that window — that handoff
  // protocol is why FlushBatchOnWriter reads it without holding `mu_`.
  std::unique_ptr<WriterThread> writer_;
  std::mutex mu_;
  std::condition_variable flush_done_cv_;
  std::string active_;
  std::string flushing_;
  bool flush_pending_ = false;   // guarded by mu_
  Status async_status_;          // guarded by mu_; latched writer-side error
};

/// Removes the stale `<path>.tmp` a crash between tmp-write and rename may
/// have stranded next to `path`. Returns true if one was removed.
bool SweepOrphanTmp(const std::string& path);

}  // namespace fats

#endif  // FATS_IO_JOURNAL_H_
