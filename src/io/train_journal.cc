#include "io/train_journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "io/checkpoint.h"

namespace fats {
namespace {

// Record tags. The payload of each record starts with one tag byte.
enum class Tag : uint8_t {
  kBegin = 1,           // config echo + epoch (first record of a segment)
  kSelection = 2,       // P^(r)
  kMinibatch = 3,       // B_k^(t)
  kLocalModel = 4,      // θ_k^(t)
  kGlobalModel = 5,     // θ^(r)
  kRoundRecord = 6,     // TrainLog entry
  kProgress = 7,        // iteration commit (IterationMark)
  kTruncate = 8,        // store truncation (client-level unlearning)
  kGenerationBump = 9,  // stream-generation bump
  kOpBegin = 10,        // unlearning operation opened
  kOpEnd = 11,          // unlearning operation committed
};

// sync_every_append wins over async_io: per-record fsync needs the record
// on the FILE* before Append returns, which async buffering defers.
JournalWriter::SyncMode ChosenSyncMode(const DurableOptions& options) {
  if (options.sync_every_append) return JournalWriter::SyncMode::kEveryAppend;
  if (options.async_io) return JournalWriter::SyncMode::kAsync;
  return JournalWriter::SyncMode::kNone;
}

// ----- in-memory little-endian payload codec -----

class PayloadWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void I64Vec(const std::vector<int64_t>& values) {
    U64(values.size());
    for (int64_t v : values) I64(v);
  }
  void FloatVec(const std::vector<float>& values) {
    U64(values.size());
    const size_t start = buf_.size();
    buf_.resize(start + values.size() * sizeof(float));
    std::memcpy(buf_.data() + start, values.data(),
                values.size() * sizeof(float));
  }
  void TensorData(const Tensor& tensor) {
    I64Vec(tensor.shape());
    FloatVec(tensor.storage());
  }
  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : data_(payload) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<int64_t> I64() {
    FATS_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  Result<double> F64() {
    FATS_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::vector<int64_t>> I64Vec() {
    FATS_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > (data_.size() - pos_) / 8) return Truncated();
    std::vector<int64_t> values;
    values.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      FATS_ASSIGN_OR_RETURN(int64_t v, I64());
      values.push_back(v);
    }
    return values;
  }
  Result<std::vector<float>> FloatVec() {
    FATS_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > (data_.size() - pos_) / sizeof(float)) return Truncated();
    std::vector<float> values(static_cast<size_t>(n));
    std::memcpy(values.data(), data_.data() + pos_, n * sizeof(float));
    pos_ += static_cast<size_t>(n) * sizeof(float);
    return values;
  }
  Result<Tensor> TensorData() {
    FATS_ASSIGN_OR_RETURN(std::vector<int64_t> shape, I64Vec());
    FATS_ASSIGN_OR_RETURN(std::vector<float> data, FloatVec());
    if (shape.empty() && data.empty()) return Tensor();
    int64_t volume = 1;
    for (int64_t d : shape) {
      if (d <= 0 || volume > (int64_t{1} << 33) / d) {
        return Status::IoError("corrupt tensor shape in journal record");
      }
      volume *= d;
    }
    if (volume != static_cast<int64_t>(data.size())) {
      return Status::IoError("tensor shape/data mismatch in journal record");
    }
    return Tensor(std::move(shape), std::move(data));
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  static Status Truncated() {
    return Status::IoError("truncated journal record payload");
  }
  const std::string& data_;
  size_t pos_ = 0;
};

// Config echo: the same eight fields the checkpoint validates. Execution
// knobs (num_threads, dropout, fault_spec) deliberately excluded — they may
// vary across restarts without affecting algorithmic state.
void WriteConfigEcho(const FatsConfig& config, PayloadWriter* w) {
  w->I64(config.clients_m);
  w->I64(config.samples_per_client_n);
  w->I64(config.rounds_r);
  w->I64(config.local_iters_e);
  w->F64(config.rho_s);
  w->F64(config.rho_c);
  w->F64(config.learning_rate);
  w->U64(config.seed);
}

std::string BeginPayload(const FatsConfig& config, uint64_t epoch) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kBegin));
  WriteConfigEcho(config, &w);
  w.U64(epoch);
  return w.str();
}

bool FileExists(const std::string& path) {
  // Read-only existence probe, never a write.  fats-lint: allow(raw-io)
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

// Progress snapshot parsed from a kProgress record.
struct Progress {
  IterationMark mark;
  bool seen = false;
};

}  // namespace

Result<std::unique_ptr<DurableTrainingSession>> DurableTrainingSession::Open(
    const std::string& checkpoint_path, const std::string& journal_path,
    FatsTrainer* trainer, const DurableOptions& options) {
  std::unique_ptr<DurableTrainingSession> session(new DurableTrainingSession(
      checkpoint_path, journal_path, trainer, options));

  // A crash can strand tmp files for either artifact; neither is ever
  // valid input.
  SweepOrphanTmp(journal_path);

  uint64_t checkpoint_epoch = 0;
  if (FileExists(checkpoint_path)) {
    FATS_RETURN_NOT_OK(
        LoadTrainerCheckpoint(checkpoint_path, trainer, &checkpoint_epoch));
  } else {
    SweepOrphanTmp(checkpoint_path);
  }
  session->epoch_ = checkpoint_epoch;

  if (!FileExists(journal_path)) {
    // Fresh session (or a checkpoint written without a journal): start the
    // first segment at the checkpoint's epoch.
    FATS_RETURN_NOT_OK(session->StartSegment());
    trainer->set_event_sink(session.get());
    return session;
  }

  FATS_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(journal_path));

  // Parse the segment header (kBegin): config echo + epoch.
  uint64_t segment_epoch = checkpoint_epoch;
  bool have_begin = false;
  if (!scan.records.empty()) {
    PayloadReader r(scan.records[0]);
    FATS_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
    if (tag != static_cast<uint8_t>(Tag::kBegin)) {
      return Status::IoError("journal segment does not start with kBegin: " +
                             journal_path);
    }
    PayloadWriter expected;
    WriteConfigEcho(trainer->config(), &expected);
    const std::string& rec = scan.records[0];
    if (rec.size() < 1 + expected.str().size() + 8 ||
        std::memcmp(rec.data() + 1, expected.str().data(),
                    expected.str().size()) != 0) {
      return Status::InvalidArgument(
          "journal config does not match the trainer's: " + journal_path);
    }
    for (size_t i = 0; i < expected.str().size(); ++i) (void)r.U8().value();
    FATS_ASSIGN_OR_RETURN(segment_epoch, r.U64());
    have_begin = true;
  }

  if (have_begin && segment_epoch > checkpoint_epoch) {
    return Status::IoError(
        "journal segment is newer than the checkpoint (checkpoint lost?): " +
        journal_path);
  }
  if (!have_begin || segment_epoch < checkpoint_epoch) {
    // Header-only / torn-before-kBegin segment, or a segment made stale by
    // a checkpoint rotation that crashed before creating its fresh segment.
    // The checkpoint supersedes it; rotate.
    FATS_RETURN_NOT_OK(session->StartSegment());
    trainer->set_event_sink(session.get());
    return session;
  }

  // Find the commit offset: the byte position after the last commit point
  // (kBegin, kProgress outside an open op, kOpEnd). Everything past it is
  // an uncommitted partial iteration or a half-done unlearning operation.
  size_t commit_records = 1;  // kBegin
  int64_t commit_offset = scan.record_ends[0];
  bool in_op = false;
  for (size_t i = 1; i < scan.records.size(); ++i) {
    PayloadReader r(scan.records[i]);
    FATS_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
    if (tag == static_cast<uint8_t>(Tag::kOpBegin)) in_op = true;
    const bool commit =
        (tag == static_cast<uint8_t>(Tag::kProgress) && !in_op) ||
        tag == static_cast<uint8_t>(Tag::kOpEnd);
    if (tag == static_cast<uint8_t>(Tag::kOpEnd)) in_op = false;
    if (commit) {
      commit_records = i + 1;
      commit_offset = scan.record_ends[i];
    }
  }

  // Apply the committed prefix on top of the checkpoint state.
  StateStore& store = trainer->store();
  const int64_t e = trainer->config().local_iters_e;
  Progress progress;
  uint64_t generation = trainer->generation();
  for (size_t i = 1; i < commit_records; ++i) {
    PayloadReader r(scan.records[i]);
    FATS_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
    switch (static_cast<Tag>(tag)) {
      case Tag::kSelection: {
        FATS_ASSIGN_OR_RETURN(int64_t round, r.I64());
        FATS_ASSIGN_OR_RETURN(std::vector<int64_t> multiset, r.I64Vec());
        store.SaveClientSelection(round, std::move(multiset));
        break;
      }
      case Tag::kMinibatch: {
        FATS_ASSIGN_OR_RETURN(int64_t iter, r.I64());
        FATS_ASSIGN_OR_RETURN(int64_t client, r.I64());
        FATS_ASSIGN_OR_RETURN(std::vector<int64_t> indices, r.I64Vec());
        store.SaveMinibatch(iter, client, std::move(indices));
        break;
      }
      case Tag::kLocalModel: {
        FATS_ASSIGN_OR_RETURN(int64_t iter, r.I64());
        FATS_ASSIGN_OR_RETURN(int64_t client, r.I64());
        FATS_ASSIGN_OR_RETURN(Tensor params, r.TensorData());
        store.SaveLocalModel(iter, client, std::move(params));
        break;
      }
      case Tag::kGlobalModel: {
        FATS_ASSIGN_OR_RETURN(int64_t round, r.I64());
        FATS_ASSIGN_OR_RETURN(Tensor params, r.TensorData());
        store.SaveGlobalModel(round, std::move(params));
        break;
      }
      case Tag::kRoundRecord: {
        RoundRecord record;
        FATS_ASSIGN_OR_RETURN(record.round, r.I64());
        FATS_ASSIGN_OR_RETURN(record.test_accuracy, r.F64());
        FATS_ASSIGN_OR_RETURN(record.mean_local_loss, r.F64());
        FATS_ASSIGN_OR_RETURN(uint8_t recomp, r.U8());
        record.recomputation = recomp != 0;
        trainer->mutable_log()->Append(record);
        break;
      }
      case Tag::kProgress: {
        IterationMark& m = progress.mark;
        FATS_ASSIGN_OR_RETURN(m.iteration, r.I64());
        FATS_ASSIGN_OR_RETURN(m.pass_end, r.I64());
        FATS_ASSIGN_OR_RETURN(m.trained_through, r.I64());
        FATS_ASSIGN_OR_RETURN(m.generation, r.U64());
        FATS_ASSIGN_OR_RETURN(uint8_t pass, r.U8());
        m.pass = static_cast<TrainPassKind>(pass);
        FATS_ASSIGN_OR_RETURN(uint8_t recomp, r.U8());
        m.recomputation = recomp != 0;
        FATS_ASSIGN_OR_RETURN(m.comm_rounds, r.I64());
        FATS_ASSIGN_OR_RETURN(m.comm_uplink_bytes, r.I64());
        FATS_ASSIGN_OR_RETURN(m.comm_downlink_bytes, r.I64());
        FATS_ASSIGN_OR_RETURN(m.comm_downlink_messages, r.I64());
        FATS_ASSIGN_OR_RETURN(m.comm_uplink_messages, r.I64());
        FATS_ASSIGN_OR_RETURN(m.comm_retransmits, r.I64());
        FATS_ASSIGN_OR_RETURN(m.comm_retransmit_bytes, r.I64());
        FATS_ASSIGN_OR_RETURN(m.round_loss_sum, r.F64());
        FATS_ASSIGN_OR_RETURN(m.round_loss_count, r.I64());
        progress.seen = true;
        generation = m.generation;
        break;
      }
      case Tag::kTruncate: {
        FATS_ASSIGN_OR_RETURN(int64_t from_iter, r.I64());
        store.TruncateFromIteration(from_iter, e);
        break;
      }
      case Tag::kGenerationBump: {
        FATS_ASSIGN_OR_RETURN(generation, r.U64());
        break;
      }
      case Tag::kOpBegin:
      case Tag::kOpEnd:
        break;
      case Tag::kBegin:
        return Status::IoError("unexpected kBegin mid-segment: " +
                               journal_path);
      default:
        return Status::IoError("unknown journal record tag");
    }
  }
  session->replayed_records_ =
      static_cast<int64_t>(commit_records) - 1;  // kBegin is not state

  trainer->set_generation(generation);
  if (progress.seen) {
    trainer->set_trained_through(progress.mark.trained_through);
    trainer->comm_stats().Reset();
    CommCounters counters;
    counters.rounds = progress.mark.comm_rounds;
    counters.uplink_bytes = progress.mark.comm_uplink_bytes;
    counters.downlink_bytes = progress.mark.comm_downlink_bytes;
    counters.downlink_messages = progress.mark.comm_downlink_messages;
    counters.uplink_messages = progress.mark.comm_uplink_messages;
    counters.retransmits = progress.mark.comm_retransmits;
    counters.retransmit_bytes = progress.mark.comm_retransmit_bytes;
    trainer->comm_stats().Merge(CommStats::FromCounters(counters));
  }
  // Leave the model holding the latest recovered global parameters, exactly
  // as a completed pass would.
  {
    const int64_t t = trainer->trained_through();
    const Tensor* global = store.GetGlobalModel(t / e);
    if (global != nullptr) trainer->model()->SetParameters(*global);
  }

  // Re-open the segment for appending, dropping the uncommitted tail.
  FATS_ASSIGN_OR_RETURN(
      session->writer_,
      JournalWriter::OpenForAppend(journal_path, commit_offset,
                                   ChosenSyncMode(options)));

  // Attach first, then finish any interrupted pass so the re-executed
  // iterations are journaled like the originals.
  trainer->set_event_sink(session.get());
  if (progress.seen && progress.mark.iteration < progress.mark.pass_end) {
    const IterationMark& m = progress.mark;
    trainer->set_recomputation_mode(m.recomputation);
    // The interrupted pass may stop mid-round; restore its partial loss
    // accumulator so the re-executed round's mean_local_loss matches.
    trainer->SeedRoundLossAccumulator(m.round_loss_sum, m.round_loss_count);
    if (m.pass == TrainPassKind::kReplay) {
      trainer->ReplayFrom(m.iteration + 1, m.pass_end);
    } else {
      trainer->Run(m.iteration + 1, m.pass_end);
    }
    trainer->set_recomputation_mode(false);
  }
  FATS_RETURN_NOT_OK(session->status_);
  return session;
}

DurableTrainingSession::~DurableTrainingSession() {
  if (trainer_ != nullptr && trainer_->event_sink() == this) {
    trainer_->set_event_sink(nullptr);
  }
  // Destructor cannot surface the close Status; Finish() is the checked
  // path.  fats-lint: allow(discarded-status)
  if (writer_ != nullptr) (void)writer_->Close();
}

Status DurableTrainingSession::StartSegment() {
  writer_.reset();
  FATS_RETURN_NOT_OK(JournalWriter::Create(journal_path_));
  FATS_ASSIGN_OR_RETURN(
      JournalScan scan, ScanJournal(journal_path_));
  FATS_ASSIGN_OR_RETURN(
      writer_,
      JournalWriter::OpenForAppend(journal_path_, scan.valid_bytes,
                                   ChosenSyncMode(options_)));
  FATS_RETURN_NOT_OK(
      writer_->Append(BeginPayload(trainer_->config(), epoch_)));
  return writer_->Sync();
}

Status DurableTrainingSession::Checkpoint() {
  if (in_op_) {
    return Status::FailedPrecondition(
        "cannot rotate the journal inside an unlearning operation");
  }
  FATS_RETURN_NOT_OK(status_);
  FATS_RETURN_NOT_OK(writer_->Sync());
  // Order is load-bearing: once the checkpoint at epoch+1 is renamed into
  // place, the current segment (epoch) is stale by the epoch rule, so a
  // crash anywhere in between recovers from the new checkpoint alone.
  FATS_RETURN_NOT_OK(
      SaveTrainerCheckpoint(trainer_, checkpoint_path_, epoch_ + 1));
  ++epoch_;
  Status started = StartSegment();
  if (!started.ok()) status_ = started;
  return started;
}

void DurableTrainingSession::AppendRecord(const std::string& payload) {
  if (!status_.ok() || writer_ == nullptr) return;
  Status appended = writer_->Append(payload);
  if (!appended.ok()) status_ = appended;
}

void DurableTrainingSession::SyncJournal() {
  if (!status_.ok() || writer_ == nullptr) return;
  Status synced = writer_->Sync();
  if (!synced.ok()) status_ = synced;
}

void DurableTrainingSession::OnClientSelection(
    int64_t round, const std::vector<int64_t>& selection) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kSelection));
  w.I64(round);
  w.I64Vec(selection);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnMinibatch(int64_t iteration, int64_t client,
                                         const std::vector<int64_t>& indices) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kMinibatch));
  w.I64(iteration);
  w.I64(client);
  w.I64Vec(indices);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnLocalModel(int64_t iteration, int64_t client,
                                          const Tensor& params) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kLocalModel));
  w.I64(iteration);
  w.I64(client);
  w.TensorData(params);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnGlobalModel(int64_t round,
                                           const Tensor& params) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kGlobalModel));
  w.I64(round);
  w.TensorData(params);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnRoundRecord(const RoundRecord& record) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kRoundRecord));
  w.I64(record.round);
  w.F64(record.test_accuracy);
  w.F64(record.mean_local_loss);
  w.U8(record.recomputation ? 1 : 0);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnIterationComplete(const IterationMark& mark) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kProgress));
  w.I64(mark.iteration);
  w.I64(mark.pass_end);
  w.I64(mark.trained_through);
  w.U64(mark.generation);
  w.U8(static_cast<uint8_t>(mark.pass));
  w.U8(mark.recomputation ? 1 : 0);
  w.I64(mark.comm_rounds);
  w.I64(mark.comm_uplink_bytes);
  w.I64(mark.comm_downlink_bytes);
  w.I64(mark.comm_downlink_messages);
  w.I64(mark.comm_uplink_messages);
  w.I64(mark.comm_retransmits);
  w.I64(mark.comm_retransmit_bytes);
  w.F64(mark.round_loss_sum);
  w.I64(mark.round_loss_count);
  AppendRecord(w.str());
  const int64_t e = trainer_->config().local_iters_e;
  if (mark.iteration % e == 0 && options_.sync_every_rounds > 0 &&
      ++rounds_since_sync_ >= options_.sync_every_rounds) {
    rounds_since_sync_ = 0;
    SyncJournal();
  }
}

void DurableTrainingSession::OnTruncate(int64_t from_iteration) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kTruncate));
  w.I64(from_iteration);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnGenerationBump(uint64_t generation) {
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kGenerationBump));
  w.U64(generation);
  AppendRecord(w.str());
}

void DurableTrainingSession::OnUnlearnBegin() {
  in_op_ = true;
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kOpBegin));
  AppendRecord(w.str());
  SyncJournal();
}

void DurableTrainingSession::OnUnlearnEnd() {
  in_op_ = false;
  PayloadWriter w;
  w.U8(static_cast<uint8_t>(Tag::kOpEnd));
  AppendRecord(w.str());
  SyncJournal();
}

}  // namespace fats
