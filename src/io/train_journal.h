// Journaled durable training sessions: crash-exact recovery for FatsTrainer.
//
// A DurableTrainingSession pairs a checkpoint file with an append-only
// journal segment (io/journal.h) and attaches itself to a trainer as its
// TrainEventSink. Every durable state transition — the save(·) calls of
// Algorithm 1, iteration commits, truncations, generation bumps, and
// unlearning-operation brackets — is appended as a typed record. Because
// every random draw in training is a pure function of its Philox stream
// key, the committed journal prefix plus deterministic re-execution of the
// uncommitted tail reconstructs the in-memory state bit for bit: a process
// killed at *any* point recovers to exactly the state an uninterrupted run
// would have reached.
//
// Epoch protocol. Each checkpoint (format v3) stores a journal epoch and
// each segment's leading kBegin record echoes the config and that epoch.
// Checkpoint() rotates: sync the old segment, save the checkpoint at
// epoch+1, then start a fresh segment at epoch+1. On Open:
//
//   segment epoch == checkpoint epoch  ->  replay the segment on top of
//                                          the checkpoint
//   segment epoch <  checkpoint epoch  ->  stale segment (crash between
//                                          checkpoint rename and segment
//                                          creation); ignore and rotate
//   segment epoch >  checkpoint epoch  ->  the checkpoint was lost; error
//
// Commit points. Replay applies records only up to the last commit point —
// the kBegin record, each iteration-progress record outside an open
// unlearning bracket, and each bracket-closing kOpEnd — and truncates the
// file there. Records past it describe a partially executed iteration or a
// half-done unlearning operation; both are re-executed (or re-requested)
// deterministically, so dropping them is exact. In particular a crash
// inside an unlearning operation rolls the whole operation back, matching
// the not-yet-committed data-side deletion.
//
// Durability cadence: every append is fflush'd (survives process death);
// fsync (survives power loss) happens at round boundaries per
// DurableOptions, on unlearning brackets, and on rotation. With
// DurableOptions::async_io, appends land in an in-memory batch drained by a
// background writer thread instead (JournalWriter::SyncMode::kAsync); the
// fsync barriers above drain that batch first, and the commit-point replay
// rule makes the lost-buffered-tail crash case exact (DESIGN.md §7.6).

#ifndef FATS_IO_TRAIN_JOURNAL_H_
#define FATS_IO_TRAIN_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fats_trainer.h"
#include "fl/train_events.h"
#include "io/journal.h"
#include "util/status.h"

namespace fats {

struct DurableOptions {
  /// fsync after every record (slow; survives power loss at any point).
  bool sync_every_append = false;
  /// fsync every N round boundaries (0 disables round-boundary syncs).
  int64_t sync_every_rounds = 1;
  /// Buffer appends and flush them from a dedicated writer thread
  /// (JournalWriter::SyncMode::kAsync): the training thread never blocks on
  /// file I/O except at sync barriers. Recovery stays bitwise exact — a
  /// crash loses at most the unflushed tail, which replay re-executes.
  /// Ignored when sync_every_append is set (per-record fsync implies
  /// synchronous writes).
  bool async_io = false;
};

class DurableTrainingSession : public TrainEventSink {
 public:
  /// Opens (or recovers) a durable session over `trainer`, which must be
  /// freshly constructed with the same spec/config over an equivalent
  /// dataset, exactly as for LoadTrainerCheckpoint. Loads the checkpoint if
  /// one exists, replays the journal's committed prefix, finishes any
  /// interrupted training pass, and attaches itself as the trainer's event
  /// sink. On success the trainer is in the exact state the uninterrupted
  /// run had at its last committed point (or beyond, once the interrupted
  /// pass is finished).
  static Result<std::unique_ptr<DurableTrainingSession>> Open(
      const std::string& checkpoint_path, const std::string& journal_path,
      FatsTrainer* trainer, const DurableOptions& options = {});

  ~DurableTrainingSession() override;
  DurableTrainingSession(const DurableTrainingSession&) = delete;
  DurableTrainingSession& operator=(const DurableTrainingSession&) = delete;

  /// Rotates: syncs the journal, saves the checkpoint at epoch+1, and
  /// starts a fresh segment. Refuses mid-unlearning-operation.
  Status Checkpoint();

  /// First journal error, if any. Training continues in memory after a
  /// journal failure, but durability is lost; callers should surface this.
  const Status& status() const { return status_; }

  uint64_t epoch() const { return epoch_; }
  /// True if Open applied any journal records (i.e. recovered state that
  /// the checkpoint alone did not hold).
  bool recovered() const { return replayed_records_ > 0; }
  int64_t replayed_records() const { return replayed_records_; }

  // TrainEventSink:
  void OnClientSelection(int64_t round,
                         const std::vector<int64_t>& selection) override;
  void OnMinibatch(int64_t iteration, int64_t client,
                   const std::vector<int64_t>& indices) override;
  void OnLocalModel(int64_t iteration, int64_t client,
                    const Tensor& params) override;
  void OnGlobalModel(int64_t round, const Tensor& params) override;
  void OnRoundRecord(const RoundRecord& record) override;
  void OnIterationComplete(const IterationMark& mark) override;
  void OnTruncate(int64_t from_iteration) override;
  void OnGenerationBump(uint64_t generation) override;
  void OnUnlearnBegin() override;
  void OnUnlearnEnd() override;

 private:
  DurableTrainingSession(std::string checkpoint_path, std::string journal_path,
                         FatsTrainer* trainer, const DurableOptions& options)
      : checkpoint_path_(std::move(checkpoint_path)),
        journal_path_(std::move(journal_path)),
        trainer_(trainer),
        options_(options) {}

  /// Starts a fresh segment at `epoch_` (Create + kBegin + sync).
  Status StartSegment();
  /// Appends one record, latching the first failure into status_.
  void AppendRecord(const std::string& payload);
  void SyncJournal();

  std::string checkpoint_path_;
  std::string journal_path_;
  FatsTrainer* trainer_;
  DurableOptions options_;
  std::unique_ptr<JournalWriter> writer_;
  Status status_;
  uint64_t epoch_ = 0;
  int64_t replayed_records_ = 0;
  bool in_op_ = false;
  int64_t rounds_since_sync_ = 0;
};

}  // namespace fats

#endif  // FATS_IO_TRAIN_JOURNAL_H_
