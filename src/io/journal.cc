#include "io/journal.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "util/failpoint.h"

namespace fats {
namespace {

constexpr char kMagic[8] = {'F', 'A', 'T', 'S', 'J', 'R', 'N', '1'};
constexpr uint32_t kVersion = 1;
constexpr int64_t kHeaderBytes = 12;  // magic + u32 version
// Sanity bound: a frame longer than this is corrupt, not large.
constexpr uint32_t kMaxRecordBytes = uint32_t{1} << 30;
// Async mode hands the active batch to the writer thread once it reaches
// this size; Sync() hands over whatever accumulated regardless.
constexpr size_t kAsyncBatchBytes = size_t{1} << 16;

void PutU32(char* out, uint32_t value) {
  out[0] = static_cast<char>(value & 0xFF);
  out[1] = static_cast<char>((value >> 8) & 0xFF);
  out[2] = static_cast<char>((value >> 16) & 0xFF);
  out[3] = static_cast<char>((value >> 24) & 0xFF);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

Status SyncFile(std::FILE* file, const std::string& path) {
  FATS_FAILPOINT_STATUS("journal.sync_file");
  if (std::fflush(file) != 0) {
    return Status::IoError("journal flush failed: " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    return Status::IoError("journal fsync failed: " + path);
  }
  return Status::OK();
}

}  // namespace

Result<JournalScan> ScanJournal(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open journal: " + path);
  }
  std::string blob;
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    blob.append(buffer, read);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return Status::IoError("journal read failed: " + path);

  if (blob.size() < static_cast<size_t>(kHeaderBytes) ||
      std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a FATS journal: " + path);
  }
  if (GetU32(blob.data() + sizeof(kMagic)) != kVersion) {
    return Status::InvalidArgument("unsupported journal version: " + path);
  }

  JournalScan scan;
  scan.valid_bytes = kHeaderBytes;
  size_t pos = static_cast<size_t>(kHeaderBytes);
  while (pos < blob.size()) {
    if (blob.size() - pos < 8) {
      scan.torn_tail = true;
      scan.tail_detail = "truncated frame header";
      break;
    }
    const uint32_t length = GetU32(blob.data() + pos);
    const uint32_t expected_crc = GetU32(blob.data() + pos + 4);
    if (length > kMaxRecordBytes) {
      scan.torn_tail = true;
      scan.tail_detail = "frame length exceeds sanity bound";
      break;
    }
    if (blob.size() - pos - 8 < length) {
      scan.torn_tail = true;
      scan.tail_detail = "truncated payload";
      break;
    }
    const char* payload = blob.data() + pos + 8;
    if (Crc32(payload, length) != expected_crc) {
      scan.torn_tail = true;
      scan.tail_detail = "CRC mismatch";
      break;
    }
    pos += 8 + length;
    scan.records.emplace_back(payload, length);
    scan.record_ends.push_back(static_cast<int64_t>(pos));
    scan.valid_bytes = static_cast<int64_t>(pos);
  }
  return scan;
}

Status JournalWriter::Create(const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create journal: " + tmp_path);
  }
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + sizeof(kMagic), kVersion);
  const bool wrote =
      std::fwrite(header, 1, sizeof(header), file) == sizeof(header);
  Status synced = wrote ? SyncFile(file, tmp_path)
                        : Status::IoError("journal header write failed: " +
                                          tmp_path);
  std::fclose(file);
  if (!synced.ok()) {
    std::remove(tmp_path.c_str());
    return synced;
  }
  // Crash here strands `<path>.tmp`; SweepOrphanTmp removes it on the next
  // open, and the previous segment (if any) is still intact at `path`.
  FATS_FAILPOINT("journal.create.tmp");
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename journal into place: " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::OpenForAppend(
    const std::string& path, int64_t valid_bytes, SyncMode mode) {
  if (valid_bytes < kHeaderBytes) {
    return Status::InvalidArgument(
        "journal append offset inside the header; Create a fresh segment");
  }
  // Discard the torn / uncommitted tail so appended records follow the last
  // committed one directly.
  FATS_FAILPOINT_STATUS("journal.truncate_tail");
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IoError("cannot truncate journal tail: " + path);
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open journal for append: " + path);
  }
  auto writer =
      std::unique_ptr<JournalWriter>(new JournalWriter(file, path, mode));
  if (mode == SyncMode::kAsync) {
    writer->writer_ = std::make_unique<WriterThread>();
  }
  return writer;
}

// Destructor cannot surface a Status; callers needing the sync result must
// call Close() themselves.  fats-lint: allow(discarded-status)
JournalWriter::~JournalWriter() { (void)Close(); }

Status JournalWriter::Append(std::string_view payload) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) {
    status_ = Status::IoError("journal already closed: " + path_);
    return status_;
  }
  static const bool registered = failpoint::RegisterSite("journal.append");
  (void)registered;
  failpoint::Triggered triggered = failpoint::Triggered::kNone;
  if (failpoint::AnyArmed()) triggered = failpoint::Evaluate("journal.append");
  if (triggered == failpoint::Triggered::kError) {
    status_ = Status::IoError("failpoint 'journal.append' injected an error");
    return status_;
  }

  char frame[8];
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame + 4, Crc32(payload.data(), payload.size()));

  if (mode_ == SyncMode::kAsync) {
    {
      // Propagate a writer-side failure before buffering more work.
      std::lock_guard<std::mutex> lock(mu_);
      if (!async_status_.ok()) {
        status_ = async_status_;
        return status_;
      }
    }
    if (triggered == failpoint::Triggered::kTornWrite) {
      // Persist every already-buffered frame plus a deliberately torn
      // record — full frame header, half the payload — then die like a
      // crash would. Waiting out any in-flight flush first keeps the file
      // in append order.
      {
        std::unique_lock<std::mutex> lock(mu_);
        flush_done_cv_.wait(lock, [this] { return !flush_pending_; });
      }
      (void)std::fwrite(active_.data(), 1, active_.size(), file_);
      (void)std::fwrite(frame, 1, sizeof(frame), file_);
      (void)std::fwrite(payload.data(), 1, payload.size() / 2, file_);
      (void)std::fflush(file_);
      (void)::fsync(::fileno(file_));
      std::_Exit(failpoint::kCrashExitCode);
    }
    active_.append(frame, sizeof(frame));
    if (!payload.empty()) active_.append(payload.data(), payload.size());
    if (active_.size() >= kAsyncBatchBytes) return SwapAndFlush();
    return Status::OK();
  }

  bool ok = std::fwrite(frame, 1, sizeof(frame), file_) == sizeof(frame);
  if (ok && triggered == failpoint::Triggered::kTornWrite) {
    // Persist a deliberately torn record — full frame header, half the
    // payload — then die like a crash would. Recovery must detect the CRC
    // mismatch and discard exactly this record.
    const size_t half = payload.size() / 2;
    (void)std::fwrite(payload.data(), 1, half, file_);
    (void)std::fflush(file_);
    (void)::fsync(::fileno(file_));
    std::_Exit(failpoint::kCrashExitCode);
  }
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), file_) ==
                  payload.size());
  // Push the frame into the page cache so it survives process death; only
  // Sync() pushes further to the device.
  ok = ok && std::fflush(file_) == 0;
  if (!ok) {
    status_ = Status::IoError("journal append failed: " + path_);
    return status_;
  }
  if (mode_ == SyncMode::kEveryAppend) return Sync();
  return Status::OK();
}

Status JournalWriter::SwapAndFlush() {
  std::unique_lock<std::mutex> lock(mu_);
  // Double buffering: at most one batch is in flight. Wait for it, so the
  // writer thread owns `flushing_` exclusively whenever flush_pending_.
  flush_done_cv_.wait(lock, [this] { return !flush_pending_; });
  if (!async_status_.ok()) {
    status_ = async_status_;
    return status_;
  }
  if (active_.empty()) return Status::OK();
  // Crash here loses the whole active batch — to recovery, identical to
  // crashing before those Appends ran (the flush is the commit point).
  static const bool registered = failpoint::RegisterSite("journal.swap_buffer");
  (void)registered;
  if (failpoint::AnyArmed() &&
      failpoint::Evaluate("journal.swap_buffer") ==
          failpoint::Triggered::kError) {
    status_ =
        Status::IoError("failpoint 'journal.swap_buffer' injected an error");
    return status_;
  }
  active_.swap(flushing_);
  flush_pending_ = true;
  lock.unlock();
  writer_->Post([this] { FlushBatchOnWriter(); });
  return Status::OK();
}

void JournalWriter::FlushBatchOnWriter() {
  // Runs on the writer thread. `flushing_` is read without mu_: the
  // appending thread never touches it while flush_pending_ is true (the
  // handoff protocol in the header). Crash window: the batch was swapped
  // out but not yet written — recovery replays the shorter committed
  // prefix.
  static const bool registered = failpoint::RegisterSite("journal.async_flush");
  (void)registered;
  failpoint::Triggered triggered = failpoint::Triggered::kNone;
  if (failpoint::AnyArmed()) {
    triggered = failpoint::Evaluate("journal.async_flush");
  }
  if (triggered == failpoint::Triggered::kTornWrite) {
    // Persist half the batch then die — a batch torn mid-write. The cut
    // lands mid-frame, so recovery's CRC check discards the torn record.
    (void)std::fwrite(flushing_.data(), 1, flushing_.size() / 2, file_);
    (void)std::fflush(file_);
    (void)::fsync(::fileno(file_));
    std::_Exit(failpoint::kCrashExitCode);
  }
  Status flushed = Status::OK();
  if (triggered == failpoint::Triggered::kError) {
    flushed =
        Status::IoError("failpoint 'journal.async_flush' injected an error");
  } else {
    const bool ok =
        std::fwrite(flushing_.data(), 1, flushing_.size(), file_) ==
            flushing_.size() &&
        std::fflush(file_) == 0;
    if (!ok) flushed = Status::IoError("journal async flush failed: " + path_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!flushed.ok() && async_status_.ok()) async_status_ = flushed;
  flushing_.clear();
  flush_pending_ = false;
  flush_done_cv_.notify_all();
}

Status JournalWriter::Sync() {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) {
    status_ = Status::IoError("journal already closed: " + path_);
    return status_;
  }
  if (mode_ == SyncMode::kAsync) {
    // Round-boundary barrier: hand over the buffered tail, wait until the
    // writer pushed every batch into the FILE*, then fsync below.
    Status swapped = SwapAndFlush();
    if (!swapped.ok()) return swapped;
    std::unique_lock<std::mutex> lock(mu_);
    flush_done_cv_.wait(lock, [this] { return !flush_pending_; });
    if (!async_status_.ok()) {
      status_ = async_status_;
      return status_;
    }
  }
  FATS_FAILPOINT("journal.sync");
  Status synced = SyncFile(file_, path_);
  if (!synced.ok()) status_ = synced;
  return synced;
}

Status JournalWriter::Close() {
  if (file_ == nullptr) return status_;
  if (writer_ != nullptr) {
    // Push the buffered tail out and join the writer thread: a closed
    // writer leaves no background thread behind (fork-safety for the
    // crash-matrix test, which forks between sessions).
    if (status_.ok()) {
      Status swapped = SwapAndFlush();
      (void)swapped;  // latched into status_ on failure
    }
    writer_->Drain();
    writer_.reset();
    if (status_.ok() && !async_status_.ok()) status_ = async_status_;
  }
  Status synced = status_.ok() ? SyncFile(file_, path_) : status_;
  if (std::fclose(file_) != 0 && synced.ok()) {
    synced = Status::IoError("journal close failed: " + path_);
  }
  file_ = nullptr;
  if (!synced.ok() && status_.ok()) status_ = synced;
  return synced;
}

bool SweepOrphanTmp(const std::string& path) {
  return std::remove((path + ".tmp").c_str()) == 0;
}

}  // namespace fats
