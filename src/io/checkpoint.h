// Trainer checkpointing: persist and restore the full FATS algorithmic
// state (model, state store, randomness generation, progress, logs).
//
// The checkpoint captures everything FATS-SU / FATS-CU need, so a server
// can stop, restart from disk, and still serve exact unlearning requests
// against the recorded history. Datasets are NOT part of the checkpoint
// (they live with the clients); the restoring process must reconstruct the
// same FederatedDataset (same profile + seed + prior deletions) and build
// the trainer with the same spec/config before calling Load.
//
// Format (version 4): "FATSCKPT" magic, u32 version, config echo
// (validated on load), u64 journal epoch, then model parameters, store
// records, counters (version 4 carries the full CommCounters snapshot:
// per-direction message counts and the retransmit ledger), the round log,
// and a trailing "FATSEND." footer. The
// footer lets the loader reject writes torn at a record boundary, which the
// length-prefixed records alone cannot detect.
//
// The journal epoch ties the checkpoint to its journal segment (see
// io/train_journal.h): a segment whose kBegin epoch is older than the
// checkpoint's is stale and is ignored on recovery. Standalone checkpoints
// use epoch 0.

#ifndef FATS_IO_CHECKPOINT_H_
#define FATS_IO_CHECKPOINT_H_

#include <string>

#include "core/fats_trainer.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace fats {

/// Serializes a bare tensor (shape + data) through `writer`.
void WriteTensor(const Tensor& tensor, BinaryWriter* writer);
/// Reads a tensor written by WriteTensor.
Result<Tensor> ReadTensor(BinaryReader* reader);

/// Writes `trainer`'s full state to `path`. The write goes to a sibling
/// `<path>.tmp` file which is renamed into place only after a successful
/// flush, so a crash or I/O error mid-save never clobbers an existing
/// checkpoint with a torn file; on failure the temp file is removed.
/// `journal_epoch` stamps the checkpoint for journal recovery (0 when the
/// checkpoint is not paired with a journal).
Status SaveTrainerCheckpoint(FatsTrainer* trainer, const std::string& path,
                             uint64_t journal_epoch = 0);

/// Restores state saved by SaveTrainerCheckpoint into `trainer`, which must
/// have been constructed with the same ModelSpec and FatsConfig over an
/// equivalent dataset. Fails with InvalidArgument if the stored config does
/// not match the trainer's. Any stale `<path>.tmp` stranded by a crash
/// mid-save is swept first. `journal_epoch`, when non-null, receives the
/// stored epoch.
Status LoadTrainerCheckpoint(const std::string& path, FatsTrainer* trainer,
                             uint64_t* journal_epoch = nullptr);

}  // namespace fats

#endif  // FATS_IO_CHECKPOINT_H_
