#include "io/checkpoint.h"

#include <cmath>
#include <cstdio>

#include "io/journal.h"
#include "state/history_codec.h"
#include "util/failpoint.h"

namespace fats {

namespace {

constexpr char kMagic[] = "FATSCKPT";
// Version 2 appends kFooter so a write torn at a record boundary (which
// would otherwise parse cleanly) is detected on load. Version 3 adds the
// journal epoch after the config echo. Version 5 stores index-list records
// (client selections, mini-batches) as history-codec blobs
// (state/history_codec.h) instead of raw i64 vectors — the same
// bit-specified compression the tiered store uses, so checkpoints shrink
// with the history and decode bit-exactly.
constexpr char kFooter[] = "FATSEND.";
constexpr uint32_t kVersion = 5;

// Upper bound on the element count of any single checkpointed tensor.
// Shapes whose volume exceeds it (or overflows int64_t) are corrupt: the
// largest model in the zoo is far below this, and the guard keeps a bad
// shape from turning into a multi-GB allocation.
constexpr int64_t kMaxTensorVolume = int64_t{1} << 33;

void WriteConfig(const FatsConfig& config, BinaryWriter* writer) {
  writer->WriteI64(config.clients_m);
  writer->WriteI64(config.samples_per_client_n);
  writer->WriteI64(config.rounds_r);
  writer->WriteI64(config.local_iters_e);
  writer->WriteDouble(config.rho_s);
  writer->WriteDouble(config.rho_c);
  writer->WriteDouble(config.learning_rate);
  writer->WriteU64(config.seed);
}

Result<FatsConfig> ReadConfig(BinaryReader* reader) {
  FatsConfig config;
  FATS_ASSIGN_OR_RETURN(config.clients_m, reader->ReadI64());
  FATS_ASSIGN_OR_RETURN(config.samples_per_client_n, reader->ReadI64());
  FATS_ASSIGN_OR_RETURN(config.rounds_r, reader->ReadI64());
  FATS_ASSIGN_OR_RETURN(config.local_iters_e, reader->ReadI64());
  FATS_ASSIGN_OR_RETURN(config.rho_s, reader->ReadDouble());
  FATS_ASSIGN_OR_RETURN(config.rho_c, reader->ReadDouble());
  FATS_ASSIGN_OR_RETURN(config.learning_rate, reader->ReadDouble());
  FATS_ASSIGN_OR_RETURN(config.seed, reader->ReadU64());
  return config;
}

bool ConfigsMatch(const FatsConfig& a, const FatsConfig& b) {
  return a.clients_m == b.clients_m &&
         a.samples_per_client_n == b.samples_per_client_n &&
         a.rounds_r == b.rounds_r && a.local_iters_e == b.local_iters_e &&
         std::fabs(a.rho_s - b.rho_s) < 1e-12 &&
         std::fabs(a.rho_c - b.rho_c) < 1e-12 &&
         std::fabs(a.learning_rate - b.learning_rate) < 1e-12 &&
         a.seed == b.seed;
}

}  // namespace

void WriteTensor(const Tensor& tensor, BinaryWriter* writer) {
  writer->WriteI64Vector(tensor.shape());
  writer->WriteFloatVector(tensor.storage());
}

Result<Tensor> ReadTensor(BinaryReader* reader) {
  FATS_ASSIGN_OR_RETURN(std::vector<int64_t> shape, reader->ReadI64Vector());
  FATS_ASSIGN_OR_RETURN(std::vector<float> data, reader->ReadFloatVector());
  if (shape.empty() && data.empty()) return Tensor();
  int64_t volume = 1;
  for (int64_t d : shape) {
    if (d <= 0) return Status::IoError("corrupt tensor shape");
    if (d > kMaxTensorVolume || volume > kMaxTensorVolume / d) {
      return Status::IoError("tensor shape volume overflows sanity bound");
    }
    volume *= d;
  }
  if (volume != static_cast<int64_t>(data.size())) {
    return Status::IoError("tensor shape/data size mismatch");
  }
  return Tensor(std::move(shape), std::move(data));
}

namespace {

Status WriteCheckpointFile(FatsTrainer* trainer, const std::string& path,
                           uint64_t journal_epoch) {
  BinaryWriter writer(path);
  FATS_RETURN_NOT_OK(writer.status());
  FATS_FAILPOINT_STATUS("checkpoint.write.body");
  writer.WriteString(kMagic);
  writer.WriteU32(kVersion);
  WriteConfig(trainer->config(), &writer);
  writer.WriteU64(journal_epoch);

  // Progress markers and the deployed model.
  writer.WriteU64(trainer->generation());
  writer.WriteI64(trainer->trained_through());
  writer.WriteI64(trainer->local_iterations_executed());
  WriteTensor(trainer->global_params(), &writer);

  // State store.
  const StateStore& store = trainer->store();
  const std::vector<int64_t> selection_rounds = store.SelectionRounds();
  writer.WriteU64(selection_rounds.size());
  for (int64_t round : selection_rounds) {
    writer.WriteI64(round);
    writer.WriteString(
        state::EncodeIndexList(*store.GetClientSelection(round)));
  }
  const std::vector<int64_t> model_rounds = store.GlobalModelRounds();
  writer.WriteU64(model_rounds.size());
  for (int64_t round : model_rounds) {
    writer.WriteI64(round);
    WriteTensor(*store.GetGlobalModel(round), &writer);
  }
  const auto minibatch_keys = store.MinibatchKeys();
  writer.WriteU64(minibatch_keys.size());
  for (const auto& [iter, client] : minibatch_keys) {
    writer.WriteI64(iter);
    writer.WriteI64(client);
    writer.WriteString(state::EncodeIndexList(*store.GetMinibatch(iter,
                                                                  client)));
  }
  const auto local_keys = store.LocalModelKeys();
  writer.WriteU64(local_keys.size());
  for (const auto& [iter, client] : local_keys) {
    writer.WriteI64(iter);
    writer.WriteI64(client);
    WriteTensor(*store.GetLocalModel(iter, client), &writer);
  }

  // Round log and communication counters.
  const auto& records = trainer->log().records();
  writer.WriteU64(records.size());
  for (const RoundRecord& record : records) {
    writer.WriteI64(record.round);
    writer.WriteDouble(record.test_accuracy);
    writer.WriteDouble(record.mean_local_loss);
    writer.WriteU32(record.recomputation ? 1 : 0);
  }
  const CommCounters& comm = trainer->comm_stats().counters();
  writer.WriteI64(comm.rounds);
  writer.WriteI64(comm.uplink_bytes);
  writer.WriteI64(comm.downlink_bytes);
  writer.WriteI64(comm.downlink_messages);
  writer.WriteI64(comm.uplink_messages);
  writer.WriteI64(comm.retransmits);
  writer.WriteI64(comm.retransmit_bytes);
  writer.WriteString(kFooter);
  return writer.Finish();
}

}  // namespace

Status SaveTrainerCheckpoint(FatsTrainer* trainer, const std::string& path,
                             uint64_t journal_epoch) {
  // Write to a sibling temp file and rename into place, so a crash or a
  // full disk mid-save never leaves a torn file at `path` (the previous
  // checkpoint, if any, survives intact).
  const std::string tmp_path = path + ".tmp";
  Status written = WriteCheckpointFile(trainer, tmp_path, journal_epoch);
  if (!written.ok()) {
    std::remove(tmp_path.c_str());
    return written;
  }
  // Crash here strands the `.tmp`; the loader sweeps it.
  FATS_FAILPOINT("checkpoint.rename");
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("failed to rename checkpoint into place: " + path);
  }
  return Status::OK();
}

Status LoadTrainerCheckpoint(const std::string& path, FatsTrainer* trainer,
                             uint64_t* journal_epoch) {
  // A crash between tmp-write and rename leaves an orphan `<path>.tmp`
  // containing a possibly-torn checkpoint; it is never valid input, so
  // remove it rather than leak it.
  SweepOrphanTmp(path);
  BinaryReader reader(path);
  FATS_RETURN_NOT_OK(reader.status());
  FATS_ASSIGN_OR_RETURN(std::string magic, reader.ReadString());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a FATS checkpoint: " + path);
  }
  FATS_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  FATS_ASSIGN_OR_RETURN(FatsConfig stored_config, ReadConfig(&reader));
  if (!ConfigsMatch(stored_config, trainer->config())) {
    return Status::InvalidArgument(
        "checkpoint config does not match the trainer's: " +
        stored_config.ToString());
  }
  FATS_ASSIGN_OR_RETURN(uint64_t stored_epoch, reader.ReadU64());

  // Parse everything into staging storage first; the trainer is mutated
  // only after the whole file has validated, so a corrupt checkpoint never
  // leaves a half-restored state behind.
  FATS_ASSIGN_OR_RETURN(uint64_t generation, reader.ReadU64());
  FATS_ASSIGN_OR_RETURN(int64_t trained_through, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(int64_t local_iters, reader.ReadI64());
  (void)local_iters;  // informational; the counter restarts on restore
  FATS_ASSIGN_OR_RETURN(Tensor params, ReadTensor(&reader));
  if (params.size() != trainer->model()->NumParameters()) {
    return Status::InvalidArgument("checkpoint model size mismatch");
  }

  std::vector<std::pair<int64_t, std::vector<int64_t>>> selections;
  FATS_ASSIGN_OR_RETURN(uint64_t num_selections, reader.ReadU64());
  for (uint64_t i = 0; i < num_selections; ++i) {
    FATS_ASSIGN_OR_RETURN(int64_t round, reader.ReadI64());
    // Record keys feed the tiered store, whose domain is non-negative;
    // a flipped sign bit must be a load error, not a CHECK abort.
    if (round < 0) return Status::IoError("corrupt checkpoint: round < 0");
    FATS_ASSIGN_OR_RETURN(std::string blob, reader.ReadString());
    std::vector<int64_t> selection;
    FATS_RETURN_NOT_OK(state::DecodeIndexList(blob, &selection));
    selections.emplace_back(round, std::move(selection));
  }
  std::vector<std::pair<int64_t, Tensor>> global_models;
  FATS_ASSIGN_OR_RETURN(uint64_t num_models, reader.ReadU64());
  for (uint64_t i = 0; i < num_models; ++i) {
    FATS_ASSIGN_OR_RETURN(int64_t round, reader.ReadI64());
    FATS_ASSIGN_OR_RETURN(Tensor model, ReadTensor(&reader));
    global_models.emplace_back(round, std::move(model));
  }
  struct BatchRecord {
    int64_t iter;
    int64_t client;
    std::vector<int64_t> batch;
  };
  std::vector<BatchRecord> minibatches;
  FATS_ASSIGN_OR_RETURN(uint64_t num_batches, reader.ReadU64());
  for (uint64_t i = 0; i < num_batches; ++i) {
    BatchRecord record;
    FATS_ASSIGN_OR_RETURN(record.iter, reader.ReadI64());
    FATS_ASSIGN_OR_RETURN(record.client, reader.ReadI64());
    if (record.iter < 0) {
      return Status::IoError("corrupt checkpoint: minibatch iter < 0");
    }
    FATS_ASSIGN_OR_RETURN(std::string blob, reader.ReadString());
    FATS_RETURN_NOT_OK(state::DecodeIndexList(blob, &record.batch));
    minibatches.push_back(std::move(record));
  }
  struct LocalRecord {
    int64_t iter;
    int64_t client;
    Tensor model;
  };
  std::vector<LocalRecord> local_models;
  FATS_ASSIGN_OR_RETURN(uint64_t num_locals, reader.ReadU64());
  for (uint64_t i = 0; i < num_locals; ++i) {
    LocalRecord record;
    FATS_ASSIGN_OR_RETURN(record.iter, reader.ReadI64());
    FATS_ASSIGN_OR_RETURN(record.client, reader.ReadI64());
    if (record.iter < 0) {
      return Status::IoError("corrupt checkpoint: local-model iter < 0");
    }
    FATS_ASSIGN_OR_RETURN(record.model, ReadTensor(&reader));
    local_models.push_back(std::move(record));
  }
  std::vector<RoundRecord> records;
  FATS_ASSIGN_OR_RETURN(uint64_t num_records, reader.ReadU64());
  for (uint64_t i = 0; i < num_records; ++i) {
    RoundRecord record;
    FATS_ASSIGN_OR_RETURN(record.round, reader.ReadI64());
    FATS_ASSIGN_OR_RETURN(record.test_accuracy, reader.ReadDouble());
    FATS_ASSIGN_OR_RETURN(record.mean_local_loss, reader.ReadDouble());
    FATS_ASSIGN_OR_RETURN(uint32_t recompute, reader.ReadU32());
    record.recomputation = recompute != 0;
    records.push_back(record);
  }
  CommCounters comm;
  FATS_ASSIGN_OR_RETURN(comm.rounds, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(comm.uplink_bytes, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(comm.downlink_bytes, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(comm.downlink_messages, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(comm.uplink_messages, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(comm.retransmits, reader.ReadI64());
  FATS_ASSIGN_OR_RETURN(comm.retransmit_bytes, reader.ReadI64());

  // The footer catches a write torn at a record boundary, which the
  // length-prefixed records above cannot distinguish from a complete file.
  FATS_ASSIGN_OR_RETURN(std::string footer, reader.ReadString());
  if (footer != kFooter) {
    return Status::IoError("truncated checkpoint (missing footer): " + path);
  }
  if (reader.remaining() != 0) {
    return Status::IoError("trailing bytes after checkpoint footer: " + path);
  }

  // ---- commit ----
  StateStore& store = trainer->store();
  store.Clear();
  for (auto& [round, selection] : selections) {
    store.SaveClientSelection(round, std::move(selection));
  }
  for (auto& [round, model] : global_models) {
    store.SaveGlobalModel(round, std::move(model));
  }
  for (BatchRecord& record : minibatches) {
    store.SaveMinibatch(record.iter, record.client, std::move(record.batch));
  }
  for (LocalRecord& record : local_models) {
    store.SaveLocalModel(record.iter, record.client,
                         std::move(record.model));
  }
  TrainLog* log = trainer->mutable_log();
  log->Clear();
  for (const RoundRecord& record : records) log->Append(record);
  trainer->comm_stats().Reset();
  trainer->comm_stats().Merge(CommStats::FromCounters(comm));
  trainer->set_generation(generation);
  trainer->set_trained_through(trained_through);
  trainer->model()->SetParameters(params);
  if (journal_epoch != nullptr) *journal_epoch = stored_epoch;
  return Status::OK();
}

}  // namespace fats
