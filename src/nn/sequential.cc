// Sequential is header-only; this TU keeps the build file uniform.
#include "nn/sequential.h"
