// 2-D convolution over flat (batch x C*H*W) activations.

#ifndef FATS_NN_CONV2D_H_
#define FATS_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "rng/rng_stream.h"

namespace fats {

/// Direct (non-im2col) convolution with stride 1 and symmetric zero padding.
/// The input tensor is (batch, in_channels * height * width) in CHW order.
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t height,
         int64_t width, int64_t kernel_size, int64_t padding, RngStream* rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  int64_t out_height() const { return out_height_; }
  int64_t out_width() const { return out_width_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t height_;
  int64_t width_;
  int64_t kernel_size_;
  int64_t padding_;
  int64_t out_height_;
  int64_t out_width_;
  Parameter weight_;  // (out_ch, in_ch * k * k)
  Parameter bias_;    // (out_ch)
  Tensor cached_input_;
};

}  // namespace fats

#endif  // FATS_NN_CONV2D_H_
