// 2-D convolution over flat (batch x C*H*W) activations.

#ifndef FATS_NN_CONV2D_H_
#define FATS_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "rng/rng_stream.h"

namespace fats {

/// Convolution with stride 1 and symmetric zero padding. The input tensor is
/// (batch, in_channels * height * width) in CHW order.
///
/// The main path is im2col + GEMM: each sample's receptive fields are
/// unrolled into a (K x P) column matrix (K = in_ch·k², P = out_h·out_w,
/// cached in a Workspace slot and reused across steps), so forward is one
/// SgemmNN per sample and backward is one SgemmNT (dW) plus one SgemmTN
/// (dcol) per sample followed by a col2im scatter. The original direct
/// convolution is retained as ForwardDirect/BackwardDirect — a slow,
/// independent reference that gradcheck tests compare against.
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t height,
         int64_t width, int64_t kernel_size, int64_t padding, RngStream* rng);

  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  /// Direct (non-im2col) reference convolution; no caching, no workspace.
  Tensor ForwardDirect(const Tensor& input) const;
  /// Direct reference backward for the pair (input, grad_output); accumulates
  /// parameter gradients and returns the input gradient.
  Tensor BackwardDirect(const Tensor& input, const Tensor& grad_output);

  int64_t out_height() const { return out_height_; }
  int64_t out_width() const { return out_width_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  void Im2Col(const float* x, float* col) const;
  void Col2ImAdd(const float* col, float* gx) const;

  int64_t in_channels_;
  int64_t out_channels_;
  int64_t height_;
  int64_t width_;
  int64_t kernel_size_;
  int64_t padding_;
  int64_t out_height_;
  int64_t out_width_;
  Parameter weight_;  // (out_ch, in_ch * k * k)
  Parameter bias_;    // (out_ch)
  int64_t cached_batch_ = 0;
};

}  // namespace fats

#endif  // FATS_NN_CONV2D_H_
