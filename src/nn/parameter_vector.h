// Flat parameter-vector view of a module.
//
// The FL engine treats model state as a single flat float vector: clients
// receive a flat θ, run local SGD, and return a flat θ. These helpers
// convert between that representation and a module's per-layer parameters.

#ifndef FATS_NN_PARAMETER_VECTOR_H_
#define FATS_NN_PARAMETER_VECTOR_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace fats {

/// Total number of scalar parameters in `module`.
int64_t ParameterCount(Module* module);

/// Concatenates all parameter values into one 1-D tensor (layer order).
Tensor FlattenParameters(Module* module);

/// Writes `flat` (1-D, length ParameterCount) back into the module.
void UnflattenParameters(const Tensor& flat, Module* module);

/// Hot-path form over a pre-collected parameter list — used by
/// Model::SetParameters, which a client task runs once per local round.
/// Avoids the per-call Parameters() vector allocation.
void UnflattenParameters(const Tensor& flat,
                         const std::vector<Parameter*>& params);

/// Concatenates all parameter gradients into one 1-D tensor.
Tensor FlattenGradients(Module* module);

/// In-place SGD step: value -= lr * grad for every parameter.
void ApplySgdStep(Module* module, double lr);

/// Fused axpy over a pre-collected parameter list — the hot-path form used
/// by Model::SgdStep. Avoids the per-call Parameters() vector allocation.
void ApplySgdStep(const std::vector<Parameter*>& params, double lr);

}  // namespace fats

#endif  // FATS_NN_PARAMETER_VECTOR_H_
