#include "nn/module.h"

namespace fats {

Workspace* Module::ScratchWorkspace() {
  if (!scratch_) scratch_ = std::make_unique<Workspace>();
  return scratch_.get();
}

Tensor Module::Forward(const Tensor& input) {
  return Forward(input, ScratchWorkspace());
}

Tensor Module::Backward(const Tensor& grad_output) {
  return Backward(grad_output, ScratchWorkspace());
}

}  // namespace fats
