// Softmax cross-entropy loss for classification heads.

#ifndef FATS_NN_LOSS_H_
#define FATS_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fats {

/// Mean softmax cross-entropy over a batch.
class SoftmaxCrossEntropy {
 public:
  /// Computes the mean loss of `logits` (batch x classes) against integer
  /// `labels` and, if `grad_logits` is non-null, writes
  /// d(mean loss)/d(logits) = (softmax - onehot) / batch into it.
  double Compute(const Tensor& logits, const std::vector<int64_t>& labels,
                 Tensor* grad_logits) const;

  /// Per-example losses (used by the membership-inference attack).
  std::vector<double> PerExampleLoss(const Tensor& logits,
                                     const std::vector<int64_t>& labels) const;

 private:
  // Softmax scratch, reused across Compute calls so the training-step hot
  // path stays allocation-free at steady state.
  mutable Tensor probs_;
};

/// Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace fats

#endif  // FATS_NN_LOSS_H_
