#include "nn/model_zoo.h"

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/parameter_vector.h"
#include "nn/pooling.h"
#include "rng/rng_stream.h"
#include "util/string_util.h"

namespace fats {

int64_t ModelSpec::InputFeatures() const {
  switch (kind) {
    case ModelKind::kLogReg:
    case ModelKind::kMlp:
      return input_dim;
    case ModelKind::kSmallCnn:
      return image_channels * image_height * image_width;
    case ModelKind::kCharLstm:
      return seq_len;
  }
  return 0;
}

std::string ModelSpec::ToString() const {
  switch (kind) {
    case ModelKind::kLogReg:
      return StrFormat("LogReg(%lld->%lld)",
                       static_cast<long long>(input_dim),
                       static_cast<long long>(num_classes));
    case ModelKind::kMlp: {
      std::string dims;
      for (int64_t h : hidden_dims) dims += StrFormat("%lld,", (long long)h);
      return StrFormat("Mlp(%lld->[%s]->%lld)",
                       static_cast<long long>(input_dim), dims.c_str(),
                       static_cast<long long>(num_classes));
    }
    case ModelKind::kSmallCnn:
      return StrFormat("SmallCnn(%lldx%lldx%lld->%lld)",
                       static_cast<long long>(image_channels),
                       static_cast<long long>(image_height),
                       static_cast<long long>(image_width),
                       static_cast<long long>(num_classes));
    case ModelKind::kCharLstm:
      return StrFormat("CharLstm(vocab=%lld, seq=%lld, hidden=%lld->%lld)",
                       static_cast<long long>(vocab_size),
                       static_cast<long long>(seq_len),
                       static_cast<long long>(lstm_hidden),
                       static_cast<long long>(num_classes));
  }
  return "?";
}

std::unique_ptr<Sequential> BuildNetwork(const ModelSpec& spec,
                                         uint64_t init_seed) {
  StreamId id;
  id.purpose = RngPurpose::kModelInit;
  RngStream rng(init_seed, id);
  auto net = std::make_unique<Sequential>();
  switch (spec.kind) {
    case ModelKind::kLogReg: {
      FATS_CHECK_GT(spec.input_dim, 0);
      net->Add(std::make_unique<Linear>(spec.input_dim, spec.num_classes,
                                        &rng));
      break;
    }
    case ModelKind::kMlp: {
      FATS_CHECK_GT(spec.input_dim, 0);
      int64_t in = spec.input_dim;
      for (int64_t h : spec.hidden_dims) {
        net->Add(std::make_unique<Linear>(in, h, &rng));
        net->Add(std::make_unique<ReLU>());
        in = h;
      }
      net->Add(std::make_unique<Linear>(in, spec.num_classes, &rng));
      break;
    }
    case ModelKind::kSmallCnn: {
      FATS_CHECK_GT(spec.image_height, 0);
      FATS_CHECK_GT(spec.image_width, 0);
      FATS_CHECK(spec.conv_blocks == 1 || spec.conv_blocks == 2)
          << "conv_blocks must be 1 or 2";
      const int64_t pad = spec.kernel_size / 2;
      auto conv = std::make_unique<Conv2d>(
          spec.image_channels, spec.conv_channels, spec.image_height,
          spec.image_width, spec.kernel_size, pad, &rng);
      const int64_t conv_h = conv->out_height();
      const int64_t conv_w = conv->out_width();
      net->Add(std::move(conv));
      net->Add(std::make_unique<ReLU>());
      auto pool =
          std::make_unique<MaxPool2d>(spec.conv_channels, conv_h, conv_w, 2);
      int64_t channels = spec.conv_channels;
      int64_t height = pool->out_height();
      int64_t width = pool->out_width();
      net->Add(std::move(pool));
      if (spec.conv_blocks == 2) {
        auto conv2 = std::make_unique<Conv2d>(channels, 2 * channels, height,
                                              width, spec.kernel_size, pad,
                                              &rng);
        const int64_t conv2_h = conv2->out_height();
        const int64_t conv2_w = conv2->out_width();
        net->Add(std::move(conv2));
        net->Add(std::make_unique<ReLU>());
        auto pool2 =
            std::make_unique<MaxPool2d>(2 * channels, conv2_h, conv2_w, 2);
        channels = 2 * channels;
        height = pool2->out_height();
        width = pool2->out_width();
        net->Add(std::move(pool2));
      }
      net->Add(std::make_unique<Linear>(channels * height * width,
                                        spec.num_classes, &rng));
      break;
    }
    case ModelKind::kCharLstm: {
      FATS_CHECK_GT(spec.vocab_size, 0);
      FATS_CHECK_GT(spec.seq_len, 0);
      FATS_CHECK(spec.lstm_layers == 1 || spec.lstm_layers == 2)
          << "lstm_layers must be 1 or 2";
      net->Add(std::make_unique<Embedding>(spec.vocab_size, spec.embed_dim,
                                           spec.seq_len, &rng));
      if (spec.lstm_layers == 2) {
        // Layer 1 emits the full hidden sequence for layer 2 to consume —
        // the paper's 2-layer Shakespeare architecture.
        net->Add(std::make_unique<Lstm>(spec.embed_dim, spec.lstm_hidden,
                                        spec.seq_len, &rng,
                                        /*return_sequence=*/true));
        net->Add(std::make_unique<Lstm>(spec.lstm_hidden, spec.lstm_hidden,
                                        spec.seq_len, &rng));
      } else {
        net->Add(std::make_unique<Lstm>(spec.embed_dim, spec.lstm_hidden,
                                        spec.seq_len, &rng));
      }
      net->Add(std::make_unique<Linear>(spec.lstm_hidden, spec.num_classes,
                                        &rng));
      break;
    }
  }
  return net;
}

Model::Model(const ModelSpec& spec, uint64_t init_seed)
    : spec_(spec),
      network_(BuildNetwork(spec, init_seed)),
      params_(network_->Parameters()) {
  size_t next_slot = 0;
  network_->AssignPackSlots(&next_slot);
}

void Model::PackSharedWeights(WeightPack* pack) const {
  network_->PackSharedWeights(pack);
}

void Model::BindSharedWeightPack(const WeightPack* pack) {
  ws_.set_shared_weight_pack(pack);
}

double Model::ComputeLossAndGradients(const Tensor& inputs,
                                      const std::vector<int64_t>& labels) {
  for (Parameter* p : params_) p->grad.SetZero();
  const Tensor& logits = network_->Forward(inputs, &ws_);
  double loss = loss_.Compute(logits, labels, &grad_logits_);
  network_->Backward(grad_logits_, &ws_);
  return loss;
}

Tensor Model::Predict(const Tensor& inputs) {
  return network_->Forward(inputs, &ws_);
}

double Model::ComputeLoss(const Tensor& inputs,
                          const std::vector<int64_t>& labels) {
  const Tensor& logits = network_->Forward(inputs, &ws_);
  return loss_.Compute(logits, labels, nullptr);
}

double Model::EvaluateAccuracy(const Tensor& inputs,
                               const std::vector<int64_t>& labels) {
  const Tensor& logits = network_->Forward(inputs, &ws_);
  return Accuracy(logits, labels);
}

std::vector<double> Model::PerExampleLoss(const Tensor& inputs,
                                          const std::vector<int64_t>& labels) {
  const Tensor& logits = network_->Forward(inputs, &ws_);
  return loss_.PerExampleLoss(logits, labels);
}

int64_t Model::NumParameters() { return ParameterCount(network_.get()); }

Tensor Model::FlattenParametersInternal() {
  return FlattenParameters(network_.get());
}

void Model::SetParameters(const Tensor& flat) {
  UnflattenParameters(flat, params_);
}

Tensor Model::GetGradients() { return FlattenGradients(network_.get()); }

void Model::SgdStep(double lr) { ApplySgdStep(params_, lr); }

}  // namespace fats
