// Elementwise activation layers: ReLU, Tanh, Sigmoid.

#ifndef FATS_NN_ACTIVATIONS_H_
#define FATS_NN_ACTIVATIONS_H_

#include <string>

#include "nn/module.h"

namespace fats {

class ReLU : public Module {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string ToString() const override { return "ReLU"; }
  int64_t OutputFeatures(int64_t input_features) const override {
    return input_features;
  }

 private:
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string ToString() const override { return "Tanh"; }
  int64_t OutputFeatures(int64_t input_features) const override {
    return input_features;
  }

 private:
  Tensor cached_output_;
};

class Sigmoid : public Module {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string ToString() const override { return "Sigmoid"; }
  int64_t OutputFeatures(int64_t input_features) const override {
    return input_features;
  }

 private:
  Tensor cached_output_;
};

}  // namespace fats

#endif  // FATS_NN_ACTIVATIONS_H_
