// Elementwise activation layers: ReLU, Tanh, Sigmoid.

#ifndef FATS_NN_ACTIVATIONS_H_
#define FATS_NN_ACTIVATIONS_H_

#include <string>

#include "nn/module.h"

namespace fats {

class ReLU : public Module {
 public:
  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::string ToString() const override { return "ReLU"; }
  int64_t OutputFeatures(int64_t input_features) const override {
    return input_features;
  }

 private:
  const Tensor* cached_input_ = nullptr;  // borrowed; alive until Backward
};

class Tanh : public Module {
 public:
  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::string ToString() const override { return "Tanh"; }
  int64_t OutputFeatures(int64_t input_features) const override {
    return input_features;
  }
};

class Sigmoid : public Module {
 public:
  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::string ToString() const override { return "Sigmoid"; }
  int64_t OutputFeatures(int64_t input_features) const override {
    return input_features;
  }
};

}  // namespace fats

#endif  // FATS_NN_ACTIVATIONS_H_
