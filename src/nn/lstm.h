// Single-layer LSTM with full backpropagation through time.

#ifndef FATS_NN_LSTM_H_
#define FATS_NN_LSTM_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "rng/rng_stream.h"

namespace fats {

/// Input: (batch, seq_len * input_dim), i.e. the per-step features
/// concatenated in sequence order (the layout Embedding produces).
/// Output: (batch, hidden_dim) — the final hidden state h_T — or, with
/// `return_sequence`, (batch, seq_len * hidden_dim) — every step's hidden
/// state, the layout a stacked second LSTM layer consumes. Gate order in
/// the packed weight matrices is [input, forget, cell, output].
class Lstm : public Module {
 public:
  Lstm(int64_t input_dim, int64_t hidden_dim, int64_t seq_len, RngStream* rng,
       bool return_sequence = false);

  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::vector<Parameter*> Parameters() override {
    return {&w_input_, &w_hidden_, &bias_};
  }
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  // Per-timestep activation cache. The steps_ vector is sized once and the
  // tensors are ResizeTo'd in place each Forward, so steady-state steps
  // reuse their heap blocks.
  struct StepCache {
    Tensor x;       // (batch, input_dim)
    Tensor h_prev;  // (batch, hidden)
    Tensor c_prev;  // (batch, hidden)
    Tensor i, f, g, o;
    Tensor c;       // new cell state
    Tensor tanh_c;  // tanh(c)
  };

  int64_t input_dim_;
  int64_t hidden_dim_;
  int64_t seq_len_;
  bool return_sequence_;
  Parameter w_input_;   // (4H x input_dim)
  Parameter w_hidden_;  // (4H x H)
  Parameter bias_;      // (4H)
  std::vector<StepCache> steps_;
  int64_t cached_batch_ = 0;
};

}  // namespace fats

#endif  // FATS_NN_LSTM_H_
