#include "nn/loss.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace fats {

double SoftmaxCrossEntropy::Compute(const Tensor& logits,
                                    const std::vector<int64_t>& labels,
                                    Tensor* grad_logits) const {
  FATS_CHECK_EQ(logits.rank(), 2);
  const int64_t batch = logits.dim(0);
  const int64_t classes = logits.dim(1);
  FATS_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  SoftmaxRowsInto(logits, &probs_);
  double total = 0.0;
  for (int64_t n = 0; n < batch; ++n) {
    const int64_t y = labels[static_cast<size_t>(n)];
    FATS_CHECK(y >= 0 && y < classes) << "label out of range: " << y;
    const double p = std::max<double>(probs_.at(n, y), 1e-12);
    total -= std::log(p);
  }
  if (grad_logits != nullptr) {
    *grad_logits = probs_;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (int64_t n = 0; n < batch; ++n) {
      grad_logits->at(n, labels[static_cast<size_t>(n)]) -= 1.0f;
    }
    *grad_logits *= inv_batch;
  }
  return total / static_cast<double>(batch);
}

std::vector<double> SoftmaxCrossEntropy::PerExampleLoss(
    const Tensor& logits, const std::vector<int64_t>& labels) const {
  FATS_CHECK_EQ(logits.rank(), 2);
  const int64_t batch = logits.dim(0);
  FATS_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  Tensor probs = SoftmaxRows(logits);
  std::vector<double> out(static_cast<size_t>(batch));
  for (int64_t n = 0; n < batch; ++n) {
    const double p =
        std::max<double>(probs.at(n, labels[static_cast<size_t>(n)]), 1e-12);
    out[static_cast<size_t>(n)] = -std::log(p);
  }
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  FATS_CHECK_EQ(logits.rank(), 2);
  const int64_t batch = logits.dim(0);
  FATS_CHECK_EQ(batch, static_cast<int64_t>(labels.size()));
  if (batch == 0) return 0.0;
  const int64_t classes = logits.dim(1);
  int64_t correct = 0;
  for (int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    int64_t best = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<size_t>(n)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace fats
