// Fully-connected layer: y = x W^T + b.

#ifndef FATS_NN_LINEAR_H_
#define FATS_NN_LINEAR_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "rng/rng_stream.h"

namespace fats {

class Linear : public Module {
 public:
  /// Weights are Xavier-initialized from `rng`; bias starts at zero.
  Linear(int64_t in_features, int64_t out_features, RngStream* rng);

  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Parameter weight_;  // (out x in)
  Parameter bias_;    // (out)
  const Tensor* cached_input_ = nullptr;  // borrowed; alive until Backward
};

}  // namespace fats

#endif  // FATS_NN_LINEAR_H_
