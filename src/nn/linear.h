// Fully-connected layer: y = x W^T + b.

#ifndef FATS_NN_LINEAR_H_
#define FATS_NN_LINEAR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/weight_pack.h"
#include "rng/rng_stream.h"

namespace fats {

class Linear : public Module {
 public:
  /// Weights are Xavier-initialized from `rng`; bias starts at zero.
  Linear(int64_t in_features, int64_t out_features, RngStream* rng);

  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  // Round-shared weight packs: both the forward (x W^T) and backward
  // (dy W) GEMMs read only the weight matrix, so when the workspace carries
  // a bound WeightPack this layer consumes its slot's prepacked panels —
  // bit-identical to packing inside the call (gemm::SgemmPackedB contract).
  void AssignPackSlots(size_t* next_slot) override {
    pack_slot_ = (*next_slot)++;
  }
  void PackSharedWeights(WeightPack* pack) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  // The bound pack's entry for this layer, or nullptr (unbound workspace,
  // or a pack from a structurally different model — shape-checked).
  const WeightPack::Entry* PackEntry(const Workspace* ws) const;

  int64_t in_features_;
  int64_t out_features_;
  Parameter weight_;  // (out x in)
  Parameter bias_;    // (out)
  size_t pack_slot_ = 0;  // assigned by AssignPackSlots
  const Tensor* cached_input_ = nullptr;  // borrowed; alive until Backward
};

}  // namespace fats

#endif  // FATS_NN_LINEAR_H_
