// Model zoo: the architectures used across the paper's six tasks, plus a
// Model facade that bundles a network with its loss and flat-parameter IO.
//
// Paper-to-zoo mapping (see DESIGN.md §2 for the substitution rationale):
//   MNIST / FashionMNIST / FEMNIST CNN  -> kSmallCnn (conv-pool-fc)
//   CIFAR VGG16                         -> kMlp (deep fully-connected)
//   Shakespeare 2x256 LSTM              -> kCharLstm (embed + LSTM + fc)
//   convex sanity baselines             -> kLogReg

#ifndef FATS_NN_MODEL_ZOO_H_
#define FATS_NN_MODEL_ZOO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/loss.h"
#include "nn/sequential.h"
#include "nn/workspace.h"
#include "tensor/tensor.h"

namespace fats {

enum class ModelKind {
  kLogReg,
  kMlp,
  kSmallCnn,
  kCharLstm,
};

/// Declarative model description; BuildModel turns it into layers.
struct ModelSpec {
  ModelKind kind = ModelKind::kLogReg;
  int64_t num_classes = 2;

  // kLogReg / kMlp: flat feature count.
  int64_t input_dim = 0;
  // kMlp: hidden widths, applied in order with ReLU between.
  std::vector<int64_t> hidden_dims;

  // kSmallCnn geometry (input is channels*height*width flat, CHW).
  int64_t image_channels = 1;
  int64_t image_height = 0;
  int64_t image_width = 0;
  int64_t conv_channels = 8;
  int64_t kernel_size = 3;
  /// 1 = conv-pool-fc; 2 = conv-pool-conv-pool-fc (the paper's deeper CNN;
  /// requires height and width divisible by 4).
  int64_t conv_blocks = 1;

  // kCharLstm: input is (batch, seq_len) of token ids.
  int64_t vocab_size = 0;
  int64_t embed_dim = 8;
  int64_t lstm_hidden = 32;
  int64_t seq_len = 0;
  /// Stacked LSTM depth (the paper's Shakespeare model uses 2).
  int64_t lstm_layers = 1;

  /// Feature width the model expects per example.
  int64_t InputFeatures() const;
  std::string ToString() const;
};

/// Builds the network for `spec`, with parameters initialized
/// deterministically from `init_seed`.
std::unique_ptr<Sequential> BuildNetwork(const ModelSpec& spec,
                                         uint64_t init_seed);

/// A network + loss bundle with flat-parameter accessors. This is the unit
/// the FL engine trains: model state is exchanged as a flat float vector.
class Model {
 public:
  Model(const ModelSpec& spec, uint64_t init_seed);

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Zeroes gradients, runs forward + backward on the batch and leaves
  /// gradients in the layers. Returns the mean loss.
  double ComputeLossAndGradients(const Tensor& inputs,
                                 const std::vector<int64_t>& labels);

  /// Forward pass only; returns logits.
  Tensor Predict(const Tensor& inputs);

  /// Mean loss without touching gradients.
  double ComputeLoss(const Tensor& inputs, const std::vector<int64_t>& labels);

  /// Classification accuracy on a batch.
  double EvaluateAccuracy(const Tensor& inputs,
                          const std::vector<int64_t>& labels);

  /// Per-example cross-entropy losses (for the MIA attack features).
  std::vector<double> PerExampleLoss(const Tensor& inputs,
                                     const std::vector<int64_t>& labels);

  int64_t NumParameters();
  Tensor GetParameters() { return FlattenParametersInternal(); }
  void SetParameters(const Tensor& flat);
  Tensor GetGradients();

  /// θ ← θ − lr · ∇ (uses gradients left by ComputeLossAndGradients).
  void SgdStep(double lr);

  const ModelSpec& spec() const { return spec_; }
  Sequential* network() { return network_.get(); }

  // Round-shared weight packs (nn/weight_pack.h): pack this model's current
  // weights into the definition-order slots / point this model's workspace
  // at a pack produced by a same-spec model. Binding nullptr unbinds. The
  // binder owns validity: the pack must equal the weights this model carries
  // through its next Forward/Backward (one local step).
  void PackSharedWeights(WeightPack* pack) const;
  void BindSharedWeightPack(const WeightPack* pack);

  /// The model-owned tensor arena every Forward/Backward runs against. One
  /// arena per Model means one arena per ParallelClientRunner worker slot
  /// (workers own Model replicas), so arenas are never shared across
  /// threads. Exposed for allocation accounting in tests.
  Workspace* workspace() { return &ws_; }

 private:
  Tensor FlattenParametersInternal();

  ModelSpec spec_;
  std::unique_ptr<Sequential> network_;
  SoftmaxCrossEntropy loss_;
  Workspace ws_;
  // Cached Parameters() walk + reused grad-logits buffer: with these, a
  // steady-state ComputeLossAndGradients + SgdStep allocates nothing.
  std::vector<Parameter*> params_;
  Tensor grad_logits_;
};

}  // namespace fats

#endif  // FATS_NN_MODEL_ZOO_H_
