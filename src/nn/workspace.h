// Per-client tensor arena for allocation-free training steps.
//
// A Workspace owns named scratch/activation tensors on behalf of the layers
// that use it. Slots are keyed by (owner pointer, slot id): each Module
// instance passes `this`, so two layers of the same type never collide, and
// a slot's Tensor persists across steps — after the first step resizes it,
// later steps reuse the same heap block (Tensor::ResizeTo never shrinks
// capacity), making the steady-state training step heap-allocation-free
// (asserted by tests/workspace_alloc_test.cc).
//
// Threading model: a Workspace is NOT thread-safe and is never shared —
// each Model owns one, and ParallelClientRunner's per-worker Model replicas
// therefore give each worker slot its own arena (DESIGN.md §7.1/§7.2).
//
// Lifetime: references returned by Get() stay valid until the Workspace is
// destroyed — the slot map is node-based, so rehashing never moves a slot.

#ifndef FATS_NN_WORKSPACE_H_
#define FATS_NN_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace fats {

struct WeightPack;

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The slot for (owner, id), resized to the given shape (capacity is
  /// reused; contents are unspecified — Fill(0) if zeros are needed).
  Tensor& Get(const void* owner, int id, int64_t d0);
  Tensor& Get(const void* owner, int id, int64_t d0, int64_t d1);
  Tensor& Get(const void* owner, int id, int64_t d0, int64_t d1, int64_t d2);
  Tensor& Get(const void* owner, int id, const std::vector<int64_t>& shape);

  /// The slot for (owner, id) with whatever shape it last had (creates an
  /// empty tensor on first use).
  Tensor& Peek(const void* owner, int id);

  /// Number of distinct slots materialized so far.
  size_t slot_count() const { return slots_.size(); }

  /// Number of Get() calls that had to grow a slot's heap block (or create
  /// the slot). Stable across steps at steady state — the zero-allocation
  /// test asserts this stops increasing after warm-up.
  int64_t grow_events() const { return grow_events_; }

  /// Round-shared prepacked weights (nn/weight_pack.h), or nullptr. Bound
  /// by the client runner for iterations where every bound model provably
  /// carries the packed weights; layers that own a pack slot consume the
  /// pack when present, bit-identically to packing in-call. Rides on the
  /// Workspace because the arena is exactly the per-replica, never-shared
  /// context every Forward/Backward already receives.
  const WeightPack* shared_weight_pack() const { return shared_pack_; }
  void set_shared_weight_pack(const WeightPack* pack) { shared_pack_ = pack; }

 private:
  struct Key {
    const void* owner;
    int id;
    bool operator==(const Key& o) const {
      return owner == o.owner && id == o.id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Pointer bits mixed with the slot id; splitmix64-style finalizer.
      uint64_t h = reinterpret_cast<uintptr_t>(k.owner) ^
                   (static_cast<uint64_t>(static_cast<uint32_t>(k.id)) << 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };

  Tensor& Slot(const void* owner, int id);

  std::unordered_map<Key, Tensor, KeyHash> slots_;
  int64_t grow_events_ = 0;
  const WeightPack* shared_pack_ = nullptr;
};

}  // namespace fats

#endif  // FATS_NN_WORKSPACE_H_
