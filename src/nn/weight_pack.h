// Round-shared prepacked weights for fused cross-client batching.
//
// At a round-start iteration every sampled client multiplies by the SAME
// weight matrices (the trainer broadcasts the round's global model to all
// participants before their first local step). The blocked GEMM normally
// re-packs those weights inside every Forward/Backward call of every client;
// a WeightPack hoists that work to once per round: the trainer packs each
// eligible layer's weight matrix on the main thread, binds the pack to every
// model replica's Workspace, and the layers consume the prepacked panels
// instead of packing — bit-identically (gemm::SgemmPackedB's contract).
//
// Slot protocol: Module::AssignPackSlots walks the layer tree in definition
// order and hands each pack-capable layer a slot index. Two Models built
// from the same ModelSpec perform the identical walk, so a pack produced by
// one model's PackSharedWeights is consumed at the right slots by every
// replica — the layers verify shapes at use.
//
// Validity is the *binder's* contract: a bound pack must hold exactly the
// weights every bound model will carry through its next Forward/Backward
// (one local step — SgdStep invalidates the pack). The FATS trainer binds
// only for round-start iterations, where the broadcast makes that invariant
// true by construction, and unbinds before the weights diverge.
//
// Allocation: entries and their PackedB buffers reuse capacity, so repacking
// the same architecture each round allocates nothing after the first round
// (asserted by tests/workspace_alloc_test.cc).

#ifndef FATS_NN_WEIGHT_PACK_H_
#define FATS_NN_WEIGHT_PACK_H_

#include <vector>

#include "tensor/gemm.h"

namespace fats {

struct WeightPack {
  struct Entry {
    // Linear: forward consumes W^T (y = x W^T), backward consumes W
    // (dx = dy W). Both are views of the same pre-step weight matrix, so
    // both stay valid for the one local step the pack is bound for.
    gemm::PackedB forward;
    gemm::PackedB backward;
  };
  std::vector<Entry> entries;  // indexed by the layer's assigned pack slot
};

}  // namespace fats

#endif  // FATS_NN_WEIGHT_PACK_H_
