#include "nn/pooling.h"

#include "util/string_util.h"

namespace fats {

namespace {
enum Slot { kOut, kGradIn };
}  // namespace

MaxPool2d::MaxPool2d(int64_t channels, int64_t height, int64_t width,
                     int64_t window)
    : channels_(channels),
      height_(height),
      width_(width),
      window_(window),
      out_height_(height / window),
      out_width_(width / window) {
  FATS_CHECK_EQ(height % window, 0) << "pool window must divide height";
  FATS_CHECK_EQ(width % window, 0) << "pool window must divide width";
}

const Tensor& MaxPool2d::Forward(const Tensor& input, Workspace* ws) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), channels_ * height_ * width_) << ToString();
  const int64_t batch = input.dim(0);
  input_shape_ = input.shape();
  Tensor& out =
      ws->Get(this, kOut, batch, channels_ * out_height_ * out_width_);
  argmax_.assign(static_cast<size_t>(out.size()), 0);
  for (int64_t n = 0; n < batch; ++n) {
    const float* x = input.data() + n * channels_ * height_ * width_;
    float* y = out.data() + n * channels_ * out_height_ * out_width_;
    int64_t* am = argmax_.data() + n * channels_ * out_height_ * out_width_;
    for (int64_t c = 0; c < channels_; ++c) {
      const float* xc = x + c * height_ * width_;
      for (int64_t oh = 0; oh < out_height_; ++oh) {
        for (int64_t ow = 0; ow < out_width_; ++ow) {
          float best = xc[(oh * window_) * width_ + ow * window_];
          int64_t best_idx = (oh * window_) * width_ + ow * window_;
          for (int64_t dh = 0; dh < window_; ++dh) {
            for (int64_t dw = 0; dw < window_; ++dw) {
              const int64_t idx =
                  (oh * window_ + dh) * width_ + (ow * window_ + dw);
              // Select, don't branch: the comparison outcome is
              // data-dependent and mispredicts on natural inputs. Strict >
              // keeps the first-max tie-breaking that backward's argmax
              // scatter (and replay) relies on.
              const float v = xc[idx];
              const bool better = v > best;
              best = better ? v : best;
              best_idx = better ? idx : best_idx;
            }
          }
          const int64_t out_idx = (c * out_height_ + oh) * out_width_ + ow;
          y[out_idx] = best;
          // Store the batch-global flat input index for backward.
          am[out_idx] =
              n * channels_ * height_ * width_ + c * height_ * width_ +
              best_idx;
        }
      }
    }
  }
  return out;
}

const Tensor& MaxPool2d::Backward(const Tensor& grad_output, Workspace* ws) {
  FATS_CHECK(!input_shape_.empty()) << "Backward before Forward";
  Tensor& grad_input = ws->Get(this, kGradIn, input_shape_);
  grad_input.Fill(0.0f);
  FATS_CHECK_EQ(grad_output.size(),
                static_cast<int64_t>(argmax_.size()));
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    gx[argmax_[static_cast<size_t>(i)]] += gy[i];
  }
  return grad_input;
}

std::string MaxPool2d::ToString() const {
  return StrFormat("MaxPool2d(%lldx%lldx%lld, window=%lld)",
                   static_cast<long long>(channels_),
                   static_cast<long long>(height_),
                   static_cast<long long>(width_),
                   static_cast<long long>(window_));
}

int64_t MaxPool2d::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, channels_ * height_ * width_);
  return channels_ * out_height_ * out_width_;
}

}  // namespace fats
