#include "nn/init.h"

#include <cmath>

namespace fats {

void InitGaussian(Tensor* t, double stddev, RngStream* rng) {
  float* data = t->data();
  for (int64_t i = 0; i < t->size(); ++i) {
    data[i] = static_cast<float>(stddev * rng->NextGaussian());
  }
}

void InitXavierUniform(Tensor* t, int64_t fan_in, int64_t fan_out,
                       RngStream* rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  float* data = t->data();
  for (int64_t i = 0; i < t->size(); ++i) {
    data[i] = static_cast<float>((2.0 * rng->NextDouble() - 1.0) * a);
  }
}

void InitHeNormal(Tensor* t, int64_t fan_in, RngStream* rng) {
  InitGaussian(t, std::sqrt(2.0 / static_cast<double>(fan_in)), rng);
}

}  // namespace fats
