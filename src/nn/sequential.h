// Sequential container of layers.

#ifndef FATS_NN_SEQUENTIAL_H_
#define FATS_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace fats {

class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer. Returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  using Module::Forward;
  using Module::Backward;

  // Activations flow by reference: each layer's input is the previous
  // layer's Workspace slot, so the chain performs no copies and (at steady
  // state) no allocations.
  const Tensor& Forward(const Tensor& input, Workspace* ws) override {
    const Tensor* x = &input;
    for (auto& layer : layers_) x = &layer->Forward(*x, ws);
    return *x;
  }

  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override {
    const Tensor* g = &grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = &(*it)->Backward(*g, ws);
    }
    return *g;
  }

  std::vector<Parameter*> Parameters() override {
    std::vector<Parameter*> out;
    for (auto& layer : layers_) {
      for (Parameter* p : layer->Parameters()) out.push_back(p);
    }
    return out;
  }

  std::string ToString() const override {
    std::string out = "Sequential(";
    for (size_t i = 0; i < layers_.size(); ++i) {
      if (i > 0) out += " -> ";
      out += layers_[i]->ToString();
    }
    out += ")";
    return out;
  }

  int64_t OutputFeatures(int64_t input_features) const override {
    int64_t f = input_features;
    for (const auto& layer : layers_) f = layer->OutputFeatures(f);
    return f;
  }

  void AssignPackSlots(size_t* next_slot) override {
    for (auto& layer : layers_) layer->AssignPackSlots(next_slot);
  }

  void PackSharedWeights(WeightPack* pack) const override {
    for (const auto& layer : layers_) layer->PackSharedWeights(pack);
  }

  size_t num_layers() const { return layers_.size(); }
  Module* layer(size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace fats

#endif  // FATS_NN_SEQUENTIAL_H_
