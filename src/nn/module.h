// Layer interface for the hand-written neural-network substrate.
//
// All activations flow as 2-D tensors (batch x features). Layers that have a
// spatial or sequential interpretation (Conv2d, LSTM) carry their geometry as
// configuration and interpret the flat feature axis accordingly; this keeps
// the FL engine's model state a single flat float vector, which is what
// FedAvg-style averaging and the FATS state store operate on.
//
// The forward/backward contract:
//   * Forward(x) caches whatever the layer needs and returns the output.
//   * Backward(grad_out) must follow the matching Forward, accumulates
//     parameter gradients (+=) and returns the gradient w.r.t. the input.

#ifndef FATS_NN_MODULE_H_
#define FATS_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fats {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Runs the layer on a (batch x in_features) tensor.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Back-propagates (batch x out_features) output gradients; accumulates
  /// into parameter .grad fields and returns input gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// The layer's trainable parameters (possibly empty). Pointers remain
  /// valid for the lifetime of the module.
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Human-readable layer descriptor, e.g. "Linear(64->10)".
  virtual std::string ToString() const = 0;

  /// Number of output features for a given input feature count, used for
  /// shape validation when assembling models.
  virtual int64_t OutputFeatures(int64_t input_features) const = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (Parameter* p : Parameters()) p->grad.SetZero();
  }
};

}  // namespace fats

#endif  // FATS_NN_MODULE_H_
