// Layer interface for the hand-written neural-network substrate.
//
// All activations flow as 2-D tensors (batch x features). Layers that have a
// spatial or sequential interpretation (Conv2d, LSTM) carry their geometry as
// configuration and interpret the flat feature axis accordingly; this keeps
// the FL engine's model state a single flat float vector, which is what
// FedAvg-style averaging and the FATS state store operate on.
//
// The forward/backward contract:
//   * Forward(x, ws) caches whatever the layer needs and returns a reference
//     to the output, which lives in a Workspace slot owned by this layer.
//   * Backward(grad_out, ws) must follow the matching Forward with the SAME
//     workspace, accumulates parameter gradients (+=) and returns the
//     gradient w.r.t. the input (also a Workspace slot).
//   * The input passed to Forward must stay alive (and unmodified) until the
//     matching Backward returns — layers cache it by reference, not by copy.
//     Inside Sequential this holds automatically: each layer's input is the
//     previous layer's Workspace slot, and no layer writes its forward-output
//     slot during Backward.
//
// Threading the Workspace through the hot path is what makes a steady-state
// training step heap-allocation-free (DESIGN.md §7.2): every slot is resized
// with capacity reuse, so after the first step nothing allocates. The
// by-value Forward/Backward overloads are conveniences for tests and tools;
// they run against a lazily created module-owned scratch workspace and copy
// the result out.

#ifndef FATS_NN_MODULE_H_
#define FATS_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/workspace.h"
#include "tensor/tensor.h"

namespace fats {

struct WeightPack;

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Runs the layer on a (batch x in_features) tensor. The returned
  /// reference is a Workspace slot: valid until the next Forward on this
  /// layer with the same workspace (or the workspace's destruction).
  virtual const Tensor& Forward(const Tensor& input, Workspace* ws) = 0;

  /// Back-propagates (batch x out_features) output gradients; accumulates
  /// into parameter .grad fields and returns input gradients (a Workspace
  /// slot). `ws` must be the workspace used by the matching Forward.
  virtual const Tensor& Backward(const Tensor& grad_output, Workspace* ws) = 0;

  // By-value conveniences over a module-owned scratch workspace. Derived
  // classes re-expose them with `using Module::Forward/Backward`.
  Tensor Forward(const Tensor& input);
  Tensor Backward(const Tensor& grad_output);

  /// The layer's trainable parameters (possibly empty). Pointers remain
  /// valid for the lifetime of the module.
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Human-readable layer descriptor, e.g. "Linear(64->10)".
  virtual std::string ToString() const = 0;

  /// Number of output features for a given input feature count, used for
  /// shape validation when assembling models.
  virtual int64_t OutputFeatures(int64_t input_features) const = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (Parameter* p : Parameters()) p->grad.SetZero();
  }

  // --- Round-shared weight packs (nn/weight_pack.h, DESIGN.md §7.6) ---
  //
  // Layers whose GEMMs can consume a prepacked weight operand claim a slot
  // in the definition-order walk and fill it on the donor side; everything
  // else inherits the no-ops. Containers forward the walk to their children
  // so the slot order is a pure function of the architecture.

  /// Claims pack slots for this subtree; `next_slot` advances across the
  /// walk. Called once at model construction.
  virtual void AssignPackSlots(size_t* next_slot) { (void)next_slot; }

  /// Donor side: packs this subtree's current weights into the assigned
  /// slots, growing `pack->entries` as needed (capacity is reused, so
  /// repacking the same architecture allocates nothing at steady state).
  virtual void PackSharedWeights(WeightPack* pack) const { (void)pack; }

 private:
  Workspace* ScratchWorkspace();

  std::unique_ptr<Workspace> scratch_;
};

}  // namespace fats

#endif  // FATS_NN_MODULE_H_
