#include "nn/optimizer.h"

#include "util/logging.h"

namespace fats {

void SgdOptimizer::Step(Module* module) {
  std::vector<Parameter*> params = module->Parameters();
  if (momentum_ == 0.0) {
    const float lr = static_cast<float>(learning_rate_);
    for (Parameter* p : params) {
      float* value = p->value.data();
      const float* grad = p->grad.data();
      for (int64_t i = 0; i < p->value.size(); ++i) value[i] -= lr * grad[i];
    }
    return;
  }
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (Parameter* p : params) velocity_.emplace_back(p->value.shape());
  }
  const float lr = static_cast<float>(learning_rate_);
  const float mu = static_cast<float>(momentum_);
  for (size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    FATS_CHECK(velocity_[k].shape() == p->value.shape());
    float* v = velocity_[k].data();
    float* value = p->value.data();
    const float* grad = p->grad.data();
    for (int64_t i = 0; i < p->value.size(); ++i) {
      v[i] = mu * v[i] + grad[i];
      value[i] -= lr * v[i];
    }
  }
}

}  // namespace fats
