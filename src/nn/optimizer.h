// Gradient-descent optimizers.

#ifndef FATS_NN_OPTIMIZER_H_
#define FATS_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace fats {

/// Plain SGD with optional classical momentum:
///   v <- momentum * v + grad ; value <- value - lr * v.
/// With momentum == 0 this is exactly the θ ← θ − η·g step of Algorithm 1.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0)
      : learning_rate_(learning_rate), momentum_(momentum) {}

  /// Applies one update using the module's current gradients.
  void Step(Module* module);

  /// Drops momentum state (used when the model parameters are replaced
  /// wholesale, e.g. at a round boundary).
  void ResetState() { velocity_.clear(); }

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double momentum_;
  std::vector<Tensor> velocity_;  // parallel to module->Parameters()
};

}  // namespace fats

#endif  // FATS_NN_OPTIMIZER_H_
