#include "nn/lstm.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace fats {

namespace {

enum Slot { kOut, kH, kC, kZ, kDh, kDc, kDcPrev, kDz, kGradIn };

inline float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// Copies step `t` columns out of the packed (batch, seq*dim) tensor.
void SliceStepInto(const Tensor& packed, int64_t t, int64_t dim, Tensor* out) {
  const int64_t batch = packed.dim(0);
  const int64_t seq_width = packed.dim(1);
  out->ResizeTo(batch, dim);
  for (int64_t n = 0; n < batch; ++n) {
    const float* src = packed.data() + n * seq_width + t * dim;
    float* dst = out->data() + n * dim;
    for (int64_t d = 0; d < dim; ++d) dst[d] = src[d];
  }
}

}  // namespace

Lstm::Lstm(int64_t input_dim, int64_t hidden_dim, int64_t seq_len,
           RngStream* rng, bool return_sequence)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      seq_len_(seq_len),
      return_sequence_(return_sequence),
      w_input_("lstm_w_input", Tensor({4 * hidden_dim, input_dim})),
      w_hidden_("lstm_w_hidden", Tensor({4 * hidden_dim, hidden_dim})),
      bias_("lstm_bias", Tensor({4 * hidden_dim})) {
  InitXavierUniform(&w_input_.value, input_dim, hidden_dim, rng);
  InitXavierUniform(&w_hidden_.value, hidden_dim, hidden_dim, rng);
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (int64_t j = hidden_dim_; j < 2 * hidden_dim_; ++j) {
    bias_.value[j] = 1.0f;
  }
}

const Tensor& Lstm::Forward(const Tensor& input, Workspace* ws) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), seq_len_ * input_dim_) << ToString();
  const int64_t batch = input.dim(0);
  cached_batch_ = batch;
  if (steps_.size() < static_cast<size_t>(seq_len_)) {
    steps_.resize(static_cast<size_t>(seq_len_));
  }

  Tensor& h = ws->Get(this, kH, batch, hidden_dim_);
  Tensor& c = ws->Get(this, kC, batch, hidden_dim_);
  h.Fill(0.0f);
  c.Fill(0.0f);
  Tensor& z = ws->Peek(this, kZ);
  for (int64_t t = 0; t < seq_len_; ++t) {
    StepCache& step = steps_[static_cast<size_t>(t)];
    SliceStepInto(input, t, input_dim_, &step.x);
    step.h_prev = h;
    step.c_prev = c;
    // Pre-activations z = x W^T + h U^T + b, packed (batch, 4H).
    MatMulTransposeBInto(step.x, w_input_.value, &z);
    AddMatMulTransposeBInto(step.h_prev, w_hidden_.value, &z);
    AddRowwise(&z, bias_.value);

    step.i.ResizeTo(batch, hidden_dim_);
    step.f.ResizeTo(batch, hidden_dim_);
    step.g.ResizeTo(batch, hidden_dim_);
    step.o.ResizeTo(batch, hidden_dim_);
    step.c.ResizeTo(batch, hidden_dim_);
    step.tanh_c.ResizeTo(batch, hidden_dim_);
    // h/c are overwritten in place: the pre-step values were already copied
    // into h_prev/c_prev, and the gate loop reads only z and those copies.
    for (int64_t n = 0; n < batch; ++n) {
      const float* zr = z.data() + n * 4 * hidden_dim_;
      for (int64_t j = 0; j < hidden_dim_; ++j) {
        const float iv = SigmoidScalar(zr[j]);
        const float fv = SigmoidScalar(zr[hidden_dim_ + j]);
        const float gv = std::tanh(zr[2 * hidden_dim_ + j]);
        const float ov = SigmoidScalar(zr[3 * hidden_dim_ + j]);
        const float cv = fv * step.c_prev.at(n, j) + iv * gv;
        const float tc = std::tanh(cv);
        step.i.at(n, j) = iv;
        step.f.at(n, j) = fv;
        step.g.at(n, j) = gv;
        step.o.at(n, j) = ov;
        step.c.at(n, j) = cv;
        step.tanh_c.at(n, j) = tc;
        h.at(n, j) = ov * tc;
        c.at(n, j) = cv;
      }
    }
    if (return_sequence_) {
      Tensor& out = ws->Get(this, kOut, batch, seq_len_ * hidden_dim_);
      for (int64_t n = 0; n < batch; ++n) {
        float* dst =
            out.data() + n * seq_len_ * hidden_dim_ + t * hidden_dim_;
        const float* src_row = h.data() + n * hidden_dim_;
        for (int64_t j = 0; j < hidden_dim_; ++j) dst[j] = src_row[j];
      }
    }
  }
  return return_sequence_ ? ws->Peek(this, kOut) : h;
}

const Tensor& Lstm::Backward(const Tensor& grad_output, Workspace* ws) {
  FATS_CHECK_GT(cached_batch_, 0) << "Backward before Forward";
  FATS_CHECK_EQ(grad_output.dim(0), cached_batch_);
  FATS_CHECK_EQ(grad_output.dim(1),
                return_sequence_ ? seq_len_ * hidden_dim_ : hidden_dim_);
  const int64_t batch = cached_batch_;
  Tensor& grad_input = ws->Get(this, kGradIn, batch, seq_len_ * input_dim_);
  // dL/dh_t: in final-state mode the loss touches only h_T; in sequence
  // mode every step receives its own slice of grad_output in addition to
  // the gradient carried back from the future.
  Tensor& dh = ws->Get(this, kDh, batch, hidden_dim_);
  if (return_sequence_) {
    dh.Fill(0.0f);
  } else {
    dh = grad_output;
  }
  Tensor& dc = ws->Get(this, kDc, batch, hidden_dim_);  // dL/dc_t (future)
  dc.Fill(0.0f);
  Tensor& dz = ws->Get(this, kDz, batch, 4 * hidden_dim_);
  Tensor& dc_prev = ws->Get(this, kDcPrev, batch, hidden_dim_);

  for (int64_t t = seq_len_ - 1; t >= 0; --t) {
    if (return_sequence_) {
      for (int64_t n = 0; n < batch; ++n) {
        const float* src_row = grad_output.data() +
                               n * seq_len_ * hidden_dim_ + t * hidden_dim_;
        float* dst = dh.data() + n * hidden_dim_;
        for (int64_t j = 0; j < hidden_dim_; ++j) dst[j] += src_row[j];
      }
    }
    const StepCache& step = steps_[static_cast<size_t>(t)];
    // Gate pre-activation gradients, packed (batch, 4H).
    for (int64_t n = 0; n < batch; ++n) {
      float* dzr = dz.data() + n * 4 * hidden_dim_;
      for (int64_t j = 0; j < hidden_dim_; ++j) {
        const float iv = step.i.at(n, j);
        const float fv = step.f.at(n, j);
        const float gv = step.g.at(n, j);
        const float ov = step.o.at(n, j);
        const float tc = step.tanh_c.at(n, j);
        const float dhv = dh.at(n, j);
        // dL/dc_t = dL/dh_t * o * (1 - tanh(c)^2) + carried dc.
        const float dcv = dhv * ov * (1.0f - tc * tc) + dc.at(n, j);
        dzr[j] = dcv * gv * iv * (1.0f - iv);                    // d input gate
        dzr[hidden_dim_ + j] =
            dcv * step.c_prev.at(n, j) * fv * (1.0f - fv);       // d forget
        dzr[2 * hidden_dim_ + j] = dcv * iv * (1.0f - gv * gv);  // d cell cand
        dzr[3 * hidden_dim_ + j] = dhv * tc * ov * (1.0f - ov);  // d output
        dc_prev.at(n, j) = dcv * fv;
      }
    }
    // Parameter gradients.
    AddMatMulTransposeAInto(dz, step.x, &w_input_.grad);
    AddMatMulTransposeAInto(dz, step.h_prev, &w_hidden_.grad);
    AddSumRowsInto(dz, &bias_.grad);
    // Input gradient for this step, written directly into the packed
    // grad_input columns via a strided destination (ldc = seq*input_dim).
    gemm::SgemmNN(batch, input_dim_, 4 * hidden_dim_, dz.data(),
                  4 * hidden_dim_, w_input_.value.data(), input_dim_,
                  grad_input.data() + t * input_dim_, seq_len_ * input_dim_,
                  /*accumulate=*/false);
    // Hidden gradient for the previous step.
    MatMulInto(dz, w_hidden_.value, &dh);
    dc = dc_prev;
  }
  return grad_input;
}

std::string Lstm::ToString() const {
  return StrFormat("Lstm(in=%lld, hidden=%lld, seq=%lld%s)",
                   static_cast<long long>(input_dim_),
                   static_cast<long long>(hidden_dim_),
                   static_cast<long long>(seq_len_),
                   return_sequence_ ? ", seq-out" : "");
}

int64_t Lstm::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, seq_len_ * input_dim_);
  return return_sequence_ ? seq_len_ * hidden_dim_ : hidden_dim_;
}

}  // namespace fats
