#include "nn/conv2d.h"

#include <algorithm>
#include <cstring>

#include "nn/init.h"
#include "tensor/gemm.h"
#include "util/string_util.h"

namespace fats {

namespace {
enum Slot { kOut, kCol, kDcol, kGradIn };
}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t height,
               int64_t width, int64_t kernel_size, int64_t padding,
               RngStream* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      height_(height),
      width_(width),
      kernel_size_(kernel_size),
      padding_(padding),
      out_height_(height + 2 * padding - kernel_size + 1),
      out_width_(width + 2 * padding - kernel_size + 1),
      weight_("conv_weight",
              Tensor({out_channels, in_channels * kernel_size * kernel_size})),
      bias_("conv_bias", Tensor({out_channels})) {
  FATS_CHECK_GT(out_height_, 0) << "kernel larger than padded input";
  FATS_CHECK_GT(out_width_, 0);
  InitHeNormal(&weight_.value, in_channels * kernel_size * kernel_size, rng);
}

// Unrolls one sample (CHW at `x`) into the (K x P) column matrix: row
// ic*k² + kh*k + kw holds, for every output position p = oh*out_w + ow, the
// input value under kernel tap (kh, kw) — zero where the tap falls in the
// padding halo.
void Conv2d::Im2Col(const float* x, float* col) const {
  float* dst = col;
  for (int64_t ic = 0; ic < in_channels_; ++ic) {
    const float* xc = x + ic * height_ * width_;
    for (int64_t kh = 0; kh < kernel_size_; ++kh) {
      for (int64_t kw = 0; kw < kernel_size_; ++kw) {
        // ow positions with 0 <= ow + kw - padding_ < width_ read the input;
        // the rest are padding-halo zeros. Splitting the row into
        // zero-prefix / contiguous copy / zero-suffix keeps the per-element
        // bounds test out of the inner loop.
        const int64_t lo =
            std::min(out_width_, std::max<int64_t>(0, padding_ - kw));
        const int64_t hi =
            std::max(lo, std::min(out_width_, width_ - kw + padding_));
        for (int64_t oh = 0; oh < out_height_; ++oh) {
          const int64_t ih = oh + kh - padding_;
          if (ih < 0 || ih >= height_) {
            std::fill(dst, dst + out_width_, 0.0f);
            dst += out_width_;
            continue;
          }
          const float* xrow = xc + ih * width_ + (kw - padding_);
          std::fill(dst, dst + lo, 0.0f);
          if (hi > lo) {
            std::memcpy(dst + lo, xrow + lo,
                        static_cast<size_t>(hi - lo) * sizeof(float));
          }
          std::fill(dst + hi, dst + out_width_, 0.0f);
          dst += out_width_;
        }
      }
    }
  }
}

// Scatters a (K x P) column-gradient matrix back onto the CHW input
// gradient at `gx` (accumulating — positions covered by several receptive
// fields sum their contributions in fixed kh/kw-major order).
void Conv2d::Col2ImAdd(const float* col, float* gx) const {
  const float* src = col;
  for (int64_t ic = 0; ic < in_channels_; ++ic) {
    float* gxc = gx + ic * height_ * width_;
    for (int64_t kh = 0; kh < kernel_size_; ++kh) {
      for (int64_t kw = 0; kw < kernel_size_; ++kw) {
        // Same in-bounds ow range as Im2Col; out-of-range taps contribute
        // nothing, so skipping them outright leaves every gx element's
        // accumulation sequence — and therefore its bits — unchanged.
        const int64_t lo =
            std::min(out_width_, std::max<int64_t>(0, padding_ - kw));
        const int64_t hi =
            std::max(lo, std::min(out_width_, width_ - kw + padding_));
        for (int64_t oh = 0; oh < out_height_; ++oh) {
          const int64_t ih = oh + kh - padding_;
          if (ih < 0 || ih >= height_) {
            src += out_width_;
            continue;
          }
          float* gxrow = gxc + ih * width_ + (kw - padding_);
          for (int64_t ow = lo; ow < hi; ++ow) gxrow[ow] += src[ow];
          src += out_width_;
        }
      }
    }
  }
}

const Tensor& Conv2d::Forward(const Tensor& input, Workspace* ws) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), in_channels_ * height_ * width_) << ToString();
  const int64_t batch = input.dim(0);
  cached_batch_ = batch;
  const int64_t K = in_channels_ * kernel_size_ * kernel_size_;
  const int64_t P = out_height_ * out_width_;
  Tensor& col = ws->Get(this, kCol, batch, K, P);  // kept for Backward
  Tensor& out = ws->Get(this, kOut, batch, out_channels_ * P);
  const float* bp = bias_.value.data();
  for (int64_t n = 0; n < batch; ++n) {
    float* col_n = col.data() + n * K * P;
    Im2Col(input.data() + n * in_channels_ * height_ * width_, col_n);
    float* y = out.data() + n * out_channels_ * P;
    // y (oc x P) = W (oc x K) @ col (K x P).
    gemm::SgemmNN(out_channels_, P, K, weight_.value.data(), K, col_n, P, y, P,
                  /*accumulate=*/false);
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      float* yrow = y + oc * P;
      const float b = bp[oc];
      for (int64_t p = 0; p < P; ++p) yrow[p] += b;
    }
  }
  return out;
}

const Tensor& Conv2d::Backward(const Tensor& grad_output, Workspace* ws) {
  const int64_t batch = cached_batch_;
  FATS_CHECK_GT(batch, 0) << "Backward before Forward";
  FATS_CHECK_EQ(grad_output.dim(0), batch);
  FATS_CHECK_EQ(grad_output.dim(1), out_channels_ * out_height_ * out_width_);
  const int64_t K = in_channels_ * kernel_size_ * kernel_size_;
  const int64_t P = out_height_ * out_width_;
  const Tensor& col = ws->Peek(this, kCol);
  FATS_CHECK_EQ(col.size(), batch * K * P) << "Backward before Forward";
  Tensor& dcol = ws->Get(this, kDcol, K, P);
  Tensor& grad_input =
      ws->Get(this, kGradIn, batch, in_channels_ * height_ * width_);
  grad_input.Fill(0.0f);
  float* bgrad = bias_.grad.data();
  for (int64_t n = 0; n < batch; ++n) {
    const float* gy = grad_output.data() + n * out_channels_ * P;
    const float* col_n = col.data() + n * K * P;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* gyrow = gy + oc * P;
      // Four interleaved partial sums break the serial FP dependence chain
      // (a single accumulator is latency-bound at ~4 cycles per add). The
      // stripe assignment and combine order are fixed, so the sum is still
      // a pure function of the inputs — deterministic across runs and
      // thread counts, as replay requires.
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      int64_t p = 0;
      for (; p + 4 <= P; p += 4) {
        s0 += gyrow[p];
        s1 += gyrow[p + 1];
        s2 += gyrow[p + 2];
        s3 += gyrow[p + 3];
      }
      float acc = (s0 + s1) + (s2 + s3);
      for (; p < P; ++p) acc += gyrow[p];
      bgrad[oc] += acc;
    }
    // dW (oc x K) += gy (oc x P) @ col^T.
    gemm::SgemmNT(out_channels_, K, P, gy, P, col_n, P, weight_.grad.data(), K,
                  /*accumulate=*/true);
    // dcol (K x P) = W^T @ gy.
    gemm::SgemmTN(K, P, out_channels_, weight_.value.data(), K, gy, P,
                  dcol.data(), P, /*accumulate=*/false);
    Col2ImAdd(dcol.data(),
              grad_input.data() + n * in_channels_ * height_ * width_);
  }
  return grad_input;
}

Tensor Conv2d::ForwardDirect(const Tensor& input) const {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), in_channels_ * height_ * width_) << ToString();
  const int64_t batch = input.dim(0);
  Tensor out({batch, out_channels_ * out_height_ * out_width_});
  const float* wp = weight_.value.data();
  const float* bp = bias_.value.data();
  const int64_t ksq = kernel_size_ * kernel_size_;
  for (int64_t n = 0; n < batch; ++n) {
    const float* x = input.data() + n * in_channels_ * height_ * width_;
    float* y = out.data() + n * out_channels_ * out_height_ * out_width_;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* wk = wp + oc * in_channels_ * ksq;
      for (int64_t oh = 0; oh < out_height_; ++oh) {
        for (int64_t ow = 0; ow < out_width_; ++ow) {
          float acc = bp[oc];
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            const float* xc = x + ic * height_ * width_;
            const float* wc = wk + ic * ksq;
            for (int64_t kh = 0; kh < kernel_size_; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= height_) continue;
              for (int64_t kw = 0; kw < kernel_size_; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= width_) continue;
                acc += wc[kh * kernel_size_ + kw] * xc[ih * width_ + iw];
              }
            }
          }
          y[(oc * out_height_ + oh) * out_width_ + ow] = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::BackwardDirect(const Tensor& input, const Tensor& grad_output) {
  const int64_t batch = input.dim(0);
  FATS_CHECK_EQ(grad_output.dim(0), batch);
  FATS_CHECK_EQ(grad_output.dim(1), out_channels_ * out_height_ * out_width_);
  Tensor grad_input(input.shape());
  float* wgrad = weight_.grad.data();
  float* bgrad = bias_.grad.data();
  const float* wp = weight_.value.data();
  const int64_t ksq = kernel_size_ * kernel_size_;
  for (int64_t n = 0; n < batch; ++n) {
    const float* x = input.data() + n * in_channels_ * height_ * width_;
    const float* gy =
        grad_output.data() + n * out_channels_ * out_height_ * out_width_;
    float* gx = grad_input.data() + n * in_channels_ * height_ * width_;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* wk = wp + oc * in_channels_ * ksq;
      float* wgk = wgrad + oc * in_channels_ * ksq;
      for (int64_t oh = 0; oh < out_height_; ++oh) {
        for (int64_t ow = 0; ow < out_width_; ++ow) {
          const float g = gy[(oc * out_height_ + oh) * out_width_ + ow];
          bgrad[oc] += g;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            const float* xc = x + ic * height_ * width_;
            float* gxc = gx + ic * height_ * width_;
            const float* wc = wk + ic * ksq;
            float* wgc = wgk + ic * ksq;
            for (int64_t kh = 0; kh < kernel_size_; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= height_) continue;
              for (int64_t kw = 0; kw < kernel_size_; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= width_) continue;
                wgc[kh * kernel_size_ + kw] += g * xc[ih * width_ + iw];
                gxc[ih * width_ + iw] += g * wc[kh * kernel_size_ + kw];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::string Conv2d::ToString() const {
  return StrFormat("Conv2d(%lldx%lldx%lld -> %lld ch, k=%lld, p=%lld)",
                   static_cast<long long>(in_channels_),
                   static_cast<long long>(height_),
                   static_cast<long long>(width_),
                   static_cast<long long>(out_channels_),
                   static_cast<long long>(kernel_size_),
                   static_cast<long long>(padding_));
}

int64_t Conv2d::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, in_channels_ * height_ * width_);
  return out_channels_ * out_height_ * out_width_;
}

}  // namespace fats
