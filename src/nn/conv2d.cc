#include "nn/conv2d.h"

#include "nn/init.h"
#include "util/string_util.h"

namespace fats {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t height,
               int64_t width, int64_t kernel_size, int64_t padding,
               RngStream* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      height_(height),
      width_(width),
      kernel_size_(kernel_size),
      padding_(padding),
      out_height_(height + 2 * padding - kernel_size + 1),
      out_width_(width + 2 * padding - kernel_size + 1),
      weight_("conv_weight",
              Tensor({out_channels, in_channels * kernel_size * kernel_size})),
      bias_("conv_bias", Tensor({out_channels})) {
  FATS_CHECK_GT(out_height_, 0) << "kernel larger than padded input";
  FATS_CHECK_GT(out_width_, 0);
  InitHeNormal(&weight_.value, in_channels * kernel_size * kernel_size, rng);
}

Tensor Conv2d::Forward(const Tensor& input) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), in_channels_ * height_ * width_) << ToString();
  cached_input_ = input;
  const int64_t batch = input.dim(0);
  Tensor out({batch, out_channels_ * out_height_ * out_width_});
  const float* wp = weight_.value.data();
  const float* bp = bias_.value.data();
  const int64_t ksq = kernel_size_ * kernel_size_;
  for (int64_t n = 0; n < batch; ++n) {
    const float* x = input.data() + n * in_channels_ * height_ * width_;
    float* y = out.data() + n * out_channels_ * out_height_ * out_width_;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* wk = wp + oc * in_channels_ * ksq;
      for (int64_t oh = 0; oh < out_height_; ++oh) {
        for (int64_t ow = 0; ow < out_width_; ++ow) {
          float acc = bp[oc];
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            const float* xc = x + ic * height_ * width_;
            const float* wc = wk + ic * ksq;
            for (int64_t kh = 0; kh < kernel_size_; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= height_) continue;
              for (int64_t kw = 0; kw < kernel_size_; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= width_) continue;
                acc += wc[kh * kernel_size_ + kw] * xc[ih * width_ + iw];
              }
            }
          }
          y[(oc * out_height_ + oh) * out_width_ + ow] = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  const int64_t batch = cached_input_.dim(0);
  FATS_CHECK_EQ(grad_output.dim(0), batch);
  FATS_CHECK_EQ(grad_output.dim(1), out_channels_ * out_height_ * out_width_);
  Tensor grad_input(cached_input_.shape());
  float* wgrad = weight_.grad.data();
  float* bgrad = bias_.grad.data();
  const float* wp = weight_.value.data();
  const int64_t ksq = kernel_size_ * kernel_size_;
  for (int64_t n = 0; n < batch; ++n) {
    const float* x =
        cached_input_.data() + n * in_channels_ * height_ * width_;
    const float* gy =
        grad_output.data() + n * out_channels_ * out_height_ * out_width_;
    float* gx = grad_input.data() + n * in_channels_ * height_ * width_;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* wk = wp + oc * in_channels_ * ksq;
      float* wgk = wgrad + oc * in_channels_ * ksq;
      for (int64_t oh = 0; oh < out_height_; ++oh) {
        for (int64_t ow = 0; ow < out_width_; ++ow) {
          const float g = gy[(oc * out_height_ + oh) * out_width_ + ow];
          if (g == 0.0f) continue;
          bgrad[oc] += g;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            const float* xc = x + ic * height_ * width_;
            float* gxc = gx + ic * height_ * width_;
            const float* wc = wk + ic * ksq;
            float* wgc = wgk + ic * ksq;
            for (int64_t kh = 0; kh < kernel_size_; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= height_) continue;
              for (int64_t kw = 0; kw < kernel_size_; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= width_) continue;
                wgc[kh * kernel_size_ + kw] += g * xc[ih * width_ + iw];
                gxc[ih * width_ + iw] += g * wc[kh * kernel_size_ + kw];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::string Conv2d::ToString() const {
  return StrFormat("Conv2d(%lldx%lldx%lld -> %lld ch, k=%lld, p=%lld)",
                   static_cast<long long>(in_channels_),
                   static_cast<long long>(height_),
                   static_cast<long long>(width_),
                   static_cast<long long>(out_channels_),
                   static_cast<long long>(kernel_size_),
                   static_cast<long long>(padding_));
}

int64_t Conv2d::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, in_channels_ * height_ * width_);
  return out_channels_ * out_height_ * out_width_;
}

}  // namespace fats
