#include "nn/activations.h"

#include <cmath>

namespace fats {

Tensor ReLU::Forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  float* data = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    if (data[i] < 0.0f) data[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  FATS_CHECK(grad_output.shape() == cached_input_.shape());
  Tensor grad = grad_output;
  float* gp = grad.data();
  const float* xp = cached_input_.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    if (xp[i] <= 0.0f) gp[i] = 0.0f;
  }
  return grad;
}

Tensor Tanh::Forward(const Tensor& input) {
  Tensor out = input;
  float* data = out.data();
  for (int64_t i = 0; i < out.size(); ++i) data[i] = std::tanh(data[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  FATS_CHECK(grad_output.shape() == cached_output_.shape());
  Tensor grad = grad_output;
  float* gp = grad.data();
  const float* yp = cached_output_.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    gp[i] *= 1.0f - yp[i] * yp[i];
  }
  return grad;
}

Tensor Sigmoid::Forward(const Tensor& input) {
  Tensor out = input;
  float* data = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    data[i] = 1.0f / (1.0f + std::exp(-data[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  FATS_CHECK(grad_output.shape() == cached_output_.shape());
  Tensor grad = grad_output;
  float* gp = grad.data();
  const float* yp = cached_output_.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    gp[i] *= yp[i] * (1.0f - yp[i]);
  }
  return grad;
}

}  // namespace fats
