#include "nn/activations.h"

#include <cmath>

namespace fats {

namespace {
enum Slot { kOut, kGradIn };
}  // namespace

const Tensor& ReLU::Forward(const Tensor& input, Workspace* ws) {
  cached_input_ = &input;
  Tensor& out = ws->Get(this, kOut, input.shape());
  const float* xp = input.data();
  float* yp = out.data();
  for (int64_t i = 0; i < input.size(); ++i) {
    yp[i] = xp[i] < 0.0f ? 0.0f : xp[i];
  }
  return out;
}

const Tensor& ReLU::Backward(const Tensor& grad_output, Workspace* ws) {
  FATS_CHECK(cached_input_ != nullptr) << "Backward before Forward";
  FATS_CHECK(grad_output.shape() == cached_input_->shape());
  Tensor& grad = ws->Get(this, kGradIn, grad_output.shape());
  const float* gp = grad_output.data();
  const float* xp = cached_input_->data();
  float* op = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    // Read gp[i] unconditionally: a load that only happens on the
    // not-taken arm blocks if-conversion, and with it vectorization.
    const float g = gp[i];
    op[i] = xp[i] <= 0.0f ? 0.0f : g;
  }
  return grad;
}

const Tensor& Tanh::Forward(const Tensor& input, Workspace* ws) {
  Tensor& out = ws->Get(this, kOut, input.shape());
  const float* xp = input.data();
  float* yp = out.data();
  for (int64_t i = 0; i < input.size(); ++i) yp[i] = std::tanh(xp[i]);
  return out;
}

const Tensor& Tanh::Backward(const Tensor& grad_output, Workspace* ws) {
  const Tensor& out = ws->Peek(this, kOut);
  FATS_CHECK(grad_output.shape() == out.shape()) << "Backward before Forward";
  Tensor& grad = ws->Get(this, kGradIn, grad_output.shape());
  const float* gp = grad_output.data();
  const float* yp = out.data();
  float* op = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    op[i] = gp[i] * (1.0f - yp[i] * yp[i]);
  }
  return grad;
}

const Tensor& Sigmoid::Forward(const Tensor& input, Workspace* ws) {
  Tensor& out = ws->Get(this, kOut, input.shape());
  const float* xp = input.data();
  float* yp = out.data();
  for (int64_t i = 0; i < input.size(); ++i) {
    yp[i] = 1.0f / (1.0f + std::exp(-xp[i]));
  }
  return out;
}

const Tensor& Sigmoid::Backward(const Tensor& grad_output, Workspace* ws) {
  const Tensor& out = ws->Peek(this, kOut);
  FATS_CHECK(grad_output.shape() == out.shape()) << "Backward before Forward";
  Tensor& grad = ws->Get(this, kGradIn, grad_output.shape());
  const float* gp = grad_output.data();
  const float* yp = out.data();
  float* op = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    op[i] = gp[i] * yp[i] * (1.0f - yp[i]);
  }
  return grad;
}

}  // namespace fats
