#include "nn/embedding.h"

#include <cmath>

#include "nn/init.h"
#include "util/string_util.h"

namespace fats {

namespace {
enum Slot { kOut, kGradIn };
}  // namespace

Embedding::Embedding(int64_t vocab_size, int64_t embed_dim, int64_t seq_len,
                     RngStream* rng)
    : vocab_size_(vocab_size),
      embed_dim_(embed_dim),
      seq_len_(seq_len),
      table_("embedding", Tensor({vocab_size, embed_dim})) {
  InitGaussian(&table_.value, 1.0 / std::sqrt(static_cast<double>(embed_dim)),
               rng);
}

const Tensor& Embedding::Forward(const Tensor& input, Workspace* ws) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), seq_len_) << ToString();
  const int64_t batch = input.dim(0);
  cached_input_shape_ = input.shape();
  cached_ids_.assign(static_cast<size_t>(batch * seq_len_), 0);
  Tensor& out = ws->Get(this, kOut, batch, seq_len_ * embed_dim_);
  const float* xp = input.data();
  const float* tp = table_.value.data();
  float* yp = out.data();
  for (int64_t i = 0; i < batch * seq_len_; ++i) {
    const int64_t id = static_cast<int64_t>(std::lround(xp[i]));
    FATS_CHECK(id >= 0 && id < vocab_size_)
        << "embedding id out of range: " << id;
    cached_ids_[static_cast<size_t>(i)] = id;
    const float* row = tp + id * embed_dim_;
    float* dst = yp + i * embed_dim_;
    for (int64_t d = 0; d < embed_dim_; ++d) dst[d] = row[d];
  }
  return out;
}

const Tensor& Embedding::Backward(const Tensor& grad_output, Workspace* ws) {
  FATS_CHECK_EQ(grad_output.dim(1), seq_len_ * embed_dim_);
  float* tg = table_.grad.data();
  const float* gp = grad_output.data();
  for (size_t i = 0; i < cached_ids_.size(); ++i) {
    float* row = tg + cached_ids_[i] * embed_dim_;
    const float* src = gp + static_cast<int64_t>(i) * embed_dim_;
    for (int64_t d = 0; d < embed_dim_; ++d) row[d] += src[d];
  }
  // Ids are not differentiable; propagate zeros of the input shape.
  Tensor& grad_input = ws->Get(this, kGradIn, cached_input_shape_);
  grad_input.Fill(0.0f);
  return grad_input;
}

std::string Embedding::ToString() const {
  return StrFormat("Embedding(vocab=%lld, dim=%lld, seq=%lld)",
                   static_cast<long long>(vocab_size_),
                   static_cast<long long>(embed_dim_),
                   static_cast<long long>(seq_len_));
}

int64_t Embedding::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, seq_len_);
  return seq_len_ * embed_dim_;
}

}  // namespace fats
