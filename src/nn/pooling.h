// 2x2 max pooling over flat (batch x C*H*W) activations.

#ifndef FATS_NN_POOLING_H_
#define FATS_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace fats {

/// Non-overlapping max pooling with a square window. Input height/width must
/// be divisible by the window size.
class MaxPool2d : public Module {
 public:
  MaxPool2d(int64_t channels, int64_t height, int64_t width, int64_t window);

  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  int64_t out_height() const { return out_height_; }
  int64_t out_width() const { return out_width_; }

 private:
  int64_t channels_;
  int64_t height_;
  int64_t width_;
  int64_t window_;
  int64_t out_height_;
  int64_t out_width_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  std::vector<int64_t> input_shape_;
};

}  // namespace fats

#endif  // FATS_NN_POOLING_H_
