// Token embedding lookup over flat (batch x seq_len) id tensors.

#ifndef FATS_NN_EMBEDDING_H_
#define FATS_NN_EMBEDDING_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "rng/rng_stream.h"

namespace fats {

/// Input: (batch, seq_len) where each entry is an integer id stored as a
/// float in [0, vocab). Output: (batch, seq_len * embed_dim), the per-step
/// embeddings concatenated in sequence order.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t embed_dim, int64_t seq_len,
            RngStream* rng);

  using Module::Forward;
  using Module::Backward;
  const Tensor& Forward(const Tensor& input, Workspace* ws) override;
  const Tensor& Backward(const Tensor& grad_output, Workspace* ws) override;
  std::vector<Parameter*> Parameters() override { return {&table_}; }
  std::string ToString() const override;
  int64_t OutputFeatures(int64_t input_features) const override;

  int64_t vocab_size() const { return vocab_size_; }
  int64_t embed_dim() const { return embed_dim_; }

 private:
  int64_t vocab_size_;
  int64_t embed_dim_;
  int64_t seq_len_;
  Parameter table_;  // (vocab x embed_dim)
  std::vector<int64_t> cached_ids_;
  std::vector<int64_t> cached_input_shape_;
};

}  // namespace fats

#endif  // FATS_NN_EMBEDDING_H_
