#include "nn/workspace.h"

namespace fats {

Tensor& Workspace::Slot(const void* owner, int id) {
  const Key key{owner, id};
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    ++grow_events_;
    it = slots_.emplace(key, Tensor()).first;
  }
  return it->second;
}

Tensor& Workspace::Get(const void* owner, int id, int64_t d0) {
  Tensor& t = Slot(owner, id);
  const size_t cap = t.storage().capacity();
  t.ResizeTo(d0);
  if (t.storage().capacity() != cap) ++grow_events_;
  return t;
}

Tensor& Workspace::Get(const void* owner, int id, int64_t d0, int64_t d1) {
  Tensor& t = Slot(owner, id);
  const size_t cap = t.storage().capacity();
  t.ResizeTo(d0, d1);
  if (t.storage().capacity() != cap) ++grow_events_;
  return t;
}

Tensor& Workspace::Get(const void* owner, int id, int64_t d0, int64_t d1,
                       int64_t d2) {
  Tensor& t = Slot(owner, id);
  const size_t cap = t.storage().capacity();
  t.ResizeTo(d0, d1, d2);
  if (t.storage().capacity() != cap) ++grow_events_;
  return t;
}

Tensor& Workspace::Get(const void* owner, int id,
                       const std::vector<int64_t>& shape) {
  Tensor& t = Slot(owner, id);
  const size_t cap = t.storage().capacity();
  t.ResizeTo(shape);
  if (t.storage().capacity() != cap) ++grow_events_;
  return t;
}

Tensor& Workspace::Peek(const void* owner, int id) { return Slot(owner, id); }

}  // namespace fats
