#include "nn/parameter_vector.h"

namespace fats {

int64_t ParameterCount(Module* module) {
  int64_t total = 0;
  for (Parameter* p : module->Parameters()) total += p->value.size();
  return total;
}

Tensor FlattenParameters(Module* module) {
  Tensor flat({ParameterCount(module)});
  int64_t offset = 0;
  for (Parameter* p : module->Parameters()) {
    const float* src = p->value.data();
    float* dst = flat.data() + offset;
    for (int64_t i = 0; i < p->value.size(); ++i) dst[i] = src[i];
    offset += p->value.size();
  }
  return flat;
}

void UnflattenParameters(const Tensor& flat, Module* module) {
  FATS_CHECK_EQ(flat.size(), ParameterCount(module))
      << "flat parameter size mismatch";
  int64_t offset = 0;
  for (Parameter* p : module->Parameters()) {
    const float* src = flat.data() + offset;
    float* dst = p->value.data();
    for (int64_t i = 0; i < p->value.size(); ++i) dst[i] = src[i];
    offset += p->value.size();
  }
}

void UnflattenParameters(const Tensor& flat,
                         const std::vector<Parameter*>& params) {
  int64_t offset = 0;
  for (Parameter* p : params) {
    FATS_CHECK_LE(offset + p->value.size(), flat.size())
        << "flat parameter size mismatch";
    const float* src = flat.data() + offset;
    float* dst = p->value.data();
    for (int64_t i = 0; i < p->value.size(); ++i) dst[i] = src[i];
    offset += p->value.size();
  }
  FATS_CHECK_EQ(offset, flat.size()) << "flat parameter size mismatch";
}

Tensor FlattenGradients(Module* module) {
  Tensor flat({ParameterCount(module)});
  int64_t offset = 0;
  for (Parameter* p : module->Parameters()) {
    const float* src = p->grad.data();
    float* dst = flat.data() + offset;
    for (int64_t i = 0; i < p->grad.size(); ++i) dst[i] = src[i];
    offset += p->grad.size();
  }
  return flat;
}

void ApplySgdStep(Module* module, double lr) {
  ApplySgdStep(module->Parameters(), lr);
}

void ApplySgdStep(const std::vector<Parameter*>& params, double lr) {
  const float step = static_cast<float>(lr);
  for (Parameter* p : params) {
    float* value = p->value.data();
    const float* grad = p->grad.data();
    for (int64_t i = 0; i < p->value.size(); ++i) {
      value[i] -= step * grad[i];
    }
  }
}

}  // namespace fats
