// Deterministic parameter initialization.

#ifndef FATS_NN_INIT_H_
#define FATS_NN_INIT_H_

#include "rng/rng_stream.h"
#include "tensor/tensor.h"

namespace fats {

/// Fills `t` with N(0, stddev^2) draws from `rng`.
void InitGaussian(Tensor* t, double stddev, RngStream* rng);

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void InitXavierUniform(Tensor* t, int64_t fan_in, int64_t fan_out,
                       RngStream* rng);

/// He normal: N(0, 2 / fan_in). Preferred before ReLU.
void InitHeNormal(Tensor* t, int64_t fan_in, RngStream* rng);

}  // namespace fats

#endif  // FATS_NN_INIT_H_
