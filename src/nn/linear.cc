#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace fats {

namespace {
enum Slot { kOut, kGradIn };
}  // namespace

Linear::Linear(int64_t in_features, int64_t out_features, RngStream* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", Tensor({out_features, in_features})),
      bias_("bias", Tensor({out_features})) {
  InitXavierUniform(&weight_.value, in_features, out_features, rng);
}

const Tensor& Linear::Forward(const Tensor& input, Workspace* ws) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), in_features_) << ToString();
  cached_input_ = &input;
  Tensor& out = ws->Peek(this, kOut);
  MatMulTransposeBInto(input, weight_.value, &out);  // (batch x out)
  AddRowwise(&out, bias_.value);
  return out;
}

const Tensor& Linear::Backward(const Tensor& grad_output, Workspace* ws) {
  FATS_CHECK_EQ(grad_output.rank(), 2);
  FATS_CHECK_EQ(grad_output.dim(1), out_features_);
  FATS_CHECK(cached_input_ != nullptr) << "Backward before Forward";
  // dW += gO^T @ X ; db += column sums of gO ; dX = gO @ W.
  AddMatMulTransposeAInto(grad_output, *cached_input_, &weight_.grad);
  AddSumRowsInto(grad_output, &bias_.grad);
  Tensor& grad_input = ws->Peek(this, kGradIn);
  MatMulInto(grad_output, weight_.value, &grad_input);
  return grad_input;
}

std::string Linear::ToString() const {
  return StrFormat("Linear(%lld->%lld)",
                   static_cast<long long>(in_features_),
                   static_cast<long long>(out_features_));
}

int64_t Linear::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, in_features_);
  return out_features_;
}

}  // namespace fats
