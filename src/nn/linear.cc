#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace fats {

Linear::Linear(int64_t in_features, int64_t out_features, RngStream* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", Tensor({out_features, in_features})),
      bias_("bias", Tensor({out_features})) {
  InitXavierUniform(&weight_.value, in_features, out_features, rng);
}

Tensor Linear::Forward(const Tensor& input) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), in_features_) << ToString();
  cached_input_ = input;
  Tensor out = MatMulTransposeB(input, weight_.value);  // (batch x out)
  AddRowwise(&out, bias_.value);
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  FATS_CHECK_EQ(grad_output.rank(), 2);
  FATS_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW += gO^T @ X ; db += column sums of gO ; dX = gO @ W.
  weight_.grad += MatMulTransposeA(grad_output, cached_input_);
  bias_.grad += SumRows(grad_output);
  return MatMul(grad_output, weight_.value);
}

std::string Linear::ToString() const {
  return StrFormat("Linear(%lld->%lld)",
                   static_cast<long long>(in_features_),
                   static_cast<long long>(out_features_));
}

int64_t Linear::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, in_features_);
  return out_features_;
}

}  // namespace fats
