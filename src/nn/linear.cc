#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace fats {

namespace {
enum Slot { kOut, kGradIn };
}  // namespace

Linear::Linear(int64_t in_features, int64_t out_features, RngStream* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", Tensor({out_features, in_features})),
      bias_("bias", Tensor({out_features})) {
  InitXavierUniform(&weight_.value, in_features, out_features, rng);
}

const WeightPack::Entry* Linear::PackEntry(const Workspace* ws) const {
  const WeightPack* pack = ws->shared_weight_pack();
  if (pack == nullptr) return nullptr;
  FATS_CHECK_LT(pack_slot_, pack->entries.size())
      << ToString() << ": bound WeightPack has too few slots";
  const WeightPack::Entry& entry = pack->entries[pack_slot_];
  // Shape check: a pack from a structurally different model walk would
  // silently compute garbage; fail loudly instead.
  FATS_CHECK_EQ(entry.forward.n, out_features_) << ToString();
  FATS_CHECK_EQ(entry.forward.k, in_features_) << ToString();
  FATS_CHECK_EQ(entry.backward.n, in_features_) << ToString();
  FATS_CHECK_EQ(entry.backward.k, out_features_) << ToString();
  return &entry;
}

const Tensor& Linear::Forward(const Tensor& input, Workspace* ws) {
  FATS_CHECK_EQ(input.rank(), 2);
  FATS_CHECK_EQ(input.dim(1), in_features_) << ToString();
  cached_input_ = &input;
  Tensor& out = ws->Peek(this, kOut);
  if (const WeightPack::Entry* entry = PackEntry(ws)) {
    MatMulPackedBInto(input, entry->forward, &out);  // (batch x out)
  } else {
    MatMulTransposeBInto(input, weight_.value, &out);  // (batch x out)
  }
  AddRowwise(&out, bias_.value);
  return out;
}

const Tensor& Linear::Backward(const Tensor& grad_output, Workspace* ws) {
  FATS_CHECK_EQ(grad_output.rank(), 2);
  FATS_CHECK_EQ(grad_output.dim(1), out_features_);
  FATS_CHECK(cached_input_ != nullptr) << "Backward before Forward";
  // dW += gO^T @ X ; db += column sums of gO ; dX = gO @ W.
  AddMatMulTransposeAInto(grad_output, *cached_input_, &weight_.grad);
  AddSumRowsInto(grad_output, &bias_.grad);
  Tensor& grad_input = ws->Peek(this, kGradIn);
  if (const WeightPack::Entry* entry = PackEntry(ws)) {
    // The pack holds pre-step weights, which is exactly what dX = gO @ W
    // must read: SgdStep runs after Backward.
    MatMulPackedBInto(grad_output, entry->backward, &grad_input);
  } else {
    MatMulInto(grad_output, weight_.value, &grad_input);
  }
  return grad_input;
}

void Linear::PackSharedWeights(WeightPack* pack) const {
  if (pack->entries.size() <= pack_slot_) pack->entries.resize(pack_slot_ + 1);
  WeightPack::Entry& entry = pack->entries[pack_slot_];
  // Forward y = x W^T reads W stored (out x in) as the transposed operand;
  // backward dx = dy W reads the same storage as a (k=out x n=in) matrix.
  gemm::PackBMatrix(out_features_, in_features_, weight_.value.data(),
                    in_features_, /*b_trans=*/true, &entry.forward);
  gemm::PackBMatrix(in_features_, out_features_, weight_.value.data(),
                    in_features_, /*b_trans=*/false, &entry.backward);
}

std::string Linear::ToString() const {
  return StrFormat("Linear(%lld->%lld)",
                   static_cast<long long>(in_features_),
                   static_cast<long long>(out_features_));
}

int64_t Linear::OutputFeatures(int64_t input_features) const {
  FATS_CHECK_EQ(input_features, in_features_);
  return out_features_;
}

}  // namespace fats
