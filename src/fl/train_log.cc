#include "fl/train_log.h"

#include "util/csv_writer.h"
#include "util/string_util.h"

namespace fats {

int64_t TrainLog::TrailingRecomputationRounds() const {
  int64_t count = 0;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (!it->recomputation) break;
    ++count;
  }
  return count;
}

int64_t TrainLog::RoundsToReach(double target, size_t from_index) const {
  for (size_t i = from_index; i < records_.size(); ++i) {
    if (records_[i].test_accuracy >= target) {
      return static_cast<int64_t>(i - from_index) + 1;
    }
  }
  return -1;
}

std::string TrainLog::ToCsv() const {
  std::string out = "round,test_accuracy,mean_local_loss,recomputation\n";
  for (const RoundRecord& r : records_) {
    out += StrFormat("%lld,%.6f,%.6f,%d\n", (long long)r.round,
                     r.test_accuracy, r.mean_local_loss,
                     r.recomputation ? 1 : 0);
  }
  return out;
}

Status TrainLog::WriteCsvFile(const std::string& path) const {
  CsvWriter writer(path);
  FATS_RETURN_NOT_OK(writer.status());
  writer.WriteHeader(
      {"round", "test_accuracy", "mean_local_loss", "recomputation"});
  for (const RoundRecord& r : records_) {
    writer.WriteRow({StrFormat("%lld", (long long)r.round),
                     StrFormat("%.6f", r.test_accuracy),
                     StrFormat("%.6f", r.mean_local_loss),
                     r.recomputation ? "1" : "0"});
  }
  return writer.Finish();
}

}  // namespace fats
