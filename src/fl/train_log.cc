#include "fl/train_log.h"

#include "util/string_util.h"

namespace fats {

int64_t TrainLog::TrailingRecomputationRounds() const {
  int64_t count = 0;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (!it->recomputation) break;
    ++count;
  }
  return count;
}

int64_t TrainLog::RoundsToReach(double target, size_t from_index) const {
  for (size_t i = from_index; i < records_.size(); ++i) {
    if (records_[i].test_accuracy >= target) {
      return static_cast<int64_t>(i - from_index) + 1;
    }
  }
  return -1;
}

std::string TrainLog::ToCsv() const {
  std::string out = "round,test_accuracy,mean_local_loss,recomputation\n";
  for (const RoundRecord& r : records_) {
    out += StrFormat("%lld,%.6f,%.6f,%d\n", (long long)r.round,
                     r.test_accuracy, r.mean_local_loss,
                     r.recomputation ? 1 : 0);
  }
  return out;
}

}  // namespace fats
