// Server-side runtime: client sampling and model aggregation.

#ifndef FATS_FL_SERVER_H_
#define FATS_FL_SERVER_H_

#include <cstdint>
#include <vector>

#include "data/federated_dataset.h"
#include "rng/rng_stream.h"
#include "tensor/tensor.h"

namespace fats {

class ServerRuntime {
 public:
  /// FATS' client law ν(M, K): a multiset of K draws with replacement from
  /// the *active* clients (Algorithm 1, step 8). The same client may appear
  /// multiple times.
  static std::vector<int64_t> SampleClientsWithReplacement(
      const FederatedDataset& data, int64_t k, RngStream* stream);

  /// Classic FedAvg client sampling: K distinct active clients.
  static std::vector<int64_t> SampleClientsWithoutReplacement(
      const FederatedDataset& data, int64_t k, RngStream* stream);

  /// θ ← (1/|models|) Σ models (Algorithm 1, step 18). Multiset semantics:
  /// a client selected twice contributes two entries.
  static Tensor AverageModels(const std::vector<Tensor>& models);
};

}  // namespace fats

#endif  // FATS_FL_SERVER_H_
