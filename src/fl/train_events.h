// Observation interface for durable training state.
//
// FatsTrainer emits an event at every state transition the exactness
// contract cares about — the save(·) calls of Algorithm 1, iteration
// commits, store truncations, generation bumps, and unlearning-operation
// brackets. A TrainEventSink (the journaled session in io/train_journal.h)
// turns those events into durable records; a trainer with no sink attached
// behaves exactly as before.
//
// The sink sees events *after* the in-memory StateStore mutation they
// describe, in commit order, on the main thread.

#ifndef FATS_FL_TRAIN_EVENTS_H_
#define FATS_FL_TRAIN_EVENTS_H_

#include <cstdint>
#include <vector>

#include "fl/train_log.h"
#include "tensor/tensor.h"

namespace fats {

/// Which trainer entry point a pass runs under. Recovery must resume an
/// interrupted pass through the same entry point: Run redraws sampling from
/// streams, ReplayFrom consumes the stored history.
enum class TrainPassKind : uint8_t {
  kRun = 0,
  kReplay = 1,
};

/// Snapshot of trainer progress at an iteration commit. This is the
/// journal's commit point: a crash after the mark is durable costs nothing,
/// a crash before it re-executes the iteration (bit-identically, because
/// every draw is a pure function of its stream key).
struct IterationMark {
  int64_t iteration = 0;       // t just committed
  int64_t pass_end = 0;        // t_end of the enclosing Run/ReplayFrom
  int64_t trained_through = 0; // trainer progress marker after this commit
  uint64_t generation = 0;
  TrainPassKind pass = TrainPassKind::kRun;
  bool recomputation = false;
  // Comm counters after this commit (CommStats snapshot), so a recovered
  // session's accounting matches the uninterrupted run — including the
  // retransmit ledger, which must reproduce exactly under transport faults
  // (the fault schedule is a pure function of its stream address, so a
  // recovery re-execution re-derives the same retries).
  int64_t comm_rounds = 0;
  int64_t comm_uplink_bytes = 0;
  int64_t comm_downlink_bytes = 0;
  int64_t comm_downlink_messages = 0;
  int64_t comm_uplink_messages = 0;
  int64_t comm_retransmits = 0;
  int64_t comm_retransmit_bytes = 0;
  // Running round-loss accumulator after this commit. A mid-round resume
  // must seed these back into the trainer or the re-executed round's
  // mean_local_loss would forget the pre-crash iterations.
  double round_loss_sum = 0.0;
  int64_t round_loss_count = 0;
};

class TrainEventSink {
 public:
  virtual ~TrainEventSink() = default;

  /// P^(r) saved for round r.
  virtual void OnClientSelection(int64_t round,
                                 const std::vector<int64_t>& selection) = 0;
  /// B_k^(t) saved (drawn by Run or substituted by sample unlearning).
  virtual void OnMinibatch(int64_t iteration, int64_t client,
                           const std::vector<int64_t>& indices) = 0;
  /// θ_k^(t) saved.
  virtual void OnLocalModel(int64_t iteration, int64_t client,
                            const Tensor& params) = 0;
  /// θ^(r) saved (round 0 is the initial model).
  virtual void OnGlobalModel(int64_t round, const Tensor& params) = 0;
  /// Round summary appended to the TrainLog.
  virtual void OnRoundRecord(const RoundRecord& record) = 0;
  /// Iteration t fully committed (store + log + comm stats updated).
  virtual void OnIterationComplete(const IterationMark& mark) = 0;
  /// Store truncated from `from_iteration` onward (client-level unlearning).
  virtual void OnTruncate(int64_t from_iteration) = 0;
  /// Stream generation bumped; all later draws use the new value.
  virtual void OnGenerationBump(uint64_t generation) = 0;
  /// An unlearning operation started mutating trainer state. Everything
  /// between Begin and End is atomic under recovery: a crash inside the
  /// bracket rolls the whole operation back.
  virtual void OnUnlearnBegin() = 0;
  virtual void OnUnlearnEnd() = 0;
};

}  // namespace fats

#endif  // FATS_FL_TRAIN_EVENTS_H_
