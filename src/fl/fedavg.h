// Generic FedAvg trainer (McMahan et al. 2017).
//
// This is the learning algorithm underneath the paper's baselines FRS and
// FR²: per round, K distinct clients are selected, each runs E local
// mini-batch SGD iterations from the broadcast global model, and the server
// averages the returned models. It shares the client/server runtimes and the
// deterministic stream addressing with FATS, but keeps no algorithmic state
// beyond the current global model — which is exactly why its unlearning
// story requires retraining (FRS) or approximate correction (FR²).

#ifndef FATS_FL_FEDAVG_H_
#define FATS_FL_FEDAVG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/federated_dataset.h"
#include "fl/comm_stats.h"
#include "fl/parallel_clients.h"
#include "fl/train_log.h"
#include "nn/model_zoo.h"
#include "transport/reliable_channel.h"
#include "transport/transport.h"

namespace fats {

struct FedAvgOptions {
  int64_t clients_per_round_k = 2;
  int64_t local_iters_e = 5;
  int64_t batch_b = 4;
  double learning_rate = 0.05;
  uint64_t seed = 1;
  /// FATS samples clients with replacement; classic FedAvg without.
  bool sample_clients_with_replacement = false;
  /// Worker threads for per-round client execution; 1 = serial. Parallel
  /// runs are bit-identical to serial (see fl/parallel_clients.h).
  int64_t num_threads = 1;
  /// Transport fault schedule for the trainer's wire (see
  /// transport/fault_injection.h). Empty disables (clean wire); either way
  /// the trained model and log are bitwise-identical — only the retransmit
  /// ledger grows under faults.
  std::string transport_fault_spec;
};

class FedAvgTrainer {
 public:
  /// `data` is borrowed and must outlive the trainer. The model is built
  /// and initialized deterministically from `options.seed`.
  FedAvgTrainer(const ModelSpec& spec, const FedAvgOptions& options,
                const FederatedDataset* data);

  /// Runs `num_rounds` additional rounds, continuing the round counter.
  /// Each executed round is evaluated and appended to the log; rounds run
  /// while `recomputation_mode` is set are flagged in the log.
  void RunRounds(int64_t num_rounds);

  /// Re-initializes the model from `init_seed` and resets the round counter
  /// (history and communication stats are kept — they accumulate total cost,
  /// which is what FRS pays for retraining).
  void ResetModel(uint64_t init_seed);

  double EvaluateTestAccuracy();

  Tensor global_params() { return model_->GetParameters(); }
  void set_global_params(const Tensor& params) {
    model_->SetParameters(params);
  }

  int64_t rounds_completed() const { return rounds_completed_; }
  const TrainLog& log() const { return log_; }
  TrainLog* mutable_log() { return &log_; }
  CommStats& comm_stats() { return comm_stats_; }
  Model* model() { return model_.get(); }
  const FederatedDataset* data() const { return data_; }
  const FedAvgOptions& options() const { return options_; }

  /// Bumps the randomness generation: subsequent rounds draw streams
  /// independent of all earlier ones (used for retraining after deletion).
  void BumpGeneration() { ++generation_; }
  uint64_t generation() const { return generation_; }

  void set_recomputation_mode(bool on) { recomputation_mode_ = on; }

  /// Executes per-round client updates; shared with the unlearning
  /// baselines (FR² recovery rounds) so they reuse the same pool and
  /// replicas under the same determinism contract.
  ParallelClientRunner* client_runner() { return &runner_; }

  /// Transport deliveries that exhausted the retry budget and went through
  /// on the forced final attempt (see transport/reliable_channel.h).
  int64_t transport_forced_deliveries() const {
    return transport_forced_deliveries_;
  }

  /// The reliable channel every model broadcast/upload travels through.
  const transport::ReliableChannel& channel() const { return *channel_; }

 private:
  /// Moves one model through the wire, charges the comm ledger, and returns
  /// the decoded parameters (bitwise the encoded ones).
  Tensor TransferModel(transport::Direction direction, int64_t round,
                       int64_t client, uint32_t seq,
                       const transport::EncodedModel& model);

  ModelSpec spec_;
  FedAvgOptions options_;
  const FederatedDataset* data_;
  std::unique_ptr<Model> model_;
  Batch test_batch_;
  int64_t rounds_completed_ = 0;
  uint64_t generation_ = 0;
  bool recomputation_mode_ = false;
  int64_t transport_forced_deliveries_ = 0;
  std::unique_ptr<transport::LocalTransport> wire_;
  std::unique_ptr<transport::ReliableChannel> channel_;
  ParallelClientRunner runner_;
  TrainLog log_;
  CommStats comm_stats_;
};

}  // namespace fats

#endif  // FATS_FL_FEDAVG_H_
