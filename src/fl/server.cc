#include "fl/server.h"

#include "rng/sampling.h"
#include "util/logging.h"

namespace fats {

std::vector<int64_t> ServerRuntime::SampleClientsWithReplacement(
    const FederatedDataset& data, int64_t k, RngStream* stream) {
  const std::vector<int64_t>& active = data.active_clients();
  const int64_t m = static_cast<int64_t>(active.size());
  FATS_CHECK_GT(m, 0) << "no active clients";
  std::vector<int64_t> positions = SampleWithReplacement(m, k, stream);
  std::vector<int64_t> clients;
  clients.reserve(positions.size());
  for (int64_t pos : positions) {
    clients.push_back(active[static_cast<size_t>(pos)]);
  }
  return clients;
}

std::vector<int64_t> ServerRuntime::SampleClientsWithoutReplacement(
    const FederatedDataset& data, int64_t k, RngStream* stream) {
  const std::vector<int64_t>& active = data.active_clients();
  const int64_t m = static_cast<int64_t>(active.size());
  FATS_CHECK_LE(k, m) << "cannot select more clients than are active";
  std::vector<int64_t> positions = SampleWithoutReplacement(m, k, stream);
  std::vector<int64_t> clients;
  clients.reserve(positions.size());
  for (int64_t pos : positions) {
    clients.push_back(active[static_cast<size_t>(pos)]);
  }
  return clients;
}

Tensor ServerRuntime::AverageModels(const std::vector<Tensor>& models) {
  FATS_CHECK(!models.empty());
  Tensor avg = models[0];
  for (size_t i = 1; i < models.size(); ++i) avg += models[i];
  avg *= 1.0f / static_cast<float>(models.size());
  return avg;
}

}  // namespace fats
