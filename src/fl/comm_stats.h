// Byte-level communication accounting.
//
// Communication efficiency is one of the paper's two headline criteria; the
// benches report exact bytes moved, computed from the model parameter count
// (one float32 vector down to each selected client per round, one back up).

#ifndef FATS_FL_COMM_STATS_H_
#define FATS_FL_COMM_STATS_H_

#include <cstdint>
#include <string>

namespace fats {

class CommStats {
 public:
  CommStats() = default;

  /// Rebuilds an accumulator from raw counters (checkpoint restore).
  static CommStats FromCounters(int64_t rounds, int64_t uplink_bytes,
                                int64_t downlink_bytes, int64_t messages) {
    CommStats stats;
    stats.rounds_ = rounds;
    stats.uplink_bytes_ = uplink_bytes;
    stats.downlink_bytes_ = downlink_bytes;
    stats.messages_ = messages;
    return stats;
  }

  /// Server -> clients model broadcast: `num_clients` copies of
  /// `model_params` float32 scalars.
  void RecordBroadcast(int64_t num_clients, int64_t model_params) {
    downlink_bytes_ += num_clients * model_params * kBytesPerParam;
    messages_ += num_clients;
  }

  /// Clients -> server model upload.
  void RecordUpload(int64_t num_clients, int64_t model_params) {
    uplink_bytes_ += num_clients * model_params * kBytesPerParam;
    messages_ += num_clients;
  }

  void RecordRound() { ++rounds_; }

  void Reset() {
    rounds_ = 0;
    uplink_bytes_ = 0;
    downlink_bytes_ = 0;
    messages_ = 0;
  }

  /// Adds another accumulator's counters into this one.
  void Merge(const CommStats& other) {
    rounds_ += other.rounds_;
    uplink_bytes_ += other.uplink_bytes_;
    downlink_bytes_ += other.downlink_bytes_;
    messages_ += other.messages_;
  }

  int64_t rounds() const { return rounds_; }
  int64_t uplink_bytes() const { return uplink_bytes_; }
  int64_t downlink_bytes() const { return downlink_bytes_; }
  int64_t total_bytes() const { return uplink_bytes_ + downlink_bytes_; }
  int64_t messages() const { return messages_; }

  std::string ToString() const;

 private:
  static constexpr int64_t kBytesPerParam = 4;  // float32

  int64_t rounds_ = 0;
  int64_t uplink_bytes_ = 0;
  int64_t downlink_bytes_ = 0;
  int64_t messages_ = 0;
};

}  // namespace fats

#endif  // FATS_FL_COMM_STATS_H_
