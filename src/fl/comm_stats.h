// Byte-level communication accounting.
//
// Communication efficiency is one of the paper's two headline criteria; the
// benches report exact bytes moved. Since the transport layer landed, the
// model bytes are real serialized payloads (transport/wire_format.h): a
// model payload is the raw float32 image of the parameter vector, so the
// per-message charges recorded here still equal the analytic
// `clients · params · 4` counts the Fig. 2 comparison uses.
//
// Two ledgers live side by side:
//   * uplink/downlink bytes + per-direction message counts — the *clean*
//     cost of the protocol, identical with and without transport faults;
//   * retransmits / retransmit_bytes — the extra frames (full wire frames,
//     header included) a lossy wire cost on top. Only these may differ
//     between a faulty run and a clean one (the transport exactness
//     contract, DESIGN.md §7.7).

#ifndef FATS_FL_COMM_STATS_H_
#define FATS_FL_COMM_STATS_H_

#include <cstdint>
#include <string>

namespace fats {

/// Raw counter snapshot (checkpoint/journal restore and introspection).
struct CommCounters {
  int64_t rounds = 0;
  int64_t uplink_bytes = 0;
  int64_t downlink_bytes = 0;
  int64_t downlink_messages = 0;
  int64_t uplink_messages = 0;
  int64_t retransmits = 0;
  int64_t retransmit_bytes = 0;
};

class CommStats {
 public:
  CommStats() = default;

  /// Rebuilds an accumulator from raw counters (checkpoint restore).
  static CommStats FromCounters(const CommCounters& counters) {
    CommStats stats;
    stats.counters_ = counters;
    return stats;
  }

  /// Server -> clients model broadcast: `num_clients` copies of
  /// `model_params` float32 scalars (bulk analytic form; the transport
  /// path charges the same bytes one delivery at a time).
  void RecordBroadcast(int64_t num_clients, int64_t model_params) {
    counters_.downlink_bytes += num_clients * model_params * kBytesPerParam;
    counters_.downlink_messages += num_clients;
  }

  /// Clients -> server model upload.
  void RecordUpload(int64_t num_clients, int64_t model_params) {
    counters_.uplink_bytes += num_clients * model_params * kBytesPerParam;
    counters_.uplink_messages += num_clients;
  }

  /// One delivered downlink message of `payload_bytes` serialized bytes.
  void RecordDownlinkDelivery(int64_t payload_bytes) {
    counters_.downlink_bytes += payload_bytes;
    ++counters_.downlink_messages;
  }

  /// One delivered uplink message of `payload_bytes` serialized bytes.
  void RecordUplinkDelivery(int64_t payload_bytes) {
    counters_.uplink_bytes += payload_bytes;
    ++counters_.uplink_messages;
  }

  /// Extra frames a delivery needed beyond the clean send (retries and
  /// duplicate copies; `bytes` are full frame bytes, header included).
  void RecordRetransmits(int64_t count, int64_t bytes) {
    counters_.retransmits += count;
    counters_.retransmit_bytes += bytes;
  }

  void RecordRound() { ++counters_.rounds; }

  void Reset() { counters_ = CommCounters(); }

  /// Adds another accumulator's counters into this one.
  void Merge(const CommStats& other) {
    counters_.rounds += other.counters_.rounds;
    counters_.uplink_bytes += other.counters_.uplink_bytes;
    counters_.downlink_bytes += other.counters_.downlink_bytes;
    counters_.downlink_messages += other.counters_.downlink_messages;
    counters_.uplink_messages += other.counters_.uplink_messages;
    counters_.retransmits += other.counters_.retransmits;
    counters_.retransmit_bytes += other.counters_.retransmit_bytes;
  }

  int64_t rounds() const { return counters_.rounds; }
  int64_t uplink_bytes() const { return counters_.uplink_bytes; }
  int64_t downlink_bytes() const { return counters_.downlink_bytes; }
  /// Clean protocol bytes (excludes retransmissions, by design: the Fig. 2
  /// comparison is about the protocol, not the wire quality).
  int64_t total_bytes() const {
    return counters_.uplink_bytes + counters_.downlink_bytes;
  }
  int64_t messages() const {
    return counters_.downlink_messages + counters_.uplink_messages;
  }
  int64_t downlink_messages() const { return counters_.downlink_messages; }
  int64_t uplink_messages() const { return counters_.uplink_messages; }
  int64_t retransmits() const { return counters_.retransmits; }
  int64_t retransmit_bytes() const { return counters_.retransmit_bytes; }

  const CommCounters& counters() const { return counters_; }

  std::string ToString() const;

 private:
  static constexpr int64_t kBytesPerParam = 4;  // float32

  CommCounters counters_;
};

}  // namespace fats

#endif  // FATS_FL_COMM_STATS_H_
