#include "fl/fedavg.h"

#include "fl/client.h"
#include "fl/server.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace fats {

FedAvgTrainer::FedAvgTrainer(const ModelSpec& spec,
                             const FedAvgOptions& options,
                             const FederatedDataset* data)
    : spec_(spec),
      options_(options),
      data_(data),
      model_(std::make_unique<Model>(spec, options.seed)),
      test_batch_(data->global_test().AsBatch()),
      runner_(spec, options.seed, options.num_threads) {
  Result<transport::TransportFaultSpec> tf_spec =
      transport::TransportFaultSpec::Parse(options.transport_fault_spec);
  FATS_CHECK(tf_spec.ok()) << tf_spec.status().ToString();
  wire_ = std::make_unique<transport::LocalTransport>();
  channel_ = std::make_unique<transport::ReliableChannel>(wire_.get(), *tf_spec);
}

Tensor FedAvgTrainer::TransferModel(transport::Direction direction,
                                    int64_t round, int64_t client,
                                    uint32_t seq,
                                    const transport::EncodedModel& model) {
  transport::MessageAddress address;
  address.direction = direction;
  address.round = round;
  address.iteration = round;  // FedAvg addresses the wire per round.
  address.client = client;
  address.seq = seq;
  Result<transport::ModelDelivery> delivered =
      channel_->DeliverModel(address, model);
  FATS_CHECK(delivered.ok()) << delivered.status().ToString();
  if (direction == transport::Direction::kDownlink) {
    comm_stats_.RecordDownlinkDelivery(delivered->payload_bytes);
  } else {
    comm_stats_.RecordUplinkDelivery(delivered->payload_bytes);
  }
  comm_stats_.RecordRetransmits(delivered->retransmits,
                                delivered->retransmit_bytes);
  if (delivered->forced) ++transport_forced_deliveries_;
  return std::move(delivered->params);
}

void FedAvgTrainer::RunRounds(int64_t num_rounds) {
  for (int64_t r = 0; r < num_rounds; ++r) {
    const int64_t round = ++rounds_completed_;
    // Select clients for this round.
    StreamId sel_id;
    sel_id.purpose = RngPurpose::kClientSampling;
    sel_id.generation = generation_;
    sel_id.round = static_cast<uint64_t>(round);
    RngStream sel_stream(options_.seed, sel_id);
    const int64_t k = std::min<int64_t>(options_.clients_per_round_k,
                                        data_->num_active_clients());
    std::vector<int64_t> selected =
        options_.sample_clients_with_replacement
            ? ServerRuntime::SampleClientsWithReplacement(*data_, k,
                                                          &sel_stream)
            : ServerRuntime::SampleClientsWithoutReplacement(*data_, k,
                                                             &sel_stream);
    // Each selection entry runs its full E-iteration local chain as one
    // task (duplicate entries recompute independently from the broadcast
    // model, exactly as the serial loop did). Stream keys are derived on
    // the main thread in the serial draw order; per-step losses and local
    // models are committed in selection order so float accumulation and
    // the AverageModels reduction are bit-identical to serial.
    //
    // The broadcast is encoded once and delivered per selection slot over
    // the wire; each slot starts from its delivered (decoded) copy, which
    // is bitwise the encoded model.
    const size_t n_sel = selected.size();
    const transport::EncodedModel broadcast(model_->GetParameters());
    std::vector<Tensor> start_params(n_sel);
    for (size_t i = 0; i < n_sel; ++i) {
      start_params[i] = TransferModel(transport::Direction::kDownlink, round,
                                      selected[i], static_cast<uint32_t>(i),
                                      broadcast);
    }
    struct ClientChain {
      Tensor params;
      std::vector<double> step_losses;
    };
    std::vector<ClientChain> chains(n_sel);
    std::vector<std::vector<uint64_t>> stream_keys(n_sel);
    std::vector<int64_t> batch_sizes(n_sel);
    for (size_t i = 0; i < n_sel; ++i) {
      const int64_t client = selected[i];
      batch_sizes[i] = std::min<int64_t>(options_.batch_b,
                                         data_->num_active_samples(client));
      stream_keys[i].reserve(
          static_cast<size_t>(options_.local_iters_e));
      for (int64_t e = 1; e <= options_.local_iters_e; ++e) {
        StreamId batch_id;
        batch_id.purpose = RngPurpose::kMinibatchSampling;
        batch_id.generation = generation_;
        batch_id.round = static_cast<uint64_t>(round);
        batch_id.client = static_cast<uint64_t>(client);
        batch_id.iteration = static_cast<uint64_t>(e);
        stream_keys[i].push_back(DeriveStreamKey(options_.seed, batch_id));
      }
    }
    runner_.ForEachClient(
        static_cast<int64_t>(n_sel), [&](int64_t i, Model* m) {
          const size_t s = static_cast<size_t>(i);
          const int64_t client = selected[s];
          m->SetParameters(start_params[s]);
          ClientRuntime runtime(data_, m);
          for (int64_t e = 1; e <= options_.local_iters_e; ++e) {
            if (batch_sizes[s] == 0) break;
            RngStream batch_stream(stream_keys[s][static_cast<size_t>(e - 1)]);
            std::vector<int64_t> indices = runtime.SampleMinibatch(
                client, batch_sizes[s], &batch_stream);
            chains[s].step_losses.push_back(
                runtime.Step(client, indices, options_.learning_rate));
          }
          chains[s].params = m->GetParameters();
        });
    // Each slot's local model is serialized and uplinked individually; the
    // server averages the delivered (decoded) copies in slot order, which
    // preserves the reduction order of the direct in-memory path.
    std::vector<Tensor> locals;
    locals.reserve(n_sel);
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (size_t i = 0; i < n_sel; ++i) {
      for (double loss : chains[i].step_losses) {
        loss_sum += loss;
        ++loss_count;
      }
      const transport::EncodedModel upload(chains[i].params);
      locals.push_back(TransferModel(transport::Direction::kUplink, round,
                                     selected[i], static_cast<uint32_t>(i),
                                     upload));
    }
    comm_stats_.RecordRound();
    if (!locals.empty()) {
      model_->SetParameters(ServerRuntime::AverageModels(locals));
    }

    RoundRecord record;
    record.round = round;
    record.test_accuracy = EvaluateTestAccuracy();
    record.mean_local_loss =
        loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
    record.recomputation = recomputation_mode_;
    log_.Append(record);
    FATS_FAILPOINT("fedavg.round.end");
  }
}

void FedAvgTrainer::ResetModel(uint64_t init_seed) {
  model_ = std::make_unique<Model>(spec_, init_seed);
  rounds_completed_ = 0;
}

double FedAvgTrainer::EvaluateTestAccuracy() {
  return model_->EvaluateAccuracy(test_batch_.inputs, test_batch_.labels);
}

}  // namespace fats
