#include "fl/fedavg.h"

#include "fl/client.h"
#include "fl/server.h"
#include "util/logging.h"

namespace fats {

FedAvgTrainer::FedAvgTrainer(const ModelSpec& spec,
                             const FedAvgOptions& options,
                             const FederatedDataset* data)
    : spec_(spec),
      options_(options),
      data_(data),
      model_(std::make_unique<Model>(spec, options.seed)),
      test_batch_(data->global_test().AsBatch()) {}

void FedAvgTrainer::RunRounds(int64_t num_rounds) {
  ClientRuntime client_runtime(data_, model_.get());
  const int64_t model_params = model_->NumParameters();
  for (int64_t r = 0; r < num_rounds; ++r) {
    const int64_t round = ++rounds_completed_;
    // Select clients for this round.
    StreamId sel_id;
    sel_id.purpose = RngPurpose::kClientSampling;
    sel_id.generation = generation_;
    sel_id.round = static_cast<uint64_t>(round);
    RngStream sel_stream(options_.seed, sel_id);
    const int64_t k = std::min<int64_t>(options_.clients_per_round_k,
                                        data_->num_active_clients());
    std::vector<int64_t> selected =
        options_.sample_clients_with_replacement
            ? ServerRuntime::SampleClientsWithReplacement(*data_, k,
                                                          &sel_stream)
            : ServerRuntime::SampleClientsWithoutReplacement(*data_, k,
                                                             &sel_stream);
    comm_stats_.RecordBroadcast(static_cast<int64_t>(selected.size()),
                                model_params);

    const Tensor global = model_->GetParameters();
    std::vector<Tensor> locals;
    locals.reserve(selected.size());
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (int64_t client : selected) {
      model_->SetParameters(global);
      for (int64_t e = 1; e <= options_.local_iters_e; ++e) {
        StreamId batch_id;
        batch_id.purpose = RngPurpose::kMinibatchSampling;
        batch_id.generation = generation_;
        batch_id.round = static_cast<uint64_t>(round);
        batch_id.client = static_cast<uint64_t>(client);
        batch_id.iteration = static_cast<uint64_t>(e);
        RngStream batch_stream(options_.seed, batch_id);
        const int64_t b = std::min<int64_t>(options_.batch_b,
                                            data_->num_active_samples(client));
        if (b == 0) break;
        std::vector<int64_t> indices =
            client_runtime.SampleMinibatch(client, b, &batch_stream);
        loss_sum += client_runtime.Step(client, indices,
                                        options_.learning_rate);
        ++loss_count;
      }
      locals.push_back(model_->GetParameters());
    }
    comm_stats_.RecordUpload(static_cast<int64_t>(locals.size()),
                             model_params);
    comm_stats_.RecordRound();
    if (!locals.empty()) {
      model_->SetParameters(ServerRuntime::AverageModels(locals));
    }

    RoundRecord record;
    record.round = round;
    record.test_accuracy = EvaluateTestAccuracy();
    record.mean_local_loss =
        loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
    record.recomputation = recomputation_mode_;
    log_.Append(record);
  }
}

void FedAvgTrainer::ResetModel(uint64_t init_seed) {
  model_ = std::make_unique<Model>(spec_, init_seed);
  rounds_completed_ = 0;
}

double FedAvgTrainer::EvaluateTestAccuracy() {
  return model_->EvaluateAccuracy(test_batch_.inputs, test_batch_.labels);
}

}  // namespace fats
