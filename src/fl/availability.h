// Seeded, replayable client-availability schedule for dropout simulation.
//
// Real federated deployments lose clients mid-round. FATS's exactness
// contract (the recorded ν(M,K) selection law and ξ(N,b) mini-batch draws)
// must survive that, so dropout is modeled as a *schedule* — a pure function
// of (availability_seed, round, iteration, client, attempt) — entirely
// separate from the training randomness:
//
//   * Availability draws use RngPurpose::kAvailability, so arming dropout
//     changes no client-selection or mini-batch stream.
//   * A dropped execution is retried by re-running the client's local step
//     from the same frozen stream key; Philox streams are pure functions of
//     their keys, so the retry reproduces the identical mini-batch and model
//     bits. Retries cost communication (re-broadcasts), never randomness.
//   * After `max_retries` failed attempts the execution is forced through
//     (the schedule reports the client available), bounding retry work and
//     guaranteeing the round completes with the full recorded selection.
//
// DroppedAttempts(...) is the number of failed attempts before the first
// available one — the retry count the trainer will incur.

#ifndef FATS_FL_AVAILABILITY_H_
#define FATS_FL_AVAILABILITY_H_

#include <cstdint>

namespace fats {

struct AvailabilityConfig {
  /// Probability a client execution attempt is dropped, in [0, 1).
  /// 0 disables the schedule entirely.
  double dropout_rate = 0.0;
  /// Root seed of the availability streams (independent of the training
  /// seed so fault schedules can vary while training randomness is pinned).
  uint64_t seed = 0;
  /// Attempts after which an execution is forced through.
  int64_t max_retries = 8;
};

class AvailabilitySchedule {
 public:
  explicit AvailabilitySchedule(const AvailabilityConfig& config)
      : config_(config) {}

  bool enabled() const { return config_.dropout_rate > 0.0; }
  int64_t max_retries() const { return config_.max_retries; }

  /// Whether `client`'s execution of iteration `iteration` in `round`
  /// succeeds on attempt `attempt` (0-based). Deterministic; attempts at or
  /// past max_retries always succeed.
  bool Available(int64_t round, int64_t iteration, int64_t client,
                 int64_t attempt) const;

  /// Failed attempts before the first available one, in [0, max_retries].
  int64_t DroppedAttempts(int64_t round, int64_t iteration,
                          int64_t client) const;

 private:
  AvailabilityConfig config_;
};

}  // namespace fats

#endif  // FATS_FL_AVAILABILITY_H_
