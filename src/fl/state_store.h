// Algorithmic-state storage for FATS (the save(·)/load(·) of Algorithm 1).
//
// Two variants, matching §5.3.2 of the paper:
//
//   * StateStore — the full store: client selections P^(t) and global models
//     θ^(t) per round on the server; mini-batches B_k^(t) and local models
//     θ_k^(t) per (iteration, client). Enables re-computation from an
//     arbitrary iteration t_S, including mid-round restarts. Space
//     O(T·max{b,d}) per device / O(R·max{K,d}) at the server.
//
//   * CompactParticipationIndex — the space-optimized scheme: one
//     participation bit per (client, sample) and per client, O(N+d) and
//     O(M+d) words. Unlearning then retrains from scratch on a hit; same
//     asymptotic unlearning time (Theorem 3).
//
// The full store maintains an *inverted participation index* — sample →
// sorted use-iterations and client → sorted participation-rounds — updated
// incrementally by every record mutation (save, substitution overwrite,
// truncation). It subsumes the earliest-use dictionaries of §5.3.1: triage
// ("must we retrain, and from which iteration?") is O(1) per request, and
// enumerating the mini-batches affected by a deletion is O(uses of that
// sample) instead of a scan over all T·clients records. There is no full
// rebuild anywhere: the index is maintained in place, and
// IndicesConsistentWithRecords() audits it against a from-scratch
// reconstruction in tests.

#ifndef FATS_FL_STATE_STORE_H_
#define FATS_FL_STATE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/federated_dataset.h"
#include "tensor/tensor.h"

namespace fats {

class StateStore {
 public:
  StateStore() = default;

  // ----- server-side records -----

  /// Saves the client multiset P drawn at the start of `round` (1-based).
  void SaveClientSelection(int64_t round, std::vector<int64_t> multiset);
  /// nullptr if round has no record.
  const std::vector<int64_t>* GetClientSelection(int64_t round) const;

  /// Saves the aggregated global model at the end of `round`
  /// (round 0 = the initial model).
  void SaveGlobalModel(int64_t round, Tensor params);
  const Tensor* GetGlobalModel(int64_t round) const;

  // ----- client-side records -----

  /// Saves the mini-batch (stable sample indices) used by `client` at
  /// iteration `iter` (1-based).
  void SaveMinibatch(int64_t iter, int64_t client,
                     std::vector<int64_t> indices);
  const std::vector<int64_t>* GetMinibatch(int64_t iter, int64_t client) const;

  /// Saves client `client`'s local model after iteration `iter`.
  void SaveLocalModel(int64_t iter, int64_t client, Tensor params);
  const Tensor* GetLocalModel(int64_t iter, int64_t client) const;

  // ----- O(1) verification / inverted participation index (§5.3.1) -----

  /// Earliest iteration whose recorded mini-batch contains the sample;
  /// -1 if the sample was never used. O(1).
  int64_t EarliestSampleUse(const SampleRef& ref) const;
  /// Earliest round in which the client appears in P; -1 if never. O(1).
  int64_t EarliestClientRound(int64_t client) const;
  /// Ascending iterations whose recorded mini-batch at ref.client contains
  /// ref.index; nullptr when the sample appears in no recorded batch. The
  /// pointer is invalidated by any record mutation.
  const std::vector<int64_t>* SampleUses(const SampleRef& ref) const;
  /// Ascending rounds whose recorded selection contains the client; nullptr
  /// when the client appears in no recorded selection. The pointer is
  /// invalidated by any record mutation.
  const std::vector<int64_t>* ClientRounds(int64_t client) const;

  /// O(records) audit: true iff the incrementally maintained inverted index
  /// equals a from-scratch reconstruction from the current records. Test /
  /// debugging hook; never needed for correctness.
  bool IndicesConsistentWithRecords() const;

  // ----- re-computation support -----

  /// Discards all records from iteration `from_iter` onward: mini-batches
  /// and local models with iter >= from_iter, client selections of rounds
  /// starting at or after from_iter, and global models of rounds ending at
  /// or after from_iter. The inverted index is maintained incrementally —
  /// O(discarded records), not O(all records).
  /// `local_iters_e` is E (round length in iterations).
  void TruncateFromIteration(int64_t from_iter, int64_t local_iters_e);

  // ----- enumeration (checkpointing and diagnostics) -----

  /// Sorted rounds with a recorded client selection.
  std::vector<int64_t> SelectionRounds() const;
  /// Sorted rounds with a recorded global model (includes round 0).
  std::vector<int64_t> GlobalModelRounds() const;
  /// Sorted (iteration, client) keys of recorded mini-batches.
  std::vector<std::pair<int64_t, int64_t>> MinibatchKeys() const;
  /// Sorted (iteration, client) keys of recorded local models.
  std::vector<std::pair<int64_t, int64_t>> LocalModelKeys() const;

  /// Drops every record and index.
  void Clear();

  /// Approximate resident bytes of all records (overheads ablation).
  int64_t ApproxBytes() const;

  int64_t num_minibatch_records() const {
    return static_cast<int64_t>(minibatches_.size());
  }
  int64_t num_local_model_records() const {
    return static_cast<int64_t>(local_models_.size());
  }
  int64_t num_rounds_recorded() const {
    return static_cast<int64_t>(selections_.size());
  }

 private:
  struct IterClientHash {
    size_t operator()(const std::pair<int64_t, int64_t>& key) const {
      uint64_t h = static_cast<uint64_t>(key.first) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(key.second) + 0x7F4A7C15ull + (h << 6);
      return static_cast<size_t>(h);
    }
  };
  struct SampleKeyHash {
    size_t operator()(const std::pair<int64_t, int64_t>& key) const {
      return IterClientHash()(key);
    }
  };
  using IterClient = std::pair<int64_t, int64_t>;
  using SampleKey = std::pair<int64_t, int64_t>;

  // Incremental index maintenance. Every record mutation goes through an
  // Index/Unindex pair; nothing else may touch the index maps (enforced by
  // the fats_analyze store-mutation-bypass rule at the trainer API layer
  // and audited by IndicesConsistentWithRecords()).
  void IndexMinibatch(int64_t iter, int64_t client,
                      const std::vector<int64_t>& indices);
  void UnindexMinibatch(int64_t iter, int64_t client,
                        const std::vector<int64_t>& indices);
  void IndexSelection(int64_t round, const std::vector<int64_t>& multiset);
  void UnindexSelection(int64_t round, const std::vector<int64_t>& multiset);

  std::unordered_map<int64_t, std::vector<int64_t>> selections_;
  std::unordered_map<int64_t, Tensor> global_models_;
  std::unordered_map<IterClient, std::vector<int64_t>, IterClientHash>
      minibatches_;
  std::unordered_map<IterClient, Tensor, IterClientHash> local_models_;
  // The inverted participation index: ascending, duplicate-free posting
  // lists. Keys with empty lists are erased, so find() miss == never used.
  std::unordered_map<SampleKey, std::vector<int64_t>, SampleKeyHash>
      sample_uses_;
  std::unordered_map<int64_t, std::vector<int64_t>> client_rounds_;
};

/// The §5.3.2 space-optimized participation index: O(N) bits per client and
/// O(M) bits at the server. Supports the same O(1) verification; on a hit
/// the unlearner retrains from scratch instead of mid-stream.
class CompactParticipationIndex {
 public:
  CompactParticipationIndex(int64_t num_clients,
                            const std::vector<int64_t>& samples_per_client);

  void RecordClientParticipation(int64_t client);
  void RecordSampleUse(int64_t client, int64_t sample_index);

  bool ClientParticipated(int64_t client) const {
    return client_used_[static_cast<size_t>(client)];
  }
  bool SampleUsed(int64_t client, int64_t sample_index) const {
    return sample_used_[static_cast<size_t>(client)]
                       [static_cast<size_t>(sample_index)];
  }

  void Clear();
  int64_t ApproxBytes() const;

 private:
  std::vector<bool> client_used_;
  std::vector<std::vector<bool>> sample_used_;
};

}  // namespace fats

#endif  // FATS_FL_STATE_STORE_H_
