// Algorithmic-state storage for FATS (the save(·)/load(·) of Algorithm 1).
//
// Two variants, matching §5.3.2 of the paper:
//
//   * StateStore — the full store: client selections P^(t) and global models
//     θ^(t) per round on the server; mini-batches B_k^(t) and local models
//     θ_k^(t) per (iteration, client). Enables re-computation from an
//     arbitrary iteration t_S, including mid-round restarts. Space
//     O(T·max{b,d}) per device / O(R·max{K,d}) at the server.
//
//   * CompactParticipationIndex — the space-optimized scheme: one
//     participation bit per (client, sample) and per client, O(N+d) and
//     O(M+d) words. Unlearning then retrains from scratch on a hit; same
//     asymptotic unlearning time (Theorem 3).
//
// Storage architecture (DESIGN.md §7.8). Record history no longer lives in
// flat resident maps: mini-batches, selections and local models are held in
// tiered state::HistoryLog blocks — decoded at the training head,
// bitwise-losslessly compressed once cold, and (when a spill directory is
// configured) written through state::SegmentSpiller to mmap-backed,
// CRC-framed segment files. Every tier transition is deterministic and
// exact, so replay reads the same bytes whether a block is resident,
// compressed, or reloaded from disk; RSS stays bounded by the block budgets
// instead of O(T·K·b). Durability is unchanged: the journal/checkpoint
// protocol owns crash recovery, and spilled segments are a process-
// ephemeral cache tier that is swept and rebuilt on restart.
//
// The full store maintains an *inverted participation index* — sample →
// sorted use-iterations and client → sorted participation-rounds — updated
// incrementally by every record mutation (save, substitution overwrite,
// truncation). It subsumes the earliest-use dictionaries of §5.3.1: triage
// ("must we retrain, and from which iteration?") is O(1) per request even
// when the records it summarizes are compressed or spilled, and enumerating
// the mini-batches affected by a deletion is O(uses of that sample) instead
// of a scan over all T·clients records. There is no full rebuild anywhere:
// the index is maintained in place, and IndicesConsistentWithRecords()
// audits it against a from-scratch reconstruction in tests.
//
// Pointer lifetime: pointers returned by the Get*/SampleUses/ClientRounds
// accessors are valid until the next record mutation, and — for records in
// cold blocks — until reads of `decoded_cache_blocks` other cold blocks
// evict their cache entry. All trainer/unlearner read patterns touch one
// history block per iteration, so within-iteration pointers are stable.

#ifndef FATS_FL_STATE_STORE_H_
#define FATS_FL_STATE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/federated_dataset.h"
#include "state/history_log.h"
#include "state/segment_spill.h"
#include "tensor/tensor.h"

namespace fats {

/// Storage knobs for the tiered history tiers. All of them are execution
/// knobs: they bound memory, never change recorded values or traces.
struct StateStoreOptions {
  /// Iterations (rounds, for selections) per history block.
  int64_t block_iters = 32;
  /// Decoded, writable blocks kept per log (training head + one reopened
  /// block for substitution writes).
  int64_t max_open_blocks = 2;
  /// Compressed blobs kept resident per log before spilling. Without a
  /// spill dir, sealed blobs always stay resident ("compressed only").
  int64_t resident_sealed_blocks = 8;
  /// Decoded read-cache capacity per log, in blocks.
  int64_t decoded_cache_blocks = 8;
  /// Directory for cold segment files; empty disables spilling. The store
  /// sweeps stale `seg-*` files on open and deletes its own on Clear() /
  /// destruction — segments are cache, not durable state.
  std::string spill_dir;
  /// Segment file rotation size.
  int64_t segment_target_bytes = int64_t{1} << 20;
};

class StateStore {
 public:
  StateStore() : StateStore(StateStoreOptions{}) {}
  explicit StateStore(const StateStoreOptions& options);

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  // ----- server-side records -----

  /// Saves the client multiset P drawn at the start of `round` (1-based).
  void SaveClientSelection(int64_t round, std::vector<int64_t> multiset);
  /// nullptr if round has no record.
  const std::vector<int64_t>* GetClientSelection(int64_t round) const;

  /// Saves the aggregated global model at the end of `round`
  /// (round 0 = the initial model).
  void SaveGlobalModel(int64_t round, Tensor params);
  const Tensor* GetGlobalModel(int64_t round) const;

  // ----- client-side records -----

  /// Saves the mini-batch (stable sample indices) used by `client` at
  /// iteration `iter` (1-based).
  void SaveMinibatch(int64_t iter, int64_t client,
                     std::vector<int64_t> indices);
  const std::vector<int64_t>* GetMinibatch(int64_t iter, int64_t client) const;

  /// Saves client `client`'s local model after iteration `iter`.
  void SaveLocalModel(int64_t iter, int64_t client, Tensor params);
  const Tensor* GetLocalModel(int64_t iter, int64_t client) const;

  // ----- O(1) verification / inverted participation index (§5.3.1) -----

  /// Earliest iteration whose recorded mini-batch contains the sample;
  /// -1 if the sample was never used (including the empty-posting-list
  /// state a truncate-to-zero can leave behind). O(1).
  int64_t EarliestSampleUse(const SampleRef& ref) const;
  /// Earliest round in which the client appears in P; -1 if never. O(1).
  int64_t EarliestClientRound(int64_t client) const;
  /// Ascending iterations whose recorded mini-batch at ref.client contains
  /// ref.index; nullptr when the sample appears in no recorded batch (an
  /// empty posting list reads as nullptr too). The pointer is invalidated
  /// by any record mutation.
  const std::vector<int64_t>* SampleUses(const SampleRef& ref) const;
  /// Ascending rounds whose recorded selection contains the client; nullptr
  /// when the client appears in no recorded selection. The pointer is
  /// invalidated by any record mutation.
  const std::vector<int64_t>* ClientRounds(int64_t client) const;

  /// O(records) audit: true iff the incrementally maintained inverted index
  /// equals a from-scratch reconstruction from the current records (cold
  /// blocks are decoded transiently for the audit). Test / debugging hook;
  /// never needed for correctness.
  bool IndicesConsistentWithRecords() const;

  // ----- re-computation support -----

  /// Discards all records from iteration `from_iter` onward: mini-batches
  /// and local models with iter >= from_iter, client selections of rounds
  /// starting at or after from_iter, and global models of rounds ending at
  /// or after from_iter. The inverted index is maintained incrementally —
  /// O(discarded records), not O(all records) — and spilled blocks release
  /// their segment frames so re-training reuses spill space instead of
  /// leaking it. `local_iters_e` is E (round length in iterations).
  void TruncateFromIteration(int64_t from_iter, int64_t local_iters_e);

  // ----- enumeration (checkpointing and diagnostics) -----

  /// Sorted rounds with a recorded client selection.
  std::vector<int64_t> SelectionRounds() const;
  /// Sorted rounds with a recorded global model (includes round 0).
  std::vector<int64_t> GlobalModelRounds() const;
  /// Sorted (iteration, client) keys of recorded mini-batches.
  std::vector<std::pair<int64_t, int64_t>> MinibatchKeys() const;
  /// Sorted (iteration, client) keys of recorded local models.
  std::vector<std::pair<int64_t, int64_t>> LocalModelKeys() const;

  /// Drops every record and index (and every spilled segment).
  void Clear();

  /// Approximate resident bytes of all records (overheads ablation). Cold
  /// compressed blobs count at compressed size; spilled payloads are
  /// reported by SpilledBytes(), not here.
  int64_t ApproxBytes() const;
  /// Payload bytes currently parked in segment files on disk.
  int64_t SpilledBytes() const;

  int64_t num_minibatch_records() const { return minibatches_.size(); }
  int64_t num_local_model_records() const { return local_models_.size(); }
  int64_t num_rounds_recorded() const { return selections_.size(); }

  const StateStoreOptions& options() const { return options_; }
  /// nullptr when spilling is disabled; stats hook for tests/benchmarks.
  const state::SegmentSpiller* spiller() const { return spiller_.get(); }

 private:
  struct SampleKeyHash {
    size_t operator()(const std::pair<int64_t, int64_t>& key) const {
      uint64_t h = static_cast<uint64_t>(key.first) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(key.second) + 0x7F4A7C15ull + (h << 6);
      return static_cast<size_t>(h);
    }
  };
  using SampleKey = std::pair<int64_t, int64_t>;

  // Incremental index maintenance. Every record mutation goes through an
  // Index/Unindex pair; nothing else may touch the index maps (enforced by
  // the fats_analyze store-mutation-bypass rule at the trainer API layer
  // and audited by IndicesConsistentWithRecords()).
  void IndexMinibatch(int64_t iter, int64_t client,
                      const std::vector<int64_t>& indices);
  void UnindexMinibatch(int64_t iter, int64_t client,
                        const std::vector<int64_t>& indices);
  void IndexSelection(int64_t round, const std::vector<int64_t>& multiset);
  void UnindexSelection(int64_t round, const std::vector<int64_t>& multiset);

  StateStoreOptions options_;
  // Destruction order matters: the logs release their spill refs in their
  // destructors, so the spiller must outlive them (declared first).
  std::unique_ptr<state::SegmentSpiller> spiller_;
  // Tiered record history (mutable: cold reads fill a decoded cache; record
  // values are unaffected). Selections use key (round, 0).
  mutable state::IndexHistoryLog minibatches_;
  mutable state::IndexHistoryLog selections_;
  mutable state::TensorHistoryLog local_models_;
  // Global models stay resident: O(R·d) server-side state, read every
  // replay iteration.
  std::map<int64_t, Tensor> global_models_;
  // The inverted participation index: ascending, duplicate-free posting
  // lists. Keys with empty lists are erased, so find() miss == never used.
  // This index is the sanctioned resident summary of the record history —
  // O(1) triage is the point of §5.3.1 — and is exempt from the
  // resident-history rule that pushes record storage into src/state.
  std::unordered_map<SampleKey, std::vector<int64_t>, SampleKeyHash>
      sample_uses_;  // fats-lint: allow(resident-history)
  // fats-lint: allow(resident-history)
  std::unordered_map<int64_t, std::vector<int64_t>> client_rounds_;
};

/// The §5.3.2 space-optimized participation index: O(N) bits per client and
/// O(M) bits at the server. Supports the same O(1) verification; on a hit
/// the unlearner retrains from scratch instead of mid-stream.
class CompactParticipationIndex {
 public:
  CompactParticipationIndex(int64_t num_clients,
                            const std::vector<int64_t>& samples_per_client);

  void RecordClientParticipation(int64_t client);
  void RecordSampleUse(int64_t client, int64_t sample_index);

  bool ClientParticipated(int64_t client) const {
    return client_used_[static_cast<size_t>(client)];
  }
  bool SampleUsed(int64_t client, int64_t sample_index) const {
    return sample_used_[static_cast<size_t>(client)]
                       [static_cast<size_t>(sample_index)];
  }

  void Clear();
  int64_t ApproxBytes() const;

 private:
  std::vector<bool> client_used_;
  std::vector<std::vector<bool>> sample_used_;
};

}  // namespace fats

#endif  // FATS_FL_STATE_STORE_H_
