// Per-round training history shared by all trainers.

#ifndef FATS_FL_TRAIN_LOG_H_
#define FATS_FL_TRAIN_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fats {

struct RoundRecord {
  int64_t round = 0;          // global round counter (1-based)
  double test_accuracy = 0.0;
  double mean_local_loss = 0.0;
  /// True for rounds that were (re-)executed as part of unlearning
  /// re-computation rather than the original training pass.
  bool recomputation = false;
};

class TrainLog {
 public:
  void Append(RoundRecord record) { records_.push_back(record); }
  const std::vector<RoundRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  /// Latest recorded test accuracy (0 if none).
  double LastAccuracy() const {
    return records_.empty() ? 0.0 : records_.back().test_accuracy;
  }

  /// Number of trailing records flagged as re-computation (the unlearning
  /// cost in rounds for the most recent request).
  int64_t TrailingRecomputationRounds() const;

  /// Rounds needed (counting from `from_index` in the record list) until
  /// test accuracy first reaches `target`. Returns -1 if never reached.
  int64_t RoundsToReach(double target, size_t from_index) const;

  std::string ToCsv() const;

  /// Writes the CSV rendering to `path`, propagating write/flush failures
  /// (a full disk surfaces as kIoError, not a silently truncated file).
  Status WriteCsvFile(const std::string& path) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace fats

#endif  // FATS_FL_TRAIN_LOG_H_
