#include "fl/state_store.h"

#include <algorithm>

#include "util/logging.h"

namespace fats {
namespace {

// Sorted key enumeration for the unordered record maps.  Hash-order
// traversal never escapes this helper: every public enumeration API returns
// keys in sorted order, so checkpointing and diagnostics are replay-stable.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  // Order-insensitive key collection, sorted below.
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, value] : m) {
    (void)value;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Sorted-unique posting-list mutations. Postings are inserted at their
// sorted position (an append during forward training, a binary-searched
// insert during substitution) and erased in place; an emptied list removes
// its key so a find() miss keeps meaning "never used".
void InsertPosting(std::vector<int64_t>* postings, int64_t value) {
  auto it = std::lower_bound(postings->begin(), postings->end(), value);
  if (it != postings->end() && *it == value) return;
  postings->insert(it, value);
}

// Returns true when the list emptied.
bool ErasePosting(std::vector<int64_t>* postings, int64_t value) {
  auto it = std::lower_bound(postings->begin(), postings->end(), value);
  if (it != postings->end() && *it == value) postings->erase(it);
  return postings->empty();
}

}  // namespace

void StateStore::IndexSelection(int64_t round,
                                const std::vector<int64_t>& multiset) {
  for (int64_t k : multiset) InsertPosting(&client_rounds_[k], round);
}

void StateStore::UnindexSelection(int64_t round,
                                  const std::vector<int64_t>& multiset) {
  for (int64_t k : multiset) {
    auto it = client_rounds_.find(k);
    // A client repeated in the multiset unindexes once; later repeats miss.
    if (it == client_rounds_.end()) continue;
    if (ErasePosting(&it->second, round)) client_rounds_.erase(it);
  }
}

void StateStore::SaveClientSelection(int64_t round,
                                     std::vector<int64_t> multiset) {
  std::vector<int64_t>& slot = selections_[round];
  if (!slot.empty()) UnindexSelection(round, slot);  // re-drawn round
  IndexSelection(round, multiset);
  slot = std::move(multiset);
}

const std::vector<int64_t>* StateStore::GetClientSelection(
    int64_t round) const {
  auto it = selections_.find(round);
  return it == selections_.end() ? nullptr : &it->second;
}

void StateStore::SaveGlobalModel(int64_t round, Tensor params) {
  global_models_[round] = std::move(params);
}

const Tensor* StateStore::GetGlobalModel(int64_t round) const {
  auto it = global_models_.find(round);
  return it == global_models_.end() ? nullptr : &it->second;
}

void StateStore::IndexMinibatch(int64_t iter, int64_t client,
                                const std::vector<int64_t>& indices) {
  for (int64_t i : indices) InsertPosting(&sample_uses_[{client, i}], iter);
}

void StateStore::UnindexMinibatch(int64_t iter, int64_t client,
                                  const std::vector<int64_t>& indices) {
  for (int64_t i : indices) {
    auto it = sample_uses_.find({client, i});
    if (it == sample_uses_.end()) continue;
    if (ErasePosting(&it->second, iter)) sample_uses_.erase(it);
  }
}

void StateStore::SaveMinibatch(int64_t iter, int64_t client,
                               std::vector<int64_t> indices) {
  std::vector<int64_t>& slot = minibatches_[{iter, client}];
  if (!slot.empty()) UnindexMinibatch(iter, client, slot);  // substitution
  IndexMinibatch(iter, client, indices);
  slot = std::move(indices);
}

const std::vector<int64_t>* StateStore::GetMinibatch(int64_t iter,
                                                     int64_t client) const {
  auto it = minibatches_.find({iter, client});
  return it == minibatches_.end() ? nullptr : &it->second;
}

void StateStore::SaveLocalModel(int64_t iter, int64_t client, Tensor params) {
  local_models_[{iter, client}] = std::move(params);
}

const Tensor* StateStore::GetLocalModel(int64_t iter, int64_t client) const {
  auto it = local_models_.find({iter, client});
  return it == local_models_.end() ? nullptr : &it->second;
}

int64_t StateStore::EarliestSampleUse(const SampleRef& ref) const {
  const std::vector<int64_t>* uses = SampleUses(ref);
  return uses == nullptr ? -1 : uses->front();
}

int64_t StateStore::EarliestClientRound(int64_t client) const {
  const std::vector<int64_t>* rounds = ClientRounds(client);
  return rounds == nullptr ? -1 : rounds->front();
}

const std::vector<int64_t>* StateStore::SampleUses(const SampleRef& ref) const {
  auto it = sample_uses_.find({ref.client, ref.index});
  return it == sample_uses_.end() ? nullptr : &it->second;
}

const std::vector<int64_t>* StateStore::ClientRounds(int64_t client) const {
  auto it = client_rounds_.find(client);
  return it == client_rounds_.end() ? nullptr : &it->second;
}

void StateStore::TruncateFromIteration(int64_t from_iter,
                                       int64_t local_iters_e) {
  FATS_CHECK_GE(from_iter, 1);
  FATS_CHECK_GE(local_iters_e, 1);
  // Round r covers iterations (r-1)E+1 .. rE; its selection happens at
  // (r-1)E+1 and its global model is saved at rE.  The erase-if sweeps below
  // keep the same surviving set whatever the traversal order, and every
  // erased record unindexes its own postings — the cost is O(discarded),
  // not O(all records), and the inverted index never needs a rebuild.
  // fats-lint: allow(unordered-iteration)
  for (auto it = minibatches_.begin(); it != minibatches_.end();) {
    if (it->first.first >= from_iter) {
      UnindexMinibatch(it->first.first, it->first.second, it->second);
      it = minibatches_.erase(it);
    } else {
      ++it;
    }
  }
  // fats-lint: allow(unordered-iteration)
  for (auto it = local_models_.begin(); it != local_models_.end();) {
    it = (it->first.first >= from_iter) ? local_models_.erase(it)
                                        : std::next(it);
  }
  // fats-lint: allow(unordered-iteration)
  for (auto it = selections_.begin(); it != selections_.end();) {
    const int64_t round_start = (it->first - 1) * local_iters_e + 1;
    if (round_start >= from_iter) {
      UnindexSelection(it->first, it->second);
      it = selections_.erase(it);
    } else {
      ++it;
    }
  }
  // fats-lint: allow(unordered-iteration)
  for (auto it = global_models_.begin(); it != global_models_.end();) {
    const int64_t round_end = it->first * local_iters_e;  // round 0 -> 0
    it = (it->first != 0 && round_end >= from_iter) ? global_models_.erase(it)
                                                    : std::next(it);
  }
}

bool StateStore::IndicesConsistentWithRecords() const {
  // Reconstruct both posting maps from the records and compare. Posting
  // lists are sorted and duplicate-free, so equality is well-defined
  // whatever order the reconstruction visits records in.
  std::unordered_map<SampleKey, std::vector<int64_t>, SampleKeyHash> uses;
  std::unordered_map<int64_t, std::vector<int64_t>> rounds;
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, indices] : minibatches_) {
    for (int64_t i : indices) {
      InsertPosting(&uses[{key.second, i}], key.first);
    }
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [round, multiset] : selections_) {
    for (int64_t k : multiset) InsertPosting(&rounds[k], round);
  }
  return uses == sample_uses_ && rounds == client_rounds_;
}

std::vector<int64_t> StateStore::SelectionRounds() const {
  return SortedKeys(selections_);
}

std::vector<int64_t> StateStore::GlobalModelRounds() const {
  return SortedKeys(global_models_);
}

std::vector<std::pair<int64_t, int64_t>> StateStore::MinibatchKeys() const {
  return SortedKeys(minibatches_);
}

std::vector<std::pair<int64_t, int64_t>> StateStore::LocalModelKeys() const {
  return SortedKeys(local_models_);
}

void StateStore::Clear() {
  selections_.clear();
  global_models_.clear();
  minibatches_.clear();
  local_models_.clear();
  sample_uses_.clear();
  client_rounds_.clear();
}

int64_t StateStore::ApproxBytes() const {
  // Integer byte counts commute; traversal order cannot change the sum.
  int64_t bytes = 0;
  // fats-lint: allow(unordered-iteration)
  for (const auto& [round, multiset] : selections_) {
    (void)round;
    bytes += 8 + static_cast<int64_t>(multiset.size()) * 8;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [round, params] : global_models_) {
    (void)round;
    bytes += 8 + params.size() * 4;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, indices] : minibatches_) {
    (void)key;
    bytes += 16 + static_cast<int64_t>(indices.size()) * 8;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, params] : local_models_) {
    (void)key;
    bytes += 16 + params.size() * 4;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, uses] : sample_uses_) {
    (void)key;
    bytes += 16 + static_cast<int64_t>(uses.size()) * 8;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [client, rounds] : client_rounds_) {
    (void)client;
    bytes += 8 + static_cast<int64_t>(rounds.size()) * 8;
  }
  return bytes;
}

CompactParticipationIndex::CompactParticipationIndex(
    int64_t num_clients, const std::vector<int64_t>& samples_per_client)
    : client_used_(static_cast<size_t>(num_clients), false) {
  FATS_CHECK_EQ(static_cast<int64_t>(samples_per_client.size()), num_clients);
  sample_used_.reserve(static_cast<size_t>(num_clients));
  for (int64_t n : samples_per_client) {
    sample_used_.emplace_back(static_cast<size_t>(n), false);
  }
}

void CompactParticipationIndex::RecordClientParticipation(int64_t client) {
  client_used_[static_cast<size_t>(client)] = true;
}

void CompactParticipationIndex::RecordSampleUse(int64_t client,
                                                int64_t sample_index) {
  sample_used_[static_cast<size_t>(client)][static_cast<size_t>(sample_index)] =
      true;
}

void CompactParticipationIndex::Clear() {
  std::fill(client_used_.begin(), client_used_.end(), false);
  for (std::vector<bool>& v : sample_used_) {
    std::fill(v.begin(), v.end(), false);
  }
}

int64_t CompactParticipationIndex::ApproxBytes() const {
  int64_t bits = static_cast<int64_t>(client_used_.size());
  for (const std::vector<bool>& v : sample_used_) {
    bits += static_cast<int64_t>(v.size());
  }
  return (bits + 7) / 8;
}

}  // namespace fats
