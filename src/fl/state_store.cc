#include "fl/state_store.h"

#include <algorithm>

#include "util/logging.h"

namespace fats {
namespace {

// Sorted-unique posting-list mutations. Postings are inserted at their
// sorted position (an append during forward training, a binary-searched
// insert during substitution) and erased in place; an emptied list removes
// its key so a find() miss keeps meaning "never used".
void InsertPosting(std::vector<int64_t>* postings, int64_t value) {
  auto it = std::lower_bound(postings->begin(), postings->end(), value);
  if (it != postings->end() && *it == value) return;
  postings->insert(it, value);
}

// Returns true when the list emptied.
bool ErasePosting(std::vector<int64_t>* postings, int64_t value) {
  auto it = std::lower_bound(postings->begin(), postings->end(), value);
  if (it != postings->end() && *it == value) postings->erase(it);
  return postings->empty();
}

state::HistoryLogOptions LogOptions(const StateStoreOptions& options,
                                    state::SegmentSpiller* spiller) {
  state::HistoryLogOptions log;
  log.block_span = options.block_iters;
  log.max_open_blocks = options.max_open_blocks;
  log.resident_sealed_blocks = options.resident_sealed_blocks;
  log.decoded_cache_blocks = options.decoded_cache_blocks;
  log.spiller = spiller;
  return log;
}

std::unique_ptr<state::SegmentSpiller> MakeSpiller(
    const StateStoreOptions& options) {
  if (options.spill_dir.empty()) return nullptr;
  state::SegmentSpillerOptions spill;
  spill.dir = options.spill_dir;
  spill.segment_target_bytes = options.segment_target_bytes;
  return std::make_unique<state::SegmentSpiller>(spill);
}

}  // namespace

StateStore::StateStore(const StateStoreOptions& options)
    : options_(options),
      spiller_(MakeSpiller(options_)),
      minibatches_(LogOptions(options_, spiller_.get())),
      selections_(LogOptions(options_, spiller_.get())),
      local_models_(LogOptions(options_, spiller_.get())) {
  if (spiller_ != nullptr) {
    FATS_CHECK_OK(spiller_->Open());
  }
}

void StateStore::IndexSelection(int64_t round,
                                const std::vector<int64_t>& multiset) {
  for (int64_t k : multiset) InsertPosting(&client_rounds_[k], round);
}

void StateStore::UnindexSelection(int64_t round,
                                  const std::vector<int64_t>& multiset) {
  for (int64_t k : multiset) {
    auto it = client_rounds_.find(k);
    // A client repeated in the multiset unindexes once; later repeats miss.
    if (it == client_rounds_.end()) continue;
    if (ErasePosting(&it->second, round)) client_rounds_.erase(it);
  }
}

void StateStore::SaveClientSelection(int64_t round,
                                     std::vector<int64_t> multiset) {
  std::vector<int64_t> replaced;
  const bool re_drawn =
      selections_.Save(round, 0, std::move(multiset), &replaced);
  if (re_drawn) UnindexSelection(round, replaced);
  // The stored pointer is stable here: IndexSelection touches only the
  // posting maps, never the log.
  IndexSelection(round, *selections_.Get(round, 0));
}

const std::vector<int64_t>* StateStore::GetClientSelection(
    int64_t round) const {
  return selections_.Get(round, 0);
}

void StateStore::SaveGlobalModel(int64_t round, Tensor params) {
  global_models_[round] = std::move(params);
}

const Tensor* StateStore::GetGlobalModel(int64_t round) const {
  auto it = global_models_.find(round);
  return it == global_models_.end() ? nullptr : &it->second;
}

void StateStore::IndexMinibatch(int64_t iter, int64_t client,
                                const std::vector<int64_t>& indices) {
  for (int64_t i : indices) InsertPosting(&sample_uses_[{client, i}], iter);
}

void StateStore::UnindexMinibatch(int64_t iter, int64_t client,
                                  const std::vector<int64_t>& indices) {
  for (int64_t i : indices) {
    auto it = sample_uses_.find({client, i});
    if (it == sample_uses_.end()) continue;
    if (ErasePosting(&it->second, iter)) sample_uses_.erase(it);
  }
}

void StateStore::SaveMinibatch(int64_t iter, int64_t client,
                               std::vector<int64_t> indices) {
  std::vector<int64_t> replaced;
  const bool substituted =
      minibatches_.Save(iter, client, std::move(indices), &replaced);
  if (substituted) UnindexMinibatch(iter, client, replaced);
  IndexMinibatch(iter, client, *minibatches_.Get(iter, client));
}

const std::vector<int64_t>* StateStore::GetMinibatch(int64_t iter,
                                                     int64_t client) const {
  return minibatches_.Get(iter, client);
}

void StateStore::SaveLocalModel(int64_t iter, int64_t client, Tensor params) {
  local_models_.Save(iter, client, std::move(params));
}

const Tensor* StateStore::GetLocalModel(int64_t iter, int64_t client) const {
  return local_models_.Get(iter, client);
}

int64_t StateStore::EarliestSampleUse(const SampleRef& ref) const {
  const std::vector<int64_t>* uses = SampleUses(ref);
  return uses == nullptr ? -1 : uses->front();
}

int64_t StateStore::EarliestClientRound(int64_t client) const {
  const std::vector<int64_t>* rounds = ClientRounds(client);
  return rounds == nullptr ? -1 : rounds->front();
}

const std::vector<int64_t>* StateStore::SampleUses(const SampleRef& ref) const {
  auto it = sample_uses_.find({ref.client, ref.index});
  // The emptied-list-erased invariant makes an empty list unreachable in
  // normal operation, but a truncate-to-zero must read as "never used"
  // rather than hand out a list whose front() would be UB.
  if (it == sample_uses_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

const std::vector<int64_t>* StateStore::ClientRounds(int64_t client) const {
  auto it = client_rounds_.find(client);
  if (it == client_rounds_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

void StateStore::TruncateFromIteration(int64_t from_iter,
                                       int64_t local_iters_e) {
  FATS_CHECK_GE(from_iter, 1);
  FATS_CHECK_GE(local_iters_e, 1);
  // Round r covers iterations (r-1)E+1 .. rE; its selection happens at
  // (r-1)E+1 and its global model is saved at rE. Every erased record
  // unindexes its own postings through the log's on_erase hook — the cost
  // is O(discarded), not O(all records), and the inverted index never
  // needs a rebuild. Whole discarded blocks release their spill frames so
  // re-training to the same iteration reuses segment files.
  minibatches_.TruncateFrom(
      from_iter, [this](int64_t iter, int64_t client,
                        const std::vector<int64_t>& indices) {
        UnindexMinibatch(iter, client, indices);
      });
  local_models_.TruncateFrom(from_iter, {});
  // Smallest round whose start (r-1)E+1 is >= from_iter.
  const int64_t round_from = (from_iter + local_iters_e - 2) / local_iters_e + 1;
  selections_.TruncateFrom(
      round_from, [this](int64_t round, int64_t unused,
                         const std::vector<int64_t>& multiset) {
        (void)unused;
        UnindexSelection(round, multiset);
      });
  // Smallest round whose end rE is >= from_iter; round 0 is always kept.
  const int64_t global_from =
      std::max<int64_t>(1, (from_iter + local_iters_e - 1) / local_iters_e);
  global_models_.erase(global_models_.lower_bound(global_from),
                       global_models_.end());
}

bool StateStore::IndicesConsistentWithRecords() const {
  // Reconstruct both posting maps from the records and compare. Posting
  // lists are sorted and duplicate-free, so equality is well-defined
  // whatever order the reconstruction visits records in; cold blocks are
  // decoded transiently by ForEach.
  // Transient audit rebuild, released on return.
  // fats-lint: allow(resident-history)
  std::unordered_map<SampleKey, std::vector<int64_t>, SampleKeyHash> uses;
  // fats-lint: allow(resident-history)
  std::unordered_map<int64_t, std::vector<int64_t>> rounds;
  minibatches_.ForEach(
      [&uses](int64_t iter, int64_t client,
              const std::vector<int64_t>& indices) {
        for (int64_t i : indices) InsertPosting(&uses[{client, i}], iter);
      });
  selections_.ForEach([&rounds](int64_t round, int64_t unused,
                                const std::vector<int64_t>& multiset) {
    (void)unused;
    for (int64_t k : multiset) InsertPosting(&rounds[k], round);
  });
  return uses == sample_uses_ && rounds == client_rounds_;
}

std::vector<int64_t> StateStore::SelectionRounds() const {
  std::vector<int64_t> rounds;
  rounds.reserve(static_cast<size_t>(selections_.size()));
  for (const auto& [round, unused] : selections_.Keys()) {
    (void)unused;
    rounds.push_back(round);
  }
  return rounds;
}

std::vector<int64_t> StateStore::GlobalModelRounds() const {
  std::vector<int64_t> rounds;
  rounds.reserve(global_models_.size());
  for (const auto& [round, params] : global_models_) {
    (void)params;
    rounds.push_back(round);
  }
  return rounds;
}

std::vector<std::pair<int64_t, int64_t>> StateStore::MinibatchKeys() const {
  return minibatches_.Keys();
}

std::vector<std::pair<int64_t, int64_t>> StateStore::LocalModelKeys() const {
  return local_models_.Keys();
}

void StateStore::Clear() {
  minibatches_.Clear();
  selections_.Clear();
  local_models_.Clear();
  global_models_.clear();
  sample_uses_.clear();
  client_rounds_.clear();
}

int64_t StateStore::ApproxBytes() const {
  // Integer byte counts commute; traversal order cannot change the sum.
  int64_t bytes = minibatches_.ApproxResidentBytes() +
                  selections_.ApproxResidentBytes() +
                  local_models_.ApproxResidentBytes();
  for (const auto& [round, params] : global_models_) {
    (void)round;
    bytes += 8 + params.size() * 4;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, uses] : sample_uses_) {
    (void)key;
    bytes += 16 + static_cast<int64_t>(uses.size()) * 8;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [client, rounds] : client_rounds_) {
    (void)client;
    bytes += 8 + static_cast<int64_t>(rounds.size()) * 8;
  }
  return bytes;
}

int64_t StateStore::SpilledBytes() const {
  return spiller_ == nullptr ? 0 : spiller_->live_payload_bytes();
}

CompactParticipationIndex::CompactParticipationIndex(
    int64_t num_clients, const std::vector<int64_t>& samples_per_client)
    : client_used_(static_cast<size_t>(num_clients), false) {
  FATS_CHECK_EQ(static_cast<int64_t>(samples_per_client.size()), num_clients);
  sample_used_.reserve(static_cast<size_t>(num_clients));
  for (int64_t n : samples_per_client) {
    sample_used_.emplace_back(static_cast<size_t>(n), false);
  }
}

void CompactParticipationIndex::RecordClientParticipation(int64_t client) {
  client_used_[static_cast<size_t>(client)] = true;
}

void CompactParticipationIndex::RecordSampleUse(int64_t client,
                                                int64_t sample_index) {
  sample_used_[static_cast<size_t>(client)][static_cast<size_t>(sample_index)] =
      true;
}

void CompactParticipationIndex::Clear() {
  std::fill(client_used_.begin(), client_used_.end(), false);
  for (std::vector<bool>& v : sample_used_) {
    std::fill(v.begin(), v.end(), false);
  }
}

int64_t CompactParticipationIndex::ApproxBytes() const {
  int64_t bits = static_cast<int64_t>(client_used_.size());
  for (const std::vector<bool>& v : sample_used_) {
    bits += static_cast<int64_t>(v.size());
  }
  return (bits + 7) / 8;
}

}  // namespace fats
