#include "fl/state_store.h"

#include <algorithm>

#include "util/logging.h"

namespace fats {
namespace {

// Sorted key enumeration for the unordered record maps.  Hash-order
// traversal never escapes this helper: every public enumeration API returns
// keys in sorted order, so checkpointing and diagnostics are replay-stable.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  // Order-insensitive key collection, sorted below.
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, value] : m) {
    (void)value;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void StateStore::SaveClientSelection(int64_t round,
                                     std::vector<int64_t> multiset) {
  for (int64_t k : multiset) {
    auto it = earliest_client_round_.find(k);
    if (it == earliest_client_round_.end() || round < it->second) {
      earliest_client_round_[k] = round;
    }
  }
  selections_[round] = std::move(multiset);
}

const std::vector<int64_t>* StateStore::GetClientSelection(
    int64_t round) const {
  auto it = selections_.find(round);
  return it == selections_.end() ? nullptr : &it->second;
}

void StateStore::SaveGlobalModel(int64_t round, Tensor params) {
  global_models_[round] = std::move(params);
}

const Tensor* StateStore::GetGlobalModel(int64_t round) const {
  auto it = global_models_.find(round);
  return it == global_models_.end() ? nullptr : &it->second;
}

void StateStore::IndexMinibatch(int64_t iter, int64_t client,
                                const std::vector<int64_t>& indices) {
  for (int64_t i : indices) {
    SampleKey key{client, i};
    auto it = earliest_sample_use_.find(key);
    if (it == earliest_sample_use_.end() || iter < it->second) {
      earliest_sample_use_[key] = iter;
    }
  }
}

void StateStore::SaveMinibatch(int64_t iter, int64_t client,
                               std::vector<int64_t> indices) {
  IndexMinibatch(iter, client, indices);
  minibatches_[{iter, client}] = std::move(indices);
}

const std::vector<int64_t>* StateStore::GetMinibatch(int64_t iter,
                                                     int64_t client) const {
  auto it = minibatches_.find({iter, client});
  return it == minibatches_.end() ? nullptr : &it->second;
}

void StateStore::SaveLocalModel(int64_t iter, int64_t client, Tensor params) {
  local_models_[{iter, client}] = std::move(params);
}

const Tensor* StateStore::GetLocalModel(int64_t iter, int64_t client) const {
  auto it = local_models_.find({iter, client});
  return it == local_models_.end() ? nullptr : &it->second;
}

int64_t StateStore::EarliestSampleUse(const SampleRef& ref) const {
  auto it = earliest_sample_use_.find({ref.client, ref.index});
  return it == earliest_sample_use_.end() ? -1 : it->second;
}

int64_t StateStore::EarliestClientRound(int64_t client) const {
  auto it = earliest_client_round_.find(client);
  return it == earliest_client_round_.end() ? -1 : it->second;
}

void StateStore::TruncateFromIteration(int64_t from_iter,
                                       int64_t local_iters_e) {
  FATS_CHECK_GE(from_iter, 1);
  FATS_CHECK_GE(local_iters_e, 1);
  // Round r covers iterations (r-1)E+1 .. rE; its selection happens at
  // (r-1)E+1 and its global model is saved at rE.  The erase-if sweeps below
  // keep the same surviving set whatever the traversal order.
  // fats-lint: allow(unordered-iteration)
  for (auto it = minibatches_.begin(); it != minibatches_.end();) {
    it = (it->first.first >= from_iter) ? minibatches_.erase(it)
                                        : std::next(it);
  }
  // fats-lint: allow(unordered-iteration)
  for (auto it = local_models_.begin(); it != local_models_.end();) {
    it = (it->first.first >= from_iter) ? local_models_.erase(it)
                                        : std::next(it);
  }
  // fats-lint: allow(unordered-iteration)
  for (auto it = selections_.begin(); it != selections_.end();) {
    const int64_t round_start = (it->first - 1) * local_iters_e + 1;
    it = (round_start >= from_iter) ? selections_.erase(it) : std::next(it);
  }
  // fats-lint: allow(unordered-iteration)
  for (auto it = global_models_.begin(); it != global_models_.end();) {
    const int64_t round_end = it->first * local_iters_e;  // round 0 -> 0
    it = (it->first != 0 && round_end >= from_iter) ? global_models_.erase(it)
                                                    : std::next(it);
  }
  RebuildEarliestIndices();
}

void StateStore::RebuildEarliestIndices() {
  earliest_sample_use_.clear();
  earliest_client_round_.clear();
  // The rebuilt indices hold per-key minima, the same whatever the
  // traversal order (no float accumulation involved).
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, indices] : minibatches_) {
    IndexMinibatch(key.first, key.second, indices);
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [round, multiset] : selections_) {
    for (int64_t k : multiset) {
      auto it = earliest_client_round_.find(k);
      if (it == earliest_client_round_.end() || round < it->second) {
        earliest_client_round_[k] = round;
      }
    }
  }
}

std::vector<int64_t> StateStore::SelectionRounds() const {
  return SortedKeys(selections_);
}

std::vector<int64_t> StateStore::GlobalModelRounds() const {
  return SortedKeys(global_models_);
}

std::vector<std::pair<int64_t, int64_t>> StateStore::MinibatchKeys() const {
  return SortedKeys(minibatches_);
}

std::vector<std::pair<int64_t, int64_t>> StateStore::LocalModelKeys() const {
  return SortedKeys(local_models_);
}

void StateStore::Clear() {
  selections_.clear();
  global_models_.clear();
  minibatches_.clear();
  local_models_.clear();
  earliest_sample_use_.clear();
  earliest_client_round_.clear();
}

int64_t StateStore::ApproxBytes() const {
  // Integer byte counts commute; traversal order cannot change the sum.
  int64_t bytes = 0;
  // fats-lint: allow(unordered-iteration)
  for (const auto& [round, multiset] : selections_) {
    (void)round;
    bytes += 8 + static_cast<int64_t>(multiset.size()) * 8;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [round, params] : global_models_) {
    (void)round;
    bytes += 8 + params.size() * 4;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, indices] : minibatches_) {
    (void)key;
    bytes += 16 + static_cast<int64_t>(indices.size()) * 8;
  }
  // fats-lint: allow(unordered-iteration)
  for (const auto& [key, params] : local_models_) {
    (void)key;
    bytes += 16 + params.size() * 4;
  }
  bytes += static_cast<int64_t>(earliest_sample_use_.size()) * 24;
  bytes += static_cast<int64_t>(earliest_client_round_.size()) * 16;
  return bytes;
}

CompactParticipationIndex::CompactParticipationIndex(
    int64_t num_clients, const std::vector<int64_t>& samples_per_client)
    : client_used_(static_cast<size_t>(num_clients), false) {
  FATS_CHECK_EQ(static_cast<int64_t>(samples_per_client.size()), num_clients);
  sample_used_.reserve(static_cast<size_t>(num_clients));
  for (int64_t n : samples_per_client) {
    sample_used_.emplace_back(static_cast<size_t>(n), false);
  }
}

void CompactParticipationIndex::RecordClientParticipation(int64_t client) {
  client_used_[static_cast<size_t>(client)] = true;
}

void CompactParticipationIndex::RecordSampleUse(int64_t client,
                                                int64_t sample_index) {
  sample_used_[static_cast<size_t>(client)][static_cast<size_t>(sample_index)] =
      true;
}

void CompactParticipationIndex::Clear() {
  std::fill(client_used_.begin(), client_used_.end(), false);
  for (std::vector<bool>& v : sample_used_) {
    std::fill(v.begin(), v.end(), false);
  }
}

int64_t CompactParticipationIndex::ApproxBytes() const {
  int64_t bits = static_cast<int64_t>(client_used_.size());
  for (const std::vector<bool>& v : sample_used_) {
    bits += static_cast<int64_t>(v.size());
  }
  return (bits + 7) / 8;
}

}  // namespace fats
