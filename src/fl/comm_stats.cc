#include "fl/comm_stats.h"

#include "util/string_util.h"

namespace fats {

std::string CommStats::ToString() const {
  return StrFormat(
      "CommStats(rounds=%lld, down=%lld B, up=%lld B, msgs=%lld)",
      (long long)rounds_, (long long)downlink_bytes_, (long long)uplink_bytes_,
      (long long)messages_);
}

}  // namespace fats
