#include "fl/comm_stats.h"

#include "util/string_util.h"

namespace fats {

std::string CommStats::ToString() const {
  return StrFormat(
      "CommStats(rounds=%lld, down=%lld B/%lld msgs, up=%lld B/%lld msgs, "
      "retransmit=%lld B/%lld frames)",
      (long long)counters_.rounds, (long long)counters_.downlink_bytes,
      (long long)counters_.downlink_messages,
      (long long)counters_.uplink_bytes, (long long)counters_.uplink_messages,
      (long long)counters_.retransmit_bytes, (long long)counters_.retransmits);
}

}  // namespace fats
