#include "fl/availability.h"

#include "rng/rng_stream.h"

namespace fats {

bool AvailabilitySchedule::Available(int64_t round, int64_t iteration,
                                     int64_t client, int64_t attempt) const {
  if (!enabled()) return true;
  if (attempt >= config_.max_retries) return true;
  StreamId id;
  id.purpose = RngPurpose::kAvailability;
  // The attempt rides in the generation field: each retry gets its own
  // stream, and none of them collides with a training stream (different
  // purpose).
  id.generation = static_cast<uint64_t>(attempt);
  id.round = static_cast<uint64_t>(round);
  id.client = static_cast<uint64_t>(client);
  id.iteration = static_cast<uint64_t>(iteration);
  RngStream stream(config_.seed, id);
  return !stream.NextBernoulli(config_.dropout_rate);
}

int64_t AvailabilitySchedule::DroppedAttempts(int64_t round, int64_t iteration,
                                              int64_t client) const {
  int64_t attempt = 0;
  while (!Available(round, iteration, client, attempt)) ++attempt;
  return attempt;
}

}  // namespace fats
