// Deterministic parallel execution of per-round client updates.
//
// The FATS/FedAvg trainers run the local-SGD work of each sampled client on
// one shared Model. ParallelClientRunner lifts that loop onto a fixed-size
// worker pool without changing a single bit of the result:
//
//   * Pre-drawn substreams — every random decision a client task makes is
//     drawn from a Philox stream whose key the CALLER derives on the main
//     thread, in the exact order the serial schedule derives them, before
//     dispatch. Stream contents are a pure function of the key, so draw
//     order is independent of completion order.
//   * Private model replicas — each worker owns a Model replica; a task
//     fully overwrites the replica's parameters before computing, so the
//     result depends only on the task's inputs, never on which worker ran
//     it or what ran there before. Each replica carries its own Workspace
//     tensor arena (see nn/workspace.h), so the allocation-free hot path
//     needs no locking: arenas, like replicas, are never shared between
//     workers, and steady-state steps touch the heap not at all.
//   * Ordered reduction — tasks write results into a slot indexed by their
//     position in the participant list; the caller commits the slots (store
//     writes, loss accumulation, model averaging) in that fixed order on
//     the main thread, never in completion order.
//
// Under this contract a run with num_threads = N is bit-identical to the
// serial run for the global models, local models, mini-batch history, and
// round log — which is what keeps parallel execution compatible with the
// exact-unlearning guarantee (a recomputation must reproduce the original
// trajectory exactly; see DESIGN.md §7).

#ifndef FATS_FL_PARALLEL_CLIENTS_H_
#define FATS_FL_PARALLEL_CLIENTS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/model_zoo.h"
#include "nn/weight_pack.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fats {

class ParallelClientRunner {
 public:
  /// Builds max(1, num_threads) model replicas for `spec` (their init from
  /// `init_seed` is irrelevant: tasks overwrite all parameters before use)
  /// and a pool of num_threads workers. num_threads <= 1 creates no threads
  /// and runs every batch inline — the serial engine of record.
  ParallelClientRunner(const ModelSpec& spec, uint64_t init_seed,
                       int64_t num_threads);

  int64_t num_threads() const { return pool_.num_threads(); }

  /// The runner's worker pool, for other deterministic sharded work on the
  /// driver thread between client batches (e.g. tree aggregation). Callers
  /// must not hold it across a ForEachClient call (ParallelFor is not
  /// reentrant).
  ThreadPool* pool() { return &pool_; }

  /// Runs fn(i, model) for every i in [0, n), where `model` is a replica
  /// private to the executing worker, and blocks until all calls finish.
  /// fn must follow the determinism contract above: read only state frozen
  /// before the call, write only slot i of caller-owned outputs, and draw
  /// randomness only from streams keyed before dispatch.
  void ForEachClient(int64_t n,
                     const std::function<void(int64_t, Model*)>& fn);

  /// Fused cross-client batching (DESIGN.md §7.6): packs `params`'s weight
  /// matrices ONCE on the calling thread and binds the pack to every
  /// replica, so the next ForEachClient's per-client GEMMs all consume the
  /// shared panels instead of re-packing per client per call. Caller's
  /// contract: every task of that ForEachClient must set its replica's
  /// parameters to exactly `params` before its (single) local step — true
  /// at a round-start iteration, where all participants start from the
  /// broadcast global model. Results are bit-identical with or without the
  /// pack. Call ClearSharedWeights before any dispatch where the invariant
  /// no longer holds. The pack's buffers are reused across rounds, so the
  /// steady-state pack-bind-run cycle allocates nothing.
  void SetSharedWeights(const Tensor& params);
  void ClearSharedWeights();

 private:
  std::vector<std::unique_ptr<Model>> replicas_;
  ThreadPool pool_;
  WeightPack shared_pack_;
  bool shared_pack_bound_ = false;
};

}  // namespace fats

#endif  // FATS_FL_PARALLEL_CLIENTS_H_
