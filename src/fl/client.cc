#include "fl/client.h"

#include <algorithm>

#include "rng/sampling.h"
#include "util/logging.h"

namespace fats {

std::vector<int64_t> ClientRuntime::SampleMinibatch(int64_t k, int64_t b,
                                                    RngStream* stream) const {
  const std::vector<int64_t>& active = data_->active_sample_indices(k);
  const int64_t n = static_cast<int64_t>(active.size());
  FATS_CHECK_LE(b, n) << "mini-batch larger than client " << k
                      << "'s active data";
  std::vector<int64_t> positions = SampleWithoutReplacement(n, b, stream);
  std::vector<int64_t> indices;
  indices.reserve(positions.size());
  for (int64_t pos : positions) {
    indices.push_back(active[static_cast<size_t>(pos)]);
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

double ClientRuntime::Step(int64_t k, const std::vector<int64_t>& indices,
                           double lr) {
  Batch batch = data_->MakeBatch(k, indices);
  const double loss = model_->ComputeLossAndGradients(batch.inputs,
                                                      batch.labels);
  model_->SgdStep(lr);
  return loss;
}

}  // namespace fats
