#include "fl/parallel_clients.h"

namespace fats {

ParallelClientRunner::ParallelClientRunner(const ModelSpec& spec,
                                           uint64_t init_seed,
                                           int64_t num_threads)
    : pool_(num_threads) {
  replicas_.reserve(static_cast<size_t>(pool_.num_threads()));
  for (int64_t w = 0; w < pool_.num_threads(); ++w) {
    replicas_.push_back(std::make_unique<Model>(spec, init_seed));
  }
}

void ParallelClientRunner::ForEachClient(
    int64_t n, const std::function<void(int64_t, Model*)>& fn) {
  pool_.ParallelFor(n, [this, &fn](int64_t index, int64_t worker) {
    fn(index, replicas_[static_cast<size_t>(worker)].get());
  });
}

void ParallelClientRunner::SetSharedWeights(const Tensor& params) {
  // Replica 0 is the donor: load the shared start parameters and pack its
  // layer weights in definition order. Safe because no dispatch is in
  // flight, and harmless because every task overwrites its replica's
  // parameters (with these same values, per the caller's contract) anyway.
  replicas_[0]->SetParameters(params);
  replicas_[0]->PackSharedWeights(&shared_pack_);
  for (auto& replica : replicas_) {
    replica->BindSharedWeightPack(&shared_pack_);
  }
  shared_pack_bound_ = true;
}

void ParallelClientRunner::ClearSharedWeights() {
  if (!shared_pack_bound_) return;
  for (auto& replica : replicas_) {
    replica->BindSharedWeightPack(nullptr);
  }
  shared_pack_bound_ = false;
}

}  // namespace fats
