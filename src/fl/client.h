// Client-side runtime: mini-batch sampling and one local SGD step.
//
// The mini-batch law is the ξ(N, b) of Claim 1: a uniformly random size-b
// subset of the client's *active* samples. Sampling draws positions over the
// active set and maps them to stable sample indices, so after a deletion the
// law is exactly ξ(N−1, b) with sample identities unchanged.

#ifndef FATS_FL_CLIENT_H_
#define FATS_FL_CLIENT_H_

#include <cstdint>
#include <vector>

#include "data/federated_dataset.h"
#include "nn/model_zoo.h"
#include "rng/rng_stream.h"

namespace fats {

class ClientRuntime {
 public:
  /// `data` and `model` are borrowed; the model is the shared compute
  /// machine whose parameters callers set before invoking Step.
  ClientRuntime(const FederatedDataset* data, Model* model)
      : data_(data), model_(model) {}

  /// Draws a uniformly random size-`b` subset of client `k`'s active
  /// samples. Returns *stable* sample indices (sorted). Requires
  /// b <= active samples.
  std::vector<int64_t> SampleMinibatch(int64_t k, int64_t b,
                                       RngStream* stream) const;

  /// Runs one SGD step on the given stable sample indices with the model's
  /// current parameters. Returns the mini-batch loss.
  double Step(int64_t k, const std::vector<int64_t>& indices, double lr);

 private:
  const FederatedDataset* data_;
  Model* model_;
};

}  // namespace fats

#endif  // FATS_FL_CLIENT_H_
