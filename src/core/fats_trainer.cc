#include "core/fats_trainer.h"

#include <algorithm>

#include "fl/client.h"
#include "fl/server.h"
#include "state/tree_aggregate.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace fats {

FatsTrainer::FatsTrainer(const ModelSpec& spec, const FatsConfig& config,
                         FederatedDataset* data)
    : spec_(spec),
      config_(config),
      data_(data),
      model_(std::make_unique<Model>(spec, config.seed)),
      test_batch_(data->global_test().AsBatch()),
      k_(config.DeriveK()),
      b_(config.DeriveB()),
      availability_(AvailabilityConfig{config.dropout_rate,
                                       config.availability_seed,
                                       config.dropout_max_retries}),
      runner_(spec, config.seed, config.num_threads),
      store_(config.StateOptions()) {
  FATS_CHECK_OK(config_.Validate());
  FATS_CHECK_EQ(data_->num_clients(), config_.clients_m)
      << "dataset does not match config M";
  failpoint::ArmFromEnvOnce();
  if (!config_.fault_spec.empty()) {
    FATS_CHECK_OK(failpoint::ArmFromSpec(config_.fault_spec));
  }
  Result<transport::TransportFaultSpec> tf_spec =
      transport::TransportFaultSpec::Parse(config_.transport_fault_spec);
  FATS_CHECK(tf_spec.ok()) << tf_spec.status().ToString();
  wire_ = std::make_unique<transport::LocalTransport>();
  channel_ = std::make_unique<transport::ReliableChannel>(wire_.get(),
                                                          *tf_spec);
  initial_params_ = model_->GetParameters();
}

Tensor FatsTrainer::TransferModel(transport::Direction direction,
                                  int64_t round, int64_t iteration,
                                  int64_t client, uint32_t seq,
                                  const transport::EncodedModel& model) {
  transport::MessageAddress address;
  address.direction = direction;
  address.round = round;
  address.iteration = iteration;
  address.client = client;
  address.seq = seq;
  Result<transport::ModelDelivery> delivered =
      channel_->DeliverModel(address, model);
  FATS_CHECK(delivered.ok())
      << "transport delivery failed: " << delivered.status().ToString();
  if (direction == transport::Direction::kDownlink) {
    comm_stats_.RecordDownlinkDelivery(delivered->payload_bytes);
  } else {
    comm_stats_.RecordUplinkDelivery(delivered->payload_bytes);
  }
  comm_stats_.RecordRetransmits(delivered->retransmits,
                                delivered->retransmit_bytes);
  if (delivered->forced) ++transport_forced_deliveries_;
  return std::move(delivered->params);
}

std::vector<int64_t> FatsTrainer::UniqueClients(
    const std::vector<int64_t>& multiset) const {
  // First-occurrence-order dedup with a seen-flag vector: O(K + M) where
  // the old std::find scan was O(K²). The output order is load-bearing —
  // it fixes the reduction order, so parallel and serial runs aggregate in
  // the same sequence.
  std::vector<uint8_t> seen(static_cast<size_t>(data_->num_clients()), 0);
  std::vector<int64_t> unique;
  unique.reserve(multiset.size());
  for (int64_t k : multiset) {
    uint8_t& flag = seen[static_cast<size_t>(k)];
    if (flag == 0) {
      flag = 1;
      unique.push_back(k);
    }
  }
  return unique;
}

void FatsTrainer::Train() { TrainUntil(config_.total_iters_t()); }

void FatsTrainer::TrainUntil(int64_t t_end) {
  if (trained_through_ == 0) {
    store_.SaveGlobalModel(0, initial_params_);
    if (sink_ != nullptr) sink_->OnGlobalModel(0, initial_params_);
    model_->SetParameters(initial_params_);
  }
  FATS_CHECK_GE(t_end, trained_through_) << "cannot train backwards";
  if (t_end == trained_through_) return;
  Run(trained_through_ + 1, t_end);
}

void FatsTrainer::Run(int64_t t0, int64_t t_end) {
  const int64_t t_max = t_end;
  const int64_t e = config_.local_iters_e;
  FATS_CHECK(t0 >= 1 && t0 <= config_.total_iters_t())
      << "t0 out of range: " << t0;
  FATS_CHECK(t_end >= t0 && t_end <= config_.total_iters_t())
      << "t_end out of range: " << t_end;

  std::vector<int64_t> selection;          // P of the current round
  std::vector<int64_t> participants;       // unique clients in P
  std::map<int64_t, Tensor> local_params;  // θ_k^(t−1) per participant
  // The round's broadcast model, encoded once per round and re-sent for
  // every downlink delivery (K selection slots + dropout re-broadcasts).
  std::unique_ptr<transport::EncodedModel> round_broadcast;

  const int64_t r0 = (t0 - 1) / e + 1;
  const int64_t r0_start = (r0 - 1) * e + 1;
  if (t0 != r0_start) {
    // Mid-round entry (Algorithm 1, lines 3–5): reload P^(t0) and the local
    // models after iteration t0−1.
    const std::vector<int64_t>* stored = store_.GetClientSelection(r0);
    FATS_CHECK(stored != nullptr)
        << "mid-round restart requires the round's client selection";
    selection = *stored;
    participants = UniqueClients(selection);
    for (int64_t client : participants) {
      const Tensor* theta = store_.GetLocalModel(t0 - 1, client);
      FATS_CHECK(theta != nullptr)
          << "missing local model for client " << client << " at iteration "
          << t0 - 1;
      local_params[client] = *theta;
    }
  }

  // Consume-once recovery seed: resuming a pass mid-round must restore the
  // interrupted round's partial loss accumulator (a round-start entry point
  // resets it below anyway).
  double loss_sum = resume_loss_sum_;
  int64_t loss_count = resume_loss_count_;
  resume_loss_sum_ = 0.0;
  resume_loss_count_ = 0;
  for (int64_t t = t0; t <= t_max; ++t) {
    const int64_t r = (t - 1) / e + 1;
    if (t == (r - 1) * e + 1) {
      // STEP 1: round start — sample the client multiset and broadcast the
      // latest global model.
      StreamId sel_id;
      sel_id.purpose = RngPurpose::kClientSampling;
      sel_id.generation = generation_;
      sel_id.round = static_cast<uint64_t>(r);
      RngStream sel_stream(config_.seed, sel_id);
      selection =
          ServerRuntime::SampleClientsWithReplacement(*data_, k_, &sel_stream);
      store_.SaveClientSelection(r, selection);
      if (sink_ != nullptr) sink_->OnClientSelection(r, selection);
      FATS_FAILPOINT("trainer.round.start");

      const Tensor* global = store_.GetGlobalModel(r - 1);
      FATS_CHECK(global != nullptr)
          << "missing global model for round " << r - 1;
      // Broadcast θ^(r−1) over the wire: one encoding, one delivery per
      // selection slot. Each participant starts from the *decoded* payload
      // (bitwise the broadcast bytes), so every downlink byte the ledger
      // charges really crossed the transport.
      round_broadcast = std::make_unique<transport::EncodedModel>(*global);
      participants = UniqueClients(selection);
      local_params.clear();
      for (size_t slot = 0; slot < selection.size(); ++slot) {
        const int64_t client = selection[slot];
        local_params[client] =
            TransferModel(transport::Direction::kDownlink, r, t, client,
                          static_cast<uint32_t>(slot), *round_broadcast);
      }
      loss_sum = 0.0;
      loss_count = 0;
    }

    // STEP 2: one local mini-batch SGD iteration per distinct participant,
    // executed by the client runner (parallel when num_threads > 1).
    // Stream keys, batch sizes, and start-parameter pointers are frozen on
    // the main thread in participant order before dispatch, and results
    // are committed in that same order, so the schedule — draws, store
    // contents, float accumulation — is bit-identical to serial.
    const size_t n_part = participants.size();
    struct LocalStep {
      std::vector<int64_t> batch;
      Tensor params;
      double loss = 0.0;
    };
    std::vector<LocalStep> steps(n_part);
    std::vector<uint64_t> stream_keys(n_part);
    std::vector<int64_t> batch_sizes(n_part);
    std::vector<int64_t> dropped(n_part, 0);
    std::vector<const Tensor*> start_params(n_part);
    for (size_t i = 0; i < n_part; ++i) {
      const int64_t client = participants[i];
      StreamId batch_id;
      batch_id.purpose = RngPurpose::kMinibatchSampling;
      batch_id.generation = generation_;
      batch_id.round = static_cast<uint64_t>(r);
      batch_id.client = static_cast<uint64_t>(client);
      batch_id.iteration = static_cast<uint64_t>(t);
      stream_keys[i] = DeriveStreamKey(config_.seed, batch_id);
      batch_sizes[i] =
          std::min<int64_t>(b_, data_->num_active_samples(client));
      FATS_CHECK_GT(batch_sizes[i], 0)
          << "client " << client << " has no active samples";
      if (availability_.enabled()) {
        dropped[i] = availability_.DroppedAttempts(r, t, client);
      }
      start_params[i] = &local_params.at(client);
    }
    // Fused round-start batching: at t == round start every participant's
    // start parameters ARE the broadcast global model (assigned just above
    // in STEP 1), so all K clients' GEMMs can share one weight pack, built
    // once here instead of once per client per call. Mid-round iterations
    // start from diverged per-client weights, so the pack is cleared before
    // their dispatch. Bit-identical either way (gemm::SgemmPackedB).
    const bool share_round_pack =
        fused_round_pack_ && n_part > 0 && t == (r - 1) * e + 1;
    if (share_round_pack) {
      runner_.SetSharedWeights(*start_params[0]);
    }
    runner_.ForEachClient(
        static_cast<int64_t>(n_part), [&](int64_t i, Model* m) {
          const size_t s = static_cast<size_t>(i);
          const int64_t client = participants[s];
          // A dropped attempt discards the client's work; the retry
          // re-executes the whole local step from the same frozen stream
          // key, so the surviving attempt's draws and model bits are
          // identical to a first-try success.
          for (int64_t attempt = 0; attempt <= dropped[s]; ++attempt) {
            m->SetParameters(*start_params[s]);
            RngStream batch_stream(stream_keys[s]);
            ClientRuntime runtime(data_, m);
            steps[s].batch =
                runtime.SampleMinibatch(client, batch_sizes[s], &batch_stream);
            steps[s].loss =
                runtime.Step(client, steps[s].batch, config_.learning_rate);
            steps[s].params = m->GetParameters();
          }
        });
    if (share_round_pack) runner_.ClearSharedWeights();
    for (size_t i = 0; i < n_part; ++i) {
      const int64_t client = participants[i];
      if (dropped[i] > 0) {
        // Each retry re-broadcasts the round's start model to the client,
        // over the wire like the original. Mid-round pass entry skipped
        // STEP 1, so the round's encoding may need rebuilding here. Send
        // seqs start at K to stay distinct from the round-start slots.
        if (round_broadcast == nullptr) {
          const Tensor* round_global = store_.GetGlobalModel(r - 1);
          FATS_CHECK(round_global != nullptr)
              << "missing global model for round " << r - 1;
          round_broadcast =
              std::make_unique<transport::EncodedModel>(*round_global);
        }
        for (int64_t retry = 0; retry < dropped[i]; ++retry) {
          (void)TransferModel(transport::Direction::kDownlink, r, t, client,
                              static_cast<uint32_t>(k_ + retry),
                              *round_broadcast);
        }
        dropout_retries_ += dropped[i];
      }
      if (sink_ != nullptr) sink_->OnMinibatch(t, client, steps[i].batch);
      store_.SaveMinibatch(t, client, std::move(steps[i].batch));
      loss_sum += steps[i].loss;
      ++loss_count;
      ++local_iterations_executed_;
      local_params[client] = std::move(steps[i].params);
      store_.SaveLocalModel(t, client, local_params[client]);
      if (sink_ != nullptr) sink_->OnLocalModel(t, client, local_params[client]);
    }

    if (t % e == 0) {
      // STEP 3: aggregate with multiset multiplicity: θ = (1/K) Σ_{k∈P} θ_k.
      // Each selection slot uploads its client's local model over the wire
      // (encoded once per distinct client), delivered serially in slot
      // order — the recorded wire order. The decoded payloads are then
      // summed by the fixed fan-in reduction tree, whose shape depends only
      // on the slot count, so the aggregate is bit-identical at any worker
      // count (and identical to the flat slot-order sum for K <= fan-in).
      std::vector<Tensor> slot_uploads;
      slot_uploads.reserve(selection.size());
      std::map<int64_t, transport::EncodedModel> uploads;
      for (size_t slot = 0; slot < selection.size(); ++slot) {
        const int64_t client = selection[slot];
        auto it = uploads.find(client);
        if (it == uploads.end()) {
          it = uploads
                   .emplace(client,
                            transport::EncodedModel(local_params[client]))
                   .first;
        }
        slot_uploads.push_back(TransferModel(transport::Direction::kUplink, r,
                                             t, client,
                                             static_cast<uint32_t>(slot),
                                             it->second));
      }
      Tensor aggregate = state::TreeAggregate(slot_uploads, runner_.pool());
      aggregate *= 1.0f / static_cast<float>(selection.size());
      store_.SaveGlobalModel(r, aggregate);
      comm_stats_.RecordRound();
      model_->SetParameters(aggregate);
      if (sink_ != nullptr) sink_->OnGlobalModel(r, aggregate);

      RoundRecord record;
      record.round = r;
      record.test_accuracy = EvaluateTestAccuracy();
      record.mean_local_loss =
          loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
      record.recomputation = recomputation_mode_;
      log_.Append(record);
      if (sink_ != nullptr) sink_->OnRoundRecord(record);
      FATS_FAILPOINT("trainer.round.end");
    }
    FATS_FAILPOINT("trainer.iter.commit");
    NotifyIterationComplete(t, t_max, TrainPassKind::kRun, loss_sum,
                            loss_count);
  }
  trained_through_ = std::max(trained_through_, t_max);
  // Leave the model holding the latest completed round's global parameters.
  const Tensor* final_global = store_.GetGlobalModel(t_max / e);
  if (final_global != nullptr) model_->SetParameters(*final_global);
}

void FatsTrainer::ReplayFrom(int64_t t0, int64_t t_end) {
  const int64_t t_max = t_end;
  const int64_t e = config_.local_iters_e;
  FATS_CHECK(t0 >= 1 && t0 <= config_.total_iters_t())
      << "t0 out of range: " << t0;
  FATS_CHECK(t_end >= t0 && t_end <= config_.total_iters_t())
      << "t_end out of range: " << t_end;

  std::vector<int64_t> selection;
  std::vector<int64_t> participants;
  std::map<int64_t, Tensor> local_params;

  const int64_t r0 = (t0 - 1) / e + 1;
  const int64_t r0_start = (r0 - 1) * e + 1;
  if (t0 != r0_start) {
    const std::vector<int64_t>* stored = store_.GetClientSelection(r0);
    FATS_CHECK(stored != nullptr) << "replay requires stored selection";
    selection = *stored;
    participants = UniqueClients(selection);
    for (int64_t client : participants) {
      const Tensor* theta = store_.GetLocalModel(t0 - 1, client);
      FATS_CHECK(theta != nullptr)
          << "replay missing local model (" << t0 - 1 << ", " << client
          << ")";
      local_params[client] = *theta;
    }
  }

  // Consume-once recovery seed, mirroring Run (see comment there).
  double loss_sum = resume_loss_sum_;
  int64_t loss_count = resume_loss_count_;
  resume_loss_sum_ = 0.0;
  resume_loss_count_ = 0;
  for (int64_t t = t0; t <= t_max; ++t) {
    const int64_t r = (t - 1) / e + 1;
    if (t == (r - 1) * e + 1) {
      const std::vector<int64_t>* stored = store_.GetClientSelection(r);
      FATS_CHECK(stored != nullptr)
          << "replay missing selection for round " << r;
      selection = *stored;
      const Tensor* global = store_.GetGlobalModel(r - 1);
      FATS_CHECK(global != nullptr)
          << "replay missing global model for round " << r - 1;
      // Replay re-broadcasts over the wire at the same addresses as Run,
      // so a replayed pass reproduces the original ledger — retransmit
      // counters included (the fault schedule is address-keyed).
      const transport::EncodedModel broadcast(*global);
      participants = UniqueClients(selection);
      local_params.clear();
      for (size_t slot = 0; slot < selection.size(); ++slot) {
        const int64_t client = selection[slot];
        local_params[client] =
            TransferModel(transport::Direction::kDownlink, r, t, client,
                          static_cast<uint32_t>(slot), broadcast);
      }
      loss_sum = 0.0;
      loss_count = 0;
    }

    // Replay executes the stored mini-batches (no sampling), so the only
    // frozen inputs are the batch pointers and start parameters; results
    // commit in participant order exactly as in Run.
    const size_t n_part = participants.size();
    struct ReplayStep {
      Tensor params;
      double loss = 0.0;
    };
    std::vector<ReplayStep> steps(n_part);
    std::vector<const std::vector<int64_t>*> batches(n_part);
    std::vector<const Tensor*> start_params(n_part);
    for (size_t i = 0; i < n_part; ++i) {
      const int64_t client = participants[i];
      batches[i] = store_.GetMinibatch(t, client);
      FATS_CHECK(batches[i] != nullptr)
          << "replay missing mini-batch (" << t << ", " << client << ")";
      start_params[i] = &local_params.at(client);
    }
    // Same fused round-start pack as in Run: replay re-executes the exact
    // schedule, so round starts have the identical all-participants-equal
    // invariant. Keeping both passes on the same code path matters less
    // for speed than for symmetry — but replay loops dominate unlearning
    // cost, so they benefit the most.
    const bool share_round_pack =
        fused_round_pack_ && n_part > 0 && t == (r - 1) * e + 1;
    if (share_round_pack) {
      runner_.SetSharedWeights(*start_params[0]);
    }
    runner_.ForEachClient(
        static_cast<int64_t>(n_part), [&](int64_t i, Model* m) {
          const size_t s = static_cast<size_t>(i);
          m->SetParameters(*start_params[s]);
          ClientRuntime runtime(data_, m);
          steps[s].loss = runtime.Step(participants[s], *batches[s],
                                       config_.learning_rate);
          steps[s].params = m->GetParameters();
        });
    if (share_round_pack) runner_.ClearSharedWeights();
    for (size_t i = 0; i < n_part; ++i) {
      const int64_t client = participants[i];
      loss_sum += steps[i].loss;
      ++loss_count;
      ++local_iterations_executed_;
      local_params[client] = std::move(steps[i].params);
      store_.SaveLocalModel(t, client, local_params[client]);
      if (sink_ != nullptr) sink_->OnLocalModel(t, client, local_params[client]);
    }

    if (t % e == 0) {
      // Same wire order and reduction tree as the forward pass: replay must
      // re-create the aggregate bit for bit.
      std::vector<Tensor> slot_uploads;
      slot_uploads.reserve(selection.size());
      std::map<int64_t, transport::EncodedModel> uploads;
      for (size_t slot = 0; slot < selection.size(); ++slot) {
        const int64_t client = selection[slot];
        auto it = uploads.find(client);
        if (it == uploads.end()) {
          it = uploads
                   .emplace(client,
                            transport::EncodedModel(local_params[client]))
                   .first;
        }
        slot_uploads.push_back(TransferModel(transport::Direction::kUplink, r,
                                             t, client,
                                             static_cast<uint32_t>(slot),
                                             it->second));
      }
      Tensor aggregate = state::TreeAggregate(slot_uploads, runner_.pool());
      aggregate *= 1.0f / static_cast<float>(selection.size());
      store_.SaveGlobalModel(r, aggregate);
      comm_stats_.RecordRound();
      model_->SetParameters(aggregate);
      if (sink_ != nullptr) sink_->OnGlobalModel(r, aggregate);

      RoundRecord record;
      record.round = r;
      record.test_accuracy = EvaluateTestAccuracy();
      record.mean_local_loss =
          loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
      record.recomputation = recomputation_mode_;
      log_.Append(record);
      if (sink_ != nullptr) sink_->OnRoundRecord(record);
      FATS_FAILPOINT("trainer.round.end");
    }
    FATS_FAILPOINT("trainer.iter.commit");
    NotifyIterationComplete(t, t_max, TrainPassKind::kReplay, loss_sum,
                            loss_count);
  }
  trained_through_ = std::max(trained_through_, t_max);
  const Tensor* final_global = store_.GetGlobalModel(t_max / e);
  if (final_global != nullptr) model_->SetParameters(*final_global);
}

void FatsTrainer::NotifyIterationComplete(int64_t t, int64_t t_end,
                                          TrainPassKind pass, double loss_sum,
                                          int64_t loss_count) {
  if (sink_ == nullptr) return;
  IterationMark mark;
  mark.iteration = t;
  mark.pass_end = t_end;
  mark.trained_through = std::max(trained_through_, t);
  mark.generation = generation_;
  mark.pass = pass;
  mark.recomputation = recomputation_mode_;
  mark.comm_rounds = comm_stats_.rounds();
  mark.comm_uplink_bytes = comm_stats_.uplink_bytes();
  mark.comm_downlink_bytes = comm_stats_.downlink_bytes();
  mark.comm_downlink_messages = comm_stats_.downlink_messages();
  mark.comm_uplink_messages = comm_stats_.uplink_messages();
  mark.comm_retransmits = comm_stats_.retransmits();
  mark.comm_retransmit_bytes = comm_stats_.retransmit_bytes();
  mark.round_loss_sum = loss_sum;
  mark.round_loss_count = loss_count;
  sink_->OnIterationComplete(mark);
}

double FatsTrainer::EvaluateTestAccuracy() {
  return model_->EvaluateAccuracy(test_batch_.inputs, test_batch_.labels);
}

}  // namespace fats
