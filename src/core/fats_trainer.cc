#include "core/fats_trainer.h"

#include <algorithm>

#include "fl/client.h"
#include "fl/server.h"
#include "util/logging.h"

namespace fats {

FatsTrainer::FatsTrainer(const ModelSpec& spec, const FatsConfig& config,
                         FederatedDataset* data)
    : spec_(spec),
      config_(config),
      data_(data),
      model_(std::make_unique<Model>(spec, config.seed)),
      test_batch_(data->global_test().AsBatch()),
      k_(config.DeriveK()),
      b_(config.DeriveB()) {
  FATS_CHECK_OK(config_.Validate());
  FATS_CHECK_EQ(data_->num_clients(), config_.clients_m)
      << "dataset does not match config M";
  initial_params_ = model_->GetParameters();
}

std::vector<int64_t> FatsTrainer::UniqueClients(
    const std::vector<int64_t>& multiset) {
  std::vector<int64_t> unique;
  for (int64_t k : multiset) {
    if (std::find(unique.begin(), unique.end(), k) == unique.end()) {
      unique.push_back(k);
    }
  }
  return unique;
}

void FatsTrainer::Train() { TrainUntil(config_.total_iters_t()); }

void FatsTrainer::TrainUntil(int64_t t_end) {
  if (trained_through_ == 0) {
    store_.SaveGlobalModel(0, initial_params_);
    model_->SetParameters(initial_params_);
  }
  FATS_CHECK_GE(t_end, trained_through_) << "cannot train backwards";
  if (t_end == trained_through_) return;
  Run(trained_through_ + 1, t_end);
}

void FatsTrainer::Run(int64_t t0, int64_t t_end) {
  const int64_t t_max = t_end;
  const int64_t e = config_.local_iters_e;
  FATS_CHECK(t0 >= 1 && t0 <= config_.total_iters_t())
      << "t0 out of range: " << t0;
  FATS_CHECK(t_end >= t0 && t_end <= config_.total_iters_t())
      << "t_end out of range: " << t_end;
  const int64_t model_params = model_->NumParameters();
  ClientRuntime client_runtime(data_, model_.get());

  std::vector<int64_t> selection;          // P of the current round
  std::vector<int64_t> participants;       // unique clients in P
  std::map<int64_t, Tensor> local_params;  // θ_k^(t−1) per participant

  const int64_t r0 = (t0 - 1) / e + 1;
  const int64_t r0_start = (r0 - 1) * e + 1;
  if (t0 != r0_start) {
    // Mid-round entry (Algorithm 1, lines 3–5): reload P^(t0) and the local
    // models after iteration t0−1.
    const std::vector<int64_t>* stored = store_.GetClientSelection(r0);
    FATS_CHECK(stored != nullptr)
        << "mid-round restart requires the round's client selection";
    selection = *stored;
    participants = UniqueClients(selection);
    for (int64_t client : participants) {
      const Tensor* theta = store_.GetLocalModel(t0 - 1, client);
      FATS_CHECK(theta != nullptr)
          << "missing local model for client " << client << " at iteration "
          << t0 - 1;
      local_params[client] = *theta;
    }
  }

  double loss_sum = 0.0;
  int64_t loss_count = 0;
  for (int64_t t = t0; t <= t_max; ++t) {
    const int64_t r = (t - 1) / e + 1;
    if (t == (r - 1) * e + 1) {
      // STEP 1: round start — sample the client multiset and broadcast the
      // latest global model.
      StreamId sel_id;
      sel_id.purpose = RngPurpose::kClientSampling;
      sel_id.generation = generation_;
      sel_id.round = static_cast<uint64_t>(r);
      RngStream sel_stream(config_.seed, sel_id);
      selection =
          ServerRuntime::SampleClientsWithReplacement(*data_, k_, &sel_stream);
      store_.SaveClientSelection(r, selection);

      const Tensor* global = store_.GetGlobalModel(r - 1);
      FATS_CHECK(global != nullptr)
          << "missing global model for round " << r - 1;
      comm_stats_.RecordBroadcast(k_, model_params);
      participants = UniqueClients(selection);
      local_params.clear();
      for (int64_t client : participants) local_params[client] = *global;
      loss_sum = 0.0;
      loss_count = 0;
    }

    // STEP 2: one local mini-batch SGD iteration per distinct participant.
    for (int64_t client : participants) {
      model_->SetParameters(local_params[client]);
      StreamId batch_id;
      batch_id.purpose = RngPurpose::kMinibatchSampling;
      batch_id.generation = generation_;
      batch_id.round = static_cast<uint64_t>(r);
      batch_id.client = static_cast<uint64_t>(client);
      batch_id.iteration = static_cast<uint64_t>(t);
      RngStream batch_stream(config_.seed, batch_id);
      const int64_t batch_size =
          std::min<int64_t>(b_, data_->num_active_samples(client));
      FATS_CHECK_GT(batch_size, 0)
          << "client " << client << " has no active samples";
      std::vector<int64_t> indices =
          client_runtime.SampleMinibatch(client, batch_size, &batch_stream);
      store_.SaveMinibatch(t, client, indices);
      loss_sum += client_runtime.Step(client, indices, config_.learning_rate);
      ++loss_count;
      ++local_iterations_executed_;
      local_params[client] = model_->GetParameters();
      store_.SaveLocalModel(t, client, local_params[client]);
    }

    if (t % e == 0) {
      // STEP 3: aggregate with multiset multiplicity: θ = (1/K) Σ_{k∈P} θ_k.
      Tensor aggregate(initial_params_.shape());
      for (int64_t client : selection) {
        aggregate += local_params[client];
      }
      aggregate *= 1.0f / static_cast<float>(selection.size());
      store_.SaveGlobalModel(r, aggregate);
      comm_stats_.RecordUpload(k_, model_params);
      comm_stats_.RecordRound();
      model_->SetParameters(aggregate);

      RoundRecord record;
      record.round = r;
      record.test_accuracy = EvaluateTestAccuracy();
      record.mean_local_loss =
          loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
      record.recomputation = recomputation_mode_;
      log_.Append(record);
    }
  }
  trained_through_ = std::max(trained_through_, t_max);
  // Leave the model holding the latest completed round's global parameters.
  const Tensor* final_global = store_.GetGlobalModel(t_max / e);
  if (final_global != nullptr) model_->SetParameters(*final_global);
}

void FatsTrainer::ReplayFrom(int64_t t0, int64_t t_end) {
  const int64_t t_max = t_end;
  const int64_t e = config_.local_iters_e;
  FATS_CHECK(t0 >= 1 && t0 <= config_.total_iters_t())
      << "t0 out of range: " << t0;
  FATS_CHECK(t_end >= t0 && t_end <= config_.total_iters_t())
      << "t_end out of range: " << t_end;
  const int64_t model_params = model_->NumParameters();
  ClientRuntime client_runtime(data_, model_.get());

  std::vector<int64_t> selection;
  std::vector<int64_t> participants;
  std::map<int64_t, Tensor> local_params;

  const int64_t r0 = (t0 - 1) / e + 1;
  const int64_t r0_start = (r0 - 1) * e + 1;
  if (t0 != r0_start) {
    const std::vector<int64_t>* stored = store_.GetClientSelection(r0);
    FATS_CHECK(stored != nullptr) << "replay requires stored selection";
    selection = *stored;
    participants = UniqueClients(selection);
    for (int64_t client : participants) {
      const Tensor* theta = store_.GetLocalModel(t0 - 1, client);
      FATS_CHECK(theta != nullptr)
          << "replay missing local model (" << t0 - 1 << ", " << client
          << ")";
      local_params[client] = *theta;
    }
  }

  double loss_sum = 0.0;
  int64_t loss_count = 0;
  for (int64_t t = t0; t <= t_max; ++t) {
    const int64_t r = (t - 1) / e + 1;
    if (t == (r - 1) * e + 1) {
      const std::vector<int64_t>* stored = store_.GetClientSelection(r);
      FATS_CHECK(stored != nullptr)
          << "replay missing selection for round " << r;
      selection = *stored;
      const Tensor* global = store_.GetGlobalModel(r - 1);
      FATS_CHECK(global != nullptr)
          << "replay missing global model for round " << r - 1;
      comm_stats_.RecordBroadcast(k_, model_params);
      participants = UniqueClients(selection);
      local_params.clear();
      for (int64_t client : participants) local_params[client] = *global;
      loss_sum = 0.0;
      loss_count = 0;
    }

    for (int64_t client : participants) {
      const std::vector<int64_t>* batch = store_.GetMinibatch(t, client);
      FATS_CHECK(batch != nullptr)
          << "replay missing mini-batch (" << t << ", " << client << ")";
      model_->SetParameters(local_params[client]);
      loss_sum += client_runtime.Step(client, *batch, config_.learning_rate);
      ++loss_count;
      ++local_iterations_executed_;
      local_params[client] = model_->GetParameters();
      store_.SaveLocalModel(t, client, local_params[client]);
    }

    if (t % e == 0) {
      Tensor aggregate(initial_params_.shape());
      for (int64_t client : selection) {
        aggregate += local_params[client];
      }
      aggregate *= 1.0f / static_cast<float>(selection.size());
      store_.SaveGlobalModel(r, aggregate);
      comm_stats_.RecordUpload(k_, model_params);
      comm_stats_.RecordRound();
      model_->SetParameters(aggregate);

      RoundRecord record;
      record.round = r;
      record.test_accuracy = EvaluateTestAccuracy();
      record.mean_local_loss =
          loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
      record.recomputation = recomputation_mode_;
      log_.Append(record);
    }
  }
  trained_through_ = std::max(trained_through_, t_max);
  const Tensor* final_global = store_.GetGlobalModel(t_max / e);
  if (final_global != nullptr) model_->SetParameters(*final_global);
}

double FatsTrainer::EvaluateTestAccuracy() {
  return model_->EvaluateAccuracy(test_batch_.inputs, test_batch_.labels);
}

}  // namespace fats
