#include "core/compact_unlearner.h"

#include <vector>

#include "util/stopwatch.h"

namespace fats {

namespace {

std::vector<int64_t> SamplesPerClient(const FederatedDataset& data) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(data.num_clients()));
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    out.push_back(data.samples_of(k));
  }
  return out;
}

}  // namespace

CompactUnlearner::CompactUnlearner(FatsTrainer* trainer)
    : trainer_(trainer),
      index_(trainer->data()->num_clients(),
             SamplesPerClient(*trainer->data())) {
  RebuildIndexFromStore();
}

void CompactUnlearner::RebuildIndexFromStore() {
  index_.Clear();
  const FatsConfig& config = trainer_->config();
  for (int64_t r = 1; r <= config.rounds_r; ++r) {
    const std::vector<int64_t>* selection =
        trainer_->store().GetClientSelection(r);
    if (selection == nullptr) continue;
    for (int64_t client : *selection) {
      index_.RecordClientParticipation(client);
      for (int64_t t = (r - 1) * config.local_iters_e + 1;
           t <= r * config.local_iters_e; ++t) {
        const std::vector<int64_t>* batch =
            trainer_->store().GetMinibatch(t, client);
        if (batch == nullptr) continue;
        for (int64_t index : *batch) {
          index_.RecordSampleUse(client, index);
        }
      }
    }
  }
}

Result<UnlearningOutcome> CompactUnlearner::RetrainFromScratch() {
  const FatsConfig& config = trainer_->config();
  const int64_t t_max = trainer_->trained_through();
  trainer_->TruncateStoreFromIteration(1);
  trainer_->BumpGeneration();
  trainer_->set_recomputation_mode(true);
  trainer_->Run(1, t_max);
  trainer_->set_recomputation_mode(false);
  RebuildIndexFromStore();

  UnlearningOutcome outcome;
  outcome.recomputed = true;
  outcome.restart_iteration = 1;
  outcome.recomputed_iterations = t_max;
  outcome.recomputed_rounds = (t_max + config.local_iters_e - 1) /
                              config.local_iters_e;
  return outcome;
}

Result<UnlearningOutcome> CompactUnlearner::UnlearnClient(
    int64_t target, int64_t request_iter) {
  Stopwatch timer;
  if (request_iter < 1 || request_iter > trainer_->trained_through()) {
    return Status::InvalidArgument("request_iter out of range");
  }
  if (target < 0 || target >= trainer_->data()->num_clients()) {
    return Status::OutOfRange("target client out of range");
  }
  if (!trainer_->data()->client_active(target)) {
    return Status::FailedPrecondition("target client already removed");
  }
  const bool participated = index_.ClientParticipated(target);
  FATS_RETURN_NOT_OK(trainer_->data()->RemoveClient(target));
  if (!participated) {
    UnlearningOutcome outcome;
    outcome.wall_seconds = timer.ElapsedSeconds();
    return outcome;
  }
  FATS_ASSIGN_OR_RETURN(UnlearningOutcome outcome, RetrainFromScratch());
  outcome.wall_seconds = timer.ElapsedSeconds();
  return outcome;
}

Result<UnlearningOutcome> CompactUnlearner::UnlearnSample(
    const SampleRef& target, int64_t request_iter) {
  Stopwatch timer;
  if (request_iter < 1 || request_iter > trainer_->trained_through()) {
    return Status::InvalidArgument("request_iter out of range");
  }
  if (!trainer_->data()->sample_active(target.client, target.index)) {
    return Status::FailedPrecondition("target sample already deleted");
  }
  const bool used = index_.SampleUsed(target.client, target.index);
  FATS_RETURN_NOT_OK(trainer_->data()->RemoveSample(target));
  if (!used) {
    UnlearningOutcome outcome;
    outcome.wall_seconds = timer.ElapsedSeconds();
    return outcome;
  }
  FATS_ASSIGN_OR_RETURN(UnlearningOutcome outcome, RetrainFromScratch());
  outcome.wall_seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace fats
