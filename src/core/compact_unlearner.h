// Space-optimized unlearning (§5.3.2): participation bits + full retrain.
//
// The paper's simplified implementation stores only O(N) participation bits
// per client, O(M) bits at the server, and one model each — no mini-batches,
// local models, or client subsets. Verification still costs O(1); on a hit
// the model is fully retrained from scratch (from the same initial model)
// on the reduced data with fresh randomness, giving the same asymptotic
// unlearning time as Theorem 3.
//
// Exactness caveat (documented in DESIGN.md §4 and measured by
// bench_ablation_exactness):
//   * Client level: EXACT. The no-hit path conditions the selection history
//     on "target never selected", and per round ν(M,K | k_u ∉ P) =
//     ν(M−1,K), so the retained state already has the reduced-federation
//     law; the hit path is an independent fresh draw from it.
//   * Sample level: exact only to second order in ρ_S. The no-hit path
//     conditions the *joint* (selection, batch) history on "X_u never
//     drawn", which deflates the target client's selection marginal
//     (P(k_u selected | no use) < P(k_u selected)); a from-scratch retrain
//     cannot repair that conditioning. The residual TV gap is O(ρ_S²).
//     Exact sample-level unlearning needs the per-batch transport of
//     SampleUnlearner, which requires the full state store.

#ifndef FATS_CORE_COMPACT_UNLEARNER_H_
#define FATS_CORE_COMPACT_UNLEARNER_H_

#include <cstdint>

#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "fl/state_store.h"
#include "util/status.h"

namespace fats {

class CompactUnlearner {
 public:
  /// Builds the participation-bit index from the trainer's recorded history
  /// (a real compact deployment would populate it during training and keep
  /// nothing else).
  explicit CompactUnlearner(FatsTrainer* trainer);

  /// Client-level unlearning: exact.
  Result<UnlearningOutcome> UnlearnClient(int64_t target,
                                          int64_t request_iter);

  /// Sample-level unlearning: full retrain on a hit; exact up to an
  /// O(ρ_S²) TV residual (see the header comment).
  Result<UnlearningOutcome> UnlearnSample(const SampleRef& target,
                                          int64_t request_iter);

  const CompactParticipationIndex& index() const { return index_; }
  /// Resident bytes of the compact index (§5.3.2 space accounting).
  int64_t IndexBytes() const { return index_.ApproxBytes(); }

 private:
  /// Wipes all recorded history and retrains from the initial model on the
  /// (already reduced) dataset with fresh randomness, then rebuilds the
  /// participation bits.
  Result<UnlearningOutcome> RetrainFromScratch();
  void RebuildIndexFromStore();

  FatsTrainer* trainer_;
  CompactParticipationIndex index_;
};

}  // namespace fats

#endif  // FATS_CORE_COMPACT_UNLEARNER_H_
