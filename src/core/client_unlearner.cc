#include "core/client_unlearner.h"

#include <algorithm>
#include <set>

#include "util/stopwatch.h"

namespace fats {

Result<UnlearningOutcome> ClientUnlearner::Unlearn(int64_t target_client,
                                                   int64_t request_iter) {
  return UnlearnBatch({target_client}, request_iter);
}

Result<UnlearningOutcome> ClientUnlearner::UnlearnBatch(
    const std::vector<int64_t>& targets, int64_t request_iter) {
  Stopwatch timer;
  UnlearningOutcome outcome;
  // Horizon = executed prefix; see SampleUnlearner for the mid-training
  // semantics.
  const int64_t t_max = trainer_->trained_through();
  const int64_t e = trainer_->config().local_iters_e;
  if (request_iter < 1 || request_iter > t_max) {
    return Status::InvalidArgument("request_iter out of range");
  }
  const int64_t r_u = (request_iter - 1) / e + 1;

  // Validation — all failure paths fire before the journal bracket opens
  // and before any mutation, so a bad batch (duplicate target, removed
  // client, batch that would empty the federation) is rejected whole with
  // no half-applied deletion.
  std::set<int64_t> deduped;
  for (int64_t target : targets) {
    if (target < 0 || target >= trainer_->data()->num_clients()) {
      return Status::OutOfRange("target client out of range");
    }
    if (!trainer_->data()->client_active(target)) {
      return Status::FailedPrecondition("target client already removed");
    }
    if (!deduped.insert(target).second) {
      return Status::InvalidArgument("duplicate client target in batch");
    }
  }
  if (static_cast<int64_t>(deduped.size()) >=
      trainer_->data()->num_active_clients()) {
    return Status::FailedPrecondition(
        "batch would remove every active client from the federation");
  }

  // Verification (O(1) per target via the inverted participation index):
  // earliest round in which any target participated — `r_trigger`
  // restricted to rounds <= r_u (the Algorithm 3 trigger), `r_actual` over
  // the whole recorded history (rounds after r_u model training that had
  // not happened at request time; they must also be purged of the departing
  // client, which equals re-running that future training on the reduced
  // federation).
  int64_t r_trigger = -1;
  int64_t r_actual = -1;
  for (int64_t target : deduped) {
    const int64_t round = trainer_->store().EarliestClientRound(target);
    if (round >= 1) {
      r_actual = (r_actual == -1) ? round : std::min(r_actual, round);
      if (round <= r_u) {
        r_trigger = (r_trigger == -1) ? round : std::min(r_trigger, round);
      }
    }
  }

  // Bracket all trainer-state mutation as one atomic operation for the
  // durable journal (see SampleUnlearner); only a crash skips the End.
  trainer_->NotifyUnlearnBegin();
  struct OpGuard {
    FatsTrainer* trainer;
    ~OpGuard() { trainer->NotifyUnlearnEnd(); }
  } op_guard{trainer_};

  for (int64_t target : deduped) {
    FATS_RETURN_NOT_OK(trainer_->data()->RemoveClient(target));
  }

  if (r_actual == -1) {
    outcome.wall_seconds = timer.ElapsedSeconds();
    return outcome;
  }

  // Re-computation: the client multiset of round r_actual (and later) is
  // re-drawn over the remaining clients with fresh randomness — the
  // ν(M−1, K) measure — and training re-runs to T. Unlike the sample-level
  // case, re-drawing the selections is exactly what the coupling requires
  // here, because the deletion changed the selection measure itself. The
  // re-run inherits the trainer's parallel client runner (config
  // num_threads), which is bit-identical to the serial schedule.
  const int64_t t_restart = (r_actual - 1) * e + 1;
  trainer_->TruncateStoreFromIteration(t_restart);
  trainer_->BumpGeneration();
  trainer_->set_recomputation_mode(true);
  trainer_->Run(t_restart, t_max);
  trainer_->set_recomputation_mode(false);

  const int64_t r_last = (t_max + e - 1) / e;
  outcome.first_replayed_iteration = t_restart;
  outcome.replayed_iterations = t_max - t_restart + 1;
  outcome.replayed_rounds = r_last - r_actual + 1;
  if (r_trigger != -1) {
    const int64_t t_c = (r_trigger - 1) * e + 1;
    outcome.recomputed = true;
    outcome.restart_iteration = t_c;
    outcome.recomputed_iterations = t_max - t_c + 1;
    outcome.recomputed_rounds = r_last - r_trigger + 1;
  }
  outcome.wall_seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace fats
