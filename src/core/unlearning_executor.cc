#include "core/unlearning_executor.h"

#include "rng/sampling.h"
#include "util/logging.h"

namespace fats {

// Requests execute strictly in order; each unlearner's recomputation runs
// through the trainer and so inherits its deterministic parallel client
// runner (config num_threads) without any extra wiring here.
Result<UnlearningSummary> UnlearningExecutor::ExecuteStream(
    const std::vector<UnlearningRequest>& requests) {
  UnlearningSummary summary;
  for (const UnlearningRequest& request : requests) {
    if (request.kind == UnlearningRequest::Kind::kSample) {
      FATS_ASSIGN_OR_RETURN(
          UnlearningOutcome outcome,
          sample_unlearner_.Unlearn(request.sample, request.request_iter));
      summary.Add(outcome);
    } else {
      FATS_ASSIGN_OR_RETURN(
          UnlearningOutcome outcome,
          client_unlearner_.Unlearn(request.client, request.request_iter));
      summary.Add(outcome);
    }
  }
  return summary;
}

Result<UnlearningSummary> UnlearningExecutor::ExecuteSampleBatch(
    const std::vector<SampleRef>& targets, int64_t request_iter) {
  UnlearningSummary summary;
  FATS_ASSIGN_OR_RETURN(UnlearningOutcome outcome,
                        sample_unlearner_.UnlearnBatch(targets, request_iter));
  summary.Add(outcome);
  summary.requests = static_cast<int64_t>(targets.size());
  return summary;
}

Result<UnlearningSummary> UnlearningExecutor::ExecuteClientBatch(
    const std::vector<int64_t>& targets, int64_t request_iter) {
  UnlearningSummary summary;
  FATS_ASSIGN_OR_RETURN(UnlearningOutcome outcome,
                        client_unlearner_.UnlearnBatch(targets, request_iter));
  summary.Add(outcome);
  summary.requests = static_cast<int64_t>(targets.size());
  return summary;
}

std::vector<SampleRef> PickRandomActiveSamples(const FederatedDataset& data,
                                               int64_t w, RngStream* rng) {
  // Enumerate active (client, sample) pairs implicitly: draw a client
  // weighted by its active sample count, then a uniform active sample; keep
  // distinct picks.
  std::vector<SampleRef> picks;
  FATS_CHECK_GT(data.num_active_clients(), 0);
  const std::vector<int64_t>& clients = data.active_clients();
  std::vector<double> weights;
  weights.reserve(clients.size());
  for (int64_t k : clients) {
    weights.push_back(static_cast<double>(data.num_active_samples(k)));
  }
  int64_t guard = 0;
  while (static_cast<int64_t>(picks.size()) < w) {
    FATS_CHECK_LT(++guard, 100000) << "not enough active samples to pick";
    const int64_t ci = SampleCategorical(weights, rng);
    const int64_t client = clients[static_cast<size_t>(ci)];
    const std::vector<int64_t>& active = data.active_sample_indices(client);
    if (active.empty()) continue;
    SampleRef ref;
    ref.client = client;
    ref.index = active[static_cast<size_t>(rng->UniformInt(active.size()))];
    bool duplicate = false;
    for (const SampleRef& existing : picks) {
      if (existing == ref) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) picks.push_back(ref);
  }
  return picks;
}

std::vector<int64_t> PickRandomActiveClients(const FederatedDataset& data,
                                             int64_t w, RngStream* rng) {
  const std::vector<int64_t>& clients = data.active_clients();
  FATS_CHECK_LE(w, static_cast<int64_t>(clients.size()));
  std::vector<int64_t> positions =
      SampleWithoutReplacement(static_cast<int64_t>(clients.size()), w, rng);
  std::vector<int64_t> picks;
  picks.reserve(positions.size());
  for (int64_t pos : positions) {
    picks.push_back(clients[static_cast<size_t>(pos)]);
  }
  return picks;
}

}  // namespace fats
