// Long-lived unlearning request service on top of FATS-SU / FATS-CU.
//
// The unlearners process one request (or one simultaneous batch) at a time,
// paying a model replay per request. This service amortizes Theorem 3
// across a whole queue: deletion requests are validated and triaged in O(1)
// against the StateStore's inverted participation index at Submit time,
// then Flush applies every pending dataset mutation and history rewrite
// transactionally — in queue order, with per-request generation bumps
// mirroring sequential processing exactly — and performs at most ONE model
// replay, from the earliest iteration any pending request affected.
//
// Why one replay is exact: every history rewrite a request induces is
// model-independent. A sample deletion substitutes the affected recorded
// mini-batches with fresh draws keyed by (seed, generation, round, client,
// iteration) and the reduced active set; a client removal truncates the
// store and redraws client selections and mini-batches for the truncated
// rounds with the same stream keys Run would use. Neither consults model
// parameters. Processing the queue in order therefore produces bit-for-bit
// the same final sampling history as running the unlearners sequentially —
// and the final model is a deterministic function of that history, computed
// by a single ReplayFrom(earliest affected iteration) instead of one replay
// per request. (Communication counters differ: that saving is the point.)
//
// Queue semantics: Submit validates against the *pending* state — the
// dataset as it will be once the queue flushes — so a request that would
// fail mid-flush (repeat deletion, deletion on a departing client, a batch
// that empties a client or the federation) is rejected up front and the
// flush itself cannot half-apply. The caller must not mutate the dataset
// or trainer history between Submit and Flush except through this service.

#ifndef FATS_CORE_UNLEARNING_SERVICE_H_
#define FATS_CORE_UNLEARNING_SERVICE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/fats_trainer.h"
#include "core/unlearning_executor.h"
#include "util/status.h"

namespace fats {

/// Aggregate cost of one coalesced Flush (and, summed, of a stream).
struct ServiceFlushStats {
  int64_t requests = 0;
  int64_t sample_requests = 0;
  int64_t client_requests = 0;
  /// Requests whose earliest recorded participation was at or before their
  /// request_iter (the Algorithm 2/3 trigger — the Theorem 3 quantity).
  int64_t triggered_requests = 0;
  /// Recorded mini-batches substituted with fresh reduced-measure draws.
  int64_t substituted_batches = 0;
  /// Rounds whose selection + mini-batches were redrawn after a client
  /// removal truncated the store.
  int64_t redrawn_rounds = 0;
  /// Model replays performed: 0 (nothing affected) or 1 per flush.
  int64_t replays = 0;
  /// First iteration of the single coalesced replay (-1 when replays == 0).
  int64_t replay_start_iteration = -1;
  /// Iterations the coalesced replay actually re-executed.
  int64_t replayed_iterations = 0;
  /// What the same queue would have replayed processed one request at a
  /// time (sum of per-request replay spans). The coalescing factor is
  /// sequential_replayed_iterations / replayed_iterations.
  int64_t sequential_replayed_iterations = 0;
  double wall_seconds = 0.0;

  void Accumulate(const ServiceFlushStats& other) {
    requests += other.requests;
    sample_requests += other.sample_requests;
    client_requests += other.client_requests;
    triggered_requests += other.triggered_requests;
    substituted_batches += other.substituted_batches;
    redrawn_rounds += other.redrawn_rounds;
    replays += other.replays;
    replayed_iterations += other.replayed_iterations;
    sequential_replayed_iterations += other.sequential_replayed_iterations;
    wall_seconds += other.wall_seconds;
  }
};

/// A stream executed through the service: per-flush totals plus flush count.
struct ServiceSummary {
  int64_t flushes = 0;
  ServiceFlushStats totals;
};

class UnlearningService {
 public:
  /// O(1) answer to "must we retrain, and from which iteration?".
  struct Triage {
    /// Earliest recorded participation of the target: first use-iteration
    /// of the sample, or first iteration of the client's first
    /// participating round. -1 when the target never participated (the
    /// deletion needs no replay at all).
    int64_t restart_iteration = -1;
    /// Participation at or before request_iter (Algorithm 2/3 trigger).
    bool triggers = false;
  };

  explicit UnlearningService(FatsTrainer* trainer) : trainer_(trainer) {}

  /// Validates the request against the pending state and enqueues it.
  /// O(1). Errors (nothing is enqueued, nothing is mutated):
  ///   InvalidArgument    — request_iter outside [1, trained_through()]
  ///   OutOfRange         — client or sample index out of range
  ///   FailedPrecondition — target already deleted or pending deletion; a
  ///                        sample of a departing client; a deletion that
  ///                        would empty its client's active sample set or
  ///                        remove the last active client
  Status Submit(const UnlearningRequest& request);

  /// O(1) triage against the inverted index; does not validate or enqueue.
  Triage TriageRequest(const UnlearningRequest& request) const;

  int64_t pending() const { return static_cast<int64_t>(queue_.size()); }

  /// Drains the queue: applies every pending mutation and history rewrite
  /// in submit order inside one durable-journal bracket, then replays the
  /// model once from the earliest affected iteration. A model replayed by
  /// Flush is bitwise-identical to processing the same requests one at a
  /// time through SampleUnlearner / ClientUnlearner. No-op on an empty
  /// queue.
  Result<ServiceFlushStats> Flush();

  /// Submits every request in order, flushing whenever `coalesce_window`
  /// requests are pending (coalesce_window <= 0: one flush at the end).
  /// Streaming forgetting policies — e.g. the SIFU-style P9/P70 client
  /// departure sequences — are this with the policy's request order.
  Result<ServiceSummary> ExecuteStream(
      const std::vector<UnlearningRequest>& requests,
      int64_t coalesce_window = 0);

 private:
  struct PairHash {
    size_t operator()(const std::pair<int64_t, int64_t>& key) const {
      uint64_t h = static_cast<uint64_t>(key.first) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(key.second) + 0x7F4A7C15ull + (h << 6);
      return static_cast<size_t>(h);
    }
  };

  /// First-occurrence-order unique clients of a selection multiset
  /// (mirrors FatsTrainer::UniqueClients; the order fixes the reduction
  /// order during replay).
  std::vector<int64_t> UniqueClients(const std::vector<int64_t>& multiset) const;

  /// Applies one sample deletion: removes the sample, bumps the
  /// generation, substitutes every affected recorded batch via the
  /// inverted index. Returns the first substituted iteration or -1.
  Result<int64_t> ApplySampleDeletion(const SampleRef& target,
                                      int64_t t_max, ServiceFlushStats* stats);

  /// Applies one client removal: removes the client; when it participated,
  /// truncates the store, bumps the generation, and redraws the truncated
  /// rounds' selections and mini-batches exactly as Run would. Returns the
  /// restart iteration or -1.
  Result<int64_t> ApplyClientRemoval(int64_t target, int64_t t_max,
                                     ServiceFlushStats* stats);

  FatsTrainer* trainer_;
  std::vector<UnlearningRequest> queue_;

  // Pending-state overlays: what the dataset will look like post-flush.
  std::unordered_set<std::pair<int64_t, int64_t>, PairHash> pending_samples_;
  std::unordered_set<int64_t> pending_clients_;
  std::unordered_map<int64_t, int64_t> pending_sample_counts_;
};

}  // namespace fats

#endif  // FATS_CORE_UNLEARNING_SERVICE_H_
