// FATS — Federated Averaging with TV-Stability (Algorithm 1).
//
// The trainer executes T = R·E iterations grouped into R communication
// rounds. At each round start the server draws a multiset of K clients
// *with replacement* (the ν(M,K) law of Lemma 1); each distinct selected
// client runs E local mini-batch SGD iterations over uniformly-sampled
// size-b subsets of its active data (the ξ(N,b) law); at round end the
// server averages the local models with multiset multiplicity.
//
// Everything the unlearning algorithms need is recorded in the StateStore:
// P^(t), B_k^(t), θ_k^(t), θ^(t) (the save(·) calls of Algorithm 1), plus
// the earliest-use dictionaries for O(1) verification.
//
// Run(t0) implements the general entry point FATS(t0, T, E, η, ρ_S, ρ_C):
// t0 = 1 is fresh training; a mid-round t0 reloads P^(t0) and the local
// models θ_k^(t0−1) from the store (lines 3–5). Re-computation after a
// deletion = BumpGeneration() + store truncation + Run(t_S): the generation
// field makes every stream drawn in the suffix independent of the original
// run, which realizes the fresh part of the coupling in Theorem 1, while
// the untouched prefix realizes the reused part.

#ifndef FATS_CORE_FATS_TRAINER_H_
#define FATS_CORE_FATS_TRAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/fats_config.h"
#include "data/federated_dataset.h"
#include "fl/availability.h"
#include "fl/comm_stats.h"
#include "fl/parallel_clients.h"
#include "fl/state_store.h"
#include "fl/train_events.h"
#include "fl/train_log.h"
#include "nn/model_zoo.h"
#include "transport/reliable_channel.h"
#include "transport/transport.h"

namespace fats {

class FatsTrainer {
 public:
  /// `data` is borrowed and must outlive the trainer. Deletions are applied
  /// to `data` externally (by the unlearners) between runs.
  FatsTrainer(const ModelSpec& spec, const FatsConfig& config,
              FederatedDataset* data);

  /// Fresh training: records the initial model as round 0 and runs
  /// iterations 1..T. Equivalent to TrainUntil(T).
  void Train();

  /// Incremental training: continues from wherever training previously
  /// stopped up to iteration `t_end` (inclusive). The first call records
  /// the initial model. Used to issue unlearning requests mid-training:
  ///   trainer.TrainUntil(t_u);      // train to the request time
  ///   unlearner.Unlearn(..., t_u);  // exact unlearning of the prefix
  ///   trainer.TrainUntil(T);        // continue on the reduced data
  void TrainUntil(int64_t t_end);

  /// Runs iterations [t0, t_end] (Algorithm 1); the two-argument form
  /// supports pausing mid-training (e.g. to serve an unlearning request at
  /// time t_u and then continue on the reduced data). t0 must be in [1, T]
  /// and t_end in [t0, T]. If t0 is not a round start, the round's client
  /// selection and the local models at t0−1 are loaded from the store.
  /// Client selections and mini-batches for [t0, t_end] are drawn fresh
  /// (used by client-level re-computation, where the selection measure
  /// itself changed).
  void Run(int64_t t0) { Run(t0, config_.total_iters_t()); }
  void Run(int64_t t0, int64_t t_end);

  /// Deterministically re-executes iterations [t0, t_end] against the
  /// *stored* sampling history: client selections and mini-batches are
  /// loaded from the store (which sample-level unlearning has partially
  /// substituted), and only the model trajectory is recomputed. This
  /// realizes the SU_r transport of Theorem 1's proof: the selection
  /// history ν is unaffected by a sample deletion and must be reused, not
  /// redrawn — redrawing it would bias the selection marginal and break
  /// exactness.
  void ReplayFrom(int64_t t0) { ReplayFrom(t0, trained_through_); }
  void ReplayFrom(int64_t t0, int64_t t_end);

  /// Highest iteration executed so far (0 before training). Unlearning
  /// requests issued mid-training re-compute only up to this point;
  /// Run(trained_through()+1, ...) continues training afterwards.
  int64_t trained_through() const { return trained_through_; }

  double EvaluateTestAccuracy();

  Tensor global_params() { return model_->GetParameters(); }

  StateStore& store() { return store_; }
  const StateStore& store() const { return store_; }
  const TrainLog& log() const { return log_; }
  TrainLog* mutable_log() { return &log_; }
  CommStats& comm_stats() { return comm_stats_; }
  const FatsConfig& config() const { return config_; }
  Model* model() { return model_.get(); }
  FederatedDataset* data() { return data_; }

  int64_t K() const { return k_; }
  int64_t b() const { return b_; }

  /// Makes all subsequently drawn streams independent of earlier ones.
  void BumpGeneration() {
    ++generation_;
    if (sink_ != nullptr) sink_->OnGenerationBump(generation_);
  }
  uint64_t generation() const { return generation_; }

  /// Attaches an observer of every durable state transition (the journaled
  /// session). Borrowed; pass nullptr to detach. The sink sees events after
  /// the in-memory mutation, in commit order, on the calling thread.
  void set_event_sink(TrainEventSink* sink) { sink_ = sink; }
  TrainEventSink* event_sink() { return sink_; }

  /// Truncates the store from `from_iter` onward (client-level unlearning),
  /// notifying the event sink. Unlearners must use this instead of mutating
  /// store() directly so the durable record stays consistent.
  void TruncateStoreFromIteration(int64_t from_iter) {
    store_.TruncateFromIteration(from_iter, config_.local_iters_e);
    if (sink_ != nullptr) sink_->OnTruncate(from_iter);
  }

  /// Replaces the stored mini-batch for (t, client) (sample-level
  /// unlearning's substitution step), notifying the event sink.
  void SubstituteMinibatch(int64_t t, int64_t client,
                           std::vector<int64_t> indices) {
    if (sink_ != nullptr) sink_->OnMinibatch(t, client, indices);
    store_.SaveMinibatch(t, client, std::move(indices));
  }

  /// Records the client multiset for `round` (the coalesced client-removal
  /// path pre-draws selections exactly as Run would), notifying the event
  /// sink so the durable record stays consistent.
  void RecordClientSelection(int64_t round, std::vector<int64_t> multiset) {
    if (sink_ != nullptr) sink_->OnClientSelection(round, multiset);
    store_.SaveClientSelection(round, std::move(multiset));
  }

  /// Unlearning-operation brackets, forwarded to the sink. Everything
  /// between Begin and End is atomic under crash recovery.
  void NotifyUnlearnBegin() {
    if (sink_ != nullptr) sink_->OnUnlearnBegin();
  }
  void NotifyUnlearnEnd() {
    if (sink_ != nullptr) sink_->OnUnlearnEnd();
  }

  /// Dropped client executions retried so far (see fl/availability.h).
  int64_t dropout_retries() const { return dropout_retries_; }

  /// Transport deliveries that exhausted the retry budget and went through
  /// on the forced final attempt (the availability-style degradation path,
  /// see transport/reliable_channel.h).
  int64_t transport_forced_deliveries() const {
    return transport_forced_deliveries_;
  }

  /// The reliable channel every model broadcast/upload travels through.
  /// Exposed for ledger introspection (ChannelStats) in tests and benches.
  const transport::ReliableChannel& channel() const { return *channel_; }

  // Checkpoint-restore support (see io/checkpoint.h). These overwrite the
  // trainer's progress markers; use only when restoring a saved state whose
  // store contents match.
  void set_generation(uint64_t generation) { generation_ = generation; }
  void set_trained_through(int64_t t) { trained_through_ = t; }
  /// Rounds executed while this flag is set are marked in the log.
  void set_recomputation_mode(bool on) { recomputation_mode_ = on; }
  /// Seeds the round-loss accumulator for the next Run/ReplayFrom entry
  /// (consumed once, then reset). Used by crash recovery when resuming a
  /// pass mid-round so the re-executed round's mean_local_loss still
  /// includes the iterations committed before the crash.
  void SeedRoundLossAccumulator(double sum, int64_t count) {
    resume_loss_sum_ = sum;
    resume_loss_count_ = count;
  }

  /// Total local SGD iterations executed across all runs (compute cost).
  int64_t local_iterations_executed() const {
    return local_iterations_executed_;
  }

  /// Executes per-round client updates; parallel when config.num_threads
  /// exceeds 1, bit-identical to serial either way. Exposed so unlearners
  /// that re-run local client work share the trainer's pool and replicas.
  ParallelClientRunner* client_runner() { return &runner_; }

  /// Fused round-start batching (on by default): at every round-start
  /// iteration — where all participants provably start their local step
  /// from the broadcast global model — the K clients' forward/backward
  /// GEMMs share one per-layer weight pack, packed once on the main thread
  /// (DESIGN.md §7.6). Results are bit-identical either way; the switch
  /// exists as a diagnostics escape hatch and for A/B exactness tests.
  void set_fused_round_pack(bool on) { fused_round_pack_ = on; }
  bool fused_round_pack() const { return fused_round_pack_; }

 private:
  /// Emits the iteration-commit mark for iteration `t` to the sink, if any.
  void NotifyIterationComplete(int64_t t, int64_t t_end, TrainPassKind pass,
                               double loss_sum, int64_t loss_count);

  /// Moves one model through the wire (direction, round, iteration, client,
  /// seq address the delivery; see transport/reliable_channel.h), charges
  /// the comm ledger, and returns the decoded parameters — bitwise the
  /// encoded ones, which is what keeps wire runs exact.
  Tensor TransferModel(transport::Direction direction, int64_t round,
                       int64_t iteration, int64_t client, uint32_t seq,
                       const transport::EncodedModel& model);

  /// Unique clients of the multiset, preserving first-occurrence order
  /// (the output order drives the reduction order, so it is part of the
  /// determinism contract).
  std::vector<int64_t> UniqueClients(
      const std::vector<int64_t>& multiset) const;

  ModelSpec spec_;
  FatsConfig config_;
  FederatedDataset* data_;
  std::unique_ptr<Model> model_;
  Tensor initial_params_;
  Batch test_batch_;
  int64_t k_;
  int64_t b_;
  uint64_t generation_ = 0;
  bool recomputation_mode_ = false;
  bool fused_round_pack_ = true;
  int64_t local_iterations_executed_ = 0;
  int64_t trained_through_ = 0;
  int64_t dropout_retries_ = 0;
  int64_t transport_forced_deliveries_ = 0;
  // One-shot round-loss accumulator seed, set by SeedRoundLossAccumulator
  // and consumed at the next Run/ReplayFrom entry.
  double resume_loss_sum_ = 0.0;
  int64_t resume_loss_count_ = 0;
  TrainEventSink* sink_ = nullptr;
  AvailabilitySchedule availability_;
  // The wire: every broadcast/upload is serialized, framed, and delivered
  // through the channel (in-process ring buffer today; the channel is the
  // seam where a socket backend drops in).
  std::unique_ptr<transport::LocalTransport> wire_;
  std::unique_ptr<transport::ReliableChannel> channel_;
  ParallelClientRunner runner_;
  StateStore store_;
  TrainLog log_;
  CommStats comm_stats_;
};

}  // namespace fats

#endif  // FATS_CORE_FATS_TRAINER_H_
