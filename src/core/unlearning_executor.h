// Request-stream driver on top of FATS-SU / FATS-CU.
//
// Handles the evaluation scenarios of §6: batches of simultaneous requests
// (Figure 1), request-count sweeps (Figure 3), and streaming sequences of
// interleaved sample/client deletions (Figure 8 / Appendix A.5). Also
// provides random target pickers used by every bench.

#ifndef FATS_CORE_UNLEARNING_EXECUTOR_H_
#define FATS_CORE_UNLEARNING_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "core/client_unlearner.h"
#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "rng/rng_stream.h"
#include "util/status.h"

namespace fats {

/// A single entry of a streaming unlearning workload.
struct UnlearningRequest {
  enum class Kind { kSample, kClient };
  Kind kind = Kind::kSample;
  SampleRef sample;       // when kind == kSample
  int64_t client = -1;    // when kind == kClient
  int64_t request_iter = 0;  // t_u
};

/// Aggregate cost over a processed request sequence. `recomputations` /
/// `total_recomputed_*` are the Theorem 3 triggered quantities; `replays` /
/// `total_replayed_*` count recomputation actually performed (see
/// UnlearningOutcome for why they can differ).
struct UnlearningSummary {
  int64_t requests = 0;
  int64_t recomputations = 0;
  int64_t total_recomputed_iterations = 0;
  int64_t total_recomputed_rounds = 0;
  int64_t replays = 0;
  int64_t total_replayed_iterations = 0;
  int64_t total_replayed_rounds = 0;
  double total_wall_seconds = 0.0;

  void Add(const UnlearningOutcome& outcome) {
    ++requests;
    if (outcome.recomputed) ++recomputations;
    total_recomputed_iterations += outcome.recomputed_iterations;
    total_recomputed_rounds += outcome.recomputed_rounds;
    if (outcome.replayed_iterations > 0) ++replays;
    total_replayed_iterations += outcome.replayed_iterations;
    total_replayed_rounds += outcome.replayed_rounds;
    total_wall_seconds += outcome.wall_seconds;
  }

  double MeanRecomputedIterations() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(total_recomputed_iterations) /
                               static_cast<double>(requests);
  }
};

class UnlearningExecutor {
 public:
  explicit UnlearningExecutor(FatsTrainer* trainer)
      : trainer_(trainer),
        sample_unlearner_(trainer),
        client_unlearner_(trainer) {}

  /// Processes the requests one at a time in order (streaming semantics).
  Result<UnlearningSummary> ExecuteStream(
      const std::vector<UnlearningRequest>& requests);

  /// Processes `targets` as one simultaneous batch (Figure 1 semantics).
  Result<UnlearningSummary> ExecuteSampleBatch(
      const std::vector<SampleRef>& targets, int64_t request_iter);
  Result<UnlearningSummary> ExecuteClientBatch(
      const std::vector<int64_t>& targets, int64_t request_iter);

  FatsTrainer* trainer() { return trainer_; }

 private:
  FatsTrainer* trainer_;
  SampleUnlearner sample_unlearner_;
  ClientUnlearner client_unlearner_;
};

/// Draws `w` distinct random active samples across active clients.
std::vector<SampleRef> PickRandomActiveSamples(const FederatedDataset& data,
                                               int64_t w, RngStream* rng);

/// Draws `w` distinct random active clients.
std::vector<int64_t> PickRandomActiveClients(const FederatedDataset& data,
                                             int64_t w, RngStream* rng);

}  // namespace fats

#endif  // FATS_CORE_UNLEARNING_EXECUTOR_H_
