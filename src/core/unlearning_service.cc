#include "core/unlearning_service.h"

#include <algorithm>
#include <utility>

#include "fl/client.h"
#include "fl/server.h"
#include "util/stopwatch.h"

namespace fats {

Status UnlearningService::Submit(const UnlearningRequest& request) {
  const int64_t t_max = trainer_->trained_through();
  if (request.request_iter < 1 || request.request_iter > t_max) {
    return Status::InvalidArgument("request_iter out of range");
  }
  const FederatedDataset* data = trainer_->data();
  if (request.kind == UnlearningRequest::Kind::kSample) {
    const SampleRef& ref = request.sample;
    if (ref.client < 0 || ref.client >= data->num_clients()) {
      return Status::OutOfRange("target client out of range");
    }
    if (!data->client_active(ref.client)) {
      return Status::FailedPrecondition("target client already removed");
    }
    if (pending_clients_.count(ref.client) > 0) {
      return Status::FailedPrecondition(
          "target sample's client is pending removal");
    }
    if (!data->sample_active(ref.client, ref.index)) {
      return Status::FailedPrecondition("target sample already deleted");
    }
    if (pending_samples_.count({ref.client, ref.index}) > 0) {
      return Status::FailedPrecondition(
          "target sample already pending deletion");
    }
    int64_t& pending_count = pending_sample_counts_[ref.client];
    if (data->num_active_samples(ref.client) - pending_count <= 1) {
      return Status::FailedPrecondition(
          "deletion would empty the client's active sample set; submit a "
          "client-level request instead");
    }
    ++pending_count;
    pending_samples_.insert({ref.client, ref.index});
  } else {
    const int64_t target = request.client;
    if (target < 0 || target >= data->num_clients()) {
      return Status::OutOfRange("target client out of range");
    }
    if (!data->client_active(target)) {
      return Status::FailedPrecondition("target client already removed");
    }
    if (pending_clients_.count(target) > 0) {
      return Status::FailedPrecondition(
          "target client already pending removal");
    }
    if (data->num_active_clients() -
            static_cast<int64_t>(pending_clients_.size()) <=
        1) {
      return Status::FailedPrecondition(
          "removal would leave the federation with no active client");
    }
    pending_clients_.insert(target);
  }
  queue_.push_back(request);
  return Status::OK();
}

UnlearningService::Triage UnlearningService::TriageRequest(
    const UnlearningRequest& request) const {
  Triage triage;
  const StateStore& store = trainer_->store();
  const int64_t e = trainer_->config().local_iters_e;
  if (request.kind == UnlearningRequest::Kind::kSample) {
    const int64_t first = store.EarliestSampleUse(request.sample);
    if (first >= 1) {
      triage.restart_iteration = first;
      triage.triggers = first <= request.request_iter;
    }
  } else {
    const int64_t round = store.EarliestClientRound(request.client);
    if (round >= 1) {
      triage.restart_iteration = (round - 1) * e + 1;
      triage.triggers = round <= (request.request_iter - 1) / e + 1;
    }
  }
  return triage;
}

std::vector<int64_t> UnlearningService::UniqueClients(
    const std::vector<int64_t>& multiset) const {
  std::vector<uint8_t> seen(
      static_cast<size_t>(trainer_->data()->num_clients()), 0);
  std::vector<int64_t> unique;
  unique.reserve(multiset.size());
  for (int64_t k : multiset) {
    uint8_t& flag = seen[static_cast<size_t>(k)];
    if (flag == 0) {
      flag = 1;
      unique.push_back(k);
    }
  }
  return unique;
}

Result<int64_t> UnlearningService::ApplySampleDeletion(
    const SampleRef& target, int64_t t_max, ServiceFlushStats* stats) {
  FATS_RETURN_NOT_OK(trainer_->data()->RemoveSample(target));

  // Copy the posting list: substitution rewrites it in place (each replaced
  // batch de-indexes the deleted sample; the list empties out as the loop
  // runs).
  std::vector<int64_t> uses;
  if (const std::vector<int64_t>* posted = trainer_->store().SampleUses(target);
      posted != nullptr) {
    uses = *posted;
  }

  // Sequential processing bumps the generation once per request whether or
  // not any batch is affected (SampleUnlearner does); mirror that exactly —
  // later requests' draw keys depend on it.
  trainer_->BumpGeneration();
  if (uses.empty()) return -1;

  const int64_t e = trainer_->config().local_iters_e;
  ClientRuntime runtime(trainer_->data(), trainer_->model());
  for (int64_t t : uses) {
    StreamId id;
    id.purpose = RngPurpose::kMinibatchSampling;
    id.generation = trainer_->generation();
    id.round = static_cast<uint64_t>((t - 1) / e + 1);
    id.client = static_cast<uint64_t>(target.client);
    id.iteration = static_cast<uint64_t>(t);
    RngStream stream(trainer_->config().seed, id);
    const int64_t batch_size = std::min<int64_t>(
        trainer_->b(), trainer_->data()->num_active_samples(target.client));
    if (batch_size <= 0) {
      // Unreachable after Submit-time validation; defense in depth.
      return Status::FailedPrecondition(
          "client has no active samples left to draw a substitute batch");
    }
    trainer_->SubstituteMinibatch(
        t, target.client,
        runtime.SampleMinibatch(target.client, batch_size, &stream));
  }
  stats->substituted_batches += static_cast<int64_t>(uses.size());
  stats->sequential_replayed_iterations += t_max - uses.front() + 1;
  return uses.front();
}

Result<int64_t> UnlearningService::ApplyClientRemoval(
    int64_t target, int64_t t_max, ServiceFlushStats* stats) {
  // Earliest participation must be read before the removal-and-truncate;
  // the truncation erases the client's postings.
  const int64_t r_actual = trainer_->store().EarliestClientRound(target);
  FATS_RETURN_NOT_OK(trainer_->data()->RemoveClient(target));
  if (r_actual == -1) return -1;  // never selected: no rewrite, no bump

  const int64_t e = trainer_->config().local_iters_e;
  const int64_t t_restart = (r_actual - 1) * e + 1;
  const int64_t r_last = (t_max + e - 1) / e;
  trainer_->TruncateStoreFromIteration(t_restart);
  trainer_->BumpGeneration();

  // Redraw the truncated rounds' sampling history exactly as
  // FatsTrainer::Run would — same stream addresses, same active-set state —
  // but without computing any model. The single coalesced replay at the end
  // of Flush supplies the model trajectory.
  ClientRuntime runtime(trainer_->data(), trainer_->model());
  for (int64_t r = r_actual; r <= r_last; ++r) {
    StreamId sel_id;
    sel_id.purpose = RngPurpose::kClientSampling;
    sel_id.generation = trainer_->generation();
    sel_id.round = static_cast<uint64_t>(r);
    RngStream sel_stream(trainer_->config().seed, sel_id);
    std::vector<int64_t> selection = ServerRuntime::SampleClientsWithReplacement(
        *trainer_->data(), trainer_->K(), &sel_stream);
    const std::vector<int64_t> participants = UniqueClients(selection);
    trainer_->RecordClientSelection(r, std::move(selection));
    const int64_t t_round_end = std::min(r * e, t_max);
    for (int64_t t = (r - 1) * e + 1; t <= t_round_end; ++t) {
      for (int64_t client : participants) {
        StreamId batch_id;
        batch_id.purpose = RngPurpose::kMinibatchSampling;
        batch_id.generation = trainer_->generation();
        batch_id.round = static_cast<uint64_t>(r);
        batch_id.client = static_cast<uint64_t>(client);
        batch_id.iteration = static_cast<uint64_t>(t);
        RngStream stream(trainer_->config().seed, batch_id);
        const int64_t batch_size = std::min<int64_t>(
            trainer_->b(), trainer_->data()->num_active_samples(client));
        if (batch_size <= 0) {
          return Status::FailedPrecondition(
              "client has no active samples left to draw a batch");
        }
        trainer_->SubstituteMinibatch(
            t, client, runtime.SampleMinibatch(client, batch_size, &stream));
      }
    }
  }
  stats->redrawn_rounds += r_last - r_actual + 1;
  stats->sequential_replayed_iterations += t_max - t_restart + 1;
  return t_restart;
}

Result<ServiceFlushStats> UnlearningService::Flush() {
  ServiceFlushStats stats;
  if (queue_.empty()) return stats;
  Stopwatch timer;
  const int64_t t_max = trainer_->trained_through();

  // One durable-journal bracket around every mutation of the whole queue:
  // a crash mid-flush rolls the entire batch back, never half of it.
  trainer_->NotifyUnlearnBegin();
  struct OpGuard {
    FatsTrainer* trainer;
    ~OpGuard() { trainer->NotifyUnlearnEnd(); }
  } op_guard{trainer_};

  int64_t min_restart = -1;
  for (const UnlearningRequest& request : queue_) {
    ++stats.requests;
    if (TriageRequest(request).triggers) ++stats.triggered_requests;
    int64_t restart = -1;
    if (request.kind == UnlearningRequest::Kind::kSample) {
      ++stats.sample_requests;
      FATS_ASSIGN_OR_RETURN(restart,
                            ApplySampleDeletion(request.sample, t_max, &stats));
    } else {
      ++stats.client_requests;
      FATS_ASSIGN_OR_RETURN(restart,
                            ApplyClientRemoval(request.client, t_max, &stats));
    }
    if (restart != -1) {
      min_restart = (min_restart == -1) ? restart
                                        : std::min(min_restart, restart);
    }
  }
  queue_.clear();
  pending_samples_.clear();
  pending_clients_.clear();
  pending_sample_counts_.clear();

  if (min_restart != -1) {
    // The whole queue's history rewrites are in place; one replay from the
    // earliest affected iteration recomputes the model trajectory that
    // sequential processing would have rebuilt once per request.
    trainer_->set_recomputation_mode(true);
    trainer_->ReplayFrom(min_restart);
    trainer_->set_recomputation_mode(false);
    stats.replays = 1;
    stats.replay_start_iteration = min_restart;
    stats.replayed_iterations = t_max - min_restart + 1;
  }
  stats.wall_seconds = timer.ElapsedSeconds();
  return stats;
}

Result<ServiceSummary> UnlearningService::ExecuteStream(
    const std::vector<UnlearningRequest>& requests, int64_t coalesce_window) {
  ServiceSummary summary;
  for (const UnlearningRequest& request : requests) {
    FATS_RETURN_NOT_OK(Submit(request));
    if (coalesce_window > 0 && pending() >= coalesce_window) {
      FATS_ASSIGN_OR_RETURN(ServiceFlushStats stats, Flush());
      ++summary.flushes;
      summary.totals.Accumulate(stats);
    }
  }
  if (pending() > 0) {
    FATS_ASSIGN_OR_RETURN(ServiceFlushStats stats, Flush());
    ++summary.flushes;
    summary.totals.Accumulate(stats);
  }
  return summary;
}

}  // namespace fats
