// Total-variation stability bounds and convergence-theory helpers.
//
// Implements the quantitative side of the paper's analysis:
//   * Lemma 1 stability bounds: FATS is min{ρ_S,1}-sample-level and
//     min{ρ_C,1}-client-level TV-stable.
//   * Condition (7) on the learning rate for Lemma 2.
//   * Γ, the theoretical learning rate, and the convergence bound of
//     Theorem 2 / Corollary 1.
//   * Theorem 3 expected unlearning-time bounds.

#ifndef FATS_CORE_TV_STABILITY_H_
#define FATS_CORE_TV_STABILITY_H_

#include <cstdint>

#include "core/fats_config.h"

namespace fats {

/// Lemma 1: the sample-level TV-stability FATS achieves, min{ρ_S, 1}
/// with ρ_S = T·K·b/(M·N) for the config's effective integers.
double SampleLevelStabilityBound(const FatsConfig& config);

/// Lemma 1: the client-level TV-stability, min{ρ_C, 1} with
/// ρ_C = T·K/(E·M).
double ClientLevelStabilityBound(const FatsConfig& config);

/// Theorem 1: upper bound on the re-computation probability for `w`
/// unlearning requests at the given stability level ρ (= w·min{ρ,1}, capped
/// at 1).
double RecomputationProbabilityBound(double rho, int64_t w);

/// Smoothness/heterogeneity constants used by the convergence results.
struct ConvergenceConstants {
  double smoothness_l = 1.0;         // L (Assumption 1)
  double gradient_variance_g2 = 1.0; // G^2 (Assumption 2)
  double heterogeneity_lambda = 1.0; // λ (Assumption 3), >= 1
  double initial_gap = 1.0;          // F(θ^(0)) − F*
};

/// Condition (7): −η/2 + η³L²λE(E−1) + η²λL/2 < 0.
bool LearningRateConditionHolds(double eta, const ConvergenceConstants& c,
                                int64_t local_iters_e);

/// Largest η satisfying condition (7) (binary search; 0 if none found).
double MaxStableLearningRate(const ConvergenceConstants& c,
                             int64_t local_iters_e);

/// Γ := G² / (L·(F(θ⁰)−F*)·ρ_S·M·N) (Theorem 2).
double Gamma(const ConvergenceConstants& c, double rho_s, int64_t clients_m,
             int64_t samples_per_client_n);

/// The theoretical learning rate η = 1/(L·sqrt(Γ)·T) of Theorem 2.
double TheoreticalLearningRate(const ConvergenceConstants& c, double rho_s,
                               int64_t clients_m, int64_t samples_per_client_n,
                               int64_t total_iters_t);

/// Right-hand side of (10): the average-squared-gradient-norm bound,
///   3·sqrt(L·G²·(F⁰−F*)) / sqrt(ρ_S·M·N)
///   + L·(F⁰−F*)·(E/T)·(ρ_C·M·E/T + 1).
double ConvergenceBound(const ConvergenceConstants& c, const FatsConfig& config);

/// The non-vanishing stability cost term O(1/sqrt(ρ_S·M·N)) alone.
double StabilityCost(const ConvergenceConstants& c, double rho_s,
                     int64_t clients_m, int64_t samples_per_client_n);

/// Theorem 3: expected unlearning running time (in training-time units) for
/// `w` requests at stability ρ: max{min{ρ,1}·w, w / training_time_steps}
/// scaled by `training_time_steps` — i.e. max{min{ρ,1}·w·T, w}.
double ExpectedUnlearningTimeSteps(double rho, int64_t w,
                                   int64_t training_time_steps);

}  // namespace fats

#endif  // FATS_CORE_TV_STABILITY_H_
