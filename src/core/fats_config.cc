#include "core/fats_config.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "transport/fault_injection.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace fats {

int64_t FatsConfig::DeriveK() const {
  const double k = rho_c * static_cast<double>(local_iters_e) * clients_m /
                   static_cast<double>(total_iters_t());
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(k)));
}

int64_t FatsConfig::DeriveB() const {
  const double b = rho_s * static_cast<double>(samples_per_client_n) /
                   (rho_c * static_cast<double>(local_iters_e));
  int64_t rounded = std::max<int64_t>(1, static_cast<int64_t>(std::llround(b)));
  return std::min(rounded, samples_per_client_n);
}

double FatsConfig::EffectiveRhoC() const {
  return static_cast<double>(DeriveK()) * total_iters_t() /
         (static_cast<double>(local_iters_e) * clients_m);
}

double FatsConfig::EffectiveRhoS() const {
  return static_cast<double>(DeriveB()) * DeriveK() * total_iters_t() /
         (static_cast<double>(clients_m) * samples_per_client_n);
}

FatsConfig FatsConfig::FromProfile(const DatasetProfile& profile) {
  FatsConfig config;
  config.clients_m = profile.clients_m;
  config.samples_per_client_n = profile.samples_per_client_n;
  config.rounds_r = profile.rounds_r;
  config.local_iters_e = profile.local_iters_e;
  config.learning_rate = profile.learning_rate;
  // Back-derive the stability targets from the profile's explicit K and b so
  // DeriveK()/DeriveB() reproduce them exactly.
  config.rho_c = profile.rho_c();
  config.rho_s = profile.rho_s();
  return config;
}

Status FatsConfig::Validate() const {
  if (clients_m <= 0 || samples_per_client_n <= 0 || rounds_r <= 0 ||
      local_iters_e <= 0) {
    return Status::InvalidArgument("M, N, R, E must all be positive");
  }
  if (rho_s <= 0.0 || rho_c <= 0.0) {
    return Status::InvalidArgument("stability parameters must be positive");
  }
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("learning rate must be positive");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (dropout_rate < 0.0 || dropout_rate >= 1.0) {
    return Status::InvalidArgument("dropout_rate must be in [0, 1)");
  }
  if (dropout_max_retries < 1) {
    return Status::InvalidArgument("dropout_max_retries must be >= 1");
  }
  if (!fault_spec.empty()) {
    Result<std::vector<failpoint::Spec>> specs =
        failpoint::ParseSpecList(fault_spec);
    if (!specs.ok()) return specs.status();
  }
  {
    Result<transport::TransportFaultSpec> spec =
        transport::TransportFaultSpec::Parse(transport_fault_spec);
    if (!spec.ok()) return spec.status();
  }
  if (state_block_iters < 1) {
    return Status::InvalidArgument("state_block_iters must be >= 1");
  }
  if (state_resident_sealed_blocks < 0 || state_decoded_cache_blocks < 0) {
    return Status::InvalidArgument("state block budgets must be >= 0");
  }
  const int64_t k = DeriveK();
  const int64_t b = DeriveB();
  if (k < 1) return Status::InvalidArgument("derived K < 1");
  if (b < 1 || b > samples_per_client_n) {
    return Status::InvalidArgument(StrFormat(
        "derived b=%lld infeasible for N=%lld", (long long)b,
        (long long)samples_per_client_n));
  }
  return Status::OK();
}

StateStoreOptions FatsConfig::StateOptions() const {
  StateStoreOptions options;
  options.block_iters = state_block_iters;
  options.resident_sealed_blocks = state_resident_sealed_blocks;
  options.decoded_cache_blocks = state_decoded_cache_blocks;
  options.spill_dir = state_spill_dir;
  return options;
}

std::string FatsConfig::ToString() const {
  return StrFormat(
      "FatsConfig(M=%lld N=%lld R=%lld E=%lld rho_s=%.3f rho_c=%.3f "
      "-> K=%lld b=%lld, eff_rho_s=%.3f eff_rho_c=%.3f, lr=%.3f, "
      "threads=%lld)",
      (long long)clients_m, (long long)samples_per_client_n,
      (long long)rounds_r, (long long)local_iters_e, rho_s, rho_c,
      (long long)DeriveK(), (long long)DeriveB(), EffectiveRhoS(),
      EffectiveRhoC(), learning_rate, (long long)num_threads);
}

}  // namespace fats
