#include "core/sample_unlearner.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "fl/client.h"
#include "util/stopwatch.h"

namespace fats {

Result<UnlearningOutcome> SampleUnlearner::Unlearn(const SampleRef& target,
                                                   int64_t request_iter) {
  return UnlearnBatch({target}, request_iter);
}

// Implementation note. Exactness (Theorem 1) requires the *per-batch*
// transport SU_r from the paper's proof, not a naive re-run of FATS from
// t_S: the client-selection history is unaffected by a sample deletion and
// must be REUSED; only the target client's mini-batches that contain the
// deleted sample are re-drawn from the reduced law ξ(N−1, b), and the model
// trajectory is then recomputed deterministically against the (partially
// substituted) history. Re-drawing the selections too would condition the
// kept prefix on "the target was not used", which biases the selection
// marginal — a bias this repo's two-sample distribution test detects.
Result<UnlearningOutcome> SampleUnlearner::UnlearnBatch(
    const std::vector<SampleRef>& targets, int64_t request_iter) {
  Stopwatch timer;
  UnlearningOutcome outcome;
  // The unlearning horizon is how far training has progressed; requests
  // issued mid-training re-compute only the executed prefix and later
  // training continues on the reduced data.
  const int64_t t_max = trainer_->trained_through();
  const int64_t e = trainer_->config().local_iters_e;
  if (request_iter < 1 || request_iter > t_max) {
    return Status::InvalidArgument("request_iter out of range");
  }

  // Validation — everything that can fail does so here, before the journal
  // bracket opens and before any mutation, so a bad batch (duplicate
  // target, already-deleted sample, batch that would empty a client) is
  // rejected whole and no half-applied deletion can ever commit.
  std::map<int64_t, std::set<int64_t>> removed_by_client;
  for (const SampleRef& target : targets) {
    if (!trainer_->data()->sample_active(target.client, target.index)) {
      return Status::FailedPrecondition("target sample already deleted");
    }
    if (!removed_by_client[target.client].insert(target.index).second) {
      return Status::InvalidArgument("duplicate sample target in batch");
    }
  }
  for (const auto& [client, removed] : removed_by_client) {
    if (trainer_->data()->num_active_samples(client) <=
        static_cast<int64_t>(removed.size())) {
      return Status::FailedPrecondition(
          "batch would empty the client's active sample set; use "
          "client-level unlearning instead");
    }
  }

  // Verification + affected-batch lookup via the inverted participation
  // index: O(uses of the sample), not a scan over all T·clients records.
  // The posting lists are copied into `affected_iters` because substitution
  // below mutates them in place.
  int64_t t_trigger = -1;
  std::map<int64_t, std::set<int64_t>> affected_iters;
  for (const auto& [client, removed] : removed_by_client) {
    for (int64_t index : removed) {
      SampleRef ref;
      ref.client = client;
      ref.index = index;
      const std::vector<int64_t>* uses = trainer_->store().SampleUses(ref);
      if (uses == nullptr) continue;
      // Ascending list: front() is the earliest use (Algorithm 2 trigger
      // when it falls at or before the request time).
      if (uses->front() <= request_iter) {
        t_trigger = (t_trigger == -1) ? uses->front()
                                      : std::min(t_trigger, uses->front());
      }
      affected_iters[client].insert(uses->begin(), uses->end());
    }
  }

  // Everything past this point mutates trainer state; bracket it as one
  // atomic operation for the durable journal. Only a process crash skips
  // the End (std::_Exit skips destructors), so recovery rolls back exactly
  // the operations a crash interrupted.
  trainer_->NotifyUnlearnBegin();
  struct OpGuard {
    FatsTrainer* trainer;
    ~OpGuard() { trainer->NotifyUnlearnEnd(); }
  } op_guard{trainer_};

  // The data holders erase the samples regardless of participation.
  for (const auto& [client, removed] : removed_by_client) {
    for (int64_t index : removed) {
      SampleRef ref;
      ref.client = client;
      ref.index = index;
      FATS_RETURN_NOT_OK(trainer_->data()->RemoveSample(ref));
    }
  }

  // Substitute every recorded mini-batch that references a deleted sample:
  // a fresh draw from the reduced measure. (Batches after `request_iter`
  // correspond to training that, at request time, had not happened yet;
  // substituting them equals re-running that future training on the reduced
  // data.) Each substitution goes through SaveMinibatch, which de-indexes
  // the old batch — once the last referencing batch is replaced, the
  // deleted sample's posting list empties out and its key disappears; no
  // index rebuild is ever needed.
  trainer_->BumpGeneration();
  ClientRuntime runtime(trainer_->data(), trainer_->model());
  int64_t t_first_substituted = -1;
  for (const auto& [client, iters] : affected_iters) {
    for (int64_t t : iters) {
      StreamId id;
      id.purpose = RngPurpose::kMinibatchSampling;
      id.generation = trainer_->generation();
      id.round = static_cast<uint64_t>((t - 1) / e + 1);
      id.client = static_cast<uint64_t>(client);
      id.iteration = static_cast<uint64_t>(t);
      RngStream stream(trainer_->config().seed, id);
      const int64_t batch_size = std::min<int64_t>(
          trainer_->b(), trainer_->data()->num_active_samples(client));
      if (batch_size <= 0) {
        // Unreachable after the emptiness pre-check; kept as defense in
        // depth so a future caller bug degrades to an error, not an abort.
        return Status::FailedPrecondition(
            "client has no active samples left to draw a substitute batch");
      }
      trainer_->SubstituteMinibatch(
          t, client, runtime.SampleMinibatch(client, batch_size, &stream));
      t_first_substituted = (t_first_substituted == -1)
                                ? t
                                : std::min(t_first_substituted, t);
    }
  }

  if (t_first_substituted == -1) {
    // No recorded batch referenced a deleted sample: the retained state is
    // already exactly distributed as a fresh run on the reduced data.
    outcome.wall_seconds = timer.ElapsedSeconds();
    return outcome;
  }

  // Recompute the model trajectory against the substituted history. The
  // replay inherits the trainer's parallel client runner (config
  // num_threads), which is bit-identical to the serial schedule.
  trainer_->set_recomputation_mode(true);
  trainer_->ReplayFrom(t_first_substituted);
  trainer_->set_recomputation_mode(false);

  const int64_t r_last = (t_max + e - 1) / e;
  outcome.first_replayed_iteration = t_first_substituted;
  outcome.replayed_iterations = t_max - t_first_substituted + 1;
  outcome.replayed_rounds = r_last - ((t_first_substituted - 1) / e + 1) + 1;
  if (t_trigger != -1) {
    outcome.recomputed = true;
    outcome.restart_iteration = t_trigger;
    outcome.recomputed_iterations = t_max - t_trigger + 1;
    outcome.recomputed_rounds = r_last - ((t_trigger - 1) / e + 1) + 1;
  }
  outcome.wall_seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace fats
