// Configuration of the FATS learning algorithm (Algorithm 1).
//
// FATS is parameterized by the TV-stability targets (ρ_S, ρ_C); the number
// of clients sampled per round and the mini-batch size are *derived*:
//
//     K = ρ_C · E · M / T        (Algorithm 1, line 2)
//     b = ρ_S · N / (ρ_C · E)
//
// Since K and b must be positive integers, the derived values are rounded;
// EffectiveRhoS/EffectiveRhoC report the stability levels actually achieved
// (they are what Lemma 1's guarantee applies to).

#ifndef FATS_CORE_FATS_CONFIG_H_
#define FATS_CORE_FATS_CONFIG_H_

#include <cstdint>
#include <string>

#include "data/paper_configs.h"
#include "fl/state_store.h"
#include "util/status.h"

namespace fats {

struct FatsConfig {
  // Federated shape.
  int64_t clients_m = 0;            // M
  int64_t samples_per_client_n = 0; // N
  int64_t rounds_r = 0;             // R
  int64_t local_iters_e = 1;        // E

  // TV-stability targets in (0, 1].
  double rho_s = 0.25;
  double rho_c = 0.5;

  double learning_rate = 0.05;
  uint64_t seed = 1;

  /// Worker threads for per-round client execution. 1 (the default) runs
  /// clients serially on the calling thread; N > 1 runs them on a fixed
  /// pool with pre-drawn substreams and ordered reduction, producing
  /// bit-identical models, mini-batch history, and state store (see
  /// DESIGN.md §7). Purely an execution knob: it does not enter the
  /// checkpoint format or any algorithmic state.
  int64_t num_threads = 1;

  /// Probability a client execution attempt is dropped (simulated client
  /// unavailability, in [0, 1); 0 disables dropout). Dropped attempts are
  /// retried deterministically from the same stream key, so the trained
  /// model, selections, and mini-batches are bit-identical to dropout_rate
  /// = 0 — only communication accounting changes (see fl/availability.h).
  double dropout_rate = 0.0;
  /// Attempts after which a dropped execution is forced through.
  int64_t dropout_max_retries = 8;
  /// Seed of the availability schedule, separate from `seed` so fault
  /// schedules can vary under pinned training randomness.
  uint64_t availability_seed = 0;

  /// Failpoint arming spec (`site:hit_count:action[,...]`, see
  /// util/failpoint.h), applied when a trainer is constructed with this
  /// config. Empty disables. Like num_threads, this is an execution knob:
  /// it does not enter the checkpoint format or any algorithmic state.
  std::string fault_spec;

  /// Transport fault schedule ("drop=0.2,corrupt=0.05,...", see
  /// transport/fault_injection.h), applied to the trainer's wire. Empty
  /// disables (clean wire). The recovery protocol makes the trained model,
  /// log, and store bitwise-identical to the clean wire either way — only
  /// the retransmit ledger grows — so this too is an execution knob outside
  /// the checkpoint format and every algorithmic state.
  std::string transport_fault_spec;

  /// State-layer storage knobs (fl/state_store.h). Like num_threads these
  /// are execution knobs: they bound the store's resident memory by tiering
  /// history into compressed blocks and (with a spill dir) mmap-backed
  /// segment files, without changing any recorded value, trace, or the
  /// checkpoint format. Empty spill dir = no disk tier.
  std::string state_spill_dir;
  /// Iterations (rounds, for selections) per history block.
  int64_t state_block_iters = 32;
  /// Compressed blobs kept resident per record log before spilling.
  int64_t state_resident_sealed_blocks = 8;
  /// Decoded read-cache capacity per record log, in blocks.
  int64_t state_decoded_cache_blocks = 8;

  /// The StateStoreOptions this config's knobs describe.
  StateStoreOptions StateOptions() const;

  int64_t total_iters_t() const { return rounds_r * local_iters_e; }

  /// K = ρ_C·E·M/T, rounded to the nearest integer >= 1.
  int64_t DeriveK() const;
  /// b = ρ_S·N/(ρ_C·E), rounded to the nearest integer in [1, N].
  int64_t DeriveB() const;

  /// ρ_C actually achieved by the integer K: K·T/(E·M).
  double EffectiveRhoC() const;
  /// ρ_S actually achieved by the integer (K, b): b·K·T/(M·N).
  double EffectiveRhoS() const;

  /// Builds a config from a dataset profile, adopting its explicit K and b
  /// (ρ targets are back-derived so Derive{K,B} reproduce them).
  static FatsConfig FromProfile(const DatasetProfile& profile);

  /// Checks ranges and that the derived K, b are feasible
  /// (1 <= b <= N, 1 <= K).
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace fats

#endif  // FATS_CORE_FATS_CONFIG_H_
