// FATS-SU — sample-level exact unlearning for FATS (Algorithm 2).
//
// To unlearn target sample X_u of client k_u requested at time step t_u:
//   1. Verification (O(1) via the store's earliest-use dictionary, §5.3.1):
//      find the earliest iteration t_S <= t_u whose recorded mini-batch at
//      k_u contains X_u.
//   2. The sample is deleted from the dataset (the data holder erases it
//      regardless of participation).
//   3. If no such t_S exists, the retained state is already exactly
//      distributed as a fresh run on the reduced data (the reused part of
//      the Theorem 1 coupling) — nothing else to do.
//   4. Otherwise re-computation: discard state from t_S on, bump the
//      randomness generation and re-run FATS(t_S, T, ...). The suffix is
//      drawn fresh from the updated measure μ(M,K,N−1,b) — the re-sampled
//      part of the coupling.
//
// By Lemma 1 the probability of step 4 is at most min{ρ_S, 1} per request.

#ifndef FATS_CORE_SAMPLE_UNLEARNER_H_
#define FATS_CORE_SAMPLE_UNLEARNER_H_

#include <cstdint>
#include <vector>

#include "core/fats_trainer.h"
#include "data/federated_dataset.h"
#include "util/status.h"

namespace fats {

/// What one unlearning request (or one batch of simultaneous requests) cost.
///
/// Two distinct cost families: the `recomputed_*` fields are the Theorem 3
/// quantities — work attributable to the Algorithm 2/3 *trigger* (earliest
/// participation at or before request_iter). The `replayed_*` fields count
/// the recomputation actually performed, which can exceed the triggered
/// amount: a sample whose only recorded uses fall after request_iter has
/// t_trigger == -1, yet its batches are still substituted and the model
/// still replayed from the first substituted iteration. Benches that report
/// total work done must sum `replayed_*`, not `recomputed_*`.
struct UnlearningOutcome {
  bool recomputed = false;
  /// First invalidated iteration t_S (or t_C), -1 when no trigger fired.
  int64_t restart_iteration = -1;
  /// Unlearning time in time steps: T − restart + 1 (0 when not triggered).
  int64_t recomputed_iterations = 0;
  /// Communication rounds attributable to the trigger.
  int64_t recomputed_rounds = 0;
  /// First iteration the model trajectory was actually recomputed from
  /// (-1 when no replay happened at all).
  int64_t first_replayed_iteration = -1;
  /// Iterations / rounds actually re-executed (>= the triggered counts).
  int64_t replayed_iterations = 0;
  int64_t replayed_rounds = 0;
  double wall_seconds = 0.0;
};

class SampleUnlearner {
 public:
  explicit SampleUnlearner(FatsTrainer* trainer) : trainer_(trainer) {}

  /// Processes one deletion request issued at time step `request_iter`
  /// (pass config.total_iters_t() for "after training finished").
  Result<UnlearningOutcome> Unlearn(const SampleRef& target,
                                    int64_t request_iter);

  /// A batch of simultaneous requests: all samples are deleted, then a
  /// single re-computation runs from the earliest invalidated iteration.
  Result<UnlearningOutcome> UnlearnBatch(const std::vector<SampleRef>& targets,
                                         int64_t request_iter);

 private:
  FatsTrainer* trainer_;
};

}  // namespace fats

#endif  // FATS_CORE_SAMPLE_UNLEARNER_H_
