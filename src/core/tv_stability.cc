#include "core/tv_stability.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fats {

double SampleLevelStabilityBound(const FatsConfig& config) {
  return std::min(1.0, config.EffectiveRhoS());
}

double ClientLevelStabilityBound(const FatsConfig& config) {
  return std::min(1.0, config.EffectiveRhoC());
}

double RecomputationProbabilityBound(double rho, int64_t w) {
  return std::min(1.0, std::min(1.0, rho) * static_cast<double>(w));
}

bool LearningRateConditionHolds(double eta, const ConvergenceConstants& c,
                                int64_t local_iters_e) {
  const double e = static_cast<double>(local_iters_e);
  const double lhs = -eta / 2.0 +
                     eta * eta * eta * c.smoothness_l * c.smoothness_l *
                         c.heterogeneity_lambda * e * (e - 1.0) +
                     eta * eta * c.heterogeneity_lambda * c.smoothness_l / 2.0;
  return lhs < 0.0;
}

double MaxStableLearningRate(const ConvergenceConstants& c,
                             int64_t local_iters_e) {
  // The condition holds for all sufficiently small η > 0 (the -η/2 term
  // dominates); find the largest η in (0, 10] satisfying it by bisection on
  // the first sign change.
  double lo = 0.0;
  double hi = 10.0;
  if (LearningRateConditionHolds(hi, c, local_iters_e)) return hi;
  // Ensure lo is feasible.
  double probe = 1e-9;
  if (!LearningRateConditionHolds(probe, c, local_iters_e)) return 0.0;
  lo = probe;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (LearningRateConditionHolds(mid, c, local_iters_e)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double Gamma(const ConvergenceConstants& c, double rho_s, int64_t clients_m,
             int64_t samples_per_client_n) {
  FATS_CHECK_GT(rho_s, 0.0);
  return c.gradient_variance_g2 /
         (c.smoothness_l * c.initial_gap * rho_s *
          static_cast<double>(clients_m) *
          static_cast<double>(samples_per_client_n));
}

double TheoreticalLearningRate(const ConvergenceConstants& c, double rho_s,
                               int64_t clients_m,
                               int64_t samples_per_client_n,
                               int64_t total_iters_t) {
  const double gamma = Gamma(c, rho_s, clients_m, samples_per_client_n);
  return 1.0 / (c.smoothness_l * std::sqrt(gamma) *
                static_cast<double>(total_iters_t));
}

double ConvergenceBound(const ConvergenceConstants& c,
                        const FatsConfig& config) {
  const double rho_s = config.EffectiveRhoS();
  const double rho_c = config.EffectiveRhoC();
  const double mn = static_cast<double>(config.clients_m) *
                    static_cast<double>(config.samples_per_client_n);
  const double t = static_cast<double>(config.total_iters_t());
  const double e = static_cast<double>(config.local_iters_e);
  const double first =
      3.0 * std::sqrt(c.smoothness_l * c.gradient_variance_g2 *
                      c.initial_gap) /
      std::sqrt(rho_s * mn);
  const double second = c.smoothness_l * c.initial_gap * (e / t) *
                        (rho_c * static_cast<double>(config.clients_m) * e / t +
                         1.0);
  return first + second;
}

double StabilityCost(const ConvergenceConstants& c, double rho_s,
                     int64_t clients_m, int64_t samples_per_client_n) {
  const double mn = static_cast<double>(clients_m) *
                    static_cast<double>(samples_per_client_n);
  return 3.0 * std::sqrt(c.smoothness_l * c.gradient_variance_g2 *
                         c.initial_gap) /
         std::sqrt(rho_s * mn);
}

double ExpectedUnlearningTimeSteps(double rho, int64_t w,
                                   int64_t training_time_steps) {
  const double recompute_cost = std::min(1.0, rho) * static_cast<double>(w) *
                                static_cast<double>(training_time_steps);
  return std::max(recompute_cost, static_cast<double>(w));
}

}  // namespace fats
