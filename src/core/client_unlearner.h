// FATS-CU — client-level exact unlearning for FATS (Algorithm 3).
//
// To unlearn target client k_u requested at time step t_u (round r_u):
//   1. Verification: find the earliest round r_C <= r_u whose recorded
//      client multiset contains k_u (O(1) via the store's dictionary).
//   2. The client is removed from the federation regardless.
//   3. If k_u never participated, the retained state is already exact.
//   4. Otherwise re-compute from t_C = (r_C − 1)·E + 1: the round's client
//      multiset is re-drawn over the remaining M−1 clients with fresh
//      randomness — the ν(M−1, K) measure — and training re-runs to T.
//
// By Lemma 1 the probability of step 4 is at most min{ρ_C, 1} per request.

#ifndef FATS_CORE_CLIENT_UNLEARNER_H_
#define FATS_CORE_CLIENT_UNLEARNER_H_

#include <cstdint>
#include <vector>

#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "util/status.h"

namespace fats {

class ClientUnlearner {
 public:
  explicit ClientUnlearner(FatsTrainer* trainer) : trainer_(trainer) {}

  /// Processes one client-removal request issued at time step `request_iter`.
  Result<UnlearningOutcome> Unlearn(int64_t target_client,
                                    int64_t request_iter);

  /// Simultaneous client removals with a single re-computation from the
  /// earliest invalidated round.
  Result<UnlearningOutcome> UnlearnBatch(const std::vector<int64_t>& targets,
                                         int64_t request_iter);

 private:
  FatsTrainer* trainer_;
};

}  // namespace fats

#endif  // FATS_CORE_CLIENT_UNLEARNER_H_
