// Unlearning-specific evaluation metrics derived from training logs.

#ifndef FATS_METRICS_UNLEARNING_METRICS_H_
#define FATS_METRICS_UNLEARNING_METRICS_H_

#include <cstdint>

#include "fl/train_log.h"

namespace fats {

struct RecoveryMetrics {
  /// Test accuracy just before the unlearning request.
  double accuracy_before = 0.0;
  /// Test accuracy at the first evaluation after the request.
  double accuracy_after_drop = 0.0;
  /// accuracy_before − accuracy_after_drop (the "utility drop").
  double accuracy_drop = 0.0;
  /// Rounds after the request until accuracy returns to
  /// `recovery_fraction` × accuracy_before; -1 if never within the log.
  int64_t rounds_to_recover = -1;
  /// Final accuracy at the end of the log.
  double final_accuracy = 0.0;
};

/// Analyzes a log whose records up to index `request_index` (exclusive) are
/// pre-unlearning and whose remaining records are post-unlearning.
RecoveryMetrics AnalyzeRecovery(const TrainLog& log, size_t request_index,
                                double recovery_fraction = 0.98);

}  // namespace fats

#endif  // FATS_METRICS_UNLEARNING_METRICS_H_
