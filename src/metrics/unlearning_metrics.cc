#include "metrics/unlearning_metrics.h"

namespace fats {

RecoveryMetrics AnalyzeRecovery(const TrainLog& log, size_t request_index,
                                double recovery_fraction) {
  RecoveryMetrics metrics;
  const auto& records = log.records();
  if (records.empty() || request_index == 0 ||
      request_index > records.size()) {
    return metrics;
  }
  metrics.accuracy_before = records[request_index - 1].test_accuracy;
  if (request_index < records.size()) {
    metrics.accuracy_after_drop = records[request_index].test_accuracy;
  } else {
    metrics.accuracy_after_drop = metrics.accuracy_before;
  }
  metrics.accuracy_drop =
      metrics.accuracy_before - metrics.accuracy_after_drop;
  metrics.rounds_to_recover = log.RoundsToReach(
      recovery_fraction * metrics.accuracy_before, request_index);
  metrics.final_accuracy = records.back().test_accuracy;
  return metrics;
}

}  // namespace fats
