#include "metrics/gradient_diversity.h"

namespace fats {

double GradientDiversity(Model* model, const FederatedDataset& data) {
  const std::vector<int64_t>& clients = data.active_clients();
  FATS_CHECK(!clients.empty()) << "no active clients";
  const Tensor params = model->GetParameters();
  Tensor mean_grad({model->NumParameters()});
  double sum_sq_norms = 0.0;
  for (int64_t k : clients) {
    Batch batch = data.MakeBatch(k, data.active_sample_indices(k));
    model->SetParameters(params);  // gradients must not perturb θ
    model->ComputeLossAndGradients(batch.inputs, batch.labels);
    Tensor grad = model->GetGradients();
    sum_sq_norms += grad.SquaredNorm();
    mean_grad += grad;
  }
  const double m = static_cast<double>(clients.size());
  mean_grad *= static_cast<float>(1.0 / m);
  const double mean_sq = mean_grad.SquaredNorm();
  model->SetParameters(params);
  if (mean_sq < 1e-24) return 1.0;
  return (sum_sq_norms / m) / mean_sq;
}

}  // namespace fats
