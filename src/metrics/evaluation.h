// Model evaluation helpers.

#ifndef FATS_METRICS_EVALUATION_H_
#define FATS_METRICS_EVALUATION_H_

#include <cstdint>

#include "data/dataset.h"
#include "nn/model_zoo.h"

namespace fats {

/// Test accuracy over `batch`, evaluated in chunks of `chunk_size` rows to
/// bound activation memory on large evaluation sets.
double EvaluateAccuracyChunked(Model* model, const Batch& batch,
                               int64_t chunk_size = 128);

/// Mean loss over `batch`, chunked.
double EvaluateLossChunked(Model* model, const Batch& batch,
                           int64_t chunk_size = 128);

}  // namespace fats

#endif  // FATS_METRICS_EVALUATION_H_
