#include "metrics/evaluation.h"

#include <algorithm>

#include "util/logging.h"

namespace fats {

namespace {

Batch Slice(const Batch& batch, int64_t start, int64_t count) {
  const int64_t d = batch.inputs.dim(1);
  Batch out;
  out.inputs = Tensor({count, d});
  out.labels.assign(batch.labels.begin() + start,
                    batch.labels.begin() + start + count);
  const float* src = batch.inputs.data() + start * d;
  float* dst = out.inputs.data();
  std::copy(src, src + count * d, dst);
  return out;
}

}  // namespace

double EvaluateAccuracyChunked(Model* model, const Batch& batch,
                               int64_t chunk_size) {
  FATS_CHECK_GT(chunk_size, 0);
  const int64_t n = batch.size();
  if (n == 0) return 0.0;
  double correct = 0.0;
  for (int64_t start = 0; start < n; start += chunk_size) {
    const int64_t count = std::min(chunk_size, n - start);
    Batch chunk = Slice(batch, start, count);
    correct +=
        model->EvaluateAccuracy(chunk.inputs, chunk.labels) * count;
  }
  return correct / static_cast<double>(n);
}

double EvaluateLossChunked(Model* model, const Batch& batch,
                           int64_t chunk_size) {
  FATS_CHECK_GT(chunk_size, 0);
  const int64_t n = batch.size();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (int64_t start = 0; start < n; start += chunk_size) {
    const int64_t count = std::min(chunk_size, n - start);
    Batch chunk = Slice(batch, start, count);
    total += model->ComputeLoss(chunk.inputs, chunk.labels) * count;
  }
  return total / static_cast<double>(n);
}

}  // namespace fats
