// Gradient diversity (Definition 5) — the heterogeneity measure behind
// Assumption 3 and the learning-rate condition (7).
//
//   Λ(θ) = (1/M)·Σ_k ||∇F_k(θ)||² / ||(1/M)·Σ_k ∇F_k(θ)||²  ≥ 1,
//
// with Λ = 1 iff all client gradients agree. The measured λ = sup_t Λ(θ^(t))
// plugs directly into MaxStableLearningRate / TheoreticalLearningRate, so a
// deployment can pick η that provably satisfies condition (7) for its own
// data heterogeneity.

#ifndef FATS_METRICS_GRADIENT_DIVERSITY_H_
#define FATS_METRICS_GRADIENT_DIVERSITY_H_

#include <cstdint>

#include "data/federated_dataset.h"
#include "nn/model_zoo.h"
#include "tensor/tensor.h"

namespace fats {

/// Λ(θ) over the active clients' *full* local gradients at the model's
/// current parameters. Returns 1.0 when the mean gradient is (numerically)
/// zero — the stationary-point convention, where diversity is undefined.
double GradientDiversity(Model* model, const FederatedDataset& data);

/// λ̂ = max over `probes` model states along a training trajectory:
/// evaluates Λ at `probes` evenly spaced stored global models of rounds
/// [0, last]. `get_model` maps a round to its parameters (nullptr = skip).
/// This is how Assumption 3's bound is estimated in practice.
template <typename GetModelFn>
double MaxGradientDiversity(Model* model, const FederatedDataset& data,
                            int64_t last_round, int64_t probes,
                            GetModelFn get_model) {
  double lambda = 1.0;
  const int64_t step = std::max<int64_t>(1, last_round / std::max<int64_t>(
                                                            probes, 1));
  for (int64_t r = 0; r <= last_round; r += step) {
    const Tensor* params = get_model(r);
    if (params == nullptr) continue;
    model->SetParameters(*params);
    lambda = std::max(lambda, GradientDiversity(model, data));
  }
  return lambda;
}

}  // namespace fats

#endif  // FATS_METRICS_GRADIENT_DIVERSITY_H_
