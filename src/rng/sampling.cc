#include "rng/sampling.h"

#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace fats {

std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k,
                                              RngStream* rng) {
  FATS_CHECK_GE(k, 0);
  FATS_CHECK_LE(k, n);
  // Hash-based Fisher-Yates: conceptually shuffle an array a[i] = i and take
  // the first k entries, but materialize only the touched positions.
  std::unordered_map<int64_t, int64_t> displaced;
  displaced.reserve(static_cast<size_t>(2 * k));
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + static_cast<int64_t>(rng->UniformInt(n - i));
    auto it_j = displaced.find(j);
    int64_t value_j = (it_j == displaced.end()) ? j : it_j->second;
    auto it_i = displaced.find(i);
    int64_t value_i = (it_i == displaced.end()) ? i : it_i->second;
    displaced[j] = value_i;
    out.push_back(value_j);
  }
  return out;
}

std::vector<int64_t> SampleWithReplacement(int64_t n, int64_t k,
                                           RngStream* rng) {
  FATS_CHECK_GT(n, 0);
  FATS_CHECK_GE(k, 0);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    out.push_back(static_cast<int64_t>(rng->UniformInt(n)));
  }
  return out;
}

double SampleGamma(double shape, RngStream* rng) {
  FATS_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    double u = rng->NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = rng->NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng->NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u <= 0.0) u = 0x1.0p-53;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> SampleDirichlet(const std::vector<double>& alpha,
                                    RngStream* rng) {
  FATS_CHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = SampleGamma(alpha[i], rng);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    double uniform = 1.0 / static_cast<double>(alpha.size());
    for (double& v : out) v = uniform;
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

int64_t SampleCategorical(const std::vector<double>& probs, RngStream* rng) {
  FATS_CHECK(!probs.empty());
  double total = 0.0;
  for (double p : probs) {
    FATS_CHECK_GE(p, 0.0);
    total += p;
  }
  FATS_CHECK_GT(total, 0.0);
  double u = rng->NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    cumulative += probs[i];
    if (u < cumulative) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(probs.size()) - 1;
}

}  // namespace fats
