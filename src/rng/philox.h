// Philox4x32-10 counter-based pseudo-random function.
//
// FATS' exact-unlearning guarantee rests on being able to (a) replay any
// prefix of the training randomness bit-identically and (b) draw provably
// fresh randomness for a re-computation suffix. A counter-based PRF gives
// both: the random stream is a pure function of (key, counter), so replay is
// trivial and independent streams are obtained by changing the key.
//
// Reference: Salmon, Moraes, Dror, Shaw. "Parallel random numbers: as easy as
// 1, 2, 3" (SC'11). This is the standard 10-round Philox4x32 used by
// JAX/XLA and cuRAND.

#ifndef FATS_RNG_PHILOX_H_
#define FATS_RNG_PHILOX_H_

#include <array>
#include <cstdint>

namespace fats {

using PhiloxCounter = std::array<uint32_t, 4>;
using PhiloxKey = std::array<uint32_t, 2>;
using PhiloxBlock = std::array<uint32_t, 4>;

/// Applies the 10-round Philox4x32 block function.
PhiloxBlock Philox4x32(PhiloxCounter counter, PhiloxKey key);

/// A UniformRandomBitGenerator over a Philox stream. The 64-bit `key`
/// selects an independent stream; the 128-bit internal counter advances one
/// block per 4 outputs.
class PhiloxEngine {
 public:
  using result_type = uint32_t;

  explicit PhiloxEngine(uint64_t key) {
    key_[0] = static_cast<uint32_t>(key);
    key_[1] = static_cast<uint32_t>(key >> 32);
    counter_ = {0, 0, 0, 0};
    index_ = 4;  // Force a refill on first use.
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() {
    if (index_ == 4) {
      block_ = Philox4x32(counter_, key_);
      IncrementCounter();
      index_ = 0;
    }
    return block_[index_++];
  }

  uint64_t NextUInt64() {
    uint64_t lo = (*this)();
    uint64_t hi = (*this)();
    return (hi << 32) | lo;
  }

  /// Skips ahead to block `block_index`, discarding buffered output. Used by
  /// tests to verify counter-mode addressing.
  void SeekToBlock(uint64_t block_index) {
    counter_ = {static_cast<uint32_t>(block_index),
                static_cast<uint32_t>(block_index >> 32), 0, 0};
    index_ = 4;
  }

 private:
  void IncrementCounter() {
    for (int i = 0; i < 4; ++i) {
      if (++counter_[i] != 0) break;
    }
  }

  PhiloxKey key_;
  PhiloxCounter counter_;
  PhiloxBlock block_;
  int index_;
};

/// SplitMix64 finalizer — used to derive Philox keys from structured stream
/// identifiers. Bijective, well-mixed; the standard seeding mixer.
uint64_t SplitMix64(uint64_t x);

}  // namespace fats

#endif  // FATS_RNG_PHILOX_H_
