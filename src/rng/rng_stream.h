// Hierarchical, addressable random streams.
//
// Every random decision in the system is drawn from a stream addressed by a
// structured StreamId: (purpose, generation, round, client, iteration). The
// stream contents are a pure function of (root_seed, StreamId), which gives
// the two properties FATS' unlearning proof relies on:
//
//   * Replay: re-running training with the same root seed reproduces every
//     sampling decision bit-identically (the reused part of the coupling).
//   * Fresh suffix: bumping `generation` for iterations >= t_S yields streams
//     independent of everything drawn before, so a re-computation after a
//     deletion draws from the *updated* measure with fresh randomness
//     (the re-sampled part of the coupling in Theorem 1).

#ifndef FATS_RNG_RNG_STREAM_H_
#define FATS_RNG_RNG_STREAM_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "rng/philox.h"

namespace fats {

/// What a stream is used for. Part of the stream address so that, e.g.,
/// client sampling in round r and mini-batch sampling in round r are
/// independent.
enum class RngPurpose : uint32_t {
  kModelInit = 1,
  kClientSampling = 2,
  kMinibatchSampling = 3,
  kDataGeneration = 4,
  kPartition = 5,
  kAttack = 6,
  kEvaluation = 7,
  kGeneric = 8,
  /// Client availability draws for dropout simulation. A separate purpose so
  /// the dropout schedule never perturbs any training stream; the
  /// `generation` field of availability StreamIds carries the retry attempt.
  kAvailability = 9,
  /// Transport fault draws (drop/corrupt/truncate/duplicate/delay per
  /// transmission attempt, see transport/fault_injection.h). Separate from
  /// every training purpose so a fault sweep never perturbs training
  /// randomness; the `generation` field packs (direction, seq, attempt).
  kTransportFaults = 10,
};

/// Structured address of a random stream.
struct StreamId {
  RngPurpose purpose = RngPurpose::kGeneric;
  /// Re-computation epoch. Incremented for the retrained suffix whenever an
  /// unlearning request triggers re-computation, so the suffix randomness is
  /// independent of the original run's.
  uint64_t generation = 0;
  /// Communication round (1-based; 0 when not applicable).
  uint64_t round = 0;
  /// Client index (0-based; kNoClient when not applicable).
  uint64_t client = kNoClient;
  /// Local iteration within the round (1-based; 0 when not applicable).
  uint64_t iteration = 0;

  static constexpr uint64_t kNoClient = ~0ull;

  std::string ToString() const;
};

/// Derives the 64-bit Philox key for (root_seed, id). Collision-resistant in
/// practice: SplitMix64 chained over all fields.
uint64_t DeriveStreamKey(uint64_t root_seed, const StreamId& id);

/// A single addressable random stream. Cheap to construct; construct one per
/// decision point rather than threading generator state around.
class RngStream {
 public:
  RngStream(uint64_t root_seed, const StreamId& id)
      : engine_(DeriveStreamKey(root_seed, id)) {}

  /// Constructs from a raw key (used by tests).
  explicit RngStream(uint64_t raw_key) : engine_(raw_key) {}

  uint32_t NextUInt32() { return engine_(); }
  uint64_t NextUInt64() { return engine_.NextUInt64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(engine_.NextUInt64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire-style rejection
  /// to avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (no state carried between calls; the
  /// second variate is discarded to keep draws addressable).
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  PhiloxEngine& engine() { return engine_; }

 private:
  PhiloxEngine engine_;
};

}  // namespace fats

#endif  // FATS_RNG_RNG_STREAM_H_
