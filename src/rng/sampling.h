// Sampling primitives used by the FL engine and the data layer.
//
// The two samplers that matter for the unlearning proofs:
//   * SampleWithoutReplacement — the client-side mini-batch law ξ(N, b)
//     (uniform over size-b subsets) analysed in Claim 1;
//   * SampleWithReplacement — the server-side client multiset law ν(M, K)
//     analysed in Lemma 1.

#ifndef FATS_RNG_SAMPLING_H_
#define FATS_RNG_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "rng/rng_stream.h"

namespace fats {

/// Draws a uniformly random size-`k` subset of {0, ..., n-1} without
/// replacement. Requires 0 <= k <= n. The result is returned in the order
/// drawn (a uniformly random k-permutation prefix); callers that need set
/// semantics should sort. O(k) expected time and space (hash-based
/// Fisher-Yates), independent of n.
std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k,
                                              RngStream* rng);

/// Draws `k` elements of {0, ..., n-1} uniformly with replacement
/// (a multiset, order as drawn). Requires n > 0, k >= 0.
std::vector<int64_t> SampleWithReplacement(int64_t n, int64_t k,
                                           RngStream* rng);

/// Uniformly shuffles `items` in place (Fisher-Yates).
template <typename T>
void Shuffle(std::vector<T>* items, RngStream* rng) {
  for (int64_t i = static_cast<int64_t>(items->size()) - 1; i > 0; --i) {
    int64_t j = static_cast<int64_t>(rng->UniformInt(i + 1));
    std::swap((*items)[i], (*items)[j]);
  }
}

/// Samples a point from the Dirichlet distribution with concentration
/// `alpha` (all entries > 0) via normalized Gamma draws.
std::vector<double> SampleDirichlet(const std::vector<double>& alpha,
                                    RngStream* rng);

/// Samples Gamma(shape, 1) (Marsaglia-Tsang; boosted for shape < 1).
double SampleGamma(double shape, RngStream* rng);

/// Draws one index from the categorical distribution given by `probs`
/// (must be non-negative; normalized internally).
int64_t SampleCategorical(const std::vector<double>& probs, RngStream* rng);

}  // namespace fats

#endif  // FATS_RNG_SAMPLING_H_
