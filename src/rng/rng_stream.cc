#include "rng/rng_stream.h"

#include "util/string_util.h"

namespace fats {

std::string StreamId::ToString() const {
  return StrFormat("StreamId{purpose=%u, gen=%llu, round=%llu, client=%lld, "
                   "iter=%llu}",
                   static_cast<uint32_t>(purpose),
                   static_cast<unsigned long long>(generation),
                   static_cast<unsigned long long>(round),
                   client == kNoClient
                       ? -1ll
                       : static_cast<long long>(client),
                   static_cast<unsigned long long>(iteration));
}

uint64_t DeriveStreamKey(uint64_t root_seed, const StreamId& id) {
  uint64_t h = SplitMix64(root_seed);
  h = SplitMix64(h ^ static_cast<uint64_t>(id.purpose));
  h = SplitMix64(h ^ id.generation);
  h = SplitMix64(h ^ id.round);
  h = SplitMix64(h ^ id.client);
  h = SplitMix64(h ^ id.iteration);
  return h;
}

uint64_t RngStream::UniformInt(uint64_t n) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t x = NextUInt64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = NextUInt64();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double RngStream::NextGaussian() {
  // Box-Muller; u1 is kept away from zero to avoid log(0).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace fats
