#include "rng/philox.h"

namespace fats {

namespace {

constexpr uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline uint32_t MulHiLo(uint32_t a, uint32_t b, uint32_t* hi) {
  uint64_t product = static_cast<uint64_t>(a) * b;
  *hi = static_cast<uint32_t>(product >> 32);
  return static_cast<uint32_t>(product);
}

inline PhiloxCounter SingleRound(const PhiloxCounter& ctr,
                                 const PhiloxKey& key) {
  uint32_t hi0;
  uint32_t lo0 = MulHiLo(kPhiloxM0, ctr[0], &hi0);
  uint32_t hi1;
  uint32_t lo1 = MulHiLo(kPhiloxM1, ctr[2], &hi1);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

PhiloxBlock Philox4x32(PhiloxCounter counter, PhiloxKey key) {
  for (int round = 0; round < 10; ++round) {
    counter = SingleRound(counter, key);
    key[0] += kPhiloxW0;
    key[1] += kPhiloxW1;
  }
  return counter;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace fats
