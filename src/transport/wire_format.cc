#include "transport/wire_format.h"

#include <cstring>

#include "util/crc32.h"
#include "util/string_util.h"

namespace fats::transport {
namespace {

// Sanity bound shared with the journal framing: a payload longer than this
// is corrupt, not large.
constexpr uint32_t kMaxPayloadBytes = uint32_t{1} << 30;

void PutU16(char* out, uint16_t value) {
  out[0] = static_cast<char>(value & 0xFF);
  out[1] = static_cast<char>((value >> 8) & 0xFF);
}

void PutU32(char* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

void PutU64(char* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

uint32_t GetU32(const char* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

uint64_t GetU64(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string EncodeFrame(const WireMessage& message) {
  std::string frame(static_cast<size_t>(kFrameHeaderBytes), '\0');
  char* h = frame.data();
  PutU32(h + 0, kFrameMagic);
  h[4] = static_cast<char>(kWireVersion);
  h[5] = static_cast<char>(message.type);
  PutU16(h + 6, 0);  // flags
  PutU64(h + 8, message.round);
  PutU64(h + 16, message.iteration);
  PutU64(h + 24, message.client);
  PutU32(h + 32, message.seq);
  PutU32(h + 36, static_cast<uint32_t>(message.payload.size()));
  PutU32(h + 40, Crc32(message.payload.data(), message.payload.size()));
  frame.append(message.payload);
  return frame;
}

Result<WireMessage> DecodeFrame(std::string_view frame) {
  if (frame.size() < static_cast<size_t>(kFrameHeaderBytes)) {
    return Status::InvalidArgument(
        StrFormat("frame shorter than header: %zu bytes", frame.size()));
  }
  const char* h = frame.data();
  if (GetU32(h + 0) != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const auto version = static_cast<uint8_t>(h[4]);
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported wire version %u", version));
  }
  const uint32_t payload_len = GetU32(h + 36);
  if (payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload length implausible");
  }
  if (frame.size() !=
      static_cast<size_t>(kFrameHeaderBytes) + payload_len) {
    return Status::InvalidArgument(
        StrFormat("frame length mismatch: header says %u payload bytes, "
                  "frame carries %zu",
                  payload_len,
                  frame.size() - static_cast<size_t>(kFrameHeaderBytes)));
  }
  WireMessage message;
  message.type = static_cast<MessageType>(h[5]);
  message.round = GetU64(h + 8);
  message.iteration = GetU64(h + 16);
  message.client = GetU64(h + 24);
  message.seq = GetU32(h + 32);
  message.payload.assign(frame.data() + kFrameHeaderBytes, payload_len);
  const uint32_t expected_crc = GetU32(h + 40);
  if (Crc32(message.payload.data(), message.payload.size()) != expected_crc) {
    return Status::IoError("frame payload CRC mismatch");
  }
  return message;
}

std::string EncodeModelPayload(const Tensor& params) {
  const std::vector<float>& values = params.storage();
  std::string payload(values.size() * sizeof(float), '\0');
  if (!values.empty()) {
    std::memcpy(payload.data(), values.data(), payload.size());
  }
  return payload;
}

Result<Tensor> DecodeModelPayload(std::string_view payload) {
  if (payload.size() % sizeof(float) != 0) {
    return Status::InvalidArgument(
        StrFormat("model payload of %zu bytes is not a float32 vector",
                  payload.size()));
  }
  const int64_t count = static_cast<int64_t>(payload.size() / sizeof(float));
  Tensor params({count});
  if (count > 0) {
    std::memcpy(params.storage().data(), payload.data(), payload.size());
  }
  return params;
}

std::string EncodeParticipationPayload(const std::vector<int64_t>& clients) {
  std::string payload(8 + clients.size() * 8, '\0');
  PutU64(payload.data(), clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    PutU64(payload.data() + 8 + i * 8,
           static_cast<uint64_t>(clients[i]));
  }
  return payload;
}

Result<std::vector<int64_t>> DecodeParticipationPayload(
    std::string_view payload) {
  if (payload.size() < 8) {
    return Status::InvalidArgument("participation payload truncated");
  }
  const uint64_t count = GetU64(payload.data());
  if (payload.size() != 8 + count * 8) {
    return Status::InvalidArgument("participation payload length mismatch");
  }
  std::vector<int64_t> clients(count);
  for (uint64_t i = 0; i < count; ++i) {
    clients[i] = static_cast<int64_t>(GetU64(payload.data() + 8 + i * 8));
  }
  return clients;
}

std::string EncodeCommChargePayload(const CommCharge& charge) {
  std::string payload(32, '\0');
  PutU64(payload.data() + 0, static_cast<uint64_t>(charge.rounds));
  PutU64(payload.data() + 8, static_cast<uint64_t>(charge.uplink_bytes));
  PutU64(payload.data() + 16, static_cast<uint64_t>(charge.downlink_bytes));
  PutU64(payload.data() + 24, static_cast<uint64_t>(charge.retransmit_bytes));
  return payload;
}

Result<CommCharge> DecodeCommChargePayload(std::string_view payload) {
  if (payload.size() != 32) {
    return Status::InvalidArgument("comm-charge payload length mismatch");
  }
  CommCharge charge;
  charge.rounds = static_cast<int64_t>(GetU64(payload.data() + 0));
  charge.uplink_bytes = static_cast<int64_t>(GetU64(payload.data() + 8));
  charge.downlink_bytes = static_cast<int64_t>(GetU64(payload.data() + 16));
  charge.retransmit_bytes =
      static_cast<int64_t>(GetU64(payload.data() + 24));
  return charge;
}

}  // namespace fats::transport
