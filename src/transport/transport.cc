#include "transport/transport.h"

#include <chrono>

#include "util/logging.h"

namespace fats::transport {

const char* DirectionName(Direction direction) {
  return direction == Direction::kDownlink ? "downlink" : "uplink";
}

LocalTransport::LocalTransport(int64_t capacity) : capacity_(capacity) {
  FATS_CHECK_GE(capacity_, 1) << "LocalTransport capacity must be >= 1";
  for (Lane& lane : lanes_) {
    lane.ring.resize(static_cast<size_t>(capacity_));
  }
}

bool LocalTransport::PushLocked(Lane* lane, std::string_view frame) {
  if (lane->size == static_cast<size_t>(capacity_)) return false;
  const size_t slot =
      (lane->head + lane->size) % static_cast<size_t>(capacity_);
  lane->ring[slot].assign(frame.data(), frame.size());
  ++lane->size;
  return true;
}

bool LocalTransport::PopLocked(Lane* lane, std::string* frame) {
  if (lane->size == 0) return false;
  *frame = std::move(lane->ring[lane->head]);
  lane->ring[lane->head].clear();
  lane->head = (lane->head + 1) % static_cast<size_t>(capacity_);
  --lane->size;
  return true;
}

Status LocalTransport::PushFrame(Direction direction, std::string_view frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!PushLocked(&LaneFor(direction), frame)) {
      return Status::FailedPrecondition(
          std::string("transport lane full: ") + DirectionName(direction));
    }
  }
  frame_cv_.notify_one();
  return Status::OK();
}

Result<std::string> LocalTransport::PopFrame(Direction direction) {
  std::string frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!PopLocked(&LaneFor(direction), &frame)) {
      return Status::NotFound(std::string("transport lane empty: ") +
                              DirectionName(direction));
    }
  }
  space_cv_.notify_one();
  return frame;
}

int64_t LocalTransport::PendingFrames(Direction direction) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(LaneFor(direction).size);
}

Status LocalTransport::PushFrameBlocking(Direction direction,
                                         std::string_view frame,
                                         int64_t timeout_ms) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    Lane& lane = LaneFor(direction);
    auto has_space = [&] {
      return lane.size < static_cast<size_t>(capacity_);
    };
    if (timeout_ms < 0) {
      space_cv_.wait(lock, has_space);
    } else if (!space_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                   has_space)) {
      return Status::FailedPrecondition(
          std::string("transport push timed out: ") +
          DirectionName(direction));
    }
    FATS_CHECK(PushLocked(&lane, frame));
  }
  frame_cv_.notify_one();
  return Status::OK();
}

Result<std::string> LocalTransport::PopFrameBlocking(Direction direction,
                                                     int64_t timeout_ms) {
  std::string frame;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Lane& lane = LaneFor(direction);
    auto has_frame = [&] { return lane.size > 0; };
    if (timeout_ms < 0) {
      frame_cv_.wait(lock, has_frame);
    } else if (!frame_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                   has_frame)) {
      return Status::NotFound(std::string("transport pop timed out: ") +
                              DirectionName(direction));
    }
    FATS_CHECK(PopLocked(&lane, &frame));
  }
  space_cv_.notify_one();
  return frame;
}

}  // namespace fats::transport
