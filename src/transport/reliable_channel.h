// Reliable delivery over a lossy transport.
//
// ReliableChannel turns the unreliable frame lanes of a Transport into
// exactly-once message delivery: every logical send is framed
// (wire_format.h), pushed, received, and validated; a frame the fault
// model drops, truncates, or bit-flips is detected by the receiver (length
// check, CRC) and renegotiated — the sender backs off
// min(cap, base << attempt) + jitter virtual time units (jitter drawn from
// the same per-attempt fault stream, so backoff is as replayable as the
// fault itself) and retransmits. Duplicated frames are deduplicated by the
// (round, iteration, client, seq) address. Attempts at or past the retry
// budget are forced clean by the fault model (fault_injection.h), so
// delivery always terminates — exhaustion degrades into the availability
// path's forced-through semantics, never an abort.
//
// Time is virtual: backoff units are accounted, not slept, which keeps the
// fault matrix fast and schedule-independent. Three failpoint sites let
// the crash matrix kill inside a delivery: `transport.send` (before each
// push attempt), `transport.recv` (before each receive), and
// `transport.corrupt_frame` (the receiver's integrity check, where an
// injected corruption is caught).
//
// Determinism contract (DESIGN.md §7.7): the delivered payload is byte-
// identical to the sent payload (retries re-send the same frozen frame;
// validation rejects anything else), and the retry schedule is a pure
// function of (fault seed, message address, attempt). Hence a faulty run
// differs from a clean run only in the retransmit/backoff counters — the
// basis of transport_exactness_test.
//
// The channel itself never touches CommStats (that would invert the
// fl -> transport layering); each delivery returns a receipt the caller
// charges to its ledger.

#ifndef FATS_TRANSPORT_RELIABLE_CHANNEL_H_
#define FATS_TRANSPORT_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "transport/fault_injection.h"
#include "transport/transport.h"
#include "transport/wire_format.h"
#include "util/status.h"

namespace fats::transport {

/// A model payload encoded once and deliverable many times (the round
/// broadcast sends one encoding to K selection slots).
class EncodedModel {
 public:
  explicit EncodedModel(const Tensor& params)
      : payload_(EncodeModelPayload(params)) {}

  const std::string& payload() const { return payload_; }
  int64_t payload_bytes() const {
    return static_cast<int64_t>(payload_.size());
  }

 private:
  std::string payload_;
};

/// Logical address of one delivery. `seq` distinguishes sends that share
/// (round, iteration, client) — e.g. the K broadcast slots of one round —
/// and is the receiver's dedup key.
struct MessageAddress {
  Direction direction = Direction::kDownlink;
  int64_t round = 0;
  int64_t iteration = 0;
  int64_t client = 0;
  uint32_t seq = 0;
};

/// Receipt of one completed delivery. `payload_bytes` is the clean charge
/// (what the analytic ledger counts); `retransmits`/`retransmit_bytes`
/// cover every extra frame the faults cost (retries and duplicate copies);
/// `backoff_units` is the virtual wait time; `forced` marks a delivery
/// that exhausted the retry budget and went through on the forced final
/// attempt.
struct Delivery {
  WireMessage message;
  int64_t payload_bytes = 0;
  int64_t retransmits = 0;
  int64_t retransmit_bytes = 0;
  int64_t backoff_units = 0;
  bool forced = false;
};

/// Receipt with the decoded model (DeliverModel).
struct ModelDelivery {
  Tensor params;
  int64_t payload_bytes = 0;
  int64_t retransmits = 0;
  int64_t retransmit_bytes = 0;
  int64_t backoff_units = 0;
  bool forced = false;
};

/// Cumulative channel counters (tests and bench introspection).
struct ChannelStats {
  int64_t messages = 0;          // logical deliveries completed
  int64_t attempts = 0;          // transmission attempts, incl. the first
  int64_t retransmits = 0;       // extra frames (retries + duplicate copies)
  int64_t retransmit_bytes = 0;  // their wire bytes (header + payload)
  int64_t crc_rejects = 0;       // frames refused by the CRC check
  int64_t truncation_rejects = 0;  // frames refused by the length checks
  int64_t duplicates_discarded = 0;  // stale copies deduplicated by seq
  int64_t timeouts = 0;          // receive windows that saw no frame
  int64_t backoff_units = 0;     // total virtual backoff time
  int64_t forced_deliveries = 0;  // deliveries that exhausted the budget
};

class ReliableChannel {
 public:
  /// `transport` is borrowed and must outlive the channel.
  ReliableChannel(Transport* transport, const TransportFaultSpec& spec)
      : transport_(transport), faults_(spec) {}

  /// Delivers one message and returns what the receiver decoded. The
  /// payload is copied into the frame; `type` tags it on the wire.
  Result<Delivery> Deliver(const MessageAddress& address, MessageType type,
                           std::string_view payload);

  /// Model convenience: frames `model` (type kModelBroadcast on the
  /// downlink, kModelUpdate on the uplink) and decodes the received
  /// payload back into a flat parameter tensor.
  Result<ModelDelivery> DeliverModel(const MessageAddress& address,
                                     const EncodedModel& model);

  /// Participation convenience (kParticipation frames).
  Result<std::vector<int64_t>> DeliverParticipation(
      const MessageAddress& address, const std::vector<int64_t>& clients);

  const ChannelStats& stats() const { return stats_; }
  const TransportFaultSpec& fault_spec() const { return faults_.spec(); }
  Transport* transport() { return transport_; }

 private:
  Transport* transport_;
  TransportFaultModel faults_;
  ChannelStats stats_;
};

}  // namespace fats::transport

#endif  // FATS_TRANSPORT_RELIABLE_CHANNEL_H_
