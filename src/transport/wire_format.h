// Versioned, CRC-framed wire format for federated messages.
//
// Every byte the comm ledger charges now exists as a real serialized frame:
//
//   u32  magic "FWR1" (0x31525746, little-endian on the wire)
//   u8   format version (1)
//   u8   message type (MessageType)
//   u16  flags (0; reserved)
//   u64  round
//   u64  iteration
//   u64  client
//   u32  seq        (per-(round,iteration,client,direction) send sequence;
//                    receivers dedup duplicated frames by it)
//   u32  payload length
//   u32  CRC-32 of the payload (util/crc32.h, same polynomial as the
//        journal, 0xEDB88320)
//   ...  payload
//
// All integers little-endian. DecodeFrame validates magic, version, length,
// and CRC and refuses the frame otherwise — a truncated or bit-flipped
// frame is *detected*, never silently consumed, which is what lets the
// reliable channel turn a lossy wire into an exact one (DESIGN.md §7.7).
//
// Payload codecs: a model payload is the raw float32 image of the flat
// parameter vector — exactly 4·P bytes, so the per-message ledger charge
// computed from real payload sizes equals the analytic `K·d·4` byte counts
// the paper's Fig. 2 comparison (and the repo's invariants tests) assert.
// Participation payloads carry the round's client multiset; comm-charge
// payloads mirror a CommStats snapshot for cross-process ledger sync.

#ifndef FATS_TRANSPORT_WIRE_FORMAT_H_
#define FATS_TRANSPORT_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace fats::transport {

enum class MessageType : uint8_t {
  kModelBroadcast = 1,  // server -> client: round-start global model
  kModelUpdate = 2,     // client -> server: round-end local model
  kParticipation = 3,   // server -> client: the round's selection multiset
  kCommCharge = 4,      // ledger-sync snapshot (multi-process backends)
};

inline constexpr uint32_t kFrameMagic = 0x31525746;  // "FWR1"
inline constexpr uint8_t kWireVersion = 1;
/// Fixed header size prepended to every payload.
inline constexpr int64_t kFrameHeaderBytes = 44;

/// One decoded message. `payload` is opaque at this layer; the typed codecs
/// below interpret it per `type`.
struct WireMessage {
  MessageType type = MessageType::kModelBroadcast;
  uint64_t round = 0;
  uint64_t iteration = 0;
  uint64_t client = 0;
  uint32_t seq = 0;
  std::string payload;
};

/// Serializes header + payload into one contiguous frame.
std::string EncodeFrame(const WireMessage& message);

/// Parses and validates a frame. InvalidArgument on bad magic/version/
/// length; IoError on a CRC mismatch (the retransmit trigger).
Result<WireMessage> DecodeFrame(std::string_view frame);

/// Raw float32 serialization of a parameter vector (4·P bytes, flat).
std::string EncodeModelPayload(const Tensor& params);
/// Inverse: a flat [P] tensor with bit-identical storage. The decoded
/// tensor is what trainers install and aggregate, so a run over the wire is
/// bitwise the run without it.
Result<Tensor> DecodeModelPayload(std::string_view payload);

/// The round's client multiset (u64 count + i64 entries).
std::string EncodeParticipationPayload(const std::vector<int64_t>& clients);
Result<std::vector<int64_t>> DecodeParticipationPayload(
    std::string_view payload);

/// Ledger snapshot carried by kCommCharge frames.
struct CommCharge {
  int64_t rounds = 0;
  int64_t uplink_bytes = 0;
  int64_t downlink_bytes = 0;
  int64_t retransmit_bytes = 0;
};

std::string EncodeCommChargePayload(const CommCharge& charge);
Result<CommCharge> DecodeCommChargePayload(std::string_view payload);

}  // namespace fats::transport

#endif  // FATS_TRANSPORT_WIRE_FORMAT_H_
