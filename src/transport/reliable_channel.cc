#include "transport/reliable_channel.h"

#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace fats::transport {
namespace {

// True when a decoded frame is the one `address` is waiting for. Anything
// else that validates is a stale duplicate from an earlier delivery.
bool Matches(const WireMessage& message, const MessageAddress& address) {
  return message.round == static_cast<uint64_t>(address.round) &&
         message.iteration == static_cast<uint64_t>(address.iteration) &&
         message.client == static_cast<uint64_t>(address.client) &&
         message.seq == address.seq;
}

}  // namespace

Result<Delivery> ReliableChannel::Deliver(const MessageAddress& address,
                                          MessageType type,
                                          std::string_view payload) {
  WireMessage message;
  message.type = type;
  message.round = static_cast<uint64_t>(address.round);
  message.iteration = static_cast<uint64_t>(address.iteration);
  message.client = static_cast<uint64_t>(address.client);
  message.seq = address.seq;
  message.payload.assign(payload.data(), payload.size());
  // The frame is frozen once: every retransmission re-sends these exact
  // bytes, so the only thing retries can change is the ledger.
  const std::string frame = EncodeFrame(message);
  const auto frame_bytes = static_cast<int64_t>(frame.size());

  Delivery delivery;
  delivery.payload_bytes = static_cast<int64_t>(payload.size());

  const int64_t max_retries =
      faults_.enabled() ? faults_.spec().max_retries : 0;
  for (int64_t attempt = 0; attempt <= max_retries; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) {
      ++stats_.retransmits;
      stats_.retransmit_bytes += frame_bytes;
      ++delivery.retransmits;
      delivery.retransmit_bytes += frame_bytes;
    }
    FATS_FAILPOINT("transport.send");
    const FaultAction action =
        faults_.Decide(address.direction, address.round, address.iteration,
                       address.client, address.seq, attempt);
    bool pushed = false;
    switch (action) {
      case FaultAction::kDrop:
        // Lost in flight: nothing reaches the lane.
        break;
      case FaultAction::kCorrupt: {
        std::string corrupted = frame;
        if (!message.payload.empty()) {
          const uint64_t bit = faults_.CorruptBitIndex(
              address.direction, address.round, address.iteration,
              address.client, address.seq, attempt,
              static_cast<uint64_t>(message.payload.size()) * 8);
          corrupted[static_cast<size_t>(kFrameHeaderBytes) + bit / 8] ^=
              static_cast<char>(1u << (bit % 8));
        } else {
          // No payload bits to flip: damage the CRC field instead.
          corrupted[static_cast<size_t>(kFrameHeaderBytes) - 1] ^= 1;
        }
        FATS_CHECK(transport_->PushFrame(address.direction, corrupted).ok())
            << "transport lane overflow (corrupt path)";
        pushed = true;
        break;
      }
      case FaultAction::kTruncate: {
        const uint64_t keep = faults_.TruncatedLength(
            address.direction, address.round, address.iteration,
            address.client, address.seq, attempt,
            static_cast<uint64_t>(frame.size()));
        FATS_CHECK(transport_
                       ->PushFrame(address.direction,
                                   std::string_view(frame).substr(0, keep))
                       .ok())
            << "transport lane overflow (truncate path)";
        pushed = true;
        break;
      }
      case FaultAction::kDuplicate:
        FATS_CHECK(transport_->PushFrame(address.direction, frame).ok())
            << "transport lane overflow";
        FATS_CHECK(transport_->PushFrame(address.direction, frame).ok())
            << "transport lane overflow (duplicate copy)";
        // The redundant copy is extra wire traffic the ledger must see.
        ++stats_.retransmits;
        stats_.retransmit_bytes += frame_bytes;
        ++delivery.retransmits;
        delivery.retransmit_bytes += frame_bytes;
        pushed = true;
        break;
      case FaultAction::kDelay: {
        const int64_t wait = faults_.BackoffUnits(
            address.direction, address.round, address.iteration,
            address.client, address.seq, attempt);
        stats_.backoff_units += wait;
        delivery.backoff_units += wait;
        FATS_CHECK(transport_->PushFrame(address.direction, frame).ok())
            << "transport lane overflow (delay path)";
        pushed = true;
        break;
      }
      case FaultAction::kNone:
        FATS_CHECK(transport_->PushFrame(address.direction, frame).ok())
            << "transport lane overflow";
        pushed = true;
        break;
    }

    // Receiver side: drain the lane until the expected frame validates or
    // the lane runs dry (the virtual-time receive timeout).
    bool received = false;
    while (pushed) {
      FATS_FAILPOINT("transport.recv");
      Result<std::string> popped = transport_->PopFrame(address.direction);
      if (!popped.ok()) break;
      // Integrity check: length + CRC validation of the raw frame. This is
      // where an injected corruption is caught and rejected.
      FATS_FAILPOINT("transport.corrupt_frame");
      Result<WireMessage> decoded = DecodeFrame(*popped);
      if (!decoded.ok()) {
        if (popped->size() < frame.size()) {
          ++stats_.truncation_rejects;
        } else {
          ++stats_.crc_rejects;
        }
        continue;  // reject-and-renegotiate: ask for a retransmission
      }
      if (!Matches(*decoded, address)) {
        ++stats_.duplicates_discarded;
        continue;
      }
      delivery.message = std::move(*decoded);
      received = true;
      break;
    }
    if (received) {
      if (attempt == max_retries && attempt > 0) {
        delivery.forced = true;
        ++stats_.forced_deliveries;
      }
      ++stats_.messages;
      return delivery;
    }

    ++stats_.timeouts;
    const int64_t wait =
        faults_.BackoffUnits(address.direction, address.round,
                             address.iteration, address.client, address.seq,
                             attempt);
    stats_.backoff_units += wait;
    delivery.backoff_units += wait;
  }
  // Unreachable: the fault model forces attempt == max_retries clean.
  return Status::Internal("transport delivery failed past the retry budget");
}

Result<ModelDelivery> ReliableChannel::DeliverModel(
    const MessageAddress& address, const EncodedModel& model) {
  const MessageType type = address.direction == Direction::kDownlink
                               ? MessageType::kModelBroadcast
                               : MessageType::kModelUpdate;
  FATS_ASSIGN_OR_RETURN(Delivery delivery,
                        Deliver(address, type, model.payload()));
  FATS_ASSIGN_OR_RETURN(Tensor params,
                        DecodeModelPayload(delivery.message.payload));
  ModelDelivery result;
  result.params = std::move(params);
  result.payload_bytes = delivery.payload_bytes;
  result.retransmits = delivery.retransmits;
  result.retransmit_bytes = delivery.retransmit_bytes;
  result.backoff_units = delivery.backoff_units;
  result.forced = delivery.forced;
  return result;
}

Result<std::vector<int64_t>> ReliableChannel::DeliverParticipation(
    const MessageAddress& address, const std::vector<int64_t>& clients) {
  FATS_ASSIGN_OR_RETURN(
      Delivery delivery,
      Deliver(address, MessageType::kParticipation,
              EncodeParticipationPayload(clients)));
  return DecodeParticipationPayload(delivery.message.payload);
}

}  // namespace fats::transport
