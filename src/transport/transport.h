// Transport abstraction: moving encoded frames between endpoints.
//
// A Transport owns two independent directed lanes — downlink (server ->
// clients) and uplink (clients -> server) — and moves opaque encoded frames
// (transport/wire_format.h) between them. It knows nothing about retries,
// faults, or ledger accounting; that is the reliable channel's job
// (transport/reliable_channel.h). The split is the seam for future
// backends: a TCP or Unix-socket transport implements the same four
// methods and everything above it (channel, trainers, exactness tests)
// carries over unchanged.
//
// LocalTransport is the first backend: a bounded in-process ring buffer per
// lane. The training path uses the non-blocking PushFrame/PopFrame pair on
// the main thread (the trainer is both producer and consumer, so blocking
// would deadlock); the blocking pair exists for genuinely concurrent
// endpoints (exercised under tsan by transport_test) and for the
// multi-process backends to come. All four are safe to call from any
// thread.

#ifndef FATS_TRANSPORT_TRANSPORT_H_
#define FATS_TRANSPORT_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fats::transport {

/// Which lane a frame travels on.
enum class Direction : uint8_t {
  kDownlink = 0,  // server -> client
  kUplink = 1,    // client -> server
};

const char* DirectionName(Direction direction);

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues one encoded frame. ResourceExhausted-style failure
  /// (FailedPrecondition) when the lane is full.
  virtual Status PushFrame(Direction direction, std::string_view frame) = 0;

  /// Dequeues the oldest frame, or NotFound when the lane is empty (the
  /// virtual-time analogue of a receive timeout).
  virtual Result<std::string> PopFrame(Direction direction) = 0;

  /// Frames currently queued on `direction`.
  virtual int64_t PendingFrames(Direction direction) const = 0;
};

/// In-process bounded ring buffer, one ring per direction.
class LocalTransport : public Transport {
 public:
  /// `capacity` frames per lane (>= 1).
  explicit LocalTransport(int64_t capacity = kDefaultCapacity);

  Status PushFrame(Direction direction, std::string_view frame) override;
  Result<std::string> PopFrame(Direction direction) override;
  int64_t PendingFrames(Direction direction) const override;

  /// Blocking variants for concurrent endpoints: wait until space/a frame
  /// is available or `timeout_ms` elapses (FailedPrecondition / NotFound on
  /// timeout). timeout_ms < 0 waits forever.
  Status PushFrameBlocking(Direction direction, std::string_view frame,
                           int64_t timeout_ms);
  Result<std::string> PopFrameBlocking(Direction direction,
                                       int64_t timeout_ms);

  int64_t capacity() const { return capacity_; }

  static constexpr int64_t kDefaultCapacity = 64;

 private:
  struct Lane {
    std::vector<std::string> ring;
    size_t head = 0;  // index of the oldest frame
    size_t size = 0;  // frames queued
  };

  Lane& LaneFor(Direction direction) {
    return lanes_[static_cast<size_t>(direction)];
  }
  const Lane& LaneFor(Direction direction) const {
    return lanes_[static_cast<size_t>(direction)];
  }

  // Callers hold mu_.
  bool PushLocked(Lane* lane, std::string_view frame);
  bool PopLocked(Lane* lane, std::string* frame);

  const int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // signals writers: a slot freed up
  std::condition_variable frame_cv_;  // signals readers: a frame arrived
  Lane lanes_[2];                     // guarded by mu_
};

}  // namespace fats::transport

#endif  // FATS_TRANSPORT_TRANSPORT_H_
