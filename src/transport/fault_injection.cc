#include "transport/fault_injection.h"

#include <cstdlib>

#include "rng/rng_stream.h"
#include "util/string_util.h"

namespace fats::transport {
namespace {

// Packs the per-attempt coordinates that StreamId has no dedicated field
// for into `generation`: direction (1 bit), send sequence (31 bits), and
// attempt (32 bits). Every transmission attempt of every logical send gets
// its own stream, so no retry ever re-reads another attempt's draws.
uint64_t PackGeneration(Direction direction, uint32_t seq, int64_t attempt) {
  return (static_cast<uint64_t>(direction) << 63) |
         (static_cast<uint64_t>(seq & 0x7FFFFFFFu) << 32) |
         static_cast<uint64_t>(attempt & 0xFFFFFFFF);
}

RngStream AttemptStream(const TransportFaultSpec& spec, Direction direction,
                        int64_t round, int64_t iteration, int64_t client,
                        uint32_t seq, int64_t attempt) {
  StreamId id;
  id.purpose = RngPurpose::kTransportFaults;
  id.generation = PackGeneration(direction, seq, attempt);
  id.round = static_cast<uint64_t>(round);
  id.client = static_cast<uint64_t>(client);
  id.iteration = static_cast<uint64_t>(iteration);
  return RngStream(spec.seed, id);
}

// Draws the action from the first uniform of the attempt's stream and
// leaves the stream positioned for the action's auxiliary draws.
FaultAction DrawAction(const TransportFaultSpec& spec, RngStream* stream,
                       int64_t attempt) {
  // At or past the retry budget the delivery is forced clean (the
  // availability-style degradation path); the draw is still consumed so
  // auxiliary draws stay aligned.
  const double u = stream->NextDouble();
  if (attempt >= spec.max_retries) return FaultAction::kNone;
  double edge = spec.drop_rate;
  if (u < edge) return FaultAction::kDrop;
  edge += spec.corrupt_rate;
  if (u < edge) return FaultAction::kCorrupt;
  edge += spec.truncate_rate;
  if (u < edge) return FaultAction::kTruncate;
  edge += spec.duplicate_rate;
  if (u < edge) return FaultAction::kDuplicate;
  edge += spec.delay_rate;
  if (u < edge) return FaultAction::kDelay;
  return FaultAction::kNone;
}

Status ParseRate(const std::string& key, const std::string& value,
                 double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || parsed < 0.0 || parsed > 1.0) {
    return Status::InvalidArgument("transport fault spec: bad rate for '" +
                                   key + "': " + value);
  }
  *out = parsed;
  return Status::OK();
}

Status ParseInt(const std::string& key, const std::string& value,
                int64_t* out) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || parsed < 0) {
    return Status::InvalidArgument("transport fault spec: bad integer for '" +
                                   key + "': " + value);
  }
  *out = parsed;
  return Status::OK();
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kCorrupt:
      return "corrupt";
    case FaultAction::kTruncate:
      return "truncate";
    case FaultAction::kDuplicate:
      return "duplicate";
    case FaultAction::kDelay:
      return "delay";
  }
  return "unknown";
}

Result<TransportFaultSpec> TransportFaultSpec::Parse(const std::string& text) {
  TransportFaultSpec spec;
  size_t start = 0;
  while (start < text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "transport fault spec: expected key=value, got '" + entry + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "drop") {
      FATS_RETURN_NOT_OK(ParseRate(key, value, &spec.drop_rate));
    } else if (key == "corrupt") {
      FATS_RETURN_NOT_OK(ParseRate(key, value, &spec.corrupt_rate));
    } else if (key == "truncate") {
      FATS_RETURN_NOT_OK(ParseRate(key, value, &spec.truncate_rate));
    } else if (key == "duplicate") {
      FATS_RETURN_NOT_OK(ParseRate(key, value, &spec.duplicate_rate));
    } else if (key == "delay") {
      FATS_RETURN_NOT_OK(ParseRate(key, value, &spec.delay_rate));
    } else if (key == "seed") {
      int64_t seed = 0;
      FATS_RETURN_NOT_OK(ParseInt(key, value, &seed));
      spec.seed = static_cast<uint64_t>(seed);
    } else if (key == "max_retries") {
      FATS_RETURN_NOT_OK(ParseInt(key, value, &spec.max_retries));
    } else if (key == "backoff_base") {
      FATS_RETURN_NOT_OK(ParseInt(key, value, &spec.backoff_base_units));
    } else if (key == "backoff_cap") {
      FATS_RETURN_NOT_OK(ParseInt(key, value, &spec.backoff_cap_units));
    } else {
      return Status::InvalidArgument(
          "transport fault spec: unknown key '" + key + "'");
    }
  }
  const double total = spec.drop_rate + spec.corrupt_rate +
                       spec.truncate_rate + spec.duplicate_rate +
                       spec.delay_rate;
  if (total > 1.0) {
    return Status::InvalidArgument(
        "transport fault spec: rates sum past 1.0");
  }
  if (spec.enabled() && spec.max_retries < 1) {
    return Status::InvalidArgument(
        "transport fault spec: max_retries must be >= 1 when faults are on");
  }
  if (spec.backoff_base_units < 1 ||
      spec.backoff_cap_units < spec.backoff_base_units) {
    return Status::InvalidArgument(
        "transport fault spec: need backoff_cap >= backoff_base >= 1");
  }
  return spec;
}

std::string TransportFaultSpec::ToString() const {
  // The compact spec form itself, so ToString() re-parses (config echo,
  // CLI diagnostics).
  return StrFormat(
      "drop=%.3f,corrupt=%.3f,truncate=%.3f,duplicate=%.3f,delay=%.3f,"
      "seed=%llu,max_retries=%lld,backoff_base=%lld,backoff_cap=%lld",
      drop_rate, corrupt_rate, truncate_rate, duplicate_rate, delay_rate,
      (unsigned long long)seed, (long long)max_retries,
      (long long)backoff_base_units, (long long)backoff_cap_units);
}

FaultAction TransportFaultModel::Decide(Direction direction, int64_t round,
                                        int64_t iteration, int64_t client,
                                        uint32_t seq, int64_t attempt) const {
  if (!spec_.enabled()) return FaultAction::kNone;
  RngStream stream =
      AttemptStream(spec_, direction, round, iteration, client, seq, attempt);
  return DrawAction(spec_, &stream, attempt);
}

uint64_t TransportFaultModel::CorruptBitIndex(
    Direction direction, int64_t round, int64_t iteration, int64_t client,
    uint32_t seq, int64_t attempt, uint64_t payload_bits) const {
  if (payload_bits == 0) return 0;
  RngStream stream =
      AttemptStream(spec_, direction, round, iteration, client, seq, attempt);
  (void)DrawAction(spec_, &stream, attempt);  // align past the action draw
  return stream.UniformInt(payload_bits);
}

uint64_t TransportFaultModel::TruncatedLength(
    Direction direction, int64_t round, int64_t iteration, int64_t client,
    uint32_t seq, int64_t attempt, uint64_t frame_bytes) const {
  if (frame_bytes == 0) return 0;
  RngStream stream =
      AttemptStream(spec_, direction, round, iteration, client, seq, attempt);
  (void)DrawAction(spec_, &stream, attempt);
  return stream.UniformInt(frame_bytes);
}

int64_t TransportFaultModel::BackoffUnits(Direction direction, int64_t round,
                                          int64_t iteration, int64_t client,
                                          uint32_t seq,
                                          int64_t attempt) const {
  const int64_t shift = attempt < 62 ? attempt : 62;
  int64_t wait = spec_.backoff_base_units << shift;
  if (wait > spec_.backoff_cap_units || wait <= 0) {
    wait = spec_.backoff_cap_units;
  }
  RngStream stream =
      AttemptStream(spec_, direction, round, iteration, client, seq, attempt);
  (void)DrawAction(spec_, &stream, attempt);
  (void)stream.NextUInt64();  // skip the slot an action-specific draw uses
  const int64_t jitter = static_cast<int64_t>(
      stream.UniformInt(static_cast<uint64_t>(spec_.backoff_base_units)));
  return wait + jitter;
}

}  // namespace fats::transport
