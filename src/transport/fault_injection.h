// Deterministic transport fault injection.
//
// Whether a given frame transmission is dropped, bit-flipped, truncated,
// duplicated, or delayed is a pure function of (fault seed, round,
// iteration, client, send sequence, attempt, direction), drawn from the
// dedicated kTransportFaults Philox purpose. That makes the fault schedule
// exactly as addressable as every other random decision in the tree:
//
//   * the same spec reproduces the same faults on every run (and on a
//     recovery re-execution after a crash, so recovered ledgers match),
//   * the fault seed is independent of the training seed, so the whole
//     fault matrix can sweep under pinned training randomness — the basis
//     of the trace-bit-identical contract in transport_exactness_test.
//
// Attempts at or past `max_retries` are forced clean, mirroring the
// availability schedule's forced-through semantics (fl/availability.h):
// retry-budget exhaustion degrades into a guaranteed delivery, never an
// abort, so a round always completes with its recorded selection.

#ifndef FATS_TRANSPORT_FAULT_INJECTION_H_
#define FATS_TRANSPORT_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

#include "transport/transport.h"
#include "util/status.h"

namespace fats::transport {

/// What the fault model decides to do to one transmission attempt.
enum class FaultAction : uint8_t {
  kNone = 0,       // clean delivery
  kDrop = 1,       // frame lost; receiver times out
  kCorrupt = 2,    // one payload bit flipped; receiver rejects on CRC
  kTruncate = 3,   // frame cut short; receiver rejects on length
  kDuplicate = 4,  // frame delivered twice; receiver dedups by seq
  kDelay = 5,      // frame held back; costs backoff time, then delivers
};

const char* FaultActionName(FaultAction action);

/// Fault schedule parameters. Parsed from a compact spec string, e.g.
/// "drop=0.2,corrupt=0.05,duplicate=0.05,seed=7" (omitted keys keep their
/// defaults). Rates are probabilities in [0, 1] and their sum must stay
/// <= 1 (they partition one uniform draw per attempt).
struct TransportFaultSpec {
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  double truncate_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  /// Seed of the fault schedule, separate from the training seed.
  uint64_t seed = 0;
  /// Attempts after which delivery is forced clean.
  int64_t max_retries = 8;
  /// Deterministic backoff: wait min(cap, base << attempt) + jitter virtual
  /// time units before retrying, jitter uniform in [0, base).
  int64_t backoff_base_units = 1;
  int64_t backoff_cap_units = 64;

  bool enabled() const {
    return drop_rate + corrupt_rate + truncate_rate + duplicate_rate +
               delay_rate >
           0.0;
  }

  /// Parses "key=value[,key=value...]"; keys: drop, corrupt, truncate,
  /// duplicate, delay, seed, max_retries, backoff_base, backoff_cap.
  /// Empty text parses to the all-defaults (disabled) spec.
  static Result<TransportFaultSpec> Parse(const std::string& text);

  std::string ToString() const;
};

/// Evaluates the schedule. Stateless: every query re-derives its stream
/// from the structured address, so call order never shifts a decision.
class TransportFaultModel {
 public:
  explicit TransportFaultModel(const TransportFaultSpec& spec) : spec_(spec) {}

  bool enabled() const { return spec_.enabled(); }
  const TransportFaultSpec& spec() const { return spec_; }

  /// The fate of attempt `attempt` of send `seq` of the message addressed
  /// (round, iteration, client) on `direction`.
  FaultAction Decide(Direction direction, int64_t round, int64_t iteration,
                     int64_t client, uint32_t seq, int64_t attempt) const;

  /// Which payload bit a kCorrupt attempt flips (uniform over the frame's
  /// payload bits; 0 when the payload is empty).
  uint64_t CorruptBitIndex(Direction direction, int64_t round,
                           int64_t iteration, int64_t client, uint32_t seq,
                           int64_t attempt, uint64_t payload_bits) const;

  /// How many bytes a kTruncate attempt keeps (uniform in [0, frame_bytes)).
  uint64_t TruncatedLength(Direction direction, int64_t round,
                           int64_t iteration, int64_t client, uint32_t seq,
                           int64_t attempt, uint64_t frame_bytes) const;

  /// Backoff before retrying after a failed `attempt`:
  /// min(cap, base << attempt) + jitter, jitter uniform in [0, base).
  int64_t BackoffUnits(Direction direction, int64_t round, int64_t iteration,
                       int64_t client, uint32_t seq, int64_t attempt) const;

 private:
  TransportFaultSpec spec_;
};

}  // namespace fats::transport

#endif  // FATS_TRANSPORT_FAULT_INJECTION_H_
