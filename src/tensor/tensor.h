// Dense row-major float32 tensor.
//
// This is the numeric substrate for the nn module. It is deliberately small:
// contiguous storage, shape metadata, elementwise arithmetic, 2-D matmul and
// the handful of reductions the layers need. No views, no broadcasting beyond
// row-wise bias addition; layers that need more express it explicitly.

#ifndef FATS_TENSOR_TENSOR_H_
#define FATS_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"

namespace fats {

class Tensor {
 public:
  /// An empty tensor (rank 0, no elements).
  Tensor() = default;

  /// A zero-initialized tensor with the given shape. All dims must be > 0.
  explicit Tensor(std::vector<int64_t> shape);

  /// A tensor with the given shape wrapping a copy of `values`
  /// (values.size() must equal the shape volume).
  Tensor(std::vector<int64_t> shape, std::vector<float> values);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// 1-D tensor from an initializer list.
  static Tensor FromVector(std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const {
    FATS_DCHECK(i >= 0 && i < static_cast<int>(shape_.size()));
    return shape_[i];
  }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](int64_t i) {
    FATS_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    FATS_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// 2-D element accessors (requires rank() == 2).
  float& at(int64_t row, int64_t col) {
    FATS_DCHECK(rank() == 2);
    return data_[static_cast<size_t>(row * shape_[1] + col)];
  }
  float at(int64_t row, int64_t col) const {
    FATS_DCHECK(rank() == 2);
    return data_[static_cast<size_t>(row * shape_[1] + col)];
  }

  /// Reinterprets the tensor with a new shape of equal volume.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  // Reshapes in place, reusing the existing heap block whenever capacity
  // allows — after warm-up these never allocate, which is what makes
  // Workspace slots steady-state allocation-free. Retained elements keep
  // their old values (grown elements are zero); callers that need zeros
  // must Fill(0) explicitly.
  void ResizeTo(const std::vector<int64_t>& shape);
  void ResizeTo(int64_t d0);
  void ResizeTo(int64_t d0, int64_t d1);
  void ResizeTo(int64_t d0, int64_t d1, int64_t d2);

  /// Sets every element to `value`.
  void Fill(float value);
  /// Sets every element to zero.
  void SetZero() { Fill(0.0f); }

  // In-place arithmetic. Shapes must match exactly for tensor operands.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  /// this += scalar * other  (axpy).
  void Axpy(float scalar, const Tensor& other);

  /// Sum of all elements.
  double Sum() const;
  /// Squared L2 norm (in double precision).
  double SquaredNorm() const;
  /// Index of the maximum element (first on ties). Requires size() > 0.
  int64_t ArgMax() const;

  /// True if shapes are equal and all elements are exactly equal.
  bool BitwiseEquals(const Tensor& other) const;
  /// True if shapes are equal and elements differ by at most `tolerance`.
  bool AllClose(const Tensor& other, float tolerance) const;

  std::string ShapeString() const;
  /// Debug rendering; large tensors are elided.
  std::string ToString() const;

  static int64_t Volume(const std::vector<int64_t>& shape);

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);

}  // namespace fats

#endif  // FATS_TENSOR_TENSOR_H_
