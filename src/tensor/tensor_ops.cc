#include "tensor/tensor_ops.h"

#include <cmath>

namespace fats {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FATS_CHECK_EQ(k, b.dim(0)) << "matmul inner dims";
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // i-k-j loop order for cache-friendly access to B and C rows.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = ap[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = bp + kk * n;
      float* crow = cp + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FATS_CHECK_EQ(k, b.dim(1)) << "matmul^T inner dims";
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ap + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bp + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      cp[i * n + j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(b.rank(), 2);
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FATS_CHECK_EQ(k, b.dim(0)) << "matmul A^T inner dims";
  Tensor c({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * m;
    const float* brow = bp + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = cp + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

void AddRowwise(Tensor* m, const Tensor& bias) {
  FATS_CHECK_EQ(m->rank(), 2);
  FATS_CHECK_EQ(bias.rank(), 1);
  const int64_t rows = m->dim(0), n = m->dim(1);
  FATS_CHECK_EQ(n, bias.dim(0));
  float* mp = m->data();
  const float* bp = bias.data();
  for (int64_t i = 0; i < rows; ++i) {
    float* row = mp + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += bp[j];
  }
}

Tensor SumRows(const Tensor& m) {
  FATS_CHECK_EQ(m.rank(), 2);
  const int64_t rows = m.dim(0), n = m.dim(1);
  Tensor out({n});
  const float* mp = m.data();
  float* op = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = mp + i * n;
    for (int64_t j = 0; j < n; ++j) op[j] += row[j];
  }
  return out;
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  FATS_CHECK(a.shape() == b.shape()) << "hadamard shape mismatch";
  Tensor out = a;
  float* op = out.data();
  const float* bp = b.data();
  for (int64_t i = 0; i < out.size(); ++i) op[i] *= bp[i];
  return out;
}

Tensor Transpose(const Tensor& m) {
  FATS_CHECK_EQ(m.rank(), 2);
  const int64_t rows = m.dim(0), cols = m.dim(1);
  Tensor out({cols, rows});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.at(j, i) = m.at(i, j);
    }
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  FATS_CHECK_EQ(logits.rank(), 2);
  const int64_t rows = logits.dim(0), n = logits.dim(1);
  Tensor out = logits;
  float* op = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    float* row = op + i * n;
    float max_v = row[0];
    for (int64_t j = 1; j < n; ++j) max_v = std::max(max_v, row[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - max_v);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < n; ++j) row[j] *= inv;
  }
  return out;
}

}  // namespace fats
