#include "tensor/tensor_ops.h"

#include <cmath>

#include "tensor/gemm.h"

namespace fats {
namespace {

struct MatMulDims {
  int64_t m, n, k;
};

MatMulDims CheckNN(const Tensor& a, const Tensor& b) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(b.rank(), 2);
  FATS_CHECK_EQ(a.dim(1), b.dim(0)) << "matmul inner dims";
  return {a.dim(0), b.dim(1), a.dim(1)};
}

MatMulDims CheckNT(const Tensor& a, const Tensor& b) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(b.rank(), 2);
  FATS_CHECK_EQ(a.dim(1), b.dim(1)) << "matmul^T inner dims";
  return {a.dim(0), b.dim(0), a.dim(1)};
}

MatMulDims CheckTN(const Tensor& a, const Tensor& b) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(b.rank(), 2);
  FATS_CHECK_EQ(a.dim(0), b.dim(0)) << "matmul A^T inner dims";
  return {a.dim(1), b.dim(1), a.dim(0)};
}

void CheckAccumDst(const MatMulDims& d, const Tensor& c) {
  FATS_CHECK_EQ(c.rank(), 2);
  FATS_CHECK(c.dim(0) == d.m && c.dim(1) == d.n)
      << "accumulate destination shape mismatch";
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulInto(a, b, &c);
  return c;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* c) {
  const MatMulDims d = CheckNN(a, b);
  c->ResizeTo(d.m, d.n);
  gemm::SgemmNN(d.m, d.n, d.k, a.data(), d.k, b.data(), d.n, c->data(), d.n,
                /*accumulate=*/false);
}

void AddMatMulInto(const Tensor& a, const Tensor& b, Tensor* c) {
  const MatMulDims d = CheckNN(a, b);
  CheckAccumDst(d, *c);
  gemm::SgemmNN(d.m, d.n, d.k, a.data(), d.k, b.data(), d.n, c->data(), d.n,
                /*accumulate=*/true);
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulTransposeBInto(a, b, &c);
  return c;
}

void MatMulPackedBInto(const Tensor& a, const gemm::PackedB& b, Tensor* c) {
  FATS_CHECK_EQ(a.rank(), 2);
  FATS_CHECK_EQ(a.dim(1), b.k) << "MatMulPackedBInto: inner dims differ";
  const int64_t m = a.dim(0);
  c->ResizeTo(m, b.n);
  gemm::SgemmPackedB(m, b.n, b.k, a.data(), b.k, b, c->data(), b.n,
                     /*accumulate=*/false);
}

void MatMulTransposeBInto(const Tensor& a, const Tensor& b, Tensor* c) {
  const MatMulDims d = CheckNT(a, b);
  c->ResizeTo(d.m, d.n);
  gemm::SgemmNT(d.m, d.n, d.k, a.data(), d.k, b.data(), d.k, c->data(), d.n,
                /*accumulate=*/false);
}

void AddMatMulTransposeBInto(const Tensor& a, const Tensor& b, Tensor* c) {
  const MatMulDims d = CheckNT(a, b);
  CheckAccumDst(d, *c);
  gemm::SgemmNT(d.m, d.n, d.k, a.data(), d.k, b.data(), d.k, c->data(), d.n,
                /*accumulate=*/true);
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulTransposeAInto(a, b, &c);
  return c;
}

void MatMulTransposeAInto(const Tensor& a, const Tensor& b, Tensor* c) {
  const MatMulDims d = CheckTN(a, b);
  c->ResizeTo(d.m, d.n);
  gemm::SgemmTN(d.m, d.n, d.k, a.data(), d.m, b.data(), d.n, c->data(), d.n,
                /*accumulate=*/false);
}

void AddMatMulTransposeAInto(const Tensor& a, const Tensor& b, Tensor* c) {
  const MatMulDims d = CheckTN(a, b);
  CheckAccumDst(d, *c);
  gemm::SgemmTN(d.m, d.n, d.k, a.data(), d.m, b.data(), d.n, c->data(), d.n,
                /*accumulate=*/true);
}

void AddRowwise(Tensor* m, const Tensor& bias) {
  FATS_CHECK_EQ(m->rank(), 2);
  FATS_CHECK_EQ(bias.rank(), 1);
  const int64_t rows = m->dim(0), n = m->dim(1);
  FATS_CHECK_EQ(n, bias.dim(0));
  float* mp = m->data();
  const float* bp = bias.data();
  for (int64_t i = 0; i < rows; ++i) {
    float* row = mp + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += bp[j];
  }
}

Tensor SumRows(const Tensor& m) {
  FATS_CHECK_EQ(m.rank(), 2);
  Tensor out({m.dim(1)});
  AddSumRowsInto(m, &out);
  return out;
}

void AddSumRowsInto(const Tensor& m, Tensor* out) {
  FATS_CHECK_EQ(m.rank(), 2);
  FATS_CHECK_EQ(out->rank(), 1);
  const int64_t rows = m.dim(0), n = m.dim(1);
  FATS_CHECK_EQ(n, out->dim(0));
  const float* mp = m.data();
  float* op = out->data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = mp + i * n;
    for (int64_t j = 0; j < n; ++j) op[j] += row[j];
  }
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  Tensor out;
  HadamardInto(a, b, &out);
  return out;
}

void HadamardInto(const Tensor& a, const Tensor& b, Tensor* out) {
  FATS_CHECK(a.shape() == b.shape()) << "hadamard shape mismatch";
  out->ResizeTo(a.shape());
  float* op = out->data();
  const float* ap = a.data();
  const float* bp = b.data();
  for (int64_t i = 0; i < a.size(); ++i) op[i] = ap[i] * bp[i];
}

Tensor Transpose(const Tensor& m) {
  FATS_CHECK_EQ(m.rank(), 2);
  const int64_t rows = m.dim(0), cols = m.dim(1);
  Tensor out({cols, rows});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out.at(j, i) = m.at(i, j);
    }
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  Tensor out;
  SoftmaxRowsInto(logits, &out);
  return out;
}

void SoftmaxRowsInto(const Tensor& logits, Tensor* out) {
  FATS_CHECK_EQ(logits.rank(), 2);
  const int64_t rows = logits.dim(0), n = logits.dim(1);
  out->ResizeTo(rows, n);
  const float* lp = logits.data();
  float* op = out->data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* in = lp + i * n;
    float* row = op + i * n;
    float max_v = in[0];
    for (int64_t j = 1; j < n; ++j) max_v = std::max(max_v, in[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::exp(in[j] - max_v);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

}  // namespace fats
