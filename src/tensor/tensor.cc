#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace fats {

int64_t Tensor::Volume(const std::vector<int64_t>& shape) {
  int64_t volume = 1;
  for (int64_t d : shape) {
    FATS_CHECK_GT(d, 0) << "tensor dims must be positive";
    volume *= d;
  }
  return volume;
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(Volume(shape_)), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  FATS_CHECK_EQ(Volume(shape_), static_cast<int64_t>(data_.size()))
      << "shape/data mismatch";
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  int64_t n = static_cast<int64_t>(values.size());
  return Tensor({n}, std::move(values));
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  FATS_CHECK_EQ(Volume(new_shape), size()) << "reshape volume mismatch";
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::ResizeTo(const std::vector<int64_t>& shape) {
  const int64_t volume = Volume(shape);
  shape_.assign(shape.begin(), shape.end());
  data_.resize(static_cast<size_t>(volume));
}

void Tensor::ResizeTo(int64_t d0) {
  FATS_CHECK_GT(d0, 0) << "tensor dims must be positive";
  shape_.resize(1);
  shape_[0] = d0;
  data_.resize(static_cast<size_t>(d0));
}

void Tensor::ResizeTo(int64_t d0, int64_t d1) {
  FATS_CHECK(d0 > 0 && d1 > 0) << "tensor dims must be positive";
  shape_.resize(2);
  shape_[0] = d0;
  shape_[1] = d1;
  data_.resize(static_cast<size_t>(d0 * d1));
}

void Tensor::ResizeTo(int64_t d0, int64_t d1, int64_t d2) {
  FATS_CHECK(d0 > 0 && d1 > 0 && d2 > 0) << "tensor dims must be positive";
  shape_.resize(3);
  shape_[0] = d0;
  shape_[1] = d1;
  shape_[2] = d2;
  data_.resize(static_cast<size_t>(d0 * d1 * d2));
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  FATS_CHECK(shape_ == other.shape_) << "shape mismatch in +=";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  FATS_CHECK(shape_ == other.shape_) << "shape mismatch in -=";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::Axpy(float scalar, const Tensor& other) {
  FATS_CHECK(shape_ == other.shape_) << "shape mismatch in Axpy";
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scalar * other.data_[i];
  }
}

double Tensor::Sum() const {
  double total = 0.0;
  for (float v : data_) total += v;
  return total;
}

double Tensor::SquaredNorm() const {
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return total;
}

int64_t Tensor::ArgMax() const {
  FATS_CHECK_GT(size(), 0);
  return static_cast<int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

bool Tensor::BitwiseEquals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::AllClose(const Tensor& other, float tolerance) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape_[i]);
  }
  out += "]";
  return out;
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor" << ShapeString() << " {";
  constexpr int64_t kMaxShown = 16;
  int64_t shown = std::min<int64_t>(size(), kMaxShown);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (size() > kMaxShown) os << ", ... (" << size() << " elements)";
  os << "}";
  return os.str();
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

}  // namespace fats
