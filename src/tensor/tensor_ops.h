// Free-function tensor kernels used by the nn layers.

#ifndef FATS_TENSOR_TENSOR_OPS_H_
#define FATS_TENSOR_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace fats {

/// C = A (m x k) * B (k x n). Shapes are checked.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A (m x k) * B^T where B is (n x k).
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// C = A^T (k x m -> m x k view) * B (k x n): i.e. C = A.T @ B for A (k x m).
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

/// Adds `bias` (length n) to every row of `m` (rows x n), in place.
void AddRowwise(Tensor* m, const Tensor& bias);

/// Sums the rows of `m` (rows x n) into a length-n vector.
Tensor SumRows(const Tensor& m);

/// Elementwise product.
Tensor Hadamard(const Tensor& a, const Tensor& b);

/// Transposes a 2-D tensor.
Tensor Transpose(const Tensor& m);

/// Row-wise softmax of a (rows x n) tensor (numerically stabilized).
Tensor SoftmaxRows(const Tensor& logits);

}  // namespace fats

#endif  // FATS_TENSOR_TENSOR_OPS_H_
