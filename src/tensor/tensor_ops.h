// Free-function tensor kernels used by the nn layers.
//
// The matmul family is backed by the blocked deterministic SGEMM in
// tensor/gemm.h: results are bit-identical to a canonical ascending-k
// triple loop regardless of shape, ISA path, or thread count, and NaN/Inf
// propagate exactly (no data-dependent skips). See DESIGN.md §7.2.
//
// Each product has three forms:
//   * a value-returning convenience (allocates the result),
//   * an `...Into` destination-passing form (resizes `*c`, reusing its
//     capacity — allocation-free at steady state),
//   * an `Add...Into` accumulating form (`*c += product`; `*c` must
//     already have the product's shape).
// Hot paths (layer Forward/Backward) must use the Into forms.

#ifndef FATS_TENSOR_TENSOR_OPS_H_
#define FATS_TENSOR_TENSOR_OPS_H_

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace fats {

/// C = A (m x k) * B (k x n). Shapes are checked.
Tensor MatMul(const Tensor& a, const Tensor& b);
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* c);
void AddMatMulInto(const Tensor& a, const Tensor& b, Tensor* c);

/// C = A (m x k) * B^T where B is (n x k).
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);
void MatMulTransposeBInto(const Tensor& a, const Tensor& b, Tensor* c);
void AddMatMulTransposeBInto(const Tensor& a, const Tensor& b, Tensor* c);

/// C = A (m x k) * B where B was captured by gemm::PackBMatrix. Bit-identical
/// to MatMulInto (B packed from (k x n) storage) / MatMulTransposeBInto
/// (B packed from (n x k) storage) on the original operand; used by layers
/// consuming a round-shared WeightPack.
void MatMulPackedBInto(const Tensor& a, const gemm::PackedB& b, Tensor* c);

/// C = A^T (k x m -> m x k view) * B (k x n): i.e. C = A.T @ B for A (k x m).
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);
void MatMulTransposeAInto(const Tensor& a, const Tensor& b, Tensor* c);
void AddMatMulTransposeAInto(const Tensor& a, const Tensor& b, Tensor* c);

/// Adds `bias` (length n) to every row of `m` (rows x n), in place.
void AddRowwise(Tensor* m, const Tensor& bias);

/// Sums the rows of `m` (rows x n) into a length-n vector.
Tensor SumRows(const Tensor& m);
/// out (length n) += column sums of `m` (rows x n).
void AddSumRowsInto(const Tensor& m, Tensor* out);

/// Elementwise product.
Tensor Hadamard(const Tensor& a, const Tensor& b);
/// out = a ⊙ b (resized to a's shape; out may not alias a or b).
void HadamardInto(const Tensor& a, const Tensor& b, Tensor* out);

/// Transposes a 2-D tensor.
Tensor Transpose(const Tensor& m);

/// Row-wise softmax of a (rows x n) tensor (numerically stabilized).
Tensor SoftmaxRows(const Tensor& logits);
/// out = row-wise softmax of logits (resized; out may not alias logits).
void SoftmaxRowsInto(const Tensor& logits, Tensor* out);

}  // namespace fats

#endif  // FATS_TENSOR_TENSOR_OPS_H_
