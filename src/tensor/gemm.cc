#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FATS_GEMM_X86 1
#include <immintrin.h>
#endif

namespace fats {
namespace gemm {
namespace {

// The pool installed by the innermost live ParallelScope on this thread.
// Thread-local by design: pool worker threads never see the caller's scope,
// so per-client GEMMs running inside ParallelFor tasks stay serial instead
// of nesting pool-in-pool parallelism.
thread_local ThreadPool* tls_parallel_pool = nullptr;

// Register micro-tile: MR rows of A by NR columns of B. NR is two AVX2
// vectors wide; the generic micro-kernel uses the same geometry so packed
// panel layouts are identical on every path.
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;
// Cache blocks (multiples of the micro-tile). Small relative to typical
// L1/L2 so a packed B panel and an A block stay resident.
constexpr int64_t kMc = 96;
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 1024;

inline int64_t RoundUp(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

// Packs the (mc x kc) block of A starting at logical row `ic`, column `pc`
// into kMr-row panels: element (r, kk) of panel p lands at
// ap[(p * kc + kk) * kMr + r]. Rows past mc are zero-padded; their products
// land in micro-tile lanes that are never stored. `trans` reads A stored as
// (k x m), i.e. logical A[i][k] = a[k * lda + i].
void PackA(const float* a, int64_t lda, bool trans, int64_t ic, int64_t pc,
           int64_t mc, int64_t kc, float* ap) {
  for (int64_t p = 0; p < mc; p += kMr) {
    const int64_t mr = std::min(kMr, mc - p);
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t r = 0; r < mr; ++r) {
        const int64_t row = ic + p + r;
        const int64_t col = pc + kk;
        *ap++ = trans ? a[col * lda + row] : a[row * lda + col];
      }
      for (int64_t r = mr; r < kMr; ++r) *ap++ = 0.0f;
    }
  }
}

// Packs the (kc x nc) block of B starting at logical row `pc`, column `jc`
// into kNr-column panels: element (kk, c) of panel q lands at
// bp[(q * kc + kk) * kNr + c]. Columns past nc are zero-padded (lanes never
// stored). `trans` reads B stored as (n x k), i.e. logical
// B[k][j] = b[j * ldb + k].
void PackB(const float* b, int64_t ldb, bool trans, int64_t pc, int64_t jc,
           int64_t kc, int64_t nc, float* bp) {
  for (int64_t q = 0; q < nc; q += kNr) {
    const int64_t nr = std::min(kNr, nc - q);
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t c = 0; c < nr; ++c) {
        const int64_t row = pc + kk;
        const int64_t col = jc + q + c;
        *bp++ = trans ? b[col * ldb + row] : b[row * ldb + col];
      }
      for (int64_t c = nr; c < kNr; ++c) *bp++ = 0.0f;
    }
  }
}

// Generic micro-kernel: a full kMr x kNr accumulator block in locals. The
// inner c-loop carries no dependence, so the compiler vectorizes across
// output columns — which never reorders any per-element accumulation chain.
// `first` starts accumulators at +0.0f (the canonical chain head); otherwise
// they continue from C. Only the mr x nr live corner is loaded/stored; the
// padded lanes accumulate pack-padding products that are discarded.
void MicroKernelGeneric(int64_t kc, const float* ap, const float* bp, float* c,
                        int64_t ldc, int64_t mr, int64_t nr, bool first) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < kMr; ++r) {
    for (int64_t j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  if (!first) {
    for (int64_t r = 0; r < mr; ++r) {
      for (int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMr;
    const float* brow = bp + kk * kNr;
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#if defined(FATS_GEMM_X86)
// AVX2 micro-kernel for full kMr x kNr tiles: 12 accumulator registers, two
// B vectors, one A broadcast. Deliberately mul+add (no FMA): FMA's single
// rounding would diverge from the reference chain. Edge tiles fall back to
// the generic kernel — same chain, same bits.
__attribute__((target("avx2"))) void MicroKernelAvx2Full(int64_t kc,
                                                         const float* ap,
                                                         const float* bp,
                                                         float* c, int64_t ldc,
                                                         bool first) {
  __m256 acc[kMr][2];
  if (first) {
    for (int64_t r = 0; r < kMr; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
  } else {
    for (int64_t r = 0; r < kMr; ++r) {
      acc[r][0] = _mm256_loadu_ps(c + r * ldc);
      acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMr;
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNr + 8);
    for (int64_t r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

// AVX-512 variant of the full-tile kernel: kNr == 16 is exactly one zmm
// register, so each of the kMr rows keeps a single 16-lane accumulator and
// each k step issues one mul + one add per row (half the FP uops of the
// AVX2 version). The lane layout is identical — lane j of acc[r] is the
// C[r][j] chain, products rounded by _mm512_mul_ps and added in ascending-k
// order — so the result is bit-identical to the generic and AVX2 paths.
__attribute__((target("avx512f"))) void MicroKernelAvx512Full(
    int64_t kc, const float* ap, const float* bp, float* c, int64_t ldc,
    bool first) {
  static_assert(kNr == 16, "one zmm register per row");
  __m512 acc[kMr];
  if (first) {
    for (int64_t r = 0; r < kMr; ++r) {
      acc[r] = _mm512_setzero_ps();
    }
  } else {
    for (int64_t r = 0; r < kMr; ++r) {
      acc[r] = _mm512_loadu_ps(c + r * ldc);
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMr;
    const __m512 b0 = _mm512_loadu_ps(bp + kk * kNr);
    for (int64_t r = 0; r < kMr; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(av, b0));
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(c + r * ldc, acc[r]);
  }
}

// Edge-tile variant: any mr <= kMr, any nr <= kNr. B panels are zero-padded
// to kNr so the full 16-lane load is safe and the padded lanes just compute
// zeros; C is touched only through an nr-wide mask, so lanes past the tile
// are neither read (the maskz load zero-fills them) nor written. Active
// lanes run the identical mul-then-add chain, so edge tiles stay
// bit-identical to the generic path too.
__attribute__((target("avx512f"))) void MicroKernelAvx512Edge(
    int64_t kc, const float* ap, const float* bp, float* c, int64_t ldc,
    int64_t mr, int64_t nr, bool first) {
  const __mmask16 mask = static_cast<__mmask16>((1u << nr) - 1u);
  __m512 acc[kMr];
  for (int64_t r = 0; r < mr; ++r) {
    acc[r] = first ? _mm512_setzero_ps()
                   : _mm512_maskz_loadu_ps(mask, c + r * ldc);
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMr;
    const __m512 b0 = _mm512_loadu_ps(bp + kk * kNr);
    for (int64_t r = 0; r < mr; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(av, b0));
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    _mm512_mask_storeu_ps(c + r * ldc, mask, acc[r]);
  }
}

// AVX2 edge variant for short row tiles (mr < kMr) at full panel width.
// Narrow-nr edges fall back to the generic kernel on AVX2-only hosts.
__attribute__((target("avx2"))) void MicroKernelAvx2PartialM(
    int64_t kc, const float* ap, const float* bp, float* c, int64_t ldc,
    int64_t mr, bool first) {
  __m256 acc[kMr][2];
  for (int64_t r = 0; r < mr; ++r) {
    if (first) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    } else {
      acc[r][0] = _mm256_loadu_ps(c + r * ldc);
      acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMr;
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNr + 8);
    for (int64_t r = 0; r < mr; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }
bool DetectAvx512() { return __builtin_cpu_supports("avx512f") != 0; }
#else
bool DetectAvx2() { return false; }
bool DetectAvx512() { return false; }
#endif

// Resolved once at static-init time; a pure function of the host CPU, never
// of the data, so dispatch cannot introduce nondeterminism.
const bool kUseAvx2 = DetectAvx2();
const bool kUseAvx512 = DetectAvx512();

inline void MicroKernel(int64_t kc, const float* ap, const float* bp, float* c,
                        int64_t ldc, int64_t mr, int64_t nr, bool first) {
#if defined(FATS_GEMM_X86)
  if (kUseAvx512) {
    if (mr == kMr && nr == kNr) {
      MicroKernelAvx512Full(kc, ap, bp, c, ldc, first);
    } else {
      MicroKernelAvx512Edge(kc, ap, bp, c, ldc, mr, nr, first);
    }
    return;
  }
  if (kUseAvx2 && nr == kNr) {
    if (mr == kMr) {
      MicroKernelAvx2Full(kc, ap, bp, c, ldc, first);
    } else {
      MicroKernelAvx2PartialM(kc, ap, bp, c, ldc, mr, first);
    }
    return;
  }
#endif
  MicroKernelGeneric(kc, ap, bp, c, ldc, mr, nr, first);
}

// Macro-kernel over one (ic, mc) row band of a (jc, pc) cache block: packs
// the A band into per-thread scratch and runs the micro-tile loops. Writes
// only C rows [ic, ic + mc) — the unit of parallel tile ownership, so two
// calls on different bands never touch the same output element.
void MacroKernelRowBand(int64_t ic, int64_t mc, int64_t jc, int64_t nc,
                        int64_t pc, int64_t kc, const float* a, int64_t lda,
                        bool a_trans, const float* bp_block, float* c,
                        int64_t ldc, bool first) {
  // Per-thread so concurrent band tasks never share, reused across calls so
  // steady-state GEMMs allocate nothing (after each worker's first call).
  thread_local std::vector<float> ap_buf;
  ap_buf.resize(static_cast<size_t>(RoundUp(mc, kMr) * kc));
  PackA(a, lda, a_trans, ic, pc, mc, kc, ap_buf.data());
  for (int64_t jr = 0; jr < nc; jr += kNr) {
    const int64_t nr = std::min(kNr, nc - jr);
    const float* bp = bp_block + (jr / kNr) * kc * kNr;
    for (int64_t ir = 0; ir < mc; ir += kMr) {
      const int64_t mr = std::min(kMr, mc - ir);
      const float* ap = ap_buf.data() + (ir / kMr) * kc * kMr;
      float* cp = c + (ic + ir) * ldc + (jc + jr);
      MicroKernel(kc, ap, bp, cp, ldc, mr, nr, first);
    }
  }
}

// Work floor below which dispatching pool tasks costs more than it saves.
// A pure function of the problem shape (never of load or schedule), so the
// serial/parallel choice is deterministic — and both sides of the choice are
// bit-identical anyway.
constexpr int64_t kParallelGemmMinFlops = 1 << 18;

inline bool ParallelWorthwhile(const ThreadPool* pool, int64_t m, int64_t n,
                               int64_t k) {
  return pool != nullptr && pool->num_threads() > 1 && m >= 2 * kMr &&
         m * n * k >= kParallelGemmMinFlops;
}

// Rows per parallel band: ceil(m / workers) rounded up to the micro-tile
// height so a band boundary never splits a kMr row panel. Pure function of
// (m, workers); the band -> rows map is fixed before dispatch.
inline int64_t ParallelBandRows(int64_t m, int64_t workers) {
  const int64_t ideal = (m + workers - 1) / workers;
  return std::max<int64_t>(kMr, RoundUp(ideal, kMr));
}

// Shared driver. a_trans/b_trans select the TN/NT storage interpretations;
// packing absorbs the transpose, so one macro-kernel serves all variants.
// When `packed` is non-null it supplies B's panels (b/ldb/b_trans unused);
// the panel bytes are identical to what PackB would produce, so the packed
// and packing paths are bit-identical. When a ParallelScope pool is active
// and the shape clears the work floor, the m dimension is split into fixed
// row bands and each band runs as one pool task: B panels are packed (or
// resolved) once on the calling thread before dispatch, every task packs
// its own A band into thread-local scratch, and each output element is
// written by exactly the one task owning its band with its ascending-k
// chain intact — no atomics, no cross-task reduction, bit-identical to the
// serial loop.
void SgemmDriver(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                 bool a_trans, const float* b, int64_t ldb, bool b_trans,
                 const PackedB* packed, float* c, int64_t ldc,
                 bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) c[i * ldc + j] = 0.0f;
      }
    }
    return;
  }
  thread_local std::vector<float> bp_buf;
  ThreadPool* pool = tls_parallel_pool;
  const bool parallel = ParallelWorthwhile(pool, m, n, k);
  const int64_t num_pc_blocks = (k + kKc - 1) / kKc;
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      const float* bp_block;
      if (packed != nullptr) {
        const size_t block_idx = static_cast<size_t>(
            (jc / kNc) * num_pc_blocks + (pc / kKc));
        bp_block = packed->panels.data() + packed->block_offsets[block_idx];
      } else {
        bp_buf.resize(static_cast<size_t>(RoundUp(nc, kNr) * kc));
        PackB(b, ldb, b_trans, pc, jc, kc, nc, bp_buf.data());
        bp_block = bp_buf.data();
      }
      // The chain head: the first k-block starts accumulators at +0.0f
      // unless the caller asked to continue from C.
      const bool first = (pc == 0) && !accumulate;
      if (!parallel) {
        for (int64_t ic = 0; ic < m; ic += kMc) {
          MacroKernelRowBand(ic, std::min(kMc, m - ic), jc, nc, pc, kc, a,
                             lda, a_trans, bp_block, c, ldc, first);
        }
      } else {
        const int64_t band_rows = ParallelBandRows(m, pool->num_threads());
        const int64_t num_bands = (m + band_rows - 1) / band_rows;
        pool->ParallelFor(num_bands, [&](int64_t band, int64_t /*worker*/) {
          const int64_t row0 = band * band_rows;
          const int64_t rows = std::min(band_rows, m - row0);
          for (int64_t off = 0; off < rows; off += kMc) {
            MacroKernelRowBand(row0 + off, std::min(kMc, rows - off), jc, nc,
                               pc, kc, a, lda, a_trans, bp_block, c, ldc,
                               first);
          }
        });
      }
    }
  }
}

// --- Small-matrix fast path ------------------------------------------------
//
// Packing copies O(m*k + k*n) floats before the first multiply; for the tiny
// GEMMs that dominate a small-model training step (im2col panels with
// n = out_channels, batch-sized Linear calls, per-timestep LSTM gates) that
// overhead rivals the flop count itself. Below this m*n*k threshold a direct
// kernel over the unpacked operands wins. It performs the exact contract
// chain — one accumulator per element, ascending k, products rounded
// individually, SIMD lanes spanning output columns only — so it is
// bit-identical to both the blocked path and the reference loops.
constexpr int64_t kSmallGemmFlopLimit = 1 << 15;

#if defined(FATS_GEMM_X86)
// C (m x n, row stride ldc) = [C or 0] + op(A) @ B, with B addressed as
// (k x n) rows of stride ldb and A read as a[i*lda+k] (a_trans=false) or
// a[k*lda+i] (a_trans=true). Register-blocks kMr rows x 16 columns directly
// from the source operands; masked loads/stores keep column tails inside
// the buffers, and masked-off lanes are never written.
__attribute__((target("avx512f"))) void SmallGemmAvx512(
    int64_t m, int64_t n, int64_t k, const float* a, int64_t lda, bool a_trans,
    const float* b, int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  for (int64_t i0 = 0; i0 < m; i0 += kMr) {
    const int64_t rows = std::min<int64_t>(kMr, m - i0);
    for (int64_t j0 = 0; j0 < n; j0 += 16) {
      const int64_t cols = std::min<int64_t>(16, n - j0);
      const __mmask16 mask =
          static_cast<__mmask16>(cols == 16 ? 0xFFFFu : (1u << cols) - 1u);
      __m512 acc[kMr];
      for (int64_t r = 0; r < rows; ++r) {
        acc[r] = accumulate
                     ? _mm512_maskz_loadu_ps(mask, c + (i0 + r) * ldc + j0)
                     : _mm512_setzero_ps();
      }
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m512 bv = _mm512_maskz_loadu_ps(mask, b + kk * ldb + j0);
        for (int64_t r = 0; r < rows; ++r) {
          const float av =
              a_trans ? a[kk * lda + i0 + r] : a[(i0 + r) * lda + kk];
          acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(_mm512_set1_ps(av), bv));
        }
      }
      for (int64_t r = 0; r < rows; ++r) {
        _mm512_mask_storeu_ps(c + (i0 + r) * ldc + j0, mask, acc[r]);
      }
    }
  }
}
#endif  // FATS_GEMM_X86

// k == 0 (pure zero/keep of C) stays on the driver, which handles it without
// touching A/B. Hosts without AVX-512 also stay on the blocked path, so the
// fast path never changes behaviour there.
inline bool SmallGemmEligible(int64_t m, int64_t n, int64_t k) {
#if defined(FATS_GEMM_X86)
  return kUseAvx512 && m > 0 && n > 0 && k > 0 &&
         m * n * k <= kSmallGemmFlopLimit;
#else
  (void)m;
  (void)n;
  (void)k;
  return false;
#endif
}

}  // namespace

void SgemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate) {
#if defined(FATS_GEMM_X86)
  if (SmallGemmEligible(m, n, k)) {
    SmallGemmAvx512(m, n, k, a, lda, /*a_trans=*/false, b, ldb, c, ldc,
                    accumulate);
    return;
  }
#endif
  SgemmDriver(m, n, k, a, lda, /*a_trans=*/false, b, ldb, /*b_trans=*/false,
              /*packed=*/nullptr, c, ldc, accumulate);
}

void SgemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate) {
#if defined(FATS_GEMM_X86)
  if (SmallGemmEligible(m, n, k)) {
    // B is stored (n x k); transpose it into per-thread scratch so the
    // kernel streams contiguous rows. A copy, not an arithmetic change:
    // the accumulation chain is untouched.
    thread_local std::vector<float> bt_buf;
    bt_buf.resize(static_cast<size_t>(k * n));
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t kk = 0; kk < k; ++kk) {
        bt_buf[static_cast<size_t>(kk * n + j)] = b[j * ldb + kk];
      }
    }
    SmallGemmAvx512(m, n, k, a, lda, /*a_trans=*/false, bt_buf.data(), n, c,
                    ldc, accumulate);
    return;
  }
#endif
  SgemmDriver(m, n, k, a, lda, /*a_trans=*/false, b, ldb, /*b_trans=*/true,
              /*packed=*/nullptr, c, ldc, accumulate);
}

void SgemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate) {
#if defined(FATS_GEMM_X86)
  if (SmallGemmEligible(m, n, k)) {
    SmallGemmAvx512(m, n, k, a, lda, /*a_trans=*/true, b, ldb, c, ldc,
                    accumulate);
    return;
  }
#endif
  SgemmDriver(m, n, k, a, lda, /*a_trans=*/true, b, ldb, /*b_trans=*/false,
              /*packed=*/nullptr, c, ldc, accumulate);
}

// --- ParallelScope / prepacked B -------------------------------------------

ParallelScope::ParallelScope(ThreadPool* pool) : previous_(tls_parallel_pool) {
  tls_parallel_pool =
      (pool != nullptr && pool->num_threads() > 1) ? pool : nullptr;
}

ParallelScope::~ParallelScope() { tls_parallel_pool = previous_; }

void PackBMatrix(int64_t n, int64_t k, const float* b, int64_t ldb,
                 bool b_trans, PackedB* out) {
  FATS_CHECK_GE(n, 1) << "PackBMatrix: n must be positive";
  FATS_CHECK_GE(k, 1) << "PackBMatrix: k must be positive";
  out->n = n;
  out->k = k;
  const int64_t num_pc_blocks = (k + kKc - 1) / kKc;
  const int64_t num_jc_blocks = (n + kNc - 1) / kNc;
  out->block_offsets.resize(
      static_cast<size_t>(num_jc_blocks * num_pc_blocks));
  // First pass: lay out block offsets (panels are padded to kNr columns, so
  // block sizes depend only on the shape).
  int64_t total = 0;
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      out->block_offsets[static_cast<size_t>((jc / kNc) * num_pc_blocks +
                                             (pc / kKc))] = total;
      total += RoundUp(nc, kNr) * kc;
    }
  }
  out->panels.resize(static_cast<size_t>(total));
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      float* bp = out->panels.data() +
                  out->block_offsets[static_cast<size_t>(
                      (jc / kNc) * num_pc_blocks + (pc / kKc))];
      PackB(b, ldb, b_trans, pc, jc, kc, nc, bp);
    }
  }
  // Dense (k x n) mirror for the small-GEMM fast path. Only worth storing
  // when some m could make a call eligible (m >= 1 => m*n*k >= n*k); hosts
  // without the fast path skip it entirely.
  out->rowmajor.clear();
#if defined(FATS_GEMM_X86)
  if (kUseAvx512 && n * k <= kSmallGemmFlopLimit) {
    out->rowmajor.resize(static_cast<size_t>(n * k));
    for (int64_t kk = 0; kk < k; ++kk) {
      for (int64_t j = 0; j < n; ++j) {
        out->rowmajor[static_cast<size_t>(kk * n + j)] =
            b_trans ? b[j * ldb + kk] : b[kk * ldb + j];
      }
    }
  }
#endif
}

void SgemmPackedB(int64_t m, int64_t n, int64_t k, const float* a,
                  int64_t lda, const PackedB& b, float* c, int64_t ldc,
                  bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k > 0) {
    FATS_CHECK_EQ(b.n, n) << "SgemmPackedB: pack shape mismatch";
    FATS_CHECK_EQ(b.k, k) << "SgemmPackedB: pack shape mismatch";
  }
#if defined(FATS_GEMM_X86)
  if (SmallGemmEligible(m, n, k) && !b.rowmajor.empty()) {
    SmallGemmAvx512(m, n, k, a, lda, /*a_trans=*/false, b.rowmajor.data(), n,
                    c, ldc, accumulate);
    return;
  }
#endif
  SgemmDriver(m, n, k, a, lda, /*a_trans=*/false, /*b=*/nullptr, /*ldb=*/0,
              /*b_trans=*/false, &b, c, ldc, accumulate);
}

void ReferenceSgemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * ldc + j] : 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[i * lda + kk] * b[kk * ldb + j];
      }
      c[i * ldc + j] = acc;
    }
  }
}

void ReferenceSgemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * ldc + j] : 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[i * lda + kk] * b[j * ldb + kk];
      }
      c[i * ldc + j] = acc;
    }
  }
}

void ReferenceSgemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * ldc + j] : 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[kk * lda + i] * b[kk * ldb + j];
      }
      c[i * ldc + j] = acc;
    }
  }
}

bool UsingAvx2Kernels() { return kUseAvx2; }
bool UsingAvx512Kernels() { return kUseAvx512; }

}  // namespace gemm
}  // namespace fats
