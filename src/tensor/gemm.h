// Blocked, SIMD-friendly SGEMM kernels under a pinned deterministic contract.
//
// Every kernel in this file computes, for each output element C[i][j], the
// float chain
//
//   acc = (accumulate ? C[i][j] : 0.0f);
//   for k ascending: acc = fl(acc + fl(A[i][k] * B[k][j]));
//   C[i][j] = acc;
//
// i.e. products are rounded individually (no FMA contraction) and added in
// ascending-k order into a single accumulator per element. The blocked
// implementation tiles for cache and registers (packed A/B panels, fixed
// MR x NR micro-tiles) and vectorizes across the *n* dimension only — SIMD
// lanes hold independent output columns, so vector width never changes any
// accumulation chain. Consequently:
//
//   * results are bit-identical to the Reference* triple loops below (the
//     canonical order that defines the contract),
//   * results are independent of blocking parameters, ISA path (generic vs
//     AVX2), thread count, and run-to-run,
//   * NaN/Inf propagate exactly as in the reference (no data-dependent
//     skips; see DESIGN.md §7.2).
//
// The kernels are reentrant: packing scratch is thread_local, so concurrent
// calls from different ThreadPool workers never share buffers, and steady-
// state calls perform no heap allocation.
//
// Leading dimensions (lda/ldb/ldc) are row strides of the *stored* matrix,
// so strided sub-blocks of larger tensors can be used directly.

#ifndef FATS_TENSOR_GEMM_H_
#define FATS_TENSOR_GEMM_H_

#include <cstdint>
#include <vector>

namespace fats {

class ThreadPool;

namespace gemm {

/// C (m x n) = [C if accumulate else 0] + A (m x k) @ B (k x n).
void SgemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

/// C (m x n) = [C if accumulate else 0] + A (m x k) @ B^T, B stored (n x k).
void SgemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

/// C (m x n) = [C if accumulate else 0] + A^T @ B, A stored (k x m).
void SgemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

// --- Multi-threaded execution (DESIGN.md §7.6) -----------------------------
//
// While a ParallelScope is active on the calling thread, the Sgemm* drivers
// split the m dimension into contiguous row bands — a *fixed tile-ownership
// split*, a pure function of (m, num_threads) and never of the schedule —
// and run each band's macro-kernel as a ThreadPool task. Every output
// element is written by exactly one task, each element's ascending-k
// accumulation chain stays inside that task (the k-block loop remains
// serial), and there is no atomic accumulation or cross-task reduction, so
// results are bit-identical to the single-threaded kernels at every thread
// count. Below an internal work threshold calls run serially on the calling
// thread — also bit-identical, so the threshold is performance-only.
//
// The scope is thread-local: it parallelizes GEMMs issued by the thread that
// constructed it and is invisible to every other thread. In particular,
// GEMMs issued from inside ThreadPool tasks (per-client training steps)
// never nest pool-in-pool parallelism. Never construct a ParallelScope on a
// worker thread of the pool it wraps: ParallelFor is not reentrant.
class ParallelScope {
 public:
  // A null pool (or one with num_threads() <= 1) disables parallel GEMM for
  // the scope — convenient for --threads 1 call sites.
  explicit ParallelScope(ThreadPool* pool);
  ~ParallelScope();
  ParallelScope(const ParallelScope&) = delete;
  ParallelScope& operator=(const ParallelScope&) = delete;

 private:
  ThreadPool* previous_;
};

// --- Prepacked B operands --------------------------------------------------
//
// PackB'ing the weight matrix is O(k*n) copy work the blocked driver repeats
// on every call. When many GEMMs share one B (the K sampled clients of a
// round all multiplying by the same round-start weights), packing once and
// reusing the panels removes that work from every call. The packed panels
// are byte-identical to what the driver would pack internally, and the
// small-GEMM fast path consumes the dense row-major mirror instead of
// re-transposing, so prepacked calls are bit-identical to their unpacked
// counterparts — pinned by tests/kernel_contract_test.cc.
struct PackedB {
  int64_t n = 0;
  int64_t k = 0;
  // kNr-column panels in the blocked driver's (jc outer, pc inner) block
  // order; block_offsets[jc_idx * num_pc_blocks + pc_idx] locates each
  // block's first float in `panels`.
  std::vector<float> panels;
  std::vector<int64_t> block_offsets;
  // Dense (k x n) row-major mirror, filled only when the small-GEMM fast
  // path can consume it; empty otherwise.
  std::vector<float> rowmajor;
};

/// Packs logical B (k x n) for reuse across SgemmPackedB calls. With
/// b_trans=false, b is stored (k x n) with row stride ldb (the SgemmNN
/// layout); with b_trans=true, b is stored (n x k) (the SgemmNT layout).
/// Reuses `out`'s capacity: repacking the same shape allocates nothing.
void PackBMatrix(int64_t n, int64_t k, const float* b, int64_t ldb,
                 bool b_trans, PackedB* out);

/// C (m x n) = [C if accumulate else 0] + A (m x k) @ B, with B captured by
/// PackBMatrix. Bit-identical to SgemmNN (b_trans=false at pack time) /
/// SgemmNT (b_trans=true) on the original operand, on every dispatch path
/// and thread count.
void SgemmPackedB(int64_t m, int64_t n, int64_t k, const float* a,
                  int64_t lda, const PackedB& b, float* c, int64_t ldc,
                  bool accumulate);

// Canonical-order reference kernels: straightforward i-j-k triple loops that
// *define* the deterministic contract. The blocked kernels above must match
// them bitwise (tests/kernel_contract_test.cc is the gate). They are also
// the benchmark baseline for the blocked kernels' speedup.
void ReferenceSgemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate);
void ReferenceSgemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate);
void ReferenceSgemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate);

/// True when the runtime-dispatched micro-kernel can use AVX2 (resp.
/// AVX-512, which is preferred when both are present). Introspection only —
/// all paths are bit-identical by construction.
bool UsingAvx2Kernels();
bool UsingAvx512Kernels();

}  // namespace gemm
}  // namespace fats

#endif  // FATS_TENSOR_GEMM_H_
