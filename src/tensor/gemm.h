// Blocked, SIMD-friendly SGEMM kernels under a pinned deterministic contract.
//
// Every kernel in this file computes, for each output element C[i][j], the
// float chain
//
//   acc = (accumulate ? C[i][j] : 0.0f);
//   for k ascending: acc = fl(acc + fl(A[i][k] * B[k][j]));
//   C[i][j] = acc;
//
// i.e. products are rounded individually (no FMA contraction) and added in
// ascending-k order into a single accumulator per element. The blocked
// implementation tiles for cache and registers (packed A/B panels, fixed
// MR x NR micro-tiles) and vectorizes across the *n* dimension only — SIMD
// lanes hold independent output columns, so vector width never changes any
// accumulation chain. Consequently:
//
//   * results are bit-identical to the Reference* triple loops below (the
//     canonical order that defines the contract),
//   * results are independent of blocking parameters, ISA path (generic vs
//     AVX2), thread count, and run-to-run,
//   * NaN/Inf propagate exactly as in the reference (no data-dependent
//     skips; see DESIGN.md §7.2).
//
// The kernels are reentrant: packing scratch is thread_local, so concurrent
// calls from different ThreadPool workers never share buffers, and steady-
// state calls perform no heap allocation.
//
// Leading dimensions (lda/ldb/ldc) are row strides of the *stored* matrix,
// so strided sub-blocks of larger tensors can be used directly.

#ifndef FATS_TENSOR_GEMM_H_
#define FATS_TENSOR_GEMM_H_

#include <cstdint>

namespace fats {
namespace gemm {

/// C (m x n) = [C if accumulate else 0] + A (m x k) @ B (k x n).
void SgemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

/// C (m x n) = [C if accumulate else 0] + A (m x k) @ B^T, B stored (n x k).
void SgemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

/// C (m x n) = [C if accumulate else 0] + A^T @ B, A stored (k x m).
void SgemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
             const float* b, int64_t ldb, float* c, int64_t ldc,
             bool accumulate);

// Canonical-order reference kernels: straightforward i-j-k triple loops that
// *define* the deterministic contract. The blocked kernels above must match
// them bitwise (tests/kernel_contract_test.cc is the gate). They are also
// the benchmark baseline for the blocked kernels' speedup.
void ReferenceSgemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate);
void ReferenceSgemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate);
void ReferenceSgemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, const float* b, int64_t ldb, float* c,
                      int64_t ldc, bool accumulate);

/// True when the runtime-dispatched micro-kernel can use AVX2 (resp.
/// AVX-512, which is preferred when both are present). Introspection only —
/// all paths are bit-identical by construction.
bool UsingAvx2Kernels();
bool UsingAvx512Kernels();

}  // namespace gemm
}  // namespace fats

#endif  // FATS_TENSOR_GEMM_H_
