// Deterministic sharded tree aggregation.
//
// TreeAggregate sums a slot-ordered list of tensors with a fixed-shape
// reduction tree: inputs are grouped into runs of kAggregateFanIn in slot
// order, each group is summed serially (a zero-initialized accumulator, +=
// in ascending slot order), and the group partials feed the next level
// until one tensor remains. The tree shape is a pure function of the input
// count — never of the worker count — and every partial is owned by one
// task slot, so the result is bit-identical whether the groups of a level
// are reduced serially or across any number of ThreadPool workers
// (DESIGN.md §7.8). For n <= kAggregateFanIn the tree degenerates to the
// single serial accumulation chain 0 + x_0 + x_1 + ..., i.e. exactly the
// flat aggregation loop it replaces.

#ifndef FATS_STATE_TREE_AGGREGATE_H_
#define FATS_STATE_TREE_AGGREGATE_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fats::state {

/// Group width of the reduction tree. Part of the numeric contract: changing
/// it changes float association and therefore traces.
inline constexpr int64_t kAggregateFanIn = 8;

/// Sum of `inputs` (all the same shape, at least one) over the fixed
/// reduction tree. `pool` may be nullptr for serial evaluation; the result
/// does not depend on it.
Tensor TreeAggregate(const std::vector<Tensor>& inputs, ThreadPool* pool);

}  // namespace fats::state

#endif  // FATS_STATE_TREE_AGGREGATE_H_
