#include "state/history_codec.h"

#include <algorithm>

#include "util/logging.h"

namespace fats::state {
namespace {

constexpr uint8_t kTagRaw64 = 0;
constexpr uint8_t kTagBitPack = 1;
constexpr uint8_t kTagDeltaPack = 2;
constexpr uint8_t kTagBitmap = 3;

// Bitmaps are only considered when the value span is small enough that the
// bitmap could possibly win and a corrupt span cannot demand an absurd
// allocation on decode.
constexpr uint64_t kMaxBitmapSpan = uint64_t{1} << 32;

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t z) {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

int64_t VarintSize(uint64_t v) {
  int64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    v >>= 1;
    ++w;
  }
  return w;
}

// width-bit groups packed LSB-first within each byte, in value order. The
// same traversal on both sides makes the packed bytes a pure function of the
// values — there is no padding ambiguity (the final partial byte is
// zero-filled).
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  void Put(uint64_t value, int width) {
    while (width > 0) {
      const int take = std::min(width, 8 - nbits_);
      acc_ |= static_cast<uint8_t>((value & ((uint64_t{1} << take) - 1))
                                   << nbits_);
      value >>= take;
      width -= take;
      nbits_ += take;
      if (nbits_ == 8) {
        out_->push_back(static_cast<char>(acc_));
        acc_ = 0;
        nbits_ = 0;
      }
    }
  }

  void Flush() {
    if (nbits_ > 0) {
      out_->push_back(static_cast<char>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  std::string* out_;
  uint8_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  BitReader(std::string_view bytes, size_t pos) : bytes_(bytes), pos_(pos) {}

  bool Get(int width, uint64_t* value) {
    uint64_t r = 0;
    int got = 0;
    while (got < width) {
      if (nbits_ == 0) {
        if (pos_ >= bytes_.size()) return false;
        acc_ = static_cast<uint8_t>(bytes_[pos_++]);
        nbits_ = 8;
      }
      const int take = std::min(width - got, nbits_);
      r |= (static_cast<uint64_t>(acc_) & ((uint64_t{1} << take) - 1)) << got;
      acc_ >>= take;
      nbits_ -= take;
      got += take;
    }
    *value = r;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_;
  uint8_t acc_ = 0;
  int nbits_ = 0;
};

struct ListShape {
  uint64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  bool non_decreasing = true;
  bool strictly_increasing = true;
  uint64_t max_delta = 0;  // max adjacent forward difference (when sorted)
};

ListShape ShapeOf(const std::vector<int64_t>& values) {
  ListShape s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = s.max = values[0];
  for (size_t i = 1; i < values.size(); ++i) {
    s.min = std::min(s.min, values[i]);
    s.max = std::max(s.max, values[i]);
    if (values[i] < values[i - 1]) {
      s.non_decreasing = false;
      s.strictly_increasing = false;
    } else {
      if (values[i] == values[i - 1]) s.strictly_increasing = false;
      const uint64_t delta = static_cast<uint64_t>(values[i]) -
                             static_cast<uint64_t>(values[i - 1]);
      s.max_delta = std::max(s.max_delta, delta);
    }
  }
  return s;
}

uint64_t Range(const ListShape& s) {
  return static_cast<uint64_t>(s.max) - static_cast<uint64_t>(s.min);
}

// Exact encoded sizes (including the tag byte) for the candidate encodings;
// -1 when an encoding is not applicable to this list.
int64_t SizeRaw64(const ListShape& s) {
  return 1 + VarintSize(s.count) + static_cast<int64_t>(s.count) * 8;
}

int64_t SizeBitPack(const ListShape& s) {
  if (s.count == 0) return -1;
  const int width = BitWidth(Range(s));
  return 1 + VarintSize(s.count) + VarintSize(Zigzag(s.min)) + 1 +
         static_cast<int64_t>((s.count * static_cast<uint64_t>(width) + 7) / 8);
}

int64_t SizeDeltaPack(const ListShape& s) {
  if (s.count == 0 || !s.non_decreasing) return -1;
  const int width = BitWidth(s.max_delta);
  return 1 + VarintSize(s.count) + VarintSize(Zigzag(s.min)) + 1 +
         static_cast<int64_t>(
             ((s.count - 1) * static_cast<uint64_t>(width) + 7) / 8);
}

int64_t SizeBitmap(const ListShape& s) {
  if (s.count == 0 || !s.strictly_increasing) return -1;
  // Gate on the range before the +1: a full-width range would overflow
  // span to 0 and slip past the cap.
  if (Range(s) >= kMaxBitmapSpan) return -1;
  const uint64_t span = Range(s) + 1;
  return 1 + VarintSize(s.count) + VarintSize(Zigzag(s.min)) +
         VarintSize(span) + static_cast<int64_t>((span + 7) / 8);
}

void AppendRaw64(const std::vector<int64_t>& values, std::string* out) {
  out->push_back(static_cast<char>(kTagRaw64));
  AppendVarint(values.size(), out);
  for (int64_t v : values) {
    uint64_t u = static_cast<uint64_t>(v);
    for (int b = 0; b < 8; ++b) {
      out->push_back(static_cast<char>(u & 0xFF));
      u >>= 8;
    }
  }
}

void AppendBitPack(const std::vector<int64_t>& values, const ListShape& s,
                   std::string* out) {
  const int width = BitWidth(Range(s));
  out->push_back(static_cast<char>(kTagBitPack));
  AppendVarint(s.count, out);
  AppendZigzag(s.min, out);
  out->push_back(static_cast<char>(width));
  BitWriter bits(out);
  for (int64_t v : values) {
    bits.Put(static_cast<uint64_t>(v) - static_cast<uint64_t>(s.min), width);
  }
  bits.Flush();
}

void AppendDeltaPack(const std::vector<int64_t>& values, const ListShape& s,
                     std::string* out) {
  const int width = BitWidth(s.max_delta);
  out->push_back(static_cast<char>(kTagDeltaPack));
  AppendVarint(s.count, out);
  AppendZigzag(values[0], out);
  out->push_back(static_cast<char>(width));
  BitWriter bits(out);
  for (size_t i = 1; i < values.size(); ++i) {
    bits.Put(static_cast<uint64_t>(values[i]) -
                 static_cast<uint64_t>(values[i - 1]),
             width);
  }
  bits.Flush();
}

void AppendBitmap(const std::vector<int64_t>& values, const ListShape& s,
                  std::string* out) {
  const uint64_t span = Range(s) + 1;
  out->push_back(static_cast<char>(kTagBitmap));
  AppendVarint(s.count, out);
  AppendZigzag(s.min, out);
  AppendVarint(span, out);
  std::string bitmap((span + 7) / 8, '\0');
  for (int64_t v : values) {
    const uint64_t bit =
        static_cast<uint64_t>(v) - static_cast<uint64_t>(s.min);
    bitmap[bit / 8] = static_cast<char>(
        static_cast<uint8_t>(bitmap[bit / 8]) | (uint8_t{1} << (bit % 8)));
  }
  out->append(bitmap);
}

Status Truncated(const char* what) {
  return Status::IoError(std::string("history codec: truncated ") + what);
}

}  // namespace

void AppendVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void AppendZigzag(int64_t value, std::string* out) {
  AppendVarint(Zigzag(value), out);
}

Status ParseVarint(std::string_view bytes, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*pos >= bytes.size()) return Truncated("varint");
    const uint8_t byte = static_cast<uint8_t>(bytes[(*pos)++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::IoError("history codec: varint longer than 10 bytes");
}

Status ParseZigzag(std::string_view bytes, size_t* pos, int64_t* out) {
  uint64_t z = 0;
  FATS_RETURN_NOT_OK(ParseVarint(bytes, pos, &z));
  *out = Unzigzag(z);
  return Status::OK();
}

void AppendIndexList(const std::vector<int64_t>& values, std::string* out) {
  const ListShape s = ShapeOf(values);
  // Deterministic chooser: exact sizes, smallest wins, ties break toward the
  // smaller tag so identical lists always produce identical bytes.
  const int64_t sizes[4] = {SizeRaw64(s), SizeBitPack(s), SizeDeltaPack(s),
                            SizeBitmap(s)};
  int best = 0;
  for (int tag = 1; tag < 4; ++tag) {
    if (sizes[tag] >= 0 && (sizes[best] < 0 || sizes[tag] < sizes[best])) {
      best = tag;
    }
  }
  switch (best) {
    case kTagRaw64:
      AppendRaw64(values, out);
      break;
    case kTagBitPack:
      AppendBitPack(values, s, out);
      break;
    case kTagDeltaPack:
      AppendDeltaPack(values, s, out);
      break;
    case kTagBitmap:
      AppendBitmap(values, s, out);
      break;
  }
}

Status ParseIndexList(std::string_view bytes, size_t* pos,
                      std::vector<int64_t>* out) {
  out->clear();
  if (*pos >= bytes.size()) return Truncated("tag");
  const uint8_t tag = static_cast<uint8_t>(bytes[(*pos)++]);
  uint64_t count = 0;
  FATS_RETURN_NOT_OK(ParseVarint(bytes, pos, &count));
  // Every encoding needs at least one payload bit per value (raw needs 8
  // bytes); a corrupt count cannot demand more memory than the blob holds.
  const uint64_t remaining = bytes.size() - *pos;
  switch (tag) {
    case kTagRaw64: {
      if (count > remaining / 8) return Truncated("raw64 payload");
      out->reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t u = 0;
        for (int b = 0; b < 8; ++b) {
          u |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[*pos + b]))
               << (8 * b);
        }
        *pos += 8;
        out->push_back(static_cast<int64_t>(u));
      }
      return Status::OK();
    }
    case kTagBitPack: {
      int64_t base = 0;
      FATS_RETURN_NOT_OK(ParseZigzag(bytes, pos, &base));
      if (*pos >= bytes.size()) return Truncated("bitpack width");
      const int width = static_cast<uint8_t>(bytes[(*pos)++]);
      if (width > 64) {
        return Status::IoError("history codec: bitpack width > 64");
      }
      const uint64_t need = (count * static_cast<uint64_t>(width) + 7) / 8;
      if (count > remaining * 8 || need > bytes.size() - *pos) {
        return Truncated("bitpack payload");
      }
      out->reserve(count);
      BitReader bits(bytes, *pos);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t u = 0;
        if (!bits.Get(width, &u)) return Truncated("bitpack payload");
        out->push_back(static_cast<int64_t>(static_cast<uint64_t>(base) + u));
      }
      *pos += need;
      return Status::OK();
    }
    case kTagDeltaPack: {
      int64_t first = 0;
      FATS_RETURN_NOT_OK(ParseZigzag(bytes, pos, &first));
      if (*pos >= bytes.size()) return Truncated("deltapack width");
      const int width = static_cast<uint8_t>(bytes[(*pos)++]);
      if (width > 64) {
        return Status::IoError("history codec: deltapack width > 64");
      }
      if (count == 0) return Status::OK();
      const uint64_t need =
          ((count - 1) * static_cast<uint64_t>(width) + 7) / 8;
      if (count - 1 > remaining * 8 || need > bytes.size() - *pos) {
        return Truncated("deltapack payload");
      }
      out->reserve(count);
      out->push_back(first);
      BitReader bits(bytes, *pos);
      uint64_t value = static_cast<uint64_t>(first);
      for (uint64_t i = 1; i < count; ++i) {
        uint64_t delta = 0;
        if (!bits.Get(width, &delta)) return Truncated("deltapack payload");
        value += delta;
        out->push_back(static_cast<int64_t>(value));
      }
      *pos += need;
      return Status::OK();
    }
    case kTagBitmap: {
      int64_t base = 0;
      FATS_RETURN_NOT_OK(ParseZigzag(bytes, pos, &base));
      uint64_t span = 0;
      FATS_RETURN_NOT_OK(ParseVarint(bytes, pos, &span));
      if (span > kMaxBitmapSpan) {
        return Status::IoError("history codec: bitmap span too large");
      }
      if (count > span) {
        return Status::IoError("history codec: bitmap popcount exceeds span");
      }
      const uint64_t need = (span + 7) / 8;
      if (need > bytes.size() - *pos) return Truncated("bitmap payload");
      out->reserve(count);
      for (uint64_t byte = 0; byte < need; ++byte) {
        const uint8_t b = static_cast<uint8_t>(bytes[*pos + byte]);
        if (b == 0) continue;
        for (int bit = 0; bit < 8; ++bit) {
          if ((b >> bit) & 1) {
            out->push_back(static_cast<int64_t>(static_cast<uint64_t>(base) +
                                                byte * 8 + bit));
          }
        }
      }
      *pos += need;
      if (out->size() != count) {
        return Status::IoError("history codec: bitmap popcount mismatch");
      }
      return Status::OK();
    }
    default:
      return Status::IoError("history codec: unknown tag " +
                             std::to_string(tag));
  }
}

std::string EncodeIndexList(const std::vector<int64_t>& values) {
  std::string out;
  AppendIndexList(values, &out);
  return out;
}

Status DecodeIndexList(std::string_view bytes, std::vector<int64_t>* out) {
  size_t pos = 0;
  FATS_RETURN_NOT_OK(ParseIndexList(bytes, &pos, out));
  if (pos != bytes.size()) {
    return Status::IoError("history codec: trailing bytes after index list");
  }
  return Status::OK();
}

}  // namespace fats::state
