// Tiered block storage for keyed training history.
//
// A HistoryLog stores records keyed by (k1, k2) — (iteration, client) for
// mini-batches and local models, (round, 0) for client selections — in
// blocks of `block_span` consecutive k1 values. Each block lives in one of
// three tiers:
//
//   kOpen            decoded std::map, accepts writes (the training head)
//   kSealedResident  one compressed blob (history_codec block format)
//   kSpilled         the same blob, written through the SegmentSpiller to
//                    an mmap-backed CRC-framed segment file
//
// Writes land in the open block for their k1; when the number of open
// blocks exceeds the budget the least-recently-written one is sealed, and
// when sealed-resident blobs exceed their budget the coldest (smallest k1)
// is spilled. Reads of sealed/spilled blocks decode into a small LRU cache
// of hot blocks. Every transition is lossless and deterministic — the codec
// is bit-specified — so a record reads back bitwise-identical whether its
// block is open, compressed, or reloaded from disk. That invariance is the
// contract FATS replay depends on (DESIGN.md §7.8).
//
// Substitution writes and truncation reopen cold blocks transparently;
// TruncateFrom releases whole-block spill refs so the spiller can reclaim
// segment files (truncate-and-retrain reuses, never leaks, spill space).
//
// Block blob format (self-delimiting, little-endian):
//   version:u8(1) n:varint
//   n × ( k1_delta:varint  — k1 minus previous record's k1 (first: minus
//                            the block's first k1), keys ascending
//         k2:zigzag-varint
//         payload           — Codec::Append/Parse, self-delimiting )
//
// Pointer stability: a pointer returned by Get() stays valid until the next
// mutating call, or until Get() of `decoded_cache_blocks` *other* blocks
// evicts its cache entry. All StateStore read patterns touch one block per
// iteration, so the default capacity keeps every such pointer stable.
//
// Not thread-safe; owned and serialized by the state store.

#ifndef FATS_STATE_HISTORY_LOG_H_
#define FATS_STATE_HISTORY_LOG_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "state/history_codec.h"
#include "state/segment_spill.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/status.h"

namespace fats::state {

struct HistoryLogOptions {
  /// Consecutive k1 values per block.
  int64_t block_span = 32;
  /// Decoded, writable blocks kept resident (the training head plus one
  /// reopened block for substitution writes).
  int64_t max_open_blocks = 2;
  /// Sealed blobs kept resident before spilling (ignored without a
  /// spiller: blobs then stay resident — "compressed only" mode).
  int64_t resident_sealed_blocks = 8;
  /// Decoded read-cache capacity, in blocks. Must cover the densest
  /// single-iteration read pattern; >= 2 enforced.
  int64_t decoded_cache_blocks = 4;
  /// Borrowed; nullptr disables spilling entirely.
  SegmentSpiller* spiller = nullptr;
};

/// Record payload codec for index lists (mini-batches, selections).
struct IndexListCodec {
  using Value = std::vector<int64_t>;
  static void Append(const Value& value, std::string* out) {
    AppendIndexList(value, out);
  }
  static Status Parse(std::string_view bytes, size_t* pos, Value* out) {
    return ParseIndexList(bytes, pos, out);
  }
  static int64_t ApproxBytes(const Value& value) {
    return 16 + static_cast<int64_t>(value.size()) * 8;
  }
};

/// Record payload codec for tensors (local models): varint rank and dims,
/// then raw float32 storage. Bitwise-lossless — floats are moved, never
/// re-quantized.
struct TensorBlobCodec {
  using Value = Tensor;
  static void Append(const Value& value, std::string* out);
  static Status Parse(std::string_view bytes, size_t* pos, Value* out);
  static int64_t ApproxBytes(const Value& value) {
    return 32 + value.size() * 4;
  }
};

namespace internal {
/// Failpoint crossings live in the .cc so the template header stays free of
/// macro instantiations; the site registers once per process.
void CrossDecodedEvictFailpoint();
}  // namespace internal

template <typename Codec>
class HistoryLog {
 public:
  using Value = typename Codec::Value;
  using Key = std::pair<int64_t, int64_t>;
  using Visitor = std::function<void(int64_t, int64_t, const Value&)>;

  explicit HistoryLog(HistoryLogOptions options = {}) : options_(options) {
    FATS_CHECK_GE(options_.block_span, 1);
    FATS_CHECK_GE(options_.max_open_blocks, 1);
    FATS_CHECK_GE(options_.resident_sealed_blocks, 0);
    options_.decoded_cache_blocks =
        options_.decoded_cache_blocks < 2 ? 2 : options_.decoded_cache_blocks;
  }

  HistoryLog(const HistoryLog&) = delete;
  HistoryLog& operator=(const HistoryLog&) = delete;

  ~HistoryLog() { Clear(); }

  /// Stores (replaces) the record at (k1, k2). Returns true when a record
  /// was replaced; the old value is then moved into *replaced when given.
  bool Save(int64_t k1, int64_t k2, Value value, Value* replaced = nullptr) {
    FATS_CHECK_GE(k1, 0);
    const int64_t bid = k1 / options_.block_span;
    Block& block = OpenBlockFor(bid);
    auto [it, inserted] = block.records.try_emplace(Key{k1, k2});
    const bool was_present = !inserted;
    if (was_present && replaced != nullptr) *replaced = std::move(it->second);
    it->second = std::move(value);
    if (inserted) {
      ++block.count;
      ++size_;
    }
    block.touch = ++tick_;
    EnforceBudgets(bid);
    return was_present;
  }

  /// nullptr when absent. See the header comment for pointer stability.
  const Value* Get(int64_t k1, int64_t k2) const {
    if (k1 < 0) return nullptr;
    const int64_t bid = k1 / options_.block_span;
    auto it = blocks_.find(bid);
    if (it == blocks_.end()) return nullptr;
    const Block& block = it->second;
    if (block.tier == Tier::kOpen) {
      auto rec = block.records.find(Key{k1, k2});
      return rec == block.records.end() ? nullptr : &rec->second;
    }
    const std::map<Key, Value>& decoded = DecodedFor(bid, block);
    auto rec = decoded.find(Key{k1, k2});
    return rec == decoded.end() ? nullptr : &rec->second;
  }

  /// Erases every record with k1 >= k1_from, invoking on_erase (may be
  /// empty) for each before it is dropped. Whole cold blocks release their
  /// spill refs; a straddling block is reopened and trimmed in place.
  void TruncateFrom(int64_t k1_from, const Visitor& on_erase) {
    FATS_CHECK_GE(k1_from, 0);
    const int64_t first_bid = k1_from / options_.block_span;
    for (auto it = blocks_.lower_bound(first_bid); it != blocks_.end();) {
      const int64_t bid = it->first;
      const int64_t block_first = bid * options_.block_span;
      if (block_first >= k1_from) {
        // Whole block discarded.
        if (on_erase) {
          VisitBlock(bid, it->second, on_erase);
        }
        size_ -= it->second.count;
        ReleaseBlockStorage(&it->second);
        decoded_.erase(bid);
        decoded_ticks_.erase(bid);
        it = blocks_.erase(it);
        continue;
      }
      // Straddling block: reopen and trim the tail.
      Block& block = OpenBlockFor(bid);
      for (auto rec = block.records.lower_bound(
               Key{k1_from, std::numeric_limits<int64_t>::min()});
           rec != block.records.end();) {
        if (on_erase) on_erase(rec->first.first, rec->first.second,
                               rec->second);
        rec = block.records.erase(rec);
        --block.count;
        --size_;
      }
      if (block.count == 0) {
        --open_count_;  // the reopened block is erased, not kept
        it = blocks_.erase(blocks_.find(bid));
      } else {
        it = std::next(blocks_.find(bid));
      }
    }
    EnforceBudgets(-1);
  }

  /// Visits every record in ascending (k1, k2) order. Cold blocks are
  /// decoded transiently; the read cache is left untouched.
  void ForEach(const Visitor& fn) const {
    for (const auto& [bid, block] : blocks_) {
      VisitBlock(bid, block, fn);
    }
  }

  /// Ascending (k1, k2) keys of every record.
  std::vector<Key> Keys() const {
    std::vector<Key> keys;
    keys.reserve(static_cast<size_t>(size_));
    ForEach([&keys](int64_t k1, int64_t k2, const Value& value) {
      (void)value;
      keys.emplace_back(k1, k2);
    });
    return keys;
  }

  void Clear() {
    for (auto& [bid, block] : blocks_) {
      (void)bid;
      ReleaseBlockStorage(&block);
    }
    blocks_.clear();
    decoded_.clear();
    decoded_ticks_.clear();
    size_ = 0;
    open_count_ = 0;
    sealed_count_ = 0;
    spilled_count_ = 0;
  }

  int64_t size() const { return size_; }

  /// Approximate resident bytes: decoded open blocks at record cost, sealed
  /// blobs at blob cost, plus the decoded read cache. Spilled payload bytes
  /// live in the spiller's accounting, not here.
  int64_t ApproxResidentBytes() const {
    int64_t bytes = 0;
    for (const auto& [bid, block] : blocks_) {
      (void)bid;
      if (block.tier == Tier::kOpen) {
        for (const auto& [key, value] : block.records) {
          (void)key;
          bytes += Codec::ApproxBytes(value);
        }
      } else if (block.tier == Tier::kSealedResident) {
        bytes += static_cast<int64_t>(block.blob.size());
      }
    }
    for (const auto& [bid, records] : decoded_) {
      (void)bid;
      for (const auto& [key, value] : records) {
        (void)key;
        bytes += Codec::ApproxBytes(value);
      }
    }
    return bytes;
  }

  int64_t num_open_blocks() const { return open_count_; }
  int64_t num_sealed_blocks() const { return sealed_count_; }
  int64_t num_spilled_blocks() const { return spilled_count_; }
  int64_t decoded_cache_size() const {
    return static_cast<int64_t>(decoded_.size());
  }
  /// Spill attempts that failed and left the block resident instead
  /// (spilling is an optimization; failure degrades, never corrupts).
  int64_t spill_errors() const { return spill_errors_; }

 private:
  enum class Tier { kOpen, kSealedResident, kSpilled };

  struct Block {
    Tier tier = Tier::kOpen;
    std::map<Key, Value> records;  // kOpen
    std::string blob;              // kSealedResident
    SegmentSpiller::BlockRef ref;  // kSpilled
    int64_t count = 0;
    uint64_t touch = 0;  // recency of the last write (open blocks)
  };

  static std::string EncodeBlock(const std::map<Key, Value>& records,
                                 int64_t block_first) {
    std::string blob;
    blob.push_back(static_cast<char>(1));  // block format version
    AppendVarint(records.size(), &blob);
    int64_t prev_k1 = block_first;
    for (const auto& [key, value] : records) {
      AppendVarint(static_cast<uint64_t>(key.first - prev_k1), &blob);
      prev_k1 = key.first;
      AppendZigzag(key.second, &blob);
      Codec::Append(value, &blob);
    }
    return blob;
  }

  static Status DecodeBlock(std::string_view blob, int64_t block_first,
                            std::map<Key, Value>* out) {
    out->clear();
    size_t pos = 0;
    if (blob.empty() || blob[0] != 1) {
      return Status::IoError("history block: bad format version");
    }
    pos = 1;
    uint64_t n = 0;
    FATS_RETURN_NOT_OK(ParseVarint(blob, &pos, &n));
    int64_t prev_k1 = block_first;
    auto hint = out->end();
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t delta = 0;
      FATS_RETURN_NOT_OK(ParseVarint(blob, &pos, &delta));
      const int64_t k1 = prev_k1 + static_cast<int64_t>(delta);
      prev_k1 = k1;
      int64_t k2 = 0;
      FATS_RETURN_NOT_OK(ParseZigzag(blob, &pos, &k2));
      Value value;
      FATS_RETURN_NOT_OK(Codec::Parse(blob, &pos, &value));
      hint = out->emplace_hint(hint, Key{k1, k2}, std::move(value));
    }
    if (pos != blob.size()) {
      return Status::IoError("history block: trailing bytes");
    }
    return Status::OK();
  }

  /// The block's records, decoding from blob or spill when cold. Used for
  /// transitions and transient enumeration.
  std::map<Key, Value> MaterializeRecords(int64_t bid,
                                          const Block& block) const {
    std::map<Key, Value> records;
    const int64_t block_first = bid * options_.block_span;
    switch (block.tier) {
      case Tier::kOpen:
        records = block.records;
        break;
      case Tier::kSealedResident:
        FATS_CHECK_OK(DecodeBlock(block.blob, block_first, &records));
        break;
      case Tier::kSpilled: {
        Result<std::string_view> payload = options_.spiller->Read(block.ref);
        FATS_CHECK_OK(payload.status());
        FATS_CHECK_OK(DecodeBlock(payload.value(), block_first, &records));
        break;
      }
    }
    FATS_CHECK_EQ(static_cast<int64_t>(records.size()), block.count);
    return records;
  }

  void VisitBlock(int64_t bid, const Block& block, const Visitor& fn) const {
    if (block.tier == Tier::kOpen) {
      for (const auto& [key, value] : block.records) {
        fn(key.first, key.second, value);
      }
      return;
    }
    const std::map<Key, Value> records = MaterializeRecords(bid, block);
    for (const auto& [key, value] : records) {
      fn(key.first, key.second, value);
    }
  }

  /// Frees the block's storage and removes it from its tier count. The
  /// caller either erases the block or re-registers it as open.
  void ReleaseBlockStorage(Block* block) {
    switch (block->tier) {
      case Tier::kOpen:
        --open_count_;
        break;
      case Tier::kSealedResident:
        --sealed_count_;
        break;
      case Tier::kSpilled:
        options_.spiller->Release(block->ref);
        --spilled_count_;
        break;
    }
    block->records.clear();
    block->blob.clear();
  }

  Block& OpenBlockFor(int64_t bid) {
    auto [it, inserted] = blocks_.try_emplace(bid);
    Block& block = it->second;
    if (inserted) {
      ++open_count_;
      return block;
    }
    if (block.tier == Tier::kOpen) return block;
    // Reopen a cold block for writes (substitution or truncation). The
    // decoded cache entry, if any, describes the sealed bytes we are about
    // to discard — drop it.
    std::map<Key, Value> records = MaterializeRecords(bid, block);
    ReleaseBlockStorage(&block);
    block.tier = Tier::kOpen;
    ++open_count_;
    block.records = std::move(records);
    block.touch = ++tick_;
    decoded_.erase(bid);
    decoded_ticks_.erase(bid);
    return block;
  }

  void SealBlock(int64_t bid, Block* block) {
    block->blob = EncodeBlock(block->records, bid * options_.block_span);
    block->records.clear();
    block->tier = Tier::kSealedResident;
    --open_count_;
    ++sealed_count_;
  }

  void SpillBlock(Block* block) {
    Result<SegmentSpiller::BlockRef> ref = options_.spiller->Write(block->blob);
    if (!ref.ok()) {
      ++spill_errors_;
      return;
    }
    block->ref = ref.value();
    block->blob.clear();
    block->blob.shrink_to_fit();
    block->tier = Tier::kSpilled;
    --sealed_count_;
    ++spilled_count_;
  }

  /// Seals least-recently-written open blocks past the open budget (never
  /// `protect_bid`), then spills the coldest sealed blobs past the resident
  /// budget. Called after every mutation.
  void EnforceBudgets(int64_t protect_bid) {
    while (open_count_ > options_.max_open_blocks) {
      int64_t victim = -1;
      uint64_t oldest = 0;
      for (const auto& [bid, block] : blocks_) {
        if (block.tier != Tier::kOpen || bid == protect_bid) continue;
        if (victim < 0 || block.touch < oldest) {
          victim = bid;
          oldest = block.touch;
        }
      }
      if (victim < 0) break;
      SealBlock(victim, &blocks_.at(victim));
    }
    if (options_.spiller == nullptr) return;
    while (sealed_count_ > options_.resident_sealed_blocks) {
      auto victim = blocks_.end();
      for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->second.tier == Tier::kSealedResident) {
          victim = it;  // smallest bid = coldest history
          break;
        }
      }
      if (victim == blocks_.end()) break;
      const int64_t before = spill_errors_;
      SpillBlock(&victim->second);
      if (spill_errors_ != before) break;  // degrade: stay resident
    }
  }

  /// Decoded view of a cold block through the LRU read cache.
  const std::map<Key, Value>& DecodedFor(int64_t bid,
                                         const Block& block) const {
    auto it = decoded_.find(bid);
    if (it == decoded_.end()) {
      while (static_cast<int64_t>(decoded_.size()) >=
             options_.decoded_cache_blocks) {
        auto victim = decoded_ticks_.begin();
        for (auto t = decoded_ticks_.begin(); t != decoded_ticks_.end(); ++t) {
          if (t->second < victim->second) victim = t;
        }
        internal::CrossDecodedEvictFailpoint();
        decoded_.erase(victim->first);
        decoded_ticks_.erase(victim);
      }
      it = decoded_.emplace(bid, MaterializeRecords(bid, block)).first;
    }
    decoded_ticks_[bid] = ++tick_;
    return it->second;
  }

  HistoryLogOptions options_;
  std::map<int64_t, Block> blocks_;
  int64_t size_ = 0;
  int64_t open_count_ = 0;
  int64_t sealed_count_ = 0;
  int64_t spilled_count_ = 0;
  int64_t spill_errors_ = 0;
  // Read-side decoded cache; mutated by const Gets, never observable in
  // record values (decode is bit-exact).
  mutable std::map<int64_t, std::map<Key, Value>> decoded_;
  mutable std::map<int64_t, uint64_t> decoded_ticks_;
  mutable uint64_t tick_ = 0;
};

using IndexHistoryLog = HistoryLog<IndexListCodec>;
using TensorHistoryLog = HistoryLog<TensorBlobCodec>;

}  // namespace fats::state

#endif  // FATS_STATE_HISTORY_LOG_H_
