#include "state/tree_aggregate.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace fats::state {
namespace {

// One level: groups of kAggregateFanIn consecutive inputs, each summed
// serially in ascending slot order into a task-owned accumulator. Group g
// writes only out[g]; no accumulator is shared across tasks.
std::vector<Tensor> ReduceLevel(const std::vector<Tensor>& level,
                                ThreadPool* pool) {
  const int64_t n = static_cast<int64_t>(level.size());
  const int64_t groups = (n + kAggregateFanIn - 1) / kAggregateFanIn;
  std::vector<Tensor> out(static_cast<size_t>(groups));
  auto reduce_group = [&](int64_t g, int64_t worker) {
    (void)worker;
    const int64_t begin = g * kAggregateFanIn;
    const int64_t end = std::min(n, begin + kAggregateFanIn);
    Tensor acc(level[static_cast<size_t>(begin)].shape());  // zero-initialized
    for (int64_t i = begin; i < end; ++i) {
      acc += level[static_cast<size_t>(i)];
    }
    out[static_cast<size_t>(g)] = std::move(acc);
  };
  if (pool != nullptr) {
    pool->ParallelFor(groups, reduce_group);
  } else {
    for (int64_t g = 0; g < groups; ++g) reduce_group(g, 0);
  }
  return out;
}

}  // namespace

Tensor TreeAggregate(const std::vector<Tensor>& inputs, ThreadPool* pool) {
  FATS_CHECK(!inputs.empty());
  std::vector<Tensor> level = ReduceLevel(inputs, pool);
  while (level.size() > 1) {
    level = ReduceLevel(level, pool);
  }
  return std::move(level[0]);
}

}  // namespace fats::state
