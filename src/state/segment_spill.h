// Cold history segments spilled to mmap-backed files.
//
// A SegmentSpiller turns sealed history blocks (opaque byte payloads from
// the block logs) into frames appended to segment files on disk, and maps
// them back on demand. Segment files reuse the journal's CRC-framed record
// format byte for byte:
//
//   file   := magic "FATSJRN1" version:u32(1) frame*
//   frame  := payload_len:u32 crc:u32(CRC-32 of payload, poly 0xEDB88320)
//             payload
//
// so a segment can be inspected with the same tooling as a journal. Unlike
// the journal, segments are a *process-ephemeral cache tier*: durability is
// owned by the journal/checkpoint protocol, and a store rebuilt from those
// re-spills its own cold blocks. Open() therefore sweeps every leftover
// `seg-*` file in the directory — the spill-dir mirror of the journal's
// orphan-tmp sweep — so a crash (or a truncate-and-retrain cycle) can never
// leak segment files or resurrect stale blocks.
//
// Lifecycle: Write() appends one frame and returns a BlockRef; Read() maps
// the owning file (mmap, with a buffered-read fallback) and returns a
// validated view of the payload; Release() drops the block's claim on its
// file, and a file whose live-block count reaches zero is unlinked as soon
// as it is no longer the append target. Reads validate the frame length and
// CRC on every access, so a corrupt segment is an error, never silent state.
//
// Thread-compatibility: not thread-safe; owned and serialized by the state
// store (all FATS store mutations happen on the driver thread).

#ifndef FATS_STATE_SEGMENT_SPILL_H_
#define FATS_STATE_SEGMENT_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "util/status.h"

namespace fats::state {

struct SegmentSpillerOptions {
  /// Directory for segment files; created if missing.
  std::string dir;
  /// A segment file is rotated once its size reaches this many bytes, so
  /// fully-released cold ranges become reclaimable file by file.
  int64_t segment_target_bytes = int64_t{1} << 20;
};

class SegmentSpiller {
 public:
  /// Location of one spilled block: owning segment file, byte offset of its
  /// frame header, and payload length.
  struct BlockRef {
    int64_t file_seq = -1;
    int64_t offset = 0;
    int64_t payload_bytes = 0;
  };

  explicit SegmentSpiller(SegmentSpillerOptions options);
  ~SegmentSpiller();

  SegmentSpiller(const SegmentSpiller&) = delete;
  SegmentSpiller& operator=(const SegmentSpiller&) = delete;

  /// Creates the directory if needed and sweeps every pre-existing `seg-*`
  /// file (orphans from a crash or an earlier store in the same dir).
  Status Open();

  /// Appends one CRC-framed payload, rotating files at the size target.
  /// The returned ref counts as one live block against its file.
  Result<BlockRef> Write(std::string_view payload);

  /// Maps the segment and returns a view of the payload after validating
  /// the frame. The view is valid until the owning file is unlinked (i.e.
  /// until every block in it is Release()d); callers decode immediately and
  /// never hold the view across Release/Write calls.
  Result<std::string_view> Read(const BlockRef& ref);

  /// Drops the block's claim on its file. When a file's live-block count
  /// reaches zero and it is not the current append target, the file is
  /// unlinked and its mapping dropped — truncate-and-retrain reuses the
  /// directory instead of leaking segments.
  void Release(const BlockRef& ref);

  /// Releases everything and deletes all segment files.
  void Clear();

  int64_t live_blocks() const { return live_blocks_; }
  int64_t live_payload_bytes() const { return live_payload_bytes_; }
  int64_t num_segment_files() const {
    return static_cast<int64_t>(files_.size());
  }
  /// Files removed because their live-block count reached zero (plus the
  /// orphans swept by Open); observability for the reuse-not-leak tests.
  int64_t files_reclaimed() const { return files_reclaimed_; }
  int64_t orphans_swept() const { return orphans_swept_; }
  const std::string& dir() const { return options_.dir; }

 private:
  struct Segment {
    std::string path;
    int64_t size_bytes = 0;   // written bytes (header + frames)
    int64_t live_blocks = 0;  // blocks written minus blocks released
    // Read-side mapping; remapped when the file grew past mapped_bytes.
    void* map = nullptr;
    int64_t mapped_bytes = 0;
  };

  std::string SegmentPath(int64_t seq) const;
  Status OpenAppendTarget();
  Status CloseAppendTarget();
  void DropMapping(Segment* seg);
  void ReclaimIfDead(int64_t seq);

  SegmentSpillerOptions options_;
  bool opened_ = false;
  std::map<int64_t, Segment> files_;
  int64_t next_seq_ = 0;
  int64_t append_seq_ = -1;  // -1 when no file is open for append
  std::FILE* append_file_ = nullptr;
  int64_t live_blocks_ = 0;
  int64_t live_payload_bytes_ = 0;
  int64_t files_reclaimed_ = 0;
  int64_t orphans_swept_ = 0;
};

}  // namespace fats::state

#endif  // FATS_STATE_SEGMENT_SPILL_H_
