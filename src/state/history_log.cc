#include "state/history_log.h"

#include <cstring>

#include "util/failpoint.h"

namespace fats::state {

void TensorBlobCodec::Append(const Value& value, std::string* out) {
  AppendVarint(static_cast<uint64_t>(value.rank()), out);
  for (int d = 0; d < value.rank(); ++d) {
    AppendVarint(static_cast<uint64_t>(value.dim(d)), out);
  }
  // Raw float32 storage: bitwise round-trip, no re-quantization. The frame
  // CRC (spill) and the journal protocol (durability) own integrity.
  const std::vector<float>& data = value.storage();
  const size_t begin = out->size();
  out->resize(begin + data.size() * sizeof(float));
  if (!data.empty()) {
    std::memcpy(&(*out)[begin], data.data(), data.size() * sizeof(float));
  }
}

Status TensorBlobCodec::Parse(std::string_view bytes, size_t* pos,
                              Value* out) {
  uint64_t rank = 0;
  FATS_RETURN_NOT_OK(ParseVarint(bytes, pos, &rank));
  if (rank > 8) return Status::IoError("tensor blob: implausible rank");
  std::vector<int64_t> shape;
  shape.reserve(rank);
  uint64_t volume = 1;
  for (uint64_t d = 0; d < rank; ++d) {
    uint64_t dim = 0;
    FATS_RETURN_NOT_OK(ParseVarint(bytes, pos, &dim));
    if (dim == 0 || volume * dim < volume ||
        volume * dim > (uint64_t{1} << 40)) {
      return Status::IoError("tensor blob: implausible shape");
    }
    volume *= dim;
    shape.push_back(static_cast<int64_t>(dim));
  }
  const uint64_t payload = (rank == 0 ? 0 : volume) * sizeof(float);
  if (payload > bytes.size() - *pos) {
    return Status::IoError("tensor blob: truncated payload");
  }
  if (rank == 0) {
    *out = Tensor();
    return Status::OK();
  }
  std::vector<float> data(volume);
  std::memcpy(data.data(), bytes.data() + *pos, payload);
  *pos += payload;
  *out = Tensor(std::move(shape), std::move(data));
  return Status::OK();
}

namespace internal {

void CrossDecodedEvictFailpoint() { FATS_FAILPOINT("state.block.evict"); }

}  // namespace internal
}  // namespace fats::state
