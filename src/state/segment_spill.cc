#include "state/segment_spill.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace fats::state {
namespace {

// The journal segment format, byte for byte (io/journal.h). Re-stated here
// because the state layer sits below io in the include layering.
constexpr char kMagic[8] = {'F', 'A', 'T', 'S', 'J', 'R', 'N', '1'};
constexpr uint32_t kVersion = 1;
constexpr int64_t kHeaderBytes = 12;  // magic + u32 version
constexpr char kSegmentPrefix[] = "seg-";

void PutU32(char* out, uint32_t value) {
  out[0] = static_cast<char>(value & 0xFF);
  out[1] = static_cast<char>((value >> 8) & 0xFF);
  out[2] = static_cast<char>((value >> 16) & 0xFF);
  out[3] = static_cast<char>((value >> 24) & 0xFF);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

}  // namespace

SegmentSpiller::SegmentSpiller(SegmentSpillerOptions options)
    : options_(std::move(options)) {
  FATS_CHECK(!options_.dir.empty());
  FATS_CHECK_GE(options_.segment_target_bytes, kHeaderBytes + 8);
}

SegmentSpiller::~SegmentSpiller() { Clear(); }

std::string SegmentSpiller::SegmentPath(int64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%08lld", kSegmentPrefix,
                static_cast<long long>(seq));
  return options_.dir + "/" + name;
}

Status SegmentSpiller::Open() {
  FATS_CHECK(!opened_);
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create spill dir: " + options_.dir);
  }
  // Orphan sweep: segments are a process-ephemeral cache tier, so anything
  // already in the directory belongs to a dead process (crash) or a store
  // that was truncated away — stale either way. Mirrors SweepOrphanTmp.
  ::DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return Status::IoError("cannot open spill dir: " + options_.dir);
  }
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(dir)) {
    if (std::strncmp(entry->d_name, kSegmentPrefix,
                     sizeof(kSegmentPrefix) - 1) == 0) {
      stale.push_back(options_.dir + "/" + entry->d_name);
    }
  }
  ::closedir(dir);
  for (const std::string& path : stale) {
    if (std::remove(path.c_str()) == 0) ++orphans_swept_;
  }
  opened_ = true;
  return Status::OK();
}

Status SegmentSpiller::OpenAppendTarget() {
  const int64_t seq = next_seq_++;
  const std::string path = SegmentPath(seq);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create segment: " + path);
  }
  char header[kHeaderBytes];
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + sizeof(kMagic), kVersion);
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    std::fclose(file);
    return Status::IoError("segment header write failed: " + path);
  }
  Segment seg;
  seg.path = path;
  seg.size_bytes = kHeaderBytes;
  files_.emplace(seq, std::move(seg));
  append_seq_ = seq;
  append_file_ = file;
  return Status::OK();
}

Status SegmentSpiller::CloseAppendTarget() {
  if (append_file_ == nullptr) return Status::OK();
  const int64_t seq = append_seq_;
  const bool ok = std::fclose(append_file_) == 0;
  append_file_ = nullptr;
  append_seq_ = -1;
  // A fully-released file could not be reclaimed while it was the append
  // target; it can now.
  ReclaimIfDead(seq);
  if (!ok) return Status::IoError("segment close failed");
  return Status::OK();
}

Result<SegmentSpiller::BlockRef> SegmentSpiller::Write(
    std::string_view payload) {
  if (!opened_) {
    return Status::FailedPrecondition("SegmentSpiller::Write before Open");
  }
  FATS_FAILPOINT_STATUS("state.spill.write");
  if (append_file_ != nullptr &&
      files_.at(append_seq_).size_bytes >= options_.segment_target_bytes) {
    FATS_RETURN_NOT_OK(CloseAppendTarget());
  }
  if (append_file_ == nullptr) {
    FATS_RETURN_NOT_OK(OpenAppendTarget());
  }
  Segment& seg = files_.at(append_seq_);
  char frame[8];
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame + 4, Crc32(payload.data(), payload.size()));
  if (std::fwrite(frame, 1, sizeof(frame), append_file_) != sizeof(frame) ||
      std::fwrite(payload.data(), 1, payload.size(), append_file_) !=
          payload.size() ||
      std::fflush(append_file_) != 0) {
    return Status::IoError("segment append failed: " + seg.path);
  }
  BlockRef ref;
  ref.file_seq = append_seq_;
  ref.offset = seg.size_bytes;
  ref.payload_bytes = static_cast<int64_t>(payload.size());
  seg.size_bytes += static_cast<int64_t>(sizeof(frame) + payload.size());
  ++seg.live_blocks;
  ++live_blocks_;
  live_payload_bytes_ += ref.payload_bytes;
  return ref;
}

void SegmentSpiller::DropMapping(Segment* seg) {
  if (seg->map != nullptr) {
    ::munmap(seg->map, static_cast<size_t>(seg->mapped_bytes));
    seg->map = nullptr;
    seg->mapped_bytes = 0;
  }
}

Result<std::string_view> SegmentSpiller::Read(const BlockRef& ref) {
  auto it = files_.find(ref.file_seq);
  if (it == files_.end()) {
    return Status::NotFound("segment not live: " + SegmentPath(ref.file_seq));
  }
  Segment& seg = it->second;
  const int64_t frame_end = ref.offset + 8 + ref.payload_bytes;
  if (ref.offset < kHeaderBytes || frame_end > seg.size_bytes) {
    return Status::OutOfRange("block ref outside segment: " + seg.path);
  }
  if (seg.map == nullptr || seg.mapped_bytes < frame_end) {
    // The append target buffers in user space; make the bytes visible to
    // the mapping before (re)mapping.
    if (ref.file_seq == append_seq_ && append_file_ != nullptr &&
        std::fflush(append_file_) != 0) {
      return Status::IoError("segment flush for read failed: " + seg.path);
    }
    DropMapping(&seg);
    const int fd = ::open(seg.path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open segment: " + seg.path);
    void* map = ::mmap(nullptr, static_cast<size_t>(seg.size_bytes), PROT_READ,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      return Status::IoError("mmap failed: " + seg.path);
    }
    seg.map = map;
    seg.mapped_bytes = seg.size_bytes;
  }
  const char* frame = static_cast<const char*>(seg.map) + ref.offset;
  const uint32_t stored_len = GetU32(frame);
  const uint32_t stored_crc = GetU32(frame + 4);
  if (stored_len != static_cast<uint32_t>(ref.payload_bytes)) {
    return Status::IoError("segment frame length mismatch: " + seg.path);
  }
  const char* payload = frame + 8;
  if (Crc32(payload, stored_len) != stored_crc) {
    return Status::IoError("segment frame CRC mismatch: " + seg.path);
  }
  return std::string_view(payload, stored_len);
}

void SegmentSpiller::ReclaimIfDead(int64_t seq) {
  auto it = files_.find(seq);
  if (it == files_.end()) return;
  if (it->second.live_blocks > 0 || seq == append_seq_) return;
  DropMapping(&it->second);
  std::remove(it->second.path.c_str());
  files_.erase(it);
  ++files_reclaimed_;
}

void SegmentSpiller::Release(const BlockRef& ref) {
  auto it = files_.find(ref.file_seq);
  FATS_CHECK(it != files_.end());
  FATS_CHECK_GE(it->second.live_blocks, 1);
  --it->second.live_blocks;
  --live_blocks_;
  live_payload_bytes_ -= ref.payload_bytes;
  ReclaimIfDead(ref.file_seq);
}

void SegmentSpiller::Clear() {
  if (append_file_ != nullptr) {
    std::fclose(append_file_);
    append_file_ = nullptr;
    append_seq_ = -1;
  }
  for (auto& [seq, seg] : files_) {
    (void)seq;
    DropMapping(&seg);
    std::remove(seg.path.c_str());
  }
  files_.clear();
  live_blocks_ = 0;
  live_payload_bytes_ = 0;
}

}  // namespace fats::state
