// Bit-specified, lossless codecs for the save(·) history of Algorithm 1.
//
// Every recorded mini-batch and client selection is a list of int64 sample /
// client indices. This codec turns such a list into a self-delimiting byte
// string and back, bit-for-bit: Decode(Encode(v)) == v for every input, and
// the encoded bytes are a pure function of the values (no pointers, no map
// order, no timestamps). That property is what lets the state layer keep
// history compressed — or spilled to disk — while replay stays bitwise-exact.
//
// Wire format (all integers little-endian):
//
//   encoding    := tag:u8 payload
//   tag 0 kRaw64        payload := count:varint values[count]:i64-fixed8
//   tag 1 kBitPack      payload := count:varint base:zigzag-varint width:u8
//                                  packed[ceil(count*width/8)]
//                       value[i] = base + bits(i)  (width-bit groups, LSB
//                       first within each byte, in index order)
//   tag 2 kDeltaPack    payload := count:varint first:zigzag-varint width:u8
//                                  packed[ceil((count-1)*width/8)]
//                       value[0] = first; value[i] = value[i-1] + bits(i-1).
//                       Only valid for non-decreasing sequences.
//   tag 3 kBitmap       payload := count:varint base:zigzag-varint
//                                  span:varint bitmap[ceil(span/8)]
//                       Values are the set bits: base + bit position. Only
//                       valid for strictly increasing sequences; count is
//                       the popcount, span = last - base + 1.
//
//   varint              LEB128 unsigned, 7 bits per byte, max 10 bytes.
//   zigzag(v)           (v << 1) ^ (v >> 63) — small magnitudes stay small.
//
// The encoder computes the exact size of every applicable encoding and picks
// the smallest; ties break toward the smaller tag. This choice is
// deterministic, so identical histories produce identical blobs (checkpoints
// of equal state are byte-identical). The decoder validates every length and
// width and returns a Status instead of reading out of bounds, so a corrupt
// or truncated blob is an error, never UB.

#ifndef FATS_STATE_HISTORY_CODEC_H_
#define FATS_STATE_HISTORY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fats::state {

// ----- primitive varint layer (exposed for the block formats) -----

void AppendVarint(uint64_t value, std::string* out);
void AppendZigzag(int64_t value, std::string* out);
/// Reads one varint at *pos, advancing it. OutOfRange on truncation or a
/// varint longer than 10 bytes.
Status ParseVarint(std::string_view bytes, size_t* pos, uint64_t* out);
Status ParseZigzag(std::string_view bytes, size_t* pos, int64_t* out);

// ----- index-list codec -----

/// Appends the smallest self-delimiting encoding of `values` to `out`.
void AppendIndexList(const std::vector<int64_t>& values, std::string* out);

/// Parses one encoded list at *pos, advancing it past the encoding.
/// OutOfRange / DataLoss-style IoError on truncation, unknown tag, or an
/// invalid width; never reads past bytes.size().
Status ParseIndexList(std::string_view bytes, size_t* pos,
                      std::vector<int64_t>* out);

/// Whole-buffer conveniences. DecodeIndexList also rejects trailing bytes.
std::string EncodeIndexList(const std::vector<int64_t>& values);
Status DecodeIndexList(std::string_view bytes, std::vector<int64_t>* out);

}  // namespace fats::state

#endif  // FATS_STATE_HISTORY_CODEC_H_
