// Federated partitioning strategies.
//
// Two uses:
//   * LDA class-proportion draws (Hsu et al., the paper's simulated
//     federated setting): each client's label distribution is a Dirichlet(β)
//     draw; smaller β = more heterogeneity.
//   * Index partitioners that split a centrally generated dataset across M
//     clients (IID or label-Dirichlet), used by tests and ablations.

#ifndef FATS_DATA_PARTITION_H_
#define FATS_DATA_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "rng/rng_stream.h"

namespace fats {

/// Draws per-client class proportions p_k ~ Dir(beta * 1) for M clients.
/// Returns an (M x num_classes) row-stochastic matrix.
std::vector<std::vector<double>> DrawLdaClassProportions(int64_t num_clients,
                                                         int64_t num_classes,
                                                         double beta,
                                                         uint64_t seed);

/// Row `client` of DrawLdaClassProportions(M, ...), computed alone. Each
/// client's draw comes from its own keyed stream, so this is bitwise
/// identical to the full-matrix row at O(1) cost in M — the hook lazy
/// (generated-on-demand) federated datasets use to avoid an O(M) prologue.
std::vector<double> DrawLdaClassProportionsFor(int64_t client,
                                               int64_t num_classes,
                                               double beta, uint64_t seed);

/// Deals indices {0..n-1} to `num_clients` round-robin after a uniform
/// shuffle (IID partition). Client sizes differ by at most one.
std::vector<std::vector<int64_t>> PartitionIid(int64_t n, int64_t num_clients,
                                               uint64_t seed);

/// Label-based Dirichlet partition (LDA): for each class, splits its
/// examples across clients proportionally to a Dir(beta) draw.
std::vector<std::vector<int64_t>> PartitionDirichlet(
    const std::vector<int64_t>& labels, int64_t num_classes,
    int64_t num_clients, double beta, uint64_t seed);

/// Heterogeneity summary: mean total-variation distance between each
/// client's empirical label histogram and the global histogram. 0 = IID.
double PartitionHeterogeneity(const std::vector<std::vector<int64_t>>& parts,
                              const std::vector<int64_t>& labels,
                              int64_t num_classes);

}  // namespace fats

#endif  // FATS_DATA_PARTITION_H_
