#include "data/synthetic_text.h"

#include "rng/sampling.h"
#include "util/logging.h"

namespace fats {

SyntheticTextGenerator::SyntheticTextGenerator(
    const SyntheticTextConfig& config)
    : config_(config) {
  FATS_CHECK_GT(config_.vocab_size, 1);
  FATS_CHECK_GT(config_.seq_len, 0);
  FATS_CHECK(config_.heterogeneity >= 0.0 && config_.heterogeneity <= 1.0);
  base_chain_ = MakeChain(/*chain_id=*/StreamId::kNoClient);
}

std::vector<double> SyntheticTextGenerator::MakeChain(uint64_t chain_id) const {
  const int64_t v = config_.vocab_size;
  StreamId id;
  id.purpose = RngPurpose::kDataGeneration;
  id.client = chain_id;
  id.iteration = 2;  // chain sub-stream (distinct from sample streams)
  RngStream rng(config_.seed, id);
  std::vector<double> chain(static_cast<size_t>(v * v));
  std::vector<double> alpha(static_cast<size_t>(v),
                            config_.transition_concentration);
  for (int64_t row = 0; row < v; ++row) {
    std::vector<double> p = SampleDirichlet(alpha, &rng);
    for (int64_t col = 0; col < v; ++col) {
      chain[static_cast<size_t>(row * v + col)] = p[static_cast<size_t>(col)];
    }
  }
  return chain;
}

std::vector<double> SyntheticTextGenerator::TransitionRow(
    int64_t client, int64_t current) const {
  const int64_t v = config_.vocab_size;
  FATS_CHECK(current >= 0 && current < v);
  std::vector<double> row(static_cast<size_t>(v));
  if (client < 0 || config_.heterogeneity == 0.0) {
    for (int64_t c = 0; c < v; ++c) {
      row[static_cast<size_t>(c)] = base_chain_[static_cast<size_t>(
          current * v + c)];
    }
    return row;
  }
  std::vector<double> own = MakeChain(static_cast<uint64_t>(client));
  const double h = config_.heterogeneity;
  for (int64_t c = 0; c < v; ++c) {
    row[static_cast<size_t>(c)] =
        (1.0 - h) * base_chain_[static_cast<size_t>(current * v + c)] +
        h * own[static_cast<size_t>(current * v + c)];
  }
  return row;
}

InMemoryDataset SyntheticTextGenerator::Generate(
    int64_t n, int64_t client, uint64_t sample_stream_seed) const {
  FATS_CHECK_GE(n, 0);
  if (n == 0) return InMemoryDataset();
  const int64_t v = config_.vocab_size;
  const int64_t seq = config_.seq_len;

  // Materialize the client's effective chain once.
  std::vector<double> chain(static_cast<size_t>(v * v));
  if (client < 0 || config_.heterogeneity == 0.0) {
    chain = base_chain_;
  } else {
    std::vector<double> own = MakeChain(static_cast<uint64_t>(client));
    const double h = config_.heterogeneity;
    for (size_t i = 0; i < chain.size(); ++i) {
      chain[i] = (1.0 - h) * base_chain_[i] + h * own[i];
    }
  }

  StreamId id;
  id.purpose = RngPurpose::kDataGeneration;
  id.generation = sample_stream_seed;
  id.client =
      client >= 0 ? static_cast<uint64_t>(client) : StreamId::kNoClient;
  id.iteration = 3;  // sample sub-stream
  RngStream rng(config_.seed, id);

  Tensor features({n, seq});
  std::vector<int64_t> labels;
  labels.reserve(static_cast<size_t>(n));
  std::vector<double> row(static_cast<size_t>(v));
  for (int64_t i = 0; i < n; ++i) {
    int64_t current = static_cast<int64_t>(rng.UniformInt(v));
    float* dst = features.data() + i * seq;
    for (int64_t t = 0; t < seq; ++t) {
      dst[t] = static_cast<float>(current);
      for (int64_t c = 0; c < v; ++c) {
        row[static_cast<size_t>(c)] =
            chain[static_cast<size_t>(current * v + c)];
      }
      current = SampleCategorical(row, &rng);
    }
    labels.push_back(current);  // next char after the window
  }
  return InMemoryDataset(std::move(features), std::move(labels), v);
}

}  // namespace fats
