// Synthetic image-classification data: Gaussian class-prototype clusters.
//
// Substitutes for MNIST / Fashion-MNIST / CIFAR-10 / CIFAR-100 / FEMNIST
// (see DESIGN.md §2). Each class c has a prototype vector mu_c ~ N(0, s^2 I);
// an example of class c is mu_c + N(0, noise^2 I). The Bayes error is
// controlled by the margin s/noise, so accuracy curves show the same
// rise-and-plateau dynamics as the real corpora.
//
// A per-client "style" transform (used for the FEMNIST-like natural
// partition) warps the prototypes per client, reproducing the writer-level
// distribution shift that makes LEAF datasets non-IID.

#ifndef FATS_DATA_SYNTHETIC_IMAGE_H_
#define FATS_DATA_SYNTHETIC_IMAGE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "rng/rng_stream.h"

namespace fats {

struct SyntheticImageConfig {
  int64_t num_classes = 10;
  int64_t feature_dim = 32;     // flattened C*H*W
  double prototype_scale = 1.0; // stddev of class prototypes
  double noise_stddev = 0.6;    // within-class noise
  /// Strength of the per-client style warp (0 = no warp). Applied as a
  /// client-specific random shift + coordinate rescale of the prototypes.
  double style_strength = 0.0;
  uint64_t seed = 1;            // seeds the prototype draw
};

/// Generates synthetic image-like data.
class SyntheticImageGenerator {
 public:
  explicit SyntheticImageGenerator(const SyntheticImageConfig& config);

  /// `n` examples with class proportions `class_probs` (length num_classes;
  /// pass empty for uniform). `style_client` selects the client style warp
  /// (ignored when style_strength == 0). `sample_stream_seed` addresses the
  /// example-level randomness so different calls are independent.
  InMemoryDataset Generate(int64_t n,
                           const std::vector<double>& class_probs,
                           int64_t style_client,
                           uint64_t sample_stream_seed) const;

  const SyntheticImageConfig& config() const { return config_; }

  /// The prototype of class `c` after the style warp of `style_client`
  /// (style_client < 0 means no warp). Exposed for tests.
  std::vector<float> StyledPrototype(int64_t c, int64_t style_client) const;

 private:
  SyntheticImageConfig config_;
  std::vector<float> prototypes_;  // (num_classes x feature_dim)
};

}  // namespace fats

#endif  // FATS_DATA_SYNTHETIC_IMAGE_H_
