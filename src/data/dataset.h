// In-memory dataset representation.
//
// Examples are stored column-batched: a (n x d) feature tensor plus a label
// vector. Mini-batches are gathered by index, which is the operation the
// FATS sampling layer performs (it samples *indices*; the identity of an
// index is what the unlearning algorithms track).

#ifndef FATS_DATA_DATASET_H_
#define FATS_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fats {

/// A materialized mini-batch ready for Model::ComputeLossAndGradients.
struct Batch {
  Tensor inputs;                // (batch x features)
  std::vector<int64_t> labels;  // length batch

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

/// A fixed-size labeled dataset held in memory.
class InMemoryDataset {
 public:
  InMemoryDataset() = default;

  /// `features` is (n x d); `labels` has length n with values in
  /// [0, num_classes).
  InMemoryDataset(Tensor features, std::vector<int64_t> labels,
                  int64_t num_classes);

  int64_t size() const { return static_cast<int64_t>(labels_.size()); }
  int64_t feature_dim() const {
    return features_.rank() == 2 ? features_.dim(1) : 0;
  }
  int64_t num_classes() const { return num_classes_; }

  const Tensor& features() const { return features_; }
  const std::vector<int64_t>& labels() const { return labels_; }
  int64_t label(int64_t i) const { return labels_[static_cast<size_t>(i)]; }

  /// Gathers rows `indices` into a batch. Indices must be in [0, size()).
  Batch GatherBatch(const std::vector<int64_t>& indices) const;

  /// The whole dataset as one batch.
  Batch AsBatch() const;

  /// Appends all rows of `other` (same feature dim and class count).
  void Append(const InMemoryDataset& other);

  std::string ToString() const;

 private:
  Tensor features_;
  std::vector<int64_t> labels_;
  int64_t num_classes_ = 0;
};

}  // namespace fats

#endif  // FATS_DATA_DATASET_H_
