// Dataset / hyperparameter profiles.
//
// `PaperTable2Profiles()` encodes Table 2 of the paper verbatim (full-scale
// numbers, for documentation and for printing the table). `ScaledProfile()`
// returns the runnable scaled-down equivalents used by the bench harness:
// same structure (simulated-LDA vs natural vs text), same stability ratios
// ρ_S / ρ_C as the paper's settings, sized for a single CPU core.

#ifndef FATS_DATA_PAPER_CONFIGS_H_
#define FATS_DATA_PAPER_CONFIGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/federated_dataset.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "nn/model_zoo.h"
#include "util/status.h"

namespace fats {

enum class TaskKind {
  kImageSimulated,  // central corpus + LDA partition (MNIST-like)
  kImageNatural,    // per-client style warp (FEMNIST-like)
  kText,            // per-client Markov chains (Shakespeare-like)
};

/// One row of Table 2, plus the generator and model wiring this repo needs.
struct DatasetProfile {
  std::string name;        // profile key, e.g. "mnist"
  std::string paper_name;  // display name used by the paper
  TaskKind task = TaskKind::kImageSimulated;

  // Federated shape (Table 2 columns).
  int64_t clients_m = 0;           // M
  int64_t samples_per_client_n = 0;  // N
  int64_t clients_per_round_k = 0;   // K
  int64_t rounds_r = 0;              // R
  int64_t local_iters_e = 0;         // E
  int64_t batch_b = 0;               // b
  double learning_rate = 0.01;
  double dirichlet_beta = 0.5;  // LDA β (simulated image tasks)
  int64_t test_size = 512;
  /// Simulated image tasks only. false (default): each client draws exactly
  /// N samples with Dirichlet-skewed class proportions (equal shards, the
  /// shape the FATS b-derivation assumes). true: generate one central
  /// corpus of M·N samples and split it by label-Dirichlet partition
  /// (Hsu et al.), the paper's literal pipeline — shard sizes then vary
  /// and FATS clamps per-client batches to the active count.
  bool central_lda_partition = false;

  SyntheticImageConfig image;
  SyntheticTextConfig text;
  ModelSpec model;

  int64_t total_iters_t() const { return rounds_r * local_iters_e; }
  /// ρ_C = K·T / (E·M) (§6.2.2).
  double rho_c() const;
  /// ρ_S = b·K·T / (M·N) (§6.2.2).
  double rho_s() const;

  std::string ToString() const;
};

/// The six rows of Table 2 at full scale (not sized to run here; printed by
/// the benches for reference).
std::vector<DatasetProfile> PaperTable2Profiles();

/// Names of the runnable scaled profiles, in Table 2 order:
/// mnist, fashion, cifar10, cifar100, femnist, shakespeare.
std::vector<std::string> ScaledProfileNames();

/// Returns the runnable scaled profile for `name` (see ScaledProfileNames).
Result<DatasetProfile> ScaledProfile(const std::string& name);

/// Materializes the federated dataset for a profile. Deterministic in
/// (profile, seed).
FederatedDataset BuildFederatedData(const DatasetProfile& profile,
                                    uint64_t seed);

/// Lazy-mode equivalent of BuildFederatedData: client shards are generated
/// on demand (bitwise identical to the eager build's shards) and only
/// `options.shard_cache_capacity` of them are resident at once, so memory
/// scales with clients *touched per round*, not with M. Not available for
/// central_lda_partition profiles — that pipeline needs the whole corpus to
/// partition (CHECK-fails).
FederatedDataset BuildLazyFederatedData(const DatasetProfile& profile,
                                        uint64_t seed,
                                        LazyDatasetOptions options = {});

/// Draws `n` fresh examples from client `client`'s local distribution for
/// the (profile, seed) workload, disjoint from the training draw (distinct
/// sample stream). Used as the non-member pool of the membership-inference
/// evaluation: it matches the member pool's distribution exactly, so the
/// attack can only succeed through genuine memorization.
InMemoryDataset GenerateClientHoldout(const DatasetProfile& profile,
                                      uint64_t seed, int64_t client,
                                      int64_t n);

}  // namespace fats

#endif  // FATS_DATA_PAPER_CONFIGS_H_
