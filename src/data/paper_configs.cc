#include "data/paper_configs.h"

#include "data/partition.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fats {

double DatasetProfile::rho_c() const {
  return static_cast<double>(clients_per_round_k) * total_iters_t() /
         (static_cast<double>(local_iters_e) * clients_m);
}

double DatasetProfile::rho_s() const {
  return static_cast<double>(batch_b) * clients_per_round_k *
         total_iters_t() /
         (static_cast<double>(clients_m) * samples_per_client_n);
}

std::string DatasetProfile::ToString() const {
  return StrFormat(
      "%s (%s): M=%lld N=%lld K=%lld R=%lld E=%lld b=%lld lr=%.3f "
      "rho_s=%.3f rho_c=%.3f",
      name.c_str(), paper_name.c_str(), (long long)clients_m,
      (long long)samples_per_client_n, (long long)clients_per_round_k,
      (long long)rounds_r, (long long)local_iters_e, (long long)batch_b,
      learning_rate, rho_s(), rho_c());
}

std::vector<DatasetProfile> PaperTable2Profiles() {
  // Table 2 of the paper. N is total samples / M. Model column is recorded
  // in paper_name for reference; these profiles are not sized to run here.
  std::vector<DatasetProfile> out;
  auto add = [&out](const char* name, const char* paper, int64_t samples,
                    int64_t m, int64_t k, int64_t r, int64_t e, int64_t b) {
    DatasetProfile p;
    p.name = name;
    p.paper_name = paper;
    p.clients_m = m;
    p.samples_per_client_n = samples / m;
    p.clients_per_round_k = k;
    p.rounds_r = r;
    p.local_iters_e = e;
    p.batch_b = b;
    out.push_back(p);
  };
  add("mnist", "MNIST (CNN)", 60000, 300, 5, 30, 10, 10);
  add("fashion", "FashionM (CNN)", 60000, 300, 5, 50, 10, 10);
  add("cifar10", "Cifar-10 (VGG16)", 60000, 600, 5, 50, 10, 10);
  add("cifar100", "Cifar-100 (VGG16)", 60000, 600, 10, 50, 10, 10);
  add("femnist", "FEMNIST (CNN)", 811586, 3556, 5, 350, 20, 10);
  add("shakespeare", "Shakes (LSTM)", 3678451, 660, 20, 30, 100, 60);
  return out;
}

std::vector<std::string> ScaledProfileNames() {
  return {"mnist", "fashion", "cifar10", "cifar100", "femnist",
          "shakespeare"};
}

namespace {

DatasetProfile MakeScaledImageSimulated(const std::string& name,
                                        const std::string& paper_name,
                                        int64_t classes, int64_t dim,
                                        double noise, int64_t rounds,
                                        int64_t k, ModelKind model_kind) {
  DatasetProfile p;
  p.name = name;
  p.paper_name = paper_name;
  p.task = TaskKind::kImageSimulated;
  p.clients_m = 60;
  p.samples_per_client_n = 40;
  p.clients_per_round_k = k;
  p.rounds_r = rounds;
  p.local_iters_e = 5;
  p.batch_b = 4;
  p.learning_rate = 0.08;
  p.dirichlet_beta = 0.5;
  p.test_size = 480;
  p.image.num_classes = classes;
  p.image.feature_dim = dim;
  p.image.noise_stddev = noise;
  p.image.seed = 11;
  p.model.num_classes = classes;
  p.model.kind = model_kind;
  if (model_kind == ModelKind::kSmallCnn) {
    // dim must be a square times channels; we use 1 x sqrt(dim) x sqrt(dim).
    int64_t side = 1;
    while ((side + 1) * (side + 1) <= dim) ++side;
    FATS_CHECK_EQ(side * side, dim) << "CNN profile dim must be square";
    p.model.image_channels = 1;
    p.model.image_height = side;
    p.model.image_width = side;
    p.model.conv_channels = 6;
    p.model.kernel_size = 3;
  } else {
    p.model.input_dim = dim;
    p.model.hidden_dims = {48};
  }
  return p;
}

}  // namespace

Result<DatasetProfile> ScaledProfile(const std::string& name) {
  if (name == "mnist") {
    // ρ_C = 2·75/(5·60) = 0.5 ; ρ_S = 4·2·75/(60·40) = 0.25 (paper: 0.5/0.25).
    return MakeScaledImageSimulated("mnist", "MNIST (CNN)", /*classes=*/10,
                                    /*dim=*/64, /*noise=*/0.9, /*rounds=*/15,
                                    /*k=*/2, ModelKind::kSmallCnn);
  }
  if (name == "fashion") {
    DatasetProfile p = MakeScaledImageSimulated(
        "fashion", "FashionM (CNN)", /*classes=*/10, /*dim=*/64,
        /*noise=*/1.2, /*rounds=*/20, /*k=*/2, ModelKind::kSmallCnn);
    p.clients_m = 80;  // ρ_C = 2·100/(5·80) = 0.5
    p.image.seed = 12;
    return p;
  }
  if (name == "cifar10") {
    DatasetProfile p = MakeScaledImageSimulated(
        "cifar10", "Cifar-10 (VGG16->MLP)", /*classes=*/10, /*dim=*/48,
        /*noise=*/1.4, /*rounds=*/20, /*k=*/2, ModelKind::kMlp);
    p.clients_m = 80;
    p.image.seed = 13;
    return p;
  }
  if (name == "cifar100") {
    DatasetProfile p = MakeScaledImageSimulated(
        "cifar100", "Cifar-100 (VGG16->MLP)", /*classes=*/20, /*dim=*/48,
        /*noise=*/1.2, /*rounds=*/20, /*k=*/4, ModelKind::kMlp);
    p.clients_m = 160;  // ρ_C = 4·100/(5·160) = 0.5
    p.samples_per_client_n = 30;
    p.model.hidden_dims = {64};
    p.image.seed = 14;
    return p;
  }
  if (name == "femnist") {
    DatasetProfile p;
    p.name = "femnist";
    p.paper_name = "FEMNIST (CNN)";
    p.task = TaskKind::kImageNatural;
    p.clients_m = 100;
    p.samples_per_client_n = 30;
    p.clients_per_round_k = 2;
    p.rounds_r = 25;
    p.local_iters_e = 8;
    p.batch_b = 2;  // ρ_S = 2·2·200/(100·30) ≈ 0.267 ; ρ_C = 0.5
    p.learning_rate = 0.08;
    p.test_size = 400;
    p.image.num_classes = 16;
    p.image.feature_dim = 64;
    p.image.noise_stddev = 0.8;
    p.image.style_strength = 0.4;
    p.image.seed = 15;
    p.model.kind = ModelKind::kSmallCnn;
    p.model.num_classes = 16;
    p.model.image_channels = 1;
    p.model.image_height = 8;
    p.model.image_width = 8;
    p.model.conv_channels = 6;
    p.model.kernel_size = 3;
    return p;
  }
  if (name == "shakespeare") {
    DatasetProfile p;
    p.name = "shakespeare";
    p.paper_name = "Shakes (LSTM)";
    p.task = TaskKind::kText;
    p.clients_m = 60;
    p.samples_per_client_n = 50;
    p.clients_per_round_k = 4;
    p.rounds_r = 10;
    p.local_iters_e = 10;
    p.batch_b = 3;  // ρ_S = 3·4·100/(60·50) = 0.4 ; ρ_C = 4·100/(10·60) ≈ 0.67
    p.learning_rate = 1.5;  // LSTMs want large rates here, as in the paper
    p.test_size = 400;
    p.text.vocab_size = 24;
    p.text.seq_len = 10;
    p.text.transition_concentration = 0.05;  // strongly predictable chains
    p.text.heterogeneity = 0.4;
    p.text.seed = 16;
    p.model.kind = ModelKind::kCharLstm;
    p.model.num_classes = 24;
    p.model.vocab_size = 24;
    p.model.embed_dim = 8;
    p.model.lstm_hidden = 32;
    p.model.seq_len = 10;
    return p;
  }
  return Status::NotFound("unknown scaled profile: " + name);
}

InMemoryDataset GenerateClientHoldout(const DatasetProfile& profile,
                                      uint64_t seed, int64_t client,
                                      int64_t n) {
  // Mirrors BuildFederatedData's per-task seeding, with a sample stream
  // offset far away from both the training (k + 1000) and test (k + 2000000)
  // streams.
  const uint64_t holdout_stream = static_cast<uint64_t>(client) + 3000000;
  switch (profile.task) {
    case TaskKind::kImageSimulated: {
      SyntheticImageConfig cfg = profile.image;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      SyntheticImageGenerator gen(cfg);
      std::vector<std::vector<double>> proportions = DrawLdaClassProportions(
          profile.clients_m, cfg.num_classes, profile.dirichlet_beta,
          cfg.seed + 1);
      return gen.Generate(n, proportions[static_cast<size_t>(client)],
                          /*style_client=*/-1, holdout_stream);
    }
    case TaskKind::kImageNatural: {
      SyntheticImageConfig cfg = profile.image;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      SyntheticImageGenerator gen(cfg);
      std::vector<std::vector<double>> proportions = DrawLdaClassProportions(
          profile.clients_m, cfg.num_classes, /*beta=*/2.0, cfg.seed + 1);
      return gen.Generate(n, proportions[static_cast<size_t>(client)],
                          /*style_client=*/client, holdout_stream);
    }
    case TaskKind::kText: {
      SyntheticTextConfig cfg = profile.text;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      SyntheticTextGenerator gen(cfg);
      return gen.Generate(n, client, holdout_stream);
    }
  }
  return InMemoryDataset();
}

FederatedDataset BuildFederatedData(const DatasetProfile& profile,
                                    uint64_t seed) {
  const int64_t m = profile.clients_m;
  const int64_t n = profile.samples_per_client_n;
  std::vector<InMemoryDataset> shards;
  shards.reserve(static_cast<size_t>(m));
  InMemoryDataset test;

  switch (profile.task) {
    case TaskKind::kImageSimulated: {
      SyntheticImageConfig cfg = profile.image;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      SyntheticImageGenerator gen(cfg);
      if (profile.central_lda_partition) {
        // The paper's literal pipeline: one corpus, label-Dirichlet split.
        InMemoryDataset corpus =
            gen.Generate(m * n, /*class_probs=*/{}, /*style_client=*/-1,
                         /*sample_stream_seed=*/500);
        std::vector<std::vector<int64_t>> parts = PartitionDirichlet(
            corpus.labels(), cfg.num_classes, m, profile.dirichlet_beta,
            cfg.seed + 1);
        for (int64_t k = 0; k < m; ++k) {
          std::vector<int64_t>& part = parts[static_cast<size_t>(k)];
          if (part.empty()) {
            // Give empty shards one sample so every client can train.
            part.push_back(k % corpus.size());
          }
          Batch shard = corpus.GatherBatch(part);
          shards.emplace_back(std::move(shard.inputs),
                              std::move(shard.labels), cfg.num_classes);
        }
      } else {
        std::vector<std::vector<double>> proportions =
            DrawLdaClassProportions(m, cfg.num_classes,
                                    profile.dirichlet_beta, cfg.seed + 1);
        for (int64_t k = 0; k < m; ++k) {
          shards.push_back(
              gen.Generate(n, proportions[static_cast<size_t>(k)],
                           /*style_client=*/-1,
                           /*sample_stream_seed=*/
                           static_cast<uint64_t>(k) + 1000));
        }
      }
      test = gen.Generate(profile.test_size, /*class_probs=*/{},
                          /*style_client=*/-1, /*sample_stream_seed=*/1);
      break;
    }
    case TaskKind::kImageNatural: {
      SyntheticImageConfig cfg = profile.image;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      SyntheticImageGenerator gen(cfg);
      // Each client has its own style warp and a mildly skewed class mix.
      std::vector<std::vector<double>> proportions = DrawLdaClassProportions(
          m, cfg.num_classes, /*beta=*/2.0, cfg.seed + 1);
      for (int64_t k = 0; k < m; ++k) {
        shards.push_back(gen.Generate(n, proportions[static_cast<size_t>(k)],
                                      /*style_client=*/k,
                                      static_cast<uint64_t>(k) + 1000));
      }
      // LEAF-style: the test set is a mixture of held-out per-client shards.
      const int64_t test_clients = std::min<int64_t>(m, 40);
      const int64_t per_client =
          std::max<int64_t>(1, profile.test_size / test_clients);
      for (int64_t k = 0; k < test_clients; ++k) {
        test.Append(gen.Generate(per_client,
                                 proportions[static_cast<size_t>(k)], k,
                                 static_cast<uint64_t>(k) + 2000000));
      }
      break;
    }
    case TaskKind::kText: {
      SyntheticTextConfig cfg = profile.text;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      SyntheticTextGenerator gen(cfg);
      for (int64_t k = 0; k < m; ++k) {
        shards.push_back(
            gen.Generate(n, k, static_cast<uint64_t>(k) + 1000));
      }
      const int64_t test_clients = std::min<int64_t>(m, 40);
      const int64_t per_client =
          std::max<int64_t>(1, profile.test_size / test_clients);
      for (int64_t k = 0; k < test_clients; ++k) {
        test.Append(
            gen.Generate(per_client, k, static_cast<uint64_t>(k) + 2000000));
      }
      break;
    }
  }
  return FederatedDataset(std::move(shards), std::move(test));
}

FederatedDataset BuildLazyFederatedData(const DatasetProfile& profile,
                                        uint64_t seed,
                                        LazyDatasetOptions options) {
  FATS_CHECK(!profile.central_lda_partition)
      << "central-LDA partition needs the whole corpus at once; "
         "use BuildFederatedData for profile "
      << profile.name;
  const int64_t m = profile.clients_m;
  const int64_t n = profile.samples_per_client_n;
  InMemoryDataset test;
  FederatedDataset::ShardGenerator generator;

  // Each branch captures the derived config by value and regenerates client
  // k's shard exactly as the corresponding BuildFederatedData loop body
  // does: the generator object is deterministic in its config, per-client
  // LDA proportions come from per-client keyed streams, and the sample
  // stream seed is a pure function of k. Lazy shards are therefore bitwise
  // identical to the eager build's.
  switch (profile.task) {
    case TaskKind::kImageSimulated: {
      SyntheticImageConfig cfg = profile.image;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      const double beta = profile.dirichlet_beta;
      generator = [cfg, n, beta](int64_t k) {
        SyntheticImageGenerator gen(cfg);
        return gen.Generate(
            n,
            DrawLdaClassProportionsFor(k, cfg.num_classes, beta,
                                       cfg.seed + 1),
            /*style_client=*/-1,
            /*sample_stream_seed=*/static_cast<uint64_t>(k) + 1000);
      };
      SyntheticImageGenerator gen(cfg);
      test = gen.Generate(profile.test_size, /*class_probs=*/{},
                          /*style_client=*/-1, /*sample_stream_seed=*/1);
      break;
    }
    case TaskKind::kImageNatural: {
      SyntheticImageConfig cfg = profile.image;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      generator = [cfg, n](int64_t k) {
        SyntheticImageGenerator gen(cfg);
        return gen.Generate(
            n,
            DrawLdaClassProportionsFor(k, cfg.num_classes, /*beta=*/2.0,
                                       cfg.seed + 1),
            /*style_client=*/k,
            /*sample_stream_seed=*/static_cast<uint64_t>(k) + 1000);
      };
      SyntheticImageGenerator gen(cfg);
      const int64_t test_clients = std::min<int64_t>(m, 40);
      const int64_t per_client =
          std::max<int64_t>(1, profile.test_size / test_clients);
      for (int64_t k = 0; k < test_clients; ++k) {
        test.Append(gen.Generate(
            per_client,
            DrawLdaClassProportionsFor(k, cfg.num_classes, /*beta=*/2.0,
                                       cfg.seed + 1),
            k, static_cast<uint64_t>(k) + 2000000));
      }
      break;
    }
    case TaskKind::kText: {
      SyntheticTextConfig cfg = profile.text;
      cfg.seed = SplitMix64(cfg.seed ^ seed);
      generator = [cfg, n](int64_t k) {
        SyntheticTextGenerator gen(cfg);
        return gen.Generate(n, k, static_cast<uint64_t>(k) + 1000);
      };
      SyntheticTextGenerator gen(cfg);
      const int64_t test_clients = std::min<int64_t>(m, 40);
      const int64_t per_client =
          std::max<int64_t>(1, profile.test_size / test_clients);
      for (int64_t k = 0; k < test_clients; ++k) {
        test.Append(
            gen.Generate(per_client, k, static_cast<uint64_t>(k) + 2000000));
      }
      break;
    }
  }
  return FederatedDataset(std::move(generator),
                          std::vector<int64_t>(static_cast<size_t>(m), n),
                          std::move(test), options);
}

}  // namespace fats
