#include "data/federated_dataset.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace fats {

FederatedDataset::FederatedDataset(std::vector<InMemoryDataset> client_train,
                                   InMemoryDataset global_test)
    : global_test_(std::move(global_test)) {
  clients_.reserve(client_train.size());
  for (size_t k = 0; k < client_train.size(); ++k) {
    ClientShard shard;
    shard.data = std::move(client_train[k]);
    shard.active = true;
    shard.active_indices.resize(static_cast<size_t>(shard.data.size()));
    std::iota(shard.active_indices.begin(), shard.active_indices.end(), 0);
    shard.sample_active.assign(static_cast<size_t>(shard.data.size()), true);
    clients_.push_back(std::move(shard));
    active_clients_.push_back(static_cast<int64_t>(k));
  }
  num_active_clients_ = static_cast<int64_t>(clients_.size());
}

bool FederatedDataset::sample_active(int64_t k, int64_t index) const {
  const ClientShard& shard = clients_[static_cast<size_t>(k)];
  if (index < 0 || index >= shard.data.size()) return false;
  return shard.sample_active[static_cast<size_t>(index)];
}

Status FederatedDataset::RemoveSample(const SampleRef& ref) {
  if (ref.client < 0 || ref.client >= num_clients()) {
    return Status::OutOfRange(
        StrFormat("client %lld out of range", (long long)ref.client));
  }
  ClientShard& shard = clients_[static_cast<size_t>(ref.client)];
  if (!shard.active) {
    return Status::FailedPrecondition(
        StrFormat("client %lld already removed", (long long)ref.client));
  }
  if (ref.index < 0 || ref.index >= shard.data.size()) {
    return Status::OutOfRange(
        StrFormat("sample %lld out of range at client %lld",
                  (long long)ref.index, (long long)ref.client));
  }
  if (!shard.sample_active[static_cast<size_t>(ref.index)]) {
    return Status::FailedPrecondition(
        StrFormat("sample (%lld, %lld) already deleted",
                  (long long)ref.client, (long long)ref.index));
  }
  shard.sample_active[static_cast<size_t>(ref.index)] = false;
  auto it = std::lower_bound(shard.active_indices.begin(),
                             shard.active_indices.end(), ref.index);
  FATS_CHECK(it != shard.active_indices.end() && *it == ref.index);
  shard.active_indices.erase(it);
  return Status::OK();
}

Status FederatedDataset::RemoveClient(int64_t k) {
  if (k < 0 || k >= num_clients()) {
    return Status::OutOfRange(
        StrFormat("client %lld out of range", (long long)k));
  }
  ClientShard& shard = clients_[static_cast<size_t>(k)];
  if (!shard.active) {
    return Status::FailedPrecondition(
        StrFormat("client %lld already removed", (long long)k));
  }
  shard.active = false;
  auto it = std::lower_bound(active_clients_.begin(), active_clients_.end(),
                             k);
  FATS_CHECK(it != active_clients_.end() && *it == k);
  active_clients_.erase(it);
  --num_active_clients_;
  return Status::OK();
}

Batch FederatedDataset::MakeBatch(
    int64_t k, const std::vector<int64_t>& sample_indices) const {
  FATS_CHECK(k >= 0 && k < num_clients());
  const ClientShard& shard = clients_[static_cast<size_t>(k)];
  FATS_CHECK(shard.active) << "batch requested from removed client " << k;
  for (int64_t i : sample_indices) {
    FATS_CHECK(sample_active(k, i))
        << "batch references deleted sample (" << k << ", " << i << ")";
  }
  return shard.data.GatherBatch(sample_indices);
}

int64_t FederatedDataset::total_active_samples() const {
  int64_t total = 0;
  for (int64_t k : active_clients_) total += num_active_samples(k);
  return total;
}

std::string FederatedDataset::ToString() const {
  return StrFormat(
      "FederatedDataset(M=%lld active=%lld, samples=%lld, classes=%lld)",
      (long long)num_clients(), (long long)num_active_clients_,
      (long long)total_active_samples(), (long long)num_classes());
}

}  // namespace fats
