#include "data/federated_dataset.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace fats {

// All lazy-mode state lives behind one pointer so the eager mode pays
// nothing and the dataset stays movable (std::mutex is not). The mutex
// guards the mutable cache members, which are touched from const accessors
// running on pool workers; `deleted` / `client_active` follow the same
// single-writer contract as the eager shards (mutations never race reads)
// but mutators still take the lock because they sync the cache.
struct FederatedDataset::LazyState {
  ShardGenerator generator;
  std::vector<int64_t> shard_sizes;
  std::vector<uint8_t> client_active;
  // Deleted local sample indices per client, ascending; absent key = none.
  std::map<int64_t, std::vector<int64_t>> deleted;
  LazyDatasetOptions options;

  struct Entry {
    std::unique_ptr<ClientShard> shard;
    int64_t tick = 0;  // last touch, for LRU eviction
  };
  mutable std::mutex mu;
  mutable std::map<int64_t, Entry> cache;
  mutable int64_t tick = 0;
  mutable int64_t generations = 0;

  int64_t DeletedCount(int64_t k) const {
    auto it = deleted.find(k);
    return it == deleted.end() ? 0 : static_cast<int64_t>(it->second.size());
  }
  bool Deleted(int64_t k, int64_t index) const {
    auto it = deleted.find(k);
    if (it == deleted.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), index);
  }
};

FederatedDataset::FederatedDataset() = default;
FederatedDataset::~FederatedDataset() = default;
FederatedDataset::FederatedDataset(FederatedDataset&&) noexcept = default;
FederatedDataset& FederatedDataset::operator=(FederatedDataset&&) noexcept =
    default;

FederatedDataset::FederatedDataset(std::vector<InMemoryDataset> client_train,
                                   InMemoryDataset global_test)
    : global_test_(std::move(global_test)) {
  clients_.reserve(client_train.size());
  for (size_t k = 0; k < client_train.size(); ++k) {
    ClientShard shard;
    shard.data = std::move(client_train[k]);
    shard.active = true;
    shard.active_indices.resize(static_cast<size_t>(shard.data.size()));
    std::iota(shard.active_indices.begin(), shard.active_indices.end(), 0);
    shard.sample_active.assign(static_cast<size_t>(shard.data.size()), true);
    clients_.push_back(std::move(shard));
    active_clients_.push_back(static_cast<int64_t>(k));
  }
  num_active_clients_ = static_cast<int64_t>(clients_.size());
}

FederatedDataset::FederatedDataset(ShardGenerator generator,
                                   std::vector<int64_t> shard_sizes,
                                   InMemoryDataset global_test,
                                   LazyDatasetOptions options)
    : global_test_(std::move(global_test)),
      lazy_(std::make_unique<LazyState>()) {
  FATS_CHECK(generator != nullptr) << "lazy dataset needs a generator";
  FATS_CHECK_GE(options.shard_cache_capacity, 1);
  for (size_t k = 0; k < shard_sizes.size(); ++k) {
    FATS_CHECK_GT(shard_sizes[k], 0)
        << "client " << k << " declared with no samples";
  }
  lazy_->generator = std::move(generator);
  lazy_->shard_sizes = std::move(shard_sizes);
  lazy_->client_active.assign(lazy_->shard_sizes.size(), 1);
  lazy_->options = options;
  active_clients_.resize(lazy_->shard_sizes.size());
  std::iota(active_clients_.begin(), active_clients_.end(), 0);
  num_active_clients_ = static_cast<int64_t>(lazy_->shard_sizes.size());
}

int64_t FederatedDataset::num_clients() const {
  if (lazy_) return static_cast<int64_t>(lazy_->shard_sizes.size());
  return static_cast<int64_t>(clients_.size());
}

bool FederatedDataset::client_active(int64_t k) const {
  if (lazy_) return lazy_->client_active[static_cast<size_t>(k)] != 0;
  return clients_[static_cast<size_t>(k)].active;
}

int64_t FederatedDataset::samples_of(int64_t k) const {
  if (lazy_) return lazy_->shard_sizes[static_cast<size_t>(k)];
  return clients_[static_cast<size_t>(k)].data.size();
}

int64_t FederatedDataset::num_active_samples(int64_t k) const {
  if (lazy_) {
    return lazy_->shard_sizes[static_cast<size_t>(k)] -
           lazy_->DeletedCount(k);
  }
  return static_cast<int64_t>(
      clients_[static_cast<size_t>(k)].active_indices.size());
}

bool FederatedDataset::sample_active(int64_t k, int64_t index) const {
  if (lazy_) {
    if (index < 0 || index >= lazy_->shard_sizes[static_cast<size_t>(k)]) {
      return false;
    }
    return !lazy_->Deleted(k, index);
  }
  const ClientShard& shard = clients_[static_cast<size_t>(k)];
  if (index < 0 || index >= shard.data.size()) return false;
  return shard.sample_active[static_cast<size_t>(index)];
}

const std::vector<int64_t>& FederatedDataset::active_sample_indices(
    int64_t k) const {
  if (lazy_) return Materialized(k).active_indices;
  return clients_[static_cast<size_t>(k)].active_indices;
}

const InMemoryDataset& FederatedDataset::client_data(int64_t k) const {
  if (lazy_) return Materialized(k).data;
  return clients_[static_cast<size_t>(k)].data;
}

const FederatedDataset::ClientShard& FederatedDataset::Materialized(
    int64_t k) const {
  LazyState& lz = *lazy_;
  std::lock_guard<std::mutex> lock(lz.mu);
  auto it = lz.cache.find(k);
  if (it == lz.cache.end()) {
    // Evict least-recently-touched shards to stay within capacity. A shard
    // another worker is still reading was touched more recently than the
    // `shard_cache_capacity` distinct shards needed to make it the LRU
    // victim, which is exactly the capacity contract documented on
    // LazyDatasetOptions.
    while (static_cast<int64_t>(lz.cache.size()) >=
           lz.options.shard_cache_capacity) {
      auto victim = lz.cache.begin();
      for (auto c = lz.cache.begin(); c != lz.cache.end(); ++c) {
        if (c->second.tick < victim->second.tick) victim = c;
      }
      lz.cache.erase(victim);
    }
    auto shard = std::make_unique<ClientShard>();
    shard->data = lz.generator(k);
    FATS_CHECK_EQ(shard->data.size(),
                  lz.shard_sizes[static_cast<size_t>(k)])
        << "lazy generator returned the wrong shard size for client " << k;
    shard->active = lz.client_active[static_cast<size_t>(k)] != 0;
    shard->sample_active.assign(static_cast<size_t>(shard->data.size()),
                                true);
    auto del = lz.deleted.find(k);
    if (del != lz.deleted.end()) {
      for (int64_t i : del->second) {
        shard->sample_active[static_cast<size_t>(i)] = false;
      }
    }
    shard->active_indices.reserve(
        static_cast<size_t>(shard->data.size()) -
        (del == lz.deleted.end() ? 0 : del->second.size()));
    for (int64_t i = 0; i < shard->data.size(); ++i) {
      if (shard->sample_active[static_cast<size_t>(i)]) {
        shard->active_indices.push_back(i);
      }
    }
    ++lz.generations;
    LazyState::Entry entry;
    entry.shard = std::move(shard);
    it = lz.cache.emplace(k, std::move(entry)).first;
  }
  it->second.tick = ++lz.tick;
  return *it->second.shard;
}

Status FederatedDataset::RemoveSample(const SampleRef& ref) {
  if (ref.client < 0 || ref.client >= num_clients()) {
    return Status::OutOfRange(
        StrFormat("client %lld out of range", (long long)ref.client));
  }
  if (lazy_) {
    LazyState& lz = *lazy_;
    std::lock_guard<std::mutex> lock(lz.mu);
    if (lz.client_active[static_cast<size_t>(ref.client)] == 0) {
      return Status::FailedPrecondition(
          StrFormat("client %lld already removed", (long long)ref.client));
    }
    if (ref.index < 0 ||
        ref.index >= lz.shard_sizes[static_cast<size_t>(ref.client)]) {
      return Status::OutOfRange(
          StrFormat("sample %lld out of range at client %lld",
                    (long long)ref.index, (long long)ref.client));
    }
    std::vector<int64_t>& del = lz.deleted[ref.client];
    auto pos = std::lower_bound(del.begin(), del.end(), ref.index);
    if (pos != del.end() && *pos == ref.index) {
      return Status::FailedPrecondition(
          StrFormat("sample (%lld, %lld) already deleted",
                    (long long)ref.client, (long long)ref.index));
    }
    del.insert(pos, ref.index);
    // Keep any materialized copy consistent with the overlay.
    auto it = lz.cache.find(ref.client);
    if (it != lz.cache.end()) {
      ClientShard& shard = *it->second.shard;
      shard.sample_active[static_cast<size_t>(ref.index)] = false;
      auto active = std::lower_bound(shard.active_indices.begin(),
                                     shard.active_indices.end(), ref.index);
      FATS_CHECK(active != shard.active_indices.end() &&
                 *active == ref.index);
      shard.active_indices.erase(active);
    }
    return Status::OK();
  }
  ClientShard& shard = clients_[static_cast<size_t>(ref.client)];
  if (!shard.active) {
    return Status::FailedPrecondition(
        StrFormat("client %lld already removed", (long long)ref.client));
  }
  if (ref.index < 0 || ref.index >= shard.data.size()) {
    return Status::OutOfRange(
        StrFormat("sample %lld out of range at client %lld",
                  (long long)ref.index, (long long)ref.client));
  }
  if (!shard.sample_active[static_cast<size_t>(ref.index)]) {
    return Status::FailedPrecondition(
        StrFormat("sample (%lld, %lld) already deleted",
                  (long long)ref.client, (long long)ref.index));
  }
  shard.sample_active[static_cast<size_t>(ref.index)] = false;
  auto it = std::lower_bound(shard.active_indices.begin(),
                             shard.active_indices.end(), ref.index);
  FATS_CHECK(it != shard.active_indices.end() && *it == ref.index);
  shard.active_indices.erase(it);
  return Status::OK();
}

Status FederatedDataset::RemoveClient(int64_t k) {
  if (k < 0 || k >= num_clients()) {
    return Status::OutOfRange(
        StrFormat("client %lld out of range", (long long)k));
  }
  if (lazy_) {
    LazyState& lz = *lazy_;
    std::lock_guard<std::mutex> lock(lz.mu);
    if (lz.client_active[static_cast<size_t>(k)] == 0) {
      return Status::FailedPrecondition(
          StrFormat("client %lld already removed", (long long)k));
    }
    lz.client_active[static_cast<size_t>(k)] = 0;
    auto cached = lz.cache.find(k);
    if (cached != lz.cache.end()) cached->second.shard->active = false;
  } else {
    ClientShard& shard = clients_[static_cast<size_t>(k)];
    if (!shard.active) {
      return Status::FailedPrecondition(
          StrFormat("client %lld already removed", (long long)k));
    }
    shard.active = false;
  }
  auto it = std::lower_bound(active_clients_.begin(), active_clients_.end(),
                             k);
  FATS_CHECK(it != active_clients_.end() && *it == k);
  active_clients_.erase(it);
  --num_active_clients_;
  return Status::OK();
}

Batch FederatedDataset::MakeBatch(
    int64_t k, const std::vector<int64_t>& sample_indices) const {
  FATS_CHECK(k >= 0 && k < num_clients());
  FATS_CHECK(client_active(k)) << "batch requested from removed client " << k;
  for (int64_t i : sample_indices) {
    FATS_CHECK(sample_active(k, i))
        << "batch references deleted sample (" << k << ", " << i << ")";
  }
  if (lazy_) return Materialized(k).data.GatherBatch(sample_indices);
  return clients_[static_cast<size_t>(k)].data.GatherBatch(sample_indices);
}

int64_t FederatedDataset::total_active_samples() const {
  int64_t total = 0;
  for (int64_t k : active_clients_) total += num_active_samples(k);
  return total;
}

int64_t FederatedDataset::materialized_shards() const {
  if (!lazy_) return num_clients();
  std::lock_guard<std::mutex> lock(lazy_->mu);
  return static_cast<int64_t>(lazy_->cache.size());
}

int64_t FederatedDataset::shard_generations() const {
  if (!lazy_) return 0;
  std::lock_guard<std::mutex> lock(lazy_->mu);
  return lazy_->generations;
}

std::string FederatedDataset::ToString() const {
  return StrFormat(
      "FederatedDataset(M=%lld active=%lld, samples=%lld, classes=%lld%s)",
      (long long)num_clients(), (long long)num_active_clients_,
      (long long)total_active_samples(), (long long)num_classes(),
      lazy_ ? ", lazy" : "");
}

}  // namespace fats
