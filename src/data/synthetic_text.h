// Synthetic character-sequence data: per-client Markov chains.
//
// Substitutes for LEAF Shakespeare (see DESIGN.md §2). Each client k has a
// character transition matrix P_k = (1 - h) * P_base + h * P_k_own, where h
// is the heterogeneity knob (each client = one "speaker" with its own
// style). An example is a window of `seq_len` character ids with the next
// character as the label — the same next-character prediction task the paper
// trains its LSTM on.

#ifndef FATS_DATA_SYNTHETIC_TEXT_H_
#define FATS_DATA_SYNTHETIC_TEXT_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "rng/rng_stream.h"

namespace fats {

struct SyntheticTextConfig {
  int64_t vocab_size = 32;
  int64_t seq_len = 10;
  /// Concentration of the per-row transition Dirichlet; smaller = more
  /// deterministic chains = more learnable signal.
  double transition_concentration = 0.3;
  /// Client heterogeneity in [0, 1]: weight of the client-specific chain.
  double heterogeneity = 0.5;
  uint64_t seed = 1;
};

class SyntheticTextGenerator {
 public:
  explicit SyntheticTextGenerator(const SyntheticTextConfig& config);

  /// Generates `n` (sequence, next-char) examples for client `client`
  /// (client < 0 uses the base chain only, e.g. for a global test set).
  InMemoryDataset Generate(int64_t n, int64_t client,
                           uint64_t sample_stream_seed) const;

  const SyntheticTextConfig& config() const { return config_; }

  /// The effective transition row for (client, current char); for tests.
  std::vector<double> TransitionRow(int64_t client, int64_t current) const;

 private:
  std::vector<double> MakeChain(uint64_t chain_id) const;

  SyntheticTextConfig config_;
  std::vector<double> base_chain_;  // (vocab x vocab), row-stochastic
};

}  // namespace fats

#endif  // FATS_DATA_SYNTHETIC_TEXT_H_
