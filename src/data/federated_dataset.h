// The federated data view: M clients, each with a local dataset, plus a
// global test set — with logical deletion of samples and clients.
//
// Deletion is the substrate of unlearning: FATS-SU removes one sample from
// one client; FATS-CU removes a whole client. Deletions are *logical* (an
// active-index view), so (a) no data is copied, and (b) sample identities
// stay stable, which is what the unlearning algorithms' participation
// records refer to. After a deletion, mini-batch sampling ranges over the
// reduced active set — exactly the ξ(N−1, b) / ν(M−1, K) measures in the
// paper's analysis.

#ifndef FATS_DATA_FEDERATED_DATASET_H_
#define FATS_DATA_FEDERATED_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace fats {

/// Identifies one sample: (client, stable local index).
struct SampleRef {
  int64_t client = 0;
  int64_t index = 0;

  bool operator==(const SampleRef& other) const {
    return client == other.client && index == other.index;
  }
};

class FederatedDataset {
 public:
  FederatedDataset() = default;

  /// `client_train[k]` is client k's local dataset; `global_test` is the
  /// evaluation set used for test accuracy.
  FederatedDataset(std::vector<InMemoryDataset> client_train,
                   InMemoryDataset global_test);

  /// Total number of clients, including deactivated ones (indices stable).
  int64_t num_clients() const {
    return static_cast<int64_t>(clients_.size());
  }
  /// Clients not yet removed.
  int64_t num_active_clients() const { return num_active_clients_; }
  bool client_active(int64_t k) const {
    return clients_[static_cast<size_t>(k)].active;
  }
  /// Ascending list of active client ids.
  const std::vector<int64_t>& active_clients() const {
    return active_clients_;
  }

  /// Original local dataset size of client k (deletions do not change it).
  int64_t samples_of(int64_t k) const {
    return clients_[static_cast<size_t>(k)].data.size();
  }
  /// Number of not-deleted samples at client k.
  int64_t num_active_samples(int64_t k) const {
    return static_cast<int64_t>(
        clients_[static_cast<size_t>(k)].active_indices.size());
  }
  bool sample_active(int64_t k, int64_t index) const;
  /// Ascending list of active local sample indices at client k.
  const std::vector<int64_t>& active_sample_indices(int64_t k) const {
    return clients_[static_cast<size_t>(k)].active_indices;
  }

  /// Logically deletes one sample. Fails if already deleted or out of range.
  Status RemoveSample(const SampleRef& ref);
  /// Logically deletes a whole client. Fails if already removed.
  Status RemoveClient(int64_t k);

  /// Gathers a batch at client k from *stable local indices* (all of which
  /// must be active).
  Batch MakeBatch(int64_t k, const std::vector<int64_t>& sample_indices) const;

  const InMemoryDataset& client_data(int64_t k) const {
    return clients_[static_cast<size_t>(k)].data;
  }
  const InMemoryDataset& global_test() const { return global_test_; }

  int64_t num_classes() const { return global_test_.num_classes(); }
  int64_t feature_dim() const { return global_test_.feature_dim(); }

  /// Total active samples across active clients.
  int64_t total_active_samples() const;

  std::string ToString() const;

 private:
  struct ClientShard {
    InMemoryDataset data;
    bool active = true;
    std::vector<int64_t> active_indices;  // ascending
    std::vector<bool> sample_active;
  };

  std::vector<ClientShard> clients_;
  std::vector<int64_t> active_clients_;
  int64_t num_active_clients_ = 0;
  InMemoryDataset global_test_;
};

}  // namespace fats

#endif  // FATS_DATA_FEDERATED_DATASET_H_
