// The federated data view: M clients, each with a local dataset, plus a
// global test set — with logical deletion of samples and clients.
//
// Deletion is the substrate of unlearning: FATS-SU removes one sample from
// one client; FATS-CU removes a whole client. Deletions are *logical* (an
// active-index view), so (a) no data is copied, and (b) sample identities
// stay stable, which is what the unlearning algorithms' participation
// records refer to. After a deletion, mini-batch sampling ranges over the
// reduced active set — exactly the ξ(N−1, b) / ν(M−1, K) measures in the
// paper's analysis.
//
// Two storage modes behind the same interface:
//
//   * Eager (the original): every client shard is resident, built from a
//     vector<InMemoryDataset>.
//   * Lazy: shards are *generated on demand* from a deterministic per-client
//     generator and kept in a small LRU cache; deletions live in a sparse
//     overlay so a deleted sample stays deleted across re-materialization.
//     This is what makes an M = 10^6 client run fit in bounded memory: at
//     any moment only the shards of the clients actually selected this
//     round (plus a few cached ones) exist.
//
// The lazy mode is observationally identical to eager over the public
// interface — same actives, same batches, bit for bit — provided the
// generator is pure (same client id -> same InMemoryDataset, always).

#ifndef FATS_DATA_FEDERATED_DATASET_H_
#define FATS_DATA_FEDERATED_DATASET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace fats {

/// Options of the lazy (generated-on-demand) dataset mode.
struct LazyDatasetOptions {
  /// Materialized shards kept resident (LRU by last touch). Must be at
  /// least the number of shards in concurrent use — references returned by
  /// active_sample_indices()/client_data() stay valid only until the shard
  /// is evicted, and a shard can only become an eviction victim once
  /// `shard_cache_capacity` other shards have been touched after it.
  int64_t shard_cache_capacity = 256;
};

/// Identifies one sample: (client, stable local index).
struct SampleRef {
  int64_t client = 0;
  int64_t index = 0;

  bool operator==(const SampleRef& other) const {
    return client == other.client && index == other.index;
  }
};

class FederatedDataset {
 public:
  /// Produces client k's local dataset. Must be pure: the same k must yield
  /// the same InMemoryDataset on every call, across processes (lazy
  /// re-materialization and crash recovery both rely on it). Called with an
  /// internal lock held, so it need not be thread-safe itself.
  using ShardGenerator = std::function<InMemoryDataset(int64_t)>;

  FederatedDataset();
  ~FederatedDataset();
  FederatedDataset(FederatedDataset&&) noexcept;
  FederatedDataset& operator=(FederatedDataset&&) noexcept;
  FederatedDataset(const FederatedDataset&) = delete;
  FederatedDataset& operator=(const FederatedDataset&) = delete;

  /// Eager mode: `client_train[k]` is client k's local dataset;
  /// `global_test` is the evaluation set used for test accuracy.
  FederatedDataset(std::vector<InMemoryDataset> client_train,
                   InMemoryDataset global_test);

  /// Lazy mode: shards are generated on demand by `generator` and cached
  /// (LRU, `options.shard_cache_capacity` shards). `shard_sizes[k]` is the
  /// size generator(k) will produce — declared up front so size queries and
  /// deletion bookkeeping never force materialization.
  FederatedDataset(ShardGenerator generator, std::vector<int64_t> shard_sizes,
                   InMemoryDataset global_test,
                   LazyDatasetOptions options = {});

  /// Total number of clients, including deactivated ones (indices stable).
  int64_t num_clients() const;
  /// Clients not yet removed.
  int64_t num_active_clients() const { return num_active_clients_; }
  bool client_active(int64_t k) const;
  /// Ascending list of active client ids.
  const std::vector<int64_t>& active_clients() const {
    return active_clients_;
  }

  /// Original local dataset size of client k (deletions do not change it).
  int64_t samples_of(int64_t k) const;
  /// Number of not-deleted samples at client k.
  int64_t num_active_samples(int64_t k) const;
  bool sample_active(int64_t k, int64_t index) const;
  /// Ascending list of active local sample indices at client k. Lazy mode:
  /// materializes the shard; the reference is valid until the shard is
  /// evicted (see LazyDatasetOptions::shard_cache_capacity).
  const std::vector<int64_t>& active_sample_indices(int64_t k) const;

  /// Logically deletes one sample. Fails if already deleted or out of range.
  Status RemoveSample(const SampleRef& ref);
  /// Logically deletes a whole client. Fails if already removed.
  Status RemoveClient(int64_t k);

  /// Gathers a batch at client k from *stable local indices* (all of which
  /// must be active).
  Batch MakeBatch(int64_t k, const std::vector<int64_t>& sample_indices) const;

  /// Client k's local dataset. Lazy mode: materializes the shard; same
  /// lifetime caveat as active_sample_indices().
  const InMemoryDataset& client_data(int64_t k) const;
  const InMemoryDataset& global_test() const { return global_test_; }

  int64_t num_classes() const { return global_test_.num_classes(); }
  int64_t feature_dim() const { return global_test_.feature_dim(); }

  /// Total active samples across active clients.
  int64_t total_active_samples() const;

  /// True when this dataset generates shards on demand.
  bool lazy() const { return lazy_ != nullptr; }
  /// Shards currently resident (eager mode: all of them).
  int64_t materialized_shards() const;
  /// Times the generator has run (eager mode: 0). A shard evicted and
  /// re-touched counts again; tests use this to observe cache behavior.
  int64_t shard_generations() const;

  std::string ToString() const;

 private:
  struct ClientShard {
    InMemoryDataset data;
    bool active = true;
    std::vector<int64_t> active_indices;  // ascending
    std::vector<bool> sample_active;
  };
  struct LazyState;

  /// Lazy mode only: the materialized shard of client k (generating and/or
  /// evicting under the cache lock as needed).
  const ClientShard& Materialized(int64_t k) const;

  std::vector<ClientShard> clients_;
  std::vector<int64_t> active_clients_;
  int64_t num_active_clients_ = 0;
  InMemoryDataset global_test_;
  std::unique_ptr<LazyState> lazy_;
};

}  // namespace fats

#endif  // FATS_DATA_FEDERATED_DATASET_H_
