#include "data/dataset.h"

#include "util/string_util.h"

namespace fats {

InMemoryDataset::InMemoryDataset(Tensor features, std::vector<int64_t> labels,
                                 int64_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  FATS_CHECK_EQ(features_.rank(), 2);
  FATS_CHECK_EQ(features_.dim(0), static_cast<int64_t>(labels_.size()));
  for (int64_t y : labels_) {
    FATS_CHECK(y >= 0 && y < num_classes_) << "label out of range: " << y;
  }
}

Batch InMemoryDataset::GatherBatch(const std::vector<int64_t>& indices) const {
  const int64_t d = feature_dim();
  Batch batch;
  batch.inputs = Tensor({static_cast<int64_t>(indices.size()), d});
  batch.labels.reserve(indices.size());
  float* dst = batch.inputs.data();
  const float* src = features_.data();
  for (size_t row = 0; row < indices.size(); ++row) {
    const int64_t i = indices[row];
    FATS_CHECK(i >= 0 && i < size()) << "batch index out of range: " << i;
    const float* from = src + i * d;
    float* to = dst + static_cast<int64_t>(row) * d;
    for (int64_t j = 0; j < d; ++j) to[j] = from[j];
    batch.labels.push_back(labels_[static_cast<size_t>(i)]);
  }
  return batch;
}

Batch InMemoryDataset::AsBatch() const {
  Batch batch;
  batch.inputs = features_;
  batch.labels = labels_;
  return batch;
}

void InMemoryDataset::Append(const InMemoryDataset& other) {
  if (size() == 0) {
    *this = other;
    return;
  }
  FATS_CHECK_EQ(feature_dim(), other.feature_dim());
  FATS_CHECK_EQ(num_classes_, other.num_classes_);
  std::vector<float> merged = features_.storage();
  const std::vector<float>& extra = other.features_.storage();
  merged.insert(merged.end(), extra.begin(), extra.end());
  features_ = Tensor({size() + other.size(), feature_dim()},
                     std::move(merged));
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

std::string InMemoryDataset::ToString() const {
  return StrFormat("InMemoryDataset(n=%lld, d=%lld, classes=%lld)",
                   static_cast<long long>(size()),
                   static_cast<long long>(feature_dim()),
                   static_cast<long long>(num_classes_));
}

}  // namespace fats
