#include "data/partition.h"

#include <cmath>
#include <numeric>

#include "rng/sampling.h"
#include "util/logging.h"

namespace fats {

std::vector<std::vector<double>> DrawLdaClassProportions(int64_t num_clients,
                                                         int64_t num_classes,
                                                         double beta,
                                                         uint64_t seed) {
  FATS_CHECK_GT(num_clients, 0);
  FATS_CHECK_GT(num_classes, 0);
  FATS_CHECK_GT(beta, 0.0);
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<size_t>(num_clients));
  for (int64_t k = 0; k < num_clients; ++k) {
    out.push_back(DrawLdaClassProportionsFor(k, num_classes, beta, seed));
  }
  return out;
}

std::vector<double> DrawLdaClassProportionsFor(int64_t client,
                                               int64_t num_classes,
                                               double beta, uint64_t seed) {
  FATS_CHECK_GE(client, 0);
  FATS_CHECK_GT(num_classes, 0);
  FATS_CHECK_GT(beta, 0.0);
  std::vector<double> alpha(static_cast<size_t>(num_classes), beta);
  StreamId id;
  id.purpose = RngPurpose::kPartition;
  id.client = static_cast<uint64_t>(client);
  RngStream rng(seed, id);
  return SampleDirichlet(alpha, &rng);
}

std::vector<std::vector<int64_t>> PartitionIid(int64_t n, int64_t num_clients,
                                               uint64_t seed) {
  FATS_CHECK_GT(num_clients, 0);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(seed, id);
  Shuffle(&order, &rng);
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_clients));
  for (int64_t i = 0; i < n; ++i) {
    parts[static_cast<size_t>(i % num_clients)].push_back(
        order[static_cast<size_t>(i)]);
  }
  return parts;
}

std::vector<std::vector<int64_t>> PartitionDirichlet(
    const std::vector<int64_t>& labels, int64_t num_classes,
    int64_t num_clients, double beta, uint64_t seed) {
  FATS_CHECK_GT(num_clients, 0);
  FATS_CHECK_GT(beta, 0.0);
  // Bucket indices per class.
  std::vector<std::vector<int64_t>> by_class(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < labels.size(); ++i) {
    const int64_t y = labels[i];
    FATS_CHECK(y >= 0 && y < num_classes);
    by_class[static_cast<size_t>(y)].push_back(static_cast<int64_t>(i));
  }
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_clients));
  std::vector<double> alpha(static_cast<size_t>(num_clients), beta);
  for (int64_t c = 0; c < num_classes; ++c) {
    StreamId id;
    id.purpose = RngPurpose::kPartition;
    id.iteration = static_cast<uint64_t>(c) + 1;
    RngStream rng(seed, id);
    std::vector<int64_t>& bucket = by_class[static_cast<size_t>(c)];
    Shuffle(&bucket, &rng);
    std::vector<double> shares = SampleDirichlet(alpha, &rng);
    // Convert shares to cumulative cut points over the bucket.
    const int64_t m = static_cast<int64_t>(bucket.size());
    double cumulative = 0.0;
    int64_t start = 0;
    for (int64_t k = 0; k < num_clients; ++k) {
      cumulative += shares[static_cast<size_t>(k)];
      int64_t end = (k + 1 == num_clients)
                        ? m
                        : static_cast<int64_t>(std::llround(cumulative * m));
      end = std::min<int64_t>(std::max(end, start), m);
      for (int64_t i = start; i < end; ++i) {
        parts[static_cast<size_t>(k)].push_back(
            bucket[static_cast<size_t>(i)]);
      }
      start = end;
    }
  }
  return parts;
}

double PartitionHeterogeneity(const std::vector<std::vector<int64_t>>& parts,
                              const std::vector<int64_t>& labels,
                              int64_t num_classes) {
  if (parts.empty() || labels.empty()) return 0.0;
  std::vector<double> global_hist(static_cast<size_t>(num_classes), 0.0);
  for (int64_t y : labels) global_hist[static_cast<size_t>(y)] += 1.0;
  for (double& v : global_hist) v /= static_cast<double>(labels.size());
  double total_tv = 0.0;
  int64_t counted = 0;
  for (const std::vector<int64_t>& part : parts) {
    if (part.empty()) continue;
    std::vector<double> hist(static_cast<size_t>(num_classes), 0.0);
    for (int64_t i : part) {
      hist[static_cast<size_t>(labels[static_cast<size_t>(i)])] += 1.0;
    }
    double tv = 0.0;
    for (int64_t c = 0; c < num_classes; ++c) {
      tv += std::fabs(hist[static_cast<size_t>(c)] /
                          static_cast<double>(part.size()) -
                      global_hist[static_cast<size_t>(c)]);
    }
    total_tv += 0.5 * tv;
    ++counted;
  }
  return counted == 0 ? 0.0 : total_tv / static_cast<double>(counted);
}

}  // namespace fats
