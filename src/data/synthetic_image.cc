#include "data/synthetic_image.h"

#include "rng/sampling.h"
#include "util/logging.h"

namespace fats {

SyntheticImageGenerator::SyntheticImageGenerator(
    const SyntheticImageConfig& config)
    : config_(config) {
  FATS_CHECK_GT(config_.num_classes, 0);
  FATS_CHECK_GT(config_.feature_dim, 0);
  prototypes_.resize(
      static_cast<size_t>(config_.num_classes * config_.feature_dim));
  StreamId id;
  id.purpose = RngPurpose::kDataGeneration;
  id.round = 0;
  RngStream rng(config_.seed, id);
  for (float& v : prototypes_) {
    v = static_cast<float>(config_.prototype_scale * rng.NextGaussian());
  }
}

std::vector<float> SyntheticImageGenerator::StyledPrototype(
    int64_t c, int64_t style_client) const {
  FATS_CHECK(c >= 0 && c < config_.num_classes);
  const int64_t d = config_.feature_dim;
  std::vector<float> proto(
      prototypes_.begin() + c * d, prototypes_.begin() + (c + 1) * d);
  if (style_client < 0 || config_.style_strength == 0.0) return proto;
  // Client-specific warp: a deterministic shift and coordinate rescale drawn
  // from the client's own style stream (same for all classes of the client).
  StreamId id;
  id.purpose = RngPurpose::kDataGeneration;
  id.client = static_cast<uint64_t>(style_client);
  id.iteration = 1;  // style sub-stream
  RngStream rng(config_.seed, id);
  const double s = config_.style_strength;
  for (int64_t j = 0; j < d; ++j) {
    const double shift = s * rng.NextGaussian();
    const double scale = 1.0 + s * 0.5 * rng.NextGaussian();
    proto[static_cast<size_t>(j)] =
        static_cast<float>(proto[static_cast<size_t>(j)] * scale + shift);
  }
  return proto;
}

InMemoryDataset SyntheticImageGenerator::Generate(
    int64_t n, const std::vector<double>& class_probs, int64_t style_client,
    uint64_t sample_stream_seed) const {
  FATS_CHECK_GE(n, 0);
  std::vector<double> probs = class_probs;
  if (probs.empty()) {
    probs.assign(static_cast<size_t>(config_.num_classes),
                 1.0 / static_cast<double>(config_.num_classes));
  }
  FATS_CHECK_EQ(static_cast<int64_t>(probs.size()), config_.num_classes);

  StreamId id;
  id.purpose = RngPurpose::kDataGeneration;
  id.generation = sample_stream_seed;
  id.client = style_client >= 0 ? static_cast<uint64_t>(style_client)
                                : StreamId::kNoClient;
  RngStream rng(config_.seed, id);

  const int64_t d = config_.feature_dim;
  Tensor features({std::max<int64_t>(n, 1), d});
  std::vector<int64_t> labels;
  labels.reserve(static_cast<size_t>(n));
  // Cache the styled prototypes once.
  std::vector<std::vector<float>> styled;
  styled.reserve(static_cast<size_t>(config_.num_classes));
  for (int64_t c = 0; c < config_.num_classes; ++c) {
    styled.push_back(StyledPrototype(c, style_client));
  }
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = SampleCategorical(probs, &rng);
    labels.push_back(c);
    const std::vector<float>& proto = styled[static_cast<size_t>(c)];
    float* row = features.data() + i * d;
    for (int64_t j = 0; j < d; ++j) {
      row[j] = proto[static_cast<size_t>(j)] +
               static_cast<float>(config_.noise_stddev * rng.NextGaussian());
    }
  }
  if (n == 0) return InMemoryDataset();
  return InMemoryDataset(std::move(features), std::move(labels),
                         config_.num_classes);
}

}  // namespace fats
