// CSV emission for benchmark harnesses.
//
// Every bench in bench/ prints both a human-readable table and
// machine-readable CSV rows. CsvWriter targets either a file or an ostream
// (typically std::cout with a "# CSV," line prefix so rows survive being
// interleaved with other output).

#ifndef FATS_UTIL_CSV_WRITER_H_
#define FATS_UTIL_CSV_WRITER_H_

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace fats {

class CsvWriter {
 public:
  /// Writes rows to `out` (not owned), each prefixed with `line_prefix`.
  CsvWriter(std::ostream* out, std::string line_prefix);

  /// Opens `path` for writing. Check `status()` before use.
  explicit CsvWriter(const std::string& path);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  const Status& status() const { return status_; }

  /// Writes the header row once; subsequent calls are no-ops.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Writes one data row. Fields containing commas or quotes are quoted.
  /// A stream-level write failure (e.g. a full disk) latches into status()
  /// and turns subsequent calls into no-ops.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes (and closes, in file mode) and reports the first error
  /// encountered, including failures the buffered stream only surfaces at
  /// flush time — a full disk shows up here as kIoError, never as a
  /// silently truncated file. Safe to call twice.
  Status Finish();

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::string line_prefix_;
  bool header_written_ = false;
  Status status_;
};

/// Renders `value` for a CSV field, quoting when needed.
std::string CsvEscape(const std::string& value);

}  // namespace fats

#endif  // FATS_UTIL_CSV_WRITER_H_
