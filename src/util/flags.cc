#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace fats {

std::string* FlagParser::AddString(const std::string& name,
                                   std::string default_value,
                                   std::string help) {
  string_storage_.push_back(
      std::make_unique<std::string>(std::move(default_value)));
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.string_value = string_storage_.back().get();
  flag.default_repr = *flag.string_value;
  flags_[name] = flag;
  return flag.string_value;
}

int64_t* FlagParser::AddInt(const std::string& name, int64_t default_value,
                            std::string help) {
  int_storage_.push_back(std::make_unique<int64_t>(default_value));
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.int_value = int_storage_.back().get();
  flag.default_repr = std::to_string(default_value);
  flags_[name] = flag;
  return flag.int_value;
}

double* FlagParser::AddDouble(const std::string& name, double default_value,
                              std::string help) {
  double_storage_.push_back(std::make_unique<double>(default_value));
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = double_storage_.back().get();
  flag.default_repr = std::to_string(default_value);
  flags_[name] = flag;
  return flag.double_value;
}

bool* FlagParser::AddBool(const std::string& name, bool default_value,
                          std::string help) {
  bool_storage_.push_back(std::make_unique<bool>(default_value));
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = bool_storage_.back().get();
  flag.default_repr = default_value ? "true" : "false";
  flags_[name] = flag;
  return flag.bool_value;
}

Status FlagParser::SetFlag(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag: --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      *flag.string_value = value;
      return Status::OK();
    case Type::kInt: {
      char* end = nullptr;
      int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got: " + value);
      }
      *flag.int_value = v;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got: " + value);
      }
      *flag.double_value = v;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        *flag.bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got: " + value);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout, "%s", Usage().c_str());
      return Status::NotFound("help requested");
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      bool is_bool = it != flags_.end() && it->second.type == Type::kBool;
      if (!is_bool && i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      }
    }
    FATS_RETURN_NOT_OK(SetFlag(name, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::string out = "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_repr.c_str());
  }
  return out;
}

}  // namespace fats
