// Fixed-size worker pool for deterministic parallel client execution.
//
// This is the ONLY module in the repository allowed to create threads
// (tools/fats_lint enforces a raw-thread ban everywhere else). The pool
// exposes exactly one primitive, ParallelFor, which runs an indexed batch
// of tasks and blocks until all of them finish. Determinism is the caller's
// contract, not the pool's: task i must depend only on state that was
// frozen before the ParallelFor call (pre-derived RNG stream keys, start
// parameters) and must write only slot i of caller-owned output arrays, so
// results are identical regardless of which worker runs which task and in
// what completion order. See DESIGN.md §7 ("deterministic-parallelism
// contract").
//
// With num_threads <= 1 no threads are ever created and ParallelFor runs
// the tasks inline on the calling thread — the serial engine of record.
//
// The module also provides WriterThread, the sanctioned single-consumer
// background-I/O primitive (async journal flushing). It is deliberately not
// a second ParallelFor: exactly one dedicated thread drains posted tasks in
// strict FIFO order, so an I/O pipeline keeps the byte order of its posts.

#ifndef FATS_UTIL_THREAD_POOL_H_
#define FATS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fats {

class ThreadPool {
 public:
  /// Spawns `num_threads` persistent workers (none when num_threads <= 1).
  explicit ThreadPool(int64_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int64_t num_threads() const { return num_threads_; }

  /// Runs fn(i, worker) for every i in [0, n) and returns when all calls
  /// have finished. `worker` is in [0, num_threads) and identifies the
  /// executing worker, so callers can hand each worker a private scratch
  /// resource (e.g. a model replica). Task order across workers is
  /// unspecified; callers must not rely on it (see the determinism contract
  /// above). Not reentrant: fn must not call ParallelFor on this pool.
  void ParallelFor(int64_t n,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop(int64_t worker);

  const int64_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new batch / shutdown
  std::condition_variable done_cv_;  // signals ParallelFor: batch complete
  // All batch state below is guarded by mu_.
  const std::function<void(int64_t, int64_t)>* fn_ = nullptr;
  int64_t batch_size_ = 0;
  int64_t next_index_ = 0;
  int64_t completed_ = 0;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

// A dedicated single-consumer task thread: Post enqueues a closure, the one
// writer thread runs the queue strictly in post (FIFO) order, Drain blocks
// until everything posted so far has finished. Built for moving durable I/O
// off the training hot path: the poster keeps appending while the writer
// flushes, and a Drain at a round boundary is the ordering barrier that
// makes "everything before this point is on disk" a meaningful statement.
//
// Determinism note: tasks run in post order on one thread, so the byte
// stream a WriterThread produces is a pure function of the posts — no
// schedule dependence. Error propagation is the poster's job (capture a
// status object by reference and inspect it after Drain).
class WriterThread {
 public:
  /// Starts the writer thread immediately.
  WriterThread();
  /// Drains outstanding tasks, then joins the thread.
  ~WriterThread();

  WriterThread(const WriterThread&) = delete;
  WriterThread& operator=(const WriterThread&) = delete;

  /// Enqueues `task` to run on the writer thread after everything already
  /// posted. Must not be called from the writer thread itself.
  void Post(std::function<void()> task);

  /// Blocks until every task posted before this call has finished running.
  void Drain();

 private:
  void Loop();

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals writer: task posted / shutdown
  std::condition_variable idle_cv_;  // signals Drain: queue empty + not busy
  // Guarded by mu_.
  std::deque<std::function<void()>> queue_;
  bool busy_ = false;
  bool shutdown_ = false;
};

}  // namespace fats

#endif  // FATS_UTIL_THREAD_POOL_H_
