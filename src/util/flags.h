// A tiny command-line flag parser for bench and example binaries.
//
// Supported syntax: --name=value, --name value, and bare --name for booleans.
// Unknown flags are reported as errors so typos do not silently change an
// experiment's parameters.

#ifndef FATS_UTIL_FLAGS_H_
#define FATS_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace fats {

class FlagParser {
 public:
  FlagParser() = default;

  /// Registers a flag with a default value and a help string. Returns a
  /// pointer whose pointee is updated by Parse().
  std::string* AddString(const std::string& name, std::string default_value,
                         std::string help);
  int64_t* AddInt(const std::string& name, int64_t default_value,
                  std::string help);
  double* AddDouble(const std::string& name, double default_value,
                    std::string help);
  bool* AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses argv. On `--help` prints usage and returns a NotFound status the
  /// caller should treat as "exit 0".
  Status Parse(int argc, char** argv);

  /// One line per flag: name, default, help.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string* string_value = nullptr;
    int64_t* int_value = nullptr;
    double* double_value = nullptr;
    bool* bool_value = nullptr;
    std::string default_repr;
  };

  Status SetFlag(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  // Owned storage for the registered flag values.
  std::vector<std::unique_ptr<std::string>> string_storage_;
  std::vector<std::unique_ptr<int64_t>> int_storage_;
  std::vector<std::unique_ptr<double>> double_storage_;
  std::vector<std::unique_ptr<bool>> bool_storage_;
};

}  // namespace fats

#endif  // FATS_UTIL_FLAGS_H_
