// Stopwatch is header-only; this TU exists so the build file can list the
// module uniformly.
#include "util/stopwatch.h"
