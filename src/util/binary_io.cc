#include "util/binary_io.h"

#include <cstring>

namespace fats {

namespace {

// The format is little-endian; on big-endian hosts values would need
// swapping. All supported targets are little-endian, which we verify once.
bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(path, std::ios::binary | std::ios::trunc) {
  if (!HostIsLittleEndian()) {
    status_ = Status::Unimplemented("big-endian hosts are not supported");
    return;
  }
  if (!file_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (!status_.ok()) return;
  file_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  if (!file_.good()) status_ = Status::IoError("write failed");
}

void BinaryWriter::WriteU32(uint32_t value) { WriteBytes(&value, 4); }
void BinaryWriter::WriteU64(uint64_t value) { WriteBytes(&value, 8); }
void BinaryWriter::WriteI64(int64_t value) { WriteBytes(&value, 8); }
void BinaryWriter::WriteDouble(double value) { WriteBytes(&value, 8); }
void BinaryWriter::WriteFloat(float value) { WriteBytes(&value, 4); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  WriteBytes(value.data(), value.size());
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& values) {
  WriteU64(values.size());
  WriteBytes(values.data(), values.size() * sizeof(int64_t));
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& values) {
  WriteU64(values.size());
  WriteBytes(values.data(), values.size() * sizeof(float));
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    file_.flush();
    if (!file_.good()) status_ = Status::IoError("flush failed");
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : file_(path, std::ios::binary) {
  if (!HostIsLittleEndian()) {
    status_ = Status::Unimplemented("big-endian hosts are not supported");
    return;
  }
  if (!file_.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
    return;
  }
  file_.seekg(0, std::ios::end);
  size_ = static_cast<int64_t>(file_.tellg());
  file_.seekg(0, std::ios::beg);
}

Status BinaryReader::ReadBytes(void* data, size_t size) {
  FATS_RETURN_NOT_OK(status_);
  if (position_ + static_cast<int64_t>(size) > size_) {
    status_ = Status::IoError("unexpected end of file");
    return status_;
  }
  file_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!file_.good()) {
    status_ = Status::IoError("read failed");
    return status_;
  }
  position_ += static_cast<int64_t>(size);
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t value = 0;
  FATS_RETURN_NOT_OK(ReadBytes(&value, 4));
  return value;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t value = 0;
  FATS_RETURN_NOT_OK(ReadBytes(&value, 8));
  return value;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t value = 0;
  FATS_RETURN_NOT_OK(ReadBytes(&value, 8));
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  double value = 0;
  FATS_RETURN_NOT_OK(ReadBytes(&value, 8));
  return value;
}

Result<float> BinaryReader::ReadFloat() {
  float value = 0;
  FATS_RETURN_NOT_OK(ReadBytes(&value, 4));
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  FATS_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > static_cast<uint64_t>(remaining())) {
    return Status::IoError("string length exceeds file size");
  }
  std::string value(size, '\0');
  FATS_RETURN_NOT_OK(ReadBytes(value.data(), size));
  return value;
}

Result<std::vector<int64_t>> BinaryReader::ReadI64Vector() {
  FATS_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  // Divide instead of multiplying: a corrupted length must not overflow.
  if (size > static_cast<uint64_t>(remaining()) / sizeof(int64_t)) {
    return Status::IoError("vector length exceeds file size");
  }
  std::vector<int64_t> values(size);
  FATS_RETURN_NOT_OK(ReadBytes(values.data(), size * sizeof(int64_t)));
  return values;
}

Result<std::vector<float>> BinaryReader::ReadFloatVector() {
  FATS_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > static_cast<uint64_t>(remaining()) / sizeof(float)) {
    return Status::IoError("vector length exceeds file size");
  }
  std::vector<float> values(size);
  FATS_RETURN_NOT_OK(ReadBytes(values.data(), size * sizeof(float)));
  return values;
}

}  // namespace fats
