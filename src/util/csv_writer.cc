#include "util/csv_writer.h"

#include "util/logging.h"

namespace fats {

CsvWriter::CsvWriter(std::ostream* out, std::string line_prefix)
    : out_(out), line_prefix_(std::move(line_prefix)) {
  FATS_CHECK(out_ != nullptr);
}

CsvWriter::CsvWriter(const std::string& path) : file_(path) {
  if (!file_.is_open()) {
    status_ = Status::IoError("cannot open CSV file: " + path);
    return;
  }
  out_ = &file_;
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  if (header_written_ || !status_.ok()) return;
  header_written_ = true;
  WriteRow(columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok() || out_ == nullptr) return;
  *out_ << line_prefix_;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ",";
    *out_ << CsvEscape(fields[i]);
  }
  *out_ << "\n";
  if (!out_->good()) {
    status_ = Status::IoError("CSV write failed (disk full?)");
  }
}

Status CsvWriter::Finish() {
  if (out_ == nullptr) return status_;  // already finished, or bad open
  if (status_.ok()) {
    out_->flush();
    if (!out_->good()) {
      status_ = Status::IoError("CSV flush failed (disk full?)");
    }
  }
  if (out_ == &file_) {
    file_.close();
    if (status_.ok() && file_.fail()) {
      status_ = Status::IoError("CSV close failed");
    }
  }
  out_ = nullptr;
  return status_;
}

std::string CsvEscape(const std::string& value) {
  bool needs_quotes = false;
  for (char c : value) {
    if (c == ',' || c == '"' || c == '\n') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace fats
