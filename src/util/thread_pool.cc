#include "util/thread_pool.h"

namespace fats {

ThreadPool::ThreadPool(int64_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ <= 1) return;
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int64_t w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    // Serial engine of record: the same tasks, in index order, inline.
    for (int64_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    next_index_ = 0;
    completed_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return completed_ == batch_size_; });
  fn_ = nullptr;
}

WriterThread::WriterThread() {
  // Started in the body, not the init list: thread_ is declared first in
  // the class, so an init-list start would let Loop() lock mu_ while the
  // mutex (and the rest of the members) are still being constructed.
  thread_ = std::thread([this] { Loop(); });
}

WriterThread::~WriterThread() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

void WriterThread::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WriterThread::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void WriterThread::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    // Drain the queue even under shutdown: the destructor's contract is
    // that every posted task runs before the thread exits.
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task();
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(int64_t worker) {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    while (next_index_ < batch_size_) {
      const int64_t index = next_index_++;
      const std::function<void(int64_t, int64_t)>* fn = fn_;
      lock.unlock();
      (*fn)(index, worker);
      lock.lock();
      if (++completed_ == batch_size_) done_cv_.notify_all();
    }
  }
}

}  // namespace fats
