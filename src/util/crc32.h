// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// One checksum for every framed byte stream in the tree: the durable
// journal (io/journal.h) and the wire frames of the transport layer
// (transport/wire_format.h) share this implementation, so a frame that
// round-trips one subsystem's validation round-trips the other's too.

#ifndef FATS_UTIL_CRC32_H_
#define FATS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fats {

/// CRC-32 (IEEE, reflected, polynomial 0xEDB88320) of `len` bytes.
/// Chainable via `seed` (pass a previous result to continue).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace fats

#endif  // FATS_UTIL_CRC32_H_
