// Buffered little-endian binary file IO for checkpoints.
//
// All multi-byte values are written little-endian regardless of host order
// (the library targets x86-64/ARM64 where this is a no-op, but the format
// is pinned for portability). Readers validate lengths against the
// remaining file size so corrupt or truncated files fail with a Status
// instead of an allocation blow-up.

#ifndef FATS_UTIL_BINARY_IO_H_
#define FATS_UTIL_BINARY_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace fats {

class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates). Check status() before use.
  explicit BinaryWriter(const std::string& path);

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteDouble(double value);
  void WriteFloat(float value);
  /// Length-prefixed (u64) byte string.
  void WriteString(const std::string& value);
  /// Length-prefixed arrays.
  void WriteI64Vector(const std::vector<int64_t>& values);
  void WriteFloatVector(const std::vector<float>& values);

  /// Flushes and reports the first error encountered, if any.
  Status Finish();
  const Status& status() const { return status_; }

 private:
  void WriteBytes(const void* data, size_t size);

  std::ofstream file_;
  Status status_;
};

class BinaryReader {
 public:
  /// Opens `path` for reading. Check status() before use.
  explicit BinaryReader(const std::string& path);

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<float> ReadFloat();
  Result<std::string> ReadString();
  Result<std::vector<int64_t>> ReadI64Vector();
  Result<std::vector<float>> ReadFloatVector();

  const Status& status() const { return status_; }
  /// Bytes left in the file.
  int64_t remaining() const { return size_ - position_; }

 private:
  Status ReadBytes(void* data, size_t size);

  std::ifstream file_;
  int64_t size_ = 0;
  int64_t position_ = 0;
  Status status_;
};

}  // namespace fats

#endif  // FATS_UTIL_BINARY_IO_H_
