// Wall-clock stopwatch for coarse timing in benches and examples.

#ifndef FATS_UTIL_STOPWATCH_H_
#define FATS_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fats {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fats

#endif  // FATS_UTIL_STOPWATCH_H_
