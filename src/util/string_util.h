// Small string helpers shared across the library.

#ifndef FATS_UTIL_STRING_UTIL_H_
#define FATS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fats {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace fats

#endif  // FATS_UTIL_STRING_UTIL_H_
