#include "util/crc32.h"

namespace fats {

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  // Table-driven reflected CRC-32 (IEEE 802.3). The table is computed once;
  // its contents are a pure function of the polynomial.
  static const uint32_t* kTable = [] {
    auto* table = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace fats
