// Minimal logging and CHECK macros.
//
// CHECK macros abort the process on violated invariants (programming errors);
// recoverable, data-dependent failures use util/status.h instead.

#ifndef FATS_UTIL_LOGGING_H_
#define FATS_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace fats {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal {

/// Accumulates a log line and emits it (to stderr) on destruction.
/// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Messages below this level are suppressed. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True if a message at `level` would currently be emitted.
bool LogLevelEnabled(LogLevel level);

#define FATS_LOG(level)                                               \
  if (::fats::LogLevelEnabled(::fats::LogLevel::k##level))            \
  ::fats::internal::LogMessage(::fats::LogLevel::k##level, __FILE__,  \
                               __LINE__)                              \
      .stream()

#define FATS_CHECK(condition)                                             \
  if (!(condition))                                                       \
  ::fats::internal::LogMessage(::fats::LogLevel::kFatal, __FILE__,        \
                               __LINE__)                                  \
          .stream()                                                       \
      << "Check failed: " #condition " "

#define FATS_CHECK_OP(a, b, op) \
  FATS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define FATS_CHECK_EQ(a, b) FATS_CHECK_OP(a, b, ==)
#define FATS_CHECK_NE(a, b) FATS_CHECK_OP(a, b, !=)
#define FATS_CHECK_LT(a, b) FATS_CHECK_OP(a, b, <)
#define FATS_CHECK_LE(a, b) FATS_CHECK_OP(a, b, <=)
#define FATS_CHECK_GT(a, b) FATS_CHECK_OP(a, b, >)
#define FATS_CHECK_GE(a, b) FATS_CHECK_OP(a, b, >=)

#define FATS_CHECK_OK(expr)                            \
  do {                                                 \
    ::fats::Status _st = (expr);                       \
    FATS_CHECK(_st.ok()) << _st.ToString();            \
  } while (false)

#define FATS_DCHECK(condition) FATS_CHECK(condition)

}  // namespace fats

#endif  // FATS_UTIL_LOGGING_H_
