// Status / Result error model in the Arrow / RocksDB idiom.
//
// Library entry points that can fail for data-dependent reasons return a
// `Status` (or `Result<T>` when they produce a value). Programming errors
// (broken invariants) abort via the CHECK macros in util/logging.h instead.

#ifndef FATS_UTIL_STATUS_H_
#define FATS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace fats {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
};

/// Returns the canonical name of `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the success case.
/// [[nodiscard]] on the type makes every dropped by-value return a compile
/// warning (an error under FATS_WERROR); intentional discards take
/// `(void)` plus a `// fats-lint: allow(discarded-status)` annotation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...(...)` works. `status` must not be OK.
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Requires ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK Status to the caller.
#define FATS_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::fats::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

// Evaluates a Result<T> expression, propagating errors, else binds the value.
#define FATS_ASSIGN_OR_RETURN(lhs, expr)        \
  FATS_ASSIGN_OR_RETURN_IMPL(                   \
      FATS_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define FATS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define FATS_CONCAT_NAME(x, y) FATS_CONCAT_NAME_IMPL(x, y)
#define FATS_CONCAT_NAME_IMPL(x, y) x##y

}  // namespace fats

#endif  // FATS_UTIL_STATUS_H_
