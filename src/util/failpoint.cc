#include "util/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <thread>

namespace fats::failpoint {
namespace {

struct ArmedSpec {
  int64_t remaining = 1;
  Action action = Action::kError;
};

struct Registry {
  std::mutex mu;
  std::set<std::string> sites;
  std::map<std::string, ArmedSpec> armed;
};

// Leaked singletons: failpoints are evaluated from static-destruction-free
// contexts (including inside std::_Exit-bound crash paths), so the state
// must never be torn down.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

Result<Action> ParseAction(const std::string& name) {
  if (name == "error") return Action::kError;
  if (name == "crash") return Action::kCrash;
  if (name == "torn-write") return Action::kTornWrite;
  if (name == "delay") return Action::kDelay;
  return Status::InvalidArgument("unknown failpoint action: " + name);
}

}  // namespace

Result<std::vector<Spec>> ParseSpecList(const std::string& text) {
  std::vector<Spec> specs;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const size_t c1 = item.find(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : item.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos || c1 == 0) {
      return Status::InvalidArgument(
          "failpoint spec must be site:hit_count:action, got: " + item);
    }
    Spec spec;
    spec.site = item.substr(0, c1);
    const std::string count_str = item.substr(c1 + 1, c2 - c1 - 1);
    char* end = nullptr;
    spec.hit_count = std::strtoll(count_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || count_str.empty() ||
        spec.hit_count < 1) {
      return Status::InvalidArgument(
          "failpoint hit_count must be a positive integer, got: " + item);
    }
    FATS_ASSIGN_OR_RETURN(spec.action, ParseAction(item.substr(c2 + 1)));
    specs.push_back(std::move(spec));
  }
  return specs;
}

Status ArmFromSpec(const std::string& text) {
  FATS_ASSIGN_OR_RETURN(std::vector<Spec> specs, ParseSpecList(text));
  for (const Spec& spec : specs) Arm(spec);
  return Status::OK();
}

void Arm(const Spec& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] =
      registry.armed.insert_or_assign(spec.site,
                                      ArmedSpec{spec.hit_count, spec.action});
  (void)it;
  if (inserted) ArmedCount().fetch_add(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed.clear();
  ArmedCount().store(0, std::memory_order_relaxed);
}

void ArmFromEnvOnce() {
  static const bool armed = [] {
    // Read once under the static-init guard, before any worker thread can
    // exist, so the mt-unsafety of getenv cannot bite.
    const char* env = std::getenv("FATS_FAILPOINTS");  // NOLINT(concurrency-mt-unsafe)
    if (env != nullptr && env[0] != '\0') {
      // A malformed env spec is a usage error, not a data error; surface it
      // loudly rather than silently running without fault injection.
      Status status = ArmFromSpec(env);
      if (!status.ok()) {
        std::fprintf(stderr, "FATS_FAILPOINTS: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
    return true;
  }();
  (void)armed;
}

bool AnyArmed() {
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

bool RegisterSite(const char* site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.insert(site);
  return true;
}

std::vector<std::string> RegisteredSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return std::vector<std::string>(registry.sites.begin(),
                                  registry.sites.end());
}

Triggered Evaluate(const char* site) {
  Action action;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.sites.insert(site);
    auto it = registry.armed.find(site);
    if (it == registry.armed.end()) return Triggered::kNone;
    if (--it->second.remaining > 0) return Triggered::kNone;
    action = it->second.action;
    registry.armed.erase(it);
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
  switch (action) {
    case Action::kError:
      return Triggered::kError;
    case Action::kCrash:
      std::_Exit(kCrashExitCode);
    case Action::kTornWrite:
      return Triggered::kTornWrite;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return Triggered::kNone;
  }
  return Triggered::kNone;
}

}  // namespace fats::failpoint
