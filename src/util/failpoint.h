// Deterministic failpoint injection.
//
// A failpoint is a named site in the code (every durable-write and
// round-boundary site in src/io, src/fl, src/core registers one) that can be
// armed to misbehave on a chosen hit:
//
//   error       the site reports an injected Status::IoError
//   crash       the process exits immediately with kCrashExitCode via
//               std::_Exit — no flushing, no destructors — simulating a kill
//               (bytes already handed to the OS page cache survive; bytes in
//               user-space stdio buffers are lost)
//   torn-write  like crash, but the journal writer first emits a partial
//               record frame, simulating a write torn mid-sector
//   delay       the site sleeps briefly (for schedule-perturbation tests)
//
// Arming is programmatic (Arm / ArmFromSpec), via FatsConfig::fault_spec, or
// via the FATS_FAILPOINTS environment variable; the spec grammar is a
// comma-separated list of `site:hit_count:action` triples, e.g.
//
//   FATS_FAILPOINTS="journal.append:3:crash,checkpoint.rename:1:error"
//
// `hit_count` is 1-based: the action fires on the Nth execution of the site
// after arming, and the spec disarms itself once fired. Hit counting is
// deterministic because the training loop itself is deterministic, which is
// what makes the crash-matrix test (kill at every site, recover, compare
// bitwise) reproducible.
//
// Disarmed cost: one function-local-static registration guard plus one
// relaxed atomic load per site execution — nothing measurable next to a
// training step. Sites self-register on first execution, so after a
// reference run RegisteredSites() enumerates every site that run crossed.

#ifndef FATS_UTIL_FAILPOINT_H_
#define FATS_UTIL_FAILPOINT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace fats::failpoint {

/// Exit code used by the crash / torn-write actions. Distinct from every
/// exit code the binaries use, so tests can assert the death was injected.
inline constexpr int kCrashExitCode = 86;

enum class Action {
  kError,
  kCrash,
  kTornWrite,
  kDelay,
};

struct Spec {
  std::string site;
  int64_t hit_count = 1;  // fire on the Nth hit after arming
  Action action = Action::kError;
};

/// Parses a `site:hit_count:action[,...]` spec list.
Result<std::vector<Spec>> ParseSpecList(const std::string& text);

/// Arms every spec in `text` (additive; later specs for the same site
/// replace earlier ones).
Status ArmFromSpec(const std::string& text);

/// Arms one spec. A second Arm for the same site replaces the first.
void Arm(const Spec& spec);

/// Disarms everything (registered sites stay registered).
void DisarmAll();

/// Arms from the FATS_FAILPOINTS environment variable, once per process.
/// Subsequent calls are no-ops, so every entry point may call it safely.
void ArmFromEnvOnce();

/// True if any spec is currently armed. Lock-free; the disarmed fast path
/// of every failpoint site is exactly this load.
bool AnyArmed();

/// Adds `site` to the registry (idempotent). Returns true, so it can seed a
/// function-local static. Sites register on first execution.
bool RegisterSite(const char* site);

/// Sorted names of every site registered so far in this process.
std::vector<std::string> RegisteredSites();

/// What a fired failpoint asks the site to do. kCrash and kDelay never
/// reach the caller (the crash exits; the delay sleeps and reports kNone).
enum class Triggered {
  kNone,
  kError,
  kTornWrite,
};

/// Counts a hit of `site` against its armed spec, if any, and performs or
/// reports the action. Call only when AnyArmed() — the macros below do.
Triggered Evaluate(const char* site);

}  // namespace fats::failpoint

#define FATS_FAILPOINT_CONCAT_INNER_(a, b) a##b
#define FATS_FAILPOINT_CONCAT_(a, b) FATS_FAILPOINT_CONCAT_INNER_(a, b)

/// Failpoint in a void context: crash and delay act; error and torn-write
/// have no channel to report through and are ignored.
#define FATS_FAILPOINT(site)                                              \
  do {                                                                    \
    static const bool FATS_FAILPOINT_CONCAT_(fats_fp_reg_, __LINE__) =    \
        ::fats::failpoint::RegisterSite(site);                            \
    (void)FATS_FAILPOINT_CONCAT_(fats_fp_reg_, __LINE__);                 \
    if (::fats::failpoint::AnyArmed()) {                                  \
      (void)::fats::failpoint::Evaluate(site);                            \
    }                                                                     \
  } while (0)

/// Failpoint in a Status-returning function: the error action returns an
/// injected Status::IoError from the enclosing function.
#define FATS_FAILPOINT_STATUS(site)                                       \
  do {                                                                    \
    static const bool FATS_FAILPOINT_CONCAT_(fats_fp_reg_, __LINE__) =    \
        ::fats::failpoint::RegisterSite(site);                            \
    (void)FATS_FAILPOINT_CONCAT_(fats_fp_reg_, __LINE__);                 \
    if (::fats::failpoint::AnyArmed() &&                                  \
        ::fats::failpoint::Evaluate(site) ==                              \
            ::fats::failpoint::Triggered::kError) {                       \
      return ::fats::Status::IoError(std::string("failpoint '") + site +  \
                                     "' injected an error");              \
    }                                                                     \
  } while (0)

#endif  // FATS_UTIL_FAILPOINT_H_
