// FRS — Federated Retraining from Scratch (baseline, §6.1.4).
//
// The trivially exact unlearning method: delete the targets, re-initialize
// the model, and retrain FedAvg for the full R rounds on the remaining data.
// Maximal communication and computation cost; the benches use it as the
// upper anchor that FATS is compared against.

#ifndef FATS_BASELINES_FRS_H_
#define FATS_BASELINES_FRS_H_

#include <cstdint>
#include <vector>

#include "core/sample_unlearner.h"
#include "data/federated_dataset.h"
#include "fl/fedavg.h"
#include "util/status.h"

namespace fats {

class FrsUnlearner {
 public:
  /// `trainer` holds the deployed model; `data` is the (mutable) federated
  /// dataset the trainer reads. Both are borrowed.
  FrsUnlearner(FedAvgTrainer* trainer, FederatedDataset* data)
      : trainer_(trainer), data_(data) {}

  /// Deletes the samples and retrains from scratch for `retrain_rounds`
  /// rounds (pass the original R for the paper's protocol).
  Result<UnlearningOutcome> UnlearnSamples(
      const std::vector<SampleRef>& targets, int64_t retrain_rounds);

  /// Deletes the clients and retrains from scratch.
  Result<UnlearningOutcome> UnlearnClients(const std::vector<int64_t>& targets,
                                           int64_t retrain_rounds);

 private:
  Result<UnlearningOutcome> Retrain(int64_t retrain_rounds);

  FedAvgTrainer* trainer_;
  FederatedDataset* data_;
};

}  // namespace fats

#endif  // FATS_BASELINES_FRS_H_
