// FR² — Federated Rapid Retraining (Liu et al., INFOCOM 2022; baseline,
// §6.1.4).
//
// Approximate unlearning: instead of retraining from scratch, FR² continues
// from the deployed model and runs a small number of recovery rounds in
// which clients take diagonal-Fisher-preconditioned steps with momentum on
// their remaining data (the diagonal FIM approximates the Hessian used by
// the paper's AdaHessian variant; momentum stabilizes utility). This is
// cheap but *not* exact: the deleted data's influence is only attenuated,
// which is what the Table 1 membership-inference bench probes.

#ifndef FATS_BASELINES_FR2_H_
#define FATS_BASELINES_FR2_H_

#include <cstdint>
#include <vector>

#include "core/sample_unlearner.h"
#include "data/federated_dataset.h"
#include "fl/fedavg.h"
#include "util/status.h"

namespace fats {

struct Fr2Options {
  /// Recovery rounds run after a deletion (the method's cost knob).
  int64_t recovery_rounds = 5;
  /// Damping added to the Fisher diagonal before inversion. Near a
  /// stationary point the Fisher diagonal is tiny, so the damping floor is
  /// what keeps the preconditioned step bounded (the residual instability
  /// is the fluctuation the paper reports for FR²).
  double damping = 0.25;
  /// Momentum coefficient for the client-side velocity.
  double momentum = 0.9;
  /// Scales the trainer's learning rate during recovery.
  double lr_scale = 0.2;
  /// EMA factor for the Fisher diagonal accumulator.
  double fisher_ema = 0.9;
};

class Fr2Unlearner {
 public:
  Fr2Unlearner(FedAvgTrainer* trainer, FederatedDataset* data,
               const Fr2Options& options)
      : trainer_(trainer), data_(data), options_(options) {}

  Result<UnlearningOutcome> UnlearnSamples(
      const std::vector<SampleRef>& targets);
  Result<UnlearningOutcome> UnlearnClients(
      const std::vector<int64_t>& targets);

 private:
  Result<UnlearningOutcome> Recover();
  /// One FR² recovery round: K clients take E preconditioned-momentum steps
  /// from the global model; the server averages.
  void RecoveryRound(int64_t round);

  FedAvgTrainer* trainer_;
  FederatedDataset* data_;
  Fr2Options options_;
};

}  // namespace fats

#endif  // FATS_BASELINES_FR2_H_
