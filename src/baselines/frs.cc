#include "baselines/frs.h"

#include "rng/philox.h"
#include "util/stopwatch.h"

namespace fats {

Result<UnlearningOutcome> FrsUnlearner::UnlearnSamples(
    const std::vector<SampleRef>& targets, int64_t retrain_rounds) {
  for (const SampleRef& target : targets) {
    FATS_RETURN_NOT_OK(data_->RemoveSample(target));
  }
  return Retrain(retrain_rounds);
}

Result<UnlearningOutcome> FrsUnlearner::UnlearnClients(
    const std::vector<int64_t>& targets, int64_t retrain_rounds) {
  for (int64_t target : targets) {
    FATS_RETURN_NOT_OK(data_->RemoveClient(target));
  }
  return Retrain(retrain_rounds);
}

Result<UnlearningOutcome> FrsUnlearner::Retrain(int64_t retrain_rounds) {
  Stopwatch timer;
  // Fresh initialization and fresh randomness: a from-scratch run on the
  // reduced data.
  trainer_->BumpGeneration();
  trainer_->ResetModel(SplitMix64(trainer_->options().seed +
                                  trainer_->generation()));
  trainer_->set_recomputation_mode(true);
  trainer_->RunRounds(retrain_rounds);
  trainer_->set_recomputation_mode(false);

  UnlearningOutcome outcome;
  outcome.recomputed = true;
  outcome.restart_iteration = 1;
  outcome.recomputed_rounds = retrain_rounds;
  outcome.recomputed_iterations =
      retrain_rounds * trainer_->options().local_iters_e;
  outcome.wall_seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace fats
