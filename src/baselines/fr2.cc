#include "baselines/fr2.h"

#include <cmath>

#include "fl/client.h"
#include "fl/server.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fats {

Result<UnlearningOutcome> Fr2Unlearner::UnlearnSamples(
    const std::vector<SampleRef>& targets) {
  for (const SampleRef& target : targets) {
    FATS_RETURN_NOT_OK(data_->RemoveSample(target));
  }
  return Recover();
}

Result<UnlearningOutcome> Fr2Unlearner::UnlearnClients(
    const std::vector<int64_t>& targets) {
  for (int64_t target : targets) {
    FATS_RETURN_NOT_OK(data_->RemoveClient(target));
  }
  return Recover();
}

Result<UnlearningOutcome> Fr2Unlearner::Recover() {
  Stopwatch timer;
  trainer_->BumpGeneration();
  trainer_->set_recomputation_mode(true);
  for (int64_t r = 0; r < options_.recovery_rounds; ++r) {
    RecoveryRound(r + 1);
  }
  trainer_->set_recomputation_mode(false);

  UnlearningOutcome outcome;
  outcome.recomputed = true;
  outcome.restart_iteration = -1;  // continues from the deployed model
  outcome.recomputed_rounds = options_.recovery_rounds;
  outcome.recomputed_iterations =
      options_.recovery_rounds * trainer_->options().local_iters_e;
  outcome.wall_seconds = timer.ElapsedSeconds();
  return outcome;
}

void Fr2Unlearner::RecoveryRound(int64_t round) {
  Model* model = trainer_->model();
  const FedAvgOptions& opts = trainer_->options();
  const int64_t model_params = model->NumParameters();

  StreamId sel_id;
  sel_id.purpose = RngPurpose::kClientSampling;
  sel_id.generation = trainer_->generation();
  sel_id.round = static_cast<uint64_t>(1000000 + round);  // recovery phase
  RngStream sel_stream(opts.seed, sel_id);
  const int64_t k = std::min<int64_t>(opts.clients_per_round_k,
                                      data_->num_active_clients());
  std::vector<int64_t> selected =
      ServerRuntime::SampleClientsWithoutReplacement(*data_, k, &sel_stream);
  trainer_->comm_stats().RecordBroadcast(
      static_cast<int64_t>(selected.size()), model_params);

  // Recovery reuses the trainer's client runner: per-client chains run as
  // independent tasks over pre-derived stream keys (the velocity/Fisher
  // accumulators are task-local), and losses/local models are committed in
  // selection order — bit-identical to the serial loop.
  const Tensor global = model->GetParameters();
  const double lr = opts.learning_rate * options_.lr_scale;
  const size_t n_sel = selected.size();
  struct RecoveryChain {
    Tensor params;
    std::vector<double> step_losses;
  };
  std::vector<RecoveryChain> chains(n_sel);
  std::vector<std::vector<uint64_t>> stream_keys(n_sel);
  std::vector<int64_t> batch_sizes(n_sel);
  for (size_t s = 0; s < n_sel; ++s) {
    const int64_t client = selected[s];
    batch_sizes[s] =
        std::min<int64_t>(opts.batch_b, data_->num_active_samples(client));
    stream_keys[s].reserve(static_cast<size_t>(opts.local_iters_e));
    for (int64_t e = 1; e <= opts.local_iters_e; ++e) {
      StreamId batch_id;
      batch_id.purpose = RngPurpose::kMinibatchSampling;
      batch_id.generation = trainer_->generation();
      batch_id.round = static_cast<uint64_t>(1000000 + round);
      batch_id.client = static_cast<uint64_t>(client);
      batch_id.iteration = static_cast<uint64_t>(e);
      stream_keys[s].push_back(DeriveStreamKey(opts.seed, batch_id));
    }
  }
  trainer_->client_runner()->ForEachClient(
      static_cast<int64_t>(n_sel), [&](int64_t task, Model* m) {
        const size_t s = static_cast<size_t>(task);
        const int64_t client = selected[s];
        m->SetParameters(global);
        ClientRuntime runtime(data_, m);
        // Per-client velocity and Fisher-diagonal accumulators (flat
        // vectors).
        Tensor velocity({model_params});
        Tensor fisher({model_params});
        bool fisher_init = false;
        for (int64_t e = 1; e <= opts.local_iters_e; ++e) {
          if (batch_sizes[s] == 0) break;
          RngStream batch_stream(stream_keys[s][static_cast<size_t>(e - 1)]);
          std::vector<int64_t> indices = runtime.SampleMinibatch(
              client, batch_sizes[s], &batch_stream);
          Batch batch = data_->MakeBatch(client, indices);
          chains[s].step_losses.push_back(
              m->ComputeLossAndGradients(batch.inputs, batch.labels));
          Tensor grad = m->GetGradients();
          // Fisher diagonal EMA: F ← β·F + (1−β)·g⊙g.
          float* fisher_data = fisher.data();
          const float* grad_data = grad.data();
          const float beta = static_cast<float>(options_.fisher_ema);
          for (int64_t i = 0; i < model_params; ++i) {
            const float g2 = grad_data[i] * grad_data[i];
            fisher_data[i] =
                fisher_init ? beta * fisher_data[i] + (1.0f - beta) * g2 : g2;
          }
          fisher_init = true;
          // Momentum velocity and preconditioned step:
          // v ← μ·v + g ; θ ← θ − lr · v / (sqrt(F) + damping).
          Tensor params = m->GetParameters();
          float* param_data = params.data();
          float* velocity_data = velocity.data();
          const float mu = static_cast<float>(options_.momentum);
          const float damping = static_cast<float>(options_.damping);
          const float step = static_cast<float>(lr);
          for (int64_t i = 0; i < model_params; ++i) {
            velocity_data[i] = mu * velocity_data[i] + grad_data[i];
            param_data[i] -= step * velocity_data[i] /
                             (std::sqrt(fisher_data[i]) + damping);
          }
          m->SetParameters(params);
        }
        chains[s].params = m->GetParameters();
      });
  std::vector<Tensor> locals;
  locals.reserve(n_sel);
  double loss_sum = 0.0;
  int64_t loss_count = 0;
  for (size_t s = 0; s < n_sel; ++s) {
    for (double loss : chains[s].step_losses) {
      loss_sum += loss;
      ++loss_count;
    }
    locals.push_back(std::move(chains[s].params));
  }
  trainer_->comm_stats().RecordUpload(static_cast<int64_t>(locals.size()),
                                      model_params);
  trainer_->comm_stats().RecordRound();
  if (!locals.empty()) {
    model->SetParameters(ServerRuntime::AverageModels(locals));
  }

  RoundRecord record;
  record.round = trainer_->rounds_completed() + round;
  record.test_accuracy = trainer_->EvaluateTestAccuracy();
  record.mean_local_loss =
      loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
  record.recomputation = true;
  trainer_->mutable_log()->Append(record);
}

}  // namespace fats
