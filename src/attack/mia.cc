#include "attack/mia.h"

#include <algorithm>
#include <cmath>

#include "rng/rng_stream.h"
#include "rng/sampling.h"
#include "util/string_util.h"

namespace fats {

std::string MiaResult::ToString() const {
  return StrFormat(
      "MIA accuracy %.2f%% ± %.2f%%, precision %.2f%% ± %.2f%% (%lld trials)",
      100.0 * accuracy_mean, 100.0 * accuracy_std, 100.0 * precision_mean,
      100.0 * precision_std, (long long)trials);
}

namespace internal {

double FitLossThreshold(const std::vector<double>& member_losses,
                        const std::vector<double>& nonmember_losses) {
  // Candidate thresholds: all observed losses. Predict member iff
  // loss <= threshold; pick the candidate with best calibration accuracy.
  std::vector<double> candidates = member_losses;
  candidates.insert(candidates.end(), nonmember_losses.begin(),
                    nonmember_losses.end());
  std::sort(candidates.begin(), candidates.end());
  double best_threshold =
      candidates.empty() ? 0.0 : candidates[candidates.size() / 2];
  double best_accuracy = -1.0;
  for (double threshold : candidates) {
    int64_t correct = 0;
    for (double loss : member_losses) {
      if (loss <= threshold) ++correct;
    }
    for (double loss : nonmember_losses) {
      if (loss > threshold) ++correct;
    }
    const double accuracy =
        static_cast<double>(correct) /
        static_cast<double>(member_losses.size() + nonmember_losses.size());
    if (accuracy > best_accuracy) {
      best_accuracy = accuracy;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

std::pair<double, double> FitLogistic(
    const std::vector<double>& member_losses,
    const std::vector<double>& nonmember_losses) {
  // Gradient descent on logistic loss; member = positive class, lower loss
  // should mean more likely member, so w is typically negative.
  double w = 0.0;
  double c = 0.0;
  const double lr = 0.5;
  const int iters = 300;
  const double n = static_cast<double>(member_losses.size() +
                                       nonmember_losses.size());
  for (int it = 0; it < iters; ++it) {
    double gw = 0.0;
    double gc = 0.0;
    auto accumulate = [&](double x, double y) {
      const double p = 1.0 / (1.0 + std::exp(-(w * x + c)));
      gw += (p - y) * x;
      gc += (p - y);
    };
    for (double x : member_losses) accumulate(x, 1.0);
    for (double x : nonmember_losses) accumulate(x, 0.0);
    w -= lr * gw / n;
    c -= lr * gc / n;
  }
  return {w, c};
}

}  // namespace internal

namespace {

/// Gathers the subset of `losses` at `positions`.
std::vector<double> Gather(const std::vector<double>& losses,
                           const std::vector<int64_t>& positions) {
  std::vector<double> out;
  out.reserve(positions.size());
  for (int64_t pos : positions) {
    out.push_back(losses[static_cast<size_t>(pos)]);
  }
  return out;
}

}  // namespace

Result<MiaResult> RunMembershipInference(Model* model,
                                         const Batch& member_pool,
                                         const Batch& nonmember_pool,
                                         const MiaOptions& options) {
  if (member_pool.size() < 2 || nonmember_pool.size() < 2) {
    return Status::InvalidArgument(
        "MIA needs at least 2 members and 2 non-members");
  }
  if (options.trials < 1) {
    return Status::InvalidArgument("MIA needs at least 1 trial");
  }
  // Query the model once per pool.
  const std::vector<double> member_losses =
      model->PerExampleLoss(member_pool.inputs, member_pool.labels);
  const std::vector<double> nonmember_losses =
      model->PerExampleLoss(nonmember_pool.inputs, nonmember_pool.labels);

  std::vector<double> accuracies;
  std::vector<double> precisions;
  accuracies.reserve(static_cast<size_t>(options.trials));
  precisions.reserve(static_cast<size_t>(options.trials));

  for (int64_t trial = 0; trial < options.trials; ++trial) {
    StreamId id;
    id.purpose = RngPurpose::kAttack;
    id.iteration = static_cast<uint64_t>(trial);
    RngStream rng(options.seed, id);

    // Split each pool into calibration and evaluation.
    const int64_t n_members = member_pool.size();
    const int64_t n_nonmembers = nonmember_pool.size();
    std::vector<int64_t> member_order =
        SampleWithoutReplacement(n_members, n_members, &rng);
    std::vector<int64_t> nonmember_order =
        SampleWithoutReplacement(n_nonmembers, n_nonmembers, &rng);
    const int64_t member_cal = std::max<int64_t>(
        1, static_cast<int64_t>(options.calibration_fraction * n_members));
    const int64_t nonmember_cal = std::max<int64_t>(
        1,
        static_cast<int64_t>(options.calibration_fraction * n_nonmembers));

    std::vector<int64_t> member_cal_idx(member_order.begin(),
                                        member_order.begin() + member_cal);
    std::vector<int64_t> member_eval_idx(member_order.begin() + member_cal,
                                         member_order.end());
    std::vector<int64_t> nonmember_cal_idx(
        nonmember_order.begin(), nonmember_order.begin() + nonmember_cal);
    std::vector<int64_t> nonmember_eval_idx(
        nonmember_order.begin() + nonmember_cal, nonmember_order.end());
    if (member_eval_idx.empty()) member_eval_idx = member_cal_idx;
    if (nonmember_eval_idx.empty()) nonmember_eval_idx = nonmember_cal_idx;
    // Cap the evaluation split.
    if (static_cast<int64_t>(member_eval_idx.size()) >
        options.eval_per_class) {
      member_eval_idx.resize(static_cast<size_t>(options.eval_per_class));
    }
    if (static_cast<int64_t>(nonmember_eval_idx.size()) >
        options.eval_per_class) {
      nonmember_eval_idx.resize(static_cast<size_t>(options.eval_per_class));
    }

    const std::vector<double> cal_member = Gather(member_losses,
                                                  member_cal_idx);
    const std::vector<double> cal_nonmember =
        Gather(nonmember_losses, nonmember_cal_idx);
    const std::vector<double> eval_member = Gather(member_losses,
                                                   member_eval_idx);
    const std::vector<double> eval_nonmember =
        Gather(nonmember_losses, nonmember_eval_idx);

    // Predict membership on the evaluation split.
    int64_t true_positive = 0;
    int64_t false_positive = 0;
    int64_t correct = 0;
    if (options.kind == MiaAttackKind::kLossThreshold) {
      const double threshold =
          internal::FitLossThreshold(cal_member, cal_nonmember);
      for (double loss : eval_member) {
        if (loss <= threshold) {
          ++correct;
          ++true_positive;
        }
      }
      for (double loss : eval_nonmember) {
        if (loss > threshold) {
          ++correct;
        } else {
          ++false_positive;
        }
      }
    } else {
      const auto [w, c] = internal::FitLogistic(cal_member, cal_nonmember);
      auto is_member = [w, c](double loss) {
        return 1.0 / (1.0 + std::exp(-(w * loss + c))) >= 0.5;
      };
      for (double loss : eval_member) {
        if (is_member(loss)) {
          ++correct;
          ++true_positive;
        }
      }
      for (double loss : eval_nonmember) {
        if (is_member(loss)) {
          ++false_positive;
        } else {
          ++correct;
        }
      }
    }

    const double total = static_cast<double>(eval_member.size() +
                                             eval_nonmember.size());
    accuracies.push_back(static_cast<double>(correct) / total);
    const int64_t positives = true_positive + false_positive;
    // Convention: with no positive predictions, precision is a coin flip.
    precisions.push_back(positives == 0
                             ? 0.5
                             : static_cast<double>(true_positive) /
                                   static_cast<double>(positives));
  }

  auto mean_std = [](const std::vector<double>& values) {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());
    return std::pair<double, double>(mean, std::sqrt(var));
  };

  MiaResult result;
  result.trials = options.trials;
  std::tie(result.accuracy_mean, result.accuracy_std) = mean_std(accuracies);
  std::tie(result.precision_mean, result.precision_std) =
      mean_std(precisions);
  return result;
}

}  // namespace fats
