// Membership inference attack (Shokri et al. 2017 family).
//
// Used by the Table 1 bench to probe unlearning efficacy: after a model has
// "unlearned" a set of samples, an attacker who can query per-example losses
// should not be able to tell those samples apart from never-seen data. For
// an exactly-unlearned model the attack degenerates to coin flipping
// (accuracy/precision ≈ 50%); residual influence (as with approximate
// methods like FR²) shows up as deviation from 50%.
//
// Two attack instantiations:
//   * kLossThreshold — the Yeom-style attack: predict "member" when the
//     example's loss is below a threshold fitted on a calibration split.
//   * kShadowLogistic — a one-dimensional logistic model on the loss,
//     fitted on the calibration split (a minimal shadow-attack stand-in).

#ifndef FATS_ATTACK_MIA_H_
#define FATS_ATTACK_MIA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "util/status.h"

namespace fats {

enum class MiaAttackKind {
  kLossThreshold,
  kShadowLogistic,
};

struct MiaOptions {
  MiaAttackKind kind = MiaAttackKind::kLossThreshold;
  /// Independent attack repetitions (the paper runs 100).
  int64_t trials = 100;
  /// Examples per class (member / non-member) per trial evaluation split.
  int64_t eval_per_class = 16;
  /// Fraction of each pool used for threshold calibration.
  double calibration_fraction = 0.5;
  uint64_t seed = 1;
};

struct MiaResult {
  double accuracy_mean = 0.0;
  double accuracy_std = 0.0;
  double precision_mean = 0.0;
  double precision_std = 0.0;
  int64_t trials = 0;

  std::string ToString() const;
};

/// Runs the attack against `model`: `member_pool` are examples whose
/// membership the attacker tries to establish (e.g. the unlearned samples),
/// `nonmember_pool` are examples never seen in training.
Result<MiaResult> RunMembershipInference(Model* model,
                                         const Batch& member_pool,
                                         const Batch& nonmember_pool,
                                         const MiaOptions& options);

namespace internal {

/// Picks the loss threshold maximizing accuracy on the calibration arrays
/// (members should have lower loss). Exposed for tests.
double FitLossThreshold(const std::vector<double>& member_losses,
                        const std::vector<double>& nonmember_losses);

/// Fits a 1-D logistic regression score(loss) = sigmoid(w·loss + c) with
/// members as the positive class; returns (w, c). Exposed for tests.
std::pair<double, double> FitLogistic(
    const std::vector<double>& member_losses,
    const std::vector<double>& nonmember_losses);

}  // namespace internal

}  // namespace fats

#endif  // FATS_ATTACK_MIA_H_
