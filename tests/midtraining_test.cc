// Mid-training unlearning: requests issued while training is in progress
// re-compute only the executed prefix; training then continues on the
// reduced data (the paper's Figure 1 protocol).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/client_unlearner.h"
#include "core/sample_unlearner.h"
#include "test_workloads.h"

namespace fats {
namespace {

TEST(TrainUntilTest, IncrementalEqualsOneShot) {
  FederatedDataset data_a = TinyImageData(6, 10);
  FederatedDataset data_b = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer one_shot(TinyModelSpec(), config, &data_a);
  one_shot.Train();
  FatsTrainer incremental(TinyModelSpec(), config, &data_b);
  incremental.TrainUntil(2);
  incremental.TrainUntil(5);   // mid-round stop
  incremental.TrainUntil(7);
  incremental.TrainUntil(12);
  EXPECT_TRUE(incremental.global_params().BitwiseEquals(
      one_shot.global_params()));
  EXPECT_EQ(incremental.trained_through(), 12);
  EXPECT_EQ(incremental.log().records().size(),
            one_shot.log().records().size());
}

TEST(TrainUntilTest, TrainedThroughTracksProgress) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  EXPECT_EQ(trainer.trained_through(), 0);
  trainer.TrainUntil(5);
  EXPECT_EQ(trainer.trained_through(), 5);
  trainer.TrainUntil(5);  // no-op
  EXPECT_EQ(trainer.trained_through(), 5);
  trainer.TrainUntil(12);
  EXPECT_EQ(trainer.trained_through(), 12);
}

TEST(TrainUntilDeathTest, CannotTrainBackwards) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.TrainUntil(6);
  EXPECT_DEATH(trainer.TrainUntil(3), "train backwards");
}

TEST(MidTrainingTest, SampleUnlearnThenContinue) {
  FederatedDataset data = TinyImageData(8, 10);
  FatsConfig config = TinyFatsConfig(8, 10, 6, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  const int64_t t_u = 9;  // end of round 3 of 6
  trainer.TrainUntil(t_u);
  // Target that participated in the prefix.
  SampleRef target{-1, -1};
  for (int64_t k = 0; k < data.num_clients() && target.client < 0; ++k) {
    for (int64_t i = 0; i < data.samples_of(k); ++i) {
      const int64_t use = trainer.store().EarliestSampleUse({k, i});
      if (use >= 1 && use <= t_u) {
        target = {k, i};
        break;
      }
    }
  }
  ASSERT_GE(target.client, 0);
  SampleUnlearner unlearner(&trainer);
  UnlearningOutcome outcome = unlearner.Unlearn(target, t_u).value();
  EXPECT_TRUE(outcome.recomputed);
  // The re-computation horizon is the executed prefix, not T.
  EXPECT_LE(outcome.recomputed_iterations, t_u);
  EXPECT_EQ(trainer.trained_through(), t_u);
  // Continue training to completion on the reduced data.
  trainer.TrainUntil(config.total_iters_t());
  EXPECT_EQ(trainer.trained_through(), config.total_iters_t());
  EXPECT_EQ(trainer.store().EarliestSampleUse(target), -1);
  EXPECT_GT(trainer.EvaluateTestAccuracy(), 0.5);
}

TEST(MidTrainingTest, ClientUnlearnThenContinue) {
  FederatedDataset data = TinyImageData(10, 10);
  FatsConfig config = TinyFatsConfig(10, 10, 6, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  const int64_t t_u = 9;
  trainer.TrainUntil(t_u);
  int64_t target = -1;
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    const int64_t round = trainer.store().EarliestClientRound(k);
    if (round >= 1 && round <= 3) {
      target = k;
      break;
    }
  }
  ASSERT_GE(target, 0);
  ClientUnlearner unlearner(&trainer);
  UnlearningOutcome outcome = unlearner.Unlearn(target, t_u).value();
  EXPECT_TRUE(outcome.recomputed);
  EXPECT_LE(outcome.recomputed_iterations, t_u);
  trainer.TrainUntil(config.total_iters_t());
  // The continued training never selects the removed client.
  EXPECT_EQ(trainer.store().EarliestClientRound(target), -1);
}

TEST(MidTrainingTest, RequestBeyondTrainedPrefixRejected) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.TrainUntil(6);
  SampleUnlearner unlearner(&trainer);
  // request_iter = 9 > trained_through = 6.
  EXPECT_FALSE(unlearner.Unlearn({0, 0}, 9).ok());
}

// The recursive Definition-1 scenario: unlearn mid-training, continue to T;
// the resulting sampling-history distribution must equal fresh training on
// the reduced data. Tiny discrete instance, two-sample chi-square.
TEST(MidTrainingTest, ExactnessOfUnlearnThenContinue) {
  constexpr int64_t kClients = 3;
  constexpr int64_t kSamples = 3;
  constexpr int64_t kRounds = 3;
  auto make_config = [](uint64_t seed) {
    FatsConfig config;
    config.clients_m = kClients;
    config.samples_per_client_n = kSamples;
    config.rounds_r = kRounds;
    config.local_iters_e = 1;
    config.rho_c = 1.0;       // K = 1
    config.rho_s = 1.0 / 3.0; // b = 1
    config.learning_rate = 0.1;
    config.seed = seed;
    return config;
  };
  auto encode = [](const FatsTrainer& trainer) {
    std::string out;
    for (int64_t r = 1; r <= kRounds; ++r) {
      const std::vector<int64_t>* selection =
          trainer.store().GetClientSelection(r);
      if (selection == nullptr) continue;
      out += "R[";
      for (int64_t k : *selection) out += std::to_string(k) + ",";
      out += "]";
      for (int64_t k = 0; k < kClients; ++k) {
        const std::vector<int64_t>* batch =
            trainer.store().GetMinibatch(r, k);
        if (batch == nullptr) continue;
        // Sequential appends: `"B" + std::to_string(k) + ...` trips GCC
        // 12's -Wrestrict false positive (PR 105651) at -O3 under -Werror.
        out += "B";
        out += std::to_string(k);
        out += "(";
        for (int64_t i : *batch) {
          out += std::to_string(i);
          out += ",";
        }
        out += ")";
      }
    }
    return out;
  };

  const SampleRef target{0, 1};
  const int64_t t_u = 2;  // request after round 2 of 3
  const int trials = 3000;
  std::map<std::string, int> fresh_counts;
  std::map<std::string, int> unlearned_counts;
  for (int trial = 0; trial < trials; ++trial) {
    {
      FederatedDataset data = TinyImageData(kClients, kSamples);
      ASSERT_TRUE(data.RemoveSample(target).ok());
      FatsTrainer trainer(TinyModelSpec(),
                          make_config(40000 + static_cast<uint64_t>(trial)),
                          &data);
      trainer.Train();
      fresh_counts[encode(trainer)]++;
    }
    {
      FederatedDataset data = TinyImageData(kClients, kSamples);
      FatsConfig config = make_config(90000 + static_cast<uint64_t>(trial));
      FatsTrainer trainer(TinyModelSpec(), config, &data);
      trainer.TrainUntil(t_u);
      SampleUnlearner unlearner(&trainer);
      ASSERT_TRUE(unlearner.Unlearn(target, t_u).ok());
      trainer.TrainUntil(config.total_iters_t());
      unlearned_counts[encode(trainer)]++;
    }
  }
  // Two-sample chi-square with rare-bucket pooling.
  std::map<std::string, std::pair<int, int>> merged;
  for (const auto& [key, count] : fresh_counts) merged[key].first = count;
  for (const auto& [key, count] : unlearned_counts) {
    merged[key].second = count;
  }
  double chi2 = 0.0;
  int dof = -1;
  double rare_a = 0.0;
  double rare_b = 0.0;
  for (const auto& [key, pair] : merged) {
    const double total = pair.first + pair.second;
    if (total < 20.0) {
      rare_a += pair.first;
      rare_b += pair.second;
      continue;
    }
    const double expected = total / 2.0;
    chi2 += (pair.first - expected) * (pair.first - expected) / expected;
    chi2 += (pair.second - expected) * (pair.second - expected) / expected;
    ++dof;
  }
  if (rare_a + rare_b >= 20.0) {
    const double expected = (rare_a + rare_b) / 2.0;
    chi2 += (rare_a - expected) * (rare_a - expected) / expected;
    chi2 += (rare_b - expected) * (rare_b - expected) / expected;
    ++dof;
  }
  ASSERT_GT(dof, 0);
  // 99.9% critical value via Wilson-Hilferty.
  const double z = 3.0902;
  const double d = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * d) + z * std::sqrt(2.0 / (9.0 * d));
  const double critical = d * term * term * term;
  EXPECT_LT(chi2, critical)
      << "mid-training unlearn+continue is not exact (dof=" << dof << ")";
}

}  // namespace
}  // namespace fats
