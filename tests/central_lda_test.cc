// Tests for the central-corpus label-Dirichlet partition path (the paper's
// literal simulated-federated pipeline) and FATS training on the unequal
// shards it produces.

#include <gtest/gtest.h>

#include <set>

#include "core/sample_unlearner.h"
#include "data/paper_configs.h"

namespace fats {
namespace {

DatasetProfile CentralLdaProfile() {
  DatasetProfile profile = ScaledProfile("mnist").value();
  profile.clients_m = 30;
  profile.rounds_r = 5;
  profile.test_size = 120;
  profile.central_lda_partition = true;
  return profile;
}

TEST(CentralLdaTest, CorpusFullyDistributed) {
  DatasetProfile profile = CentralLdaProfile();
  FederatedDataset data = BuildFederatedData(profile, 1);
  EXPECT_EQ(data.num_clients(), profile.clients_m);
  int64_t total = 0;
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    EXPECT_GE(data.samples_of(k), 1) << "client " << k << " got no data";
    total += data.samples_of(k);
  }
  // Up to a few duplicates injected for empty shards.
  EXPECT_GE(total, profile.clients_m * profile.samples_per_client_n);
  EXPECT_LE(total,
            profile.clients_m * profile.samples_per_client_n +
                profile.clients_m);
}

TEST(CentralLdaTest, ShardsAreHeterogeneousInSizeAndLabels) {
  DatasetProfile profile = CentralLdaProfile();
  profile.dirichlet_beta = 0.1;  // strong skew
  FederatedDataset data = BuildFederatedData(profile, 1);
  std::set<int64_t> sizes;
  int64_t single_label_clients = 0;
  for (int64_t k = 0; k < data.num_clients(); ++k) {
    sizes.insert(data.samples_of(k));
    std::set<int64_t> labels(data.client_data(k).labels().begin(),
                             data.client_data(k).labels().end());
    if (labels.size() <= 2) ++single_label_clients;
  }
  EXPECT_GT(sizes.size(), 3u) << "LDA shards should vary in size";
  EXPECT_GT(single_label_clients, 0)
      << "beta=0.1 should produce label-concentrated shards";
}

TEST(CentralLdaTest, DeterministicInSeed) {
  DatasetProfile profile = CentralLdaProfile();
  FederatedDataset a = BuildFederatedData(profile, 5);
  FederatedDataset b = BuildFederatedData(profile, 5);
  ASSERT_EQ(a.samples_of(0), b.samples_of(0));
  EXPECT_TRUE(
      a.client_data(0).features().BitwiseEquals(b.client_data(0).features()));
}

TEST(CentralLdaTest, FatsTrainsOnUnequalShards) {
  DatasetProfile profile = CentralLdaProfile();
  FederatedDataset data = BuildFederatedData(profile, 1);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 3;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  EXPECT_EQ(trainer.log().records().size(),
            static_cast<size_t>(profile.rounds_r));
  EXPECT_GT(trainer.EvaluateTestAccuracy(), 0.3);
}

TEST(CentralLdaTest, UnlearningWorksOnUnequalShards) {
  DatasetProfile profile = CentralLdaProfile();
  FederatedDataset data = BuildFederatedData(profile, 1);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 3;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  // Unlearn a used sample from the smallest shard (worst case for the
  // batch-size clamp).
  int64_t smallest = 0;
  for (int64_t k = 1; k < data.num_clients(); ++k) {
    if (data.samples_of(k) < data.samples_of(smallest)) smallest = k;
  }
  SampleUnlearner unlearner(&trainer);
  // Delete samples from the smallest shard one at a time until one remains.
  while (data.num_active_samples(smallest) > 1) {
    const int64_t index = data.active_sample_indices(smallest)[0];
    ASSERT_TRUE(
        unlearner.Unlearn({smallest, index}, config.total_iters_t()).ok());
  }
  EXPECT_EQ(data.num_active_samples(smallest), 1);
}

}  // namespace
}  // namespace fats
