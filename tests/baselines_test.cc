#include <gtest/gtest.h>

#include "baselines/fr2.h"
#include "baselines/frs.h"
#include "test_workloads.h"

namespace fats {
namespace {

FedAvgOptions SmallOptions() {
  FedAvgOptions options;
  options.clients_per_round_k = 2;
  options.local_iters_e = 3;
  options.batch_b = 4;
  options.learning_rate = 0.1;
  options.seed = 11;
  return options;
}

TEST(FrsTest, SampleUnlearnRetrainsFromScratch) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(8);
  const Tensor deployed = trainer.global_params();
  FrsUnlearner unlearner(&trainer, &data);
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnSamples({{0, 1}, {2, 5}}, /*retrain_rounds=*/8);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->recomputed);
  EXPECT_EQ(outcome->recomputed_rounds, 8);
  EXPECT_FALSE(data.sample_active(0, 1));
  EXPECT_FALSE(data.sample_active(2, 5));
  // Retraining replaces the model (fresh init + fresh randomness).
  EXPECT_FALSE(trainer.global_params().BitwiseEquals(deployed));
  // Cost accounting: the full retrain is logged as re-computation rounds.
  EXPECT_EQ(trainer.log().TrailingRecomputationRounds(), 8);
}

TEST(FrsTest, ClientUnlearnRemovesClient) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(5);
  FrsUnlearner unlearner(&trainer, &data);
  Result<UnlearningOutcome> outcome =
      unlearner.UnlearnClients({3}, /*retrain_rounds=*/5);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(data.client_active(3));
  EXPECT_EQ(outcome->recomputed_rounds, 5);
}

TEST(FrsTest, RetrainedModelRecoversUtility) {
  FederatedDataset data = TinyImageData(8, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(12);
  FrsUnlearner unlearner(&trainer, &data);
  ASSERT_TRUE(unlearner.UnlearnSamples({{0, 0}}, 12).ok());
  EXPECT_GT(trainer.EvaluateTestAccuracy(), 0.75);
}

TEST(FrsTest, InvalidTargetPropagatesError) {
  FederatedDataset data = TinyImageData(4, 8);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(2);
  FrsUnlearner unlearner(&trainer, &data);
  EXPECT_FALSE(unlearner.UnlearnSamples({{0, 99}}, 2).ok());
  EXPECT_FALSE(unlearner.UnlearnClients({99}, 2).ok());
}

TEST(Fr2Test, RecoveryRunsConfiguredRounds) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(8);
  Fr2Options options;
  options.recovery_rounds = 3;
  Fr2Unlearner unlearner(&trainer, &data, options);
  Result<UnlearningOutcome> outcome = unlearner.UnlearnSamples({{1, 2}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->recomputed_rounds, 3);
  EXPECT_FALSE(data.sample_active(1, 2));
  EXPECT_EQ(trainer.log().TrailingRecomputationRounds(), 3);
}

TEST(Fr2Test, ContinuesFromDeployedModelNotScratch) {
  FederatedDataset data = TinyImageData(8, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(12);
  const double acc_deployed = trainer.EvaluateTestAccuracy();
  Fr2Options options;
  options.recovery_rounds = 2;
  Fr2Unlearner unlearner(&trainer, &data, options);
  ASSERT_TRUE(unlearner.UnlearnSamples({{0, 0}}).ok());
  // Rapid retraining keeps most of the deployed utility (that is its selling
  // point versus FRS).
  EXPECT_GT(trainer.EvaluateTestAccuracy(), acc_deployed - 0.3);
}

TEST(Fr2Test, ClientUnlearnRemovesClient) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(4);
  Fr2Options options;
  options.recovery_rounds = 2;
  Fr2Unlearner unlearner(&trainer, &data, options);
  ASSERT_TRUE(unlearner.UnlearnClients({1}).ok());
  EXPECT_FALSE(data.client_active(1));
}

TEST(Fr2Test, IsCheaperThanFrsInRounds) {
  // The whole point of FR²: recovery_rounds << full retraining rounds.
  FederatedDataset data_frs = TinyImageData(6, 12);
  FederatedDataset data_fr2 = TinyImageData(6, 12);
  FedAvgTrainer frs_trainer(TinyModelSpec(), SmallOptions(), &data_frs);
  FedAvgTrainer fr2_trainer(TinyModelSpec(), SmallOptions(), &data_fr2);
  frs_trainer.RunRounds(10);
  fr2_trainer.RunRounds(10);
  FrsUnlearner frs(&frs_trainer, &data_frs);
  Fr2Options options;
  options.recovery_rounds = 2;
  Fr2Unlearner fr2(&fr2_trainer, &data_fr2, options);
  UnlearningOutcome frs_outcome = frs.UnlearnSamples({{0, 0}}, 10).value();
  UnlearningOutcome fr2_outcome = fr2.UnlearnSamples({{0, 0}}).value();
  EXPECT_LT(fr2_outcome.recomputed_rounds, frs_outcome.recomputed_rounds);
}

TEST(Fr2Test, PreconditionedStepChangesModel) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(3);
  const Tensor before = trainer.global_params();
  Fr2Options options;
  options.recovery_rounds = 1;
  Fr2Unlearner unlearner(&trainer, &data, options);
  ASSERT_TRUE(unlearner.UnlearnSamples({{0, 0}}).ok());
  EXPECT_FALSE(trainer.global_params().BitwiseEquals(before));
}

}  // namespace
}  // namespace fats
