// UnlearningService: O(1) triage, Submit-time validation against the
// pending state, and the coalescing exactness contract — a flushed queue of
// overlapping requests performs exactly one replay and leaves the trainer
// bitwise-identical (model, store, generation) to processing the same
// requests one at a time through the unlearners.

#include "core/unlearning_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/unlearning_executor.h"
#include "test_workloads.h"

namespace fats {
namespace {

struct Harness {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Harness MakeTrained(int64_t clients = 8, int64_t n = 8, int64_t rounds = 4,
                int64_t e = 3, double rho_c = 0.5, int64_t train_to = -1) {
  Harness run;
  run.data = TinyImageData(clients, n);
  run.config = TinyFatsConfig(clients, n, rounds, e, /*rho_s=*/0.5, rho_c);
  run.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), run.config, &run.data);
  run.trainer->TrainUntil(train_to < 0 ? run.config.total_iters_t()
                                       : train_to);
  return run;
}

UnlearningRequest SampleReq(int64_t client, int64_t index, int64_t iter) {
  UnlearningRequest r;
  r.kind = UnlearningRequest::Kind::kSample;
  r.sample.client = client;
  r.sample.index = index;
  r.request_iter = iter;
  return r;
}

UnlearningRequest ClientReq(int64_t client, int64_t iter) {
  UnlearningRequest r;
  r.kind = UnlearningRequest::Kind::kClient;
  r.client = client;
  r.request_iter = iter;
  return r;
}

// Deterministic target discovery via the inverted index.
bool FindUsedSampleAt(const FatsTrainer* trainer, int64_t client,
                      SampleRef* out) {
  const int64_t n = trainer->config().samples_per_client_n;
  for (int64_t i = 0; i < n; ++i) {
    SampleRef ref;
    ref.client = client;
    ref.index = i;
    if (trainer->store().EarliestSampleUse(ref) >= 1) {
      *out = ref;
      return true;
    }
  }
  return false;
}

int64_t FirstParticipatingClient(const FatsTrainer* trainer,
                                 int64_t skip = -1) {
  for (int64_t k = 0; k < trainer->config().clients_m; ++k) {
    if (k == skip) continue;
    if (trainer->store().EarliestClientRound(k) >= 1) return k;
  }
  return -1;
}

void ExpectIdenticalTrainerState(FatsTrainer* a, FatsTrainer* b) {
  EXPECT_TRUE(a->global_params().BitwiseEquals(b->global_params()))
      << "global parameters diverged";
  EXPECT_EQ(a->trained_through(), b->trained_through());
  EXPECT_EQ(a->generation(), b->generation());

  const StateStore& sa = a->store();
  const StateStore& sb = b->store();
  ASSERT_EQ(sa.SelectionRounds(), sb.SelectionRounds());
  for (int64_t round : sa.SelectionRounds()) {
    EXPECT_EQ(*sa.GetClientSelection(round), *sb.GetClientSelection(round))
        << "selection of round " << round;
  }
  ASSERT_EQ(sa.GlobalModelRounds(), sb.GlobalModelRounds());
  for (int64_t round : sa.GlobalModelRounds()) {
    EXPECT_TRUE(
        sa.GetGlobalModel(round)->BitwiseEquals(*sb.GetGlobalModel(round)))
        << "global model of round " << round;
  }
  ASSERT_EQ(sa.MinibatchKeys(), sb.MinibatchKeys());
  for (const auto& [iter, client] : sa.MinibatchKeys()) {
    EXPECT_EQ(*sa.GetMinibatch(iter, client), *sb.GetMinibatch(iter, client))
        << "minibatch at t=" << iter << " client=" << client;
  }
  ASSERT_EQ(sa.LocalModelKeys(), sb.LocalModelKeys());
  for (const auto& [iter, client] : sa.LocalModelKeys()) {
    EXPECT_TRUE(sa.GetLocalModel(iter, client)
                    ->BitwiseEquals(*sb.GetLocalModel(iter, client)))
        << "local model at t=" << iter << " client=" << client;
  }
  EXPECT_TRUE(sa.IndicesConsistentWithRecords());
  EXPECT_TRUE(sb.IndicesConsistentWithRecords());
}

TEST(ServiceTriageTest, MatchesInvertedIndex) {
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  const int64_t t_max = run.trainer->trained_through();

  SampleRef used;
  ASSERT_TRUE(FindUsedSampleAt(run.trainer.get(),
                               FirstParticipatingClient(run.trainer.get()),
                               &used));
  const int64_t first = run.trainer->store().EarliestSampleUse(used);
  UnlearningService::Triage triage =
      service.TriageRequest(SampleReq(used.client, used.index, t_max));
  EXPECT_EQ(triage.restart_iteration, first);
  EXPECT_TRUE(triage.triggers);

  const int64_t c = FirstParticipatingClient(run.trainer.get());
  const int64_t r0 = run.trainer->store().EarliestClientRound(c);
  triage = service.TriageRequest(ClientReq(c, t_max));
  EXPECT_EQ(triage.restart_iteration,
            (r0 - 1) * run.config.local_iters_e + 1);
  EXPECT_TRUE(triage.triggers);
}

TEST(ServiceTriageTest, RequestIterAtExactRoundBoundaries) {
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  const int64_t e = run.config.local_iters_e;

  // A client whose first participation is NOT round 1, so there is a
  // boundary below it to probe. rho_c = 0.5 over 8 clients makes one
  // near-certain; assert we found one.
  int64_t c = -1;
  int64_t r0 = -1;
  for (int64_t k = 0; k < run.config.clients_m; ++k) {
    const int64_t round = run.trainer->store().EarliestClientRound(k);
    if (round >= 2) {
      c = k;
      r0 = round;
      break;
    }
  }
  ASSERT_NE(c, -1) << "no client first selected after round 1";

  const int64_t round_start = (r0 - 1) * e + 1;
  // Request at the exact first iteration of the first participating round:
  // triggers (participation at or before request time).
  EXPECT_TRUE(service.TriageRequest(ClientReq(c, round_start)).triggers);
  // One iteration earlier — the last iteration of the previous round: the
  // trigger must not fire.
  EXPECT_FALSE(service.TriageRequest(ClientReq(c, round_start - 1)).triggers);
  // Same boundary probing for a sample of that client.
  SampleRef used;
  ASSERT_TRUE(FindUsedSampleAt(run.trainer.get(), c, &used));
  const int64_t first = run.trainer->store().EarliestSampleUse(used);
  ASSERT_GE(first, 2);
  EXPECT_TRUE(
      service.TriageRequest(SampleReq(used.client, used.index, first))
          .triggers);
  EXPECT_FALSE(
      service.TriageRequest(SampleReq(used.client, used.index, first - 1))
          .triggers);
}

TEST(ServiceSubmitTest, ValidatesAgainstPendingState) {
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  const int64_t t_max = run.trainer->trained_through();

  // request_iter range.
  EXPECT_TRUE(service.Submit(SampleReq(0, 0, 0)).code() == StatusCode::kInvalidArgument);
  EXPECT_TRUE(service.Submit(SampleReq(0, 0, t_max + 1)).code() == StatusCode::kInvalidArgument);
  // Out-of-range targets.
  EXPECT_TRUE(service.Submit(SampleReq(999, 0, t_max)).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(service.Submit(ClientReq(999, t_max)).code() == StatusCode::kOutOfRange);

  // Duplicate pending sample.
  ASSERT_TRUE(service.Submit(SampleReq(0, 0, t_max)).ok());
  EXPECT_TRUE(service.Submit(SampleReq(0, 0, t_max)).code() == StatusCode::kFailedPrecondition);

  // A sample of a client that is pending removal.
  ASSERT_TRUE(service.Submit(ClientReq(1, t_max)).ok());
  EXPECT_TRUE(service.Submit(SampleReq(1, 2, t_max)).code() == StatusCode::kFailedPrecondition);
  // Duplicate pending client.
  EXPECT_TRUE(service.Submit(ClientReq(1, t_max)).code() == StatusCode::kFailedPrecondition);

  // Emptying a client's active sample set: n = 8, one already pending.
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(service.Submit(SampleReq(0, i, t_max)).ok());
  }
  EXPECT_TRUE(service.Submit(SampleReq(0, 7, t_max)).code() == StatusCode::kFailedPrecondition);

  EXPECT_EQ(service.pending(), 8);
}

TEST(ServiceSubmitTest, RepeatDeletionAfterFlushIsRejected) {
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  const int64_t t_max = run.trainer->trained_through();
  ASSERT_TRUE(service.Submit(SampleReq(2, 3, t_max)).ok());
  ASSERT_TRUE(service.Flush().ok());
  EXPECT_FALSE(run.data.sample_active(2, 3));
  // The second deletion of the same sample fails exactly as a streaming
  // sequential run would: the sample is gone.
  EXPECT_TRUE(service.Submit(SampleReq(2, 3, t_max)).code() == StatusCode::kFailedPrecondition);
}

TEST(ServiceSubmitTest, CannotEmptyFederation) {
  Harness run = MakeTrained(/*clients=*/3, /*n=*/6, /*rounds=*/2, /*e=*/2);
  UnlearningService service(run.trainer.get());
  const int64_t t_max = run.trainer->trained_through();
  ASSERT_TRUE(service.Submit(ClientReq(0, t_max)).ok());
  ASSERT_TRUE(service.Submit(ClientReq(1, t_max)).ok());
  EXPECT_TRUE(service.Submit(ClientReq(2, t_max)).code() == StatusCode::kFailedPrecondition);
}

TEST(ServiceFlushTest, EmptyQueueIsNoop) {
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  const uint64_t gen = run.trainer->generation();
  Result<ServiceFlushStats> stats = service.Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->requests, 0);
  EXPECT_EQ(stats->replays, 0);
  EXPECT_EQ(run.trainer->generation(), gen);
}

TEST(ServiceFlushTest, NeverSelectedClientRemovalNeedsNoReplay) {
  // rho_c = 0.1 -> K = 1: at most `rounds` distinct clients are ever
  // selected, so among 8 clients several never participated.
  Harness run = MakeTrained(8, 8, 4, 3, /*rho_c=*/0.1);
  UnlearningService service(run.trainer.get());
  int64_t never = -1;
  for (int64_t k = 0; k < run.config.clients_m; ++k) {
    if (run.trainer->store().EarliestClientRound(k) == -1) {
      never = k;
      break;
    }
  }
  ASSERT_NE(never, -1);
  const uint64_t gen = run.trainer->generation();
  ASSERT_TRUE(
      service.Submit(ClientReq(never, run.trainer->trained_through())).ok());
  Result<ServiceFlushStats> stats = service.Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->replays, 0);
  EXPECT_EQ(stats->substituted_batches, 0);
  // Sequential processing does not bump the generation for a request that
  // touches no recorded state; neither does the service.
  EXPECT_EQ(run.trainer->generation(), gen);
  EXPECT_FALSE(run.data.client_active(never));
}

TEST(ServiceFlushTest, CoalescedSampleQueueBitIdenticalToSequential) {
  Harness sequential = MakeTrained();
  Harness coalesced = MakeTrained();

  // Four deletions of recorded-participating samples on distinct clients.
  std::vector<UnlearningRequest> requests;
  const int64_t t_max = sequential.trainer->trained_through();
  for (int64_t k = 0; k < sequential.config.clients_m &&
                      static_cast<int64_t>(requests.size()) < 4;
       ++k) {
    SampleRef used;
    if (FindUsedSampleAt(sequential.trainer.get(), k, &used)) {
      requests.push_back(SampleReq(used.client, used.index, t_max));
    }
  }
  ASSERT_EQ(requests.size(), 4u);

  UnlearningExecutor executor(sequential.trainer.get());
  ASSERT_TRUE(executor.ExecuteStream(requests).ok());

  UnlearningService service(coalesced.trainer.get());
  Result<ServiceSummary> summary = service.ExecuteStream(requests);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->flushes, 1);
  EXPECT_EQ(summary->totals.replays, 1);
  EXPECT_EQ(summary->totals.requests, 4);

  ExpectIdenticalTrainerState(sequential.trainer.get(),
                              coalesced.trainer.get());
}

TEST(ServiceFlushTest, CoalescedMixedQueueBitIdenticalToSequential) {
  Harness sequential = MakeTrained(10, 8, 4, 3);
  Harness coalesced = MakeTrained(10, 8, 4, 3);
  const int64_t t_max = sequential.trainer->trained_through();

  // Interleaved queue touching the same client: delete a sample of c1,
  // then remove c1 itself, then delete a sample of another participating
  // client c2 (whose triage runs against the post-removal redrawn history
  // in both execution orders).
  const int64_t c1 = FirstParticipatingClient(sequential.trainer.get());
  ASSERT_NE(c1, -1);
  const int64_t c2 = FirstParticipatingClient(sequential.trainer.get(), c1);
  ASSERT_NE(c2, -1);
  SampleRef s1;
  ASSERT_TRUE(FindUsedSampleAt(sequential.trainer.get(), c1, &s1));
  SampleRef s2;
  ASSERT_TRUE(FindUsedSampleAt(sequential.trainer.get(), c2, &s2));

  std::vector<UnlearningRequest> requests = {
      SampleReq(s1.client, s1.index, t_max),
      ClientReq(c1, t_max),
      SampleReq(s2.client, s2.index, t_max),
  };

  UnlearningExecutor executor(sequential.trainer.get());
  ASSERT_TRUE(executor.ExecuteStream(requests).ok());

  UnlearningService service(coalesced.trainer.get());
  Result<ServiceSummary> summary = service.ExecuteStream(requests);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->flushes, 1);
  EXPECT_EQ(summary->totals.replays, 1);
  EXPECT_EQ(summary->totals.client_requests, 1);
  EXPECT_EQ(summary->totals.sample_requests, 2);

  ExpectIdenticalTrainerState(sequential.trainer.get(),
                              coalesced.trainer.get());
}

TEST(ServiceFlushTest, OneReplayFromEarliestAffectedIteration) {
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  const int64_t t_max = run.trainer->trained_through();

  std::vector<UnlearningRequest> requests;
  int64_t earliest = -1;
  for (int64_t k = 0; k < run.config.clients_m &&
                      static_cast<int64_t>(requests.size()) < 3;
       ++k) {
    SampleRef used;
    if (!FindUsedSampleAt(run.trainer.get(), k, &used)) continue;
    const int64_t first = run.trainer->store().EarliestSampleUse(used);
    earliest = (earliest == -1) ? first : std::min(earliest, first);
    requests.push_back(SampleReq(used.client, used.index, t_max));
  }
  ASSERT_EQ(requests.size(), 3u);
  for (const UnlearningRequest& r : requests) {
    ASSERT_TRUE(service.Submit(r).ok());
  }
  Result<ServiceFlushStats> stats = service.Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->replays, 1);
  EXPECT_EQ(stats->replay_start_iteration, earliest);
  EXPECT_EQ(stats->replayed_iterations, t_max - earliest + 1);
  // The whole point: w requests paid one replay; the per-request sum is
  // strictly larger whenever more than one request needed recomputation.
  EXPECT_GT(stats->sequential_replayed_iterations,
            stats->replayed_iterations);
}

TEST(ServiceFlushTest, UntriggeredReplayStillCounted) {
  // request_iter below the sample's first use: the Algorithm 2 trigger does
  // not fire, but the substitution + replay still happen and must be
  // reported (the accounting bug this PR fixes).
  Harness run = MakeTrained();
  UnlearningService service(run.trainer.get());
  SampleRef used;
  int64_t target_client = -1;
  int64_t first = -1;
  for (int64_t k = 0; k < run.config.clients_m; ++k) {
    if (!FindUsedSampleAt(run.trainer.get(), k, &used)) continue;
    first = run.trainer->store().EarliestSampleUse(used);
    if (first >= 2) {
      target_client = k;
      break;
    }
  }
  ASSERT_NE(target_client, -1);
  ASSERT_TRUE(service.Submit(SampleReq(used.client, used.index, first - 1)).ok());
  Result<ServiceFlushStats> stats = service.Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triggered_requests, 0);
  EXPECT_EQ(stats->replays, 1);
  EXPECT_GT(stats->replayed_iterations, 0);
}

TEST(ServiceFlushTest, MidTrainingFlushThenContinueMatchesSequential) {
  const int64_t t_mid = 6;  // round boundary for e = 3
  Harness sequential = MakeTrained(8, 8, 4, 3, 0.5, t_mid);
  Harness coalesced = MakeTrained(8, 8, 4, 3, 0.5, t_mid);

  std::vector<UnlearningRequest> requests;
  for (int64_t k = 0; k < sequential.config.clients_m &&
                      static_cast<int64_t>(requests.size()) < 2;
       ++k) {
    SampleRef used;
    if (FindUsedSampleAt(sequential.trainer.get(), k, &used)) {
      requests.push_back(SampleReq(used.client, used.index, t_mid));
    }
  }
  ASSERT_EQ(requests.size(), 2u);

  UnlearningExecutor executor(sequential.trainer.get());
  ASSERT_TRUE(executor.ExecuteStream(requests).ok());
  sequential.trainer->TrainUntil(sequential.config.total_iters_t());

  UnlearningService service(coalesced.trainer.get());
  ASSERT_TRUE(service.ExecuteStream(requests).ok());
  coalesced.trainer->TrainUntil(coalesced.config.total_iters_t());

  ExpectIdenticalTrainerState(sequential.trainer.get(),
                              coalesced.trainer.get());
}

TEST(ServiceFlushTest, WindowedStreamFlushesInChunks) {
  Harness run = MakeTrained(10, 8, 4, 3);
  UnlearningService service(run.trainer.get());
  const int64_t t_max = run.trainer->trained_through();
  std::vector<UnlearningRequest> requests;
  for (int64_t k = 0; k < run.config.clients_m &&
                      static_cast<int64_t>(requests.size()) < 4;
       ++k) {
    SampleRef used;
    if (FindUsedSampleAt(run.trainer.get(), k, &used)) {
      requests.push_back(SampleReq(used.client, used.index, t_max));
    }
  }
  ASSERT_EQ(requests.size(), 4u);
  Result<ServiceSummary> summary = service.ExecuteStream(requests, 2);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->flushes, 2);
  EXPECT_EQ(summary->totals.requests, 4);
  EXPECT_EQ(service.pending(), 0);
  EXPECT_TRUE(run.trainer->store().IndicesConsistentWithRecords());
}

}  // namespace
}  // namespace fats
