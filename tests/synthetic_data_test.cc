#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "data/synthetic_image.h"
#include "data/synthetic_text.h"

namespace fats {
namespace {

SyntheticImageConfig ImageConfig() {
  SyntheticImageConfig config;
  config.num_classes = 4;
  config.feature_dim = 8;
  config.noise_stddev = 0.3;
  config.seed = 5;
  return config;
}

TEST(SyntheticImageTest, GeneratesRequestedShape) {
  SyntheticImageGenerator gen(ImageConfig());
  InMemoryDataset ds = gen.Generate(50, {}, -1, 1);
  EXPECT_EQ(ds.size(), 50);
  EXPECT_EQ(ds.feature_dim(), 8);
  EXPECT_EQ(ds.num_classes(), 4);
}

TEST(SyntheticImageTest, ZeroSamplesGivesEmpty) {
  SyntheticImageGenerator gen(ImageConfig());
  EXPECT_EQ(gen.Generate(0, {}, -1, 1).size(), 0);
}

TEST(SyntheticImageTest, DeterministicInSeedAndStream) {
  SyntheticImageGenerator gen_a(ImageConfig());
  SyntheticImageGenerator gen_b(ImageConfig());
  InMemoryDataset a = gen_a.Generate(20, {}, -1, 3);
  InMemoryDataset b = gen_b.Generate(20, {}, -1, 3);
  EXPECT_TRUE(a.features().BitwiseEquals(b.features()));
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(SyntheticImageTest, DifferentStreamsDiffer) {
  SyntheticImageGenerator gen(ImageConfig());
  InMemoryDataset a = gen.Generate(20, {}, -1, 3);
  InMemoryDataset b = gen.Generate(20, {}, -1, 4);
  EXPECT_FALSE(a.features().BitwiseEquals(b.features()));
}

TEST(SyntheticImageTest, ClassProportionsRespected) {
  SyntheticImageGenerator gen(ImageConfig());
  InMemoryDataset ds = gen.Generate(4000, {1.0, 0.0, 0.0, 0.0}, -1, 1);
  for (int64_t i = 0; i < ds.size(); ++i) EXPECT_EQ(ds.label(i), 0);
  InMemoryDataset skew = gen.Generate(4000, {0.7, 0.3, 0.0, 0.0}, -1, 2);
  int64_t zeros = 0;
  for (int64_t i = 0; i < skew.size(); ++i) {
    if (skew.label(i) == 0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / skew.size(), 0.7, 0.03);
}

TEST(SyntheticImageTest, SamplesClusterAroundPrototype) {
  SyntheticImageConfig config = ImageConfig();
  config.noise_stddev = 0.05;
  SyntheticImageGenerator gen(config);
  InMemoryDataset ds = gen.Generate(200, {1.0, 0.0, 0.0, 0.0}, -1, 1);
  std::vector<float> proto = gen.StyledPrototype(0, -1);
  // Mean feature vector should be close to the class-0 prototype.
  for (int64_t j = 0; j < config.feature_dim; ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < ds.size(); ++i) {
      mean += ds.features().at(i, j);
    }
    mean /= ds.size();
    EXPECT_NEAR(mean, proto[static_cast<size_t>(j)], 0.05);
  }
}

TEST(SyntheticImageTest, StyleWarpShiftsPrototypes) {
  SyntheticImageConfig config = ImageConfig();
  config.style_strength = 0.5;
  SyntheticImageGenerator gen(config);
  std::vector<float> base = gen.StyledPrototype(0, -1);
  std::vector<float> styled_a = gen.StyledPrototype(0, 1);
  std::vector<float> styled_b = gen.StyledPrototype(0, 2);
  double diff_a = 0.0;
  double diff_ab = 0.0;
  for (size_t j = 0; j < base.size(); ++j) {
    diff_a += std::fabs(styled_a[j] - base[j]);
    diff_ab += std::fabs(styled_a[j] - styled_b[j]);
  }
  EXPECT_GT(diff_a, 0.1);   // warp moves the prototype
  EXPECT_GT(diff_ab, 0.1);  // different clients get different warps
}

TEST(SyntheticImageTest, ZeroStyleStrengthIsNoop) {
  SyntheticImageGenerator gen(ImageConfig());
  std::vector<float> base = gen.StyledPrototype(1, -1);
  std::vector<float> styled = gen.StyledPrototype(1, 7);
  EXPECT_EQ(base, styled);
}

SyntheticTextConfig TextConfig() {
  SyntheticTextConfig config;
  config.vocab_size = 6;
  config.seq_len = 4;
  config.heterogeneity = 0.5;
  config.seed = 9;
  return config;
}

TEST(SyntheticTextTest, GeneratesValidSequences) {
  SyntheticTextGenerator gen(TextConfig());
  InMemoryDataset ds = gen.Generate(30, 0, 1);
  EXPECT_EQ(ds.size(), 30);
  EXPECT_EQ(ds.feature_dim(), 4);
  EXPECT_EQ(ds.num_classes(), 6);
  for (int64_t i = 0; i < ds.size(); ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      const float v = ds.features().at(i, j);
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 6.0f);
      EXPECT_EQ(v, std::floor(v)) << "ids must be integral";
    }
    EXPECT_GE(ds.label(i), 0);
    EXPECT_LT(ds.label(i), 6);
  }
}

TEST(SyntheticTextTest, DeterministicInInputs) {
  SyntheticTextGenerator gen(TextConfig());
  InMemoryDataset a = gen.Generate(10, 2, 5);
  InMemoryDataset b = gen.Generate(10, 2, 5);
  EXPECT_TRUE(a.features().BitwiseEquals(b.features()));
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(SyntheticTextTest, TransitionRowsAreStochastic) {
  SyntheticTextGenerator gen(TextConfig());
  for (int64_t client : {-1, 0, 3}) {
    for (int64_t current = 0; current < 6; ++current) {
      std::vector<double> row = gen.TransitionRow(client, current);
      double sum = 0.0;
      for (double p : row) {
        EXPECT_GE(p, 0.0);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(SyntheticTextTest, HeterogeneityCreatesClientDifferences) {
  SyntheticTextGenerator gen(TextConfig());
  std::vector<double> a = gen.TransitionRow(0, 0);
  std::vector<double> b = gen.TransitionRow(1, 0);
  double tv = 0.0;
  for (size_t j = 0; j < a.size(); ++j) tv += std::fabs(a[j] - b[j]);
  EXPECT_GT(tv / 2.0, 0.01);
}

TEST(SyntheticTextTest, ZeroHeterogeneityMatchesBaseChain) {
  SyntheticTextConfig config = TextConfig();
  config.heterogeneity = 0.0;
  SyntheticTextGenerator gen(config);
  EXPECT_EQ(gen.TransitionRow(0, 2), gen.TransitionRow(-1, 2));
  EXPECT_EQ(gen.TransitionRow(0, 2), gen.TransitionRow(5, 2));
}

TEST(SyntheticTextTest, ChainIsActuallyLearnableSignal) {
  // With a very concentrated chain, the next char is near-deterministic
  // given the current char, so labels correlate with the final input id.
  SyntheticTextConfig config = TextConfig();
  config.transition_concentration = 0.02;
  config.heterogeneity = 0.0;
  SyntheticTextGenerator gen(config);
  InMemoryDataset ds = gen.Generate(500, 0, 1);
  // Majority label per final char should dominate.
  std::map<int64_t, std::map<int64_t, int64_t>> table;
  for (int64_t i = 0; i < ds.size(); ++i) {
    const int64_t last = static_cast<int64_t>(ds.features().at(i, 3));
    table[last][ds.label(i)]++;
  }
  int64_t majority_hits = 0;
  int64_t total = 0;
  for (const auto& [last, hist] : table) {
    int64_t best = 0;
    int64_t count = 0;
    for (const auto& [label, c] : hist) {
      if (c > best) best = c;
      count += c;
    }
    majority_hits += best;
    total += count;
  }
  EXPECT_GT(static_cast<double>(majority_hits) / total, 0.8);
}

}  // namespace
}  // namespace fats
