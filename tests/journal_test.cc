// Journal framing tests: CRC detection of corrupt/truncated tails, append
// resumption, orphan sweeping — and end-to-end DurableTrainingSession
// recovery when the journal itself loses its tail.

#include "io/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include "io/train_journal.h"
#include "test_workloads.h"
#include "util/failpoint.h"

namespace fats {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

constexpr int64_t kHeaderBytes = 12;  // "FATSJRN1" + u32 version

TEST(Crc32Test, KnownVectors) {
  // The IEEE reflected CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, ChainsAcrossCalls) {
  const char* data = "the quick brown fox";
  const size_t len = std::strlen(data);
  const uint32_t whole = Crc32(data, len);
  const uint32_t part = Crc32(data + 5, len - 5, Crc32(data, 5));
  EXPECT_EQ(whole, part);
}

TEST(JournalTest, CreateWritesHeaderOnly) {
  const std::string path = TempPath("jrn_create.jrn");
  ASSERT_TRUE(JournalWriter::Create(path).ok());
  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, kHeaderBytes);
  EXPECT_FALSE(scan->torn_tail);
  // No stranded temp file.
  EXPECT_EQ(ReadFile(path + ".tmp"), "");
}

TEST(JournalTest, AppendScanRoundtrip) {
  const std::string path = TempPath("jrn_roundtrip.jrn");
  ASSERT_TRUE(JournalWriter::Create(path).ok());
  const std::string binary_payload("\x00\xff\x7f\n\x01", 5);
  {
    Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
        path, kHeaderBytes, JournalWriter::SyncMode::kNone);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append("alpha").ok());
    ASSERT_TRUE((*writer)->Append("").ok());
    ASSERT_TRUE((*writer)->Append(binary_payload).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0], "alpha");
  EXPECT_EQ(scan->records[1], "");
  EXPECT_EQ(scan->records[2], binary_payload);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->record_ends.size(), 3u);
  EXPECT_EQ(scan->record_ends.back(), scan->valid_bytes);
}

// Writes a journal with three records and returns its raw bytes.
std::string ThreeRecordJournal(const std::string& path) {
  EXPECT_TRUE(JournalWriter::Create(path).ok());
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
      path, kHeaderBytes, JournalWriter::SyncMode::kNone);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE((*writer)->Append("record-one").ok());
  EXPECT_TRUE((*writer)->Append("record-two").ok());
  EXPECT_TRUE((*writer)->Append("record-three").ok());
  EXPECT_TRUE((*writer)->Close().ok());
  return ReadFile(path);
}

TEST(JournalTest, CorruptedTailDetectedByCrc) {
  const std::string path = TempPath("jrn_corrupt.jrn");
  std::string blob = ThreeRecordJournal(path);
  // Flip a byte inside the last record's payload.
  blob[blob.size() - 2] = static_cast<char>(blob[blob.size() - 2] ^ 0x40);
  WriteFile(path, blob);

  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[1], "record-two");
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_NE(scan->tail_detail.find("CRC"), std::string::npos)
      << scan->tail_detail;
}

TEST(JournalTest, TruncatedTailDetected) {
  const std::string path = TempPath("jrn_trunc.jrn");
  const std::string blob = ThreeRecordJournal(path);
  // Cut mid-payload of the last record.
  WriteFile(path, blob.substr(0, blob.size() - 4));
  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_NE(scan->tail_detail.find("truncated"), std::string::npos)
      << scan->tail_detail;

  // Cut mid-frame-header (fewer than 8 bytes of len+crc remain).
  const int64_t second_end = 12 + 2 * (8 + 10);  // header + two framed records
  WriteFile(path, blob.substr(0, static_cast<size_t>(second_end) + 3));
  scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->valid_bytes, second_end);
  EXPECT_TRUE(scan->torn_tail);
}

TEST(JournalTest, InsaneFrameLengthRejected) {
  const std::string path = TempPath("jrn_insane.jrn");
  std::string blob = ThreeRecordJournal(path).substr(0, kHeaderBytes);
  // A frame claiming ~4 GiB of payload must stop the scan at the header.
  const char huge[8] = {'\xff', '\xff', '\xff', '\xff', 0, 0, 0, 0};
  blob.append(huge, sizeof(huge));
  WriteFile(path, blob);
  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, kHeaderBytes);
  EXPECT_TRUE(scan->torn_tail);
}

TEST(JournalTest, NonJournalFileRejected) {
  const std::string path = TempPath("jrn_garbage.jrn");
  WriteFile(path, "this is not a journal, definitely not");
  EXPECT_FALSE(ScanJournal(path).ok());
  EXPECT_FALSE(ScanJournal(TempPath("jrn_missing.jrn")).ok());
}

TEST(JournalTest, OpenForAppendTruncatesTornTailAndResumes) {
  const std::string path = TempPath("jrn_resume.jrn");
  std::string blob = ThreeRecordJournal(path);
  blob[blob.size() - 1] = static_cast<char>(blob[blob.size() - 1] ^ 0x01);
  WriteFile(path, blob);

  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(scan->torn_tail);
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
      path, scan->valid_bytes, JournalWriter::SyncMode::kEveryAppend);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append("record-new").ok());
  ASSERT_TRUE((*writer)->Close().ok());

  Result<JournalScan> rescan = ScanJournal(path);
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->records.size(), 3u);
  EXPECT_EQ(rescan->records[0], "record-one");
  EXPECT_EQ(rescan->records[1], "record-two");
  EXPECT_EQ(rescan->records[2], "record-new");
  EXPECT_FALSE(rescan->torn_tail);
}

// --- Async mode (SyncMode::kAsync): double-buffered writer thread ---

TEST(JournalAsyncTest, FileBitwiseMatchesSyncMode) {
  // The same append sequence must produce byte-identical files in kNone and
  // kAsync modes: batching changes when bytes reach the FILE*, never which
  // bytes.
  const std::string sync_path = TempPath("jrn_async_ref.jrn");
  const std::string async_path = TempPath("jrn_async_cand.jrn");
  const std::string binary_payload("\x00\xff\x7f\n\x01", 5);
  for (const auto& [path, mode] :
       {std::pair{sync_path, JournalWriter::SyncMode::kNone},
        std::pair{async_path, JournalWriter::SyncMode::kAsync}}) {
    ASSERT_TRUE(JournalWriter::Create(path).ok());
    Result<std::unique_ptr<JournalWriter>> writer =
        JournalWriter::OpenForAppend(path, kHeaderBytes, mode);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append("alpha").ok());
    ASSERT_TRUE((*writer)->Append("").ok());
    ASSERT_TRUE((*writer)->Sync().ok());  // mid-stream barrier
    ASSERT_TRUE((*writer)->Append(binary_payload).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  const std::string sync_blob = ReadFile(sync_path);
  ASSERT_GT(sync_blob.size(), static_cast<size_t>(kHeaderBytes));
  EXPECT_EQ(sync_blob, ReadFile(async_path));
}

TEST(JournalAsyncTest, SyncBarrierMakesBufferedRecordsDurable) {
  const std::string path = TempPath("jrn_async_barrier.jrn");
  ASSERT_TRUE(JournalWriter::Create(path).ok());
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
      path, kHeaderBytes, JournalWriter::SyncMode::kAsync);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append("buffered-one").ok());
  ASSERT_TRUE((*writer)->Append("buffered-two").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  // After the barrier — with the writer still open — every appended record
  // is on the file, not in a user-space buffer.
  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0], "buffered-one");
  EXPECT_EQ(scan->records[1], "buffered-two");
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(JournalAsyncTest, AutoFlushAcrossBatchThresholdKeepsOrder) {
  // ~180 KiB of records forces several 64 KiB batch handoffs; the scan must
  // see every record, in append order, with no torn tail.
  const std::string path = TempPath("jrn_async_bulk.jrn");
  ASSERT_TRUE(JournalWriter::Create(path).ok());
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
      path, kHeaderBytes, JournalWriter::SyncMode::kAsync);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  constexpr int kRecords = 3000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(
        (*writer)->Append("record-" + std::to_string(i) + "-padding-padding")
            .ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  Result<JournalScan> scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), static_cast<size_t>(kRecords));
  for (int i : {0, 1, 1234, kRecords - 1}) {
    EXPECT_EQ(scan->records[static_cast<size_t>(i)],
              "record-" + std::to_string(i) + "-padding-padding");
  }
  EXPECT_FALSE(scan->torn_tail);
}

TEST(JournalAsyncTest, WriterThreadErrorLatchesIntoStatus) {
  const std::string path = TempPath("jrn_async_flush_err.jrn");
  ASSERT_TRUE(JournalWriter::Create(path).ok());
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
      path, kHeaderBytes, JournalWriter::SyncMode::kAsync);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(failpoint::ArmFromSpec("journal.async_flush:1:error").ok());
  ASSERT_TRUE((*writer)->Append("doomed").ok());  // buffered, not yet flushed
  // The barrier drains the writer, which surfaces the injected flush error.
  Status synced = (*writer)->Sync();
  EXPECT_FALSE(synced.ok());
  EXPECT_NE(synced.ToString().find("journal.async_flush"), std::string::npos)
      << synced.ToString();
  // Latched: later appends refuse without touching the file.
  EXPECT_FALSE((*writer)->Append("after-error").ok());
  EXPECT_FALSE((*writer)->status().ok());
  failpoint::DisarmAll();
  (void)(*writer)->Close();
}

TEST(JournalAsyncTest, SwapBufferErrorLatchesIntoStatus) {
  const std::string path = TempPath("jrn_async_swap_err.jrn");
  ASSERT_TRUE(JournalWriter::Create(path).ok());
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::OpenForAppend(
      path, kHeaderBytes, JournalWriter::SyncMode::kAsync);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(failpoint::ArmFromSpec("journal.swap_buffer:1:error").ok());
  ASSERT_TRUE((*writer)->Append("doomed").ok());
  Status synced = (*writer)->Sync();
  EXPECT_FALSE(synced.ok());
  EXPECT_NE(synced.ToString().find("journal.swap_buffer"), std::string::npos)
      << synced.ToString();
  EXPECT_FALSE((*writer)->status().ok());
  failpoint::DisarmAll();
  (void)(*writer)->Close();
}

TEST(JournalTest, SweepOrphanTmpRemovesStaleFile) {
  const std::string path = TempPath("jrn_sweep.jrn");
  WriteFile(path + ".tmp", "half-written garbage");
  EXPECT_TRUE(SweepOrphanTmp(path));
  EXPECT_EQ(ReadFile(path + ".tmp"), "");
  EXPECT_FALSE(SweepOrphanTmp(path));  // nothing left to sweep
}

// --- End-to-end: DurableTrainingSession survives a damaged journal tail ---

struct Env {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Env MakeEnv() {
  Env env;
  env.data = TinyImageData(5, 8);
  env.config = TinyFatsConfig(5, 8, 3, 2);
  env.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), env.config, &env.data);
  return env;
}

// Runs a full durable training pass from scratch (removing any files a
// previous test invocation left behind) and returns the final global model.
Tensor RunDurable(const std::string& ckpt, const std::string& jrn,
                  const DurableOptions& options = {}) {
  for (const std::string& p : {ckpt, ckpt + ".tmp", jrn, jrn + ".tmp"}) {
    std::remove(p.c_str());
  }
  Env env = MakeEnv();
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get(), options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  env.trainer->Train();
  EXPECT_TRUE((*session)->status().ok());
  return env.trainer->global_params();
}

TEST(DurableJournalTest, RecoversBitExactlyFromCorruptedTail) {
  const std::string ref_ckpt = TempPath("djrn_ref.ckpt");
  const std::string ref_jrn = TempPath("djrn_ref.jrn");
  const Tensor reference = RunDurable(ref_ckpt, ref_jrn);

  const std::string ckpt = TempPath("djrn_corrupt.ckpt");
  const std::string jrn = TempPath("djrn_corrupt.jrn");
  (void)RunDurable(ckpt, jrn);

  // Corrupt a byte two-thirds into the journal: the committed prefix before
  // it survives, everything after is discarded and re-executed.
  std::string blob = ReadFile(jrn);
  ASSERT_GT(blob.size(), 100u);
  const size_t pos = (blob.size() * 2) / 3;
  blob[pos] = static_cast<char>(blob[pos] ^ 0xA5);
  WriteFile(jrn, blob);

  Env env = MakeEnv();
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const int64_t total = env.config.total_iters_t();
  EXPECT_EQ(env.trainer->trained_through(), total);
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(reference));
}

TEST(DurableJournalTest, RecoversBitExactlyFromTruncatedTail) {
  const std::string ref_ckpt = TempPath("djrn_tref.ckpt");
  const std::string ref_jrn = TempPath("djrn_tref.jrn");
  const Tensor reference = RunDurable(ref_ckpt, ref_jrn);

  const std::string ckpt = TempPath("djrn_trunc.ckpt");
  const std::string jrn = TempPath("djrn_trunc.jrn");
  (void)RunDurable(ckpt, jrn);

  std::string blob = ReadFile(jrn);
  ASSERT_GT(blob.size(), 100u);
  WriteFile(jrn, blob.substr(0, blob.size() / 2));

  Env env = MakeEnv();
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(env.trainer->trained_through(), env.config.total_iters_t());
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(reference));
}

TEST(DurableJournalTest, AsyncSessionJournalMatchesSyncByte) {
  // A full durable training pass with async_io produces the same journal
  // bytes and the same model as the synchronous-write session.
  const std::string ref_ckpt = TempPath("djrn_aref.ckpt");
  const std::string ref_jrn = TempPath("djrn_aref.jrn");
  const Tensor reference = RunDurable(ref_ckpt, ref_jrn);

  const std::string ckpt = TempPath("djrn_async.ckpt");
  const std::string jrn = TempPath("djrn_async.jrn");
  DurableOptions options;
  options.async_io = true;
  const Tensor async_params = RunDurable(ckpt, jrn, options);

  EXPECT_TRUE(async_params.BitwiseEquals(reference));
  const std::string ref_blob = ReadFile(ref_jrn);
  ASSERT_GT(ref_blob.size(), 100u);
  EXPECT_EQ(ref_blob, ReadFile(jrn));
}

TEST(DurableJournalTest, AsyncSessionRecoversBitExactlyFromTruncatedTail) {
  const std::string ref_ckpt = TempPath("djrn_atref.ckpt");
  const std::string ref_jrn = TempPath("djrn_atref.jrn");
  const Tensor reference = RunDurable(ref_ckpt, ref_jrn);

  const std::string ckpt = TempPath("djrn_atrunc.ckpt");
  const std::string jrn = TempPath("djrn_atrunc.jrn");
  DurableOptions options;
  options.async_io = true;
  (void)RunDurable(ckpt, jrn, options);

  std::string blob = ReadFile(jrn);
  ASSERT_GT(blob.size(), 100u);
  WriteFile(jrn, blob.substr(0, blob.size() / 2));

  // Recovery itself also runs with the async writer.
  Env env = MakeEnv();
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(env.trainer->trained_through(), env.config.total_iters_t());
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(reference));
}

TEST(DurableJournalTest, CleanReopenDoesNotRetrain) {
  const std::string ckpt = TempPath("djrn_clean.ckpt");
  const std::string jrn = TempPath("djrn_clean.jrn");
  const Tensor reference = RunDurable(ckpt, jrn);

  Env env = MakeEnv();
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_TRUE((*session)->recovered());
  EXPECT_EQ(env.trainer->trained_through(), env.config.total_iters_t());
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(reference));
}

}  // namespace
}  // namespace fats
