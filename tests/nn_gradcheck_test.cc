// Numerical gradient checks for every layer's backward pass.
//
// For a layer f and fixed coefficients C, define the scalar
// s(params, x) = Σ_ij C_ij · f(x)_ij. The analytic gradient from
// Backward(C) must match central finite differences of s.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/workspace.h"
#include "rng/rng_stream.h"

namespace fats {
namespace {

constexpr float kEps = 1e-2f;
constexpr double kRelTol = 5e-2;
constexpr double kAbsTol = 2e-3;

void ExpectClose(double analytic, double numeric, const std::string& what) {
  const double scale =
      std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
  EXPECT_NEAR(analytic, numeric, std::max(kAbsTol, kRelTol * scale))
      << what << ": analytic=" << analytic << " numeric=" << numeric;
}

double Score(Module* layer, const Tensor& x, const Tensor& coeffs) {
  Tensor y = layer->Forward(x);
  double s = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) {
    s += static_cast<double>(y[i]) * coeffs[i];
  }
  return s;
}

Tensor RandomTensor(std::vector<int64_t> shape, RngStream* rng,
                    double scale = 1.0) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(scale * rng->NextGaussian());
  }
  return t;
}

/// Checks parameter and input gradients of `layer` on input `x`.
/// `check_input_grad` is disabled for layers whose inputs are ids.
void GradCheck(Module* layer, Tensor x, bool check_input_grad = true) {
  RngStream rng(uint64_t{777});
  Tensor probe = layer->Forward(x);
  Tensor coeffs = RandomTensor(probe.shape(), &rng);

  layer->ZeroGrad();
  Score(layer, x, coeffs);  // forward to populate caches
  Tensor input_grad = layer->Backward(coeffs);

  // Parameter gradients.
  for (Parameter* param : layer->Parameters()) {
    for (int64_t i = 0; i < param->value.size(); i += 7) {  // sample entries
      const float saved = param->value[i];
      param->value[i] = saved + kEps;
      const double plus = Score(layer, x, coeffs);
      param->value[i] = saved - kEps;
      const double minus = Score(layer, x, coeffs);
      param->value[i] = saved;
      const double numeric = (plus - minus) / (2.0 * kEps);
      ExpectClose(param->grad[i], numeric,
                  param->name + "[" + std::to_string(i) + "]");
    }
  }

  // Input gradients.
  if (check_input_grad) {
    for (int64_t i = 0; i < x.size(); i += 5) {
      const float saved = x[i];
      x[i] = saved + kEps;
      const double plus = Score(layer, x, coeffs);
      x[i] = saved - kEps;
      const double minus = Score(layer, x, coeffs);
      x[i] = saved;
      const double numeric = (plus - minus) / (2.0 * kEps);
      ExpectClose(input_grad[i], numeric, "input[" + std::to_string(i) + "]");
    }
  }
}

TEST(GradCheckTest, Linear) {
  RngStream rng(uint64_t{1});
  Linear layer(4, 3, &rng);
  GradCheck(&layer, RandomTensor({2, 4}, &rng));
}

TEST(GradCheckTest, ReLU) {
  RngStream rng(uint64_t{2});
  ReLU layer;
  // Keep inputs away from the kink at 0.
  Tensor x = RandomTensor({3, 5}, &rng);
  for (int64_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) < 0.1f) x[i] = 0.5f;
  }
  GradCheck(&layer, x);
}

TEST(GradCheckTest, TanhLayer) {
  RngStream rng(uint64_t{3});
  Tanh layer;
  GradCheck(&layer, RandomTensor({2, 6}, &rng, 0.5));
}

TEST(GradCheckTest, SigmoidLayer) {
  RngStream rng(uint64_t{4});
  Sigmoid layer;
  GradCheck(&layer, RandomTensor({2, 6}, &rng, 0.5));
}

TEST(GradCheckTest, Conv2dSamePadding) {
  RngStream rng(uint64_t{5});
  Conv2d layer(2, 3, 5, 5, 3, 1, &rng);
  GradCheck(&layer, RandomTensor({2, 50}, &rng, 0.5));
}

TEST(GradCheckTest, Conv2dValid) {
  RngStream rng(uint64_t{6});
  Conv2d layer(1, 2, 6, 6, 3, 0, &rng);
  GradCheck(&layer, RandomTensor({1, 36}, &rng, 0.5));
}

TEST(GradCheckTest, MaxPool) {
  RngStream rng(uint64_t{7});
  MaxPool2d layer(2, 4, 4, 2);
  // Spread values so the argmax is stable under the probe epsilon.
  Tensor x({1, 32});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 9) + 0.2f * static_cast<float>(
        rng.NextGaussian());
  }
  GradCheck(&layer, x);
}

TEST(GradCheckTest, Lstm) {
  RngStream rng(uint64_t{8});
  Lstm layer(3, 4, 3, &rng);
  GradCheck(&layer, RandomTensor({2, 9}, &rng, 0.5));
}

TEST(GradCheckTest, SequentialMlp) {
  RngStream rng(uint64_t{9});
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<Linear>(5, 4, &rng));
  seq->Add(std::make_unique<Tanh>());
  seq->Add(std::make_unique<Linear>(4, 3, &rng));
  GradCheck(seq.get(), RandomTensor({2, 5}, &rng, 0.5));
}

// The im2col + GEMM conv path must agree with the retained direct
// convolution (ForwardDirect/BackwardDirect) everywhere: outputs, input
// gradients, and parameter gradients. The two paths accumulate taps in
// different orders, so the comparison is AllClose, not bitwise; the bitwise
// guarantees live one level down in kernel_contract_test.cc.
void CheckIm2colMatchesDirect(int64_t in_ch, int64_t out_ch, int64_t h,
                              int64_t w, int64_t k, int64_t pad,
                              int64_t batch, uint64_t seed) {
  constexpr float kTol = 5e-4f;
  RngStream rng(seed);
  Conv2d conv(in_ch, out_ch, h, w, k, pad, &rng);
  Workspace ws;
  Tensor x = RandomTensor({batch, in_ch * h * w}, &rng, 0.5);
  Tensor gy =
      RandomTensor({batch, conv.OutputFeatures(in_ch * h * w)}, &rng, 0.5);
  auto params = conv.Parameters();  // [weight, bias]

  conv.ZeroGrad();
  Tensor y_gemm = conv.Forward(x, &ws);  // copy out of the ws slot
  Tensor gx_gemm = conv.Backward(gy, &ws);
  Tensor wg_gemm = params[0]->grad;
  Tensor bg_gemm = params[1]->grad;

  conv.ZeroGrad();
  Tensor y_direct = conv.ForwardDirect(x);
  Tensor gx_direct = conv.BackwardDirect(x, gy);

  EXPECT_TRUE(y_gemm.AllClose(y_direct, kTol)) << "forward mismatch";
  EXPECT_TRUE(gx_gemm.AllClose(gx_direct, kTol)) << "input-grad mismatch";
  EXPECT_TRUE(wg_gemm.AllClose(params[0]->grad, kTol))
      << "weight-grad mismatch";
  EXPECT_TRUE(bg_gemm.AllClose(params[1]->grad, kTol)) << "bias-grad mismatch";
}

TEST(Im2colVsDirectTest, SinglePaddedChannel) {
  CheckIm2colMatchesDirect(1, 2, 6, 6, 3, 1, 2, uint64_t{21});
}

TEST(Im2colVsDirectTest, SingleChannelValid) {
  CheckIm2colMatchesDirect(1, 3, 7, 5, 3, 0, 1, uint64_t{22});
}

TEST(Im2colVsDirectTest, MultiChannelPadded) {
  CheckIm2colMatchesDirect(3, 4, 5, 5, 3, 1, 3, uint64_t{23});
}

TEST(Im2colVsDirectTest, WideKernelWidePadding) {
  CheckIm2colMatchesDirect(2, 2, 8, 8, 5, 2, 2, uint64_t{24});
}

TEST(Im2colVsDirectTest, OneByOneKernel) {
  CheckIm2colMatchesDirect(2, 3, 4, 4, 1, 0, 2, uint64_t{25});
}

TEST(GradCheckTest, SoftmaxCrossEntropyGradient) {
  RngStream rng(uint64_t{10});
  SoftmaxCrossEntropy loss;
  Tensor logits = RandomTensor({3, 4}, &rng);
  std::vector<int64_t> labels = {0, 2, 3};
  Tensor grad;
  loss.Compute(logits, labels, &grad);
  for (int64_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + kEps;
    const double plus = loss.Compute(logits, labels, nullptr);
    logits[i] = saved - kEps;
    const double minus = loss.Compute(logits, labels, nullptr);
    logits[i] = saved;
    ExpectClose(grad[i], (plus - minus) / (2.0 * kEps),
                "logit[" + std::to_string(i) + "]");
  }
}

}  // namespace
}  // namespace fats
