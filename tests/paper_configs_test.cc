#include "data/paper_configs.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(PaperTable2Test, HasSixRowsMatchingThePaper) {
  auto profiles = PaperTable2Profiles();
  ASSERT_EQ(profiles.size(), 6u);
  // Spot-check MNIST and Shakespeare rows against Table 2.
  const DatasetProfile& mnist = profiles[0];
  EXPECT_EQ(mnist.name, "mnist");
  EXPECT_EQ(mnist.clients_m, 300);
  EXPECT_EQ(mnist.samples_per_client_n, 200);
  EXPECT_EQ(mnist.clients_per_round_k, 5);
  EXPECT_EQ(mnist.rounds_r, 30);
  EXPECT_EQ(mnist.local_iters_e, 10);
  EXPECT_EQ(mnist.batch_b, 10);
  // ρ_C = K·T/(E·M) = 5·300/(10·300) = 0.5 ; ρ_S = b·K·T/(M·N) = 0.25.
  EXPECT_NEAR(mnist.rho_c(), 0.5, 1e-12);
  EXPECT_NEAR(mnist.rho_s(), 0.25, 1e-12);

  const DatasetProfile& shakes = profiles[5];
  EXPECT_EQ(shakes.name, "shakespeare");
  EXPECT_EQ(shakes.clients_m, 660);
  EXPECT_EQ(shakes.clients_per_round_k, 20);
  EXPECT_EQ(shakes.local_iters_e, 100);
}

TEST(ScaledProfilesTest, AllNamesResolve) {
  for (const std::string& name : ScaledProfileNames()) {
    Result<DatasetProfile> profile = ScaledProfile(name);
    ASSERT_TRUE(profile.ok()) << name;
    EXPECT_EQ(profile->name, name);
  }
}

TEST(ScaledProfilesTest, UnknownNameIsNotFound) {
  EXPECT_EQ(ScaledProfile("imagenet").status().code(), StatusCode::kNotFound);
}

class ScaledProfileTest : public testing::TestWithParam<std::string> {};

TEST_P(ScaledProfileTest, StabilityParamsAreFeasible) {
  DatasetProfile p = ScaledProfile(GetParam()).value();
  EXPECT_GT(p.rho_s(), 0.0);
  EXPECT_LE(p.rho_s(), 1.0) << p.ToString();
  EXPECT_GT(p.rho_c(), 0.0);
  EXPECT_LE(p.rho_c(), 1.0) << p.ToString();
  EXPECT_LE(p.batch_b, p.samples_per_client_n);
  EXPECT_LE(p.clients_per_round_k, p.clients_m);
}

TEST_P(ScaledProfileTest, BuildsConsistentFederatedData) {
  DatasetProfile p = ScaledProfile(GetParam()).value();
  FederatedDataset data = BuildFederatedData(p, 1);
  EXPECT_EQ(data.num_clients(), p.clients_m);
  for (int64_t k = 0; k < p.clients_m; ++k) {
    EXPECT_EQ(data.num_active_samples(k), p.samples_per_client_n);
  }
  EXPECT_GT(data.global_test().size(), 0);
  EXPECT_EQ(data.num_classes(), p.model.num_classes);
  EXPECT_EQ(data.feature_dim(), p.model.InputFeatures());
}

TEST_P(ScaledProfileTest, BuildIsDeterministicInSeed) {
  DatasetProfile p = ScaledProfile(GetParam()).value();
  FederatedDataset a = BuildFederatedData(p, 5);
  FederatedDataset b = BuildFederatedData(p, 5);
  EXPECT_TRUE(a.client_data(0).features().BitwiseEquals(
      b.client_data(0).features()));
  FederatedDataset c = BuildFederatedData(p, 6);
  EXPECT_FALSE(a.client_data(0).features().BitwiseEquals(
      c.client_data(0).features()));
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ScaledProfileTest,
                         testing::ValuesIn(ScaledProfileNames()),
                         [](const testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(ScaledProfilesTest, ProfileToStringIncludesRhos) {
  DatasetProfile p = ScaledProfile("mnist").value();
  std::string s = p.ToString();
  EXPECT_NE(s.find("rho_s"), std::string::npos);
  EXPECT_NE(s.find("rho_c"), std::string::npos);
}

TEST(ScaledProfilesTest, NaturalPartitionClientsDiffer) {
  DatasetProfile p = ScaledProfile("femnist").value();
  FederatedDataset data = BuildFederatedData(p, 1);
  // Client style warps should make feature distributions differ.
  EXPECT_FALSE(data.client_data(0).features().BitwiseEquals(
      data.client_data(1).features()));
}

}  // namespace
}  // namespace fats
