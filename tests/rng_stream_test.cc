#include "rng/rng_stream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fats {
namespace {

StreamId MakeId(RngPurpose purpose, uint64_t gen, uint64_t round,
                uint64_t client, uint64_t iter) {
  StreamId id;
  id.purpose = purpose;
  id.generation = gen;
  id.round = round;
  id.client = client;
  id.iteration = iter;
  return id;
}

TEST(StreamIdTest, ToStringMentionsFields) {
  StreamId id = MakeId(RngPurpose::kClientSampling, 1, 2, 3, 4);
  std::string s = id.ToString();
  EXPECT_NE(s.find("round=2"), std::string::npos);
  EXPECT_NE(s.find("client=3"), std::string::npos);
}

TEST(DeriveStreamKeyTest, DistinctFieldsGiveDistinctKeys) {
  std::set<uint64_t> keys;
  for (uint64_t gen = 0; gen < 3; ++gen) {
    for (uint64_t round = 0; round < 5; ++round) {
      for (uint64_t client = 0; client < 5; ++client) {
        for (uint64_t iter = 0; iter < 5; ++iter) {
          keys.insert(DeriveStreamKey(
              42, MakeId(RngPurpose::kMinibatchSampling, gen, round, client,
                         iter)));
        }
      }
    }
  }
  EXPECT_EQ(keys.size(), 3u * 5 * 5 * 5);
}

TEST(DeriveStreamKeyTest, PurposeSeparatesStreams) {
  StreamId a = MakeId(RngPurpose::kClientSampling, 0, 1, 0, 0);
  StreamId b = MakeId(RngPurpose::kMinibatchSampling, 0, 1, 0, 0);
  EXPECT_NE(DeriveStreamKey(7, a), DeriveStreamKey(7, b));
}

TEST(DeriveStreamKeyTest, RootSeedSeparatesStreams) {
  StreamId id = MakeId(RngPurpose::kGeneric, 0, 0, 0, 0);
  EXPECT_NE(DeriveStreamKey(1, id), DeriveStreamKey(2, id));
}

TEST(RngStreamTest, ReplayIsBitIdentical) {
  StreamId id = MakeId(RngPurpose::kMinibatchSampling, 0, 3, 2, 17);
  RngStream a(9, id);
  RngStream b(9, id);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextUInt64(), b.NextUInt64());
  }
}

TEST(RngStreamTest, GenerationBumpGivesFreshStream) {
  // The core of the unlearning coupling: bumping generation must decouple
  // the stream completely.
  StreamId id0 = MakeId(RngPurpose::kMinibatchSampling, 0, 3, 2, 17);
  StreamId id1 = MakeId(RngPurpose::kMinibatchSampling, 1, 3, 2, 17);
  RngStream a(9, id0);
  RngStream b(9, id1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUInt32() == b.NextUInt32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngStreamTest, NextDoubleInUnitInterval) {
  RngStream rng(123u);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngStreamTest, NextDoubleMeanIsHalf) {
  RngStream rng(55u);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngStreamTest, UniformIntInRangeAndUnbiased) {
  RngStream rng(77u);
  constexpr uint64_t kN = 7;
  int counts[kN] = {0};
  const int draws = 14000;
  for (int i = 0; i < draws; ++i) {
    uint64_t v = rng.UniformInt(kN);
    ASSERT_LT(v, kN);
    counts[v]++;
  }
  const double expected = static_cast<double>(draws) / kN;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 22.5);  // 99.9% critical value for 6 dof
}

TEST(RngStreamTest, UniformIntOneAlwaysZero) {
  RngStream rng(3u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngStreamTest, GaussianMomentsMatchStandardNormal) {
  RngStream rng(99u);
  const int n = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngStreamTest, BernoulliFrequencyMatchesP) {
  RngStream rng(4u);
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace fats
