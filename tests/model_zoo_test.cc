#include "nn/model_zoo.h"

#include <gtest/gtest.h>

#include "rng/rng_stream.h"

namespace fats {
namespace {

ModelSpec LogRegSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kLogReg;
  spec.input_dim = 8;
  spec.num_classes = 3;
  return spec;
}

ModelSpec MlpSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 8;
  spec.hidden_dims = {6, 4};
  spec.num_classes = 3;
  return spec;
}

ModelSpec CnnSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kSmallCnn;
  spec.image_channels = 1;
  spec.image_height = 6;
  spec.image_width = 6;
  spec.conv_channels = 4;
  spec.kernel_size = 3;
  spec.num_classes = 5;
  return spec;
}

ModelSpec LstmSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kCharLstm;
  spec.vocab_size = 12;
  spec.embed_dim = 4;
  spec.lstm_hidden = 6;
  spec.seq_len = 5;
  spec.num_classes = 12;
  return spec;
}

Tensor RandomInputs(const ModelSpec& spec, int64_t batch, uint64_t seed) {
  RngStream rng(seed);
  Tensor x({batch, spec.InputFeatures()});
  if (spec.kind == ModelKind::kCharLstm) {
    for (int64_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(rng.UniformInt(spec.vocab_size));
    }
  } else {
    for (int64_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(rng.NextGaussian());
    }
  }
  return x;
}

std::vector<int64_t> RandomLabels(const ModelSpec& spec, int64_t batch,
                                  uint64_t seed) {
  RngStream rng(seed + 1);
  std::vector<int64_t> y(static_cast<size_t>(batch));
  for (int64_t& v : y) {
    v = static_cast<int64_t>(rng.UniformInt(spec.num_classes));
  }
  return y;
}

class ModelZooAllKindsTest : public testing::TestWithParam<ModelSpec> {};

TEST_P(ModelZooAllKindsTest, ForwardShapeIsBatchByClasses) {
  Model model(GetParam(), 7);
  Tensor x = RandomInputs(GetParam(), 3, 10);
  Tensor logits = model.Predict(x);
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), GetParam().num_classes);
}

TEST_P(ModelZooAllKindsTest, InitializationIsDeterministicInSeed) {
  Model a(GetParam(), 7);
  Model b(GetParam(), 7);
  Model c(GetParam(), 8);
  EXPECT_TRUE(a.GetParameters().BitwiseEquals(b.GetParameters()));
  EXPECT_FALSE(a.GetParameters().BitwiseEquals(c.GetParameters()));
}

TEST_P(ModelZooAllKindsTest, ParameterRoundTrip) {
  Model model(GetParam(), 7);
  Tensor params = model.GetParameters();
  EXPECT_EQ(params.size(), model.NumParameters());
  Tensor shifted = params;
  for (int64_t i = 0; i < shifted.size(); ++i) shifted[i] += 0.25f;
  model.SetParameters(shifted);
  EXPECT_TRUE(model.GetParameters().BitwiseEquals(shifted));
}

TEST_P(ModelZooAllKindsTest, SgdStepsReduceTrainingLoss) {
  const ModelSpec spec = GetParam();
  Model model(spec, 7);
  Tensor x = RandomInputs(spec, 12, 20);
  std::vector<int64_t> y = RandomLabels(spec, 12, 20);
  const double initial = model.ComputeLoss(x, y);
  double lr = spec.kind == ModelKind::kCharLstm ? 0.5 : 0.1;
  for (int step = 0; step < 60; ++step) {
    model.ComputeLossAndGradients(x, y);
    model.SgdStep(lr);
  }
  const double final_loss = model.ComputeLoss(x, y);
  EXPECT_LT(final_loss, initial) << "training diverged for "
                                 << spec.ToString();
}

TEST_P(ModelZooAllKindsTest, PerExampleLossSizeMatchesBatch) {
  Model model(GetParam(), 7);
  Tensor x = RandomInputs(GetParam(), 4, 30);
  std::vector<int64_t> y = RandomLabels(GetParam(), 4, 30);
  EXPECT_EQ(model.PerExampleLoss(x, y).size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelKinds, ModelZooAllKindsTest,
    testing::Values(LogRegSpec(), MlpSpec(), CnnSpec(), LstmSpec()),
    [](const testing::TestParamInfo<ModelSpec>& param_info) {
      switch (param_info.param.kind) {
        case ModelKind::kLogReg:
          return std::string("LogReg");
        case ModelKind::kMlp:
          return std::string("Mlp");
        case ModelKind::kSmallCnn:
          return std::string("SmallCnn");
        case ModelKind::kCharLstm:
          return std::string("CharLstm");
      }
      return std::string("Unknown");
    });

TEST(ModelSpecTest, InputFeaturesPerKind) {
  EXPECT_EQ(LogRegSpec().InputFeatures(), 8);
  EXPECT_EQ(MlpSpec().InputFeatures(), 8);
  EXPECT_EQ(CnnSpec().InputFeatures(), 36);
  EXPECT_EQ(LstmSpec().InputFeatures(), 5);
}

TEST(ModelSpecTest, ToStringMentionsKind) {
  EXPECT_NE(MlpSpec().ToString().find("Mlp"), std::string::npos);
  EXPECT_NE(CnnSpec().ToString().find("SmallCnn"), std::string::npos);
  EXPECT_NE(LstmSpec().ToString().find("CharLstm"), std::string::npos);
}

TEST(ModelTest, EvaluateAccuracyPerfectOnSeparableToy) {
  ModelSpec spec = LogRegSpec();
  spec.input_dim = 2;
  spec.num_classes = 2;
  Model model(spec, 3);
  // Two well-separated clusters.
  Tensor x({8, 2}, {3, 3, 4, 3, 3, 4, 4, 4, -3, -3, -4, -3, -3, -4, -4, -4});
  std::vector<int64_t> y = {0, 0, 0, 0, 1, 1, 1, 1};
  for (int step = 0; step < 200; ++step) {
    model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.2);
  }
  EXPECT_DOUBLE_EQ(model.EvaluateAccuracy(x, y), 1.0);
}

TEST(ModelTest, GradientsAreZeroBeforeBackward) {
  Model model(LogRegSpec(), 7);
  Tensor grads = model.GetGradients();
  EXPECT_DOUBLE_EQ(grads.SquaredNorm(), 0.0);
}

}  // namespace
}  // namespace fats
