#include "core/fats_config.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

FatsConfig BaseConfig() {
  FatsConfig config;
  config.clients_m = 60;
  config.samples_per_client_n = 40;
  config.rounds_r = 15;
  config.local_iters_e = 5;
  config.rho_s = 0.25;
  config.rho_c = 0.5;
  config.learning_rate = 0.05;
  return config;
}

TEST(FatsConfigTest, DerivesPaperFormulas) {
  FatsConfig config = BaseConfig();
  // K = ρ_C·E·M/T = 0.5·5·60/75 = 2 ; b = ρ_S·N/(ρ_C·E) = 0.25·40/2.5 = 4.
  EXPECT_EQ(config.total_iters_t(), 75);
  EXPECT_EQ(config.DeriveK(), 2);
  EXPECT_EQ(config.DeriveB(), 4);
}

TEST(FatsConfigTest, EffectiveRhosInvertTheDerivation) {
  FatsConfig config = BaseConfig();
  EXPECT_NEAR(config.EffectiveRhoC(), 0.5, 1e-12);
  EXPECT_NEAR(config.EffectiveRhoS(), 0.25, 1e-12);
}

TEST(FatsConfigTest, RoundingClampsToFeasibleValues) {
  FatsConfig config = BaseConfig();
  config.rho_c = 1e-6;  // K would round to 0 -> clamped to 1
  EXPECT_EQ(config.DeriveK(), 1);
  config = BaseConfig();
  config.rho_s = 100.0;  // b would exceed N -> clamped to N
  EXPECT_EQ(config.DeriveB(), config.samples_per_client_n);
}

TEST(FatsConfigTest, LargerRhoCMeansMoreClientsSmallerBatches) {
  FatsConfig low = BaseConfig();
  FatsConfig high = BaseConfig();
  high.rho_c = 1.0;
  EXPECT_GT(high.DeriveK(), low.DeriveK());
  EXPECT_LE(high.DeriveB(), low.DeriveB());
}

TEST(FatsConfigTest, LargerRhoSMeansLargerBatches) {
  FatsConfig low = BaseConfig();
  FatsConfig high = BaseConfig();
  high.rho_s = 0.5;
  EXPECT_GT(high.DeriveB(), low.DeriveB());
  EXPECT_EQ(high.DeriveK(), low.DeriveK());  // K independent of rho_s
}

TEST(FatsConfigTest, ValidateAcceptsBase) {
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(FatsConfigTest, ValidateRejectsNonPositiveShape) {
  FatsConfig config = BaseConfig();
  config.clients_m = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.rounds_r = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FatsConfigTest, ValidateRejectsNonPositiveRho) {
  FatsConfig config = BaseConfig();
  config.rho_s = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.rho_c = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FatsConfigTest, ValidateRejectsNonPositiveLearningRate) {
  FatsConfig config = BaseConfig();
  config.learning_rate = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FatsConfigTest, FromProfileReproducesExplicitKAndB) {
  for (const std::string& name : ScaledProfileNames()) {
    DatasetProfile profile = ScaledProfile(name).value();
    FatsConfig config = FatsConfig::FromProfile(profile);
    EXPECT_EQ(config.DeriveK(), profile.clients_per_round_k) << name;
    EXPECT_EQ(config.DeriveB(), profile.batch_b) << name;
    EXPECT_TRUE(config.Validate().ok()) << name;
  }
}

TEST(FatsConfigTest, ToStringMentionsDerivedValues) {
  std::string s = BaseConfig().ToString();
  EXPECT_NE(s.find("K=2"), std::string::npos);
  EXPECT_NE(s.find("b=4"), std::string::npos);
}

}  // namespace
}  // namespace fats
