// Direct empirical verification of Lemma 1: the total-variation distance
// between L(D) and L(D') — over the *full sampling-history* distribution —
// is bounded by min{ρ_S, 1} / min{ρ_C, 1}.
//
// In the tiny discrete instance the empirical TV estimate
// (1/2)·Σ_h |p̂(h) − q̂(h)| converges to the true TV from above in
// expectation (plug-in bias is positive), so "empirical TV ≤ ρ + slack" is
// a meaningful check, and we additionally verify the distance is *not*
// trivially zero (deleting data really does move the distribution).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "core/fats_trainer.h"
#include "core/tv_stability.h"
#include "test_workloads.h"

namespace fats {
namespace {

constexpr int64_t kClients = 3;
constexpr int64_t kSamples = 3;
constexpr int64_t kRounds = 2;

FatsConfig TinyDiscreteConfig(uint64_t seed) {
  FatsConfig config;
  config.clients_m = kClients;
  config.samples_per_client_n = kSamples;
  config.rounds_r = kRounds;
  config.local_iters_e = 1;
  config.rho_c = 2.0 / 3.0;  // K = 1
  config.rho_s = 2.0 / 9.0;  // b = 1
  config.learning_rate = 0.1;
  config.seed = seed;
  return config;
}

std::string EncodeHistory(const FatsTrainer& trainer) {
  std::string out;
  for (int64_t r = 1; r <= kRounds; ++r) {
    const std::vector<int64_t>* selection =
        trainer.store().GetClientSelection(r);
    if (selection == nullptr) continue;
    out += "R[";
    // Sequential appends: `"B" + std::to_string(k) + ...` trips GCC 12's
    // -Wrestrict false positive (PR 105651) at -O3 under -Werror.
    for (int64_t k : *selection) {
      out += std::to_string(k);
      out += ",";
    }
    out += "]";
    for (int64_t k = 0; k < kClients; ++k) {
      const std::vector<int64_t>* batch = trainer.store().GetMinibatch(r, k);
      if (batch == nullptr) continue;
      out += "B";
      out += std::to_string(k);
      out += "(";
      for (int64_t i : *batch) {
        out += std::to_string(i);
        out += ",";
      }
      out += ")";
    }
  }
  return out;
}

double EmpiricalTv(const std::map<std::string, int>& p,
                   const std::map<std::string, int>& q, int trials) {
  std::map<std::string, std::pair<int, int>> merged;
  for (const auto& [key, count] : p) merged[key].first = count;
  for (const auto& [key, count] : q) merged[key].second = count;
  double tv = 0.0;
  for (const auto& [key, pair] : merged) {
    tv += std::fabs(static_cast<double>(pair.first) - pair.second);
  }
  return tv / (2.0 * trials);
}

std::map<std::string, int> SampleHistories(bool remove_sample,
                                           bool remove_client, int trials,
                                           uint64_t seed_base) {
  std::map<std::string, int> counts;
  for (int trial = 0; trial < trials; ++trial) {
    FederatedDataset data = TinyImageData(kClients, kSamples);
    if (remove_sample) FATS_CHECK_OK(data.RemoveSample({0, 1}));
    if (remove_client) FATS_CHECK_OK(data.RemoveClient(0));
    FatsTrainer trainer(TinyModelSpec(),
                        TinyDiscreteConfig(seed_base +
                                           static_cast<uint64_t>(trial)),
                        &data);
    trainer.Train();
    counts[EncodeHistory(trainer)]++;
  }
  return counts;
}

TEST(TvDistanceTest, SampleLevelTvBoundedByRhoS) {
  const int trials = 12000;
  auto base = SampleHistories(false, false, trials, 10000);
  auto reduced = SampleHistories(true, false, trials, 50000);
  const double tv = EmpiricalTv(base, reduced, trials);
  FatsConfig config = TinyDiscreteConfig(1);
  const double rho_s = SampleLevelStabilityBound(config);
  // Plug-in TV overestimates; allow estimation slack ~ sqrt(cats/trials).
  EXPECT_LE(tv, rho_s + 0.06) << "TV " << tv << " vs rho_s " << rho_s;
  // And the distance is genuinely nonzero: deleting a sample changes the
  // batch law wherever client 0 is selected.
  EXPECT_GT(tv, 0.01);
}

TEST(TvDistanceTest, ClientLevelTvBoundedByRhoC) {
  const int trials = 12000;
  auto base = SampleHistories(false, false, trials, 20000);
  auto reduced = SampleHistories(false, true, trials, 60000);
  const double tv = EmpiricalTv(base, reduced, trials);
  FatsConfig config = TinyDiscreteConfig(1);
  const double rho_c = ClientLevelStabilityBound(config);
  EXPECT_LE(tv, rho_c + 0.06) << "TV " << tv << " vs rho_c " << rho_c;
  EXPECT_GT(tv, 0.05);
}

TEST(TvDistanceTest, SampleTvIsSmallerThanClientTv) {
  // Removing one of N samples perturbs less than removing a whole client —
  // the ordering ρ_S < ρ_C in this config should show empirically.
  const int trials = 12000;
  auto base = SampleHistories(false, false, trials, 30000);
  auto no_sample = SampleHistories(true, false, trials, 70000);
  auto no_client = SampleHistories(false, true, trials, 80000);
  EXPECT_LT(EmpiricalTv(base, no_sample, trials),
            EmpiricalTv(base, no_client, trials));
}

TEST(TvDistanceTest, IdenticalLawsHaveNearZeroEmpiricalTv) {
  // Sanity floor for the estimator: two independent draws from the same
  // law should show only the plug-in bias.
  const int trials = 12000;
  auto a = SampleHistories(false, false, trials, 40000);
  auto b = SampleHistories(false, false, trials, 90000);
  EXPECT_LT(EmpiricalTv(a, b, trials), 0.07);
}

}  // namespace
}  // namespace fats
