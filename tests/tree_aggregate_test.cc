// Sharded deterministic tree aggregation (src/state/tree_aggregate.h):
// the reduction tree's shape is a pure function of n, each group is summed
// by exactly one worker in ascending slot order, so the aggregate is
// bit-identical at any worker count — and, for n <= kAggregateFanIn,
// bit-identical to the plain serial accumulation chain the trainer used
// before the tree existed.

#include "state/tree_aggregate.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rng/rng_stream.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fats::state {
namespace {

std::vector<Tensor> RandomInputs(int64_t n, int64_t dim, uint64_t seed) {
  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(seed, id);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<float> values(static_cast<size_t>(dim));
    for (float& v : values) {
      // Magnitudes spread over several orders so float addition is
      // genuinely non-associative: any reduction-order change flips bits.
      v = static_cast<float>(rng.NextGaussian()) *
          static_cast<float>(1 + (i % 7) * 1000);
    }
    inputs.push_back(Tensor({dim}, std::move(values)));
  }
  return inputs;
}

// The pre-tree trainer reduction: one accumulator, ascending slot order.
Tensor SerialChain(const std::vector<Tensor>& inputs) {
  Tensor sum(inputs[0].shape());
  for (const Tensor& t : inputs) sum += t;
  return sum;
}

TEST(TreeAggregateTest, MatchesSerialChainUpToFanIn) {
  for (int64_t n = 1; n <= kAggregateFanIn; ++n) {
    const std::vector<Tensor> inputs = RandomInputs(n, 33, 100 + n);
    const Tensor tree = TreeAggregate(inputs, nullptr);
    EXPECT_TRUE(tree.BitwiseEquals(SerialChain(inputs))) << "n=" << n;
  }
}

TEST(TreeAggregateTest, BitIdenticalAcrossWorkerCounts) {
  for (int64_t n : {1, 2, 7, 8, 9, 16, 63, 64, 65, 100}) {
    const std::vector<Tensor> inputs = RandomInputs(n, 17, 7 * n + 1);
    const Tensor reference = TreeAggregate(inputs, nullptr);
    for (int64_t workers : {1, 2, 4, 7}) {
      ThreadPool pool(workers);
      const Tensor parallel = TreeAggregate(inputs, &pool);
      EXPECT_TRUE(parallel.BitwiseEquals(reference))
          << "n=" << n << " workers=" << workers;
    }
  }
}

TEST(TreeAggregateTest, TreeShapeIsAFunctionOfNOnly) {
  // Aggregating the same inputs twice (same pool) is bitwise stable, and
  // permuting inputs changes the result exactly as the slot order says it
  // should: the tree fixes the order, not the values.
  const std::vector<Tensor> inputs = RandomInputs(20, 9, 42);
  ThreadPool pool(4);
  const Tensor a = TreeAggregate(inputs, &pool);
  const Tensor b = TreeAggregate(inputs, &pool);
  EXPECT_TRUE(a.BitwiseEquals(b));

  std::vector<Tensor> swapped = inputs;
  std::swap(swapped[0], swapped[19]);
  const Tensor c = TreeAggregate(swapped, nullptr);
  // Not a guarantee that any particular swap flips bits, but the sums are
  // mathematically equal — check the tree is at least order-consistent.
  EXPECT_TRUE(c.BitwiseEquals(TreeAggregate(swapped, &pool)));
}

TEST(TreeAggregateTest, SingleInputPassesThrough) {
  const std::vector<Tensor> inputs = RandomInputs(1, 5, 3);
  const Tensor out = TreeAggregate(inputs, nullptr);
  EXPECT_TRUE(out.BitwiseEquals(inputs[0]));
}

}  // namespace
}  // namespace fats::state
