// Failure-injection tests: a checkpoint truncated or corrupted at any byte
// must fail with a clean Status — never crash, hang, or half-restore
// visible state incorrectly.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "io/checkpoint.h"
#include "test_workloads.h"

namespace fats {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

struct Env {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Env MakeEnv(bool train) {
  Env env;
  env.data = TinyImageData(5, 8);
  env.config = TinyFatsConfig(5, 8, 3, 2);
  env.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), env.config, &env.data);
  if (train) env.trainer->Train();
  return env;
}

TEST(CheckpointRobustnessTest, TruncationAtEveryStrideFailsCleanly) {
  const std::string path = TempPath("robust_full.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());
  const std::string blob = ReadFile(path);
  ASSERT_GT(blob.size(), 100u);

  const std::string truncated_path = TempPath("robust_truncated.bin");
  // Probe a spread of truncation points including the first and last bytes.
  for (size_t cut = 0; cut < blob.size();
       cut += std::max<size_t>(1, blob.size() / 97)) {
    WriteFile(truncated_path, blob.substr(0, cut));
    Env env = MakeEnv(false);
    Status status = LoadTrainerCheckpoint(truncated_path, env.trainer.get());
    EXPECT_FALSE(status.ok()) << "truncation at " << cut << " was accepted";
  }
}

TEST(CheckpointRobustnessTest, BitFlipsNeverCrash) {
  const std::string path = TempPath("robust_bitflip_src.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());
  const std::string blob = ReadFile(path);

  const std::string flipped_path = TempPath("robust_bitflip.bin");
  int accepted = 0;
  for (size_t pos = 8; pos < blob.size();
       pos += std::max<size_t>(1, blob.size() / 61)) {
    std::string corrupted = blob;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0xFF);
    WriteFile(flipped_path, corrupted);
    Env env = MakeEnv(false);
    Status status = LoadTrainerCheckpoint(flipped_path, env.trainer.get());
    // Loading may succeed when the flipped byte lands in benign payload
    // (model weights, accuracies); it must never crash, and structural
    // corruption must be rejected.
    if (status.ok()) ++accepted;
  }
  // Most flips hit structure (lengths, keys) and are rejected.
  SUCCEED() << accepted << " benign flips accepted";
}

TEST(CheckpointRobustnessTest, EmptyFileRejected) {
  const std::string path = TempPath("robust_empty.bin");
  WriteFile(path, "");
  Env env = MakeEnv(false);
  EXPECT_FALSE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
}

TEST(CheckpointRobustnessTest, GarbageFileRejected) {
  const std::string path = TempPath("robust_garbage.bin");
  std::string garbage(4096, '\0');
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<char>((i * 2654435761u) >> 13);
  }
  WriteFile(path, garbage);
  Env env = MakeEnv(false);
  EXPECT_FALSE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
}

TEST(CheckpointRobustnessTest, TornAtRecordBoundaryRejected) {
  // A write cut exactly at the footer boundary parses every length-prefixed
  // record cleanly — only the footer check can catch it.
  const std::string path = TempPath("robust_torn.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());
  const std::string blob = ReadFile(path);
  // The footer is a length-prefixed string: u64 length + 8 bytes. A cut
  // that drops it entirely fails on the footer read.
  ASSERT_GT(blob.size(), 16u);
  WriteFile(path, blob.substr(0, blob.size() - 16));
  {
    Env env = MakeEnv(false);
    EXPECT_FALSE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
  }

  // A file whose trailing bytes parse as a string but are not the footer
  // magic is rejected with the explicit truncation message.
  std::string bad_footer = blob;
  bad_footer[bad_footer.size() - 1] ^= 0x5A;
  WriteFile(path, bad_footer);
  Env env = MakeEnv(false);
  Status status = LoadTrainerCheckpoint(path, env.trainer.get());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.message();
}

TEST(CheckpointRobustnessTest, TrailingGarbageRejected) {
  const std::string path = TempPath("robust_trailing.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());
  WriteFile(path, ReadFile(path) + std::string(32, '\7'));

  Env env = MakeEnv(false);
  EXPECT_FALSE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
}

TEST(CheckpointRobustnessTest, SaveLeavesNoTempFile) {
  const std::string path = TempPath("robust_atomic.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "temp file left behind after successful save";
}

TEST(CheckpointRobustnessTest, FailedRenameKeepsOldCheckpointAndCleansTemp) {
  // Saving over a path occupied by a directory makes the final rename fail;
  // the save must report the error and remove its temp file.
  const std::string path = TempPath("robust_dir_target");
  std::remove(path.c_str());
  ASSERT_EQ(std::system(("mkdir -p " + path).c_str()), 0);
  Env saved = MakeEnv(true);
  Status status = SaveTrainerCheckpoint(saved.trainer.get(), path);
  EXPECT_FALSE(status.ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "temp file left behind after failed save";
  ASSERT_EQ(std::system(("rmdir " + path).c_str()), 0);
}

TEST(CheckpointRobustnessTest, LoadSweepsStaleTempFile) {
  // A crash between temp-write and rename strands `<path>.tmp`; the next
  // load must remove it (it can never be trusted) while loading the real
  // checkpoint normally.
  const std::string path = TempPath("robust_sweep.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());
  WriteFile(path + ".tmp", "half-written checkpoint garbage");

  Env env = MakeEnv(false);
  ASSERT_TRUE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "stale .tmp survived a successful load";
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(
      saved.trainer->global_params()));
}

TEST(CheckpointRobustnessTest, LoadSweepsStaleTempFileEvenWhenLoadFails) {
  const std::string path = TempPath("robust_sweep_fail.bin");
  WriteFile(path, "FATSCKPTgarbage");
  WriteFile(path + ".tmp", "stale temp");
  Env env = MakeEnv(false);
  EXPECT_FALSE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "stale .tmp survived a failed load";
}

TEST(CheckpointRobustnessTest, CommStatsSurviveRoundTrip) {
  const std::string path = TempPath("robust_comm.bin");
  Env saved = MakeEnv(true);
  const CommStats& before = saved.trainer->comm_stats();
  ASSERT_GT(before.rounds(), 0);
  ASSERT_GT(before.uplink_bytes(), 0);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), path).ok());

  Env env = MakeEnv(false);
  ASSERT_TRUE(LoadTrainerCheckpoint(path, env.trainer.get()).ok());
  const CommStats& after = env.trainer->comm_stats();
  EXPECT_EQ(after.rounds(), before.rounds());
  EXPECT_EQ(after.uplink_bytes(), before.uplink_bytes());
  EXPECT_EQ(after.downlink_bytes(), before.downlink_bytes());
  EXPECT_EQ(after.messages(), before.messages());
  EXPECT_EQ(env.trainer->trained_through(), saved.trainer->trained_through());
  EXPECT_EQ(env.trainer->generation(), saved.trainer->generation());
}

TEST(CheckpointRobustnessTest, JournalEpochSurvivesRoundTrip) {
  const std::string path = TempPath("robust_epoch.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(
      SaveTrainerCheckpoint(saved.trainer.get(), path, /*journal_epoch=*/7)
          .ok());
  Env env = MakeEnv(false);
  uint64_t epoch = 0;
  ASSERT_TRUE(LoadTrainerCheckpoint(path, env.trainer.get(), &epoch).ok());
  EXPECT_EQ(epoch, 7u);
}

TEST(CheckpointRobustnessTest, OversizedTensorShapeRejected) {
  // A shape whose volume overflows int64_t (or just exceeds the sanity
  // bound) must fail instead of attempting a giant allocation.
  const std::string path = TempPath("robust_overflow_tensor.bin");
  {
    BinaryWriter writer(path);
    writer.WriteI64Vector({int64_t{1} << 32, int64_t{1} << 32, 3});
    writer.WriteFloatVector({1.0f, 2.0f});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path);
  Result<Tensor> tensor = ReadTensor(&reader);
  ASSERT_FALSE(tensor.ok());
  EXPECT_NE(tensor.status().message().find("overflow"), std::string::npos)
      << tensor.status().message();
}

TEST(CheckpointRobustnessTest, SuccessfulReloadAfterFailedAttempts) {
  // A trainer that survived failed restore attempts can still load a good
  // checkpoint and serve requests.
  const std::string good = TempPath("robust_good.bin");
  const std::string bad = TempPath("robust_bad.bin");
  Env saved = MakeEnv(true);
  ASSERT_TRUE(SaveTrainerCheckpoint(saved.trainer.get(), good).ok());
  WriteFile(bad, "FATSCKPTgarbage");

  Env env = MakeEnv(false);
  EXPECT_FALSE(LoadTrainerCheckpoint(bad, env.trainer.get()).ok());
  ASSERT_TRUE(LoadTrainerCheckpoint(good, env.trainer.get()).ok());
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(
      saved.trainer->global_params()));
}

}  // namespace
}  // namespace fats
