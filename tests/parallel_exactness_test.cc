// Serial-vs-parallel exactness: with num_threads > 1 the trainers must
// produce bit-identical results to the serial schedule — same global
// parameters, same recorded state store (selections, minibatches, local
// and global models), same round log, same communication counters. This is
// the acceptance gate for the deterministic-parallelism contract
// (DESIGN.md §7): pre-derived Philox substreams, per-worker model
// replicas, and ordered reduction leave no observable difference.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/fr2.h"
#include "core/client_unlearner.h"
#include "core/fats_trainer.h"
#include "core/sample_unlearner.h"
#include "fl/fedavg.h"
#include "test_workloads.h"

namespace fats {
namespace {

struct TrainerRun {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

TrainerRun MakeRun(int64_t num_threads) {
  TrainerRun run;
  run.data = TinyImageData(6, 10);
  run.config = TinyFatsConfig(6, 10, /*rounds=*/3, /*e=*/2);
  run.config.num_threads = num_threads;
  run.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), run.config, &run.data);
  return run;
}

void ExpectIdenticalState(FatsTrainer* serial, FatsTrainer* parallel) {
  EXPECT_TRUE(serial->global_params().BitwiseEquals(parallel->global_params()))
      << "global parameters diverged";
  EXPECT_EQ(serial->trained_through(), parallel->trained_through());
  EXPECT_EQ(serial->local_iterations_executed(),
            parallel->local_iterations_executed());
  EXPECT_EQ(serial->generation(), parallel->generation());

  const StateStore& a = serial->store();
  const StateStore& b = parallel->store();
  ASSERT_EQ(a.SelectionRounds(), b.SelectionRounds());
  for (int64_t round : a.SelectionRounds()) {
    EXPECT_EQ(*a.GetClientSelection(round), *b.GetClientSelection(round))
        << "selection of round " << round;
  }
  ASSERT_EQ(a.GlobalModelRounds(), b.GlobalModelRounds());
  for (int64_t round : a.GlobalModelRounds()) {
    EXPECT_TRUE(
        a.GetGlobalModel(round)->BitwiseEquals(*b.GetGlobalModel(round)))
        << "global model of round " << round;
  }
  ASSERT_EQ(a.MinibatchKeys(), b.MinibatchKeys());
  for (const auto& [iter, client] : a.MinibatchKeys()) {
    EXPECT_EQ(*a.GetMinibatch(iter, client), *b.GetMinibatch(iter, client))
        << "minibatch at t=" << iter << " client=" << client;
  }
  ASSERT_EQ(a.LocalModelKeys(), b.LocalModelKeys());
  for (const auto& [iter, client] : a.LocalModelKeys()) {
    EXPECT_TRUE(a.GetLocalModel(iter, client)
                    ->BitwiseEquals(*b.GetLocalModel(iter, client)))
        << "local model at t=" << iter << " client=" << client;
  }

  const auto& log_a = serial->log().records();
  const auto& log_b = parallel->log().records();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].round, log_b[i].round);
    // Exact double equality on purpose: losses must accumulate in the same
    // order, so even the last bit agrees.
    EXPECT_EQ(log_a[i].test_accuracy, log_b[i].test_accuracy);
    EXPECT_EQ(log_a[i].mean_local_loss, log_b[i].mean_local_loss);
    EXPECT_EQ(log_a[i].recomputation, log_b[i].recomputation);
  }

  EXPECT_EQ(serial->comm_stats().rounds(), parallel->comm_stats().rounds());
  EXPECT_EQ(serial->comm_stats().uplink_bytes(),
            parallel->comm_stats().uplink_bytes());
  EXPECT_EQ(serial->comm_stats().downlink_bytes(),
            parallel->comm_stats().downlink_bytes());
  EXPECT_EQ(serial->comm_stats().messages(),
            parallel->comm_stats().messages());
}

TEST(ParallelExactnessTest, TrainingIsBitIdentical) {
  TrainerRun serial = MakeRun(1);
  TrainerRun parallel = MakeRun(4);
  serial.trainer->Train();
  parallel.trainer->Train();
  ExpectIdenticalState(serial.trainer.get(), parallel.trainer.get());
}

TEST(ParallelExactnessTest, FusedRoundPackIsBitIdentical) {
  // A/B over the round-start shared weight pack (DESIGN.md §7.6): routing
  // the clients' GEMMs through one pre-packed weight buffer must be
  // invisible to every recorded bit, serial and parallel alike — in the
  // forward pass AND in ReplayFrom, which sample unlearning exercises.
  for (int64_t threads : {1, 4}) {
    TrainerRun packed = MakeRun(threads);
    TrainerRun unpacked = MakeRun(threads);
    ASSERT_TRUE(packed.trainer->fused_round_pack()) << "expected default-on";
    unpacked.trainer->set_fused_round_pack(false);
    packed.trainer->Train();
    unpacked.trainer->Train();
    ExpectIdenticalState(unpacked.trainer.get(), packed.trainer.get());

    const std::vector<SampleRef> targets = {{0, 0}, {2, 2}};
    const int64_t t_max = packed.trainer->trained_through();
    SampleUnlearner unlearner_p(packed.trainer.get());
    SampleUnlearner unlearner_u(unpacked.trainer.get());
    auto outcome_p = unlearner_p.UnlearnBatch(targets, t_max);
    auto outcome_u = unlearner_u.UnlearnBatch(targets, t_max);
    ASSERT_TRUE(outcome_p.ok()) << outcome_p.status().message();
    ASSERT_TRUE(outcome_u.ok()) << outcome_u.status().message();
    ExpectIdenticalState(unpacked.trainer.get(), packed.trainer.get());
  }
}

TEST(ParallelExactnessTest, SampleUnlearningReplayIsBitIdentical) {
  TrainerRun serial = MakeRun(1);
  TrainerRun parallel = MakeRun(4);
  serial.trainer->Train();
  parallel.trainer->Train();

  // Unlearn a spread of samples so at least one recorded minibatch is hit
  // and ReplayFrom's parallel path executes.
  const std::vector<SampleRef> targets = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const int64_t t_max = serial.trainer->trained_through();
  SampleUnlearner unlearner_s(serial.trainer.get());
  SampleUnlearner unlearner_p(parallel.trainer.get());
  auto outcome_s = unlearner_s.UnlearnBatch(targets, t_max);
  auto outcome_p = unlearner_p.UnlearnBatch(targets, t_max);
  ASSERT_TRUE(outcome_s.ok()) << outcome_s.status().message();
  ASSERT_TRUE(outcome_p.ok()) << outcome_p.status().message();
  EXPECT_EQ(outcome_s->recomputed, outcome_p->recomputed);
  EXPECT_EQ(outcome_s->restart_iteration, outcome_p->restart_iteration);
  ExpectIdenticalState(serial.trainer.get(), parallel.trainer.get());
}

TEST(ParallelExactnessTest, ClientUnlearningRerunIsBitIdentical) {
  TrainerRun serial = MakeRun(1);
  TrainerRun parallel = MakeRun(4);
  serial.trainer->Train();
  parallel.trainer->Train();

  // Pick a client that certainly participated: the first selected one.
  const std::vector<int64_t>* first_selection =
      serial.trainer->store().GetClientSelection(1);
  ASSERT_NE(first_selection, nullptr);
  ASSERT_FALSE(first_selection->empty());
  const int64_t target = first_selection->front();

  const int64_t t_max = serial.trainer->trained_through();
  ClientUnlearner unlearner_s(serial.trainer.get());
  ClientUnlearner unlearner_p(parallel.trainer.get());
  auto outcome_s = unlearner_s.Unlearn(target, t_max);
  auto outcome_p = unlearner_p.Unlearn(target, t_max);
  ASSERT_TRUE(outcome_s.ok()) << outcome_s.status().message();
  ASSERT_TRUE(outcome_p.ok()) << outcome_p.status().message();
  ASSERT_TRUE(outcome_s->recomputed);
  EXPECT_EQ(outcome_s->recomputed, outcome_p->recomputed);
  ExpectIdenticalState(serial.trainer.get(), parallel.trainer.get());
}

TEST(ParallelExactnessTest, MidTrainingPauseAndResumeIsBitIdentical) {
  // Pausing mid-round exercises Run's store-reload entry path under the
  // parallel runner.
  TrainerRun serial = MakeRun(1);
  TrainerRun parallel = MakeRun(4);
  serial.trainer->TrainUntil(3);
  parallel.trainer->TrainUntil(3);
  ExpectIdenticalState(serial.trainer.get(), parallel.trainer.get());
  serial.trainer->TrainUntil(6);
  parallel.trainer->TrainUntil(6);
  ExpectIdenticalState(serial.trainer.get(), parallel.trainer.get());
}

TEST(ParallelExactnessTest, FedAvgAndFr2RecoveryAreBitIdentical) {
  FederatedDataset data_s = TinyImageData(6, 10);
  FederatedDataset data_p = TinyImageData(6, 10);
  FedAvgOptions options;
  options.clients_per_round_k = 3;
  options.local_iters_e = 2;
  options.batch_b = 4;
  options.seed = 11;

  FedAvgOptions options_p = options;
  options_p.num_threads = 4;
  FedAvgTrainer serial(TinyModelSpec(), options, &data_s);
  FedAvgTrainer parallel(TinyModelSpec(), options_p, &data_p);
  serial.RunRounds(3);
  parallel.RunRounds(3);
  ASSERT_TRUE(serial.global_params().BitwiseEquals(parallel.global_params()));
  ASSERT_EQ(serial.log().records().size(), parallel.log().records().size());
  for (size_t i = 0; i < serial.log().records().size(); ++i) {
    EXPECT_EQ(serial.log().records()[i].mean_local_loss,
              parallel.log().records()[i].mean_local_loss);
  }

  Fr2Options fr2_options;
  fr2_options.recovery_rounds = 2;
  Fr2Unlearner fr2_s(&serial, &data_s, fr2_options);
  Fr2Unlearner fr2_p(&parallel, &data_p, fr2_options);
  auto outcome_s = fr2_s.UnlearnClients({0});
  auto outcome_p = fr2_p.UnlearnClients({0});
  ASSERT_TRUE(outcome_s.ok()) << outcome_s.status().message();
  ASSERT_TRUE(outcome_p.ok()) << outcome_p.status().message();
  EXPECT_TRUE(serial.global_params().BitwiseEquals(parallel.global_params()))
      << "FR2 recovery diverged between serial and parallel";
}

}  // namespace
}  // namespace fats
