#include "data/federated_dataset.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

InMemoryDataset MakeShard(int64_t n, float offset) {
  Tensor features({n, 1});
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < n; ++i) {
    features[i] = offset + static_cast<float>(i);
    labels.push_back(i % 2);
  }
  return InMemoryDataset(std::move(features), std::move(labels), 2);
}

FederatedDataset MakeFederated(int64_t clients = 3, int64_t n = 4) {
  std::vector<InMemoryDataset> shards;
  for (int64_t k = 0; k < clients; ++k) {
    shards.push_back(MakeShard(n, static_cast<float>(100 * k)));
  }
  return FederatedDataset(std::move(shards), MakeShard(6, 1000.0f));
}

TEST(FederatedDatasetTest, InitialStateAllActive) {
  FederatedDataset fd = MakeFederated();
  EXPECT_EQ(fd.num_clients(), 3);
  EXPECT_EQ(fd.num_active_clients(), 3);
  EXPECT_EQ(fd.total_active_samples(), 12);
  EXPECT_EQ(fd.num_classes(), 2);
  EXPECT_EQ(fd.feature_dim(), 1);
  for (int64_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(fd.client_active(k));
    EXPECT_EQ(fd.num_active_samples(k), 4);
    EXPECT_EQ(fd.samples_of(k), 4);
  }
  EXPECT_EQ(fd.active_clients(), (std::vector<int64_t>{0, 1, 2}));
}

TEST(FederatedDatasetTest, RemoveSampleUpdatesActiveView) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveSample({1, 2}).ok());
  EXPECT_EQ(fd.num_active_samples(1), 3);
  EXPECT_FALSE(fd.sample_active(1, 2));
  EXPECT_TRUE(fd.sample_active(1, 1));
  EXPECT_EQ(fd.active_sample_indices(1), (std::vector<int64_t>{0, 1, 3}));
  // Other clients unaffected.
  EXPECT_EQ(fd.num_active_samples(0), 4);
}

TEST(FederatedDatasetTest, DoubleRemoveSampleFails) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveSample({0, 0}).ok());
  Status s = fd.RemoveSample({0, 0});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(FederatedDatasetTest, RemoveSampleOutOfRangeFails) {
  FederatedDataset fd = MakeFederated();
  EXPECT_EQ(fd.RemoveSample({0, 99}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(fd.RemoveSample({9, 0}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(fd.RemoveSample({-1, 0}).code(), StatusCode::kOutOfRange);
}

TEST(FederatedDatasetTest, RemoveClient) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveClient(1).ok());
  EXPECT_EQ(fd.num_active_clients(), 2);
  EXPECT_FALSE(fd.client_active(1));
  EXPECT_EQ(fd.active_clients(), (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(fd.total_active_samples(), 8);
}

TEST(FederatedDatasetTest, DoubleRemoveClientFails) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveClient(2).ok());
  EXPECT_EQ(fd.RemoveClient(2).code(), StatusCode::kFailedPrecondition);
}

TEST(FederatedDatasetTest, RemoveSampleFromRemovedClientFails) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveClient(0).ok());
  EXPECT_EQ(fd.RemoveSample({0, 1}).code(), StatusCode::kFailedPrecondition);
}

TEST(FederatedDatasetTest, MakeBatchGathersByStableIndex) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveSample({1, 0}).ok());
  Batch batch = fd.MakeBatch(1, {1, 3});
  ASSERT_EQ(batch.size(), 2);
  EXPECT_FLOAT_EQ(batch.inputs.at(0, 0), 101.0f);
  EXPECT_FLOAT_EQ(batch.inputs.at(1, 0), 103.0f);
}

TEST(FederatedDatasetDeathTest, BatchWithDeletedSampleAborts) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveSample({1, 0}).ok());
  EXPECT_DEATH(fd.MakeBatch(1, {0}), "deleted sample");
}

TEST(FederatedDatasetDeathTest, BatchFromRemovedClientAborts) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveClient(1).ok());
  EXPECT_DEATH(fd.MakeBatch(1, {0}), "removed client");
}

TEST(FederatedDatasetTest, SampleRefEquality) {
  SampleRef a{1, 2};
  SampleRef b{1, 2};
  SampleRef c{1, 3};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(FederatedDatasetTest, ToStringReflectsState) {
  FederatedDataset fd = MakeFederated();
  ASSERT_TRUE(fd.RemoveClient(0).ok());
  std::string s = fd.ToString();
  EXPECT_NE(s.find("active=2"), std::string::npos);
}

}  // namespace
}  // namespace fats
