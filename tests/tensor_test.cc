#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructFromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({3}, 2.5f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, FromVectorIsRank1) {
  Tensor t = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.size(), 3);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at(0, 1), 2.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {10, 20});
  a += b;
  EXPECT_EQ(a[0], 11.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= 3.0f;
  EXPECT_EQ(a[0], 3.0f);
}

TEST(TensorTest, AxpyAccumulates) {
  Tensor a({3}, {1, 1, 1});
  Tensor b({3}, {1, 2, 3});
  a.Axpy(2.0f, b);
  EXPECT_EQ(a[0], 3.0f);
  EXPECT_EQ(a[1], 5.0f);
  EXPECT_EQ(a[2], 7.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(t.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 1 + 4 + 9 + 16);
  EXPECT_EQ(t.ArgMax(), 2);
}

TEST(TensorTest, ArgMaxFirstOnTies) {
  Tensor t({3}, {5, 5, 1});
  EXPECT_EQ(t.ArgMax(), 0);
}

TEST(TensorTest, BitwiseEquals) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {1, 2});
  Tensor c({2}, {1, 2.001f});
  EXPECT_TRUE(a.BitwiseEquals(b));
  EXPECT_FALSE(a.BitwiseEquals(c));
  EXPECT_FALSE(a.BitwiseEquals(Tensor({1, 2}, {1, 2})));  // shape differs
}

TEST(TensorTest, AllClose) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {1.0005f, 2});
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-5f));
}

TEST(TensorTest, BinaryOperators) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor sum = a + b;
  EXPECT_EQ(sum[0], 4.0f);
  Tensor diff = b - a;
  EXPECT_EQ(diff[1], 2.0f);
  Tensor scaled = a * 2.0f;
  EXPECT_EQ(scaled[1], 4.0f);
}

TEST(TensorTest, ShapeStringAndToString) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ShapeString(), "[2, 3]");
  EXPECT_NE(t.ToString().find("Tensor[2, 3]"), std::string::npos);
}

TEST(TensorTest, ToStringElidesLargeTensors) {
  Tensor t({100});
  EXPECT_NE(t.ToString().find("..."), std::string::npos);
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_DEATH(a += b, "shape mismatch");
}

TEST(TensorDeathTest, ReshapeVolumeMismatchAborts) {
  Tensor t({4});
  EXPECT_DEATH(t.Reshape({3}), "volume");
}

}  // namespace
}  // namespace fats
