#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/parameter_vector.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "rng/rng_stream.h"

namespace fats {
namespace {

RngStream MakeRng() { return RngStream(uint64_t{42}); }

TEST(LinearTest, OutputShapeAndBiasApplied) {
  RngStream rng = MakeRng();
  Linear layer(3, 2, &rng);
  layer.Parameters()[1]->value.Fill(1.5f);  // bias
  Tensor x({2, 3});                          // zeros
  Tensor y = layer.Forward(x);
  ASSERT_EQ(y.dim(0), 2);
  ASSERT_EQ(y.dim(1), 2);
  // Zero input -> output equals bias.
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 1.5f);
}

TEST(LinearTest, KnownMatrixProduct) {
  RngStream rng = MakeRng();
  Linear layer(2, 2, &rng);
  // W = [[1, 2], [3, 4]] (out x in); b = [0, 0].
  layer.Parameters()[0]->value = Tensor({2, 2}, {1, 2, 3, 4});
  layer.Parameters()[1]->value = Tensor({2});
  Tensor x({1, 2}, {5, 6});
  Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 17);  // 5*1 + 6*2
  EXPECT_FLOAT_EQ(y.at(0, 1), 39);  // 5*3 + 6*4
}

TEST(LinearTest, ParametersReported) {
  RngStream rng = MakeRng();
  Linear layer(4, 3, &rng);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value.size(), 12);
  EXPECT_EQ(params[1]->value.size(), 3);
  EXPECT_EQ(layer.OutputFeatures(4), 3);
}

TEST(ReLUTest, ClampsNegative) {
  ReLU relu;
  Tensor x({1, 4}, {-1, 0, 2, -3});
  Tensor y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 0);
  EXPECT_FLOAT_EQ(y[2], 2);
  EXPECT_FLOAT_EQ(y[3], 0);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor x({1, 3}, {-1, 0.5f, 2});
  relu.Forward(x);
  Tensor g({1, 3}, {10, 10, 10});
  Tensor gx = relu.Backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0);
  EXPECT_FLOAT_EQ(gx[1], 10);
  EXPECT_FLOAT_EQ(gx[2], 10);
}

TEST(TanhTest, MatchesStdTanh) {
  Tanh layer;
  Tensor x({1, 2}, {0.5f, -1.0f});
  Tensor y = layer.Forward(x);
  EXPECT_NEAR(y[0], std::tanh(0.5), 1e-6);
  EXPECT_NEAR(y[1], std::tanh(-1.0), 1e-6);
}

TEST(SigmoidTest, RangeAndMidpoint) {
  Sigmoid layer;
  Tensor x({1, 3}, {0.0f, 10.0f, -10.0f});
  Tensor y = layer.Forward(x);
  EXPECT_NEAR(y[0], 0.5, 1e-6);
  EXPECT_GT(y[1], 0.999);
  EXPECT_LT(y[2], 0.001);
}

TEST(Conv2dTest, OutputGeometry) {
  RngStream rng = MakeRng();
  Conv2d conv(1, 4, 8, 8, 3, 1, &rng);  // same padding
  EXPECT_EQ(conv.out_height(), 8);
  EXPECT_EQ(conv.out_width(), 8);
  Tensor x({2, 64});
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.dim(1), 4 * 8 * 8);
  EXPECT_EQ(conv.OutputFeatures(64), 256);
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  RngStream rng = MakeRng();
  Conv2d conv(1, 1, 4, 4, 3, 1, &rng);
  // Kernel = delta at center, bias = 0 -> identity map.
  Tensor w({1, 9});
  w[4] = 1.0f;
  conv.Parameters()[0]->value = w;
  conv.Parameters()[1]->value = Tensor({1});
  Tensor x({1, 16}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Tensor y = conv.Forward(x);
  EXPECT_TRUE(y.AllClose(x, 1e-6f));
}

TEST(Conv2dTest, ValidConvolutionShrinksOutput) {
  RngStream rng = MakeRng();
  Conv2d conv(2, 3, 6, 5, 3, 0, &rng);
  EXPECT_EQ(conv.out_height(), 4);
  EXPECT_EQ(conv.out_width(), 3);
}

TEST(MaxPool2dTest, PicksWindowMaximum) {
  MaxPool2d pool(1, 4, 4, 2);
  Tensor x({1, 16}, {1, 2, 5, 6,
                     3, 4, 7, 8,
                     9, 10, 13, 14,
                     11, 12, 15, 16});
  Tensor y = pool.Forward(x);
  ASSERT_EQ(y.dim(1), 4);
  EXPECT_FLOAT_EQ(y[0], 4);
  EXPECT_FLOAT_EQ(y[1], 8);
  EXPECT_FLOAT_EQ(y[2], 12);
  EXPECT_FLOAT_EQ(y[3], 16);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(1, 2, 2, 2);
  Tensor x({1, 4}, {1, 7, 3, 2});
  pool.Forward(x);
  Tensor g({1, 1}, {5});
  Tensor gx = pool.Backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0);
  EXPECT_FLOAT_EQ(gx[1], 5);
  EXPECT_FLOAT_EQ(gx[2], 0);
  EXPECT_FLOAT_EQ(gx[3], 0);
}

TEST(EmbeddingTest, LooksUpRows) {
  RngStream rng = MakeRng();
  Embedding embed(5, 3, 2, &rng);
  Tensor ids({1, 2}, {4, 0});
  Tensor y = embed.Forward(ids);
  ASSERT_EQ(y.dim(1), 6);
  const Tensor& table = embed.Parameters()[0]->value;
  for (int64_t d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(y[d], table.at(4, d));
    EXPECT_FLOAT_EQ(y[3 + d], table.at(0, d));
  }
}

TEST(EmbeddingTest, BackwardAccumulatesPerId) {
  RngStream rng = MakeRng();
  Embedding embed(4, 2, 2, &rng);
  Tensor ids({1, 2}, {1, 1});  // same id twice
  embed.Forward(ids);
  Tensor g({1, 4}, {1, 2, 3, 4});
  embed.Backward(g);
  const Tensor& grad = embed.Parameters()[0]->grad;
  EXPECT_FLOAT_EQ(grad.at(1, 0), 4);  // 1 + 3
  EXPECT_FLOAT_EQ(grad.at(1, 1), 6);  // 2 + 4
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0);
}

TEST(LstmTest, OutputShapeAndDeterminism) {
  RngStream rng = MakeRng();
  Lstm lstm(3, 5, 4, &rng);
  Tensor x({2, 12});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.1f * static_cast<float>(i);
  Tensor y1 = lstm.Forward(x);
  Tensor y2 = lstm.Forward(x);
  ASSERT_EQ(y1.dim(0), 2);
  ASSERT_EQ(y1.dim(1), 5);
  EXPECT_TRUE(y1.BitwiseEquals(y2));
}

TEST(LstmTest, ZeroInputGivesBoundedOutput) {
  RngStream rng = MakeRng();
  Lstm lstm(2, 3, 3, &rng);
  Tensor x({1, 6});
  Tensor y = lstm.Forward(x);
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_LE(std::fabs(y[i]), 1.0f);  // h = o * tanh(c) is in (-1, 1)
  }
}

TEST(SequentialTest, ChainsLayersAndCollectsParams) {
  RngStream rng = MakeRng();
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<Linear>(4, 3, &rng));
  seq->Add(std::make_unique<ReLU>());
  seq->Add(std::make_unique<Linear>(3, 2, &rng));
  EXPECT_EQ(seq->Parameters().size(), 4u);
  EXPECT_EQ(seq->OutputFeatures(4), 2);
  Tensor x({5, 4});
  Tensor y = seq->Forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_EQ(seq->num_layers(), 3u);
}

TEST(LossTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});
  double l = loss.Compute(logits, {0, 3}, nullptr);
  EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(LossTest, GradientIsSoftmaxMinusOneHotOverBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2}, {0.0f, 0.0f});
  Tensor grad;
  loss.Compute(logits, {1}, &grad);
  EXPECT_NEAR(grad.at(0, 0), 0.5, 1e-6);
  EXPECT_NEAR(grad.at(0, 1), -0.5, 1e-6);
}

TEST(LossTest, PerExampleLossMatchesBatchMean) {
  SoftmaxCrossEntropy loss;
  Tensor logits({3, 4});
  for (int64_t i = 0; i < logits.size(); ++i) {
    logits[i] = 0.1f * static_cast<float>(i % 7);
  }
  std::vector<int64_t> labels = {1, 0, 3};
  std::vector<double> per = loss.PerExampleLoss(logits, labels);
  double mean = (per[0] + per[1] + per[2]) / 3.0;
  EXPECT_NEAR(mean, loss.Compute(logits, labels, nullptr), 1e-9);
}

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
}

TEST(ParameterVectorTest, RoundTripFlattenUnflatten) {
  RngStream rng = MakeRng();
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<Linear>(3, 2, &rng));
  seq->Add(std::make_unique<Linear>(2, 2, &rng));
  Tensor flat = FlattenParameters(seq.get());
  EXPECT_EQ(flat.size(), ParameterCount(seq.get()));
  Tensor modified = flat;
  for (int64_t i = 0; i < modified.size(); ++i) modified[i] += 1.0f;
  UnflattenParameters(modified, seq.get());
  Tensor back = FlattenParameters(seq.get());
  EXPECT_TRUE(back.BitwiseEquals(modified));
}

TEST(ParameterVectorTest, SgdStepMovesAgainstGradient) {
  RngStream rng = MakeRng();
  Linear layer(2, 1, &rng);
  layer.Parameters()[0]->value = Tensor({1, 2}, {1.0f, 1.0f});
  layer.Parameters()[0]->grad = Tensor({1, 2}, {0.5f, -0.5f});
  layer.Parameters()[1]->grad = Tensor({1}, {1.0f});
  ApplySgdStep(&layer, 0.1);
  EXPECT_FLOAT_EQ(layer.Parameters()[0]->value.at(0, 0), 0.95f);
  EXPECT_FLOAT_EQ(layer.Parameters()[0]->value.at(0, 1), 1.05f);
  EXPECT_FLOAT_EQ(layer.Parameters()[1]->value[0], -0.1f);
}

TEST(OptimizerTest, MomentumAcceleratesRepeatedGradients) {
  RngStream rng = MakeRng();
  Linear plain_layer(1, 1, &rng);
  RngStream rng2 = MakeRng();
  Linear momentum_layer(1, 1, &rng2);
  plain_layer.Parameters()[0]->value.Fill(0.0f);
  momentum_layer.Parameters()[0]->value.Fill(0.0f);
  SgdOptimizer plain(0.1, 0.0);
  SgdOptimizer momentum(0.1, 0.9);
  for (int step = 0; step < 5; ++step) {
    plain_layer.Parameters()[0]->grad.Fill(1.0f);
    momentum_layer.Parameters()[0]->grad.Fill(1.0f);
    plain.Step(&plain_layer);
    momentum.Step(&momentum_layer);
  }
  // With momentum the weight has moved strictly further.
  EXPECT_LT(momentum_layer.Parameters()[0]->value[0],
            plain_layer.Parameters()[0]->value[0]);
}

TEST(OptimizerTest, ZeroGradClearsAccumulators) {
  RngStream rng = MakeRng();
  Linear layer(2, 2, &rng);
  layer.Parameters()[0]->grad.Fill(3.0f);
  layer.ZeroGrad();
  EXPECT_DOUBLE_EQ(layer.Parameters()[0]->grad.Sum(), 0.0);
}

}  // namespace
}  // namespace fats
