// End-to-end integration: the full §6 pipeline (train FATS + baselines,
// issue unlearning requests, compare costs) on a reduced scaled profile.

#include <gtest/gtest.h>

#include "baselines/fr2.h"
#include "baselines/frs.h"
#include "core/unlearning_executor.h"
#include "data/paper_configs.h"
#include "metrics/unlearning_metrics.h"

namespace fats {
namespace {

DatasetProfile ReducedProfile() {
  DatasetProfile profile = ScaledProfile("mnist").value();
  // Shrink for test runtime while keeping ρ values: M=20, K=2, R=5, E=5
  // -> ρ_C = 2·25/(5·20) = 0.5 ; b=4, N=40 -> ρ_S = 4·2·25/(20·40) = 0.25.
  profile.clients_m = 20;
  profile.rounds_r = 5;
  profile.test_size = 120;
  return profile;
}

TEST(IntegrationTest, FullFatsPipelineSampleLevel) {
  DatasetProfile profile = ReducedProfile();
  FederatedDataset data = BuildFederatedData(profile, 1);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 21;
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  const double acc = trainer.EvaluateTestAccuracy();
  EXPECT_GT(acc, 0.3) << "model failed to learn the scaled task";

  const size_t pre_request_records = trainer.log().records().size();
  UnlearningExecutor executor(&trainer);
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(5, id);
  std::vector<SampleRef> targets = PickRandomActiveSamples(data, 5, &rng);
  UnlearningSummary summary =
      executor.ExecuteSampleBatch(targets, config.total_iters_t()).value();
  EXPECT_EQ(summary.requests, 5);
  // FATS re-computation, when triggered, is at most a full retrain.
  EXPECT_LE(summary.total_recomputed_rounds, profile.rounds_r);
  RecoveryMetrics recovery =
      AnalyzeRecovery(trainer.log(), pre_request_records);
  EXPECT_LT(recovery.accuracy_drop, 0.6);
}

TEST(IntegrationTest, FatsBeatsFrsOnUnlearningCost) {
  DatasetProfile profile = ReducedProfile();
  // --- FATS ---
  FederatedDataset fats_data = BuildFederatedData(profile, 1);
  FatsConfig config = FatsConfig::FromProfile(profile);
  config.seed = 22;
  FatsTrainer fats(profile.model, config, &fats_data);
  fats.Train();
  UnlearningExecutor executor(&fats);
  StreamId id;
  id.purpose = RngPurpose::kGeneric;
  RngStream rng(6, id);
  std::vector<int64_t> targets = PickRandomActiveClients(fats_data, 2, &rng);
  UnlearningSummary fats_cost =
      executor.ExecuteClientBatch(targets, config.total_iters_t()).value();

  // --- FRS on the same workload ---
  FederatedDataset frs_data = BuildFederatedData(profile, 1);
  FedAvgOptions options;
  options.clients_per_round_k = profile.clients_per_round_k;
  options.local_iters_e = profile.local_iters_e;
  options.batch_b = profile.batch_b;
  options.learning_rate = profile.learning_rate;
  options.seed = 22;
  FedAvgTrainer fedavg(profile.model, options, &frs_data);
  fedavg.RunRounds(profile.rounds_r);
  FrsUnlearner frs(&fedavg, &frs_data);
  UnlearningOutcome frs_cost =
      frs.UnlearnClients(targets, profile.rounds_r).value();

  // FRS always pays the full R rounds; FATS pays at most that and usually
  // less (≤ because the earliest participation may be round 1).
  EXPECT_EQ(frs_cost.recomputed_rounds, profile.rounds_r);
  EXPECT_LE(fats_cost.total_recomputed_rounds, frs_cost.recomputed_rounds);
}

TEST(IntegrationTest, Fr2PipelineRuns) {
  DatasetProfile profile = ReducedProfile();
  FederatedDataset data = BuildFederatedData(profile, 1);
  FedAvgOptions options;
  options.clients_per_round_k = profile.clients_per_round_k;
  options.local_iters_e = profile.local_iters_e;
  options.batch_b = profile.batch_b;
  options.learning_rate = profile.learning_rate;
  options.seed = 23;
  FedAvgTrainer trainer(profile.model, options, &data);
  trainer.RunRounds(profile.rounds_r);
  Fr2Options fr2_options;
  fr2_options.recovery_rounds = 2;
  Fr2Unlearner fr2(&trainer, &data, fr2_options);
  UnlearningOutcome outcome = fr2.UnlearnSamples({{0, 0}, {1, 1}}).value();
  EXPECT_EQ(outcome.recomputed_rounds, 2);
  EXPECT_GT(trainer.EvaluateTestAccuracy(), 0.1);
}

TEST(IntegrationTest, WholePipelineIsDeterministic) {
  DatasetProfile profile = ReducedProfile();
  auto run_pipeline = [&profile]() {
    FederatedDataset data = BuildFederatedData(profile, 9);
    FatsConfig config = FatsConfig::FromProfile(profile);
    config.seed = 31;
    FatsTrainer trainer(profile.model, config, &data);
    trainer.Train();
    SampleUnlearner unlearner(&trainer);
    // Deterministic target.
    EXPECT_TRUE(unlearner.Unlearn({0, 0}, config.total_iters_t()).ok());
    return trainer.global_params();
  };
  Tensor a = run_pipeline();
  Tensor b = run_pipeline();
  EXPECT_TRUE(a.BitwiseEquals(b));
}

TEST(IntegrationTest, TextProfileEndToEnd) {
  DatasetProfile profile = ScaledProfile("shakespeare").value();
  profile.clients_m = 12;
  profile.samples_per_client_n = 20;
  profile.rounds_r = 3;
  profile.local_iters_e = 4;
  profile.test_size = 80;
  FederatedDataset data = BuildFederatedData(profile, 2);
  FatsConfig config = FatsConfig::FromProfile(profile);
  if (!config.Validate().ok()) {
    config.rho_c = 0.5;
    config.rho_s = 0.25;
  }
  ASSERT_TRUE(config.Validate().ok());
  FatsTrainer trainer(profile.model, config, &data);
  trainer.Train();
  EXPECT_EQ(trainer.log().records().size(),
            static_cast<size_t>(profile.rounds_r));
  ClientUnlearner unlearner(&trainer);
  EXPECT_TRUE(unlearner.Unlearn(0, config.total_iters_t()).ok());
  EXPECT_FALSE(data.client_active(0));
}

}  // namespace
}  // namespace fats
