#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "fl/client.h"
#include "fl/server.h"

namespace fats {
namespace {

FederatedDataset MakeFederated(int64_t clients, int64_t n) {
  std::vector<InMemoryDataset> shards;
  for (int64_t k = 0; k < clients; ++k) {
    Tensor features({n, 2});
    std::vector<int64_t> labels;
    for (int64_t i = 0; i < n; ++i) {
      features.at(i, 0) = static_cast<float>(k);
      features.at(i, 1) = static_cast<float>(i);
      labels.push_back(i % 2);
    }
    shards.emplace_back(std::move(features), std::move(labels), 2);
  }
  Tensor test_features({4, 2});
  return FederatedDataset(std::move(shards),
                          InMemoryDataset(std::move(test_features),
                                          {0, 1, 0, 1}, 2));
}

ModelSpec SmallSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kLogReg;
  spec.input_dim = 2;
  spec.num_classes = 2;
  return spec;
}

TEST(ClientRuntimeTest, MinibatchIsSortedDistinctActive) {
  FederatedDataset data = MakeFederated(2, 10);
  Model model(SmallSpec(), 1);
  ClientRuntime runtime(&data, &model);
  RngStream rng(uint64_t{3});
  std::vector<int64_t> batch = runtime.SampleMinibatch(0, 4, &rng);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
  std::set<int64_t> distinct(batch.begin(), batch.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(ClientRuntimeTest, MinibatchSkipsDeletedSamples) {
  FederatedDataset data = MakeFederated(2, 5);
  ASSERT_TRUE(data.RemoveSample({0, 2}).ok());
  Model model(SmallSpec(), 1);
  ClientRuntime runtime(&data, &model);
  RngStream rng(uint64_t{4});
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> batch = runtime.SampleMinibatch(0, 3, &rng);
    EXPECT_EQ(std::count(batch.begin(), batch.end(), 2), 0)
        << "deleted sample drawn";
  }
}

TEST(ClientRuntimeTest, MinibatchMarginalIsUniformOverActive) {
  FederatedDataset data = MakeFederated(1, 5);
  ASSERT_TRUE(data.RemoveSample({0, 0}).ok());
  Model model(SmallSpec(), 1);
  ClientRuntime runtime(&data, &model);
  RngStream rng(uint64_t{5});
  // Active = {1,2,3,4}; P(i in batch of size 2) = 1/2 each.
  std::map<int64_t, int> counts;
  const int trials = 8000;
  for (int trial = 0; trial < trials; ++trial) {
    for (int64_t i : runtime.SampleMinibatch(0, 2, &rng)) counts[i]++;
  }
  for (int64_t i = 1; i <= 4; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(trials), 0.5, 0.03);
  }
}

TEST(ClientRuntimeTest, StepReducesLossOnRepeatedBatch) {
  FederatedDataset data = MakeFederated(1, 6);
  Model model(SmallSpec(), 1);
  ClientRuntime runtime(&data, &model);
  std::vector<int64_t> batch = {0, 1, 2, 3};
  double first = runtime.Step(0, batch, 0.2);
  double last = first;
  for (int i = 0; i < 30; ++i) last = runtime.Step(0, batch, 0.2);
  EXPECT_LT(last, first);
}

TEST(ServerRuntimeTest, WithReplacementSamplesActiveOnly) {
  FederatedDataset data = MakeFederated(5, 3);
  ASSERT_TRUE(data.RemoveClient(2).ok());
  RngStream rng(uint64_t{6});
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> sel =
        ServerRuntime::SampleClientsWithReplacement(data, 4, &rng);
    ASSERT_EQ(sel.size(), 4u);
    for (int64_t k : sel) {
      EXPECT_NE(k, 2);
      EXPECT_GE(k, 0);
      EXPECT_LT(k, 5);
    }
  }
}

TEST(ServerRuntimeTest, WithReplacementAllowsDuplicates) {
  FederatedDataset data = MakeFederated(2, 3);
  RngStream rng(uint64_t{7});
  bool found_duplicate = false;
  for (int trial = 0; trial < 20 && !found_duplicate; ++trial) {
    std::vector<int64_t> sel =
        ServerRuntime::SampleClientsWithReplacement(data, 4, &rng);
    std::set<int64_t> distinct(sel.begin(), sel.end());
    found_duplicate = distinct.size() < sel.size();
  }
  EXPECT_TRUE(found_duplicate);
}

TEST(ServerRuntimeTest, WithoutReplacementIsDistinct) {
  FederatedDataset data = MakeFederated(6, 3);
  RngStream rng(uint64_t{8});
  std::vector<int64_t> sel =
      ServerRuntime::SampleClientsWithoutReplacement(data, 4, &rng);
  std::set<int64_t> distinct(sel.begin(), sel.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(ServerRuntimeTest, ClientMarginalIsUniform) {
  FederatedDataset data = MakeFederated(4, 3);
  RngStream rng(uint64_t{9});
  std::map<int64_t, int> counts;
  const int trials = 6000;
  for (int trial = 0; trial < trials; ++trial) {
    for (int64_t k :
         ServerRuntime::SampleClientsWithReplacement(data, 2, &rng)) {
      counts[k]++;
    }
  }
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(2 * trials), 0.25, 0.02);
  }
}

TEST(ServerRuntimeTest, AverageModelsIsElementwiseMean) {
  std::vector<Tensor> models;
  models.push_back(Tensor({2}, {1, 10}));
  models.push_back(Tensor({2}, {3, 20}));
  models.push_back(Tensor({2}, {5, 30}));
  Tensor avg = ServerRuntime::AverageModels(models);
  EXPECT_FLOAT_EQ(avg[0], 3.0f);
  EXPECT_FLOAT_EQ(avg[1], 20.0f);
}

TEST(ServerRuntimeTest, AverageWithMultiplicityWeighsDuplicates) {
  std::vector<Tensor> models;
  models.push_back(Tensor({1}, {1}));
  models.push_back(Tensor({1}, {1}));
  models.push_back(Tensor({1}, {4}));
  Tensor avg = ServerRuntime::AverageModels(models);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
}

}  // namespace
}  // namespace fats
