// Tests for the fats_analyze engine (tools/analyze/): lexer and code-model
// unit tests, include-graph layering, report emission, and one golden
// fixture triple per analyzer rule — firing, clean, and suppressed — so
// every rule's positive and negative space is pinned.  The end-to-end
// "tree is clean" check is the fats_analyze ctest registered in
// tools/CMakeLists.txt, which runs the real binary over the repository.

#include "analyze/analyzer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/code_model.h"
#include "analyze/include_graph.h"
#include "analyze/lexer.h"
#include "analyze/report.h"
#include "analyze/rules.h"
#include "gtest/gtest.h"

namespace fats::analyze {
namespace {

std::vector<std::string> ActiveRules(const AnalysisResult& result) {
  std::vector<std::string> rules;
  for (const lint::Finding& f : result.findings) {
    if (!f.suppressed) rules.push_back(f.rule);
  }
  std::sort(rules.begin(), rules.end());
  return rules;
}

AnalysisResult AnalyzeOne(const std::string& path, const std::string& content) {
  return AnalyzeFiles({{path, content}});
}

bool HasRule(const AnalysisResult& result, const std::string& rule,
             bool suppressed = false) {
  for (const lint::Finding& f : result.findings) {
    if (f.rule == rule && f.suppressed == suppressed) return true;
  }
  return false;
}

// --- Lexer ---

TEST(AnalyzeLexer, FusesMultiCharOperators) {
  const std::string src = "a += b; p->q(); m::n << 2; x >>= 1;";
  const std::vector<Token> toks = Lex(src);
  auto has = [&](std::string_view text, TokKind kind) {
    for (const Token& t : toks) {
      if (t.text == text && t.kind == kind) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("+=", TokKind::kPunct));
  EXPECT_TRUE(has("->", TokKind::kPunct));
  EXPECT_TRUE(has("::", TokKind::kPunct));
  EXPECT_TRUE(has("<<", TokKind::kPunct));
  EXPECT_TRUE(has(">>", TokKind::kPunct));
  EXPECT_TRUE(has("a", TokKind::kIdent));
}

TEST(AnalyzeLexer, NumbersAndLineNumbers) {
  const std::vector<Token> toks = Lex("int a = 0x1Fu;\ndouble b = 1e-3;\n");
  bool saw_hex = false;
  int b_line = 0;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kNumber && t.text == "0x1Fu") saw_hex = true;
    if (t.kind == TokKind::kIdent && t.text == "b") b_line = t.line;
  }
  EXPECT_TRUE(saw_hex);
  EXPECT_EQ(b_line, 2);
}

TEST(AnalyzeLexer, MatchForwardNested) {
  const std::vector<Token> toks = Lex("f(a, g(b, h[c]), d); x;");
  ASSERT_TRUE(IsIdent(toks, 0, "f"));
  ASSERT_TRUE(IsPunct(toks, 1, "("));
  const size_t past = MatchForward(toks, 1);
  ASSERT_LT(past, toks.size());
  EXPECT_TRUE(IsPunct(toks, past, ";"));
}

// --- Code model ---

TEST(AnalyzeCodeModel, ExtractsQualifiedMethodDefinition) {
  const std::vector<Token> toks =
      Lex("Status JournalWriter::Append(int p) { return s_; }");
  const std::vector<FunctionDef> defs = ExtractFunctions(toks);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].qualified, "JournalWriter::Append");
  EXPECT_EQ(defs[0].name, "Append");
}

TEST(AnalyzeCodeModel, ExtractsDefWithFusedAngleReturnType) {
  // `Result<std::unique_ptr<W>>` lexes the closing angles as one `>>`
  // token; the extractor must still see a definition (regression guard).
  const std::vector<Token> toks = Lex(
      "Result<std::unique_ptr<W>> W::Open(const std::string& p) {"
      "  return nullptr; }");
  const std::vector<FunctionDef> defs = ExtractFunctions(toks);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].qualified, "W::Open");
}

TEST(AnalyzeCodeModel, ExtractsConstructorWithInitList) {
  const std::vector<Token> toks =
      Lex("Foo::Foo() : a_(1), b_{2} { Init(); }");
  const std::vector<FunctionDef> defs = ExtractFunctions(toks);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].qualified, "Foo::Foo");
}

TEST(AnalyzeCodeModel, CallSitesAreNotDefinitions) {
  const std::vector<Token> toks =
      Lex("void F() { Bar(x); obj.Baz(y); return Qux(z); }");
  const std::vector<FunctionDef> defs = ExtractFunctions(toks);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].name, "F");
}

TEST(AnalyzeCodeModel, FindsLambdaParams) {
  const std::vector<Token> toks =
      Lex("pool.ParallelFor(n, [&](int64_t i, int w) { use(i, w); });");
  const std::vector<LambdaBody> lambdas = FindLambdas(toks, 0, toks.size());
  ASSERT_EQ(lambdas.size(), 1u);
  const std::vector<std::string> expected = {"i", "w"};
  EXPECT_EQ(lambdas[0].param_names, expected);
}

TEST(AnalyzeCodeModel, SubscriptIsNotALambda) {
  const std::vector<Token> toks = Lex("int x = arr[i]; int y = m[k];");
  EXPECT_TRUE(FindLambdas(toks, 0, toks.size()).empty());
}

// --- Include graph / layering ---

TEST(AnalyzeIncludeGraph, ModuleOfAndRank) {
  EXPECT_EQ(ModuleOf("src/core/fats_trainer.cc"), "core");
  EXPECT_EQ(ModuleOf("src/nn/linear.h"), "nn");
  EXPECT_EQ(ModuleOf("tools/fats_cli.cc"), "");
  EXPECT_EQ(ModuleRank("util"), 0);
  EXPECT_LT(ModuleRank("nn"), ModuleRank("fl"));
  EXPECT_LT(ModuleRank("fl"), ModuleRank("core"));
  EXPECT_LT(ModuleRank("core"), ModuleRank("io"));
  // transport sits beside nn: above the tensors/rng it frames and draws
  // fault schedules from, below the fl/core layers that deliver through it.
  EXPECT_EQ(ModuleRank("transport"), ModuleRank("nn"));
  EXPECT_LT(ModuleRank("transport"), ModuleRank("fl"));
  // state holds compressed tensors/index lists, below everything that
  // records history through it (fl upward) and above what it encodes.
  EXPECT_LT(ModuleRank("tensor"), ModuleRank("state"));
  EXPECT_LT(ModuleRank("state"), ModuleRank("nn"));
  EXPECT_LT(ModuleRank("state"), ModuleRank("fl"));
  EXPECT_EQ(ModuleRank("unknown-module"), -1);
}

TEST(AnalyzeIncludeGraph, RankViolationFiresUpwardOnly) {
  IncludeGraph graph;
  graph.AddFile("src/nn/layer.h", "#include \"fl/server.h\"\n");
  graph.AddFile("src/fl/server.h", "#include \"nn/layer.h\"\n");
  const std::vector<IncludeEdge> bad = graph.RankViolations();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].from_file, "src/nn/layer.h");
  EXPECT_EQ(bad[0].target, "fl/server.h");
}

TEST(AnalyzeIncludeGraph, CycleAmongUnrankedModules) {
  // Unknown modules are exempt from the rank check but still cycle-checked.
  IncludeGraph graph;
  graph.AddFile("src/alpha/a.h", "#include \"beta/b.h\"\n");
  graph.AddFile("src/beta/b.h", "#include \"alpha/a.h\"\n");
  EXPECT_TRUE(graph.RankViolations().empty());
  EXPECT_EQ(graph.Cycles().size(), 1u);
}

// --- Rule fixtures: rng-raw-key ---

TEST(AnalyzeRngRawKey, LiteralKeyFires) {
  const AnalysisResult r = AnalyzeOne("src/fl/x.cc", "RngStream s(12345);\n");
  EXPECT_TRUE(HasRule(r, kRuleRngRawKey));
}

TEST(AnalyzeRngRawKey, PhiloxOutsideRngFires) {
  const AnalysisResult r = AnalyzeOne("src/core/x.cc", "PhiloxEngine e(42);\n");
  EXPECT_TRUE(HasRule(r, kRuleRngRawKey));
}

TEST(AnalyzeRngRawKey, DerivedKeyAndStructuredFormAreClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "RngStream batch(stream_keys[s]);\n"
      "RngStream rng(root_seed, MakeStreamId(kDropout, round, client));\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeRngRawKey, InsideRngDirIsClean) {
  const AnalysisResult r = AnalyzeOne("src/rng/philox_test_util.cc",
                               "PhiloxEngine e(42); RngStream s(7);\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeRngRawKey, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc", "RngStream s(12345);  // fats-lint: allow(rng-raw-key)\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleRngRawKey, /*suppressed=*/true));
}

// --- Rule fixtures: rng-shared-stream ---

TEST(AnalyzeRngSharedStream, CapturedStreamDrawFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void Draw(ThreadPool& pool, RngStream& shared, double* out) {\n"
      "  pool.ParallelFor(4, [&](int64_t i, int w) {\n"
      "    out[i] = shared.NextDouble();\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleRngSharedStream));
}

TEST(AnalyzeRngSharedStream, SlotIndexedAndTaskLocalAreClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void Draw(ThreadPool& pool, double* out) {\n"
      "  pool.ParallelFor(4, [&](int64_t i, int w) {\n"
      "    out[i] = streams[w].NextDouble();\n"
      "    RngStream local(keys[i]);\n"
      "    out[i] += local.NextDouble();\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeRngSharedStream, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void Draw(ThreadPool& pool, RngStream& shared, double* out) {\n"
      "  pool.ParallelFor(4, [&](int64_t i, int w) {\n"
      "    // fats-lint: allow(rng-shared-stream)\n"
      "    out[i] = shared.NextDouble();\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleRngSharedStream, /*suppressed=*/true));
}

// --- Rule fixtures: rng-unordered-draw ---
// (src/data paths: the legacy unordered-iteration rule is scoped to
// core/fl/baselines, so only the analyzer rule is in play here.)

TEST(AnalyzeRngUnorderedDraw, DrawInsideUnorderedLoopFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/data/x.cc",
      "std::unordered_map<int, int> weights_;\n"
      "void F(RngStream& rng) {\n"
      "  for (auto& kv : weights_) {\n"
      "    double u = rng.NextDouble();\n"
      "    (void)u;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleRngUnorderedDraw));
}

TEST(AnalyzeRngUnorderedDraw, OrderedLoopIsClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/data/x.cc",
      "std::vector<int> weights_;\n"
      "void F(RngStream& rng) {\n"
      "  for (auto& v : weights_) {\n"
      "    double u = rng.NextDouble();\n"
      "    (void)u;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeRngUnorderedDraw, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/data/x.cc",
      "std::unordered_map<int, int> weights_;\n"
      "void F(RngStream& rng) {\n"
      "  for (auto& kv : weights_) {\n"
      "    double u = rng.NextDouble();  // fats-lint: allow(rng-unordered-draw)\n"
      "    (void)u;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleRngUnorderedDraw, /*suppressed=*/true));
}

// --- Rule fixtures: nondet-reduction ---

TEST(AnalyzeNondetReduction, SharedFloatAccumulationFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void Acc(ThreadPool& pool, const std::vector<double>& grad) {\n"
      "  double sum = 0.0;\n"
      "  pool.ParallelFor(grad.size(), [&](int64_t i, int w) {\n"
      "    sum += grad[i];\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleNondetReduction));
}

TEST(AnalyzeNondetReduction, SlotIndexedAndIntCountersAreClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void Acc(ThreadPool& pool, const std::vector<double>& grad) {\n"
      "  std::vector<double> partial(4, 0.0);\n"
      "  int64_t count = 0;\n"
      "  pool.ParallelFor(grad.size(), [&](int64_t i, int w) {\n"
      "    partial[w] += grad[i];\n"
      "    count += 1;\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeNondetReduction, UnorderedLoopAccumulationFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/data/x.cc",
      "std::unordered_map<int, double> w_;\n"
      "double Total() {\n"
      "  double total = 0.0;\n"
      "  for (const auto& kv : w_) total += kv.second;\n"
      "  return total;\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleNondetReduction));
}

TEST(AnalyzeNondetReduction, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void Acc(ThreadPool& pool, const std::vector<double>& grad) {\n"
      "  double sum = 0.0;\n"
      "  pool.ParallelFor(grad.size(), [&](int64_t i, int w) {\n"
      "    sum += grad[i];  // fats-lint: allow(nondet-reduction)\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleNondetReduction, /*suppressed=*/true));
}

// --- Rule fixtures: tile-overlap ---

TEST(AnalyzeTileOverlap, SharedSubscriptWriteFires) {
  // The subscript `row` is neither a lambda parameter nor declared in the
  // body: every worker writes the same output element.
  const AnalysisResult r = AnalyzeOne(
      "src/tensor/x.cc",
      "void Kernel(ThreadPool& pool, float* c, int64_t row) {\n"
      "  pool.ParallelFor(8, [&](int64_t band, int64_t w) {\n"
      "    c[row] = 1.0f;\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleTileOverlap));
}

TEST(AnalyzeTileOverlap, BandDerivedWritesAreClean) {
  // Writes indexed by the task parameter or by body-local state derived
  // from it are the sanctioned fixed-ownership pattern; task-local buffers
  // are private by construction.
  const AnalysisResult r = AnalyzeOne(
      "src/tensor/x.cc",
      "void Kernel(ThreadPool& pool, float* c, int64_t band_rows) {\n"
      "  pool.ParallelFor(8, [&](int64_t band, int64_t w) {\n"
      "    const int64_t row0 = band * band_rows;\n"
      "    float scratch[16];\n"
      "    scratch[0] = 0.0f;\n"
      "    c[band] = 1.0f;\n"
      "    c[row0 + 1] = 2.0f;\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeTileOverlap, OutsideSrcTensorIsExempt) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "void F(ThreadPool& pool, float* c, int64_t row) {\n"
      "  pool.ParallelFor(8, [&](int64_t band, int64_t w) {\n"
      "    c[row] = 1.0f;\n"
      "  });\n"
      "}\n");
  EXPECT_FALSE(HasRule(r, kRuleTileOverlap));
}

// --- Rule fixtures: resident-history ---

TEST(AnalyzeResidentHistory, MemberMapOfIndexListsFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/history.h",
      "struct Store {\n"
      "  std::map<Key, std::vector<int64_t>> minibatches_;\n"
      "};\n");
  EXPECT_TRUE(HasRule(r, kRuleResidentHistory));
}

TEST(AnalyzeResidentHistory, NestedVectorWithInitializerFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/history.h",
      "std::vector<std::vector<int64_t>> per_round = {};\n");
  EXPECT_TRUE(HasRule(r, kRuleResidentHistory));
}

TEST(AnalyzeResidentHistory, UnorderedMapMemberFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/history.h",
      "std::unordered_map<int64_t, std::vector<int64_t>> by_client_;\n");
  EXPECT_TRUE(HasRule(r, kRuleResidentHistory));
}

TEST(AnalyzeResidentHistory, ReturnTypeDoesNotFire) {
  // A function *returning* a map of lists exports a snapshot; it does not
  // keep one resident.
  const AnalysisResult r = AnalyzeOne(
      "src/fl/history.h",
      "std::map<int64_t, std::vector<int64_t>> Export() const;\n");
  EXPECT_FALSE(HasRule(r, kRuleResidentHistory));
}

TEST(AnalyzeResidentHistory, NonIndexPayloadDoesNotFire) {
  // Bounded per-record payloads (flags, pairs) are not history lists.
  const AnalysisResult r = AnalyzeOne(
      "src/fl/history.h",
      "std::vector<std::vector<bool>> sample_used_;\n"
      "std::vector<std::pair<int64_t, int64_t>> keys_;\n");
  EXPECT_FALSE(HasRule(r, kRuleResidentHistory));
}

TEST(AnalyzeResidentHistory, StateLayerIsExempt) {
  const AnalysisResult r = AnalyzeOne(
      "src/state/history_log.h",
      "std::map<int64_t, std::vector<int64_t>> records_;\n");
  EXPECT_FALSE(HasRule(r, kRuleResidentHistory));
}

TEST(AnalyzeResidentHistory, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/history.h",
      "std::unordered_map<int64_t, std::vector<int64_t>>\n"
      "    client_rounds_;  // fats-lint: allow(resident-history)\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleResidentHistory, /*suppressed=*/true));
}

TEST(AnalyzeTileOverlap, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/tensor/x.cc",
      "void Kernel(ThreadPool& pool, float* c, int64_t row) {\n"
      "  pool.ParallelFor(8, [&](int64_t band, int64_t w) {\n"
      "    c[row] = 1.0f;  // fats-lint: allow(tile-overlap)\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleTileOverlap, /*suppressed=*/true));
}

// --- Rule fixtures: failpoint-gap ---

TEST(AnalyzeFailpointGap, UncoveredFsyncFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/io/seg.cc",
      "Status Flush(std::FILE* f) {\n"
      "  if (::fsync(::fileno(f)) != 0) return Status::IoError(\"x\");\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleFailpointGap));
}

TEST(AnalyzeFailpointGap, CoveredFsyncIsClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/io/seg.cc",
      "Status Flush(std::FILE* f) {\n"
      "  FATS_FAILPOINT_STATUS(\"io.flush\");\n"
      "  if (::fsync(::fileno(f)) != 0) return Status::IoError(\"x\");\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeFailpointGap, ReadOnlyIoFunctionIsClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/io/seg.cc",
      "int Peek(std::FILE* f) { return std::fgetc(f); }\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeFailpointGap, OutsideSrcIoIsExempt) {
  const AnalysisResult r = AnalyzeOne(
      "src/util/x.cc",
      "Status Flush(std::FILE* f) {\n"
      "  if (::fsync(::fileno(f)) != 0) return Status::IoError(\"x\");\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeFailpointGap, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/io/seg.cc",
      "Status Flush(std::FILE* f) {\n"
      "  // fats-lint: allow(failpoint-gap)\n"
      "  if (::fsync(::fileno(f)) != 0) return Status::IoError(\"x\");\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleFailpointGap, /*suppressed=*/true));
}

// --- Rule fixtures: discarded-status ---

TEST(AnalyzeDiscardedStatus, BareStatementCallFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/x.cc",
      "Status Append(int rec);\n"
      "void F() { Append(1); }\n");
  EXPECT_TRUE(HasRule(r, kRuleDiscardedStatus));
}

TEST(AnalyzeDiscardedStatus, CheckedAndReturnedCallsAreClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/x.cc",
      "Status Append(int rec);\n"
      "Status F() {\n"
      "  Status s = Append(1);\n"
      "  if (!Append(2).ok()) return s;\n"
      "  return Append(3);\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeDiscardedStatus, AmbiguousNameDoesNotFire) {
  // `Append` is also declared void elsewhere: without type resolution the
  // call is ambiguous, so the rule must stay quiet.
  const AnalysisResult r = AnalyzeFiles(
      {{"src/core/x.cc",
        "Status Append(int rec);\n"
        "void F() { log.Append(1); }\n"},
       {"src/core/log.h", "void Append(int rec);\n"}});
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeDiscardedStatus, UnannotatedVoidCastFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/x.cc",
      "Status Close();\n"
      "void F() { (void)Close(); }\n");
  EXPECT_TRUE(HasRule(r, kRuleDiscardedStatus));
}

TEST(AnalyzeDiscardedStatus, AnnotatedVoidCastIsSuppressed) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/x.cc",
      "Status Close();\n"
      "void F() { (void)Close(); }  // fats-lint: allow(discarded-status)\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleDiscardedStatus, /*suppressed=*/true));
}

// --- Rule fixtures: store-mutation-bypass ---

TEST(AnalyzeStoreMutation, DirectTruncateInCoreFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/compact_unlearner.cc",
      "void F(FatsTrainer* trainer) {\n"
      "  trainer->store().TruncateFromIteration(1, 3);\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleStoreMutationBypass));
}

TEST(AnalyzeStoreMutation, DirectSaveOnMemberFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/unlearning_service.cc",
      "void G() { store_.SaveMinibatch(t, k, batch); }\n");
  EXPECT_TRUE(HasRule(r, kRuleStoreMutationBypass));
}

TEST(AnalyzeStoreMutation, WrapperCallsAndReadsAreClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/unlearning_service.cc",
      "void G(FatsTrainer* trainer) {\n"
      "  trainer->TruncateStoreFromIteration(1);\n"
      "  trainer->SubstituteMinibatch(t, k, batch);\n"
      "  const auto* b = trainer->store().GetMinibatch(t, k);\n"
      "  int64_t first = trainer->store().EarliestSampleUse(ref);\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeStoreMutation, TrainerItselfIsExempt) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/fats_trainer.cc",
      "void FatsTrainer::Reset() { store_.Clear(); }\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeStoreMutation, OutsideCoreIsExempt) {
  // Journal recovery rebuilds a fresh store record-by-record; the rule is
  // scoped to src/core where the trainer wrappers are the contract.
  const AnalysisResult r = AnalyzeOne(
      "src/io/train_journal.cc",
      "void H(StateStore& store) { store.SaveMinibatch(t, k, batch); }\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeStoreMutation, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/x.cc",
      "void F(FatsTrainer* trainer) {\n"
      "  trainer->store().Clear();  "
      "// fats-lint: allow(store-mutation-bypass)\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleStoreMutationBypass, /*suppressed=*/true));
}

// --- Rule fixtures: raw-wire ---

TEST(AnalyzeRawWire, FrameCodecInCoreFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/fats_trainer.cc",
      "void F(const WireMessage& m) {\n"
      "  std::string frame = transport::EncodeFrame(m);\n"
      "}\n");
  EXPECT_TRUE(HasRule(r, kRuleRawWire));
}

TEST(AnalyzeRawWire, RingBufferPushInFlFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/fl/fedavg.cc",
      "void G(std::string_view frame) {\n"
      "  (void)wire_->PushFrame(transport::Direction::kUplink, frame);\n"
      "}  // fats-lint: allow(discarded-status)\n");
  EXPECT_TRUE(HasRule(r, kRuleRawWire));
}

TEST(AnalyzeRawWire, PosixSocketInIoFires) {
  const AnalysisResult r = AnalyzeOne(
      "src/io/remote_journal.cc",
      "int H() { return socket(AF_INET, SOCK_STREAM, 0); }\n");
  EXPECT_TRUE(HasRule(r, kRuleRawWire));
}

TEST(AnalyzeRawWire, ChannelDeliveryIsClean) {
  const AnalysisResult r = AnalyzeOne(
      "src/core/fats_trainer.cc",
      "void F(const transport::EncodedModel& m) {\n"
      "  auto d = channel_->DeliverModel(address, m);\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeRawWire, TransportItselfIsExempt) {
  const AnalysisResult r = AnalyzeOne(
      "src/transport/reliable_channel.cc",
      "void F(Transport* t, std::string_view frame) {\n"
      "  (void)t->PushFrame(Direction::kDownlink, frame);\n"
      "}  // fats-lint: allow(discarded-status)\n");
  EXPECT_FALSE(HasRule(r, kRuleRawWire));
}

TEST(AnalyzeRawWire, DeclarationDoesNotFire) {
  // `Status PushFrame(` is a declaration (a fake transport in a test
  // double), not a call through the primitive.
  const AnalysisResult r = AnalyzeOne(
      "src/fl/comm_stats.h",
      "struct FakeWire { Status PushFrame(Direction d, std::string_view f); "
      "};\n");
  EXPECT_FALSE(HasRule(r, kRuleRawWire));
}

TEST(AnalyzeRawWire, SuppressionDowngrades) {
  const AnalysisResult r = AnalyzeOne(
      "src/io/wire_dump.cc",
      "void F(std::string_view frame) {\n"
      "  auto m = transport::DecodeFrame(frame);  "
      "// fats-lint: allow(raw-wire)\n"
      "}\n");
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleRawWire, /*suppressed=*/true));
}

// --- Rule fixtures: layer-order / layer-cycle ---

TEST(AnalyzeLayering, UpwardIncludeFires) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/nn/layer.h", "#include \"fl/server.h\"\n"}});
  EXPECT_TRUE(HasRule(r, kRuleLayerOrder));
}

TEST(AnalyzeLayering, DownwardIncludeIsClean) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/fl/server.h",
        "#include \"nn/layer.h\"\n#include \"util/status.h\"\n"}});
  EXPECT_TRUE(ActiveRules(r).empty());
}

TEST(AnalyzeLayering, UpwardIncludeSuppressionDowngrades) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/nn/layer.h",
        "#include \"fl/server.h\"  // fats-lint: allow(layer-order)\n"}});
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleLayerOrder, /*suppressed=*/true));
}

TEST(AnalyzeLayering, ModuleCycleFires) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/alpha/a.h", "#include \"beta/b.h\"\n"},
       {"src/beta/b.h", "#include \"alpha/a.h\"\n"}});
  EXPECT_TRUE(HasRule(r, kRuleLayerCycle));
}

// --- Cross-file model behavior ---

TEST(AnalyzeCrossFile, SiblingHeaderUnorderedNamesAreVisible) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/data/store.cc",
        "#include \"data/store.h\"\n"
        "double Store::Total(RngStream& rng) {\n"
        "  double t = 0.0;\n"
        "  for (const auto& kv : weights_) t += rng.NextDouble();\n"
        "  return t;\n"
        "}\n"},
       {"src/data/store.h",
        "struct Store { std::unordered_map<int, double> weights_; };\n"}});
  EXPECT_TRUE(HasRule(r, kRuleRngUnorderedDraw));
}

TEST(AnalyzeIndex, CollectsFailpointSitesAndStatusFns) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/io/x.cc",
        "Status Write() {\n"
        "  FATS_FAILPOINT_STATUS(\"io.write\");\n"
        "  return Status::OK();\n"
        "}\n"}});
  EXPECT_EQ(r.index.failpoint_sites.count("io.write"), 1u);
  EXPECT_EQ(r.index.status_functions.count("Write"), 1u);
}

// --- Reports: baseline + SARIF ---

TEST(AnalyzeBaseline, ParseApplyAndStaleCount) {
  std::vector<BaselineEntry> entries;
  ASSERT_TRUE(ParseBaseline(
      R"([{"rule": "rng-raw-key", "file": "src/fl/x.cc", "line": 1},
          {"rule": "layer-order", "file": "src/gone.cc"}])",
      &entries));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].line, 0);

  AnalysisResult r = AnalyzeOne("src/fl/x.cc", "RngStream s(12345);\n");
  ASSERT_TRUE(HasRule(r, kRuleRngRawKey));
  const int stale = ApplyBaseline(entries, &r.findings);
  EXPECT_EQ(stale, 1);  // the src/gone.cc entry matched nothing
  EXPECT_TRUE(ActiveRules(r).empty());
  EXPECT_TRUE(HasRule(r, kRuleRngRawKey, /*suppressed=*/true));
}

TEST(AnalyzeBaseline, EmptyAndMalformed) {
  std::vector<BaselineEntry> entries;
  EXPECT_TRUE(ParseBaseline("[]", &entries));
  EXPECT_TRUE(entries.empty());
  EXPECT_TRUE(ParseBaseline("  \n", &entries));
  EXPECT_FALSE(ParseBaseline("not json", &entries));
  EXPECT_FALSE(ParseBaseline(R"([{"file": "x.cc"}])", &entries));
}

TEST(AnalyzeSarif, ShapeAndSuppression) {
  AnalysisResult r = AnalyzeOne(
      "src/fl/x.cc",
      "RngStream a(11111);\n"
      "RngStream b(22222);  // fats-lint: allow(rng-raw-key)\n");
  const std::string sarif = ToSarif(r.findings, AllAnalyzeRules());
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"fats_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"rng-raw-key\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
}

TEST(AnalyzeRules, AllRulesSupersetOfLegacy) {
  const std::vector<std::string> all = AllAnalyzeRules();
  for (const std::string& legacy : lint::AllRules()) {
    EXPECT_NE(std::find(all.begin(), all.end(), legacy), all.end())
        << legacy;
  }
  for (const char* rule :
       {kRuleRngRawKey, kRuleRngSharedStream, kRuleRngUnorderedDraw,
        kRuleNondetReduction, kRuleFailpointGap, kRuleDiscardedStatus,
        kRuleLayerOrder, kRuleLayerCycle, kRuleTileOverlap,
        kRuleResidentHistory}) {
    EXPECT_NE(std::find(all.begin(), all.end(), rule), all.end()) << rule;
  }
}

TEST(AnalyzeResult, FindingsAreSorted) {
  const AnalysisResult r = AnalyzeFiles(
      {{"src/fl/z.cc", "RngStream s(12345);\nRngStream t(9);\n"},
       {"src/fl/a.cc", "RngStream u(7);\n"}});
  for (size_t i = 1; i < r.findings.size(); ++i) {
    const lint::Finding& prev = r.findings[i - 1];
    const lint::Finding& cur = r.findings[i];
    EXPECT_LE(std::tie(prev.file, prev.line), std::tie(cur.file, cur.line));
  }
}

}  // namespace
}  // namespace fats::analyze
