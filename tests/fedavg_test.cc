#include "fl/fedavg.h"

#include <gtest/gtest.h>

#include "test_workloads.h"

namespace fats {
namespace {

FedAvgOptions SmallOptions() {
  FedAvgOptions options;
  options.clients_per_round_k = 2;
  options.local_iters_e = 3;
  options.batch_b = 4;
  options.learning_rate = 0.1;
  options.seed = 11;
  return options;
}

TEST(FedAvgTest, TrainingImprovesTestAccuracy) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  const double before = trainer.EvaluateTestAccuracy();
  trainer.RunRounds(12);
  const double after = trainer.EvaluateTestAccuracy();
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.8);
}

TEST(FedAvgTest, LogRecordsEveryRound) {
  FederatedDataset data = TinyImageData(4, 10);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(5);
  ASSERT_EQ(trainer.log().records().size(), 5u);
  EXPECT_EQ(trainer.log().records()[0].round, 1);
  EXPECT_EQ(trainer.log().records()[4].round, 5);
  EXPECT_FALSE(trainer.log().records()[0].recomputation);
  EXPECT_EQ(trainer.rounds_completed(), 5);
}

TEST(FedAvgTest, DeterministicInSeed) {
  FederatedDataset data_a = TinyImageData(4, 10);
  FederatedDataset data_b = TinyImageData(4, 10);
  FedAvgTrainer a(TinyModelSpec(), SmallOptions(), &data_a);
  FedAvgTrainer b(TinyModelSpec(), SmallOptions(), &data_b);
  a.RunRounds(4);
  b.RunRounds(4);
  EXPECT_TRUE(a.global_params().BitwiseEquals(b.global_params()));
}

TEST(FedAvgTest, DifferentSeedsDiverge) {
  FederatedDataset data_a = TinyImageData(4, 10);
  FederatedDataset data_b = TinyImageData(4, 10);
  FedAvgOptions options_b = SmallOptions();
  options_b.seed = 12;
  FedAvgTrainer a(TinyModelSpec(), SmallOptions(), &data_a);
  FedAvgTrainer b(TinyModelSpec(), options_b, &data_b);
  a.RunRounds(2);
  b.RunRounds(2);
  EXPECT_FALSE(a.global_params().BitwiseEquals(b.global_params()));
}

TEST(FedAvgTest, CommunicationAccounting) {
  FederatedDataset data = TinyImageData(4, 10);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(3);
  const int64_t d = trainer.model()->NumParameters();
  EXPECT_EQ(trainer.comm_stats().rounds(), 3);
  EXPECT_EQ(trainer.comm_stats().downlink_bytes(), 3 * 2 * d * 4);
  EXPECT_EQ(trainer.comm_stats().uplink_bytes(), 3 * 2 * d * 4);
}

TEST(FedAvgTest, ResetModelRestartsRoundCounterKeepsLog) {
  FederatedDataset data = TinyImageData(4, 10);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(3);
  trainer.ResetModel(99);
  EXPECT_EQ(trainer.rounds_completed(), 0);
  EXPECT_EQ(trainer.log().records().size(), 3u);
  trainer.RunRounds(2);
  EXPECT_EQ(trainer.log().records().size(), 5u);
}

TEST(FedAvgTest, RecomputationModeFlagsRecords) {
  FederatedDataset data = TinyImageData(4, 10);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(1);
  trainer.set_recomputation_mode(true);
  trainer.RunRounds(2);
  const auto& records = trainer.log().records();
  EXPECT_FALSE(records[0].recomputation);
  EXPECT_TRUE(records[1].recomputation);
  EXPECT_TRUE(records[2].recomputation);
}

TEST(FedAvgTest, HandlesRemovedClientsAndSamples) {
  FederatedDataset data = TinyImageData(4, 10);
  ASSERT_TRUE(data.RemoveClient(0).ok());
  ASSERT_TRUE(data.RemoveSample({1, 3}).ok());
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(3);  // must not crash or select client 0
  EXPECT_EQ(trainer.log().records().size(), 3u);
}

TEST(FedAvgTest, ClampsKToActiveClients) {
  FederatedDataset data = TinyImageData(3, 10);
  ASSERT_TRUE(data.RemoveClient(0).ok());
  ASSERT_TRUE(data.RemoveClient(1).ok());
  FedAvgOptions options = SmallOptions();
  options.clients_per_round_k = 5;  // more than active
  FedAvgTrainer trainer(TinyModelSpec(), options, &data);
  trainer.RunRounds(2);
  EXPECT_EQ(trainer.log().records().size(), 2u);
}

TEST(FedAvgTest, WithReplacementModeRuns) {
  FederatedDataset data = TinyImageData(4, 10);
  FedAvgOptions options = SmallOptions();
  options.sample_clients_with_replacement = true;
  FedAvgTrainer trainer(TinyModelSpec(), options, &data);
  trainer.RunRounds(3);
  EXPECT_EQ(trainer.log().records().size(), 3u);
}

TEST(FedAvgTest, BumpGenerationChangesTrajectory) {
  FederatedDataset data_a = TinyImageData(4, 10);
  FederatedDataset data_b = TinyImageData(4, 10);
  FedAvgTrainer a(TinyModelSpec(), SmallOptions(), &data_a);
  FedAvgTrainer b(TinyModelSpec(), SmallOptions(), &data_b);
  b.BumpGeneration();
  a.RunRounds(2);
  b.RunRounds(2);
  EXPECT_FALSE(a.global_params().BitwiseEquals(b.global_params()));
}

TEST(TrainLogTest, RoundsToReachAndTrailingRecomputation) {
  TrainLog log;
  log.Append({1, 0.2, 1.0, false});
  log.Append({2, 0.5, 0.8, false});
  log.Append({3, 0.7, 0.6, true});
  log.Append({4, 0.9, 0.4, true});
  EXPECT_EQ(log.RoundsToReach(0.6, 0), 3);
  EXPECT_EQ(log.RoundsToReach(0.6, 2), 1);
  EXPECT_EQ(log.RoundsToReach(0.99, 0), -1);
  EXPECT_EQ(log.TrailingRecomputationRounds(), 2);
  EXPECT_DOUBLE_EQ(log.LastAccuracy(), 0.9);
  EXPECT_NE(log.ToCsv().find("round,test_accuracy"), std::string::npos);
}

}  // namespace
}  // namespace fats
