// The transport exactness contract (DESIGN.md §7.7): FATS trained over a
// wire that drops 20% of frames, bit-flips 5%, and duplicates 5% must
// produce a model, training log, and state store bitwise-identical to the
// fault-free run — only the retransmit ledger may grow. The recovery
// protocol (CRC-reject + deterministic retry/backoff, dedup by seq) redraws
// nothing and re-sends frozen frames, so faults perturb *when* bytes move
// but never *what* arrives. The same holds composed with client dropout,
// under unlearning re-computation, and across a durable crash-recovery
// cycle (the journal carries the retransmit counters).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/sample_unlearner.h"
#include "fl/fedavg.h"
#include "io/train_journal.h"
#include "test_workloads.h"

namespace fats {
namespace {

constexpr int64_t kTotal = 8;  // R=4, E=2

// The headline fault mix from the issue: 20% drop, 5% corrupt, 5% duplicate.
constexpr const char* kLossySpec =
    "drop=0.2,corrupt=0.05,duplicate=0.05,seed=4";

struct Env {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Env MakeEnv(const std::string& transport_faults, double dropout_rate = 0.0) {
  Env env;
  env.data = TinyImageData(5, 8);
  env.config = TinyFatsConfig(5, 8, 4, 2);
  env.config.transport_fault_spec = transport_faults;
  env.config.dropout_rate = dropout_rate;
  env.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), env.config, &env.data);
  return env;
}

// Full-trace comparison: model, log, selections, mini-batches, local and
// global models, and the clean side of the comm ledger.
void ExpectTraceIdentical(FatsTrainer* faulty, FatsTrainer* clean) {
  EXPECT_TRUE(faulty->global_params().BitwiseEquals(clean->global_params()));
  EXPECT_EQ(faulty->log().ToCsv(), clean->log().ToCsv());

  const StateStore& fs = faulty->store();
  const StateStore& cs = clean->store();
  ASSERT_EQ(fs.SelectionRounds(), cs.SelectionRounds());
  for (int64_t round : fs.SelectionRounds()) {
    ASSERT_NE(fs.GetClientSelection(round), nullptr);
    EXPECT_EQ(*fs.GetClientSelection(round), *cs.GetClientSelection(round))
        << "selection differs in round " << round;
  }
  ASSERT_EQ(fs.MinibatchKeys(), cs.MinibatchKeys());
  for (const auto& [iter, client] : fs.MinibatchKeys()) {
    EXPECT_EQ(*fs.GetMinibatch(iter, client), *cs.GetMinibatch(iter, client))
        << "mini-batch differs at (" << iter << ", " << client << ")";
  }
  ASSERT_EQ(fs.LocalModelKeys(), cs.LocalModelKeys());
  for (const auto& [iter, client] : fs.LocalModelKeys()) {
    EXPECT_TRUE(fs.GetLocalModel(iter, client)
                    ->BitwiseEquals(*cs.GetLocalModel(iter, client)))
        << "local model differs at (" << iter << ", " << client << ")";
  }
  ASSERT_EQ(fs.GlobalModelRounds(), cs.GlobalModelRounds());
  for (int64_t round : fs.GlobalModelRounds()) {
    EXPECT_TRUE(
        fs.GetGlobalModel(round)->BitwiseEquals(*cs.GetGlobalModel(round)))
        << "global model differs in round " << round;
  }

  // The clean side of the ledger is untouched by faults: same logical
  // messages, same payload bytes. (This is what keeps the paper's Fig. 2
  // communication totals valid on a lossy wire.)
  EXPECT_EQ(faulty->comm_stats().downlink_bytes(),
            clean->comm_stats().downlink_bytes());
  EXPECT_EQ(faulty->comm_stats().uplink_bytes(),
            clean->comm_stats().uplink_bytes());
  EXPECT_EQ(faulty->comm_stats().downlink_messages(),
            clean->comm_stats().downlink_messages());
  EXPECT_EQ(faulty->comm_stats().uplink_messages(),
            clean->comm_stats().uplink_messages());
  EXPECT_EQ(faulty->comm_stats().rounds(), clean->comm_stats().rounds());
}

TEST(TransportExactnessTest, LossyWireMatchesCleanTraceExactly) {
  Env faulty = MakeEnv(kLossySpec);
  Env clean = MakeEnv("");
  faulty.trainer->Train();
  clean.trainer->Train();

  // The faults actually bit: frames were dropped, corrupted, duplicated.
  const transport::ChannelStats& stats = faulty.trainer->channel().stats();
  ASSERT_GT(stats.retransmits, 0) << "fault mix injected nothing";
  EXPECT_GT(stats.timeouts, 0) << "no frame was ever dropped";
  EXPECT_GT(stats.crc_rejects, 0) << "no frame was ever corrupted";
  EXPECT_GT(stats.duplicates_discarded, 0) << "no duplicate was discarded";
  EXPECT_EQ(clean.trainer->channel().stats().retransmits, 0);

  ExpectTraceIdentical(faulty.trainer.get(), clean.trainer.get());

  // Only the retransmit ledger grew.
  EXPECT_GT(faulty.trainer->comm_stats().retransmit_bytes(), 0);
  EXPECT_GT(faulty.trainer->comm_stats().retransmits(), 0);
  EXPECT_EQ(clean.trainer->comm_stats().retransmit_bytes(), 0);
  EXPECT_EQ(clean.trainer->comm_stats().retransmits(), 0);
}

TEST(TransportExactnessTest, TwoLossyRunsShareTheExactRetransmitLedger) {
  Env a = MakeEnv(kLossySpec);
  Env b = MakeEnv(kLossySpec);
  a.trainer->Train();
  b.trainer->Train();
  EXPECT_TRUE(
      a.trainer->global_params().BitwiseEquals(b.trainer->global_params()));
  EXPECT_EQ(a.trainer->comm_stats().retransmits(),
            b.trainer->comm_stats().retransmits());
  EXPECT_EQ(a.trainer->comm_stats().retransmit_bytes(),
            b.trainer->comm_stats().retransmit_bytes());
  EXPECT_EQ(a.trainer->channel().stats().attempts,
            b.trainer->channel().stats().attempts);
  EXPECT_EQ(a.trainer->channel().stats().backoff_units,
            b.trainer->channel().stats().backoff_units);
}

TEST(TransportExactnessTest, FaultsComposedWithDropoutStillMatchClean) {
  // 30% client dropout on top of the 20%-loss wire: the two fault layers
  // retry through independent deterministic schedules and must compose.
  // The computed trace must stay bitwise that of a run with no wire faults
  // and no dropout at all; the *ledger* baseline is the dropout-only run,
  // since dropout legitimately re-broadcasts (extra clean downlink), while
  // wire faults may only add retransmits on top of that.
  Env faulty = MakeEnv(kLossySpec, /*dropout_rate=*/0.3);
  Env dropout_only = MakeEnv("", /*dropout_rate=*/0.3);
  Env undisturbed = MakeEnv("", /*dropout_rate=*/0.0);
  faulty.trainer->Train();
  dropout_only.trainer->Train();
  undisturbed.trainer->Train();
  ASSERT_GT(faulty.trainer->dropout_retries(), 0) << "dropout never bit";
  ASSERT_GT(faulty.trainer->channel().stats().retransmits, 0)
      << "wire faults never bit";
  ExpectTraceIdentical(faulty.trainer.get(), dropout_only.trainer.get());
  EXPECT_TRUE(faulty.trainer->global_params().BitwiseEquals(
      undisturbed.trainer->global_params()));
  EXPECT_EQ(faulty.trainer->log().ToCsv(),
            undisturbed.trainer->log().ToCsv());
  EXPECT_GT(faulty.trainer->comm_stats().retransmit_bytes(), 0);
  EXPECT_EQ(dropout_only.trainer->comm_stats().retransmit_bytes(), 0);
}

TEST(TransportExactnessTest, UnlearningOverTheLossyWireMatchesClean) {
  Env faulty = MakeEnv(kLossySpec);
  Env clean = MakeEnv("");
  faulty.trainer->Train();
  clean.trainer->Train();

  SampleRef target{0, 0};
  bool found = false;
  for (int64_t client = 0; client < 5 && !found; ++client) {
    for (int64_t index = 0; index < 8 && !found; ++index) {
      if (clean.trainer->store().EarliestSampleUse({client, index}) > 0) {
        target = {client, index};
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  SampleUnlearner fu(faulty.trainer.get());
  SampleUnlearner cu(clean.trainer.get());
  Result<UnlearningOutcome> foc = fu.Unlearn(target, kTotal);
  Result<UnlearningOutcome> coc = cu.Unlearn(target, kTotal);
  ASSERT_TRUE(foc.ok()) << foc.status().ToString();
  ASSERT_TRUE(coc.ok()) << coc.status().ToString();
  EXPECT_TRUE(foc->recomputed);
  EXPECT_EQ(foc->recomputed, coc->recomputed);
  EXPECT_EQ(foc->restart_iteration, coc->restart_iteration);
  EXPECT_TRUE(faulty.trainer->global_params().BitwiseEquals(
      clean.trainer->global_params()));
}

TEST(TransportExactnessTest, RetryExhaustionDegradesIntoForcedDelivery) {
  // Near-total loss with a tiny retry budget: deliveries are forced through
  // on the final attempt (the availability-style degradation path), and the
  // result is still bitwise exact.
  Env exhausted = MakeEnv("drop=0.97,seed=3,max_retries=2");
  Env clean = MakeEnv("");
  exhausted.trainer->Train();
  clean.trainer->Train();
  ASSERT_GT(exhausted.trainer->transport_forced_deliveries(), 0)
      << "retry budget was never exhausted";
  EXPECT_GT(exhausted.trainer->channel().stats().forced_deliveries, 0);
  ExpectTraceIdentical(exhausted.trainer.get(), clean.trainer.get());
}

TEST(TransportExactnessTest, CrashRecoveryReproducesTheRetransmitLedger) {
  // A lossy durable run, interrupted and recovered, must land on the same
  // ledger as an uninterrupted lossy run: the journal's progress marks
  // carry the retransmit counters, and re-execution re-derives the same
  // fault schedule for the replayed suffix.
  const std::string ckpt = testing::TempDir() + "/tx_exact.ckpt";
  const std::string jrn = testing::TempDir() + "/tx_exact.jrn";
  for (const std::string& p : {ckpt, ckpt + ".tmp", jrn, jrn + ".tmp"}) {
    std::remove(p.c_str());
  }

  Env uninterrupted = MakeEnv(kLossySpec);
  uninterrupted.trainer->Train();
  ASSERT_GT(uninterrupted.trainer->comm_stats().retransmits(), 0);

  {
    Env first = MakeEnv(kLossySpec);
    Result<std::unique_ptr<DurableTrainingSession>> session =
        DurableTrainingSession::Open(ckpt, jrn, first.trainer.get());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    first.trainer->TrainUntil(kTotal / 2);
    ASSERT_TRUE((*session)->status().ok());
  }  // Session closes mid-training: the journal holds the half-run.

  Env recovered = MakeEnv(kLossySpec);
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, recovered.trainer.get());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(recovered.trainer->trained_through(), kTotal / 2);
  recovered.trainer->TrainUntil(kTotal);
  ASSERT_TRUE((*session)->status().ok());

  EXPECT_TRUE(recovered.trainer->global_params().BitwiseEquals(
      uninterrupted.trainer->global_params()));
  EXPECT_EQ(recovered.trainer->comm_stats().retransmits(),
            uninterrupted.trainer->comm_stats().retransmits());
  EXPECT_EQ(recovered.trainer->comm_stats().retransmit_bytes(),
            uninterrupted.trainer->comm_stats().retransmit_bytes());
  EXPECT_EQ(recovered.trainer->comm_stats().downlink_messages(),
            uninterrupted.trainer->comm_stats().downlink_messages());
  EXPECT_EQ(recovered.trainer->comm_stats().uplink_messages(),
            uninterrupted.trainer->comm_stats().uplink_messages());
}

TEST(TransportExactnessTest, FedAvgOverTheLossyWireMatchesClean) {
  FederatedDataset data_faulty = TinyImageData(5, 8);
  FederatedDataset data_clean = TinyImageData(5, 8);
  FedAvgOptions faulty_options;
  faulty_options.clients_per_round_k = 3;
  faulty_options.local_iters_e = 2;
  faulty_options.transport_fault_spec = kLossySpec;
  FedAvgOptions clean_options = faulty_options;
  clean_options.transport_fault_spec = "";
  FedAvgTrainer faulty(TinyModelSpec(), faulty_options, &data_faulty);
  FedAvgTrainer clean(TinyModelSpec(), clean_options, &data_clean);
  faulty.RunRounds(4);
  clean.RunRounds(4);
  ASSERT_GT(faulty.channel().stats().retransmits, 0);
  EXPECT_TRUE(faulty.global_params().BitwiseEquals(clean.global_params()));
  EXPECT_EQ(faulty.log().ToCsv(), clean.log().ToCsv());
  EXPECT_EQ(faulty.comm_stats().downlink_bytes(),
            clean.comm_stats().downlink_bytes());
  EXPECT_EQ(faulty.comm_stats().uplink_bytes(),
            clean.comm_stats().uplink_bytes());
  EXPECT_GT(faulty.comm_stats().retransmit_bytes(), 0);
  EXPECT_EQ(clean.comm_stats().retransmit_bytes(), 0);
}

}  // namespace
}  // namespace fats
