// Detailed behaviour of the FR² baseline's preconditioned recovery.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fr2.h"
#include "test_workloads.h"

namespace fats {
namespace {

FedAvgOptions SmallOptions() {
  FedAvgOptions options;
  options.clients_per_round_k = 2;
  options.local_iters_e = 3;
  options.batch_b = 4;
  options.learning_rate = 0.1;
  options.seed = 11;
  return options;
}

double RecoveryDisplacement(const Fr2Options& fr2_options, uint64_t seed) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgOptions options = SmallOptions();
  options.seed = seed;
  FedAvgTrainer trainer(TinyModelSpec(), options, &data);
  trainer.RunRounds(6);
  const Tensor before = trainer.global_params();
  Fr2Unlearner unlearner(&trainer, &data, fr2_options);
  FATS_CHECK(unlearner.UnlearnSamples({{0, 0}}).ok());
  Tensor delta = trainer.global_params();
  delta -= before;
  return std::sqrt(delta.SquaredNorm());
}

TEST(Fr2DetailsTest, HigherDampingMeansSmallerSteps) {
  Fr2Options gentle;
  gentle.recovery_rounds = 2;
  gentle.damping = 2.0;
  Fr2Options aggressive = gentle;
  aggressive.damping = 0.05;
  EXPECT_LT(RecoveryDisplacement(gentle, 5),
            RecoveryDisplacement(aggressive, 5));
}

TEST(Fr2DetailsTest, LrScaleControlsStepSize) {
  Fr2Options small;
  small.recovery_rounds = 2;
  small.lr_scale = 0.01;
  Fr2Options large = small;
  large.lr_scale = 0.5;
  EXPECT_LT(RecoveryDisplacement(small, 6), RecoveryDisplacement(large, 6));
}

TEST(Fr2DetailsTest, MoreRecoveryRoundsMoveFurther) {
  Fr2Options one;
  one.recovery_rounds = 1;
  Fr2Options four = one;
  four.recovery_rounds = 4;
  EXPECT_LT(RecoveryDisplacement(one, 7), RecoveryDisplacement(four, 7));
}

TEST(Fr2DetailsTest, RecoveryLogsFlaggedRounds) {
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(4);
  Fr2Options options;
  options.recovery_rounds = 3;
  Fr2Unlearner unlearner(&trainer, &data, options);
  ASSERT_TRUE(unlearner.UnlearnClients({2}).ok());
  const auto& records = trainer.log().records();
  ASSERT_EQ(records.size(), 7u);
  for (size_t i = 4; i < records.size(); ++i) {
    EXPECT_TRUE(records[i].recomputation);
  }
  // Communication for recovery rounds is accounted.
  EXPECT_EQ(trainer.comm_stats().rounds(), 7);
}

TEST(Fr2DetailsTest, ApproximateUnlearningRetainsInfluenceSignal) {
  // The defining limitation versus FATS: FR² does not reset the sampling
  // history — the deployed model still descends from the deleted data.
  // Proxy check: with zero effective recovery (lr_scale = 0), the model is
  // bit-identical to the pre-deletion model.
  FederatedDataset data = TinyImageData(6, 12);
  FedAvgTrainer trainer(TinyModelSpec(), SmallOptions(), &data);
  trainer.RunRounds(6);
  const Tensor before = trainer.global_params();
  Fr2Options options;
  options.recovery_rounds = 1;
  options.lr_scale = 0.0;
  Fr2Unlearner unlearner(&trainer, &data, options);
  ASSERT_TRUE(unlearner.UnlearnSamples({{1, 1}}).ok());
  EXPECT_TRUE(trainer.global_params().BitwiseEquals(before))
      << "with a zero step the deleted sample's influence remains fully "
         "embedded — approximate unlearning has no erasure guarantee";
}

}  // namespace
}  // namespace fats
