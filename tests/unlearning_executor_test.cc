#include "core/unlearning_executor.h"

#include <gtest/gtest.h>

#include <set>

#include "test_workloads.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained TrainTiny(int64_t clients = 10, int64_t n = 10, int64_t rounds = 4,
                  int64_t e = 3) {
  Trained t;
  t.data = TinyImageData(clients, n);
  t.config = TinyFatsConfig(clients, n, rounds, e);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  t.trainer->Train();
  return t;
}

TEST(PickersTest, SamplePickerReturnsDistinctActiveRefs) {
  FederatedDataset data = TinyImageData(5, 8);
  ASSERT_TRUE(data.RemoveSample({0, 3}).ok());
  ASSERT_TRUE(data.RemoveClient(4).ok());
  RngStream rng(uint64_t{3});
  std::vector<SampleRef> picks = PickRandomActiveSamples(data, 10, &rng);
  ASSERT_EQ(picks.size(), 10u);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const SampleRef& ref : picks) {
    EXPECT_TRUE(data.sample_active(ref.client, ref.index));
    EXPECT_NE(ref.client, 4);
    EXPECT_TRUE(seen.insert({ref.client, ref.index}).second);
  }
}

TEST(PickersTest, ClientPickerReturnsDistinctActive) {
  FederatedDataset data = TinyImageData(6, 4);
  ASSERT_TRUE(data.RemoveClient(2).ok());
  RngStream rng(uint64_t{4});
  std::vector<int64_t> picks = PickRandomActiveClients(data, 4, &rng);
  ASSERT_EQ(picks.size(), 4u);
  std::set<int64_t> seen;
  for (int64_t k : picks) {
    EXPECT_NE(k, 2);
    EXPECT_TRUE(seen.insert(k).second);
  }
}

TEST(ExecutorTest, SampleBatchCountsAllRequests) {
  Trained t = TrainTiny();
  UnlearningExecutor executor(t.trainer.get());
  RngStream rng(uint64_t{5});
  std::vector<SampleRef> targets =
      PickRandomActiveSamples(t.data, 4, &rng);
  Result<UnlearningSummary> summary =
      executor.ExecuteSampleBatch(targets, t.config.total_iters_t());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->requests, 4);
  for (const SampleRef& target : targets) {
    EXPECT_FALSE(t.data.sample_active(target.client, target.index));
  }
}

TEST(ExecutorTest, ClientBatchRemovesAll) {
  Trained t = TrainTiny(12);
  UnlearningExecutor executor(t.trainer.get());
  RngStream rng(uint64_t{6});
  std::vector<int64_t> targets = PickRandomActiveClients(t.data, 3, &rng);
  Result<UnlearningSummary> summary =
      executor.ExecuteClientBatch(targets, t.config.total_iters_t());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->requests, 3);
  EXPECT_EQ(t.data.num_active_clients(), 9);
}

TEST(ExecutorTest, StreamProcessesMixedRequests) {
  Trained t = TrainTiny(12, 12, 5, 3);
  UnlearningExecutor executor(t.trainer.get());
  RngStream rng(uint64_t{7});
  std::vector<SampleRef> samples = PickRandomActiveSamples(t.data, 2, &rng);
  std::vector<int64_t> clients = PickRandomActiveClients(t.data, 1, &rng);
  // Ensure the client target doesn't own a sample target (that sample
  // would be gone after the client removal).
  while (clients[0] == samples[0].client || clients[0] == samples[1].client) {
    clients = PickRandomActiveClients(t.data, 1, &rng);
  }
  std::vector<UnlearningRequest> requests;
  UnlearningRequest r1;
  r1.kind = UnlearningRequest::Kind::kSample;
  r1.sample = samples[0];
  r1.request_iter = t.config.total_iters_t();
  UnlearningRequest r2;
  r2.kind = UnlearningRequest::Kind::kClient;
  r2.client = clients[0];
  r2.request_iter = t.config.total_iters_t();
  UnlearningRequest r3;
  r3.kind = UnlearningRequest::Kind::kSample;
  r3.sample = samples[1];
  r3.request_iter = t.config.total_iters_t();
  requests.push_back(r1);
  requests.push_back(r2);
  requests.push_back(r3);

  Result<UnlearningSummary> summary = executor.ExecuteStream(requests);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->requests, 3);
  EXPECT_FALSE(t.data.sample_active(samples[0].client, samples[0].index));
  EXPECT_FALSE(t.data.client_active(clients[0]));
  EXPECT_LE(summary->recomputations, 3);
  EXPECT_GE(summary->recomputations, 0);
}

TEST(ExecutorTest, SummaryAggregation) {
  UnlearningSummary summary;
  UnlearningOutcome a;
  a.recomputed = true;
  a.recomputed_iterations = 10;
  a.recomputed_rounds = 2;
  UnlearningOutcome b;  // no recomputation
  summary.Add(a);
  summary.Add(b);
  EXPECT_EQ(summary.requests, 2);
  EXPECT_EQ(summary.recomputations, 1);
  EXPECT_EQ(summary.total_recomputed_iterations, 10);
  EXPECT_EQ(summary.total_recomputed_rounds, 2);
  EXPECT_DOUBLE_EQ(summary.MeanRecomputedIterations(), 5.0);
}

TEST(ExecutorTest, StreamFailurePropagates) {
  Trained t = TrainTiny();
  UnlearningExecutor executor(t.trainer.get());
  UnlearningRequest bad;
  bad.kind = UnlearningRequest::Kind::kClient;
  bad.client = 10000;
  bad.request_iter = 1;
  EXPECT_FALSE(executor.ExecuteStream({bad}).ok());
}

}  // namespace
}  // namespace fats
