// Tests for FatsTrainer::ReplayFrom — the deterministic re-execution of the
// stored sampling history that sample-level unlearning builds on.

#include <gtest/gtest.h>

#include "core/fats_trainer.h"
#include "test_workloads.h"

namespace fats {
namespace {

struct Trained {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Trained TrainTiny(int64_t rounds = 4, int64_t e = 3) {
  Trained t;
  t.data = TinyImageData(6, 10);
  t.config = TinyFatsConfig(6, 10, rounds, e);
  t.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), t.config, &t.data);
  t.trainer->Train();
  return t;
}

TEST(ReplayTest, UntouchedHistoryReplaysBitIdentically) {
  Trained t = TrainTiny();
  const Tensor final_params = t.trainer->global_params();
  std::vector<Tensor> globals;
  for (int64_t r = 0; r <= t.config.rounds_r; ++r) {
    globals.push_back(*t.trainer->store().GetGlobalModel(r));
  }
  for (int64_t t0 : {1, 2, 4, 7, 10}) {
    t.trainer->ReplayFrom(t0);
    EXPECT_TRUE(t.trainer->global_params().BitwiseEquals(final_params))
        << "replay from " << t0 << " diverged";
    for (int64_t r = 0; r <= t.config.rounds_r; ++r) {
      EXPECT_TRUE(t.trainer->store().GetGlobalModel(r)->BitwiseEquals(
          globals[static_cast<size_t>(r)]))
          << "round " << r << " after replay from " << t0;
    }
  }
}

TEST(ReplayTest, SubstitutedBatchChangesOnlyAffectedTrajectory) {
  Trained t = TrainTiny();
  const Tensor final_params = t.trainer->global_params();
  // Pick a recorded batch in round 3 and swap it for different indices.
  const std::vector<int64_t>* selection =
      t.trainer->store().GetClientSelection(3);
  ASSERT_NE(selection, nullptr);
  const int64_t client = (*selection)[0];
  const int64_t t_sub = 2 * t.config.local_iters_e + 1;  // round 3 start
  const std::vector<int64_t>* old_batch =
      t.trainer->store().GetMinibatch(t_sub, client);
  ASSERT_NE(old_batch, nullptr);
  // Build a different batch of the same size.
  std::vector<int64_t> new_batch;
  for (int64_t i = 0; new_batch.size() < old_batch->size(); ++i) {
    if (std::find(old_batch->begin(), old_batch->end(), i) ==
        old_batch->end()) {
      new_batch.push_back(i);
    }
  }
  const Tensor round2 = *t.trainer->store().GetGlobalModel(2);
  t.trainer->store().SaveMinibatch(t_sub, client, new_batch);
  t.trainer->ReplayFrom(t_sub);
  // Rounds before the substitution untouched; final model changed.
  EXPECT_TRUE(t.trainer->store().GetGlobalModel(2)->BitwiseEquals(round2));
  EXPECT_FALSE(t.trainer->global_params().BitwiseEquals(final_params));
}

TEST(ReplayTest, AppendsLogRecordsForReplayedRounds) {
  Trained t = TrainTiny();
  const size_t before = t.trainer->log().records().size();
  t.trainer->set_recomputation_mode(true);
  t.trainer->ReplayFrom(4);  // round 2 start -> replays rounds 2..4
  t.trainer->set_recomputation_mode(false);
  EXPECT_EQ(t.trainer->log().records().size(), before + 3);
  EXPECT_TRUE(t.trainer->log().records().back().recomputation);
}

TEST(ReplayTest, AccountsCommunicationForReplayedRounds) {
  Trained t = TrainTiny();
  const int64_t bytes_before = t.trainer->comm_stats().total_bytes();
  t.trainer->ReplayFrom(7);  // round 3 start -> rounds 3..4 re-run
  const int64_t d = t.trainer->model()->NumParameters();
  EXPECT_EQ(t.trainer->comm_stats().total_bytes() - bytes_before,
            2 * 2 * t.trainer->K() * d * 4);
}

TEST(ReplayTest, CountsLocalIterationWork) {
  Trained t = TrainTiny();
  const int64_t work_before = t.trainer->local_iterations_executed();
  t.trainer->ReplayFrom(1);
  EXPECT_GT(t.trainer->local_iterations_executed(), work_before);
}

TEST(ReplayDeathTest, MissingRecordsAbort) {
  Trained t = TrainTiny();
  t.trainer->store().TruncateFromIteration(7, t.config.local_iters_e);
  EXPECT_DEATH(t.trainer->ReplayFrom(7), "replay missing");
}

TEST(ReplayDeathTest, OutOfRangeT0Aborts) {
  Trained t = TrainTiny();
  EXPECT_DEATH(t.trainer->ReplayFrom(0), "t0 out of range");
  EXPECT_DEATH(t.trainer->ReplayFrom(t.config.total_iters_t() + 1),
               "t0 out of range");
}

}  // namespace
}  // namespace fats
