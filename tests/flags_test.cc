#include "util/flags.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (std::string& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagParser parser;
  int64_t* n = parser.AddInt("n", 5, "count");
  double* lr = parser.AddDouble("lr", 0.1, "rate");
  std::string* name = parser.AddString("name", "x", "label");
  bool* flag = parser.AddBool("verbose", false, "verbosity");
  std::vector<std::string> args;
  std::vector<char*> argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, 5);
  EXPECT_DOUBLE_EQ(*lr, 0.1);
  EXPECT_EQ(*name, "x");
  EXPECT_FALSE(*flag);
}

TEST(FlagsTest, ParsesEqualsSyntax) {
  FlagParser parser;
  int64_t* n = parser.AddInt("n", 0, "count");
  double* lr = parser.AddDouble("lr", 0.0, "rate");
  std::vector<std::string> args = {"--n=42", "--lr=0.5"};
  std::vector<char*> argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*lr, 0.5);
}

TEST(FlagsTest, ParsesSpaceSyntax) {
  FlagParser parser;
  std::string* name = parser.AddString("name", "", "label");
  std::vector<std::string> args = {"--name", "hello"};
  std::vector<char*> argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*name, "hello");
}

TEST(FlagsTest, BareBoolFlagSetsTrue) {
  FlagParser parser;
  bool* v = parser.AddBool("verbose", false, "verbosity");
  std::vector<std::string> args = {"--verbose"};
  std::vector<char*> argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(*v);
}

TEST(FlagsTest, BoolExplicitFalse) {
  FlagParser parser;
  bool* v = parser.AddBool("verbose", true, "verbosity");
  std::vector<std::string> args = {"--verbose=false"};
  std::vector<char*> argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_FALSE(*v);
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser parser;
  parser.AddInt("n", 0, "count");
  std::vector<std::string> args = {"--bogus=1"};
  std::vector<char*> argv = MakeArgv(args);
  Status s = parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntegerIsError) {
  FlagParser parser;
  parser.AddInt("n", 0, "count");
  std::vector<std::string> args = {"--n=abc"};
  std::vector<char*> argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, NegativeNumbersParse) {
  FlagParser parser;
  int64_t* n = parser.AddInt("n", 0, "count");
  double* x = parser.AddDouble("x", 0.0, "value");
  std::vector<std::string> args = {"--n=-7", "--x=-2.5"};
  std::vector<char*> argv = MakeArgv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, -7);
  EXPECT_DOUBLE_EQ(*x, -2.5);
}

TEST(FlagsTest, UsageMentionsAllFlags) {
  FlagParser parser;
  parser.AddInt("alpha", 1, "the alpha");
  parser.AddString("beta", "b", "the beta");
  std::string usage = parser.Usage();
  EXPECT_NE(usage.find("alpha"), std::string::npos);
  EXPECT_NE(usage.find("beta"), std::string::npos);
  EXPECT_NE(usage.find("the alpha"), std::string::npos);
}

TEST(FlagsTest, PositionalArgumentIsError) {
  FlagParser parser;
  std::vector<std::string> args = {"positional"};
  std::vector<char*> argv = MakeArgv(args);
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

}  // namespace
}  // namespace fats
