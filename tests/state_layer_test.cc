// The tiered state layer: HistoryLog tier transitions, SegmentSpiller file
// lifecycle (orphan sweep, reclamation on release), and the StateStore
// property that matters for unlearning — IndicesConsistentWithRecords()
// holds through compress -> spill -> evict -> reload -> truncate, and the
// empty-posting-list guards return sentinels instead of UB.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fl/state_store.h"
#include "rng/rng_stream.h"
#include "state/history_codec.h"
#include "state/history_log.h"
#include "state/segment_spill.h"
#include "tensor/tensor.h"

namespace fats {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

int64_t CountSegFiles(const std::string& dir) {
  int64_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) ++n;
  }
  return n;
}

std::vector<int64_t> ListFor(int64_t k1, int64_t k2) {
  return {k1 * 100 + k2, k1 * 100 + k2 + 1, k1 * 100 + k2 + 7};
}

// --- HistoryLog ---

TEST(HistoryLogTest, ReadsBackAcrossAllTiers) {
  const std::string dir = FreshDir("histlog_tiers");
  state::SegmentSpiller spiller({dir, /*segment_target_bytes=*/256});
  ASSERT_TRUE(spiller.Open().ok());

  state::HistoryLogOptions options;
  options.block_span = 4;
  options.max_open_blocks = 1;
  options.resident_sealed_blocks = 1;
  options.decoded_cache_blocks = 2;
  options.spiller = &spiller;
  state::IndexHistoryLog log(options);

  const int64_t iters = 40;
  for (int64_t t = 1; t <= iters; ++t) {
    for (int64_t k = 0; k < 3; ++k) {
      EXPECT_FALSE(log.Save(t, k, ListFor(t, k)));
    }
  }
  // Tiny budgets with 10 blocks' worth of keys: all three tiers populated.
  EXPECT_EQ(log.spill_errors(), 0);
  EXPECT_GE(log.num_spilled_blocks(), 1);
  EXPECT_GE(log.num_sealed_blocks() + log.num_spilled_blocks(), 8);
  EXPECT_GE(spiller.live_blocks(), 1);

  for (int64_t t = 1; t <= iters; ++t) {
    for (int64_t k = 0; k < 3; ++k) {
      const std::vector<int64_t>* got = log.Get(t, k);
      ASSERT_NE(got, nullptr) << "t=" << t << " k=" << k;
      EXPECT_EQ(*got, ListFor(t, k)) << "t=" << t << " k=" << k;
    }
  }
  EXPECT_EQ(log.Get(iters + 1, 0), nullptr);
  EXPECT_EQ(log.Get(1, 99), nullptr);
}

TEST(HistoryLogTest, SubstitutionReopensColdBlocks) {
  const std::string dir = FreshDir("histlog_subst");
  state::SegmentSpiller spiller({dir, 256});
  ASSERT_TRUE(spiller.Open().ok());
  state::HistoryLogOptions options;
  options.block_span = 2;
  options.max_open_blocks = 1;
  options.resident_sealed_blocks = 0;
  options.spiller = &spiller;
  state::IndexHistoryLog log(options);

  for (int64_t t = 1; t <= 20; ++t) log.Save(t, 0, ListFor(t, 0));
  ASSERT_GE(log.num_spilled_blocks(), 1);

  // Substitute a record whose block is cold: FATS-SU's b' != b rewrite.
  std::vector<int64_t> replaced;
  EXPECT_TRUE(log.Save(3, 0, {777}, &replaced));
  EXPECT_EQ(replaced, ListFor(3, 0));
  ASSERT_NE(log.Get(3, 0), nullptr);
  EXPECT_EQ(*log.Get(3, 0), (std::vector<int64_t>{777}));
  // Neighbors in the reopened block and records in other blocks survive.
  EXPECT_EQ(*log.Get(4, 0), ListFor(4, 0));
  EXPECT_EQ(*log.Get(20, 0), ListFor(20, 0));
}

TEST(HistoryLogTest, TruncateFromVisitsAndReleasesSpill) {
  const std::string dir = FreshDir("histlog_trunc");
  state::SegmentSpiller spiller({dir, 128});
  ASSERT_TRUE(spiller.Open().ok());
  state::HistoryLogOptions options;
  options.block_span = 4;
  options.max_open_blocks = 1;
  options.resident_sealed_blocks = 0;
  options.spiller = &spiller;
  state::IndexHistoryLog log(options);

  for (int64_t t = 1; t <= 32; ++t) log.Save(t, 0, ListFor(t, 0));
  const int64_t spilled_before = spiller.live_blocks();
  ASSERT_GE(spilled_before, 2);

  // Truncate from a mid-block boundary: straddle block keeps t < 10.
  std::vector<int64_t> erased;
  log.TruncateFrom(10, [&erased](int64_t t, int64_t k,
                                 const std::vector<int64_t>& v) {
    erased.push_back(t);
    EXPECT_EQ(v, ListFor(t, k)) << "visitor saw a corrupted record";
  });
  EXPECT_EQ(erased.size(), 23u);  // t = 10..32
  for (int64_t t = 1; t <= 9; ++t) {
    ASSERT_NE(log.Get(t, 0), nullptr) << "t=" << t;
    EXPECT_EQ(*log.Get(t, 0), ListFor(t, 0));
  }
  for (int64_t t = 10; t <= 32; ++t) EXPECT_EQ(log.Get(t, 0), nullptr);
  // Whole truncated blocks dropped their spill refs.
  EXPECT_LT(spiller.live_blocks(), spilled_before);

  // Re-train over the truncated range: the log accepts fresh writes.
  for (int64_t t = 10; t <= 32; ++t) log.Save(t, 0, {t});
  EXPECT_EQ(*log.Get(32, 0), (std::vector<int64_t>{32}));
}

TEST(HistoryLogTest, TensorPayloadsSurviveTiering) {
  const std::string dir = FreshDir("histlog_tensor");
  state::SegmentSpiller spiller({dir, 512});
  ASSERT_TRUE(spiller.Open().ok());
  state::HistoryLogOptions options;
  options.block_span = 2;
  options.max_open_blocks = 1;
  options.resident_sealed_blocks = 1;
  options.spiller = &spiller;
  state::TensorHistoryLog log(options);

  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(5, id);
  std::vector<Tensor> originals;
  for (int64_t t = 1; t <= 12; ++t) {
    std::vector<float> values(7);
    for (float& v : values) v = static_cast<float>(rng.NextGaussian());
    originals.push_back(Tensor({7}, values));
    log.Save(t, 3, originals.back());
  }
  ASSERT_GE(log.num_spilled_blocks(), 1);
  for (int64_t t = 1; t <= 12; ++t) {
    const Tensor* got = log.Get(t, 3);
    ASSERT_NE(got, nullptr);
    EXPECT_TRUE(got->BitwiseEquals(originals[static_cast<size_t>(t - 1)]))
        << "tensor at t=" << t << " not bitwise-preserved";
  }
}

TEST(HistoryLogTest, WorksWithoutSpillerCompressedOnly) {
  state::HistoryLogOptions options;
  options.block_span = 4;
  options.max_open_blocks = 1;
  options.resident_sealed_blocks = 0;  // no spiller: blobs stay resident
  state::IndexHistoryLog log(options);
  for (int64_t t = 1; t <= 20; ++t) log.Save(t, 0, ListFor(t, 0));
  EXPECT_EQ(log.num_spilled_blocks(), 0);
  EXPECT_GE(log.num_sealed_blocks(), 3);
  for (int64_t t = 1; t <= 20; ++t) {
    ASSERT_NE(log.Get(t, 0), nullptr);
    EXPECT_EQ(*log.Get(t, 0), ListFor(t, 0));
  }
}

// --- SegmentSpiller ---

TEST(SegmentSpillerTest, RoundTripsAndValidatesFrames) {
  const std::string dir = FreshDir("spill_roundtrip");
  state::SegmentSpiller spiller({dir, 1 << 20});
  ASSERT_TRUE(spiller.Open().ok());
  const std::string payload = "state layer payload \x01\x02\x00 bytes";
  auto ref = spiller.Write(payload);
  ASSERT_TRUE(ref.ok()) << ref.status().message();
  auto view = spiller.Read(*ref);
  ASSERT_TRUE(view.ok()) << view.status().message();
  EXPECT_EQ(*view, payload);
}

TEST(SegmentSpillerTest, SweepsOrphansOnOpen) {
  const std::string dir = FreshDir("spill_orphans");
  fs::create_directories(dir);
  // A stale segment from a "crashed" prior process.
  { std::FILE* f = std::fopen((dir + "/seg-00000042").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("stale", f);
    std::fclose(f); }
  // An unrelated file the sweep must leave alone.
  { std::FILE* f = std::fopen((dir + "/journal.fatsj").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f); }
  state::SegmentSpiller spiller({dir, 1 << 20});
  ASSERT_TRUE(spiller.Open().ok());
  EXPECT_EQ(spiller.orphans_swept(), 1);
  EXPECT_EQ(CountSegFiles(dir), 0);
  EXPECT_TRUE(fs::exists(dir + "/journal.fatsj"));
}

TEST(SegmentSpillerTest, ReclaimsFilesWhenBlocksReleased) {
  const std::string dir = FreshDir("spill_reclaim");
  // Small target so every few blocks rotate to a new file.
  state::SegmentSpiller spiller({dir, 64});
  ASSERT_TRUE(spiller.Open().ok());
  std::vector<state::SegmentSpiller::BlockRef> refs;
  const std::string payload(48, 'x');
  for (int i = 0; i < 8; ++i) {
    auto ref = spiller.Write(payload);
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
  }
  const int64_t files_at_peak = spiller.num_segment_files();
  ASSERT_GE(files_at_peak, 4);
  // Releasing all blocks reclaims every file except (at most) the current
  // append target.
  for (const auto& ref : refs) spiller.Release(ref);
  EXPECT_EQ(spiller.live_blocks(), 0);
  EXPECT_LE(spiller.num_segment_files(), 1);
  EXPECT_LE(CountSegFiles(dir), 1);
  EXPECT_GE(spiller.files_reclaimed(), files_at_peak - 1);
}

TEST(SegmentSpillerTest, DetectsCorruptFrames) {
  const std::string dir = FreshDir("spill_corrupt");
  state::SegmentSpiller spiller({dir, 1 << 20});
  ASSERT_TRUE(spiller.Open().ok());
  auto ref = spiller.Write("precious history block");
  ASSERT_TRUE(ref.ok());
  // Read once to prove the frame is good, then flip one payload byte on
  // disk behind the spiller's back.
  ASSERT_TRUE(spiller.Read(*ref).ok());
  std::string path;
  for (const auto& entry : fs::directory_iterator(dir)) {
    path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  { std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // Past magic(8) + version(4) + len(4) + crc(4): first payload byte.
    ASSERT_EQ(std::fseek(f, 20, SEEK_SET), 0);
    std::fputc('X', f);
    std::fclose(f); }
  EXPECT_FALSE(spiller.Read(*ref).ok());
}

TEST(SegmentSpillerTest, ClearDeletesEverything) {
  const std::string dir = FreshDir("spill_clear");
  state::SegmentSpiller spiller({dir, 64});
  ASSERT_TRUE(spiller.Open().ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(spiller.Write("payload").ok());
  spiller.Clear();
  EXPECT_EQ(spiller.live_blocks(), 0);
  EXPECT_EQ(CountSegFiles(dir), 0);
}

// --- StateStore on the tiered layer ---

StateStoreOptions TinyStoreOptions(const std::string& dir) {
  StateStoreOptions options;
  options.block_iters = 4;
  options.resident_sealed_blocks = 1;
  options.decoded_cache_blocks = 2;
  options.spill_dir = dir;
  options.segment_target_bytes = 256;
  return options;
}

// Drives a store through a FATS-shaped history and checks the inverted
// indices stay consistent at every phase of the tier lifecycle.
TEST(StateStorePropertyTest, IndicesConsistentAcrossTierLifecycle) {
  const std::string dir = FreshDir("store_property");
  StateStore store(TinyStoreOptions(dir));
  const int64_t e = 2;

  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(99, id);
  const int64_t rounds = 24;  // 48 iterations = 12 blocks at span 4
  for (int64_t r = 1; r <= rounds; ++r) {
    std::vector<int64_t> selection;
    for (int64_t j = 0; j < 2; ++j) {
      selection.push_back(static_cast<int64_t>(rng.UniformInt(6)));
    }
    store.SaveClientSelection(r, selection);
    for (int64_t i = 1; i <= e; ++i) {
      const int64_t t = (r - 1) * e + i;
      for (int64_t client : selection) {
        std::vector<int64_t> batch;
        for (int64_t j = 0; j < 3; ++j) {
          batch.push_back(static_cast<int64_t>(rng.UniformInt(10)));
        }
        store.SaveMinibatch(t, client, batch);
        store.SaveLocalModel(t, client, Tensor({3}, {1.0f, 2.0f, 3.0f}));
      }
    }
    store.SaveGlobalModel(r, Tensor({3}, {0.5f, 0.5f, 0.5f}));
    if (r % 6 == 0) {
      // Mid-history audit: compress/spill is already underway.
      ASSERT_TRUE(store.IndicesConsistentWithRecords()) << "round " << r;
    }
  }
  ASSERT_GT(store.SpilledBytes(), 0) << "workload never reached the tier "
                                        "the test exists to exercise";
  ASSERT_TRUE(store.IndicesConsistentWithRecords());

  // Substitute a cold minibatch (what FATS-SU does: b' replaces b at the
  // same key), then re-audit.
  const int64_t cold_client = (*store.GetClientSelection(2))[0];
  store.SaveMinibatch(3, cold_client, {0, 1, 2});
  ASSERT_TRUE(store.IndicesConsistentWithRecords());

  store.TruncateFromIteration(/*from_iter=*/19, e);
  ASSERT_TRUE(store.IndicesConsistentWithRecords());
  for (int64_t t = 19; t <= rounds * e; ++t) {
    for (int64_t k = 0; k < 6; ++k) {
      EXPECT_EQ(store.GetMinibatch(t, k), nullptr);
    }
  }

  // Everything before the cut is still intact and consistent.
  ASSERT_TRUE(store.IndicesConsistentWithRecords());
  store.Clear();
  ASSERT_TRUE(store.IndicesConsistentWithRecords());
  EXPECT_EQ(store.SpilledBytes(), 0);
}

TEST(StateStoreGuardsTest, EmptyPostingListsReturnSentinels) {
  const std::string dir = FreshDir("store_guards");
  StateStore store(TinyStoreOptions(dir));
  // Never-recorded sample/client: sentinel, not UB.
  EXPECT_EQ(store.EarliestSampleUse({0, 0}), -1);
  EXPECT_EQ(store.EarliestClientRound(0), -1);
  EXPECT_EQ(store.SampleUses({0, 0}), nullptr);
  EXPECT_EQ(store.ClientRounds(0), nullptr);

  // Recorded, then truncated to empty: the posting list exists but has no
  // entries — the guard must treat it exactly like a missing one.
  store.SaveClientSelection(1, {2});
  store.SaveMinibatch(1, 2, {5, 6});
  ASSERT_EQ(store.EarliestSampleUse({2, 5}), 1);
  ASSERT_EQ(store.EarliestClientRound(2), 1);
  store.TruncateFromIteration(1, /*local_iters_e=*/1);
  EXPECT_EQ(store.EarliestSampleUse({2, 5}), -1);
  EXPECT_EQ(store.EarliestClientRound(2), -1);
  EXPECT_EQ(store.SampleUses({2, 5}), nullptr);
  EXPECT_EQ(store.ClientRounds(2), nullptr);
  ASSERT_TRUE(store.IndicesConsistentWithRecords());
}

TEST(StateStoreSpillTest, TruncateAndRetrainReusesSegmentFiles) {
  const std::string dir = FreshDir("store_reuse");
  const int64_t e = 2;
  StateStoreOptions options = TinyStoreOptions(dir);
  int64_t files_after_first_cycle = -1;
  {
    StateStore store(options);
    auto run_history = [&store, e](int64_t from_round, int64_t to_round) {
      for (int64_t r = from_round; r <= to_round; ++r) {
        store.SaveClientSelection(r, {0, 1});
        for (int64_t i = 1; i <= e; ++i) {
          const int64_t t = (r - 1) * e + i;
          store.SaveMinibatch(t, 0, {t % 5, t % 5 + 1});
          store.SaveMinibatch(t, 1, {t % 7});
          store.SaveLocalModel(t, 0, Tensor({2}, {1.0f, 2.0f}));
          store.SaveLocalModel(t, 1, Tensor({2}, {3.0f, 4.0f}));
        }
        store.SaveGlobalModel(r, Tensor({2}, {0.1f, 0.2f}));
      }
    };
    run_history(1, 30);
    ASSERT_GT(store.SpilledBytes(), 0);

    // Repeated truncate-and-retrain cycles (the unlearning loop). Without
    // the release-on-truncate contract each cycle would leak the truncated
    // range's segment files and the count would grow cycle over cycle.
    for (int cycle = 0; cycle < 5; ++cycle) {
      store.TruncateFromIteration(21, e);
      run_history(11, 30);
      ASSERT_TRUE(store.IndicesConsistentWithRecords()) << "cycle " << cycle;
      if (cycle == 0) files_after_first_cycle = CountSegFiles(dir);
    }
    EXPECT_LE(CountSegFiles(dir), files_after_first_cycle + 1)
        << "segment files grew across truncate-retrain cycles: leak";
  }
  // Store destruction releases every segment file.
  EXPECT_EQ(CountSegFiles(dir), 0);
}

}  // namespace
}  // namespace fats
