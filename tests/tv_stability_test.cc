#include "core/tv_stability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fats {
namespace {

FatsConfig BaseConfig() {
  FatsConfig config;
  config.clients_m = 60;
  config.samples_per_client_n = 40;
  config.rounds_r = 15;
  config.local_iters_e = 5;
  config.rho_s = 0.25;
  config.rho_c = 0.5;
  config.learning_rate = 0.05;
  return config;
}

TEST(StabilityBoundTest, MatchesEffectiveRhosCappedAtOne) {
  FatsConfig config = BaseConfig();
  EXPECT_NEAR(SampleLevelStabilityBound(config), 0.25, 1e-12);
  EXPECT_NEAR(ClientLevelStabilityBound(config), 0.5, 1e-12);
  config.rho_s = 50.0;
  EXPECT_DOUBLE_EQ(SampleLevelStabilityBound(config), 1.0);
}

TEST(StabilityBoundTest, RecomputationProbabilityLinearInRequests) {
  EXPECT_NEAR(RecomputationProbabilityBound(0.1, 3), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(RecomputationProbabilityBound(0.5, 10), 1.0);  // capped
  EXPECT_DOUBLE_EQ(RecomputationProbabilityBound(2.0, 1), 1.0);
}

TEST(LearningRateConditionTest, HoldsForSmallEtaFailsForLarge) {
  ConvergenceConstants c;
  c.smoothness_l = 1.0;
  c.heterogeneity_lambda = 2.0;
  EXPECT_TRUE(LearningRateConditionHolds(1e-4, c, 10));
  EXPECT_FALSE(LearningRateConditionHolds(10.0, c, 10));
  EXPECT_FALSE(LearningRateConditionHolds(0.0, c, 10));  // strict inequality
}

TEST(LearningRateConditionTest, LargerEShrinksFeasibleEta) {
  ConvergenceConstants c;
  c.heterogeneity_lambda = 2.0;
  const double eta_small_e = MaxStableLearningRate(c, 2);
  const double eta_large_e = MaxStableLearningRate(c, 50);
  EXPECT_GT(eta_small_e, eta_large_e);
  EXPECT_GT(eta_large_e, 0.0);
}

TEST(LearningRateConditionTest, MaxRateSatisfiesConditionBelowNotAbove) {
  ConvergenceConstants c;
  c.heterogeneity_lambda = 3.0;
  const double eta = MaxStableLearningRate(c, 5);
  EXPECT_TRUE(LearningRateConditionHolds(0.99 * eta, c, 5));
  EXPECT_FALSE(LearningRateConditionHolds(1.01 * eta, c, 5));
}

TEST(GammaTest, MatchesDefinition) {
  ConvergenceConstants c;
  c.smoothness_l = 2.0;
  c.gradient_variance_g2 = 8.0;
  c.initial_gap = 1.0;
  // Γ = G² / (L·gap·ρ_S·M·N) = 8 / (2·1·0.25·10·20) = 0.08.
  EXPECT_NEAR(Gamma(c, 0.25, 10, 20), 0.08, 1e-12);
}

TEST(GammaTest, TheoreticalLearningRateMatchesFormula) {
  ConvergenceConstants c;
  const double gamma = Gamma(c, 0.5, 10, 10);
  const double eta = TheoreticalLearningRate(c, 0.5, 10, 10, 100);
  EXPECT_NEAR(eta, 1.0 / (c.smoothness_l * std::sqrt(gamma) * 100.0), 1e-12);
}

TEST(ConvergenceBoundTest, DecreasesWithMorePerClientDataAtFixedRho) {
  // N only appears in the 1/sqrt(ρ_S·M·N) stability term, so growing N
  // shrinks the bound. (Growing M instead also grows the ρ_C·M·E/T term,
  // so the bound is not monotone in M at fixed T — see Remark 2(III).)
  ConvergenceConstants c;
  FatsConfig small = BaseConfig();
  FatsConfig large = BaseConfig();
  large.samples_per_client_n *= 4;
  EXPECT_LT(ConvergenceBound(c, large), ConvergenceBound(c, small));
}

TEST(ConvergenceBoundTest, StabilityCostScalesAsInverseSqrtRhoSMN) {
  ConvergenceConstants c;
  const double cost_1 = StabilityCost(c, 0.25, 100, 100);
  const double cost_4x_data = StabilityCost(c, 0.25, 400, 100);
  EXPECT_NEAR(cost_1 / cost_4x_data, 2.0, 1e-9);
  const double cost_4x_rho = StabilityCost(c, 1.0, 100, 100);
  EXPECT_NEAR(cost_1 / cost_4x_rho, 2.0, 1e-9);
}

TEST(ConvergenceBoundTest, BoundExceedsStabilityCost) {
  ConvergenceConstants c;
  FatsConfig config = BaseConfig();
  EXPECT_GE(ConvergenceBound(c, config),
            StabilityCost(c, config.EffectiveRhoS(), config.clients_m,
                          config.samples_per_client_n));
}

TEST(ConvergenceBoundTest, RhoCDoesNotAffectStabilityCost) {
  // Remark 2(II): ρ_C cancels in K·b, so only ρ_S matters for the
  // non-vanishing term.
  ConvergenceConstants c;
  EXPECT_DOUBLE_EQ(StabilityCost(c, 0.3, 50, 50),
                   StabilityCost(c, 0.3, 50, 50));
  FatsConfig a = BaseConfig();
  FatsConfig b = BaseConfig();
  b.rho_c = 1.0;
  // Same rho_s: first term equal; only the E/T term differs.
  const double cost_a = StabilityCost(c, a.EffectiveRhoS(), a.clients_m,
                                      a.samples_per_client_n);
  const double cost_b = StabilityCost(c, b.EffectiveRhoS(), b.clients_m,
                                      b.samples_per_client_n);
  EXPECT_NEAR(cost_a, cost_b, 0.25 * cost_a);
}

TEST(UnlearningTimeTest, Theorem3Formula) {
  // max{min(ρ,1)·w·T, w}.
  EXPECT_DOUBLE_EQ(ExpectedUnlearningTimeSteps(0.1, 2, 100), 20.0);
  EXPECT_DOUBLE_EQ(ExpectedUnlearningTimeSteps(2.0, 2, 100), 200.0);
  // Verification-dominated regime: tiny rho, many requests.
  EXPECT_DOUBLE_EQ(ExpectedUnlearningTimeSteps(1e-6, 50, 100), 50.0);
}

TEST(UnlearningTimeTest, MonotoneInRhoAndRequests) {
  EXPECT_LE(ExpectedUnlearningTimeSteps(0.1, 1, 100),
            ExpectedUnlearningTimeSteps(0.2, 1, 100));
  EXPECT_LE(ExpectedUnlearningTimeSteps(0.1, 1, 100),
            ExpectedUnlearningTimeSteps(0.1, 3, 100));
}

}  // namespace
}  // namespace fats
