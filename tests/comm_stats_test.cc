#include "fl/comm_stats.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(CommStatsTest, StartsEmpty) {
  CommStats stats;
  EXPECT_EQ(stats.rounds(), 0);
  EXPECT_EQ(stats.total_bytes(), 0);
  EXPECT_EQ(stats.messages(), 0);
}

TEST(CommStatsTest, BroadcastCountsDownlinkBytes) {
  CommStats stats;
  stats.RecordBroadcast(/*num_clients=*/5, /*model_params=*/100);
  EXPECT_EQ(stats.downlink_bytes(), 5 * 100 * 4);
  EXPECT_EQ(stats.uplink_bytes(), 0);
  EXPECT_EQ(stats.messages(), 5);
}

TEST(CommStatsTest, UploadCountsUplinkBytes) {
  CommStats stats;
  stats.RecordUpload(3, 50);
  EXPECT_EQ(stats.uplink_bytes(), 3 * 50 * 4);
  EXPECT_EQ(stats.total_bytes(), 3 * 50 * 4);
}

TEST(CommStatsTest, RoundCounter) {
  CommStats stats;
  stats.RecordRound();
  stats.RecordRound();
  EXPECT_EQ(stats.rounds(), 2);
}

TEST(CommStatsTest, FullRoundCost) {
  // One FATS round: K broadcasts down + K uploads up.
  CommStats stats;
  const int64_t k = 4;
  const int64_t d = 1000;
  stats.RecordBroadcast(k, d);
  stats.RecordUpload(k, d);
  stats.RecordRound();
  EXPECT_EQ(stats.total_bytes(), 2 * k * d * 4);
}

TEST(CommStatsTest, MergeAccumulates) {
  CommStats a;
  a.RecordBroadcast(1, 10);
  a.RecordRound();
  CommStats b;
  b.RecordUpload(2, 10);
  b.RecordRound();
  a.Merge(b);
  EXPECT_EQ(a.rounds(), 2);
  EXPECT_EQ(a.downlink_bytes(), 40);
  EXPECT_EQ(a.uplink_bytes(), 80);
}

TEST(CommStatsTest, ResetClears) {
  CommStats stats;
  stats.RecordBroadcast(1, 1);
  stats.Reset();
  EXPECT_EQ(stats.total_bytes(), 0);
  EXPECT_EQ(stats.messages(), 0);
}

TEST(CommStatsTest, ToStringMentionsCounters) {
  CommStats stats;
  stats.RecordRound();
  EXPECT_NE(stats.ToString().find("rounds=1"), std::string::npos);
}

}  // namespace
}  // namespace fats
