#include "fl/comm_stats.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(CommStatsTest, StartsEmpty) {
  CommStats stats;
  EXPECT_EQ(stats.rounds(), 0);
  EXPECT_EQ(stats.total_bytes(), 0);
  EXPECT_EQ(stats.messages(), 0);
}

TEST(CommStatsTest, BroadcastCountsDownlinkBytes) {
  CommStats stats;
  stats.RecordBroadcast(/*num_clients=*/5, /*model_params=*/100);
  EXPECT_EQ(stats.downlink_bytes(), 5 * 100 * 4);
  EXPECT_EQ(stats.uplink_bytes(), 0);
  EXPECT_EQ(stats.messages(), 5);
}

TEST(CommStatsTest, UploadCountsUplinkBytes) {
  CommStats stats;
  stats.RecordUpload(3, 50);
  EXPECT_EQ(stats.uplink_bytes(), 3 * 50 * 4);
  EXPECT_EQ(stats.total_bytes(), 3 * 50 * 4);
}

TEST(CommStatsTest, RoundCounter) {
  CommStats stats;
  stats.RecordRound();
  stats.RecordRound();
  EXPECT_EQ(stats.rounds(), 2);
}

TEST(CommStatsTest, FullRoundCost) {
  // One FATS round: K broadcasts down + K uploads up.
  CommStats stats;
  const int64_t k = 4;
  const int64_t d = 1000;
  stats.RecordBroadcast(k, d);
  stats.RecordUpload(k, d);
  stats.RecordRound();
  EXPECT_EQ(stats.total_bytes(), 2 * k * d * 4);
}

TEST(CommStatsTest, MergeAccumulates) {
  CommStats a;
  a.RecordBroadcast(1, 10);
  a.RecordRound();
  CommStats b;
  b.RecordUpload(2, 10);
  b.RecordRound();
  a.Merge(b);
  EXPECT_EQ(a.rounds(), 2);
  EXPECT_EQ(a.downlink_bytes(), 40);
  EXPECT_EQ(a.uplink_bytes(), 80);
}

TEST(CommStatsTest, ResetClears) {
  CommStats stats;
  stats.RecordBroadcast(1, 1);
  stats.Reset();
  EXPECT_EQ(stats.total_bytes(), 0);
  EXPECT_EQ(stats.messages(), 0);
}

TEST(CommStatsTest, ToStringMentionsCounters) {
  CommStats stats;
  stats.RecordRound();
  EXPECT_NE(stats.ToString().find("rounds=1"), std::string::npos);
}

TEST(CommStatsTest, PerDeliveryChargesMatchTheBulkForms) {
  // The per-delivery API (what the wire path charges) must land on the
  // same ledger as the analytic bulk forms used by the baselines.
  CommStats wire;
  for (int i = 0; i < 5; ++i) wire.RecordDownlinkDelivery(100 * 4);
  for (int i = 0; i < 3; ++i) wire.RecordUplinkDelivery(100 * 4);
  CommStats bulk;
  bulk.RecordBroadcast(5, 100);
  bulk.RecordUpload(3, 100);
  EXPECT_EQ(wire.downlink_bytes(), bulk.downlink_bytes());
  EXPECT_EQ(wire.uplink_bytes(), bulk.uplink_bytes());
  EXPECT_EQ(wire.messages(), bulk.messages());
  EXPECT_EQ(wire.downlink_messages(), 5);
  EXPECT_EQ(wire.uplink_messages(), 3);
}

TEST(CommStatsTest, RetransmitsAreLedgeredSeparately) {
  CommStats stats;
  stats.RecordDownlinkDelivery(400);
  stats.RecordRetransmits(/*count=*/3, /*bytes=*/3 * 444);
  EXPECT_EQ(stats.retransmits(), 3);
  EXPECT_EQ(stats.retransmit_bytes(), 3 * 444);
  // The clean ledger (the paper's communication cost) excludes them.
  EXPECT_EQ(stats.total_bytes(), 400);
  EXPECT_EQ(stats.messages(), 1);
}

TEST(CommStatsTest, CountersRoundTripThroughFromCounters) {
  CommStats stats;
  stats.RecordDownlinkDelivery(16);
  stats.RecordUplinkDelivery(16);
  stats.RecordRetransmits(2, 120);
  stats.RecordRound();
  const CommStats back = CommStats::FromCounters(stats.counters());
  EXPECT_EQ(back.rounds(), stats.rounds());
  EXPECT_EQ(back.downlink_bytes(), stats.downlink_bytes());
  EXPECT_EQ(back.uplink_bytes(), stats.uplink_bytes());
  EXPECT_EQ(back.downlink_messages(), stats.downlink_messages());
  EXPECT_EQ(back.uplink_messages(), stats.uplink_messages());
  EXPECT_EQ(back.retransmits(), stats.retransmits());
  EXPECT_EQ(back.retransmit_bytes(), stats.retransmit_bytes());
}

TEST(CommStatsTest, MergeAndResetCoverTheRetransmitLedger) {
  CommStats a;
  a.RecordRetransmits(1, 50);
  CommStats b;
  b.RecordRetransmits(2, 70);
  a.Merge(b);
  EXPECT_EQ(a.retransmits(), 3);
  EXPECT_EQ(a.retransmit_bytes(), 120);
  a.Reset();
  EXPECT_EQ(a.retransmits(), 0);
  EXPECT_EQ(a.retransmit_bytes(), 0);
}

}  // namespace
}  // namespace fats
