#include "fl/state_store.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(StateStoreTest, ClientSelectionRoundTrip) {
  StateStore store;
  store.SaveClientSelection(1, {3, 1, 3});
  const std::vector<int64_t>* sel = store.GetClientSelection(1);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(*sel, (std::vector<int64_t>{3, 1, 3}));
  EXPECT_EQ(store.GetClientSelection(2), nullptr);
}

TEST(StateStoreTest, GlobalModelRoundTrip) {
  StateStore store;
  store.SaveGlobalModel(0, Tensor({2}, {1, 2}));
  store.SaveGlobalModel(3, Tensor({2}, {3, 4}));
  ASSERT_NE(store.GetGlobalModel(0), nullptr);
  EXPECT_FLOAT_EQ((*store.GetGlobalModel(3))[1], 4.0f);
  EXPECT_EQ(store.GetGlobalModel(1), nullptr);
}

TEST(StateStoreTest, MinibatchRoundTrip) {
  StateStore store;
  store.SaveMinibatch(5, 2, {0, 7});
  const std::vector<int64_t>* batch = store.GetMinibatch(5, 2);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(*batch, (std::vector<int64_t>{0, 7}));
  EXPECT_EQ(store.GetMinibatch(5, 3), nullptr);
  EXPECT_EQ(store.GetMinibatch(6, 2), nullptr);
}

TEST(StateStoreTest, LocalModelRoundTrip) {
  StateStore store;
  store.SaveLocalModel(4, 1, Tensor({1}, {9}));
  ASSERT_NE(store.GetLocalModel(4, 1), nullptr);
  EXPECT_FLOAT_EQ((*store.GetLocalModel(4, 1))[0], 9.0f);
}

TEST(StateStoreTest, EarliestSampleUseTracksMinimum) {
  StateStore store;
  EXPECT_EQ(store.EarliestSampleUse({1, 0}), -1);
  store.SaveMinibatch(8, 1, {0, 2});
  store.SaveMinibatch(3, 1, {2});
  store.SaveMinibatch(5, 1, {0});
  EXPECT_EQ(store.EarliestSampleUse({1, 0}), 5);
  EXPECT_EQ(store.EarliestSampleUse({1, 2}), 3);
  EXPECT_EQ(store.EarliestSampleUse({1, 9}), -1);
  EXPECT_EQ(store.EarliestSampleUse({2, 0}), -1);  // other client
}

TEST(StateStoreTest, EarliestClientRoundTracksMinimum) {
  StateStore store;
  EXPECT_EQ(store.EarliestClientRound(4), -1);
  store.SaveClientSelection(6, {4});
  store.SaveClientSelection(2, {4, 5});
  EXPECT_EQ(store.EarliestClientRound(4), 2);
  EXPECT_EQ(store.EarliestClientRound(5), 2);
  EXPECT_EQ(store.EarliestClientRound(9), -1);
}

TEST(StateStoreTest, TruncateRemovesSuffixRecords) {
  StateStore store;
  const int64_t e = 3;  // rounds: 1 -> iters 1..3, 2 -> 4..6
  store.SaveGlobalModel(0, Tensor({1}, {0}));
  store.SaveClientSelection(1, {0});
  store.SaveMinibatch(1, 0, {5});
  store.SaveMinibatch(3, 0, {6});
  store.SaveLocalModel(3, 0, Tensor({1}, {1}));
  store.SaveGlobalModel(1, Tensor({1}, {1}));
  store.SaveClientSelection(2, {1});
  store.SaveMinibatch(4, 1, {7});
  store.SaveLocalModel(4, 1, Tensor({1}, {2}));
  store.SaveGlobalModel(2, Tensor({1}, {2}));

  // Truncate from iteration 4 (round 2 start): round 2 records vanish,
  // round 1 records and the initial model survive.
  store.TruncateFromIteration(4, e);
  EXPECT_NE(store.GetGlobalModel(0), nullptr);
  EXPECT_NE(store.GetGlobalModel(1), nullptr);
  EXPECT_EQ(store.GetGlobalModel(2), nullptr);
  EXPECT_NE(store.GetClientSelection(1), nullptr);
  EXPECT_EQ(store.GetClientSelection(2), nullptr);
  EXPECT_NE(store.GetMinibatch(3, 0), nullptr);
  EXPECT_EQ(store.GetMinibatch(4, 1), nullptr);
  EXPECT_EQ(store.GetLocalModel(4, 1), nullptr);
}

TEST(StateStoreTest, TruncateMidRoundKeepsSelectionDropsRoundModel) {
  StateStore store;
  const int64_t e = 3;
  store.SaveClientSelection(1, {0});
  store.SaveMinibatch(1, 0, {1});
  store.SaveMinibatch(2, 0, {2});
  store.SaveGlobalModel(1, Tensor({1}, {1}));
  // Truncate from iteration 2: the round-1 selection survives (made at
  // iter 1) but the round-1 global model (saved at iter 3) is dropped.
  store.TruncateFromIteration(2, e);
  EXPECT_NE(store.GetClientSelection(1), nullptr);
  EXPECT_NE(store.GetMinibatch(1, 0), nullptr);
  EXPECT_EQ(store.GetMinibatch(2, 0), nullptr);
  EXPECT_EQ(store.GetGlobalModel(1), nullptr);
}

TEST(StateStoreTest, TruncateRebuildsEarliestIndices) {
  StateStore store;
  store.SaveMinibatch(2, 0, {5});
  store.SaveMinibatch(7, 0, {5});
  store.SaveClientSelection(1, {3});
  store.SaveClientSelection(4, {3});
  EXPECT_EQ(store.EarliestSampleUse({0, 5}), 2);
  store.TruncateFromIteration(2, 2);
  // Iteration-2 record gone; earliest must now be -1 (the iter-7 record is
  // also >= 2 so it is gone too).
  EXPECT_EQ(store.EarliestSampleUse({0, 5}), -1);
  // Round 4 starts at iter 7 >= 2 -> dropped; round 1 starts at 1 -> kept.
  EXPECT_EQ(store.EarliestClientRound(3), 1);
}

TEST(StateStoreTest, SampleUsesListsAllIterationsSorted) {
  StateStore store;
  EXPECT_EQ(store.SampleUses({0, 5}), nullptr);
  store.SaveMinibatch(9, 0, {5, 6});
  store.SaveMinibatch(2, 0, {5});
  store.SaveMinibatch(4, 0, {5});
  store.SaveMinibatch(4, 1, {5});  // other client, same local index
  const std::vector<int64_t>* uses = store.SampleUses({0, 5});
  ASSERT_NE(uses, nullptr);
  EXPECT_EQ(*uses, (std::vector<int64_t>{2, 4, 9}));
  ASSERT_NE(store.SampleUses({1, 5}), nullptr);
  EXPECT_EQ(*store.SampleUses({1, 5}), (std::vector<int64_t>{4}));
  EXPECT_EQ(store.SampleUses({0, 7}), nullptr);
}

TEST(StateStoreTest, ClientRoundsListsAllRoundsSorted) {
  StateStore store;
  EXPECT_EQ(store.ClientRounds(3), nullptr);
  store.SaveClientSelection(5, {3, 3, 1});  // repeated in multiset: one posting
  store.SaveClientSelection(2, {3});
  const std::vector<int64_t>* rounds = store.ClientRounds(3);
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(*rounds, (std::vector<int64_t>{2, 5}));
  ASSERT_NE(store.ClientRounds(1), nullptr);
  EXPECT_EQ(*store.ClientRounds(1), (std::vector<int64_t>{5}));
}

TEST(StateStoreTest, MinibatchOverwriteDeindexesOldBatch) {
  StateStore store;
  store.SaveMinibatch(3, 0, {5, 6});
  store.SaveMinibatch(8, 0, {5});
  // Substitution: the new batch at iteration 3 no longer contains sample 5.
  store.SaveMinibatch(3, 0, {6, 7});
  ASSERT_NE(store.SampleUses({0, 5}), nullptr);
  EXPECT_EQ(*store.SampleUses({0, 5}), (std::vector<int64_t>{8}));
  EXPECT_EQ(*store.SampleUses({0, 6}), (std::vector<int64_t>{3}));
  EXPECT_EQ(*store.SampleUses({0, 7}), (std::vector<int64_t>{3}));
  // Replacing the last referencing batch erases the posting key entirely.
  store.SaveMinibatch(8, 0, {7});
  EXPECT_EQ(store.SampleUses({0, 5}), nullptr);
  EXPECT_EQ(store.EarliestSampleUse({0, 5}), -1);
  EXPECT_TRUE(store.IndicesConsistentWithRecords());
}

TEST(StateStoreTest, SelectionOverwriteDeindexesOldMultiset) {
  StateStore store;
  store.SaveClientSelection(2, {1, 2});
  store.SaveClientSelection(4, {1});
  store.SaveClientSelection(2, {2, 3});  // round 2 redrawn without client 1
  ASSERT_NE(store.ClientRounds(1), nullptr);
  EXPECT_EQ(*store.ClientRounds(1), (std::vector<int64_t>{4}));
  EXPECT_EQ(*store.ClientRounds(3), (std::vector<int64_t>{2}));
  store.SaveClientSelection(4, {3});
  EXPECT_EQ(store.ClientRounds(1), nullptr);
  EXPECT_EQ(store.EarliestClientRound(1), -1);
  EXPECT_TRUE(store.IndicesConsistentWithRecords());
}

TEST(StateStoreTest, TruncateMaintainsIndexIncrementally) {
  StateStore store;
  const int64_t e = 2;
  store.SaveClientSelection(1, {0, 1});
  store.SaveClientSelection(2, {0});
  store.SaveClientSelection(3, {1});
  for (int64_t t = 1; t <= 6; ++t) {
    store.SaveMinibatch(t, t % 2, {t, 100});
  }
  ASSERT_TRUE(store.IndicesConsistentWithRecords());
  store.TruncateFromIteration(3, e);  // round 2 start
  EXPECT_TRUE(store.IndicesConsistentWithRecords());
  EXPECT_EQ(*store.ClientRounds(0), (std::vector<int64_t>{1}));
  EXPECT_EQ(*store.ClientRounds(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(store.SampleUses({1, 3}), nullptr);  // iter-3 record erased
  EXPECT_EQ(*store.SampleUses({0, 100}), (std::vector<int64_t>{2}));
  EXPECT_EQ(*store.SampleUses({1, 100}), (std::vector<int64_t>{1}));
}

TEST(StateStoreTest, ClearDropsIndices) {
  StateStore store;
  store.SaveMinibatch(1, 0, {3});
  store.SaveClientSelection(1, {0});
  store.Clear();
  EXPECT_EQ(store.SampleUses({0, 3}), nullptr);
  EXPECT_EQ(store.ClientRounds(0), nullptr);
  EXPECT_TRUE(store.IndicesConsistentWithRecords());
}

TEST(StateStoreTest, ConsistencyAuditDetectsNothingAfterMixedOps) {
  StateStore store;
  const int64_t e = 3;
  for (int64_t r = 1; r <= 4; ++r) {
    store.SaveClientSelection(r, {r % 3, (r + 1) % 3});
    for (int64_t t = (r - 1) * e + 1; t <= r * e; ++t) {
      store.SaveMinibatch(t, r % 3, {t % 5, (t + 2) % 5});
    }
  }
  store.SaveMinibatch(4, 1, {0});      // substitution overwrite
  store.TruncateFromIteration(8, e);   // mid-history truncation
  store.SaveClientSelection(3, {2});   // redraw after truncation
  EXPECT_TRUE(store.IndicesConsistentWithRecords());
}

TEST(StateStoreTest, ApproxBytesGrowsWithRecords) {
  StateStore store;
  const int64_t empty = store.ApproxBytes();
  store.SaveGlobalModel(1, Tensor({100}));
  store.SaveMinibatch(1, 0, {1, 2, 3});
  EXPECT_GT(store.ApproxBytes(), empty + 400);
}

TEST(StateStoreTest, RecordCounters) {
  StateStore store;
  store.SaveMinibatch(1, 0, {1});
  store.SaveMinibatch(2, 0, {1});
  store.SaveLocalModel(1, 0, Tensor({1}));
  store.SaveClientSelection(1, {0});
  EXPECT_EQ(store.num_minibatch_records(), 2);
  EXPECT_EQ(store.num_local_model_records(), 1);
  EXPECT_EQ(store.num_rounds_recorded(), 1);
}

TEST(CompactIndexTest, TracksParticipationBits) {
  CompactParticipationIndex index(3, {4, 4, 4});
  EXPECT_FALSE(index.ClientParticipated(1));
  EXPECT_FALSE(index.SampleUsed(1, 2));
  index.RecordClientParticipation(1);
  index.RecordSampleUse(1, 2);
  EXPECT_TRUE(index.ClientParticipated(1));
  EXPECT_TRUE(index.SampleUsed(1, 2));
  EXPECT_FALSE(index.SampleUsed(1, 3));
  EXPECT_FALSE(index.ClientParticipated(0));
}

TEST(CompactIndexTest, ClearResets) {
  CompactParticipationIndex index(2, {2, 2});
  index.RecordClientParticipation(0);
  index.RecordSampleUse(0, 1);
  index.Clear();
  EXPECT_FALSE(index.ClientParticipated(0));
  EXPECT_FALSE(index.SampleUsed(0, 1));
}

TEST(CompactIndexTest, SpaceIsBitsNotWords) {
  // The §5.3.2 point: M + M·N bits, dramatically smaller than the full
  // store.
  CompactParticipationIndex index(100, std::vector<int64_t>(100, 1000));
  EXPECT_LE(index.ApproxBytes(), (100 + 100 * 1000) / 8 + 64);
}

}  // namespace
}  // namespace fats
