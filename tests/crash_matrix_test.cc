// The crash matrix: kill the process at every registered failpoint (twice,
// at different hit counts, plus torn journal writes), recover from the
// checkpoint + journal, and require the recovered run to be bit-identical
// to an uninterrupted one — model, training log, and communication ledger —
// and for subsequent unlearning to match exactly.
//
// Children are forked (num_threads stays 1, so the process is single-
// threaded and fork-safe) and die via std::_Exit inside the failpoint, so
// only bytes already fflush'd to the OS survive — exactly the durability
// contract the journal claims.
//
// The async-journal rows keep that fork discipline: a child's writer thread
// is spawned only after the fork (inside its own DurableTrainingSession),
// and parent-side recovery sessions join their writer (JournalWriter::Close
// runs in the session destructor) before the loop forks again.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sample_unlearner.h"
#include "io/train_journal.h"
#include "test_workloads.h"
#include "util/failpoint.h"

namespace fats {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

constexpr int64_t kHalf = 4;
constexpr int64_t kTotal = 8;  // R=4, E=2

// Tests re-run against the same TempDir: stale durable files from a prior
// invocation must never leak into a scenario.
void RemoveDurableFiles(const std::string& ckpt, const std::string& jrn) {
  for (const std::string& p : {ckpt, ckpt + ".tmp", jrn, jrn + ".tmp"}) {
    std::remove(p.c_str());
  }
}

struct Env {
  FederatedDataset data;
  FatsConfig config;
  std::unique_ptr<FatsTrainer> trainer;
};

Env MakeEnv(const std::string& fault_spec = "",
            const std::string& spill_dir = "") {
  Env env;
  env.data = TinyImageData(5, 8);
  env.config = TinyFatsConfig(5, 8, 4, 2);
  env.config.fault_spec = fault_spec;
  if (!spill_dir.empty()) {
    // Tiny tier budgets so the 8-iteration schedule seals, spills, and
    // evicts — otherwise the state.* failpoints are never crossed.
    env.config.state_spill_dir = spill_dir;
    env.config.state_block_iters = 2;
    env.config.state_resident_sealed_blocks = 1;
    env.config.state_decoded_cache_blocks = 2;
  }
  env.trainer =
      std::make_unique<FatsTrainer>(TinyModelSpec(), env.config, &env.data);
  return env;
}

struct CommSnapshot {
  int64_t rounds = 0;
  int64_t uplink = 0;
  int64_t downlink = 0;
  int64_t messages = 0;
  int64_t retransmits = 0;
  int64_t retransmit_bytes = 0;
};

CommSnapshot Snapshot(FatsTrainer* trainer) {
  CommSnapshot s;
  s.rounds = trainer->comm_stats().rounds();
  s.uplink = trainer->comm_stats().uplink_bytes();
  s.downlink = trainer->comm_stats().downlink_bytes();
  s.messages = trainer->comm_stats().messages();
  s.retransmits = trainer->comm_stats().retransmits();
  s.retransmit_bytes = trainer->comm_stats().retransmit_bytes();
  return s;
}

// Ground truth from a plain in-memory run (no durability layer at all):
// recovery must land on exactly this state.
struct Reference {
  Tensor trained;
  std::string trained_log_csv;
  CommSnapshot trained_comm;
  SampleRef target;  // a sample training actually used -> recomputation
  Tensor unlearned;
  UnlearningOutcome outcome;
};

// First sample with a recorded use, so unlearning it forces re-computation.
SampleRef PickUsedSample(const FatsTrainer& trainer) {
  for (int64_t client = 0; client < 5; ++client) {
    for (int64_t index = 0; index < 8; ++index) {
      if (trainer.store().EarliestSampleUse({client, index}) > 0) {
        return {client, index};
      }
    }
  }
  return {0, 0};
}

const Reference& GetReference() {
  static const Reference* kRef = [] {
    auto* ref = new Reference();
    Env env = MakeEnv();
    env.trainer->TrainUntil(kHalf);
    env.trainer->TrainUntil(kTotal);
    ref->trained = env.trainer->global_params();
    ref->trained_log_csv = env.trainer->log().ToCsv();
    ref->trained_comm = Snapshot(env.trainer.get());
    ref->target = PickUsedSample(*env.trainer);
    SampleUnlearner unlearner(env.trainer.get());
    Result<UnlearningOutcome> outcome =
        unlearner.Unlearn(ref->target, kTotal);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    ref->outcome = *outcome;
    ref->unlearned = env.trainer->global_params();
    return ref;
  }();
  return *kRef;
}

// The scenario every child executes: durable train to kHalf, rotate the
// checkpoint, train to kTotal. Returns a child exit code (0 = survived).
int RunChildScenario(const std::string& ckpt, const std::string& jrn,
                     const std::string& fault_spec,
                     const DurableOptions& options = {},
                     const std::string& spill_dir = "") {
  Env env = MakeEnv(fault_spec, spill_dir);
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get(), options);
  if (!session.ok()) return 90;
  env.trainer->TrainUntil(kHalf);
  if (!(*session)->Checkpoint().ok()) return 91;
  env.trainer->TrainUntil(kTotal);
  if (!(*session)->status().ok()) return 92;
  return 0;
}

// Forks `child`, reaps it, and returns its exit code (must exit, not
// signal).
template <typename Fn>
int ForkAndReap(Fn child) {
  const pid_t pid = fork();
  if (pid == 0) std::_Exit(child());
  EXPECT_GT(pid, 0) << "fork failed";
  int wstatus = 0;
  EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus)) << "child killed by signal";
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

// Recovers from whatever the crashed child left behind, finishes training,
// and requires bit-identical state plus bit-identical subsequent
// unlearning.
void ExpectRecoversExactly(const std::string& ckpt, const std::string& jrn,
                           const std::string& label,
                           const DurableOptions& options = {},
                           const std::string& spill_dir = "") {
  const Reference& ref = GetReference();
  Env env = MakeEnv("", spill_dir);
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get(), options);
  ASSERT_TRUE(session.ok()) << label << ": " << session.status().ToString();
  env.trainer->TrainUntil(kTotal);
  ASSERT_TRUE((*session)->status().ok())
      << label << ": " << (*session)->status().ToString();

  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(ref.trained))
      << label << ": recovered model differs from uninterrupted run";
  EXPECT_EQ(env.trainer->trained_through(), kTotal) << label;
  EXPECT_EQ(env.trainer->log().ToCsv(), ref.trained_log_csv) << label;
  const CommSnapshot comm = Snapshot(env.trainer.get());
  EXPECT_EQ(comm.rounds, ref.trained_comm.rounds) << label;
  EXPECT_EQ(comm.uplink, ref.trained_comm.uplink) << label;
  EXPECT_EQ(comm.downlink, ref.trained_comm.downlink) << label;
  EXPECT_EQ(comm.messages, ref.trained_comm.messages) << label;
  EXPECT_EQ(comm.retransmits, ref.trained_comm.retransmits) << label;
  EXPECT_EQ(comm.retransmit_bytes, ref.trained_comm.retransmit_bytes)
      << label;

  SampleUnlearner unlearner(env.trainer.get());
  Result<UnlearningOutcome> outcome = unlearner.Unlearn(ref.target, kTotal);
  ASSERT_TRUE(outcome.ok()) << label << ": " << outcome.status().ToString();
  EXPECT_EQ(outcome->recomputed, ref.outcome.recomputed) << label;
  EXPECT_EQ(outcome->restart_iteration, ref.outcome.restart_iteration)
      << label;
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(ref.unlearned))
      << label << ": unlearning after recovery differs";
}

TEST(CrashMatrixTest, KillAtEveryFailpointRecoversBitExactly) {
  // Enumerate the failpoints by crossing them once in-process; this durable
  // run doubles as the sanity check that the durability layer is invisible
  // to training.
  {
    RemoveDurableFiles(TempPath("cm_reg.ckpt"), TempPath("cm_reg.jrn"));
    Env env = MakeEnv();
    Result<std::unique_ptr<DurableTrainingSession>> session =
        DurableTrainingSession::Open(TempPath("cm_reg.ckpt"),
                                     TempPath("cm_reg.jrn"),
                                     env.trainer.get());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    env.trainer->TrainUntil(kHalf);
    ASSERT_TRUE((*session)->Checkpoint().ok());
    env.trainer->TrainUntil(kTotal);
    ASSERT_TRUE(
        env.trainer->global_params().BitwiseEquals(GetReference().trained))
        << "durable run diverged from plain run with no faults armed";
  }

  const std::vector<std::string> sites = failpoint::RegisteredSites();
  ASSERT_GE(sites.size(), 10u) << "expected the scenario to cross every "
                                  "trainer/checkpoint/journal/transport "
                                  "failpoint";
  for (const char* expected :
       {"trainer.iter.commit", "checkpoint.rename", "journal.append",
        "transport.send", "transport.recv", "transport.corrupt_frame"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << expected << " never registered";
  }

  int scenario = 0;
  for (const std::string& site : sites) {
    for (int hit : {1, 2}) {
      const std::string label =
          site + ":" + std::to_string(hit) + ":crash";
      const std::string tag = "cm_" + std::to_string(scenario++);
      const std::string ckpt = TempPath(tag + ".ckpt");
      const std::string jrn = TempPath(tag + ".jrn");
      RemoveDurableFiles(ckpt, jrn);
      const int code = ForkAndReap(
          [&] { return RunChildScenario(ckpt, jrn, label); });
      // 0 means the site was not hit `hit` times in this scenario; the
      // journal is then simply complete, and recovery must still be exact.
      ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
          << label << " exited with " << code;
      ExpectRecoversExactly(ckpt, jrn, label);
    }
  }
}

TEST(CrashMatrixTest, TornJournalWritesRecoverBitExactly) {
  int scenario = 0;
  bool any_torn = false;
  for (int hit : {1, 5, 23, 52}) {
    const std::string label =
        "journal.append:" + std::to_string(hit) + ":torn-write";
    const std::string tag = "cm_torn_" + std::to_string(scenario++);
    const std::string ckpt = TempPath(tag + ".ckpt");
    const std::string jrn = TempPath(tag + ".jrn");
    RemoveDurableFiles(ckpt, jrn);
    const int code =
        ForkAndReap([&] { return RunChildScenario(ckpt, jrn, label); });
    ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
        << label << " exited with " << code;
    any_torn |= code == failpoint::kCrashExitCode;
    ExpectRecoversExactly(ckpt, jrn, label);
  }
  EXPECT_TRUE(any_torn) << "no torn write was actually injected";
}

TEST(CrashMatrixTest, AsyncJournalCrashWindowsRecoverBitExactly) {
  // Async-journal rows: the same durable schedule with appends riding the
  // double-buffered writer thread. The two new sites bracket the async
  // commit protocol — `journal.swap_buffer` kills after records landed in
  // the active buffer but before the handoff (the whole batch is lost),
  // `journal.async_flush` kills after the handoff but before the write (the
  // swapped-out batch is lost). Either way the file holds a clean committed
  // prefix and recovery must be bit-exact. Recovery itself also runs async.
  DurableOptions async_options;
  async_options.async_io = true;
  int scenario = 0;
  bool any_crash = false;
  for (const char* site : {"journal.swap_buffer", "journal.async_flush"}) {
    for (int hit : {1, 2}) {
      const std::string label =
          std::string(site) + ":" + std::to_string(hit) + ":crash";
      const std::string tag = "cm_async_" + std::to_string(scenario++);
      const std::string ckpt = TempPath(tag + ".ckpt");
      const std::string jrn = TempPath(tag + ".jrn");
      RemoveDurableFiles(ckpt, jrn);
      const int code = ForkAndReap(
          [&] { return RunChildScenario(ckpt, jrn, label, async_options); });
      ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
          << label << " exited with " << code;
      any_crash |= code == failpoint::kCrashExitCode;
      ExpectRecoversExactly(ckpt, jrn, label, async_options);
    }
  }
  EXPECT_TRUE(any_crash) << "no async crash window was actually exercised";

  // Torn batch flush: half the swapped-out batch reaches the file, so the
  // cut lands mid-frame and the CRC discards the torn record and the rest
  // of the batch.
  bool any_torn = false;
  for (int hit : {1, 2}) {
    const std::string label =
        "journal.async_flush:" + std::to_string(hit) + ":torn-write";
    const std::string tag = "cm_async_torn_" + std::to_string(scenario++);
    const std::string ckpt = TempPath(tag + ".ckpt");
    const std::string jrn = TempPath(tag + ".jrn");
    RemoveDurableFiles(ckpt, jrn);
    const int code = ForkAndReap(
        [&] { return RunChildScenario(ckpt, jrn, label, async_options); });
    ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
        << label << " exited with " << code;
    any_torn |= code == failpoint::kCrashExitCode;
    ExpectRecoversExactly(ckpt, jrn, label, async_options);
  }
  EXPECT_TRUE(any_torn) << "no torn batch flush was actually injected";
}

TEST(CrashMatrixTest, SpillTierCrashWindowsRecoverBitExactly) {
  // Spill-enabled rows: the same durable schedule, but with the state
  // store's history tiered into segment files and a decoded cache small
  // enough to evict mid-run. Killing inside a segment write (before or
  // after frames reached the file) or at a decoded-block evict must leave
  // nothing the journal replay cannot reconstruct: segments are a
  // process-ephemeral cache tier, so recovery reopens the spill dir,
  // sweeps the crashed process's orphaned `seg-*` files, and must land
  // bit-identical to the resident reference — subsequent unlearning too.
  int scenario = 0;
  bool any_crash = false;
  for (const char* site : {"state.spill.write", "state.block.evict"}) {
    for (int hit : {1, 2}) {
      const std::string label =
          std::string(site) + ":" + std::to_string(hit) + ":crash";
      const std::string tag = "cm_spill_" + std::to_string(scenario++);
      const std::string ckpt = TempPath(tag + ".ckpt");
      const std::string jrn = TempPath(tag + ".jrn");
      const std::string spill = TempPath(tag + ".segs");
      RemoveDurableFiles(ckpt, jrn);
      const int code = ForkAndReap(
          [&] { return RunChildScenario(ckpt, jrn, label, {}, spill); });
      // 0 means this site was not hit `hit` times (evicts depend on read
      // traffic); the journal is then complete and recovery is still exact.
      ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
          << label << " exited with " << code;
      any_crash |= code == failpoint::kCrashExitCode;
      ExpectRecoversExactly(ckpt, jrn, label, {}, spill);
    }
  }
  EXPECT_TRUE(any_crash) << "no spill-tier crash window was exercised";
}

TEST(CrashMatrixTest, CrashMidUnlearningRollsBackAtomically) {
  const Reference& ref = GetReference();
  // The fixed target must trigger re-computation for this test to bite.
  ASSERT_TRUE(ref.outcome.recomputed);

  // Training commits `kTotal` iterations, so hit kTotal+1 lands on the
  // first committed iteration of the unlearning re-computation — inside
  // the open kOpBegin bracket.
  const std::string spec =
      "trainer.iter.commit:" + std::to_string(kTotal + 1) + ":crash";
  const std::string ckpt = TempPath("cm_unlearn.ckpt");
  const std::string jrn = TempPath("cm_unlearn.jrn");
  RemoveDurableFiles(ckpt, jrn);
  const SampleRef target = ref.target;
  const int code = ForkAndReap([&] {
    Env env = MakeEnv(spec);
    Result<std::unique_ptr<DurableTrainingSession>> session =
        DurableTrainingSession::Open(ckpt, jrn, env.trainer.get());
    if (!session.ok()) return 90;
    env.trainer->TrainUntil(kTotal);
    SampleUnlearner unlearner(env.trainer.get());
    Result<UnlearningOutcome> outcome = unlearner.Unlearn(target, kTotal);
    return outcome.ok() ? 0 : 93;
  });
  ASSERT_EQ(code, failpoint::kCrashExitCode)
      << "crash was expected inside the re-computation";

  // The half-done operation must roll back to the pre-unlearning state
  // (matching the not-yet-committed data-side deletion), and re-running the
  // request must then match the uninterrupted unlearning bit for bit.
  Env env = MakeEnv();
  Result<std::unique_ptr<DurableTrainingSession>> session =
      DurableTrainingSession::Open(ckpt, jrn, env.trainer.get());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(env.trainer->trained_through(), kTotal);
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(ref.trained))
      << "open unlearning bracket was not rolled back";

  SampleUnlearner unlearner(env.trainer.get());
  Result<UnlearningOutcome> outcome = unlearner.Unlearn(ref.target, kTotal);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(env.trainer->global_params().BitwiseEquals(ref.unlearned));
}

}  // namespace
}  // namespace fats
