#include "core/fats_trainer.h"

#include <gtest/gtest.h>

#include "test_workloads.h"

namespace fats {
namespace {

TEST(FatsTrainerTest, TrainImprovesAccuracy) {
  FederatedDataset data = TinyImageData(8, 12);
  FatsConfig config = TinyFatsConfig(8, 12, /*rounds=*/10, /*e=*/3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  const double before = trainer.EvaluateTestAccuracy();
  trainer.Train();
  EXPECT_GT(trainer.EvaluateTestAccuracy(), before);
  EXPECT_GT(trainer.EvaluateTestAccuracy(), 0.8);
}

TEST(FatsTrainerTest, LogHasOneRecordPerRound) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 5, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  ASSERT_EQ(trainer.log().records().size(), 5u);
  for (int64_t r = 0; r < 5; ++r) {
    EXPECT_EQ(trainer.log().records()[static_cast<size_t>(r)].round, r + 1);
  }
}

TEST(FatsTrainerTest, DeterministicReplay) {
  FederatedDataset data_a = TinyImageData(6, 10);
  FederatedDataset data_b = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10);
  FatsTrainer a(TinyModelSpec(), config, &data_a);
  FatsTrainer b(TinyModelSpec(), config, &data_b);
  a.Train();
  b.Train();
  EXPECT_TRUE(a.global_params().BitwiseEquals(b.global_params()));
  // Entire state matches: selections and minibatches per round.
  for (int64_t r = 1; r <= config.rounds_r; ++r) {
    ASSERT_NE(a.store().GetClientSelection(r), nullptr);
    EXPECT_EQ(*a.store().GetClientSelection(r),
              *b.store().GetClientSelection(r));
  }
}

TEST(FatsTrainerTest, StoreRecordsAllAlgorithmicState) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  const StateStore& store = trainer.store();
  // Initial and per-round global models.
  EXPECT_NE(store.GetGlobalModel(0), nullptr);
  for (int64_t r = 1; r <= 4; ++r) {
    EXPECT_NE(store.GetGlobalModel(r), nullptr) << "round " << r;
    const std::vector<int64_t>* selection = store.GetClientSelection(r);
    ASSERT_NE(selection, nullptr);
    EXPECT_EQ(static_cast<int64_t>(selection->size()), trainer.K());
    // Every selected client has minibatch + local model records at every
    // iteration of the round.
    for (int64_t client : *selection) {
      for (int64_t i = (r - 1) * 3 + 1; i <= r * 3; ++i) {
        EXPECT_NE(store.GetMinibatch(i, client), nullptr);
        EXPECT_NE(store.GetLocalModel(i, client), nullptr);
      }
    }
  }
}

TEST(FatsTrainerTest, KAndBMatchConfigDerivation) {
  FederatedDataset data = TinyImageData(8, 12);
  FatsConfig config = TinyFatsConfig(8, 12, 4, 3, 0.5, 0.75);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  EXPECT_EQ(trainer.K(), config.DeriveK());
  EXPECT_EQ(trainer.b(), config.DeriveB());
}

TEST(FatsTrainerTest, MinibatchSizeIsB) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 3, 2);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  const std::vector<int64_t>* selection =
      trainer.store().GetClientSelection(1);
  ASSERT_NE(selection, nullptr);
  const std::vector<int64_t>* batch =
      trainer.store().GetMinibatch(1, (*selection)[0]);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(static_cast<int64_t>(batch->size()), trainer.b());
}

TEST(FatsTrainerTest, CommunicationAccountsKPerRound) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  const int64_t d = trainer.model()->NumParameters();
  EXPECT_EQ(trainer.comm_stats().rounds(), 4);
  EXPECT_EQ(trainer.comm_stats().total_bytes(),
            2 * 4 * trainer.K() * d * 4);
}

TEST(FatsTrainerTest, MidRoundRestartReproducesSuffixBitExactly) {
  // Re-running from any iteration with unchanged generation and store must
  // reproduce the original trajectory exactly (the replay property that
  // makes the unlearning coupling work).
  FederatedDataset data_a = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer a(TinyModelSpec(), config, &data_a);
  a.Train();
  const Tensor final_a = a.global_params();

  // Second trainer: train fully, then truncate nothing and re-run from a
  // mid-round iteration t0=5 (round 2, second local iteration).
  FederatedDataset data_b = TinyImageData(6, 10);
  FatsTrainer b(TinyModelSpec(), config, &data_b);
  b.Train();
  b.Run(5);
  EXPECT_TRUE(b.global_params().BitwiseEquals(final_a));
}

TEST(FatsTrainerTest, RoundStartRestartReproducesSuffix) {
  FederatedDataset data_a = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer a(TinyModelSpec(), config, &data_a);
  a.Train();
  const Tensor final_a = a.global_params();
  a.Run(7);  // round 3 start
  EXPECT_TRUE(a.global_params().BitwiseEquals(final_a));
}

TEST(FatsTrainerTest, GenerationBumpChangesSuffixOnly) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  const Tensor round2 = *trainer.store().GetGlobalModel(2);
  const Tensor final_model = trainer.global_params();
  trainer.store().TruncateFromIteration(7, 3);  // drop rounds 3..4
  trainer.BumpGeneration();
  trainer.Run(7);
  // Prefix unchanged, suffix re-randomized.
  EXPECT_TRUE(trainer.store().GetGlobalModel(2)->BitwiseEquals(round2));
  EXPECT_FALSE(trainer.global_params().BitwiseEquals(final_model));
}

TEST(FatsTrainerTest, LocalIterationCounterTracksWork) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10, 4, 3);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  trainer.Train();
  // At most K distinct clients per iteration, T iterations.
  EXPECT_LE(trainer.local_iterations_executed(),
            trainer.K() * config.total_iters_t());
  EXPECT_GE(trainer.local_iterations_executed(), config.total_iters_t());
}

TEST(FatsTrainerDeathTest, MismatchedDatasetAborts) {
  FederatedDataset data = TinyImageData(4, 10);
  FatsConfig config = TinyFatsConfig(6, 10);  // M=6 but data has 4
  EXPECT_DEATH(FatsTrainer(TinyModelSpec(), config, &data),
               "does not match config");
}

TEST(FatsTrainerDeathTest, RunWithoutInitialModelAborts) {
  FederatedDataset data = TinyImageData(6, 10);
  FatsConfig config = TinyFatsConfig(6, 10);
  FatsTrainer trainer(TinyModelSpec(), config, &data);
  EXPECT_DEATH(trainer.Run(1), "missing global model");
}

}  // namespace
}  // namespace fats
