// History codec: the bit-specified index-list wire format (src/state/
// history_codec.h). Replay exactness rides on two properties checked here:
// every list round-trips losslessly, and encoding is deterministic (same
// list -> same bytes, always), so a block re-encoded after a reopen is
// byte-identical to its first encoding.

#include "state/history_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "rng/rng_stream.h"

namespace fats::state {
namespace {

void ExpectRoundTrip(const std::vector<int64_t>& values) {
  const std::string bytes = EncodeIndexList(values);
  std::vector<int64_t> decoded;
  const Status s = DecodeIndexList(bytes, &decoded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(decoded, values);
  // Deterministic: a second encoding is byte-identical.
  EXPECT_EQ(EncodeIndexList(values), bytes);
}

TEST(HistoryCodecTest, RoundTripsRepresentativeShapes) {
  ExpectRoundTrip({});
  ExpectRoundTrip({0});
  ExpectRoundTrip({42});
  ExpectRoundTrip({7, 7, 7, 7});                  // constant (bitpack w=0)
  ExpectRoundTrip({3, 1, 4, 1, 5, 9, 2, 6});      // small mixed (bitpack)
  ExpectRoundTrip({10, 11, 12, 13, 20, 21});      // sorted (deltapack)
  ExpectRoundTrip({5, 9, 13, 40, 41, 42, 1000});  // strictly asc. (bitmap)
  ExpectRoundTrip({1000000, 1000001, 1000002});   // large base, tiny span
}

TEST(HistoryCodecTest, RoundTripsNegativeAndExtremeValues) {
  ExpectRoundTrip({-1});
  ExpectRoundTrip({-5, -4, -3, 0, 3, 4, 5});
  ExpectRoundTrip({std::numeric_limits<int64_t>::min()});
  ExpectRoundTrip({std::numeric_limits<int64_t>::max()});
  ExpectRoundTrip({std::numeric_limits<int64_t>::min(),
                   std::numeric_limits<int64_t>::max()});
  ExpectRoundTrip({std::numeric_limits<int64_t>::min(), -1, 0, 1,
                   std::numeric_limits<int64_t>::max()});
}

TEST(HistoryCodecTest, RoundTripsRandomLists) {
  StreamId id;
  id.purpose = RngPurpose::kPartition;
  RngStream rng(1234, id);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t n = static_cast<int64_t>(rng.UniformInt(65));
    std::vector<int64_t> values;
    values.reserve(static_cast<size_t>(n));
    // Mix of regimes: dense small values (bitmap/bitpack territory),
    // sorted runs (deltapack), and full-range values (raw fallback).
    const int64_t regime = static_cast<int64_t>(rng.UniformInt(4));
    for (int64_t i = 0; i < n; ++i) {
      switch (regime) {
        case 0:
          values.push_back(static_cast<int64_t>(rng.UniformInt(128)));
          break;
        case 1:
          values.push_back((values.empty() ? 0 : values.back()) +
                           static_cast<int64_t>(rng.UniformInt(10)));
          break;
        case 2:
          values.push_back(static_cast<int64_t>(rng.NextUInt64()));
          break;
        default:
          values.push_back(static_cast<int64_t>(rng.UniformInt(2001)) - 1000);
          break;
      }
    }
    ExpectRoundTrip(values);
  }
}

TEST(HistoryCodecTest, CompressesSortedMinibatchShapes) {
  // The workload the codec exists for: a sorted sample-index list drawn
  // from [0, N). Must beat the 8-bytes-per-value raw layout.
  std::vector<int64_t> batch;
  for (int64_t i = 0; i < 64; ++i) batch.push_back(i * 3 + (i % 2));
  const std::string bytes = EncodeIndexList(batch);
  EXPECT_LT(bytes.size(), batch.size() * 8 / 4)
      << "sorted index list should compress at least 4x over raw64";
  std::vector<int64_t> decoded;
  ASSERT_TRUE(DecodeIndexList(bytes, &decoded).ok());
  EXPECT_EQ(decoded, batch);
}

TEST(HistoryCodecTest, RejectsTrailingBytes) {
  std::string bytes = EncodeIndexList({1, 2, 3});
  bytes.push_back('\0');
  std::vector<int64_t> decoded;
  EXPECT_FALSE(DecodeIndexList(bytes, &decoded).ok());
}

TEST(HistoryCodecTest, RejectsTruncationAtEveryPrefix) {
  const std::string bytes = EncodeIndexList({5, 9, 13, 40, 41, 42, 1000});
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<int64_t> decoded;
    EXPECT_FALSE(
        DecodeIndexList(std::string_view(bytes.data(), cut), &decoded).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(HistoryCodecTest, RejectsUnknownTagAndCorruptCounts) {
  std::vector<int64_t> decoded;
  // Unknown codec tag.
  EXPECT_FALSE(DecodeIndexList(std::string("\x09", 1), &decoded).ok());
  // Raw64 claiming more values than the payload holds.
  std::string raw;
  raw.push_back('\0');          // tag 0 = raw64
  AppendVarint(1000000, &raw);  // count far beyond the remaining bytes
  EXPECT_FALSE(DecodeIndexList(raw, &decoded).ok());
  // Flip every bit of a valid encoding: decode must return a Status (ok or
  // not), never crash or hang. Integrity detection is the segment CRC's
  // job, one layer up — the codec only promises structural bounds checks.
  const std::vector<int64_t> original = {10, 11, 12, 13, 20, 21};
  const std::string good = EncodeIndexList(original);
  for (size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      std::vector<int64_t> out;
      (void)DecodeIndexList(bad, &out);
    }
  }
}

TEST(HistoryCodecTest, ParseLeavesPositionAfterPayload) {
  // Append* output is self-delimiting inside a larger buffer.
  std::string buffer;
  AppendIndexList({1, 2, 3}, &buffer);
  const size_t first_end = buffer.size();
  AppendIndexList({100, 50, -7}, &buffer);
  size_t pos = 0;
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  ASSERT_TRUE(ParseIndexList(buffer, &pos, &a).ok());
  EXPECT_EQ(pos, first_end);
  ASSERT_TRUE(ParseIndexList(buffer, &pos, &b).ok());
  EXPECT_EQ(pos, buffer.size());
  EXPECT_EQ(a, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(b, (std::vector<int64_t>{100, 50, -7}));
}

TEST(HistoryCodecTest, VarintRoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{16383}, uint64_t{16384},
                     std::numeric_limits<uint64_t>::max()}) {
    std::string bytes;
    AppendVarint(v, &bytes);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(ParseVarint(bytes, &pos, &out).ok());
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, bytes.size());
  }
}

}  // namespace
}  // namespace fats::state
