// Allocation-free training-step tests (DESIGN.md §7.2).
//
// Replaces global operator new/delete with counting versions and asserts
// that, after a short warm-up, Model::ComputeLossAndGradients + SgdStep
// perform ZERO heap allocations: every tensor a step touches lives in the
// Model's Workspace arena (or a layer-owned cache) and is reused in place.
// The arena's grow_events() counter must likewise be flat at steady state —
// slots neither appear nor regrow once every shape has been seen.
//
// The new/delete overrides are per-binary (this TU only), so no other test
// is affected; counting is gated on a flag so gtest's own allocations during
// setup and assertion reporting are ignored.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "nn/model_zoo.h"
#include "nn/weight_pack.h"
#include "nn/workspace.h"
#include "tensor/tensor.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<int64_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fats {
namespace {

struct StepStats {
  int64_t allocs = 0;
  int64_t grow_events = 0;
};

// Runs `steps` train steps with allocation counting on and returns the heap
// allocation count plus the arena growth delta.
StepStats MeasureSteps(Model* model, const Tensor& x,
                       const std::vector<int64_t>& y, int steps) {
  const int64_t grow_before = model->workspace()->grow_events();
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int s = 0; s < steps; ++s) {
    model->ComputeLossAndGradients(x, y);
    model->SgdStep(0.05);
  }
  g_counting.store(false, std::memory_order_relaxed);
  StepStats stats;
  stats.allocs = g_allocs.load(std::memory_order_relaxed);
  stats.grow_events = model->workspace()->grow_events() - grow_before;
  return stats;
}

void ExpectAllocationFree(const ModelSpec& spec, const Tensor& x,
                          const std::vector<int64_t>& y) {
  Model model(spec, 7);
  // Warm-up: first steps create arena slots, size layer caches, and grow the
  // thread-local GEMM pack buffers.
  for (int s = 0; s < 3; ++s) {
    model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.05);
  }
  EXPECT_GT(model.workspace()->slot_count(), 0);
  const StepStats stats = MeasureSteps(&model, x, y, 5);
  EXPECT_EQ(stats.allocs, 0)
      << spec.ToString() << ": a steady-state training step heap-allocated";
  EXPECT_EQ(stats.grow_events, 0)
      << spec.ToString() << ": workspace slots grew after warm-up";
}

TEST(WorkspaceAllocTest, SmallCnnStepIsAllocationFree) {
  ModelSpec spec;
  spec.kind = ModelKind::kSmallCnn;
  spec.image_channels = 1;
  spec.image_height = 8;
  spec.image_width = 8;
  spec.conv_channels = 6;
  spec.num_classes = 10;
  Tensor x({4, 64});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = 0.01f * static_cast<float>(i % 17);
  }
  ExpectAllocationFree(spec, x, {0, 3, 7, 9});
}

TEST(WorkspaceAllocTest, CharLstmStepIsAllocationFree) {
  ModelSpec spec;
  spec.kind = ModelKind::kCharLstm;
  spec.vocab_size = 32;
  spec.embed_dim = 8;
  spec.lstm_hidden = 16;
  spec.seq_len = 12;
  spec.num_classes = 32;
  Tensor x({4, 12});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 32);
  }
  ExpectAllocationFree(spec, x, {1, 5, 9, 13});
}

TEST(WorkspaceAllocTest, StackedLstmStepIsAllocationFree) {
  ModelSpec spec;
  spec.kind = ModelKind::kCharLstm;
  spec.vocab_size = 32;
  spec.embed_dim = 8;
  spec.lstm_hidden = 16;
  spec.seq_len = 10;
  spec.lstm_layers = 2;  // the paper's Shakespeare depth
  spec.num_classes = 32;
  Tensor x({3, 10});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>((i * 7) % 32);
  }
  ExpectAllocationFree(spec, x, {2, 4, 6});
}

TEST(WorkspaceAllocTest, MlpStepIsAllocationFree) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 64;
  spec.hidden_dims = {32, 16};
  spec.num_classes = 10;
  Tensor x({8, 64});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = 0.01f * static_cast<float>(i % 19);
  }
  std::vector<int64_t> y(8);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 10);
  ExpectAllocationFree(spec, x, y);
}

// The fused cross-client round cycle (DESIGN.md §7.6): pack the broadcast
// weights once, bind the pack to a client replica, run its local step
// against the shared panels, unbind. After warm-up the whole cycle must be
// allocation-free — the pack's panel buffers, like arena slots, are sized
// once and refilled in place every round.
TEST(WorkspaceAllocTest, FusedSharedPackRoundIsAllocationFree) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 64;
  spec.hidden_dims = {32, 16};
  spec.num_classes = 10;
  Model donor(spec, 7);
  Model client(spec, 8);
  Tensor x({8, 64});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = 0.01f * static_cast<float>(i % 19);
  }
  std::vector<int64_t> y(8);
  for (size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int64_t>(i % 10);

  WeightPack pack;
  const Tensor params = donor.GetParameters();
  auto run_round = [&] {
    donor.SetParameters(params);
    donor.PackSharedWeights(&pack);
    client.BindSharedWeightPack(&pack);
    client.SetParameters(params);
    client.ComputeLossAndGradients(x, y);
    client.SgdStep(0.05);
    client.BindSharedWeightPack(nullptr);
  };
  for (int r = 0; r < 3; ++r) run_round();  // warm-up sizes pack + arena
  ASSERT_FALSE(pack.entries.empty());

  const int64_t grow_before =
      donor.workspace()->grow_events() + client.workspace()->grow_events();
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int r = 0; r < 5; ++r) run_round();
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0)
      << "a steady-state pack-bind-step round heap-allocated";
  EXPECT_EQ(donor.workspace()->grow_events() +
                client.workspace()->grow_events(),
            grow_before)
      << "workspace slots grew during warm fused rounds";
}

// A batch-size change is allowed to grow slots once; returning to the old
// batch must not allocate again (ResizeTo shrinks logically but keeps
// capacity).
TEST(WorkspaceAllocTest, BatchShrinkDoesNotReallocate) {
  ModelSpec spec;
  spec.kind = ModelKind::kMlp;
  spec.input_dim = 32;
  spec.hidden_dims = {16};
  spec.num_classes = 4;
  Model model(spec, 11);
  Tensor big({8, 32});
  big.Fill(0.1f);
  std::vector<int64_t> ybig(8, 1);
  Tensor small({2, 32});
  small.Fill(0.2f);
  std::vector<int64_t> ysmall(2, 2);
  for (int s = 0; s < 2; ++s) {
    model.ComputeLossAndGradients(big, ybig);
    model.SgdStep(0.05);
    model.ComputeLossAndGradients(small, ysmall);
    model.SgdStep(0.05);
  }
  const StepStats stats = MeasureSteps(&model, small, ysmall, 3);
  EXPECT_EQ(stats.allocs, 0);
  EXPECT_EQ(stats.grow_events, 0);
  // The larger batch is also still warm.
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  model.ComputeLossAndGradients(big, ybig);
  model.SgdStep(0.05);
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0);
}

}  // namespace
}  // namespace fats
