// End-to-end tests for tools/fats_cli, driven as a subprocess.
//
// The binary path is injected by CMake via FATS_CLI_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace fats {
namespace {

#ifndef FATS_CLI_PATH
#define FATS_CLI_PATH "build/tools/fats_cli"
#endif

// Per-test-case paths: ctest runs discovered cases as separate processes,
// possibly concurrently, so shared fixed paths race.
std::string Checkpoint() {
  return testing::TempDir() + "/cli_test_" +
         testing::UnitTest::GetInstance()->current_test_info()->name() +
         ".ckpt";
}

/// Runs the CLI with `args`, returns the exit code and captures stdout+err.
int RunCli(const std::string& args, std::string* output) {
  const std::string out_path =
      testing::TempDir() + "/cli_test_" +
      testing::UnitTest::GetInstance()->current_test_info()->name() +
      "_out.txt";
  const std::string command =
      std::string(FATS_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  const int raw = std::system(command.c_str());
  std::ifstream in(out_path);
  output->assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  return WEXITSTATUS(raw);
}

std::string CommonFlags() {
  return "--profile=mnist --rounds=6 --checkpoint=" + Checkpoint();
}

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    std::remove(Checkpoint().c_str());
    std::remove((Checkpoint() + ".deletions").c_str());
  }
};

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  std::string output;
  EXPECT_EQ(RunCli("", &output), 2);
  EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string output;
  EXPECT_EQ(RunCli("frobnicate", &output), 2);
  EXPECT_NE(output.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagFails) {
  std::string output;
  EXPECT_EQ(RunCli("train --bogus=1", &output), 2);
  EXPECT_NE(output.find("unknown flag"), std::string::npos);
}

TEST_F(CliTest, FullLifecycle) {
  std::string output;
  // Train halfway and checkpoint.
  ASSERT_EQ(RunCli("train " + CommonFlags() + " --until_iter=15", &output),
            0)
      << output;
  EXPECT_NE(output.find("iteration 15 / 30"), std::string::npos) << output;
  EXPECT_NE(output.find("checkpoint written"), std::string::npos);

  // Unlearn a sample against the checkpoint.
  ASSERT_EQ(RunCli("unlearn-sample " + CommonFlags() +
                       " --client=3 --index=7",
                   &output),
            0)
      << output;
  EXPECT_NE(output.find("unlearned sample"), std::string::npos);

  // Unlearn a client.
  ASSERT_EQ(RunCli("unlearn-client " + CommonFlags() + " --client=9",
                   &output),
            0)
      << output;
  EXPECT_NE(output.find("unlearned client"), std::string::npos);

  // Resume to completion.
  ASSERT_EQ(RunCli("resume " + CommonFlags(), &output), 0) << output;
  EXPECT_NE(output.find("iteration 30 / 30"), std::string::npos) << output;

  // Inspect.
  ASSERT_EQ(RunCli("info " + CommonFlags(), &output), 0) << output;
  EXPECT_NE(output.find("lambda^"), std::string::npos);
  EXPECT_NE(output.find("active=59"), std::string::npos)
      << "deletion journal must keep the data view consistent: " << output;
}

TEST_F(CliTest, UnlearnWithoutCheckpointFails) {
  std::string output;
  EXPECT_EQ(RunCli("unlearn-sample " + CommonFlags() +
                       " --client=0 --index=0",
                   &output),
            1);
  EXPECT_NE(output.find("error:"), std::string::npos);
}

TEST_F(CliTest, UnlearnRequiresTargetFlags) {
  std::string output;
  ASSERT_EQ(RunCli("train " + CommonFlags() + " --until_iter=10", &output),
            0);
  EXPECT_EQ(RunCli("unlearn-sample " + CommonFlags(), &output), 1);
  EXPECT_NE(output.find("--client is required"), std::string::npos);
  EXPECT_EQ(RunCli("unlearn-sample " + CommonFlags() + " --client=1",
                   &output),
            1);
  EXPECT_NE(output.find("--index is required"), std::string::npos);
}

TEST_F(CliTest, ThreadsFlagProducesBitIdenticalCheckpoint) {
  auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string serial_ckpt = Checkpoint();
  const std::string parallel_ckpt = Checkpoint() + ".par";
  std::remove(parallel_ckpt.c_str());
  std::string output;
  ASSERT_EQ(RunCli("train --profile=mnist --rounds=4 --threads=1 "
                   "--checkpoint=" + serial_ckpt, &output), 0)
      << output;
  ASSERT_EQ(RunCli("train --profile=mnist --rounds=4 --threads=4 "
                   "--checkpoint=" + parallel_ckpt, &output), 0)
      << output;
  const std::string serial_blob = read_file(serial_ckpt);
  ASSERT_FALSE(serial_blob.empty());
  EXPECT_EQ(serial_blob, read_file(parallel_ckpt))
      << "parallel training must serialize the exact same state as serial";
  std::remove(parallel_ckpt.c_str());
}

/// Extracts the 8-hex-digit model fingerprint from a status block.
std::string ModelHash(const std::string& output) {
  const size_t pos = output.find("crc32=");
  if (pos == std::string::npos) return "";
  return output.substr(pos + 6, 8);
}

TEST_F(CliTest, FaultSpecErrorActionSurfacesAsFailure) {
  std::string output;
  EXPECT_EQ(RunCli("train " + CommonFlags() +
                       " --fault_spec=checkpoint.write.body:1:error",
                   &output),
            1)
      << output;
  EXPECT_NE(output.find("error:"), std::string::npos) << output;
  EXPECT_NE(output.find("failpoint"), std::string::npos) << output;
}

TEST_F(CliTest, MalformedFaultSpecRejected) {
  std::string output;
  EXPECT_EQ(RunCli("train " + CommonFlags() +
                       " --fault_spec=not-a-valid-spec",
                   &output),
            1)
      << output;
}

TEST_F(CliTest, CrashFaultRecoversBitExactlyViaJournal) {
  const std::string ckpt = Checkpoint();
  const std::string jrn = ckpt + ".jrn";
  const std::string ref_ckpt = ckpt + ".ref";
  const std::string ref_jrn = ref_ckpt + ".jrn";
  for (const std::string& p :
       {jrn, jrn + ".tmp", ref_ckpt, ref_ckpt + ".tmp", ref_jrn,
        ref_jrn + ".tmp", ref_ckpt + ".deletions"}) {
    std::remove(p.c_str());
  }

  // Uninterrupted journaled reference run.
  std::string ref_out;
  ASSERT_EQ(RunCli("train --profile=mnist --rounds=6 --checkpoint=" +
                       ref_ckpt + " --journal=" + ref_jrn,
                   &ref_out),
            0)
      << ref_out;
  const std::string ref_hash = ModelHash(ref_out);
  ASSERT_EQ(ref_hash.size(), 8u) << ref_out;

  // Same run killed mid-training by an armed crash failpoint: the process
  // must die with the dedicated crash exit code, not a clean failure.
  std::string output;
  EXPECT_EQ(RunCli("train " + CommonFlags() + " --journal=" + jrn +
                       " --fault_spec=trainer.iter.commit:7:crash",
                   &output),
            86)
      << output;

  // Re-running with the journal recovers and finishes; the final model is
  // bit-identical to the uninterrupted run.
  ASSERT_EQ(RunCli("train " + CommonFlags() + " --journal=" + jrn, &output),
            0)
      << output;
  EXPECT_EQ(ModelHash(output), ref_hash)
      << "recovered model must match the uninterrupted run: " << output;
}

TEST_F(CliTest, DoubleDeletionRejected) {
  std::string output;
  ASSERT_EQ(RunCli("train " + CommonFlags(), &output), 0);
  ASSERT_EQ(RunCli("unlearn-client " + CommonFlags() + " --client=2",
                   &output),
            0);
  EXPECT_EQ(RunCli("unlearn-client " + CommonFlags() + " --client=2",
                   &output),
            1)
      << output;
  EXPECT_NE(output.find("already removed"), std::string::npos) << output;
}

}  // namespace
}  // namespace fats
