// Tests for the deeper model-zoo architectures: 2-block CNN and 2-layer
// LSTM (the paper's Shakespeare model), plus gradient checks for the
// sequence-output LSTM mode they rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/lstm.h"
#include "nn/model_zoo.h"
#include "rng/rng_stream.h"

namespace fats {
namespace {

constexpr float kEps = 1e-2f;

Tensor RandomTensor(std::vector<int64_t> shape, RngStream* rng,
                    double scale = 0.5) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(scale * rng->NextGaussian());
  }
  return t;
}

double Score(Module* layer, const Tensor& x, const Tensor& coeffs) {
  Tensor y = layer->Forward(x);
  double s = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) {
    s += static_cast<double>(y[i]) * coeffs[i];
  }
  return s;
}

TEST(SequenceLstmTest, OutputShapeAndPrefixConsistency) {
  RngStream rng(uint64_t{1});
  Lstm seq_lstm(3, 4, 5, &rng, /*return_sequence=*/true);
  RngStream rng2(uint64_t{1});
  Lstm final_lstm(3, 4, 5, &rng2, /*return_sequence=*/false);
  // Identical initialization by construction order.
  Tensor x({2, 15});
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.1f * (i % 7);
  Tensor sequence = seq_lstm.Forward(x);
  Tensor final_h = final_lstm.Forward(x);
  ASSERT_EQ(sequence.dim(1), 5 * 4);
  ASSERT_EQ(final_h.dim(1), 4);
  // The last step of the sequence output equals the final hidden state.
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(sequence.at(n, 4 * 4 + j), final_h.at(n, j));
    }
  }
}

TEST(SequenceLstmTest, GradCheckSequenceMode) {
  RngStream rng(uint64_t{2});
  Lstm lstm(2, 3, 4, &rng, /*return_sequence=*/true);
  Tensor x = RandomTensor({2, 8}, &rng);
  Tensor probe = lstm.Forward(x);
  Tensor coeffs = RandomTensor(probe.shape(), &rng, 1.0);

  lstm.ZeroGrad();
  Score(&lstm, x, coeffs);
  Tensor input_grad = lstm.Backward(coeffs);

  for (Parameter* param : lstm.Parameters()) {
    for (int64_t i = 0; i < param->value.size(); i += 5) {
      const float saved = param->value[i];
      param->value[i] = saved + kEps;
      const double plus = Score(&lstm, x, coeffs);
      param->value[i] = saved - kEps;
      const double minus = Score(&lstm, x, coeffs);
      param->value[i] = saved;
      const double numeric = (plus - minus) / (2.0 * kEps);
      const double analytic = param->grad[i];
      const double scale =
          std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
      EXPECT_NEAR(analytic, numeric, std::max(2e-3, 5e-2 * scale))
          << param->name << "[" << i << "]";
    }
  }
  for (int64_t i = 0; i < x.size(); i += 3) {
    const float saved = x[i];
    x[i] = saved + kEps;
    const double plus = Score(&lstm, x, coeffs);
    x[i] = saved - kEps;
    const double minus = Score(&lstm, x, coeffs);
    x[i] = saved;
    const double numeric = (plus - minus) / (2.0 * kEps);
    const double analytic = input_grad[i];
    const double scale =
        std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
    EXPECT_NEAR(analytic, numeric, std::max(2e-3, 5e-2 * scale))
        << "input[" << i << "]";
  }
}

ModelSpec TwoLayerLstmSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kCharLstm;
  spec.vocab_size = 10;
  spec.embed_dim = 4;
  spec.lstm_hidden = 6;
  spec.seq_len = 5;
  spec.num_classes = 10;
  spec.lstm_layers = 2;
  return spec;
}

ModelSpec TwoBlockCnnSpec() {
  ModelSpec spec;
  spec.kind = ModelKind::kSmallCnn;
  spec.image_channels = 1;
  spec.image_height = 8;
  spec.image_width = 8;
  spec.conv_channels = 4;
  spec.kernel_size = 3;
  spec.num_classes = 4;
  spec.conv_blocks = 2;
  return spec;
}

TEST(DeepModelsTest, TwoLayerLstmForwardShape) {
  Model model(TwoLayerLstmSpec(), 7);
  RngStream rng(uint64_t{3});
  Tensor x({3, 5});
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.UniformInt(10));
  }
  Tensor logits = model.Predict(x);
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(DeepModelsTest, TwoLayerLstmHasMoreParametersThanOne) {
  ModelSpec one = TwoLayerLstmSpec();
  one.lstm_layers = 1;
  Model deep(TwoLayerLstmSpec(), 7);
  Model shallow(one, 7);
  EXPECT_GT(deep.NumParameters(), shallow.NumParameters());
}

TEST(DeepModelsTest, TwoLayerLstmTrains) {
  Model model(TwoLayerLstmSpec(), 7);
  RngStream rng(uint64_t{4});
  Tensor x({12, 5});
  std::vector<int64_t> y;
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.UniformInt(10));
  }
  for (int64_t i = 0; i < 12; ++i) {
    // Learnable rule: label = last input token.
    y.push_back(static_cast<int64_t>(std::lround(x.at(i, 4))));
  }
  const double initial = model.ComputeLoss(x, y);
  for (int step = 0; step < 150; ++step) {
    model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.5);
  }
  EXPECT_LT(model.ComputeLoss(x, y), initial);
}

TEST(DeepModelsTest, TwoBlockCnnForwardShapeAndTrains) {
  Model model(TwoBlockCnnSpec(), 7);
  RngStream rng(uint64_t{5});
  Tensor x({6, 64});
  std::vector<int64_t> y;
  for (int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.NextGaussian());
  }
  for (int64_t i = 0; i < 6; ++i) {
    y.push_back(static_cast<int64_t>(rng.UniformInt(4)));
  }
  Tensor logits = model.Predict(x);
  EXPECT_EQ(logits.dim(1), 4);
  const double initial = model.ComputeLoss(x, y);
  for (int step = 0; step < 80; ++step) {
    model.ComputeLossAndGradients(x, y);
    model.SgdStep(0.1);
  }
  EXPECT_LT(model.ComputeLoss(x, y), initial);
}

TEST(DeepModelsTest, TwoBlockCnnHasMoreParameters) {
  ModelSpec one = TwoBlockCnnSpec();
  one.conv_blocks = 1;
  Model deep(TwoBlockCnnSpec(), 7);
  Model shallow(one, 7);
  EXPECT_GT(deep.NumParameters(), shallow.NumParameters());
}

TEST(DeepModelsTest, ParameterRoundTripOnDeepModels) {
  for (const ModelSpec& spec : {TwoLayerLstmSpec(), TwoBlockCnnSpec()}) {
    Model model(spec, 9);
    Tensor params = model.GetParameters();
    Tensor shifted = params;
    for (int64_t i = 0; i < shifted.size(); ++i) shifted[i] += 0.5f;
    model.SetParameters(shifted);
    EXPECT_TRUE(model.GetParameters().BitwiseEquals(shifted));
  }
}

TEST(DeepModelsDeathTest, InvalidDepthAborts) {
  ModelSpec spec = TwoLayerLstmSpec();
  spec.lstm_layers = 3;
  EXPECT_DEATH(Model model(spec, 1), "lstm_layers");
  ModelSpec cnn = TwoBlockCnnSpec();
  cnn.conv_blocks = 5;
  EXPECT_DEATH(Model model2(cnn, 1), "conv_blocks");
}

}  // namespace
}  // namespace fats
