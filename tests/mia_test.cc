#include "attack/mia.h"

#include <gtest/gtest.h>

#include "rng/rng_stream.h"
#include "test_workloads.h"

namespace fats {
namespace {

TEST(MiaInternalTest, ThresholdSeparatesDisjointLosses) {
  // Members at low loss, non-members at high loss: a perfect threshold
  // exists and must classify the calibration data perfectly.
  std::vector<double> member = {0.1, 0.2, 0.15};
  std::vector<double> nonmember = {1.0, 1.2, 0.9};
  const double threshold = internal::FitLossThreshold(member, nonmember);
  for (double v : member) EXPECT_LE(v, threshold);
  for (double v : nonmember) EXPECT_GT(v, threshold);
}

TEST(MiaInternalTest, LogisticLearnsNegativeSlopeOnSeparableData) {
  std::vector<double> member = {0.1, 0.2, 0.15, 0.12};
  std::vector<double> nonmember = {2.0, 2.2, 1.9, 2.1};
  auto [w, c] = internal::FitLogistic(member, nonmember);
  EXPECT_LT(w, 0.0);  // lower loss -> more likely member
  // Scores are on the right sides of 0.5.
  auto score = [w, c](double x) { return 1.0 / (1.0 + std::exp(-(w * x + c))); };
  EXPECT_GT(score(0.15), 0.5);
  EXPECT_LT(score(2.0), 0.5);
}

Batch MakeBatch(const std::vector<float>& xs,
                const std::vector<int64_t>& ys) {
  Batch batch;
  batch.inputs = Tensor({static_cast<int64_t>(ys.size()), 2});
  for (size_t i = 0; i < ys.size(); ++i) {
    batch.inputs.at(static_cast<int64_t>(i), 0) = xs[i];
    batch.inputs.at(static_cast<int64_t>(i), 1) = 1.0f;
  }
  batch.labels = ys;
  return batch;
}

TEST(MiaTest, RejectsDegenerateInputs) {
  Model model(TinyModelSpec(2, 2), 1);
  Batch tiny = MakeBatch({1.0f}, {0});
  Batch okay = MakeBatch({1.0f, 2.0f}, {0, 1});
  MiaOptions options;
  EXPECT_FALSE(RunMembershipInference(&model, tiny, okay, options).ok());
  EXPECT_FALSE(RunMembershipInference(&model, okay, tiny, options).ok());
  options.trials = 0;
  EXPECT_FALSE(RunMembershipInference(&model, okay, okay, options).ok());
}

class MiaAttackKindTest : public testing::TestWithParam<MiaAttackKind> {};

TEST_P(MiaAttackKindTest, OverfitModelIsVulnerable) {
  // Train a model to memorize a small member set; the attack should beat
  // random guessing clearly.
  ModelSpec spec = TinyModelSpec(2, 4);
  spec.kind = ModelKind::kMlp;
  spec.hidden_dims = {16};
  Model model(spec, 3);
  RngStream rng(uint64_t{5});
  const int64_t n = 24;
  Tensor member_x({n, 4});
  std::vector<int64_t> member_y;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      member_x.at(i, j) = static_cast<float>(rng.NextGaussian());
    }
    member_y.push_back(static_cast<int64_t>(rng.UniformInt(2)));
  }
  // Non-members from the same marginal (random labels).
  Tensor nonmember_x({n, 4});
  std::vector<int64_t> nonmember_y;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      nonmember_x.at(i, j) = static_cast<float>(rng.NextGaussian());
    }
    nonmember_y.push_back(static_cast<int64_t>(rng.UniformInt(2)));
  }
  for (int step = 0; step < 600; ++step) {
    model.ComputeLossAndGradients(member_x, member_y);
    model.SgdStep(0.3);
  }
  Batch members;
  members.inputs = member_x;
  members.labels = member_y;
  Batch nonmembers;
  nonmembers.inputs = nonmember_x;
  nonmembers.labels = nonmember_y;
  MiaOptions options;
  options.kind = GetParam();
  options.trials = 40;
  options.seed = 9;
  MiaResult result =
      RunMembershipInference(&model, members, nonmembers, options).value();
  EXPECT_GT(result.accuracy_mean, 0.8)
      << "attack should detect memorization";
  EXPECT_GT(result.precision_mean, 0.7);
  EXPECT_EQ(result.trials, 40);
}

TEST_P(MiaAttackKindTest, FreshModelIsNotVulnerable) {
  // A model that never saw either pool: attack ≈ coin flip.
  ModelSpec spec = TinyModelSpec(2, 4);
  Model model(spec, 3);
  RngStream rng(uint64_t{6});
  auto random_batch = [&rng](int64_t n) {
    Batch batch;
    batch.inputs = Tensor({n, 4});
    for (int64_t i = 0; i < n * 4; ++i) {
      batch.inputs[i] = static_cast<float>(rng.NextGaussian());
    }
    for (int64_t i = 0; i < n; ++i) {
      batch.labels.push_back(static_cast<int64_t>(rng.UniformInt(2)));
    }
    return batch;
  };
  Batch members = random_batch(32);
  Batch nonmembers = random_batch(32);
  MiaOptions options;
  options.kind = GetParam();
  options.trials = 60;
  options.seed = 10;
  MiaResult result =
      RunMembershipInference(&model, members, nonmembers, options).value();
  EXPECT_NEAR(result.accuracy_mean, 0.5, 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    BothAttacks, MiaAttackKindTest,
    testing::Values(MiaAttackKind::kLossThreshold,
                    MiaAttackKind::kShadowLogistic),
    [](const testing::TestParamInfo<MiaAttackKind>& param_info) {
      return param_info.param == MiaAttackKind::kLossThreshold ? "LossThreshold"
                                                         : "ShadowLogistic";
    });

TEST(MiaTest, ResultToStringFormats) {
  MiaResult result;
  result.accuracy_mean = 0.5;
  result.precision_mean = 0.51;
  result.trials = 100;
  EXPECT_NE(result.ToString().find("100 trials"), std::string::npos);
}

TEST(MiaTest, DeterministicInSeed) {
  Model model(TinyModelSpec(2, 2), 1);
  Batch members = MakeBatch({0.1f, 0.2f, 0.3f, 0.4f}, {0, 1, 0, 1});
  Batch nonmembers = MakeBatch({1.1f, 1.2f, 1.3f, 1.4f}, {1, 0, 1, 0});
  MiaOptions options;
  options.trials = 10;
  options.seed = 42;
  MiaResult a =
      RunMembershipInference(&model, members, nonmembers, options).value();
  MiaResult b =
      RunMembershipInference(&model, members, nonmembers, options).value();
  EXPECT_DOUBLE_EQ(a.accuracy_mean, b.accuracy_mean);
  EXPECT_DOUBLE_EQ(a.precision_mean, b.precision_mean);
}

}  // namespace
}  // namespace fats
