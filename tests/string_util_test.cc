#include "util/string_util.h"

#include <gtest/gtest.h>

namespace fats {
namespace {

TEST(StrSplitTest, SplitsOnSeparator) {
  std::vector<std::string> parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  std::vector<std::string> parts = StrSplit(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StrSplitTest, NoSeparatorYieldsSingleField) {
  std::vector<std::string> parts = StrSplit("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
  EXPECT_EQ(StrJoin({"only"}, "-"), "only");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("inner  space"), "inner  space");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s!", "hi"), "hi!");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace fats
